#ifndef CLOUDDB_TOOLS_LINT_ABSINT_H_
#define CLOUDDB_TOOLS_LINT_ABSINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "absdomain.h"
#include "cfg.h"
#include "rules_interproc.h"

namespace clouddb::lint {

/// Per-function abstract interpreter over the statement-granular CFG.
///
/// The interpreter runs a reverse-post-order worklist per function, joining
/// predecessor out-states at each node. Loop heads (any node joined more
/// than `kWidenAfter` times) widen instead of join, so the solver terminates
/// on every loop including ones with unknown bounds; a bounded narrowing
/// sweep afterwards recovers the precision widening threw away on the
/// non-loop-carried parts of the state.
///
/// Condition nodes refine their out-edges: succs[0] carries the condition
/// assumed true (the CFG builder's invariant), the remaining edge assumed
/// false. Refinement understands comparisons against constants, variables,
/// and `path.size()`; `&&` conjuncts; negated `||` on the false edge;
/// `v.empty()`; and bare-identifier truthiness. `assert(cond)` statements
/// refine in place (asserts are trusted — they are the documented witness
/// form for the bounds rules).
///
/// Interprocedural pass structure: phase A seeds every parameter with its
/// declared-type range and records return intervals plus per-call-site
/// argument intervals over the PR 7 call graph; phase B re-runs every
/// function with parameter intervals met with the join over resolved src/
/// callers, and call expressions evaluate to the callee's phase-A return
/// interval when the callee name resolves uniquely.

/// Known allocation extent of a raw pointer: a constant-ish interval plus,
/// when the element count was a tracked variable, that variable's name so
/// relational facts (`i < n`) can discharge `p[i]` even after `n`'s concrete
/// range widens.
struct Extent {
  bool known = false;
  Interval count = Interval::Top();
  std::string sym;  // count-providing variable name ("" when none)

  bool operator==(const Extent& o) const {
    return known == o.known && count == o.count && sym == o.sym;
  }
};

/// Abstract state at one program point. Variables (locals, parameters, and
/// unqualified member scalars) are keyed by name; container sizes by path
/// ("v", "p->keys", "samples_"); pointer extents by pointer name. `ceil_of`
/// records `w = ceil(base / div)` shapes so `p[i >> k]` indexing into an
/// extent of ceil(len/2^k) words can be proven from `i < len`.
struct AbsEnv {
  bool reachable = false;
  std::map<std::string, AbsValue> vars;
  std::map<std::string, Interval> sizes;
  std::map<std::string, Extent> extents;
  std::map<std::string, std::pair<std::string, int64_t>> ceil_of;

  bool operator==(const AbsEnv& o) const {
    return reachable == o.reachable && vars == o.vars && sizes == o.sizes &&
           extents == o.extents && ceil_of == o.ceil_of;
  }

  static AbsEnv Join(const AbsEnv& a, const AbsEnv& b);
  static AbsEnv Widen(const AbsEnv& prev, const AbsEnv& next);
};

/// Evaluation result: the abstract value plus the symbolic identity of the
/// expression when it is a bare tracked variable ("i") or a container size
/// ("size:path"); empty otherwise.
struct EvalOut {
  AbsValue val;
  std::string sym;
};

struct FnAbsResult {
  bool solved = false;          // false when the CFG was not ok / skipped
  std::vector<AbsEnv> in;       // entry state per CFG node
  Interval ret = Interval::Bottom();  // join over `return expr` evaluations
  int join_rounds = 0;          // worklist iterations (termination witness)
};

class AbsInterpreter {
 public:
  /// Joins at a node beyond this count widen instead. Three plain joins let
  /// short counted loops (0, 1, 2 iterations) settle exactly before the
  /// jump to the infinities.
  static constexpr int kWidenAfter = 3;
  /// Narrowing sweeps after the widened fixpoint.
  static constexpr int kNarrowRounds = 2;

  explicit AbsInterpreter(const InterprocContext& ctx);

  /// Runs phase A then phase B over every function in the call graph.
  void Run();

  const InterprocContext& ctx() const { return *ctx_; }
  const FnAbsResult& Result(int f) const { return results_[f]; }

  /// CFG node whose token range contains `tok` (-1 when none), for mapping a
  /// syntactic site found by a rule back to its entry state.
  int NodeOfToken(int f, size_t tok) const;

  /// Evaluates the expression tokens [begin, end) of cg function `f`'s file
  /// in `env`. Total: unknown shapes evaluate to Top, never fail.
  EvalOut Eval(int f, const AbsEnv& env, size_t begin, size_t end) const;

  /// Tries to prove the index expression [begin, end) lies in [0, limit)
  /// where the limit is `limit_sym` (a variable name or "size:path"; may be
  /// empty) with concrete range `limit`. Understands direct relational
  /// facts, one transitive step through a variable's own upper bounds, and
  /// the ceil-division word-count shape for `i >> k` / `i / c` indexes.
  /// `slack` relaxes the bound to [0, limit + slack): `.data() + i` pointer
  /// arithmetic passes slack 1 (one-past-the-end is formable).
  bool ProveIndex(int f, const AbsEnv& env, size_t begin, size_t end,
                  const std::string& limit_sym, const Interval& limit,
                  int slack = 0) const;

  /// Entry environment of the CFG node containing `tok`, refined with the
  /// short-circuit facts established *within the node* before the site: for
  /// `a && b[i]` the subscript only evaluates with `a` true, for `a || b[i]`
  /// with `a` false, and for `c ? x[i] : y[i]` with `c` true (resp. false).
  /// Returns an unreachable env when the token maps to no solved node.
  AbsEnv RefinedAt(int f, size_t tok) const;

  /// Decomposes [begin, end) as `sym + c` when the tokens are a tracked
  /// variable / size expression plus-minus an integer literal (or bare).
  /// Returns {"", 0} when no decomposition applies.
  std::pair<std::string, int64_t> SymPlusConst(int f, const AbsEnv& env,
                                               size_t begin, size_t end) const;

  /// Total expression evaluations across Run() — the "intervals solved"
  /// counter surfaced by bench/micro_lint.
  int64_t interval_ops() const { return interval_ops_; }

  /// Tree-wide `using X = Y;` alias table (for the narrowing rule's
  /// cast-target resolution).
  const std::map<std::string, std::string>& aliases() const { return aliases_; }

 private:
  struct Summary {
    Interval ret = Interval::Top();
    std::vector<std::string> param_names;
    std::vector<std::string> param_types;
    std::vector<Interval> param_decl;      // declared-type ranges
    std::vector<Interval> param_incoming;  // join over resolved caller args
    std::vector<bool> param_has_incoming;
  };

  void CollectGlobals();
  /// Per-file `type name_ = ...;` member-scalar declarations (trailing
  /// underscore, the repo's member convention). The declared-type range is a
  /// sound entry-state invariant for every method of the class.
  void CollectMemberScalars();
  void SetupSummaries();
  /// Return-interval summary for a call by name; Top unless the name
  /// resolves to exactly one definition in the call graph.
  Interval SummaryReturn(const std::string& name) const;
  AbsEnv EntryEnv(int f, bool use_incoming) const;
  void SolveFunction(int f, bool use_incoming);
  void RecordCallArgs(int f);
  AbsEnv TransferNode(int f, int node, const AbsEnv& env, Interval* ret) const;
  void TransferAssign(int f, size_t b, size_t eq, size_t e, char compound,
                      AbsEnv* out) const;
  void TransferEffects(int f, size_t b, size_t e, AbsEnv* out) const;
  void ShapeRules(int f, size_t rb, size_t re, const AbsEnv& env, AbsValue* nv,
                  const std::string& name, AbsEnv* out) const;
  void MidpointFacts(int f, size_t ib, size_t ie, const AbsEnv& env,
                     AbsValue* nv) const;
  void RefineCond(int f, size_t begin, size_t end, bool truth,
                  AbsEnv* env) const;
  void RefinePrefix(int f, size_t begin, size_t end, size_t site,
                    AbsEnv* env) const;
  void RefineHalf(AbsEnv* env, const std::string& sym, int64_t off, char op,
                  const Interval& other, const std::string& other_sym,
                  int64_t other_off) const;

  const InterprocContext* ctx_;
  std::vector<FnAbsResult> results_;
  std::vector<Summary> summaries_;
  std::map<std::string, int64_t> constants_;    // tree-wide constexpr ints
  std::map<std::string, std::string> aliases_;  // `using X = int64_t;`
  // file index -> member name -> declared-type range
  std::map<int, std::map<std::string, Interval>> member_scalars_;
  mutable int64_t interval_ops_ = 0;

  friend struct AbsEvalImpl;
};

/// Resolves a type spelling through the tree-wide `using` alias table before
/// the absdomain TypeRange lookup.
Interval ResolvedTypeRange(const std::map<std::string, std::string>& aliases,
                           const std::string& type_name);

}  // namespace clouddb::lint

#endif  // CLOUDDB_TOOLS_LINT_ABSINT_H_
