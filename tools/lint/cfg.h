#ifndef CLOUDDB_TOOLS_LINT_CFG_H_
#define CLOUDDB_TOOLS_LINT_CFG_H_

#include <cstddef>
#include <vector>

#include "frontend.h"

namespace clouddb::lint {

/// Per-function control-flow graphs built on top of the token front-end.
/// Nodes are statement-granular: one node per simple statement, one per
/// controlling condition (the parenthesized expression of if/while/for/
/// switch), plus synthetic entry/exit nodes. Statement granularity is finer
/// than classic basic blocks — a maximal straight-line run is a chain of
/// single-predecessor nodes — and gives the dataflow passes exact line
/// numbers for free.
///
/// The builder understands if/else chains, while, do-while, classic and
/// range for, switch (case fallthrough included), break/continue/return/
/// goto, and try/catch (catch bodies are treated as conditionally executed).
/// Lambda bodies are *not* split into the enclosing function's CFG: the
/// whole statement containing a lambda is one node, so a `return` inside a
/// lambda never becomes an exit edge of the enclosing function.

struct CfgNode {
  enum class Kind { kEntry, kExit, kStatement, kCondition };
  Kind kind = Kind::kStatement;
  /// Token range [begin, end) in the owning SourceFile. Empty for
  /// entry/exit and for synthetic join/loop-head nodes.
  size_t begin = 0;
  size_t end = 0;
  int line = 0;  // line of the first token (0 for synthetic nodes)
  std::vector<int> succs;
  std::vector<int> preds;
};

struct Cfg {
  static constexpr int kEntry = 0;
  static constexpr int kExit = 1;
  /// nodes[0] is always the entry, nodes[1] the exit.
  std::vector<CfgNode> nodes;
  /// False when the body could not be segmented (unbalanced brackets);
  /// passes skip such functions rather than analyze a wrong graph.
  bool ok = false;

  /// Reverse post-order over forward edges from the entry. Unreachable
  /// nodes (code after return) are appended after the reachable ones in
  /// index order, so every node is visited by a worklist seeded with this.
  std::vector<int> ReversePostOrder() const;
};

/// Builds the statement-level CFG for one function definition.
Cfg BuildCfg(const SourceFile& file, const FileIndex& idx,
             const FunctionDef& fn);

}  // namespace clouddb::lint

#endif  // CLOUDDB_TOOLS_LINT_CFG_H_
