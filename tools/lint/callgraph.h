#ifndef CLOUDDB_TOOLS_LINT_CALLGRAPH_H_
#define CLOUDDB_TOOLS_LINT_CALLGRAPH_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "frontend.h"
#include "rules_flow.h"

namespace clouddb::lint {

/// Project-wide call graph with name+arity resolution. Without type
/// information the resolver is deliberately over-approximate: a call site
/// `Foo(a, b)` resolves to every known definition of `Foo` with a matching
/// parameter count, falling back to every definition of `Foo` when no arity
/// matches (default arguments, variadics). Member calls resolve by method
/// name alone — receivers are untyped. Passes built on top must treat the
/// edge set as "may call".

struct CallSite {
  size_t token = 0;  // token index of the callee name in the caller's file
  int line = 0;
  std::string name;  // callee identifier as written
  size_t arity = 0;  // top-level comma count + 1 (0 for empty argument list)
  std::vector<int> targets;  // indices into CallGraph::functions (resolved)
};

/// One function definition node in the graph.
struct CgFunction {
  int file = 0;  // index into the analyzed-file vector the graph was built on
  const FunctionDef* fn = nullptr;
  std::string cls;   // empty for free functions
  std::string name;
  size_t arity = 0;  // declared parameter count (best effort)
  std::vector<CallSite> calls;  // call sites inside this function's body

  std::string Qualified() const {
    return cls.empty() ? name : cls + "::" + name;
  }
};

struct CallGraph {
  std::vector<CgFunction> functions;
  /// name -> indices of every definition with that (unqualified) name.
  std::map<std::string, std::vector<int>> by_name;
};

/// Builds the graph over all analyzed files. `file_filter` (optional, may be
/// null) restricts which files contribute *definitions*; call sites are only
/// collected inside contributing files too, so passes can scope the whole
/// graph to e.g. src/ and ignore same-named helpers in bench/tools.
CallGraph BuildCallGraph(const std::vector<AnalyzedFile>& files,
                         bool (*file_filter)(const std::string& rel) = nullptr);

/// Counts declared parameters of `fn` in `file`: top-level commas + 1 inside
/// the parameter parens, 0 for `()` and `(void)`.
size_t CountParams(const SourceFile& file, const FileIndex& idx,
                   const FunctionDef& fn);

}  // namespace clouddb::lint

#endif  // CLOUDDB_TOOLS_LINT_CALLGRAPH_H_
