#include "cfg.h"

#include <algorithm>
#include <string>

#include "frontend.h"

namespace clouddb::lint {
namespace {

/// Recursive-descent CFG builder over the bracket-matched token stream.
/// Statement parsing mirrors how the front-end segments bodies: brackets are
/// skipped via the match table, so lambdas, brace initializers, and nested
/// class definitions stay inside the statement that contains them.
class Builder {
 public:
  Builder(const SourceFile& file, const FileIndex& idx)
      : t_(file.tokens), match_(idx.match) {}

  Cfg Build(const FunctionDef& fn) {
    cfg_ = Cfg{};
    failed_ = false;
    NewNode(CfgNode::Kind::kEntry, fn.body_begin, fn.body_begin);
    NewNode(CfgNode::Kind::kExit, fn.body_end, fn.body_end);
    if (fn.body_begin >= fn.body_end || fn.body_end > t_.size()) return cfg_;
    std::vector<int> tails =
        ParseSeq(fn.body_begin + 1, fn.body_end, {Cfg::kEntry}, nullptr);
    for (int n : tails) AddEdge(n, Cfg::kExit);
    cfg_.ok = !failed_;
    return cfg_;
  }

 private:
  /// Pending break/continue edges of the innermost enclosing loop or switch.
  /// `continues` is null for switch frames (continue passes to the loop).
  struct Frame {
    std::vector<int>* breaks = nullptr;
    std::vector<int>* continues = nullptr;
  };

  int NewNode(CfgNode::Kind kind, size_t begin, size_t end) {
    CfgNode node;
    node.kind = kind;
    node.begin = begin;
    node.end = end;
    node.line = begin < end && begin < t_.size() ? t_[begin].line : 0;
    cfg_.nodes.push_back(std::move(node));
    return static_cast<int>(cfg_.nodes.size()) - 1;
  }

  void AddEdge(int from, int to) {
    auto& succs = cfg_.nodes[from].succs;
    if (std::find(succs.begin(), succs.end(), to) != succs.end()) return;
    succs.push_back(to);
    cfg_.nodes[to].preds.push_back(from);
  }

  void Connect(const std::vector<int>& preds, int to) {
    for (int p : preds) AddEdge(p, to);
  }

  bool Is(size_t i, const char* s) const {
    return i < t_.size() && t_[i].text == s;
  }

  size_t MatchOf(size_t i) const {
    if (i >= match_.size() || match_[i] < 0) return 0;
    return static_cast<size_t>(match_[i]);
  }

  /// Parses the statement sequence in [b, e), threading `preds` (the set of
  /// nodes whose fallthrough reaches the next statement). `sw` is non-null
  /// inside a switch body, where case/default labels re-enter from the head.
  struct SwitchCtx {
    int head = 0;
    bool saw_default = false;
  };

  std::vector<int> ParseSeq(size_t b, size_t e, std::vector<int> preds,
                            SwitchCtx* sw) {
    size_t i = b;
    while (i < e && !failed_) {
      if (Is(i, ";")) {
        ++i;
        continue;
      }
      if (sw != nullptr && (Is(i, "case") || Is(i, "default"))) {
        // Label: execution can arrive by dispatch from the switch head or by
        // falling through from the previous case body.
        if (Is(i, "default")) sw->saw_default = true;
        while (i < e && !Is(i, ":")) {
          if ((Is(i, "(") || Is(i, "[")) && MatchOf(i) > i) {
            i = MatchOf(i) + 1;
            continue;
          }
          ++i;
        }
        ++i;  // consume ':'
        preds.push_back(sw->head);
        continue;
      }
      i = ParseStmt(i, e, &preds, sw);
    }
    return preds;
  }

  /// Parses one statement starting at `i` (< e); updates *preds to the
  /// statement's fallthrough set and returns the index one past it.
  size_t ParseStmt(size_t i, size_t e, std::vector<int>* preds,
                   SwitchCtx* sw) {
    const std::string& s = t_[i].text;
    if (s == "{") {
      size_t close = MatchOf(i);
      if (close == 0 || close > e) {
        failed_ = true;
        return e;
      }
      *preds = ParseSeq(i + 1, close, *preds, sw);
      return close + 1;
    }
    if (s == "if") return ParseIf(i, e, preds, sw);
    if (s == "while") return ParseWhile(i, e, preds);
    if (s == "do") return ParseDo(i, e, preds);
    if (s == "for") return ParseFor(i, e, preds);
    if (s == "switch") return ParseSwitch(i, e, preds);
    if (s == "try") return ParseTry(i, e, preds, sw);
    if (s == "return" || s == "goto" || s == "co_return" || s == "throw") {
      size_t end = StmtEnd(i, e);
      int node = NewNode(CfgNode::Kind::kStatement, i, end);
      Connect(*preds, node);
      AddEdge(node, Cfg::kExit);
      preds->clear();
      return end + 1;
    }
    if (s == "break" || s == "continue") {
      size_t end = StmtEnd(i, e);
      int node = NewNode(CfgNode::Kind::kStatement, i, end);
      Connect(*preds, node);
      preds->clear();
      for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
        if (s == "break") {
          if (it->breaks != nullptr) {
            it->breaks->push_back(node);
            break;
          }
        } else if (it->continues != nullptr) {
          it->continues->push_back(node);
          break;
        }
      }
      return end + 1;
    }
    // Plain statement (declaration, expression, nested class, ...).
    size_t end = StmtEnd(i, e);
    int node = NewNode(CfgNode::Kind::kStatement, i, end);
    Connect(*preds, node);
    *preds = {node};
    return end + 1;
  }

  /// Index of the ';' terminating the simple statement starting at `i`
  /// (bracket contents skipped), or the last index before `e` / an
  /// unbalanced '}' when none is found.
  size_t StmtEnd(size_t i, size_t e) {
    size_t j = i;
    while (j < e) {
      const std::string& s = t_[j].text;
      if (s == ";") return j;
      if (s == "(" || s == "[" || s == "{") {
        size_t m = MatchOf(j);
        if (m == 0 || m > e) return j;  // unbalanced: stop here
        j = m + 1;
        continue;
      }
      if (s == "}") return j > i ? j - 1 : j;  // block closes mid-statement
      ++j;
    }
    return e > i ? e - 1 : i;
  }

  /// Condition node for the '(' at `open`; returns 0 on malformed input.
  int CondNode(size_t open) {
    size_t close = MatchOf(open);
    if (close == 0) {
      failed_ = true;
      return 0;
    }
    return NewNode(CfgNode::Kind::kCondition, open + 1, close);
  }

  size_t ParseIf(size_t i, size_t e, std::vector<int>* preds, SwitchCtx* sw) {
    size_t open = i + 1;
    if (Is(open, "constexpr")) ++open;
    if (!Is(open, "(")) {
      failed_ = true;
      return e;
    }
    size_t close = MatchOf(open);
    int cond = CondNode(open);
    if (failed_) return e;
    Connect(*preds, cond);
    std::vector<int> then_preds{cond};
    size_t next = ParseStmt(close + 1, e, &then_preds, sw);
    if (Is(next, "else")) {
      std::vector<int> else_preds{cond};
      next = ParseStmt(next + 1, e, &else_preds, sw);
      then_preds.insert(then_preds.end(), else_preds.begin(),
                        else_preds.end());
      *preds = then_preds;
    } else {
      then_preds.push_back(cond);  // false edge falls through
      *preds = then_preds;
    }
    return next;
  }

  size_t ParseWhile(size_t i, size_t e, std::vector<int>* preds) {
    if (!Is(i + 1, "(")) {
      failed_ = true;
      return e;
    }
    size_t close = MatchOf(i + 1);
    int cond = CondNode(i + 1);
    if (failed_) return e;
    Connect(*preds, cond);
    std::vector<int> breaks, continues;
    frames_.push_back({&breaks, &continues});
    std::vector<int> body_preds{cond};
    size_t next = ParseStmt(close + 1, e, &body_preds, nullptr);
    frames_.pop_back();
    Connect(body_preds, cond);  // back edge
    Connect(continues, cond);
    *preds = breaks;
    preds->push_back(cond);  // false edge
    return next;
  }

  size_t ParseDo(size_t i, size_t e, std::vector<int>* preds) {
    // Synthetic loop head so the back edge from the condition has a target
    // that dominates the body.
    int head = NewNode(CfgNode::Kind::kStatement, i, i);
    Connect(*preds, head);
    std::vector<int> breaks, continues;
    frames_.push_back({&breaks, &continues});
    std::vector<int> body_preds{head};
    size_t next = ParseStmt(i + 1, e, &body_preds, nullptr);
    frames_.pop_back();
    if (!Is(next, "while") || !Is(next + 1, "(")) {
      failed_ = true;
      return e;
    }
    size_t close = MatchOf(next + 1);
    int cond = CondNode(next + 1);
    if (failed_) return e;
    Connect(body_preds, cond);
    Connect(continues, cond);
    AddEdge(cond, head);  // true edge loops
    *preds = breaks;
    preds->push_back(cond);  // false edge
    return close + 2;        // past ')' and ';'
  }

  size_t ParseFor(size_t i, size_t e, std::vector<int>* preds) {
    if (!Is(i + 1, "(")) {
      failed_ = true;
      return e;
    }
    size_t open = i + 1;
    size_t close = MatchOf(open);
    if (close == 0) {
      failed_ = true;
      return e;
    }
    // Find the two depth-0 ';' of a classic for header; a range-for has
    // none (its ':' separator needs no special handling — the whole header
    // becomes one condition-style node).
    std::vector<size_t> semis;
    for (size_t j = open + 1; j < close; ++j) {
      if (Is(j, "(") || Is(j, "[") || Is(j, "{")) {
        size_t m = MatchOf(j);
        if (m == 0 || m > close) break;
        j = m;
        continue;
      }
      if (Is(j, ";")) semis.push_back(j);
    }
    std::vector<int> breaks, continues;
    if (semis.size() >= 2) {
      int init = NewNode(CfgNode::Kind::kStatement, open + 1, semis[0]);
      Connect(*preds, init);
      bool has_cond = semis[1] > semis[0] + 1;
      int cond = NewNode(CfgNode::Kind::kCondition, semis[0] + 1, semis[1]);
      AddEdge(init, cond);
      int inc = NewNode(CfgNode::Kind::kStatement, semis[1] + 1, close);
      frames_.push_back({&breaks, &continues});
      std::vector<int> body_preds{cond};
      size_t next = ParseStmt(close + 1, e, &body_preds, nullptr);
      frames_.pop_back();
      Connect(body_preds, inc);
      Connect(continues, inc);
      AddEdge(inc, cond);  // back edge
      *preds = breaks;
      if (has_cond) preds->push_back(cond);  // `for (;;)` only exits by break
      return next;
    }
    // Range-for: header reads the range expression once per entry; the body
    // loops back to it (the implicit ++it / != end check).
    int head = NewNode(CfgNode::Kind::kCondition, open + 1, close);
    Connect(*preds, head);
    frames_.push_back({&breaks, &continues});
    std::vector<int> body_preds{head};
    size_t next = ParseStmt(close + 1, e, &body_preds, nullptr);
    frames_.pop_back();
    Connect(body_preds, head);
    Connect(continues, head);
    *preds = breaks;
    preds->push_back(head);
    return next;
  }

  size_t ParseSwitch(size_t i, size_t e, std::vector<int>* preds) {
    if (!Is(i + 1, "(")) {
      failed_ = true;
      return e;
    }
    size_t close = MatchOf(i + 1);
    int head = CondNode(i + 1);
    if (failed_) return e;
    Connect(*preds, head);
    if (!Is(close + 1, "{")) {
      // Degenerate `switch (x) case 0: stmt;` — treat body as one statement.
      std::vector<int> body_preds{head};
      size_t next = ParseStmt(close + 1, e, &body_preds, nullptr);
      *preds = body_preds;
      return next;
    }
    size_t body_close = MatchOf(close + 1);
    if (body_close == 0) {
      failed_ = true;
      return e;
    }
    std::vector<int> breaks;
    frames_.push_back({&breaks, nullptr});
    SwitchCtx sw{head, false};
    // Code before the first label is unreachable: start with no preds.
    std::vector<int> tail = ParseSeq(close + 2, body_close, {}, &sw);
    frames_.pop_back();
    *preds = tail;  // fallthrough off the last case
    preds->insert(preds->end(), breaks.begin(), breaks.end());
    if (!sw.saw_default) preds->push_back(head);  // unmatched value skips all
    return body_close + 1;
  }

  size_t ParseTry(size_t i, size_t e, std::vector<int>* preds, SwitchCtx* sw) {
    std::vector<int> entry = *preds;
    std::vector<int> out;
    std::vector<int> try_preds = entry;
    size_t next = ParseStmt(i + 1, e, &try_preds, sw);
    out.insert(out.end(), try_preds.begin(), try_preds.end());
    while (Is(next, "catch") && Is(next + 1, "(")) {
      size_t close = MatchOf(next + 1);
      if (close == 0) {
        failed_ = true;
        return e;
      }
      // A catch body may run instead of any suffix of the try block; the
      // conservative edge set enters it straight from the try's entry.
      std::vector<int> catch_preds = entry;
      next = ParseStmt(close + 1, e, &catch_preds, sw);
      out.insert(out.end(), catch_preds.begin(), catch_preds.end());
    }
    *preds = out;
    return next;
  }

  const std::vector<Token>& t_;
  const std::vector<int>& match_;
  Cfg cfg_;
  std::vector<Frame> frames_;
  bool failed_ = false;
};

}  // namespace

std::vector<int> Cfg::ReversePostOrder() const {
  std::vector<int> order;
  std::vector<char> seen(nodes.size(), 0);
  // Iterative DFS with explicit post stack.
  std::vector<std::pair<int, size_t>> stack;
  auto visit = [&](int root) {
    if (seen[root]) return;
    seen[root] = 1;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      auto& [n, next] = stack.back();
      if (next < nodes[n].succs.size()) {
        int s = nodes[n].succs[next++];
        if (!seen[s]) {
          seen[s] = 1;
          stack.push_back({s, 0});
        }
      } else {
        order.push_back(n);
        stack.pop_back();
      }
    }
  };
  visit(kEntry);
  std::reverse(order.begin(), order.end());
  for (int n = 0; n < static_cast<int>(nodes.size()); ++n) {
    if (!seen[n]) order.push_back(n);  // unreachable (code after return)
  }
  return order;
}

Cfg BuildCfg(const SourceFile& file, const FileIndex& idx,
             const FunctionDef& fn) {
  Builder builder(file, idx);
  return builder.Build(fn);
}

}  // namespace clouddb::lint
