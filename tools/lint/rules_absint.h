#ifndef CLOUDDB_TOOLS_LINT_RULES_ABSINT_H_
#define CLOUDDB_TOOLS_LINT_RULES_ABSINT_H_

#include <vector>

#include "absint.h"
#include "linter.h"

namespace clouddb::lint {

/// The four abstract-interpretation rule families. All of them are
/// report-only (FixKind::kNone): a missed bound or a truncating cast has no
/// mechanically safe rewrite, so --fix never touches their findings.
///
/// Each pass takes the shared AbsInterpreter (already Run()) so the solver
/// executes once per lint invocation no matter how many rules consume it.

/// clouddb-bounds: `p[i]`, `v[i]`, and `v.data() + i` sites in the
/// vectorized hot path (src/db/vec_*, src/db/bplus_tree.h) where the base is
/// *modeled* (tracked container size, arena extent, or C-array extent) but
/// the index cannot be proven inside [0, size). Unmodeled bases are skipped
/// silently — the rule reports broken proofs, not missing models.
void CheckBounds(const AbsInterpreter& ai, std::vector<Diagnostic>* out);

/// clouddb-div-zero: `/` and `%` whose divisor is not provably nonzero at
/// the site, over src/db, src/repl, and src/metrics. Floating-point
/// divisions are exempt (no UB; the EWMA code divides by measured elapsed
/// time which is guarded at construction), as are literal and
/// provably-nonzero divisors.
void CheckDivZero(const AbsInterpreter& ai, std::vector<Diagnostic>* out);

/// clouddb-narrowing: explicit narrowing casts (`static_cast<uint32_t>(x)`
/// and friends) whose operand's abstract range is not provably within the
/// destination type, over the binlog codec, the vec kernels, and src/repl.
/// Length/count fields shipped over the wire are the target: a statement
/// batch whose size silently truncates to 32 bits corrupts every replica.
void CheckNarrowing(const AbsInterpreter& ai, std::vector<Diagnostic>* out);

/// clouddb-codec-symmetry: pairs each `Append*`/`Serialize*` writer with its
/// `Read*`/`Deserialize*` reader and compares the canonicalized sequences of
/// wire operations along non-aborting paths. Asymmetric field order, width,
/// or count is exactly the class of bug that desynchronizes master and
/// replica binlog cursors.
void CheckCodecSymmetry(const AbsInterpreter& ai,
                        std::vector<Diagnostic>* out);

}  // namespace clouddb::lint

#endif  // CLOUDDB_TOOLS_LINT_RULES_ABSINT_H_
