// clouddb_lint — project-specific static analyzer for the clouddb tree.
//
// Usage:
//   clouddb_lint [--root DIR] [--dirs d1,d2,...] [--forbid-nolint] [--quiet]
//
// Scans src/, bench/, tests/, examples/ (or --dirs) under --root and prints
// one "file:line: rule: message" diagnostic per violation. Exit status is 0
// when clean, 1 when violations were found (or, with --forbid-nolint, when
// any NOLINT suppression was needed — CI runs in that mode so merged code
// carries zero suppressions).

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "linter.h"

int main(int argc, char** argv) {
  clouddb::lint::Options opts;
  bool forbid_nolint = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opts.root = argv[++i];
    } else if (arg == "--dirs" && i + 1 < argc) {
      std::istringstream ss(argv[++i]);
      std::string d;
      while (std::getline(ss, d, ','))
        if (!d.empty()) opts.dirs.push_back(d);
    } else if (arg == "--forbid-nolint") {
      forbid_nolint = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: clouddb_lint [--root DIR] [--dirs d1,d2,...] "
                   "[--forbid-nolint] [--quiet]\n";
      return 0;
    } else {
      std::cerr << "clouddb_lint: unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  clouddb::lint::LintResult res = clouddb::lint::RunLint(opts);
  for (const auto& d : res.diagnostics) std::cout << d.ToString() << "\n";
  if (!quiet) {
    std::cerr << "clouddb_lint: scanned " << res.files_scanned << " files, "
              << res.diagnostics.size() << " violation(s), "
              << res.suppressions_used << " NOLINT suppression(s) used\n";
  }
  if (!res.diagnostics.empty()) return 1;
  if (forbid_nolint && res.suppressions_used > 0) {
    std::cerr << "clouddb_lint: NOLINT suppressions are forbidden in this "
                 "mode; remove them before merging\n";
    return 1;
  }
  return 0;
}
