// clouddb_lint — project-specific static analyzer for the clouddb tree.
//
// Usage:
//   clouddb_lint [--root DIR] [--dirs d1,d2,...] [--severity rule=level ...]
//                [--json] [--fix] [--forbid-nolint] [--quiet]
//                [--baseline FILE] [--write-baseline FILE]
//
// Scans src/, tools/, bench/, tests/, examples/ (or --dirs) under --root and
// prints one "file:line: rule: message" diagnostic per violation (--json
// emits the machine-readable form instead). Exit status is 0 when no errors
// were found, 1 when errors were found (or, with --forbid-nolint, when any
// NOLINT suppression was needed — CI runs in that mode so merged code carries
// zero suppressions). Warnings (--severity rule=warn) print but do not fail
// the run; --severity rule=off disables a rule entirely. --fix applies the
// mechanically safe include-hygiene fixes in place, re-lints, and repeats
// until no fixable diagnostics remain — exiting 1 if they fail to converge.
// --baseline FILE drops diagnostics whose file:line:rule key is listed in
// FILE (freeze pre-existing warnings; only regressions fail); --write-baseline
// FILE records the current diagnostics as that baseline and exits 0.

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "linter.h"

namespace {

bool ParseSeverity(const std::string& spec, clouddb::lint::Options* opts) {
  size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  std::string rule = spec.substr(0, eq);
  std::string level = spec.substr(eq + 1);
  clouddb::lint::Severity sev;
  if (level == "error") {
    sev = clouddb::lint::Severity::kError;
  } else if (level == "warn" || level == "warning") {
    sev = clouddb::lint::Severity::kWarn;
  } else if (level == "off") {
    sev = clouddb::lint::Severity::kOff;
  } else {
    return false;
  }
  opts->severities[rule] = sev;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  clouddb::lint::Options opts;
  bool forbid_nolint = false;
  bool quiet = false;
  bool json = false;
  bool fix = false;
  std::string write_baseline;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opts.root = argv[++i];
    } else if (arg == "--dirs" && i + 1 < argc) {
      std::istringstream ss(argv[++i]);
      std::string d;
      while (std::getline(ss, d, ','))
        if (!d.empty()) opts.dirs.push_back(d);
    } else if (arg == "--severity" && i + 1 < argc) {
      if (!ParseSeverity(argv[++i], &opts)) {
        std::cerr << "clouddb_lint: bad --severity spec '" << argv[i]
                  << "' (want rule=error|warn|off)\n";
        return 2;
      }
    } else if (arg == "--baseline" && i + 1 < argc) {
      opts.baseline_file = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      write_baseline = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--forbid-nolint") {
      forbid_nolint = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: clouddb_lint [--root DIR] [--dirs d1,d2,...] "
                   "[--severity rule=error|warn|off] [--json] [--fix] "
                   "[--forbid-nolint] [--quiet] [--baseline FILE] "
                   "[--write-baseline FILE]\n";
      return 0;
    } else {
      std::cerr << "clouddb_lint: unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  clouddb::lint::LintResult res;
  bool fix_diverged = false;
  if (fix) {
    clouddb::lint::FixLoopResult loop = clouddb::lint::FixUntilConverged(opts);
    if (!quiet) {
      std::cerr << "clouddb_lint: applied " << loop.edits << " fix(es) in "
                << loop.passes << " pass(es)\n";
    }
    if (!loop.converged) {
      fix_diverged = true;
      std::cerr << "clouddb_lint: fixes did not converge after " << loop.passes
                << " pass(es); fixable diagnostics remain — fix them by hand "
                   "or re-run --fix\n";
    }
    res = std::move(loop.result);
  } else {
    res = clouddb::lint::RunLint(opts);
  }

  if (!write_baseline.empty()) {
    std::ofstream bl(write_baseline, std::ios::trunc);
    bl << "# clouddb_lint baseline: one file:line:rule key per line.\n";
    for (const auto& d : res.diagnostics) bl << d.Key() << "\n";
    if (!quiet) {
      std::cerr << "clouddb_lint: wrote " << res.diagnostics.size()
                << " key(s) to " << write_baseline << "\n";
    }
    return 0;
  }

  if (json) {
    std::cout << clouddb::lint::ToJson(res);
  } else {
    for (const auto& d : res.diagnostics) std::cout << d.ToString() << "\n";
  }
  if (!quiet) {
    std::cerr << "clouddb_lint: scanned " << res.files_scanned << " files, "
              << res.errors << " error(s), " << res.warnings
              << " warning(s), " << res.suppressions_used
              << " NOLINT suppression(s) used";
    if (res.baselined > 0) std::cerr << ", " << res.baselined << " baselined";
    std::cerr << "\n";
  }
  if (fix_diverged) return 1;
  if (res.errors > 0) return 1;
  // Justified suppressions (`NOLINT(rule): why`) are exempt: the written
  // rationale is the review record for an intentional pattern. Bare or
  // unjustified markers still fail the gate.
  if (forbid_nolint &&
      res.suppressions_used - res.justified_suppressions > 0) {
    std::cerr << "clouddb_lint: unjustified NOLINT suppressions are forbidden "
                 "in this mode; name the rule and add a `: reason` or remove "
                 "them before merging\n";
    return 1;
  }
  return 0;
}
