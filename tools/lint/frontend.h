#ifndef CLOUDDB_TOOLS_LINT_FRONTEND_H_
#define CLOUDDB_TOOLS_LINT_FRONTEND_H_

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace clouddb::lint {

/// Lightweight C++ front-end shared by every lint pass. It is deliberately
/// not a real parser: comments/strings are blanked (positions preserved), the
/// result is tokenized, and brace/paren matching segments the token stream
/// into class bodies, function bodies, and lambda expressions. That is enough
/// structure for flow-aware rules (capture lifetimes, lock pairing, include
/// hygiene) while staying dependency-free and byte-deterministic.

struct Token {
  std::string text;
  int line = 0;
  bool ident = false;
};

struct Include {
  int line = 0;
  std::string path;  // the quoted include path, verbatim
};

/// One loaded source file: raw + stripped text, tokens, includes, NOLINT
/// markers, and preprocessor-directive lines.
struct SourceFile {
  std::string rel;  // '/'-separated path relative to the scan root
  std::vector<std::string> raw_lines;
  std::vector<std::string> stripped_lines;
  std::vector<Token> tokens;
  std::vector<Include> includes;
  // line -> suppressed rule names ("*" = all). NOLINTNEXTLINE is folded in.
  std::map<int, std::set<std::string>> nolint;
  // Subset of `nolint` entries written as `NOLINT(rule): justification` —
  // an explicit rule list followed by a non-empty rationale. CI's
  // --forbid-nolint gate exempts these (the rationale is the review record);
  // bare or unjustified markers still fail it.
  std::map<int, std::set<std::string>> nolint_justified;
  std::set<int> directive_lines;  // preprocessor lines incl. continuations
  bool is_header = false;
};

/// A lambda expression found inside a function body, with its parsed capture
/// list and the innermost enclosing call it is an argument of (empty callee
/// when the lambda is not a call argument, e.g. assigned to a variable).
struct LambdaExpr {
  int line = 0;        // line of the '[' introducer
  size_t intro = 0;    // token index of '['
  bool captures_this = false;    // [this]
  bool ref_default = false;      // [&]  (captures *this by reference too)
  bool copy_default = false;     // [=]  (still captures this in C++20)
  std::vector<std::string> by_ref;   // [&name]
  std::vector<std::string> by_copy;  // [name] / [name = init]
  std::string callee;    // e.g. "ScheduleAfter" for sim_->ScheduleAfter(...)
  std::string receiver;  // e.g. "sim_"; "?" when present but unresolvable
  size_t body_begin = 0;  // token index of the body '{' (0 when not found)
  size_t body_end = 0;    // token index of the matching '}'
};

/// A function definition (body found). `cls` is the qualifying class for
/// `X::f` definitions or the enclosing class for inline methods; empty for
/// free functions.
struct FunctionDef {
  std::string cls;
  std::string name;
  bool is_dtor = false;
  int line = 0;
  size_t name_tok = 0;      // token index of the function name
  size_t params_begin = 0;  // first token inside the parameter '(' ... ')'
  size_t params_end = 0;    // token index of the closing ')' (exclusive end)
  size_t body_begin = 0;  // token index of '{'
  size_t body_end = 0;    // token index of matching '}'
  std::vector<LambdaExpr> lambdas;
};

/// A class/struct definition with the member facts the rules need.
struct ClassDef {
  std::string name;
  int line = 0;
  size_t body_begin = 0;
  size_t body_end = 0;
  std::set<std::string> members;        // member-variable names (best effort)
  std::set<std::string> timer_members;  // members of sim::Timer/PeriodicTimer type
  std::set<std::string> method_names;   // declared or defined member functions
};

/// Per-file structural index built on top of SourceFile.
struct FileIndex {
  std::vector<ClassDef> classes;
  std::vector<FunctionDef> functions;
  /// Names this file *owns* when it is a header: namespace-scope classes,
  /// structs, enums, free functions, `using` aliases, constexpr constants,
  /// and macros. The include-hygiene pass treats these as the header's API.
  std::set<std::string> strong_exports;
  /// Everything else declared here (member names, methods, enumerators):
  /// evidence that an includer uses the header, but not unique ownership.
  std::set<std::string> weak_exports;
  /// Header declares namespace-scope operator overloads or explicit template
  /// specializations; such headers are never flagged as unused includes
  /// (their use sites carry no referencable identifier).
  bool exports_operators = false;
  /// token index -> matching bracket token index for ( ) { } [ ].
  std::vector<int> match;
};

/// Replaces the contents of comments and string/char literals with spaces,
/// preserving line breaks and column positions, so token rules never fire on
/// prose or literals. Exposed for unit tests.
std::string StripCommentsAndStrings(const std::string& source);

/// Tokenizes stripped source lines (identifiers, numbers, `::`/`->`, and
/// single-character punctuation).
std::vector<Token> Tokenize(const std::vector<std::string>& stripped_lines);

/// Loads and pre-processes one file (raw/stripped lines, tokens, includes,
/// NOLINT markers, directive lines).
SourceFile LoadSourceFile(const std::filesystem::path& path,
                          const std::string& rel);

/// Builds a SourceFile from in-memory text — same pipeline as
/// LoadSourceFile minus the disk read. Used by unit tests and benches.
SourceFile ParseSource(const std::string& text, const std::string& rel,
                       bool is_header = false);

/// Builds the structural index: classes, functions, lambdas, exports.
FileIndex BuildIndex(const SourceFile& file);

bool IsIdentChar(char c);
bool IsKeyword(std::string_view s);

}  // namespace clouddb::lint

#endif  // CLOUDDB_TOOLS_LINT_FRONTEND_H_
