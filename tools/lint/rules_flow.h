#ifndef CLOUDDB_TOOLS_LINT_RULES_FLOW_H_
#define CLOUDDB_TOOLS_LINT_RULES_FLOW_H_

#include <vector>

#include "frontend.h"
#include "linter.h"

namespace clouddb::lint {

/// One scanned file with its structural index, as seen by the flow passes.
struct AnalyzedFile {
  const SourceFile* file = nullptr;
  const FileIndex* index = nullptr;
};

/// clouddb-dangling-capture: lambdas handed to the event kernel
/// (Simulation::ScheduleAt/ScheduleAfter, Timer::Bind, PeriodicTimer::Start,
/// EventCallback) that capture `this`, references, or raw pointers while the
/// owning class has no cancelling sim::Timer/PeriodicTimer member and no
/// destructor-side Cancel — the callback can fire after the object dies.
/// Scoped to src/ (test/bench/example stack frames own their Simulation and
/// outlive Run()).
void CheckDanglingCaptures(const std::vector<AnalyzedFile>& files,
                           std::vector<Diagnostic>* out);

/// clouddb-lock-discipline: table-level 2PL pairing in src/db. Flags
/// (a) a lock acquired after a release that dominates it in the same
/// function (shrinking phase already began), (b) exit paths between an
/// acquire and a return with no release on the way, (c) functions that
/// acquire but never release on any path, and (d) literal lock keys taken
/// out of canonical order (deadlock hazard in the growing phase).
void CheckLockDiscipline(const std::vector<AnalyzedFile>& files,
                         std::vector<Diagnostic>* out);

/// clouddb-include-hygiene (IWYU-lite): quoted includes none of whose
/// declared symbols are referenced (mechanically removable), and in-tree
/// symbols that are used but reach the file only transitively (mechanically
/// insertable). Both carry structured fix info for `clouddb_lint --fix`.
void CheckIncludeHygiene(const std::vector<AnalyzedFile>& files,
                         std::vector<Diagnostic>* out);

}  // namespace clouddb::lint

#endif  // CLOUDDB_TOOLS_LINT_RULES_FLOW_H_
