#include "linter.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <functional>
#include <iterator>
#include <map>
#include <tuple>
#include <set>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace clouddb::lint {
namespace {

namespace fs = std::filesystem;

constexpr char kRuleWallclock[] = "clouddb-wallclock";
constexpr char kRuleRandom[] = "clouddb-random";
constexpr char kRuleThread[] = "clouddb-thread";
constexpr char kRuleLayering[] = "clouddb-layering";
constexpr char kRuleCycle[] = "clouddb-include-cycle";
constexpr char kRuleStatus[] = "clouddb-status";

/// Module layer ranks. An include edge is legal only if it points at a
/// strictly lower rank (or stays inside the module). `db` and `net` are
/// peers and may not include each other; `fault` and `harness` sit at the
/// top alongside each other. Mirrors the DAG in DESIGN.md — keep in sync.
const std::map<std::string, int>& LayerRanks() {
  static const std::map<std::string, int> kRanks = {
      {"common", 0},     {"sim", 1},   {"db", 2},    {"net", 2},
      {"cloud", 3},      {"repl", 4},  {"client", 5},
      {"cloudstone", 6}, {"fault", 7}, {"harness", 7},
  };
  return kRanks;
}

struct TokenRule {
  std::string_view token;
  const char* rule;
  const char* hint;
  bool call_only = false;  // only when directly followed by '(' and not a
                           // member call (not preceded by '.' or '->')
  bool prefix = false;     // match any identifier starting with `token`
};

const std::vector<TokenRule>& BannedTokens() {
  static const std::vector<TokenRule> kRules = {
      // --- clouddb-wallclock: reading real time breaks seeded replay.
      {"system_clock", kRuleWallclock, "is a wall-clock source"},
      {"steady_clock", kRuleWallclock, "is a wall-clock source"},
      {"high_resolution_clock", kRuleWallclock, "is a wall-clock source"},
      {"file_clock", kRuleWallclock, "is a wall-clock source"},
      {"utc_clock", kRuleWallclock, "is a wall-clock source"},
      {"tai_clock", kRuleWallclock, "is a wall-clock source"},
      {"gps_clock", kRuleWallclock, "is a wall-clock source"},
      {"gettimeofday", kRuleWallclock, "reads the wall clock"},
      {"clock_gettime", kRuleWallclock, "reads the wall clock"},
      {"timespec_get", kRuleWallclock, "reads the wall clock"},
      {"localtime", kRuleWallclock, "reads the wall clock"},
      {"localtime_r", kRuleWallclock, "reads the wall clock"},
      {"gmtime", kRuleWallclock, "reads the wall clock"},
      {"gmtime_r", kRuleWallclock, "reads the wall clock"},
      {"mktime", kRuleWallclock, "reads the wall clock"},
      {"time", kRuleWallclock, "reads the wall clock", /*call_only=*/true},
      // --- clouddb-random: only common/rng may own randomness.
      {"random_device", kRuleRandom, "is a nondeterministic entropy source"},
      {"rand", kRuleRandom, "uses hidden global RNG state", true},
      {"srand", kRuleRandom, "uses hidden global RNG state", true},
      {"rand_r", kRuleRandom, "is a platform RNG", true},
      {"random", kRuleRandom, "uses hidden global RNG state", true},
      {"drand48", kRuleRandom, "is a platform RNG"},
      {"erand48", kRuleRandom, "is a platform RNG"},
      {"lrand48", kRuleRandom, "is a platform RNG"},
      {"nrand48", kRuleRandom, "is a platform RNG"},
      {"mrand48", kRuleRandom, "is a platform RNG"},
      {"jrand48", kRuleRandom, "is a platform RNG"},
      {"random_shuffle", kRuleRandom, "uses unspecified randomness"},
      {"mt19937", kRuleRandom, "is a std random engine"},
      {"mt19937_64", kRuleRandom, "is a std random engine"},
      {"minstd_rand", kRuleRandom, "is a std random engine"},
      {"minstd_rand0", kRuleRandom, "is a std random engine"},
      {"default_random_engine", kRuleRandom, "is a std random engine"},
      {"knuth_b", kRuleRandom, "is a std random engine"},
      {"ranlux24", kRuleRandom, "is a std random engine"},
      {"ranlux24_base", kRuleRandom, "is a std random engine"},
      {"ranlux48", kRuleRandom, "is a std random engine"},
      {"ranlux48_base", kRuleRandom, "is a std random engine"},
      // --- clouddb-thread: the simulator is single-threaded by design.
      {"thread", kRuleThread, "is a real-thread primitive"},
      {"jthread", kRuleThread, "is a real-thread primitive"},
      {"this_thread", kRuleThread, "is a real-thread primitive"},
      {"pthread_", kRuleThread, "is a real-thread primitive", false, true},
      {"mutex", kRuleThread, "is a real-thread primitive"},
      {"shared_mutex", kRuleThread, "is a real-thread primitive"},
      {"recursive_mutex", kRuleThread, "is a real-thread primitive"},
      {"timed_mutex", kRuleThread, "is a real-thread primitive"},
      {"recursive_timed_mutex", kRuleThread, "is a real-thread primitive"},
      {"condition_variable", kRuleThread, "is a real-thread primitive"},
      {"condition_variable_any", kRuleThread, "is a real-thread primitive"},
      {"lock_guard", kRuleThread, "is a real-thread primitive"},
      {"unique_lock", kRuleThread, "is a real-thread primitive"},
      {"scoped_lock", kRuleThread, "is a real-thread primitive"},
      {"shared_lock", kRuleThread, "is a real-thread primitive"},
      {"atomic", kRuleThread, "implies real threads"},
      {"atomic_", kRuleThread, "implies real threads", false, true},
      {"async", kRuleThread, "launches real threads", true},
      {"sleep_for", kRuleThread, "blocks a real thread"},
      {"sleep_until", kRuleThread, "blocks a real thread"},
      {"usleep", kRuleThread, "blocks a real thread"},
      {"nanosleep", kRuleThread, "blocks a real thread"},
      {"sleep", kRuleThread, "blocks a real thread", true},
  };
  return kRules;
}

const char* RuleRemedy(std::string_view rule) {
  if (rule == kRuleWallclock)
    return "derive time from sim::Simulation::Now() / LocalClock";
  if (rule == kRuleRandom) return "draw from a seeded clouddb::Rng instead";
  return "model concurrency as simulation events (sim/simulation.h)";
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsKeyword(std::string_view s) {
  static const std::set<std::string_view> kKw = {
      "alignas",  "alignof",  "auto",     "bool",     "break",    "case",
      "catch",    "char",     "class",    "const",    "constexpr",
      "continue", "decltype", "default",  "delete",   "do",       "double",
      "else",     "enum",     "explicit", "extern",   "false",    "float",
      "for",      "friend",   "goto",     "if",       "inline",   "int",
      "long",     "mutable",  "namespace", "new",     "noexcept", "nullptr",
      "operator", "private",  "protected", "public",  "return",   "short",
      "signed",   "sizeof",   "static",   "struct",   "switch",   "template",
      "this",     "throw",    "true",     "try",      "typedef",  "typename",
      "union",    "unsigned", "using",    "virtual",  "void",     "volatile",
      "while",    "co_await", "co_return", "co_yield", "final",   "override",
  };
  return kKw.count(s) > 0;
}

// ---------------------------------------------------------------------------
// Per-file analysis state.
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;
  bool ident = false;
};

struct Include {
  int line = 0;
  std::string path;  // the quoted include path, verbatim
};

struct FileInfo {
  std::string rel;  // '/'-separated path relative to root
  std::vector<std::string> raw_lines;
  std::vector<std::string> stripped_lines;
  std::vector<Token> tokens;
  std::vector<Include> includes;
  // line -> suppressed rule names ("*" = all). NOLINTNEXTLINE is folded in.
  std::map<int, std::set<std::string>> nolint;
  std::set<int> directive_lines;  // preprocessor lines incl. continuations
  bool is_header = false;
};

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

/// Parses NOLINT / NOLINT(rule, ...) / NOLINTNEXTLINE(...) markers from a raw
/// source line into `out[target_line]`.
void ParseNolint(const std::string& raw, int line,
                 std::map<int, std::set<std::string>>* out) {
  size_t pos = 0;
  while ((pos = raw.find("NOLINT", pos)) != std::string::npos) {
    size_t after = pos + 6;
    int target = line;
    if (raw.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
      after = pos + 14;
      target = line + 1;
    }
    std::set<std::string>& rules = (*out)[target];
    size_t p = after;
    while (p < raw.size() && raw[p] == ' ') ++p;
    if (p < raw.size() && raw[p] == '(') {
      size_t close = raw.find(')', p);
      std::string list = raw.substr(
          p + 1, close == std::string::npos ? std::string::npos : close - p - 1);
      std::string name;
      std::istringstream ss(list);
      while (std::getline(ss, name, ',')) {
        name.erase(0, name.find_first_not_of(" \t"));
        name.erase(name.find_last_not_of(" \t") + 1);
        if (!name.empty()) rules.insert(name);
      }
      if (rules.empty()) rules.insert("*");
    } else {
      rules.insert("*");  // bare NOLINT silences every rule on the line
    }
    pos = after;
  }
}

std::vector<Token> Tokenize(const std::vector<std::string>& stripped_lines) {
  std::vector<Token> toks;
  for (size_t li = 0; li < stripped_lines.size(); ++li) {
    const std::string& s = stripped_lines[li];
    int line = static_cast<int>(li) + 1;
    size_t i = 0;
    while (i < s.size()) {
      char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < s.size() && IsIdentChar(s[j])) ++j;
        toks.push_back({s.substr(i, j - i), line, true});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t j = i;
        while (j < s.size() && (IsIdentChar(s[j]) || s[j] == '.')) ++j;
        toks.push_back({s.substr(i, j - i), line, false});
        i = j;
        continue;
      }
      // Two-char puncts the scanners care about.
      if (i + 1 < s.size()) {
        std::string two = s.substr(i, 2);
        if (two == "::" || two == "->") {
          toks.push_back({two, line, false});
          i += 2;
          continue;
        }
      }
      toks.push_back({std::string(1, c), line, false});
      ++i;
    }
  }
  return toks;
}

void ParseIncludes(FileInfo* fi) {
  for (size_t li = 0; li < fi->raw_lines.size(); ++li) {
    const std::string& raw = fi->raw_lines[li];
    size_t p = raw.find_first_not_of(" \t");
    if (p == std::string::npos || raw[p] != '#') continue;
    ++p;
    while (p < raw.size() && (raw[p] == ' ' || raw[p] == '\t')) ++p;
    if (raw.compare(p, 7, "include") != 0) continue;
    p += 7;
    while (p < raw.size() && (raw[p] == ' ' || raw[p] == '\t')) ++p;
    if (p >= raw.size() || raw[p] != '"') continue;
    size_t close = raw.find('"', p + 1);
    if (close == std::string::npos) continue;
    fi->includes.push_back(
        {static_cast<int>(li) + 1, raw.substr(p + 1, close - p - 1)});
  }
}

void MarkDirectiveLines(FileInfo* fi) {
  bool continuing = false;
  for (size_t li = 0; li < fi->raw_lines.size(); ++li) {
    const std::string& raw = fi->raw_lines[li];
    size_t p = raw.find_first_not_of(" \t");
    bool directive = continuing || (p != std::string::npos && raw[p] == '#');
    if (directive) fi->directive_lines.insert(static_cast<int>(li) + 1);
    continuing = directive && !raw.empty() && raw.back() == '\\';
  }
}

// ---------------------------------------------------------------------------
// Rule: determinism token scan.
// ---------------------------------------------------------------------------

bool RandomExempt(const std::string& rel) {
  // ISSUE rule family 1: common/rng is the one sanctioned home of RNG code.
  return rel.rfind("src/common/rng", 0) == 0;
}

/// Sanctioned homes for real-thread primitives. The simulator itself is
/// single-threaded by design (src/sim, src/db, src/repl, ... must stay
/// thread-free — the tree-wide scan enforces it); the one exception is the
/// harness's sweep runner, whose workers each drive an *independent*
/// Simulation and merge results in deterministic grid order (DESIGN.md
/// "Simulation kernel & parallel harness"). Extending this list requires the
/// same isolation argument.
bool ThreadExempt(const std::string& rel) {
  static constexpr const char* kSanctioned[] = {"src/harness/sweep"};
  for (const char* prefix : kSanctioned) {
    if (rel.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

void ScanBannedTokens(const FileInfo& fi, std::vector<Diagnostic>* out) {
  for (size_t li = 0; li < fi.stripped_lines.size(); ++li) {
    const std::string& s = fi.stripped_lines[li];
    int line = static_cast<int>(li) + 1;
    size_t i = 0;
    while (i < s.size()) {
      if (!(std::isalpha(static_cast<unsigned char>(s[i])) || s[i] == '_')) {
        ++i;
        continue;
      }
      if (i > 0 && IsIdentChar(s[i - 1])) {  // mid-identifier, skip
        ++i;
        while (i < s.size() && IsIdentChar(s[i])) ++i;
        continue;
      }
      size_t j = i;
      while (j < s.size() && IsIdentChar(s[j])) ++j;
      std::string_view ident(&s[i], j - i);
      for (const TokenRule& tr : BannedTokens()) {
        bool hit = tr.prefix ? ident.size() > tr.token.size() &&
                                   ident.substr(0, tr.token.size()) == tr.token
                             : ident == tr.token;
        if (!hit) continue;
        if (tr.rule == std::string_view(kRuleRandom) && RandomExempt(fi.rel))
          continue;
        if (tr.rule == std::string_view(kRuleThread) && ThreadExempt(fi.rel))
          continue;
        if (tr.call_only) {
          size_t k = j;
          while (k < s.size() && s[k] == ' ') ++k;
          if (k >= s.size() || s[k] != '(') continue;
          // Member calls like `clock.time()` are the simulated clock, not
          // the libc function; only flag free / namespace-qualified calls.
          size_t b = i;
          while (b > 0 && s[b - 1] == ' ') --b;
          if (b > 0 && (s[b - 1] == '.' ||
                        (b > 1 && s[b - 2] == '-' && s[b - 1] == '>')))
            continue;
          // An identifier right before is a return type — `long time()` is
          // a declaration of an unrelated function, not a libc call —
          // unless it is a statement keyword like `return time(nullptr)`.
          if (b > 0 && IsIdentChar(s[b - 1])) {
            size_t st = b;
            while (st > 0 && IsIdentChar(s[st - 1])) --st;
            static const std::set<std::string_view> kStmtKeywords = {
                "return", "co_return", "co_yield", "co_await",
                "throw",  "else",      "do",       "case",
            };
            if (!kStmtKeywords.count(std::string_view(&s[st], b - st)))
              continue;
          }
        }
        out->push_back({fi.rel, line, tr.rule,
                        "'" + std::string(ident) + "' " + tr.hint + "; " +
                            RuleRemedy(tr.rule)});
        break;
      }
      i = j;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: module layering + include cycles.
// ---------------------------------------------------------------------------

/// First path component after "src/", or "" when not an in-tree module file.
std::string ModuleOf(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return "";
  size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return "";  // file directly under src/
  return rel.substr(4, slash - 4);
}

void CheckLayering(const FileInfo& fi, std::vector<Diagnostic>* out) {
  std::string mod = ModuleOf(fi.rel);
  if (mod.empty()) return;
  const auto& ranks = LayerRanks();
  auto self = ranks.find(mod);
  if (self == ranks.end()) {
    out->push_back({fi.rel, 1, kRuleLayering,
                    "module '" + mod +
                        "' is not registered in the layer table; add it to "
                        "LayerRanks() in tools/lint/linter.cc and to the DAG "
                        "in DESIGN.md"});
    return;
  }
  for (const Include& inc : fi.includes) {
    size_t slash = inc.path.find('/');
    if (slash == std::string::npos) continue;  // same-dir include
    std::string target = inc.path.substr(0, slash);
    auto it = ranks.find(target);
    if (it == ranks.end() || target == mod) continue;
    if (it->second > self->second) {
      out->push_back({fi.rel, inc.line, kRuleLayering,
                      "module '" + mod + "' (layer " +
                          std::to_string(self->second) +
                          ") may not include '" + target + "' (layer " +
                          std::to_string(it->second) +
                          "); dependencies must flow strictly downward"});
    } else if (it->second == self->second) {
      out->push_back({fi.rel, inc.line, kRuleLayering,
                      "'" + mod + "' and '" + target +
                          "' are peer modules at layer " +
                          std::to_string(self->second) +
                          " and may not include each other"});
    }
  }
}

void CheckIncludeCycles(const std::vector<FileInfo>& files,
                        std::vector<Diagnostic>* out) {
  // File-level graph over scanned src/ files; include paths resolve against
  // the src/ include root and against the including file's own directory.
  std::map<std::string, const FileInfo*> by_rel;
  for (const FileInfo& fi : files)
    if (fi.rel.rfind("src/", 0) == 0) by_rel[fi.rel] = &fi;

  struct Edge {
    std::string to;
    int line;
  };
  std::map<std::string, std::vector<Edge>> adj;
  for (const auto& [rel, fi] : by_rel) {
    std::string dir = rel.substr(0, rel.find_last_of('/') + 1);
    for (const Include& inc : fi->includes) {
      std::string cand1 = "src/" + inc.path;
      std::string cand2 = dir + inc.path;
      if (by_rel.count(cand1))
        adj[rel].push_back({cand1, inc.line});
      else if (by_rel.count(cand2))
        adj[rel].push_back({cand2, inc.line});
    }
  }

  // Iterative DFS, reporting each cycle once (keyed by its member set).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    stack.push_back(u);
    for (const Edge& e : adj[u]) {
      if (color[e.to] == 1) {
        auto it = std::find(stack.begin(), stack.end(), e.to);
        std::vector<std::string> cycle(it, stack.end());
        std::vector<std::string> key = cycle;
        std::sort(key.begin(), key.end());
        std::string key_s;
        for (const auto& k : key) key_s += k + "|";
        if (reported.insert(key_s).second) {
          std::string desc;
          for (const auto& f : cycle) desc += f + " -> ";
          desc += e.to;
          out->push_back({u, e.line, kRuleCycle, "include cycle: " + desc});
        }
      } else if (color[e.to] == 0) {
        dfs(e.to);
      }
    }
    stack.pop_back();
    color[u] = 2;
  };
  for (const auto& [rel, fi] : by_rel)
    if (color[rel] == 0) dfs(rel);
}

// ---------------------------------------------------------------------------
// Rule: discarded Status / Result.
// ---------------------------------------------------------------------------

size_t MatchForward(const std::vector<Token>& t, size_t open, char oc, char cc) {
  int depth = 0;
  for (size_t i = open; i < t.size(); ++i) {
    if (t[i].text.size() == 1) {
      if (t[i].text[0] == oc) ++depth;
      if (t[i].text[0] == cc && --depth == 0) return i;
    }
  }
  return t.size();
}

size_t MatchBackward(const std::vector<Token>& t, size_t close, char oc,
                     char cc) {
  int depth = 0;
  for (size_t i = close + 1; i-- > 0;) {
    if (t[i].text.size() == 1) {
      if (t[i].text[0] == cc) ++depth;
      if (t[i].text[0] == oc && --depth == 0) return i;
    }
  }
  return 0;
}

/// Collects names of functions declared in headers with a `Status` or
/// `Result<...>` return type into `status_names`, and names declared with
/// any *other* return type into `other_names`. The discard check only fires
/// on unambiguous names (status minus other): a name shared with e.g. a
/// void callback-style overload cannot be classified at token level, and the
/// `[[nodiscard]]` attribute already covers those sites exactly.
void CollectStatusFunctions(const FileInfo& fi,
                            std::set<std::string>* status_names,
                            std::set<std::string>* other_names) {
  const std::vector<Token>& t = fi.tokens;
  static const std::set<std::string_view> kTypeKeywords = {
      "void", "bool", "int",   "long",     "double", "float",
      "char", "auto", "short", "unsigned", "signed", "size_t",
  };
  for (size_t j = 0; j + 1 < t.size(); ++j) {
    if (!t[j].ident || IsKeyword(t[j].text) || t[j + 1].text != "(") continue;
    if (j == 0) continue;
    // Walk back over ref/pointer decorations to the return-type token.
    size_t p = j - 1;
    while (p > 0 &&
           (t[p].text == "&" || t[p].text == "*" || t[p].text == "&&"))
      --p;
    if (t[p].text == ">") {
      size_t open = MatchBackward(t, p, '<', '>');
      if (open == 0 || !t[open - 1].ident) continue;
      if (t[open - 1].text == "Result")
        status_names->insert(t[j].text);
      else
        other_names->insert(t[j].text);
    } else if (t[p].ident) {
      if (t[p].text == "Status") {
        status_names->insert(t[j].text);
      } else if (!IsKeyword(t[p].text) || kTypeKeywords.count(t[p].text)) {
        other_names->insert(t[j].text);
      }
      // Non-type keywords (return, new, else, ...) mean this is a call or
      // expression, not a declaration — ignore.
    }
  }
}

void CheckDiscardedStatus(const FileInfo& fi,
                          const std::set<std::string>& names,
                          std::vector<Diagnostic>* out) {
  const std::vector<Token>& t = fi.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!t[i].ident || !names.count(t[i].text)) continue;
    if (i + 1 >= t.size() || t[i + 1].text != "(") continue;
    if (fi.directive_lines.count(t[i].line)) continue;  // macro bodies
    size_t close = MatchForward(t, i + 1, '(', ')');
    if (close + 1 >= t.size() || t[close + 1].text != ";") continue;

    // Walk back over the postfix chain (obj.f, p->f, NS::f, g().f, a[i].f)
    // to the start of the full expression statement.
    size_t p = i;
    bool bail = false;
    while (p > 0) {
      const std::string& prev = t[p - 1].text;
      if (prev == "::" || prev == "." || prev == "->") {
        if (p < 2) {
          bail = true;
          break;
        }
        const Token& pre = t[p - 2];
        if (pre.ident) {
          p -= 2;
        } else if (pre.text == ")") {
          size_t open = MatchBackward(t, p - 2, '(', ')');
          p = (open > 0 && t[open - 1].ident) ? open - 1 : open;
        } else if (pre.text == "]") {
          size_t open = MatchBackward(t, p - 2, '[', ']');
          p = (open > 0 && t[open - 1].ident) ? open - 1 : open;
        } else {
          bail = true;
          break;
        }
      } else {
        break;
      }
    }
    if (bail) continue;

    bool discarded = false;
    if (p == 0) {
      discarded = true;
    } else {
      const Token& before = t[p - 1];
      if (before.text == ";" || before.text == "{" || before.text == "}") {
        discarded = true;
      } else if (before.ident) {
        // `else Foo();` / `do Foo();` discard; `return Foo();`, declarations
        // (`Status Foo();`) and everything else consume the value.
        discarded = before.text == "else" || before.text == "do";
      } else if (before.text == ")") {
        size_t open = MatchBackward(t, p - 1, '(', ')');
        bool void_cast = (p - 1) - open == 2 && t[open + 1].text == "void";
        if (!void_cast && open > 0 && t[open - 1].ident) {
          const std::string& kw = t[open - 1].text;
          // Body of `if (...) Foo();` etc. still discards the result.
          discarded = kw == "if" || kw == "while" || kw == "for" ||
                      kw == "switch";
        }
      }
    }
    if (discarded) {
      out->push_back({fi.rel, t[i].line, kRuleStatus,
                      "result of '" + t[i].text +
                          "' (returns Status/Result) is silently discarded; "
                          "check it, propagate it, or cast to (void)"});
    }
  }
}

// ---------------------------------------------------------------------------
// File collection and driver.
// ---------------------------------------------------------------------------

bool SkipDirName(const std::string& name) {
  return name == "fixtures" || name == ".git" || name == "CMakeFiles" ||
         name == "third_party" || name.rfind("build", 0) == 0;
}

bool LintableExtension(const fs::path& p) {
  std::string e = p.extension().string();
  return e == ".h" || e == ".hpp" || e == ".hh" || e == ".cc" ||
         e == ".cpp" || e == ".cxx";
}

void CollectFiles(const fs::path& dir, std::vector<fs::path>* out) {
  if (!fs::exists(dir)) return;
  if (fs::is_regular_file(dir)) {
    if (LintableExtension(dir)) out->push_back(dir);
    return;
  }
  std::vector<fs::path> entries;
  for (const auto& e : fs::directory_iterator(dir)) entries.push_back(e.path());
  std::sort(entries.begin(), entries.end());
  for (const fs::path& p : entries) {
    if (fs::is_directory(p)) {
      if (!SkipDirName(p.filename().string())) CollectFiles(p, out);
    } else if (LintableExtension(p)) {
      out->push_back(p);
    }
  }
}

std::string ReadFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

std::string Diagnostic::Key() const {
  return file + ":" + std::to_string(line) + ":" + rule;
}

std::string Diagnostic::ToString() const {
  return file + ":" + std::to_string(line) + ": " + rule + ": " + message;
}

std::string StripCommentsAndStrings(const std::string& src) {
  std::string out = src;
  enum class St { kNormal, kLine, kBlock, kStr, kChar, kRaw };
  St st = St::kNormal;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case St::kNormal:
        if (c == '/' && next == '/') {
          st = St::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !IsIdentChar(src[i - 1]))) {
          size_t open = src.find('(', i + 2);
          if (open != std::string::npos) {
            raw_delim = ")" + src.substr(i + 2, open - i - 2) + "\"";
            for (size_t k = i; k <= open; ++k)
              if (out[k] != '\n') out[k] = ' ';
            i = open;
            st = St::kRaw;
          }
        } else if (c == '"') {
          st = St::kStr;
        } else if (c == '\'' && i > 0 && IsIdentChar(src[i - 1])) {
          // digit separator (1'000'000) or suffix — not a char literal
        } else if (c == '\'') {
          st = St::kChar;
        }
        break;
      case St::kLine:
        if (c == '\n')
          st = St::kNormal;
        else
          out[i] = ' ';
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          st = St::kNormal;
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
      case St::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if ((st == St::kStr && c == '"') ||
                   (st == St::kChar && c == '\'')) {
          st = St::kNormal;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRaw:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 0; k < raw_delim.size(); ++k)
            if (out[i + k] != '\n') out[i + k] = ' ';
          i += raw_delim.size() - 1;
          st = St::kNormal;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

LintResult RunLint(const Options& options) {
  LintResult result;
  fs::path root = options.root.empty() ? fs::current_path() : options.root;

  std::vector<std::string> dirs = options.dirs;
  if (dirs.empty()) {
    for (const char* d : {"src", "bench", "tests", "examples"})
      if (fs::exists(root / d)) dirs.push_back(d);
    if (dirs.empty()) dirs.push_back(".");
  }

  std::vector<fs::path> paths;
  for (const std::string& d : dirs) CollectFiles(root / d, &paths);
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<FileInfo> files;
  files.reserve(paths.size());
  for (const fs::path& p : paths) {
    FileInfo fi;
    fi.rel = fs::relative(p, root).generic_string();
    std::string text = ReadFile(p);
    fi.raw_lines = SplitLines(text);
    fi.stripped_lines = SplitLines(StripCommentsAndStrings(text));
    fi.tokens = Tokenize(fi.stripped_lines);
    std::string ext = p.extension().string();
    fi.is_header = ext == ".h" || ext == ".hpp" || ext == ".hh";
    for (size_t li = 0; li < fi.raw_lines.size(); ++li)
      ParseNolint(fi.raw_lines[li], static_cast<int>(li) + 1, &fi.nolint);
    ParseIncludes(&fi);
    MarkDirectiveLines(&fi);
    files.push_back(std::move(fi));
  }
  result.files_scanned = static_cast<int>(files.size());

  std::set<std::string> status_decls, other_decls, status_fns;
  for (const FileInfo& fi : files)
    if (fi.is_header) CollectStatusFunctions(fi, &status_decls, &other_decls);
  std::set_difference(status_decls.begin(), status_decls.end(),
                      other_decls.begin(), other_decls.end(),
                      std::inserter(status_fns, status_fns.begin()));

  std::vector<Diagnostic> candidates;
  for (const FileInfo& fi : files) {
    ScanBannedTokens(fi, &candidates);
    CheckLayering(fi, &candidates);
    CheckDiscardedStatus(fi, status_fns, &candidates);
  }
  CheckIncludeCycles(files, &candidates);

  std::map<std::string, const FileInfo*> by_rel;
  for (const FileInfo& fi : files) by_rel[fi.rel] = &fi;
  for (Diagnostic& d : candidates) {
    const FileInfo* fi = by_rel.at(d.file);
    auto it = fi->nolint.find(d.line);
    if (it != fi->nolint.end() &&
        (it->second.count("*") || it->second.count(d.rule))) {
      ++result.suppressions_used;
      continue;
    }
    result.diagnostics.push_back(std::move(d));
  }

  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return result;
}

}  // namespace clouddb::lint
