#include "linter.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iterator>
#include <map>
#include <set>
#include <sstream>
#include <string_view>
#include <tuple>
#include <vector>

#include "frontend.h"
#include "rules_absint.h"
#include "rules_flow.h"
#include "rules_interproc.h"
#include "absint.h"

namespace clouddb::lint {
namespace {

namespace fs = std::filesystem;

constexpr char kRuleWallclock[] = "clouddb-wallclock";
constexpr char kRuleRandom[] = "clouddb-random";
constexpr char kRuleThread[] = "clouddb-thread";
constexpr char kRuleLayering[] = "clouddb-layering";
constexpr char kRuleCycle[] = "clouddb-include-cycle";
constexpr char kRuleStatus[] = "clouddb-status";
constexpr char kRuleMetricName[] = "clouddb-metric-name";
constexpr char kRuleVecAlloc[] = "clouddb-vec-alloc";
constexpr char kRuleApplyNoparse[] = "clouddb-apply-noparse";

/// Module layer ranks. An include edge is legal only if it points at a
/// strictly lower rank (or stays inside the module). `db` and `net` are
/// peers and may not include each other; `fault` and `harness` sit at the
/// top alongside each other. Mirrors the DAG in DESIGN.md — keep in sync.
const std::map<std::string, int>& LayerRanks() {
  static const std::map<std::string, int> kRanks = {
      {"common", 0},     {"metrics", 1}, {"sim", 1},   {"db", 2},
      {"net", 2},        {"cloud", 3},   {"repl", 4},  {"client", 5},
      {"control", 6},    {"cloudstone", 6}, {"fault", 7}, {"harness", 7},
  };
  return kRanks;
}

struct TokenRule {
  std::string_view token;
  const char* rule;
  const char* hint;
  bool call_only = false;  // only when directly followed by '(' and not a
                           // member call (not preceded by '.' or '->')
  bool prefix = false;     // match any identifier starting with `token`
};

const std::vector<TokenRule>& BannedTokens() {
  static const std::vector<TokenRule> kRules = {
      // --- clouddb-wallclock: reading real time breaks seeded replay.
      {"system_clock", kRuleWallclock, "is a wall-clock source"},
      {"steady_clock", kRuleWallclock, "is a wall-clock source"},
      {"high_resolution_clock", kRuleWallclock, "is a wall-clock source"},
      {"file_clock", kRuleWallclock, "is a wall-clock source"},
      {"utc_clock", kRuleWallclock, "is a wall-clock source"},
      {"tai_clock", kRuleWallclock, "is a wall-clock source"},
      {"gps_clock", kRuleWallclock, "is a wall-clock source"},
      {"gettimeofday", kRuleWallclock, "reads the wall clock"},
      {"clock_gettime", kRuleWallclock, "reads the wall clock"},
      {"timespec_get", kRuleWallclock, "reads the wall clock"},
      {"localtime", kRuleWallclock, "reads the wall clock"},
      {"localtime_r", kRuleWallclock, "reads the wall clock"},
      {"gmtime", kRuleWallclock, "reads the wall clock"},
      {"gmtime_r", kRuleWallclock, "reads the wall clock"},
      {"mktime", kRuleWallclock, "reads the wall clock"},
      {"time", kRuleWallclock, "reads the wall clock", /*call_only=*/true},
      // --- clouddb-random: only common/rng may own randomness.
      {"random_device", kRuleRandom, "is a nondeterministic entropy source"},
      {"rand", kRuleRandom, "uses hidden global RNG state", true},
      {"srand", kRuleRandom, "uses hidden global RNG state", true},
      {"rand_r", kRuleRandom, "is a platform RNG", true},
      {"random", kRuleRandom, "uses hidden global RNG state", true},
      {"drand48", kRuleRandom, "is a platform RNG"},
      {"erand48", kRuleRandom, "is a platform RNG"},
      {"lrand48", kRuleRandom, "is a platform RNG"},
      {"nrand48", kRuleRandom, "is a platform RNG"},
      {"mrand48", kRuleRandom, "is a platform RNG"},
      {"jrand48", kRuleRandom, "is a platform RNG"},
      {"random_shuffle", kRuleRandom, "uses unspecified randomness"},
      {"mt19937", kRuleRandom, "is a std random engine"},
      {"mt19937_64", kRuleRandom, "is a std random engine"},
      {"minstd_rand", kRuleRandom, "is a std random engine"},
      {"minstd_rand0", kRuleRandom, "is a std random engine"},
      {"default_random_engine", kRuleRandom, "is a std random engine"},
      {"knuth_b", kRuleRandom, "is a std random engine"},
      {"ranlux24", kRuleRandom, "is a std random engine"},
      {"ranlux24_base", kRuleRandom, "is a std random engine"},
      {"ranlux48", kRuleRandom, "is a std random engine"},
      {"ranlux48_base", kRuleRandom, "is a std random engine"},
      // --- clouddb-thread: the simulator is single-threaded by design.
      {"thread", kRuleThread, "is a real-thread primitive"},
      {"jthread", kRuleThread, "is a real-thread primitive"},
      {"this_thread", kRuleThread, "is a real-thread primitive"},
      {"pthread_", kRuleThread, "is a real-thread primitive", false, true},
      {"mutex", kRuleThread, "is a real-thread primitive"},
      {"shared_mutex", kRuleThread, "is a real-thread primitive"},
      {"recursive_mutex", kRuleThread, "is a real-thread primitive"},
      {"timed_mutex", kRuleThread, "is a real-thread primitive"},
      {"recursive_timed_mutex", kRuleThread, "is a real-thread primitive"},
      {"condition_variable", kRuleThread, "is a real-thread primitive"},
      {"condition_variable_any", kRuleThread, "is a real-thread primitive"},
      {"lock_guard", kRuleThread, "is a real-thread primitive"},
      {"unique_lock", kRuleThread, "is a real-thread primitive"},
      {"scoped_lock", kRuleThread, "is a real-thread primitive"},
      {"shared_lock", kRuleThread, "is a real-thread primitive"},
      {"atomic", kRuleThread, "implies real threads"},
      {"atomic_", kRuleThread, "implies real threads", false, true},
      {"async", kRuleThread, "launches real threads", true},
      {"sleep_for", kRuleThread, "blocks a real thread"},
      {"sleep_until", kRuleThread, "blocks a real thread"},
      {"usleep", kRuleThread, "blocks a real thread"},
      {"nanosleep", kRuleThread, "blocks a real thread"},
      {"sleep", kRuleThread, "blocks a real thread", true},
      // --- clouddb-vec-alloc: vectorized kernel files (src/db/vec_*) sit on
      // the per-chunk hot path and must stay allocation-free — operands are
      // string_views into row storage and scratch comes from VecArena. Any
      // std::string construction or formatting there is an accidental
      // per-lane heap allocation.
      {"string", kRuleVecAlloc, "allocates per-value heap storage"},
      {"to_string", kRuleVecAlloc, "formats into a heap buffer"},
      {"stringstream", kRuleVecAlloc, "is a heap-backed formatter"},
      {"ostringstream", kRuleVecAlloc, "is a heap-backed formatter"},
      {"StrFormat", kRuleVecAlloc, "formats into a heap buffer"},
  };
  return kRules;
}

const char* RuleRemedy(std::string_view rule) {
  if (rule == kRuleWallclock)
    return "derive time from sim::Simulation::Now() / LocalClock";
  if (rule == kRuleRandom) return "draw from a seeded clouddb::Rng instead";
  if (rule == kRuleVecAlloc)
    return "keep vec kernels allocation-free: string_view operands and "
           "VecArena/caller-owned scratch";
  if (rule == kRuleApplyNoparse)
    return "operate on db::RowOp images via Table::ApplyRowDelta only";
  return "model concurrency as simulation events (sim/simulation.h)";
}

// ---------------------------------------------------------------------------
// Rule: determinism token scan.
// ---------------------------------------------------------------------------

bool RandomExempt(const std::string& rel) {
  // ISSUE rule family 1: common/rng is the one sanctioned home of RNG code.
  return rel.rfind("src/common/rng", 0) == 0;
}

/// Sanctioned homes for real-thread primitives. The simulator itself is
/// single-threaded by design (src/sim, src/db, src/repl, ... must stay
/// thread-free — the tree-wide scan enforces it); the one exception is the
/// harness's sweep runner, whose workers each drive an *independent*
/// Simulation and merge results in deterministic grid order (DESIGN.md
/// "Simulation kernel & parallel harness"). Extending this list requires the
/// same isolation argument.
bool ThreadExempt(const std::string& rel) {
  static constexpr const char* kSanctioned[] = {"src/harness/sweep"};
  for (const char* prefix : kSanctioned) {
    if (rel.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

/// clouddb-vec-alloc is scope-*limited* rather than scope-exempted: it only
/// applies inside the vectorized kernel files, everywhere else std::string
/// use is normal engine code.
bool VecAllocScoped(const std::string& rel) {
  return rel.rfind("src/db/vec_", 0) == 0;
}

void ScanBannedTokens(const SourceFile& fi, std::vector<Diagnostic>* out) {
  for (size_t li = 0; li < fi.stripped_lines.size(); ++li) {
    const std::string& s = fi.stripped_lines[li];
    int line = static_cast<int>(li) + 1;
    size_t i = 0;
    while (i < s.size()) {
      if (!(std::isalpha(static_cast<unsigned char>(s[i])) || s[i] == '_')) {
        ++i;
        continue;
      }
      if (i > 0 && IsIdentChar(s[i - 1])) {  // mid-identifier, skip
        ++i;
        while (i < s.size() && IsIdentChar(s[i])) ++i;
        continue;
      }
      size_t j = i;
      while (j < s.size() && IsIdentChar(s[j])) ++j;
      std::string_view ident(&s[i], j - i);
      for (const TokenRule& tr : BannedTokens()) {
        bool hit = tr.prefix ? ident.size() > tr.token.size() &&
                                   ident.substr(0, tr.token.size()) == tr.token
                             : ident == tr.token;
        if (!hit) continue;
        if (tr.rule == std::string_view(kRuleRandom) && RandomExempt(fi.rel))
          continue;
        if (tr.rule == std::string_view(kRuleThread) && ThreadExempt(fi.rel))
          continue;
        if (tr.rule == std::string_view(kRuleVecAlloc) &&
            !VecAllocScoped(fi.rel))
          continue;
        if (tr.call_only) {
          size_t k = j;
          while (k < s.size() && s[k] == ' ') ++k;
          if (k >= s.size() || s[k] != '(') continue;
          // Member calls like `clock.time()` are the simulated clock, not
          // the libc function; only flag free / namespace-qualified calls.
          size_t b = i;
          while (b > 0 && s[b - 1] == ' ') --b;
          if (b > 0 && (s[b - 1] == '.' ||
                        (b > 1 && s[b - 2] == '-' && s[b - 1] == '>')))
            continue;
          // An identifier right before is a return type — `long time()` is
          // a declaration of an unrelated function, not a libc call —
          // unless it is a statement keyword like `return time(nullptr)`.
          if (b > 0 && IsIdentChar(s[b - 1])) {
            size_t st = b;
            while (st > 0 && IsIdentChar(s[st - 1])) --st;
            static const std::set<std::string_view> kStmtKeywords = {
                "return", "co_return", "co_yield", "co_await",
                "throw",  "else",      "do",       "case",
            };
            if (!kStmtKeywords.count(std::string_view(&s[st], b - st)))
              continue;
          }
        }
        out->push_back({fi.rel, line, tr.rule,
                        "'" + std::string(ident) + "' " + tr.hint + "; " +
                            RuleRemedy(tr.rule)});
        break;
      }
      i = j;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: module layering + include cycles.
// ---------------------------------------------------------------------------

/// First path component after "src/", or "" when not an in-tree module file.
std::string ModuleOf(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return "";
  size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return "";  // file directly under src/
  return rel.substr(4, slash - 4);
}

void CheckLayering(const SourceFile& fi, std::vector<Diagnostic>* out) {
  std::string mod = ModuleOf(fi.rel);
  if (mod.empty()) return;
  const auto& ranks = LayerRanks();
  auto self = ranks.find(mod);
  if (self == ranks.end()) {
    out->push_back({fi.rel, 1, kRuleLayering,
                    "module '" + mod +
                        "' is not registered in the layer table; add it to "
                        "LayerRanks() in tools/lint/linter.cc and to the DAG "
                        "in DESIGN.md"});
    return;
  }
  for (const Include& inc : fi.includes) {
    size_t slash = inc.path.find('/');
    if (slash == std::string::npos) continue;  // same-dir include
    std::string target = inc.path.substr(0, slash);
    auto it = ranks.find(target);
    if (it == ranks.end() || target == mod) continue;
    if (it->second > self->second) {
      out->push_back({fi.rel, inc.line, kRuleLayering,
                      "module '" + mod + "' (layer " +
                          std::to_string(self->second) +
                          ") may not include '" + target + "' (layer " +
                          std::to_string(it->second) +
                          "); dependencies must flow strictly downward"});
    } else if (it->second == self->second) {
      out->push_back({fi.rel, inc.line, kRuleLayering,
                      "'" + mod + "' and '" + target +
                          "' are peer modules at layer " +
                          std::to_string(self->second) +
                          " and may not include each other"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: parser-free writeset apply.
// ---------------------------------------------------------------------------

/// The row-based replication fast path exists to apply row images WITHOUT
/// the SQL front end; an sql_parser/sql_lexer include in its translation
/// units would silently reintroduce the per-statement parse cost the
/// whole subsystem is designed to avoid. Scope-limited like
/// clouddb-vec-alloc: only the writeset apply TUs are checked.
bool ApplyNoparseScoped(const std::string& rel) {
  return rel.rfind("src/db/writeset_apply", 0) == 0;
}

void CheckApplyNoparse(const SourceFile& fi, std::vector<Diagnostic>* out) {
  if (!ApplyNoparseScoped(fi.rel)) return;
  for (const Include& inc : fi.includes) {
    if (inc.path.find("sql_parser") != std::string::npos ||
        inc.path.find("sql_lexer") != std::string::npos) {
      out->push_back(
          {fi.rel, inc.line, kRuleApplyNoparse,
           "writeset apply must stay parser-free; including '" + inc.path +
               "' puts the SQL front end back on the row-image fast path; " +
               RuleRemedy(kRuleApplyNoparse)});
    }
  }
}

void CheckIncludeCycles(const std::vector<SourceFile>& files,
                        std::vector<Diagnostic>* out) {
  // File-level graph over scanned src/ files; include paths resolve against
  // the src/ include root and against the including file's own directory.
  std::map<std::string, const SourceFile*> by_rel;
  for (const SourceFile& fi : files)
    if (fi.rel.rfind("src/", 0) == 0) by_rel[fi.rel] = &fi;

  struct Edge {
    std::string to;
    int line;
  };
  std::map<std::string, std::vector<Edge>> adj;
  for (const auto& [rel, fi] : by_rel) {
    std::string dir = rel.substr(0, rel.find_last_of('/') + 1);
    for (const Include& inc : fi->includes) {
      std::string cand1 = "src/" + inc.path;
      std::string cand2 = dir + inc.path;
      if (by_rel.count(cand1))
        adj[rel].push_back({cand1, inc.line});
      else if (by_rel.count(cand2))
        adj[rel].push_back({cand2, inc.line});
    }
  }

  // Iterative DFS, reporting each cycle once (keyed by its member set).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    stack.push_back(u);
    for (const Edge& e : adj[u]) {
      if (color[e.to] == 1) {
        auto it = std::find(stack.begin(), stack.end(), e.to);
        std::vector<std::string> cycle(it, stack.end());
        std::vector<std::string> key = cycle;
        std::sort(key.begin(), key.end());
        std::string key_s;
        for (const auto& k : key) key_s += k + "|";
        if (reported.insert(key_s).second) {
          std::string desc;
          for (const auto& f : cycle) desc += f + " -> ";
          desc += e.to;
          out->push_back({u, e.line, kRuleCycle, "include cycle: " + desc});
        }
      } else if (color[e.to] == 0) {
        dfs(e.to);
      }
    }
    stack.pop_back();
    color[u] = 2;
  };
  for (const auto& [rel, fi] : by_rel)
    if (color[rel] == 0) dfs(rel);
}

// ---------------------------------------------------------------------------
// Rule: discarded Status / Result.
// ---------------------------------------------------------------------------

size_t MatchForward(const std::vector<Token>& t, size_t open, char oc, char cc) {
  int depth = 0;
  for (size_t i = open; i < t.size(); ++i) {
    if (t[i].text.size() == 1) {
      if (t[i].text[0] == oc) ++depth;
      if (t[i].text[0] == cc && --depth == 0) return i;
    }
  }
  return t.size();
}

size_t MatchBackward(const std::vector<Token>& t, size_t close, char oc,
                     char cc) {
  int depth = 0;
  for (size_t i = close + 1; i-- > 0;) {
    if (t[i].text.size() == 1) {
      if (t[i].text[0] == cc) ++depth;
      if (t[i].text[0] == oc && --depth == 0) return i;
    }
  }
  return 0;
}

/// Collects names of functions declared in headers with a `Status` or
/// `Result<...>` return type into `status_names`, and names declared with
/// any *other* return type into `other_names`. The discard check only fires
/// on unambiguous names (status minus other): a name shared with e.g. a
/// void callback-style overload cannot be classified at token level, and the
/// `[[nodiscard]]` attribute already covers those sites exactly.
void CollectStatusFunctions(const SourceFile& fi,
                            std::set<std::string>* status_names,
                            std::set<std::string>* other_names) {
  const std::vector<Token>& t = fi.tokens;
  static const std::set<std::string_view> kTypeKeywords = {
      "void", "bool", "int",   "long",     "double", "float",
      "char", "auto", "short", "unsigned", "signed", "size_t",
  };
  for (size_t j = 0; j + 1 < t.size(); ++j) {
    if (!t[j].ident || IsKeyword(t[j].text) || t[j + 1].text != "(") continue;
    if (j == 0) continue;
    // Walk back over ref/pointer decorations to the return-type token.
    size_t p = j - 1;
    while (p > 0 &&
           (t[p].text == "&" || t[p].text == "*" || t[p].text == "&&"))
      --p;
    if (t[p].text == ">") {
      size_t open = MatchBackward(t, p, '<', '>');
      if (open == 0 || !t[open - 1].ident) continue;
      if (t[open - 1].text == "Result")
        status_names->insert(t[j].text);
      else
        other_names->insert(t[j].text);
    } else if (t[p].ident) {
      if (t[p].text == "Status") {
        status_names->insert(t[j].text);
      } else if (!IsKeyword(t[p].text) || kTypeKeywords.count(t[p].text)) {
        other_names->insert(t[j].text);
      }
      // Non-type keywords (return, new, else, ...) mean this is a call or
      // expression, not a declaration — ignore.
    }
  }
}

void CheckDiscardedStatus(const SourceFile& fi,
                          const std::set<std::string>& names,
                          std::vector<Diagnostic>* out) {
  const std::vector<Token>& t = fi.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!t[i].ident || !names.count(t[i].text)) continue;
    if (i + 1 >= t.size() || t[i + 1].text != "(") continue;
    if (fi.directive_lines.count(t[i].line)) continue;  // macro bodies
    size_t close = MatchForward(t, i + 1, '(', ')');
    if (close + 1 >= t.size() || t[close + 1].text != ";") continue;

    // Walk back over the postfix chain (obj.f, p->f, NS::f, g().f, a[i].f)
    // to the start of the full expression statement.
    size_t p = i;
    bool bail = false;
    while (p > 0) {
      const std::string& prev = t[p - 1].text;
      if (prev == "::" || prev == "." || prev == "->") {
        if (p < 2) {
          bail = true;
          break;
        }
        const Token& pre = t[p - 2];
        if (pre.ident) {
          p -= 2;
        } else if (pre.text == ")") {
          size_t open = MatchBackward(t, p - 2, '(', ')');
          p = (open > 0 && t[open - 1].ident) ? open - 1 : open;
        } else if (pre.text == "]") {
          size_t open = MatchBackward(t, p - 2, '[', ']');
          p = (open > 0 && t[open - 1].ident) ? open - 1 : open;
        } else {
          bail = true;
          break;
        }
      } else {
        break;
      }
    }
    if (bail) continue;

    bool discarded = false;
    if (p == 0) {
      discarded = true;
    } else {
      const Token& before = t[p - 1];
      if (before.text == ";" || before.text == "{" || before.text == "}") {
        discarded = true;
      } else if (before.ident) {
        // `else Foo();` / `do Foo();` discard; `return Foo();`, declarations
        // (`Status Foo();`) and everything else consume the value.
        discarded = before.text == "else" || before.text == "do";
      } else if (before.text == ")") {
        size_t open = MatchBackward(t, p - 1, '(', ')');
        bool void_cast = (p - 1) - open == 2 && t[open + 1].text == "void";
        if (!void_cast && open > 0 && t[open - 1].ident) {
          const std::string& kw = t[open - 1].text;
          // Body of `if (...) Foo();` etc. still discards the result.
          discarded = kw == "if" || kw == "while" || kw == "for" ||
                      kw == "switch";
        }
      }
    }
    if (discarded) {
      out->push_back({fi.rel, t[i].line, kRuleStatus,
                      "result of '" + t[i].text +
                          "' (returns Status/Result) is silently discarded; "
                          "check it, propagate it, or cast to (void)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: metric-name hygiene.
// ---------------------------------------------------------------------------

/// Valid metric names are what the spine's aggregation model depends on:
/// lowercase dot-separated paths (`proxy.reads.bounded`) with at least a
/// module segment and a leaf, so MergeFrom lines up like-for-like across
/// node registries and ToString() sorts into stable dashboards. Segments are
/// non-empty runs of [a-z0-9_].
bool IsValidMetricName(const std::string& name) {
  int segments = 0;
  size_t run = 0;
  for (char c : name) {
    if (c == '.') {
      if (run == 0) return false;  // empty segment ("a..b", ".a", trailing)
      ++segments;
      run = 0;
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_') {
      ++run;
    } else {
      return false;
    }
  }
  if (run == 0) return false;
  ++segments;
  return segments >= 2;
}

/// Scans MetricRegistry registration calls (AddCounter/AddGauge/AddProbe/
/// AddEwma/AddHistogram) whose first argument is a string literal and checks
/// the name. Dynamic names (StrFormat(...)) are exempt — per-index backend
/// probes legitimately compute names — as are declarations/definitions,
/// where the char after '(' is a parameter type, not a quote. Duplicate
/// literals are flagged only under src/: production modules register each
/// name once per registry (MetricRegistry aborts at runtime otherwise),
/// while tests legitimately reuse a name across many short-lived registries.
void CheckMetricNames(const SourceFile& fi, std::vector<Diagnostic>* out) {
  static constexpr std::string_view kRegisterFns[] = {
      "AddCounter", "AddGauge", "AddProbe", "AddEwma", "AddHistogram"};
  const bool check_duplicates = fi.rel.rfind("src/", 0) == 0;
  std::map<std::string, int> first_seen;  // literal -> first line
  for (size_t li = 0; li < fi.stripped_lines.size(); ++li) {
    const std::string& s = fi.stripped_lines[li];
    for (std::string_view fn : kRegisterFns) {
      for (size_t pos = s.find(fn); pos != std::string::npos;
           pos = s.find(fn, pos + 1)) {
        if (pos > 0 && IsIdentChar(s[pos - 1])) continue;  // mid-identifier
        size_t k = pos + fn.size();
        if (k < s.size() && IsIdentChar(s[k])) continue;  // longer identifier
        while (k < s.size() && s[k] == ' ') ++k;
        if (k >= s.size() || s[k] != '(') continue;  // not a call
        ++k;
        // The literal opens on this line or (argument wrapped) the next one.
        size_t qline = li;
        while (k < s.size() && s[k] == ' ') ++k;
        if (k >= s.size() && li + 1 < fi.stripped_lines.size()) {
          qline = li + 1;
          const std::string& next = fi.stripped_lines[qline];
          k = 0;
          while (k < next.size() && next[k] == ' ') ++k;
        }
        const std::string& stripped = fi.stripped_lines[qline];
        if (k >= stripped.size() || stripped[k] != '"') continue;  // dynamic
        size_t close = stripped.find('"', k + 1);
        if (close == std::string::npos) continue;  // malformed; parser's job
        // StripCommentsAndStrings preserves quote positions but blanks the
        // contents — recover the literal from the raw line.
        std::string name =
            fi.raw_lines[qline].substr(k + 1, close - k - 1);
        int line = static_cast<int>(li) + 1;
        if (!IsValidMetricName(name)) {
          out->push_back(
              {fi.rel, line, kRuleMetricName,
               "metric name \"" + name +
                   "\" is not lowercase dot-separated; use at least two "
                   "non-empty [a-z0-9_] segments like \"module.metric\""});
          continue;
        }
        if (!check_duplicates) continue;
        auto [it, inserted] = first_seen.emplace(name, line);
        if (!inserted) {
          out->push_back(
              {fi.rel, line, kRuleMetricName,
               "metric name \"" + name + "\" already registered at line " +
                   std::to_string(it->second) +
                   "; each name is registered once per registry"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// File collection and driver.
// ---------------------------------------------------------------------------

bool SkipDirName(const std::string& name) {
  return name == "fixtures" || name == ".git" || name == "CMakeFiles" ||
         name == "third_party" || name.rfind("build", 0) == 0;
}

bool LintableExtension(const fs::path& p) {
  std::string e = p.extension().string();
  return e == ".h" || e == ".hpp" || e == ".hh" || e == ".cc" ||
         e == ".cpp" || e == ".cxx";
}

void CollectFiles(const fs::path& dir, std::vector<fs::path>* out) {
  if (!fs::exists(dir)) return;
  if (fs::is_regular_file(dir)) {
    if (LintableExtension(dir)) out->push_back(dir);
    return;
  }
  std::vector<fs::path> entries;
  for (const auto& e : fs::directory_iterator(dir)) entries.push_back(e.path());
  std::sort(entries.begin(), entries.end());
  for (const fs::path& p : entries) {
    if (fs::is_directory(p)) {
      if (!SkipDirName(p.filename().string())) CollectFiles(p, out);
    } else if (LintableExtension(p)) {
      out->push_back(p);
    }
  }
}

const char* SeverityName(Severity s) {
  return s == Severity::kWarn ? "warning" : "error";
}

void JsonEscape(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

std::string Diagnostic::Key() const {
  return file + ":" + std::to_string(line) + ":" + rule;
}

std::string Diagnostic::ToString() const {
  std::string sev = severity == Severity::kWarn ? "warning: " : "";
  return file + ":" + std::to_string(line) + ": " + rule + ": " + sev +
         message;
}

LintResult RunLint(const Options& options) {
  LintResult result;
  fs::path root = options.root.empty() ? fs::current_path() : options.root;

  std::vector<std::string> dirs = options.dirs;
  if (dirs.empty()) {
    for (const char* d : {"src", "tools", "bench", "tests", "examples"})
      if (fs::exists(root / d)) dirs.push_back(d);
    if (dirs.empty()) dirs.push_back(".");
  }

  std::vector<fs::path> paths;
  for (const std::string& d : dirs) CollectFiles(root / d, &paths);
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& p : paths)
    files.push_back(LoadSourceFile(p, fs::relative(p, root).generic_string()));
  result.files_scanned = static_cast<int>(files.size());

  // Structural indexes feed the flow-aware passes.
  std::vector<FileIndex> indexes;
  indexes.reserve(files.size());
  for (const SourceFile& fi : files) indexes.push_back(BuildIndex(fi));
  std::vector<AnalyzedFile> analyzed;
  analyzed.reserve(files.size());
  for (size_t i = 0; i < files.size(); ++i)
    analyzed.push_back({&files[i], &indexes[i]});

  std::set<std::string> status_decls, other_decls, status_fns;
  for (const SourceFile& fi : files)
    if (fi.is_header) CollectStatusFunctions(fi, &status_decls, &other_decls);
  std::set_difference(status_decls.begin(), status_decls.end(),
                      other_decls.begin(), other_decls.end(),
                      std::inserter(status_fns, status_fns.begin()));

  std::vector<Diagnostic> candidates;
  for (const SourceFile& fi : files) {
    ScanBannedTokens(fi, &candidates);
    CheckLayering(fi, &candidates);
    CheckDiscardedStatus(fi, status_fns, &candidates);
    CheckMetricNames(fi, &candidates);
    CheckApplyNoparse(fi, &candidates);
  }
  CheckIncludeCycles(files, &candidates);
  CheckDanglingCaptures(analyzed, &candidates);
  CheckLockDiscipline(analyzed, &candidates);
  CheckIncludeHygiene(analyzed, &candidates);

  // Interprocedural passes share one call graph + CFG context.
  InterprocContext interproc = BuildInterprocContext(analyzed);
  CheckLockOrder(interproc, &candidates);
  CheckUseAfterMove(interproc, &candidates);
  CheckStatusPath(interproc, status_fns, &candidates);
  CheckDeterminismTaint(interproc, &candidates);

  // Abstract-interpretation passes share one solved interpreter.
  AbsInterpreter absint(interproc);
  absint.Run();
  CheckBounds(absint, &candidates);
  CheckDivZero(absint, &candidates);
  CheckNarrowing(absint, &candidates);
  CheckCodecSymmetry(absint, &candidates);

  std::set<std::string> baseline;
  if (!options.baseline_file.empty()) {
    std::ifstream bl(options.baseline_file);
    std::string bl_line;
    while (std::getline(bl, bl_line)) {
      size_t b = bl_line.find_first_not_of(" \t");
      if (b == std::string::npos || bl_line[b] == '#') continue;
      size_t e = bl_line.find_last_not_of(" \t\r");
      baseline.insert(bl_line.substr(b, e - b + 1));
    }
  }

  auto severity_of = [&options](const std::string& rule) {
    auto it = options.severities.find(rule);
    return it == options.severities.end() ? Severity::kError : it->second;
  };

  std::map<std::string, const SourceFile*> by_rel;
  for (const SourceFile& fi : files) by_rel[fi.rel] = &fi;
  for (Diagnostic& d : candidates) {
    Severity sev = severity_of(d.rule);
    if (sev == Severity::kOff) continue;  // disabled: not even a suppression
    d.severity = sev;
    const SourceFile* fi = by_rel.at(d.file);
    auto it = fi->nolint.find(d.line);
    if (it != fi->nolint.end() &&
        (it->second.count("*") || it->second.count(d.rule))) {
      ++result.suppressions_used;
      auto jt = fi->nolint_justified.find(d.line);
      if (jt != fi->nolint_justified.end() && jt->second.count(d.rule)) {
        ++result.justified_suppressions;
      }
      continue;
    }
    if (baseline.count(d.Key())) {
      ++result.baselined;
      continue;
    }
    if (sev == Severity::kWarn)
      ++result.warnings;
    else
      ++result.errors;
    result.diagnostics.push_back(std::move(d));
  }

  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return result;
}

std::string ToJson(const LintResult& result) {
  std::string out = "{\n";
  out += "  \"files_scanned\": " + std::to_string(result.files_scanned) + ",\n";
  out += "  \"suppressions_used\": " +
         std::to_string(result.suppressions_used) + ",\n";
  out += "  \"justified_suppressions\": " +
         std::to_string(result.justified_suppressions) + ",\n";
  out += "  \"baselined\": " + std::to_string(result.baselined) + ",\n";
  out += "  \"errors\": " + std::to_string(result.errors) + ",\n";
  out += "  \"warnings\": " + std::to_string(result.warnings) + ",\n";
  out += "  \"diagnostics\": [";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": \"";
    JsonEscape(d.file, &out);
    out += "\", \"line\": " + std::to_string(d.line) + ", \"rule\": \"";
    JsonEscape(d.rule, &out);
    out += "\", \"severity\": \"";
    out += SeverityName(d.severity);
    out += "\", \"message\": \"";
    JsonEscape(d.message, &out);
    out += "\", \"fix\": \"";
    out += d.fix_kind == FixKind::kRemoveLine  ? "remove-line"
           : d.fix_kind == FixKind::kAddInclude ? "add-include"
                                                : "none";
    out += "\"";
    if (d.fix_kind == FixKind::kAddInclude) {
      out += ", \"fix_include\": \"";
      JsonEscape(d.fix_include, &out);
      out += "\"";
    }
    out += "}";
  }
  out += result.diagnostics.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

int ApplyFixes(const std::filesystem::path& root, const LintResult& result) {
  // file rel -> (lines to delete, include spellings to insert)
  std::map<std::string, std::pair<std::set<int>, std::set<std::string>>> plan;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.fix_kind == FixKind::kRemoveLine) {
      plan[d.file].first.insert(d.line);
    } else if (d.fix_kind == FixKind::kAddInclude && !d.fix_include.empty()) {
      plan[d.file].second.insert(d.fix_include);
    }
  }

  int edits = 0;
  for (const auto& [rel, fixes] : plan) {
    const std::set<int>& removals = fixes.first;
    fs::path path = root / rel;
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    in.close();

    std::vector<std::string> out;
    out.reserve(lines.size());
    for (size_t i = 0; i < lines.size(); ++i) {
      int ln = static_cast<int>(i) + 1;
      if (removals.count(ln)) {
        ++edits;
        // Removing the only include between two blank lines would leave a
        // double blank; fold it.
        if (!out.empty() && out.back().empty() && i + 1 < lines.size() &&
            lines[i + 1].empty()) {
          ++i;
        }
        continue;
      }
      out.push_back(lines[i]);
    }

    // Insert missing direct includes after the last quoted include (falling
    // back to the last include of any kind, then the top of the file).
    std::vector<std::string> adds;
    for (const std::string& inc : fixes.second) {
      std::string text = "#include \"" + inc + "\"";
      if (std::find(out.begin(), out.end(), text) == out.end())
        adds.push_back(text);
    }
    if (!adds.empty()) {
      int last_quoted = -1, last_any = -1;
      for (size_t i = 0; i < out.size(); ++i) {
        size_t p = out[i].find_first_not_of(" \t");
        if (p == std::string::npos || out[i][p] != '#') continue;
        if (out[i].find("include", p) == std::string::npos) continue;
        last_any = static_cast<int>(i);
        if (out[i].find('"') != std::string::npos)
          last_quoted = static_cast<int>(i);
      }
      int at = last_quoted >= 0 ? last_quoted : last_any;
      out.insert(at >= 0 ? out.begin() + at + 1 : out.begin(), adds.begin(),
                 adds.end());
      edits += static_cast<int>(adds.size());
    }

    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    for (const std::string& l : out) os << l << "\n";
  }
  return edits;
}

namespace {

int CountFixable(const LintResult& r) {
  int n = 0;
  for (const Diagnostic& d : r.diagnostics)
    if (d.fix_kind != FixKind::kNone) ++n;
  return n;
}

}  // namespace

FixLoopResult FixUntilConverged(const std::filesystem::path& root,
                                const std::function<LintResult()>& run_lint,
                                int max_passes) {
  FixLoopResult loop;
  loop.result = run_lint();
  while (CountFixable(loop.result) > 0 && loop.passes < max_passes) {
    int edits = ApplyFixes(root, loop.result);
    ++loop.passes;
    loop.edits += edits;
    loop.result = run_lint();
    // Zero edits with fixable diagnostics left means the fixes are not
    // reaching the files; another round would loop forever.
    if (edits == 0) break;
  }
  loop.converged = CountFixable(loop.result) == 0;
  return loop;
}

FixLoopResult FixUntilConverged(const Options& options, int max_passes) {
  fs::path root = options.root.empty() ? fs::current_path() : options.root;
  return FixUntilConverged(
      root, [&options]() { return RunLint(options); }, max_passes);
}

}  // namespace clouddb::lint
