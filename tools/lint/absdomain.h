#ifndef CLOUDDB_TOOLS_LINT_ABSDOMAIN_H_
#define CLOUDDB_TOOLS_LINT_ABSDOMAIN_H_

#include <cstdint>
#include <map>
#include <string>

namespace clouddb::lint {

/// Abstract domains for the lint-side abstract interpreter (absint.{h,cc}).
/// Three cooperating lattices:
///
///  * Interval — signed-64 value ranges with +/-inf sentinels, saturating
///    transfer functions, and the classic widen-to-extreme / narrow-back
///    operators used at loop heads.
///  * Nullness — four-point pointer lattice (bottom / null / non-null / top).
///  * AbsValue — one variable's state: an interval, a nullness, an optional
///    "provably nonzero" bit (for `x != 0` guards the interval cannot
///    express), and *relational* facts of the form `var < sym + c` /
///    `var >= sym + c` against other variables or container-size symbols
///    ("size:path"). The relational half is what lets `i < v.size()` guards
///    discharge `v[i]` without a full octagon domain.
///
/// Everything is value-semantic and deterministic; joins are commutative so
/// worklist visit order cannot change the fixpoint.

struct Interval {
  static constexpr int64_t kMin = INT64_MIN;  // -inf sentinel
  static constexpr int64_t kMax = INT64_MAX;  // +inf sentinel

  int64_t lo = kMin;
  int64_t hi = kMax;
  bool bottom = false;  // contradiction / unreachable

  static Interval Top() { return Interval{}; }
  static Interval Bottom() {
    Interval r;
    r.bottom = true;
    return r;
  }
  static Interval Constant(int64_t v) { return Interval{v, v, false}; }
  static Interval Range(int64_t lo, int64_t hi) {
    if (lo > hi) return Bottom();
    return Interval{lo, hi, false};
  }

  bool IsTop() const { return !bottom && lo == kMin && hi == kMax; }
  bool IsConstant() const { return !bottom && lo == hi; }
  bool Contains(int64_t v) const { return !bottom && lo <= v && v <= hi; }
  /// True when every value of the interval lies inside [lo, hi].
  bool Within(int64_t l, int64_t h) const {
    return !bottom && lo >= l && hi <= h;
  }
  bool operator==(const Interval& o) const {
    return bottom == o.bottom && (bottom || (lo == o.lo && hi == o.hi));
  }

  static Interval Join(const Interval& a, const Interval& b);
  static Interval Meet(const Interval& a, const Interval& b);
  /// Widen(previous, next): bounds that moved jump to the infinities.
  static Interval Widen(const Interval& prev, const Interval& next);

  static Interval Add(const Interval& a, const Interval& b);
  static Interval Sub(const Interval& a, const Interval& b);
  static Interval Mul(const Interval& a, const Interval& b);
  static Interval Div(const Interval& a, const Interval& b);  // trunc toward 0
  static Interval Mod(const Interval& a, const Interval& b);
  static Interval Shl(const Interval& a, const Interval& b);
  static Interval Shr(const Interval& a, const Interval& b);
  static Interval BitAnd(const Interval& a, const Interval& b);
  static Interval Neg(const Interval& a);
  static Interval Min(const Interval& a, const Interval& b);
  static Interval Max(const Interval& a, const Interval& b);
};

enum class Nullness : uint8_t { kBottom, kNull, kNonNull, kTop };

Nullness JoinNullness(Nullness a, Nullness b);

/// Relational bounds against a symbol: another variable's name or a
/// container-size symbol spelled "size:<path>". `upper_lt[s] = c` encodes
/// `var < s + c`; `lower_ge[s] = c` encodes `var >= s + c`. Joins keep the
/// weaker bound on common symbols and drop symbols known on only one side.
struct AbsValue {
  Interval range;
  Nullness nullness = Nullness::kTop;
  bool nonzero = false;  // proven != 0 even when `range` straddles zero
  bool is_float = false; // declared floating-point (div-zero rule exempts /0 UB)
  std::map<std::string, int64_t> upper_lt;
  std::map<std::string, int64_t> lower_ge;

  bool operator==(const AbsValue& o) const {
    return range == o.range && nullness == o.nullness && nonzero == o.nonzero &&
           is_float == o.is_float && upper_lt == o.upper_lt &&
           lower_ge == o.lower_ge;
  }

  static AbsValue Top() { return AbsValue{}; }
  static AbsValue Of(const Interval& iv) {
    AbsValue v;
    v.range = iv;
    if (!iv.Contains(0)) v.nonzero = !iv.bottom;
    return v;
  }

  static AbsValue Join(const AbsValue& a, const AbsValue& b);
  /// Widening: interval widens; relational facts survive only when present
  /// on both sides with a non-growing constant (guarantees termination).
  static AbsValue Widen(const AbsValue& prev, const AbsValue& next);
};

/// Declared-integer-type ranges ("uint32_t" -> [0, 2^32-1], ...). Returns
/// Top for unknown or non-integer type spellings. `int`/`long` follow LP64.
Interval TypeRange(const std::string& type_name);
/// True when `type_name` is a sized integer type strictly narrower than 64
/// bits (the clouddb-narrowing rule's cast targets). Plain `char` excluded.
bool IsNarrowIntType(const std::string& type_name);

}  // namespace clouddb::lint

#endif  // CLOUDDB_TOOLS_LINT_ABSDOMAIN_H_
