#ifndef CLOUDDB_TOOLS_LINT_DATAFLOW_H_
#define CLOUDDB_TOOLS_LINT_DATAFLOW_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "cfg.h"

namespace clouddb::lint {

/// Worklist solver for gen/kill dataflow problems over a Cfg.
///
/// Facts are dense bit indices (see FactTable for interning strings). Both
/// directions implement *may* analyses: the meet over confluence edges is
/// set union, so a fact holds at a node if it holds on at least one path.
/// The transfer function is the classic OUT = GEN ∪ (IN − KILL) (mirrored
/// for backward problems). With monotone transfer and a finite lattice the
/// worklist terminates at the least fixpoint.

struct DataflowResult {
  /// in[n]/out[n] are bitsets of size num_facts for each CFG node n.
  std::vector<std::vector<bool>> in;
  std::vector<std::vector<bool>> out;
};

/// Forward may-analysis. IN[entry] = boundary (empty vector means all-false);
/// IN[n] = union of OUT[p] over predecessors, OUT[n] = gen[n] | (IN[n] &
/// ~kill[n]). gen/kill entries may be empty vectors (treated as all-false).
DataflowResult SolveForward(const Cfg& cfg, size_t num_facts,
                            const std::vector<std::vector<bool>>& gen,
                            const std::vector<std::vector<bool>>& kill,
                            const std::vector<bool>& boundary = {});

/// Backward may-analysis. OUT[exit] = boundary; OUT[n] = union of IN[s] over
/// successors, IN[n] = gen[n] | (OUT[n] & ~kill[n]).
DataflowResult SolveBackward(const Cfg& cfg, size_t num_facts,
                             const std::vector<std::vector<bool>>& gen,
                             const std::vector<std::vector<bool>>& kill,
                             const std::vector<bool>& boundary = {});

/// Interns strings to dense fact indices for the solvers above.
class FactTable {
 public:
  /// Returns the index for `name`, adding it if unseen.
  size_t Intern(const std::string& name);
  /// Returns the index for `name`, or npos when it was never interned.
  size_t Find(const std::string& name) const;
  const std::string& Name(size_t id) const { return names_[id]; }
  size_t size() const { return names_.size(); }

  static constexpr size_t npos = static_cast<size_t>(-1);

 private:
  std::unordered_map<std::string, size_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace clouddb::lint

#endif  // CLOUDDB_TOOLS_LINT_DATAFLOW_H_
