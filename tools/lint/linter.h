#ifndef CLOUDDB_TOOLS_LINT_LINTER_H_
#define CLOUDDB_TOOLS_LINT_LINTER_H_

#include <filesystem>
#include <string>
#include <vector>

namespace clouddb::lint {

/// One finding. Rendered as "file:line: rule: message" with `file` relative
/// to the scan root and '/'-separated on every platform, so fixture tests can
/// assert diagnostics byte-for-byte.
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;     // e.g. "clouddb-wallclock"
  std::string message;

  /// "file:line:rule" — the stable identity asserted by the fixture tests.
  std::string Key() const;
  /// "file:line: rule: message" — the full human-readable form.
  std::string ToString() const;
};

struct Options {
  /// Directory the scan is anchored at; diagnostics are relative to it.
  std::filesystem::path root;
  /// Scan directories relative to `root`. When empty, defaults to whichever
  /// of {src, bench, tests, examples} exist under `root`; if none do, `root`
  /// itself is scanned (the mode fixture suites use).
  std::vector<std::string> dirs;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;  // sorted by (file, line, rule)
  int files_scanned = 0;
  /// Number of violations silenced by NOLINT / NOLINTNEXTLINE comments.
  /// CI runs with --forbid-nolint so merged code needs zero of these.
  int suppressions_used = 0;
};

/// Runs every rule family (determinism, layering, status discipline) over
/// the configured tree. Pure function of the filesystem: same tree, same
/// result, in deterministic order.
LintResult RunLint(const Options& options);

/// Replaces the contents of comments and string/char literals with spaces,
/// preserving line breaks and column positions, so token rules never fire on
/// prose or literals. Exposed for unit tests.
std::string StripCommentsAndStrings(const std::string& source);

}  // namespace clouddb::lint

#endif  // CLOUDDB_TOOLS_LINT_LINTER_H_
