#ifndef CLOUDDB_TOOLS_LINT_LINTER_H_
#define CLOUDDB_TOOLS_LINT_LINTER_H_

#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace clouddb::lint {

enum class Severity { kError, kWarn, kOff };

/// Mechanically safe auto-fix attached to a diagnostic (clouddb_lint --fix).
enum class FixKind {
  kNone,
  kRemoveLine,   // delete the diagnostic's line (unused #include)
  kAddInclude,   // insert `#include "fix_include"` into the quoted block
};

/// One finding. Rendered as "file:line: rule: message" with `file` relative
/// to the scan root and '/'-separated on every platform, so fixture tests can
/// assert diagnostics byte-for-byte.
struct Diagnostic {
  Diagnostic() = default;
  Diagnostic(std::string file_in, int line_in, std::string rule_in,
             std::string message_in)
      : file(std::move(file_in)),
        line(line_in),
        rule(std::move(rule_in)),
        message(std::move(message_in)) {}

  std::string file;
  int line = 0;
  std::string rule;     // e.g. "clouddb-wallclock"
  std::string message;
  Severity severity = Severity::kError;
  FixKind fix_kind = FixKind::kNone;
  std::string fix_include;  // include spelling for kAddInclude

  /// "file:line:rule" — the stable identity asserted by the fixture tests.
  std::string Key() const;
  /// "file:line: rule: message" — the full human-readable form (warnings
  /// render as "file:line: rule: warning: message").
  std::string ToString() const;
};

struct Options {
  /// Directory the scan is anchored at; diagnostics are relative to it.
  std::filesystem::path root;
  /// Scan directories relative to `root`. When empty, defaults to whichever
  /// of {src, tools, bench, tests, examples} exist under `root`; if none do,
  /// `root` itself is scanned (the mode fixture suites use).
  std::vector<std::string> dirs;
  /// Per-rule severity overrides (default: every rule is an error). A rule
  /// set to kOff is skipped entirely (and never counts a suppression).
  std::map<std::string, Severity> severities;
  /// Baseline file: one "file:line:rule" key per line ('#' comments and
  /// blanks ignored). Matching diagnostics are dropped from the result and
  /// counted in LintResult::baselined, so pre-existing warnings can be
  /// frozen while regressions still fail CI. Empty = no baseline.
  std::filesystem::path baseline_file;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;  // sorted by (file, line, rule)
  int files_scanned = 0;
  int errors = 0;    // diagnostics with Severity::kError
  int warnings = 0;  // diagnostics with Severity::kWarn
  /// Number of violations silenced by NOLINT / NOLINTNEXTLINE comments.
  /// CI runs with --forbid-nolint so merged code needs zero of these.
  int suppressions_used = 0;
  /// Subset of `suppressions_used` whose marker named the rule and carried a
  /// written justification (`NOLINT(rule): why`). --forbid-nolint exempts
  /// these: the rationale is the review record for an intentional pattern.
  int justified_suppressions = 0;
  /// Number of diagnostics dropped because their key is in the baseline.
  int baselined = 0;
};

/// Runs every rule family (determinism, layering, status discipline, and the
/// flow-aware passes: dangling captures, lock discipline, include hygiene)
/// over the configured tree. Pure function of the filesystem: same tree,
/// same result, in deterministic order.
LintResult RunLint(const Options& options);

/// Serializes a result as machine-readable JSON (stable field order) for CI
/// annotation: {files_scanned, suppressions_used, errors, warnings,
/// diagnostics: [{file, line, rule, severity, message, fix}]}.
std::string ToJson(const LintResult& result);

/// Applies the mechanically safe fixes carried by `result` (unused-include
/// removals, missing direct-include insertions) to the files under `root`.
/// Returns the number of edits applied.
int ApplyFixes(const std::filesystem::path& root, const LintResult& result);

/// Outcome of the --fix loop. `converged` is false when fixable diagnostics
/// remain after `passes` rounds — the CLI must exit nonzero in that case
/// instead of silently leaving the tree half-fixed.
struct FixLoopResult {
  int passes = 0;        // ApplyFixes rounds actually run
  int edits = 0;         // total edits across all rounds
  bool converged = true; // no fixable diagnostics remain
  LintResult result;     // final lint state after the last round
};

/// Runs lint, applies fixes, and re-lints until no fixable diagnostics
/// remain or `max_passes` rounds have run. A round that applies zero edits
/// while fixable diagnostics remain also stops the loop (the fixes are not
/// actually reaching the files — looping further cannot converge).
FixLoopResult FixUntilConverged(const Options& options, int max_passes = 2);

/// Test seam: same loop with an injectable lint runner (arguments: none;
/// returns the LintResult for the current tree state).
FixLoopResult FixUntilConverged(const std::filesystem::path& root,
                                const std::function<LintResult()>& run_lint,
                                int max_passes = 2);

}  // namespace clouddb::lint

#endif  // CLOUDDB_TOOLS_LINT_LINTER_H_
