#ifndef CLOUDDB_TOOLS_LINT_RULES_INTERPROC_H_
#define CLOUDDB_TOOLS_LINT_RULES_INTERPROC_H_

#include <set>
#include <string>
#include <vector>

#include "callgraph.h"
#include "cfg.h"
#include "linter.h"
#include "rules_flow.h"

namespace clouddb::lint {

/// Shared analysis state for the interprocedural passes: the project call
/// graph (scoped to src/, so same-named helpers in bench/tools/tests never
/// pollute resolution) and one CFG per function definition, parallel to
/// CallGraph::functions. Built once per RunLint and handed to every pass.
struct InterprocContext {
  const std::vector<AnalyzedFile>* files = nullptr;
  CallGraph cg;
  std::vector<Cfg> cfgs;  // cfgs[i] belongs to cg.functions[i]
};

InterprocContext BuildInterprocContext(const std::vector<AnalyzedFile>& files);

/// clouddb-lock-order: global lock acquisition-order graph. Held-lock sets
/// (string-literal keys only; variable keys contribute nothing) are
/// propagated through each function's CFG, calls to functions that
/// transitively release (ReleaseAll closure) clear the held set, and calls
/// into functions that transitively acquire add edges held -> footprint.
/// A cycle in the resulting order graph is a potential deadlock between
/// the 2PL (src/db) and replication-apply (src/repl) layers.
void CheckLockOrder(const InterprocContext& ctx, std::vector<Diagnostic>* out);

/// clouddb-use-after-move: forward may-analysis of moved-from locals.
/// `std::move(v)` gens the moved state; assignment, re-declaration,
/// `&v` out-param passing, and v.reset/clear/assign kill it. Any read of a
/// local that is moved-from on *some* path is flagged (including a second
/// std::move — a double move). Lambda bodies are opaque (a capture-init
/// move still counts; uses inside the lambda refer to the capture).
void CheckUseAfterMove(const InterprocContext& ctx,
                       std::vector<Diagnostic>* out);

/// clouddb-status-path: branch-sensitive upgrade of clouddb-status. A local
/// assigned from a Status/Result-returning function is flagged when the
/// value is consumed on one path out of the definition but silently dropped
/// (overwritten or falls off the end unread) on another — the half-checked
/// pattern the statement-level rule cannot see. Lambda bodies are opaque
/// (their flow is not the enclosing function's), and an `Ok()` initializer
/// never counts as a payload-carrying definition. `status_fns` is the same
/// unambiguous name set the clouddb-status rule uses.
void CheckStatusPath(const InterprocContext& ctx,
                     const std::set<std::string>& status_fns,
                     std::vector<Diagnostic>* out);

/// clouddb-determinism-taint: interprocedural taint from wall-clock/entropy
/// primitives. A function is tainted when its body touches a source or when
/// it calls a tainted function; every call site in a non-exempt src/ file
/// whose resolved target is tainted is flagged with the witness chain down
/// to the primitive. Complements the syntactic clouddb-wallclock/random
/// rules, which only see direct uses in the offending file.
void CheckDeterminismTaint(const InterprocContext& ctx,
                           std::vector<Diagnostic>* out);

}  // namespace clouddb::lint

#endif  // CLOUDDB_TOOLS_LINT_RULES_INTERPROC_H_
