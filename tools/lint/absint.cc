#include "absint.h"
#include "absdomain.h"
#include "callgraph.h"
#include "cfg.h"
#include "frontend.h"
#include "rules_flow.h"
#include "rules_interproc.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <iterator>
#include <optional>
#include <set>
#include <utility>

namespace clouddb::lint {
namespace {

bool ParseIntLit(const std::string& s, int64_t* out) {
  if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  std::string digits;
  int base = 10;
  size_t i = 0;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    i = 2;
  }
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (c == '\'') continue;  // digit separator
    if (c == 'u' || c == 'U' || c == 'l' || c == 'L' || c == 'z' || c == 'Z') {
      continue;  // suffix
    }
    if (base == 16 ? !std::isxdigit(static_cast<unsigned char>(c))
                   : !std::isdigit(static_cast<unsigned char>(c))) {
      return false;  // float literal (dot/exponent) or malformed
    }
    digits += c;
  }
  if (digits.empty()) return false;
  errno = 0;
  char* endp = nullptr;
  unsigned long long v = std::strtoull(digits.c_str(), &endp, base);
  if (endp == nullptr || *endp != '\0') return false;
  if (v > static_cast<unsigned long long>(Interval::kMax)) {
    *out = Interval::kMax;
  } else {
    *out = static_cast<int64_t>(v);
  }
  return true;
}

bool IsFloatLit(const std::string& s) {
  if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  return s.find('.') != std::string::npos || s.find('e') != std::string::npos ||
         s.find('E') != std::string::npos;
}

bool IsFloatTypeName(const std::string& t) {
  return t == "float" || t == "double";
}

const std::set<std::string>& ReadOnlyMethods() {
  static const std::set<std::string> kRead = {
      "size",  "empty", "length",   "begin", "end",   "data",
      "at",    "front", "back",     "cbegin", "cend", "capacity",
      "rbegin", "rend", "c_str",    "find",  "count", "contains"};
  return kRead;
}

/// Removes `sym` as a relational anchor everywhere in the environment.
void RemoveFactSym(AbsEnv* env, const std::string& sym) {
  for (auto& [name, v] : env->vars) {
    v.upper_lt.erase(sym);
    v.lower_ge.erase(sym);
  }
  for (auto it = env->ceil_of.begin(); it != env->ceil_of.end();) {
    if (it->second.first == sym) {
      it = env->ceil_of.erase(it);
    } else {
      ++it;
    }
  }
}

/// Reassignment of `name`: its old value is gone, so every fact anchored on
/// it (in other variables, ceil shapes, extent symbols) dies with it.
void KillVar(AbsEnv* env, const std::string& name) {
  RemoveFactSym(env, name);
  for (auto& [p, ext] : env->extents) {
    if (ext.sym == name) ext.sym.clear();  // snapshot interval stays valid
  }
  env->ceil_of.erase(name);
}

}  // namespace

// ---------------------------------------------------------------------------
// Environment lattice.
// ---------------------------------------------------------------------------

AbsEnv AbsEnv::Join(const AbsEnv& a, const AbsEnv& b) {
  if (!a.reachable) return b;
  if (!b.reachable) return a;
  AbsEnv r;
  r.reachable = true;
  for (const auto& [k, v] : a.vars) {
    auto it = b.vars.find(k);
    if (it != b.vars.end()) r.vars[k] = AbsValue::Join(v, it->second);
  }
  for (const auto& [k, v] : a.sizes) {
    auto it = b.sizes.find(k);
    if (it != b.sizes.end()) r.sizes[k] = Interval::Join(v, it->second);
  }
  for (const auto& [k, v] : a.extents) {
    auto it = b.extents.find(k);
    if (it == b.extents.end()) continue;
    Extent e;
    e.known = v.known && it->second.known;
    e.count = Interval::Join(v.count, it->second.count);
    e.sym = v.sym == it->second.sym ? v.sym : "";
    if (e.known) r.extents[k] = e;
  }
  for (const auto& [k, v] : a.ceil_of) {
    auto it = b.ceil_of.find(k);
    if (it != b.ceil_of.end() && it->second == v) r.ceil_of[k] = v;
  }
  return r;
}

AbsEnv AbsEnv::Widen(const AbsEnv& prev, const AbsEnv& next) {
  if (!prev.reachable) return next;
  if (!next.reachable) return prev;
  AbsEnv r;
  r.reachable = true;
  for (const auto& [k, v] : prev.vars) {
    auto it = next.vars.find(k);
    if (it != next.vars.end()) r.vars[k] = AbsValue::Widen(v, it->second);
  }
  for (const auto& [k, v] : prev.sizes) {
    auto it = next.sizes.find(k);
    if (it != next.sizes.end()) r.sizes[k] = Interval::Widen(v, it->second);
  }
  for (const auto& [k, v] : prev.extents) {
    auto it = next.extents.find(k);
    if (it == next.extents.end()) continue;
    Extent e;
    e.known = v.known && it->second.known;
    e.count = Interval::Widen(v.count, it->second.count);
    e.sym = v.sym == it->second.sym ? v.sym : "";
    if (e.known) r.extents[k] = e;
  }
  for (const auto& [k, v] : prev.ceil_of) {
    auto it = next.ceil_of.find(k);
    if (it != next.ceil_of.end() && it->second == v) r.ceil_of[k] = v;
  }
  return r;
}

Interval ResolvedTypeRange(const std::map<std::string, std::string>& aliases,
                           const std::string& type_name) {
  auto it = aliases.find(type_name);
  return TypeRange(it == aliases.end() ? type_name : it->second);
}

// ---------------------------------------------------------------------------
// Expression evaluation.
// ---------------------------------------------------------------------------

/// Recursive-descent evaluator over a token range. Total: malformed or
/// unsupported shapes evaluate to Top and parsing always advances, so the
/// evaluator terminates on arbitrary token soup.
struct AbsEvalImpl {
  const AbsInterpreter& in;
  const std::vector<Token>& t;
  const AbsEnv& env;
  size_t p;
  size_t end;

  AbsEvalImpl(const AbsInterpreter& interp, const std::vector<Token>& toks,
              const AbsEnv& e, size_t begin, size_t stop)
      : in(interp), t(toks), env(e), p(begin), end(stop) {}

  const std::string& Tok(size_t i) const {
    static const std::string kEmpty;
    return i < end ? t[i].text : kEmpty;
  }
  bool At(const char* s) const { return Tok(p) == s; }
  bool At2(const char* a, const char* b) const {
    return Tok(p) == a && Tok(p + 1) == b;
  }

  static EvalOut Top() { return EvalOut{AbsValue::Top(), ""}; }
  static EvalOut Of(const Interval& iv) {
    return EvalOut{AbsValue::Of(iv), ""};
  }

  /// Finds the token index of the matching closer for the opener at `open`,
  /// or `end` when unbalanced.
  size_t Close(size_t open) const {
    const std::string& o = Tok(open);
    std::string c = o == "(" ? ")" : o == "[" ? "]" : o == "{" ? "}" : "";
    if (c.empty()) return end;
    int depth = 0;
    for (size_t i = open; i < end; ++i) {
      if (Tok(i) == o) ++depth;
      if (Tok(i) == c && --depth == 0) return i;
    }
    return end;
  }

  /// Reads an `a.b->c` chain starting at p (which must be an identifier),
  /// advancing p past it. Returns the joined path spelling.
  std::string ReadPath() {
    std::string path = Tok(p++);
    while (p + 1 < end && (Tok(p) == "." || Tok(p) == "->") &&
           t[p + 1].ident) {
      path += Tok(p);
      path += Tok(p + 1);
      p += 2;
    }
    return path;
  }

  EvalOut Expr() { return Ternary(); }

  EvalOut Ternary() {
    EvalOut cond = LogOr();
    if (!At("?")) return cond;
    ++p;
    // Find the matching ':' at this nesting level.
    int q = 0;
    int depth = 0;
    size_t colon = end;
    for (size_t i = p; i < end; ++i) {
      const std::string& s = Tok(i);
      if (s == "(" || s == "[" || s == "{") ++depth;
      if (s == ")" || s == "]" || s == "}") --depth;
      if (depth != 0) continue;
      if (s == "?") ++q;
      if (s == ":") {
        if (q == 0) {
          colon = i;
          break;
        }
        --q;
      }
    }
    if (colon == end) {
      p = end;
      return Top();
    }
    AbsEvalImpl a(in, t, env, p, colon);
    EvalOut va = a.Expr();
    AbsEvalImpl b(in, t, env, colon + 1, end);
    EvalOut vb = b.Expr();
    p = end;
    return EvalOut{AbsValue::Join(va.val, vb.val), ""};
  }

  EvalOut LogOr() {
    EvalOut v = LogAnd();
    while (At2("|", "|")) {
      p += 2;
      LogAnd();
      v = Of(Interval::Range(0, 1));
    }
    return v;
  }

  EvalOut LogAnd() {
    EvalOut v = BitOr();
    while (At2("&", "&")) {
      p += 2;
      BitOr();
      v = Of(Interval::Range(0, 1));
    }
    return v;
  }

  EvalOut BitOr() {
    EvalOut v = BitXor();
    while (At("|") && !At2("|", "|")) {
      ++p;
      BitXor();
      v = Top();
    }
    return v;
  }

  EvalOut BitXor() {
    EvalOut v = BitAnd();
    while (At("^")) {
      ++p;
      BitAnd();
      v = Top();
    }
    return v;
  }

  EvalOut BitAnd() {
    EvalOut v = Equality();
    while (At("&") && !At2("&", "&")) {
      ++p;
      EvalOut r = Equality();
      v = EvalOut{AbsValue::Of(Interval::BitAnd(v.val.range, r.val.range)), ""};
    }
    return v;
  }

  EvalOut Equality() {
    EvalOut v = Relational();
    while (At2("=", "=") || At2("!", "=")) {
      p += 2;
      Relational();
      v = Of(Interval::Range(0, 1));
    }
    return v;
  }

  EvalOut Relational() {
    EvalOut v = Shift();
    while ((At("<") || At(">")) && !At2("<", "<") && !At2(">", ">")) {
      p += Tok(p + 1) == "=" ? 2 : 1;
      Shift();
      v = Of(Interval::Range(0, 1));
    }
    return v;
  }

  EvalOut Shift() {
    EvalOut v = Additive();
    while (At2("<", "<") || At2(">", ">")) {
      bool left = At2("<", "<");
      p += 2;
      EvalOut r = Additive();
      Interval iv = left ? Interval::Shl(v.val.range, r.val.range)
                         : Interval::Shr(v.val.range, r.val.range);
      v = EvalOut{AbsValue::Of(iv), ""};
    }
    return v;
  }

  EvalOut Additive() {
    EvalOut v = Multiplicative();
    while (At("+") || At("-")) {
      if (At2("+", "+") || At2("-", "-")) break;  // ++/-- never infix here
      bool add = At("+");
      ++p;
      EvalOut r = Multiplicative();
      Interval iv = add ? Interval::Add(v.val.range, r.val.range)
                        : Interval::Sub(v.val.range, r.val.range);
      AbsValue nv = AbsValue::Of(iv);
      nv.is_float = v.val.is_float || r.val.is_float;
      v = EvalOut{nv, ""};
    }
    return v;
  }

  EvalOut Multiplicative() {
    EvalOut v = Unary();
    while (At("*") || At("/") || At("%")) {
      char op = Tok(p)[0];
      ++p;
      EvalOut r = Unary();
      Interval iv = op == '*' ? Interval::Mul(v.val.range, r.val.range)
                  : op == '/' ? Interval::Div(v.val.range, r.val.range)
                              : Interval::Mod(v.val.range, r.val.range);
      AbsValue nv = AbsValue::Of(iv);
      nv.is_float = v.val.is_float || r.val.is_float;
      v = EvalOut{nv, ""};
    }
    return v;
  }

  EvalOut Unary() {
    // Pre-increment / pre-decrement: the tokenizer splits `--x` into two
    // `-` tokens; `-(-x)` is never spelled without parens, so adjacent
    // same-sign pairs before an identifier mean the mutating operator. The
    // expression's value is old-x minus/plus one (the store itself is the
    // statement transfer's business).
    if (At2("-", "-") && p + 2 < end && t[p + 2].ident) {
      p += 2;
      EvalOut v = Unary();
      return Of(Interval::Sub(v.val.range, Interval::Constant(1)));
    }
    if (At2("+", "+") && p + 2 < end && t[p + 2].ident) {
      p += 2;
      EvalOut v = Unary();
      return Of(Interval::Add(v.val.range, Interval::Constant(1)));
    }
    if (At("-")) {
      ++p;
      EvalOut v = Unary();
      return EvalOut{AbsValue::Of(Interval::Neg(v.val.range)), ""};
    }
    if (At("+")) {
      ++p;
      return Unary();
    }
    if (At("!")) {
      ++p;
      Unary();
      return Of(Interval::Range(0, 1));
    }
    if (At("~") || At("*")) {
      ++p;
      Unary();
      return Top();
    }
    if (At("&")) {
      ++p;
      Unary();
      AbsValue v;
      v.nonzero = true;
      v.nullness = Nullness::kNonNull;
      return EvalOut{v, ""};
    }
    return Postfix();
  }

  /// Skips a balanced `( ... )` / `[ ... ]` group; p must be at the opener.
  void SkipGroup() {
    size_t c = Close(p);
    p = c == end ? end : c + 1;
  }

  EvalOut Postfix() {
    EvalOut v = Primary();
    for (;;) {
      if (At2("+", "+") || At2("-", "-")) {
        p += 2;  // post-inc/dec: value is the pre-step value, sym preserved
        continue;
      }
      if (At("[")) {  // subscript read: contents untracked
        SkipGroup();
        v = Top();
        continue;
      }
      break;
    }
    return v;
  }

  EvalOut Primary() {
    if (p >= end) return Top();
    const std::string& s = Tok(p);
    int64_t lit = 0;
    if (ParseIntLit(s, &lit)) {
      ++p;
      return Of(Interval::Constant(lit));
    }
    if (IsFloatLit(s)) {
      ++p;
      // Integral-valued float literals (`0.0`, `1.0`) keep their value so
      // `y != 0.0` guards still establish nonzero-ness for the div rule.
      errno = 0;
      char* lend = nullptr;
      double d = std::strtod(s.c_str(), &lend);
      EvalOut v = Top();
      if (errno == 0 && lend != nullptr &&
          (*lend == '\0' || *lend == 'f' || *lend == 'F') &&
          d == static_cast<double>(static_cast<int64_t>(d)) &&
          d >= -1e15 && d <= 1e15) {
        v = Of(Interval::Constant(static_cast<int64_t>(d)));
      }
      v.val.is_float = true;
      return v;
    }
    if (s == "true") {
      ++p;
      return Of(Interval::Constant(1));
    }
    if (s == "false" || s == "nullptr") {
      ++p;
      EvalOut v = Of(Interval::Constant(0));
      if (s == "nullptr") v.val.nullness = Nullness::kNull;
      return v;
    }
    if (s == "(") {
      size_t c = Close(p);
      AbsEvalImpl inner(in, t, env, p + 1, c);
      EvalOut v = inner.Expr();
      p = c == end ? end : c + 1;
      return v;
    }
    if (s == "static_cast" || s == "reinterpret_cast" || s == "const_cast") {
      return Cast();
    }
    if (s == "sizeof") {
      ++p;
      if (At("(")) SkipGroup();
      return Of(Interval::Range(1, 16));
    }
    if (!t[p].ident) {
      ++p;  // stray punctuation: give up on this atom but keep advancing
      return Top();
    }
    return PathAtom();
  }

  /// `static_cast<T>(e)`: evaluates `e`, then meets with T's declared range
  /// — we model the program as if the cast never truncates; proving that it
  /// cannot is exactly the clouddb-narrowing rule's job, done separately.
  EvalOut Cast() {
    bool is_static = At("static_cast");
    ++p;
    std::string type_last;
    bool type_float = false;
    if (At("<")) {
      int depth = 0;
      for (; p < end; ++p) {
        if (Tok(p) == "<") ++depth;
        else if (Tok(p) == ">") {
          if (--depth == 0) {
            ++p;
            break;
          }
        } else if (t[p].ident) {
          type_last = Tok(p);
          if (IsFloatTypeName(type_last)) type_float = true;
        }
      }
    }
    EvalOut v = Top();
    if (At("(")) {
      size_t c = Close(p);
      AbsEvalImpl inner(in, t, env, p + 1, c);
      v = inner.Expr();
      p = c == end ? end : c + 1;
    }
    if (type_float) {
      v.val.is_float = true;
      v.sym.clear();
      return v;  // value-transparent for int -> double widenings
    }
    if (is_static && !type_last.empty()) {
      Interval tr = ResolvedTypeRange(in.aliases_, type_last);
      AbsValue nv = v.val;
      nv.range = Interval::Meet(nv.range, tr);
      if (nv.range.bottom) nv.range = tr;  // incompatible: trust the cast type
      return EvalOut{nv, v.sym};
    }
    v.sym.clear();
    return v;
  }

  EvalOut PathAtom() {
    // std::min / std::max / std::numeric_limits<T>::max() / std::clamp.
    if (At("std") && Tok(p + 1) == "::") {
      if (Tok(p + 2) == "min" || Tok(p + 2) == "max") return MinMax();
      if (Tok(p + 2) == "numeric_limits") return NumericLimits();
      p += 2;  // fall through into the named atom
      return PathAtom();
    }
    if ((At("min") || At("max")) && Tok(p + 1) == "(") return MinMax();
    if (At("numeric_limits")) return NumericLimits();

    std::string path = ReadPath();
    // Method-call postfix: `path(...)` where path's last segment is a method.
    if (At("(")) {
      size_t sep = LastSepPos(path);
      std::string base = sep == std::string::npos ? "" : path.substr(0, sep);
      std::string method = sep == std::string::npos
                               ? path
                               : path.substr(sep + (path[sep] == '-' ? 2 : 1));
      SkipGroup();
      if (!base.empty() && (method == "size" || method == "length")) {
        auto it = env.sizes.find(base);
        // The symbolic identity holds whether or not the size interval is
        // tracked yet: a guard against an untracked `blocks_.size()` must
        // still pin `i < size:blocks_` for the subscript to discharge.
        EvalOut v = Of(it != env.sizes.end()
                           ? it->second
                           : Interval::Range(0, Interval::kMax));
        v.sym = "size:" + base;
        return v;
      }
      if (!base.empty() && method == "empty") return Of(Interval::Range(0, 1));
      if (base.empty()) {
        // Free-function call: use the callee's return summary when the name
        // resolves to exactly one definition in the call graph.
        Interval ret = in.SummaryReturn(method);
        if (!ret.IsTop()) return Of(ret);
      }
      return Top();
    }
    // Bare variable / constant / unmodeled member value.
    if (LastSepPos(path) == std::string::npos) {
      auto it = env.vars.find(path);
      if (it != env.vars.end()) return EvalOut{it->second, path};
      auto cit = in.constants_.find(path);
      if (cit != in.constants_.end()) {
        return Of(Interval::Constant(cit->second));
      }
      return EvalOut{AbsValue::Top(), path};
    }
    return Top();
  }

  static size_t LastSepPos(const std::string& path) {
    size_t dot = path.rfind('.');
    size_t arrow = path.rfind("->");
    if (arrow != std::string::npos && (dot == std::string::npos || arrow > dot))
      return arrow;
    return dot;
  }

  EvalOut MinMax() {
    bool is_min = false;
    while (p < end && Tok(p) != "(") {
      if (Tok(p) == "min") is_min = true;
      ++p;
    }
    if (!At("(")) return Top();
    size_t open = p;
    size_t close = Close(open);
    size_t comma = close;
    int depth = 0;
    for (size_t i = open; i < close; ++i) {
      const std::string& s = Tok(i);
      if (s == "(" || s == "[" || s == "{") ++depth;
      if (s == ")" || s == "]" || s == "}") --depth;
      if (s == "," && depth == 1) {
        comma = i;
        break;
      }
    }
    p = close == end ? end : close + 1;
    if (comma == close) return Top();
    AbsEvalImpl a(in, t, env, open + 1, comma);
    EvalOut va = a.Expr();
    AbsEvalImpl b(in, t, env, comma + 1, close);
    EvalOut vb = b.Expr();
    EvalOut v;
    v.val.range = is_min ? Interval::Min(va.val.range, vb.val.range)
                         : Interval::Max(va.val.range, vb.val.range);
    if (is_min) {
      // min(a, b) <= b and <= a: inherit both symbolic upper anchors.
      if (!va.sym.empty()) v.val.upper_lt[va.sym] = 1;
      if (!vb.sym.empty()) v.val.upper_lt[vb.sym] = 1;
      for (const auto& [s, c] : va.val.upper_lt) {
        auto it = v.val.upper_lt.find(s);
        v.val.upper_lt[s] =
            it == v.val.upper_lt.end() ? c : std::min(it->second, c);
      }
    }
    return v;
  }

  EvalOut NumericLimits() {
    // numeric_limits<T>::max() / ::min() / ::lowest()
    std::string type_last;
    while (p < end && Tok(p) != "<") ++p;
    if (At("<")) {
      int depth = 0;
      for (; p < end; ++p) {
        if (Tok(p) == "<") ++depth;
        else if (Tok(p) == ">") {
          if (--depth == 0) {
            ++p;
            break;
          }
        } else if (t[p].ident) {
          type_last = Tok(p);
        }
      }
    }
    std::string member;
    if (At("::")) {
      ++p;
      member = Tok(p);
      ++p;
    }
    if (At("(")) SkipGroup();
    Interval tr = ResolvedTypeRange(in.aliases_, type_last);
    if (member == "max") return Of(Interval::Constant(tr.hi));
    if (member == "min" || member == "lowest")
      return Of(Interval::Constant(tr.lo));
    return Top();
  }
};

// ---------------------------------------------------------------------------
// AbsInterpreter.
// ---------------------------------------------------------------------------

AbsInterpreter::AbsInterpreter(const InterprocContext& ctx) : ctx_(&ctx) {
  results_.resize(ctx.cg.functions.size());
  summaries_.resize(ctx.cg.functions.size());
}

Interval AbsInterpreter::SummaryReturn(const std::string& name) const {
  auto it = ctx_->cg.by_name.find(name);
  if (it == ctx_->cg.by_name.end() || it->second.size() != 1) {
    return Interval::Top();
  }
  return summaries_[it->second[0]].ret;
}

void AbsInterpreter::CollectGlobals() {
  for (const AnalyzedFile& af : *ctx_->files) {
    const std::vector<Token>& t = af.file->tokens;
    for (size_t i = 0; i + 3 < t.size(); ++i) {
      if (t[i].text == "constexpr") {
        // constexpr <type...> kName = <intlit> ;
        size_t j = i + 1;
        while (j + 2 < t.size() && t[j].text != "=" && t[j].text != ";" &&
               j < i + 8) {
          ++j;
        }
        if (j + 2 < t.size() && t[j].text == "=" && t[j - 1].ident) {
          int64_t v = 0;
          if (ParseIntLit(t[j + 1].text, &v) && t[j + 2].text == ";") {
            constants_[t[j - 1].text] = v;
          }
        }
      } else if (t[i].text == "using" && t[i + 1].ident &&
                 t[i + 2].text == "=") {
        // using Alias = <type tokens> ;
        size_t j = i + 3;
        std::string last;
        while (j < t.size() && t[j].text != ";") {
          if (t[j].ident) last = t[j].text;
          ++j;
        }
        if (!last.empty()) aliases_[t[i + 1].text] = last;
      }
    }
  }
}

namespace {

struct ParamInfo {
  std::string name;
  std::string type_last;  // last type identifier ("size_t", "vector", ...)
  bool is_pointer = false;
  bool is_container = false;
  bool is_float = false;
  bool is_int = false;
};

bool IsKnownIntTypeName(const std::map<std::string, std::string>& aliases,
                        const std::string& t) {
  auto it = aliases.find(t);
  const std::string& r = it == aliases.end() ? t : it->second;
  return r == "bool" || r == "int8_t" || r == "uint8_t" || r == "int16_t" ||
         r == "uint16_t" || r == "int32_t" || r == "uint32_t" ||
         r == "int64_t" || r == "uint64_t" || r == "int" || r == "unsigned" ||
         r == "long" || r == "short" || r == "size_t" || r == "ptrdiff_t" ||
         r == "ssize_t" || r == "char";
}

std::vector<ParamInfo> ParseParams(
    const SourceFile& file, const FunctionDef& fn,
    const std::map<std::string, std::string>& aliases) {
  std::vector<ParamInfo> out;
  const std::vector<Token>& t = file.tokens;
  size_t b = fn.params_begin;
  size_t e = fn.params_end;
  if (b >= e || b >= t.size()) return out;
  std::vector<std::pair<size_t, size_t>> groups;
  int depth = 0;
  size_t start = b;
  for (size_t i = b; i < e && i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "(" || s == "[" || s == "{") ++depth;
    if (s == ")" || s == "]" || s == "}") --depth;
    if (s == "<" && i > b && t[i - 1].ident) ++depth;  // template args
    if (s == ">" && depth > 0) --depth;
    if (s == "," && depth == 0) {
      groups.emplace_back(start, i);
      start = i + 1;
    }
  }
  if (start < e) groups.emplace_back(start, e);
  for (auto [gb, ge] : groups) {
    // Strip a default argument.
    int d = 0;
    for (size_t i = gb; i < ge; ++i) {
      const std::string& s = t[i].text;
      if (s == "(" || s == "[" || s == "{" || s == "<") ++d;
      if (s == ")" || s == "]" || s == "}" || s == ">") --d;
      if (s == "=" && d == 0) {
        ge = i;
        break;
      }
    }
    ParamInfo pi;
    size_t name_tok = ge;
    for (size_t i = ge; i > gb;) {
      --i;
      if (t[i].ident && !IsKeyword(t[i].text)) {
        name_tok = i;
        break;
      }
    }
    if (name_tok == ge) continue;
    pi.name = t[name_tok].text;
    if (pi.name == "void") continue;
    for (size_t i = gb; i < name_tok; ++i) {
      const std::string& s = t[i].text;
      if (s == "*") pi.is_pointer = true;
      if (s == "vector" || s == "deque" || s == "string" || s == "span") {
        pi.is_container = true;
      }
      if (t[i].ident && s != "const" && s != "std" && s != "struct") {
        pi.type_last = s;
      }
    }
    if (pi.type_last.empty()) continue;  // e.g. sole `void`
    pi.is_float = IsFloatTypeName(pi.type_last);
    pi.is_int = !pi.is_pointer && !pi.is_container &&
                IsKnownIntTypeName(aliases, pi.type_last);
    out.push_back(std::move(pi));
  }
  return out;
}

}  // namespace

void AbsInterpreter::SetupSummaries() {
  for (size_t f = 0; f < ctx_->cg.functions.size(); ++f) {
    const CgFunction& cf = ctx_->cg.functions[f];
    const AnalyzedFile& af = (*ctx_->files)[cf.file];
    Summary& s = summaries_[f];
    for (const ParamInfo& pi : ParseParams(*af.file, *cf.fn, aliases_)) {
      s.param_names.push_back(pi.name);
      s.param_types.push_back(pi.type_last);
      s.param_decl.push_back(pi.is_int ? ResolvedTypeRange(aliases_, pi.type_last)
                                       : Interval::Top());
      s.param_incoming.push_back(Interval::Bottom());
      s.param_has_incoming.push_back(false);
    }
  }
}

void AbsInterpreter::CollectMemberScalars() {
  for (size_t fi = 0; fi < ctx_->files->size(); ++fi) {
    const std::vector<Token>& t = (*ctx_->files)[fi].file->tokens;
    for (size_t i = 0; i + 2 < t.size(); ++i) {
      if (!t[i].ident || !IsKnownIntTypeName(aliases_, t[i].text)) continue;
      const Token& name = t[i + 1];
      if (!name.ident || name.text.size() < 2 || name.text.back() != '_') {
        continue;
      }
      const std::string& after = t[i + 2].text;
      if (after != ";" && after != "=" && after != "{") continue;
      Interval r = ResolvedTypeRange(aliases_, t[i].text);
      if (r.IsTop()) continue;
      auto& file_map = member_scalars_[static_cast<int>(fi)];
      auto it = file_map.find(name.text);
      // Conflicting redeclarations across classes in one file: keep the
      // weaker (joined) range, which stays sound for both.
      file_map[name.text] =
          it == file_map.end() ? r : Interval::Join(it->second, r);
    }
  }
}

AbsEnv AbsInterpreter::EntryEnv(int f, bool use_incoming) const {
  const CgFunction& cf = ctx_->cg.functions[f];
  const AnalyzedFile& af = (*ctx_->files)[cf.file];
  const SourceFile& file = *af.file;
  AbsEnv env;
  env.reachable = true;
  std::vector<ParamInfo> params = ParseParams(file, *cf.fn, aliases_);
  const Summary& sum = summaries_[f];
  // Scalar and container parameters.
  std::vector<size_t> int_params;
  for (size_t i = 0; i < params.size(); ++i) {
    const ParamInfo& pi = params[i];
    if (pi.is_container) {
      env.sizes[pi.name] = Interval::Range(0, Interval::kMax);
    } else if (pi.is_int || pi.is_float) {
      AbsValue v;
      Interval iv = i < sum.param_decl.size() ? sum.param_decl[i]
                                              : Interval::Top();
      if (use_incoming && i < sum.param_incoming.size() &&
          sum.param_has_incoming[i] && !sum.param_incoming[i].bottom) {
        iv = Interval::Meet(iv, sum.param_incoming[i]);
        if (iv.bottom) iv = sum.param_decl[i];
      }
      v.range = pi.is_float ? Interval::Top() : iv;
      v.is_float = pi.is_float;
      env.vars[pi.name] = v;
      if (pi.is_int) int_params.push_back(i);
    }
  }
  // Pointer-extent contract: a raw pointer parameter's element count is the
  // nearest integer parameter in the signature (ties prefer the later one,
  // the `(T* buf, size_t n)` convention).
  for (size_t i = 0; i < params.size(); ++i) {
    if (!params[i].is_pointer) continue;
    size_t best = SIZE_MAX;
    size_t best_dist = SIZE_MAX;
    for (size_t j : int_params) {
      size_t dist = j > i ? j - i : i - j;
      if (dist < best_dist || (dist == best_dist && j > i)) {
        best_dist = dist;
        best = j;
      }
    }
    if (best != SIZE_MAX) {
      Extent ext;
      ext.known = true;
      ext.sym = params[best].name;
      auto it = env.vars.find(ext.sym);
      ext.count = it != env.vars.end() ? it->second.range : Interval::Top();
      env.extents[params[i].name] = ext;
    }
  }
  // Member-scalar seeding: declared-type ranges for `type name_;` members of
  // classes in this file (a type invariant, so sound at every method entry).
  // Parameters shadowing a member name keep their own seeding above.
  auto ms = member_scalars_.find(cf.file);
  if (ms != member_scalars_.end()) {
    for (const auto& [name, range] : ms->second) {
      if (env.vars.count(name) != 0) continue;
      AbsValue v;
      v.range = range;
      env.vars[name] = v;
    }
  }
  // Member-path size seeding: a container member path is modeled iff the
  // function itself consults `path.size()` / `path.empty()` (the documented
  // modeling contract — unconsulted paths stay unmodeled and unreported).
  const std::vector<Token>& t = file.tokens;
  for (size_t i = cf.fn->body_begin; i < cf.fn->body_end && i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if ((s != "size" && s != "empty" && s != "length") ||
        i + 1 >= t.size() || t[i + 1].text != "(" || i < 2) {
      continue;
    }
    const std::string& sep = t[i - 1].text;
    if (sep != "." && sep != "->") continue;
    // Walk backwards over the base path: ident (sep ident)* ending at the
    // separator before size/empty. Chained call results (`foo().size()`)
    // have ')' where an identifier is expected and are skipped — a call
    // result is not a stable path.
    size_t j = i - 1;  // separator position
    std::string path;
    bool ok = true;
    for (;;) {
      if (j == 0 || !t[j - 1].ident) {
        ok = false;
        break;
      }
      path = t[j - 1].text + (path.empty() ? "" : t[j].text + path);
      if (j >= 2 && (t[j - 2].text == "." || t[j - 2].text == "->")) {
        j -= 2;
        continue;
      }
      break;
    }
    if (!ok || path.empty()) continue;
    if (!env.sizes.count(path)) {
      env.sizes[path] = Interval::Range(0, Interval::kMax);
    }
  }
  return env;
}

int AbsInterpreter::NodeOfToken(int f, size_t tok) const {
  const Cfg& cfg = ctx_->cfgs[f];
  int best = -1;
  for (size_t n = 0; n < cfg.nodes.size(); ++n) {
    const CfgNode& nd = cfg.nodes[n];
    if (nd.begin <= tok && tok < nd.end) {
      // Prefer the tightest enclosing range (condition nodes nest inside
      // the for-statement's overall range in no case here; ranges are
      // disjoint by construction, first hit wins).
      best = static_cast<int>(n);
      break;
    }
  }
  return best;
}

EvalOut AbsInterpreter::Eval(int f, const AbsEnv& env, size_t begin,
                             size_t end) const {
  ++interval_ops_;
  const CgFunction& cf = ctx_->cg.functions[f];
  const std::vector<Token>& t = (*ctx_->files)[cf.file].file->tokens;
  if (begin >= end || end > t.size()) return EvalOut{AbsValue::Top(), ""};
  AbsEvalImpl ev(*this, t, env, begin, end);
  return ev.Expr();
}

void AbsInterpreter::Run() {
  CollectGlobals();
  CollectMemberScalars();  // needs the completed alias table
  SetupSummaries();
  // Phase A: declared-type parameter ranges; record returns and call args.
  for (size_t f = 0; f < results_.size(); ++f) {
    SolveFunction(static_cast<int>(f), /*use_incoming=*/false);
  }
  for (size_t f = 0; f < results_.size(); ++f) {
    RecordCallArgs(static_cast<int>(f));
  }
  // Phase B: caller-informed parameter ranges.
  for (size_t f = 0; f < results_.size(); ++f) {
    SolveFunction(static_cast<int>(f), /*use_incoming=*/true);
  }
}

void AbsInterpreter::RecordCallArgs(int f) {
  const CgFunction& cf = ctx_->cg.functions[f];
  const FnAbsResult& R = results_[f];
  if (!R.solved) return;
  const std::vector<Token>& t = (*ctx_->files)[cf.file].file->tokens;
  for (const CallSite& cs : cf.calls) {
    if (cs.targets.empty()) continue;
    int node = NodeOfToken(f, cs.token);
    if (node < 0 || !R.in[node].reachable) continue;
    if (cs.token + 1 >= t.size() || t[cs.token + 1].text != "(") continue;
    // Split argument ranges at top-level commas.
    AbsEvalImpl ev(*this, t, R.in[node], cs.token + 1,
                   std::min(t.size(), cs.token + 4096));
    size_t close = ev.Close(cs.token + 1);
    if (close >= std::min(t.size(), cs.token + 4096)) continue;
    std::vector<std::pair<size_t, size_t>> args;
    int depth = 0;
    size_t start = cs.token + 2;
    for (size_t i = cs.token + 1; i < close; ++i) {
      const std::string& s = t[i].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      if (s == ")" || s == "]" || s == "}") --depth;
      if (s == "," && depth == 1) {
        args.emplace_back(start, i);
        start = i + 1;
      }
    }
    if (start < close) args.emplace_back(start, close);
    for (int tgt : cs.targets) {
      Summary& sum = summaries_[tgt];
      for (size_t a = 0; a < args.size() && a < sum.param_incoming.size();
           ++a) {
        EvalOut v = Eval(f, R.in[node], args[a].first, args[a].second);
        sum.param_incoming[a] =
            Interval::Join(sum.param_incoming[a], v.val.range);
        sum.param_has_incoming[a] = true;
      }
    }
  }
}

void AbsInterpreter::SolveFunction(int f, bool use_incoming) {
  FnAbsResult& R = results_[f];
  const Cfg& cfg = ctx_->cfgs[f];
  R.solved = false;
  R.in.assign(cfg.nodes.size(), AbsEnv{});
  R.ret = Interval::Bottom();
  if (!cfg.ok || cfg.nodes.empty()) return;
  R.in[Cfg::kEntry] = EntryEnv(f, use_incoming);

  std::vector<int> rpo = cfg.ReversePostOrder();
  std::vector<int> order(cfg.nodes.size(), 0);
  for (size_t i = 0; i < rpo.size(); ++i) order[rpo[i]] = static_cast<int>(i);
  std::vector<int> joins(cfg.nodes.size(), 0);
  std::set<std::pair<int, int>> wl;
  auto push = [&](int n) { wl.insert({order[n], n}); };
  for (int s : cfg.nodes[Cfg::kEntry].succs) push(s);

  auto edge_out = [&](int p, int n) {
    const AbsEnv& inp = R.in[p];
    if (!inp.reachable) return AbsEnv{};
    AbsEnv out = TransferNode(f, p, inp, nullptr);
    const CfgNode& pn = cfg.nodes[p];
    if (pn.kind == CfgNode::Kind::kCondition && pn.succs.size() == 2 &&
        pn.succs[0] != pn.succs[1] && pn.begin < pn.end) {
      RefineCond(f, pn.begin, pn.end, n == pn.succs[0], &out);
    }
    return out;
  };

  int rounds = 0;
  const int kMaxRounds = 40000;  // hard backstop, never reached in practice
  while (!wl.empty() && rounds < kMaxRounds) {
    ++rounds;
    int n = wl.begin()->second;
    wl.erase(wl.begin());
    if (n == Cfg::kEntry) continue;
    AbsEnv nin;
    for (int p : cfg.nodes[n].preds) nin = AbsEnv::Join(nin, edge_out(p, n));
    ++joins[n];
    if (joins[n] > kWidenAfter) nin = AbsEnv::Widen(R.in[n], nin);
    if (!(nin == R.in[n])) {
      R.in[n] = std::move(nin);
      for (int s : cfg.nodes[n].succs) push(s);
    }
  }
  // Narrowing: bounded decreasing sweeps below the widened fixpoint to
  // recover bounds the widening jump discarded.
  for (int r = 0; r < kNarrowRounds; ++r) {
    for (int n : rpo) {
      if (n == Cfg::kEntry) continue;
      AbsEnv nin;
      for (int p : cfg.nodes[n].preds) nin = AbsEnv::Join(nin, edge_out(p, n));
      R.in[n] = std::move(nin);
    }
  }
  R.join_rounds = rounds;
  // Collect the return interval with the final states.
  Interval ret = Interval::Bottom();
  for (size_t n = 0; n < cfg.nodes.size(); ++n) {
    if (!R.in[n].reachable) continue;
    (void)TransferNode(f, static_cast<int>(n), R.in[n], &ret);
  }
  R.ret = ret.bottom ? Interval::Top() : ret;
  summaries_[f].ret = R.ret;  // publish for SummaryReturn at call sites
  R.solved = true;
}

namespace {

/// Removes every relational anchor whose root path segment is `name`
/// ("name", "name.x", "name->x", "size:name", "size:name->x", ...).
void RemoveFactsRootedAt(AbsEnv* env, const std::string& name) {
  auto rooted = [&](const std::string& raw) {
    std::string k = raw.rfind("size:", 0) == 0 ? raw.substr(5) : raw;
    if (k == name) return true;
    return k.rfind(name + ".", 0) == 0 || k.rfind(name + "->", 0) == 0;
  };
  for (auto& [vn, v] : env->vars) {
    for (auto it = v.upper_lt.begin(); it != v.upper_lt.end();) {
      it = rooted(it->first) ? v.upper_lt.erase(it) : std::next(it);
    }
    for (auto it = v.lower_ge.begin(); it != v.lower_ge.end();) {
      it = rooted(it->first) ? v.lower_ge.erase(it) : std::next(it);
    }
  }
  for (auto it = env->ceil_of.begin(); it != env->ceil_of.end();) {
    if (rooted(it->second.first) || rooted(it->first)) {
      it = env->ceil_of.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& [p, ext] : env->extents) {
    if (rooted(ext.sym)) ext.sym.clear();
  }
}

/// `name += delta` for a unit step: shifts the interval and the variable's
/// own relational facts. Widening drops facts that keep growing, so loops
/// over shifted variables still terminate.
void ShiftVar(AbsEnv* env, const std::string& name, int delta) {
  auto it = env->vars.find(name);
  AbsValue cur = it != env->vars.end() ? it->second : AbsValue::Top();
  AbsValue nv;
  nv.range = Interval::Add(cur.range, Interval::Constant(delta));
  nv.is_float = cur.is_float;
  for (const auto& [s, c] : cur.upper_lt) {
    if (c < Interval::kMax - 1) nv.upper_lt[s] = c + delta;
  }
  for (const auto& [s, c] : cur.lower_ge) {
    if (c > Interval::kMin + 1) nv.lower_ge[s] = c + delta;
  }
  KillVar(env, name);
  RemoveFactsRootedAt(env, name);
  env->vars[name] = nv;
}

char FlipCmp(char op) {
  switch (op) {
    case '<': return '>';
    case 'l': return 'g';  // 'l' = <=, 'g' = >=
    case '>': return '<';
    case 'g': return 'l';
    default: return op;  // == and != are symmetric
  }
}

char NegateCmp(char op) {
  switch (op) {
    case '<': return 'g';
    case 'l': return '>';
    case '>': return 'l';
    case 'g': return '<';
    case '=': return '!';
    case '!': return '=';
    default: return 0;
  }
}

}  // namespace

std::pair<std::string, int64_t> AbsInterpreter::SymPlusConst(
    int f, const AbsEnv& env, size_t b, size_t e) const {
  const CgFunction& cf = ctx_->cg.functions[f];
  const std::vector<Token>& t = (*ctx_->files)[cf.file].file->tokens;
  e = std::min(e, t.size());
  if (b >= e) return {"", 0};
  int64_t k = 0;
  if (e - b >= 3 &&
      (t[e - 2].text == "+" || t[e - 2].text == "-") &&
      ParseIntLit(t[e - 1].text, &k)) {
    // The +/- must be top-level: bracket depth at e-2 must be zero.
    int depth = 0;
    for (size_t i = b; i < e - 2; ++i) {
      const std::string& s = t[i].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      if (s == ")" || s == "]" || s == "}") --depth;
    }
    if (depth == 0) {
      EvalOut base = Eval(f, env, b, e - 2);
      if (!base.sym.empty()) {
        return {base.sym, t[e - 2].text == "+" ? k : -k};
      }
    }
  }
  EvalOut v = Eval(f, env, b, e);
  return {v.sym, 0};
}

/// Applies `x + off  OP  o` to the tracked entity behind `sym`, where OP is
/// one of < (op '<'), <= ('l'), > ('>'), >= ('g'), == ('='), != ('!').
/// `other_sym`/`other_off` carry the right side's symbolic decomposition for
/// relational-fact recording.
void AbsInterpreter::RefineHalf(AbsEnv* env, const std::string& sym,
                                int64_t off, char op, const Interval& other,
                                const std::string& other_sym,
                                int64_t other_off) const {
  if (sym.empty()) return;
  Interval o = Interval::Sub(other, Interval::Constant(off));
  bool is_size = sym.rfind("size:", 0) == 0;
  Interval* iv = nullptr;
  AbsValue* var = nullptr;
  if (is_size) {
    auto it = env->sizes.find(sym.substr(5));
    if (it == env->sizes.end()) return;
    iv = &it->second;
  } else {
    var = &env->vars[sym];  // create-on-refine for member scalars
    iv = &var->range;
  }
  int64_t rel = other_off - off;  // x OP s + rel
  switch (op) {
    case '<':
      if (o.hi != Interval::kMax) {
        *iv = Interval::Meet(*iv, Interval::Range(Interval::kMin, o.hi - 1));
      }
      if (var && !other_sym.empty() && other_sym != sym) {
        auto it = var->upper_lt.find(other_sym);
        var->upper_lt[other_sym] =
            it == var->upper_lt.end() ? rel : std::min(it->second, rel);
      }
      break;
    case 'l':
      *iv = Interval::Meet(*iv, Interval::Range(Interval::kMin, o.hi));
      if (var && !other_sym.empty() && other_sym != sym) {
        auto it = var->upper_lt.find(other_sym);
        var->upper_lt[other_sym] =
            it == var->upper_lt.end() ? rel + 1 : std::min(it->second, rel + 1);
      }
      break;
    case '>':
      if (o.lo != Interval::kMin) {
        *iv = Interval::Meet(*iv, Interval::Range(o.lo + 1, Interval::kMax));
      }
      if (var && !other_sym.empty() && other_sym != sym) {
        auto it = var->lower_ge.find(other_sym);
        var->lower_ge[other_sym] =
            it == var->lower_ge.end() ? rel + 1 : std::max(it->second, rel + 1);
      }
      if (var && o.lo >= 0) var->nonzero = true;
      break;
    case 'g':
      *iv = Interval::Meet(*iv, Interval::Range(o.lo, Interval::kMax));
      if (var && !other_sym.empty() && other_sym != sym) {
        auto it = var->lower_ge.find(other_sym);
        var->lower_ge[other_sym] =
            it == var->lower_ge.end() ? rel : std::max(it->second, rel);
      }
      break;
    case '=':
      *iv = Interval::Meet(*iv, o);
      if (var && !other_sym.empty() && other_sym != sym) {
        auto u = var->upper_lt.find(other_sym);
        var->upper_lt[other_sym] =
            u == var->upper_lt.end() ? rel + 1 : std::min(u->second, rel + 1);
        auto l = var->lower_ge.find(other_sym);
        var->lower_ge[other_sym] =
            l == var->lower_ge.end() ? rel : std::max(l->second, rel);
      }
      if (var && !o.Contains(0)) var->nonzero = true;
      break;
    case '!':
      if (var && o.IsConstant() && o.lo == 0) var->nonzero = true;
      if (o.IsConstant() && !iv->bottom) {
        if (iv->lo == o.lo && iv->lo != Interval::kMax) {
          *iv = Interval::Meet(*iv, Interval::Range(o.lo + 1, Interval::kMax));
        } else if (iv->hi == o.lo && iv->hi != Interval::kMin) {
          *iv = Interval::Meet(*iv, Interval::Range(Interval::kMin, o.lo - 1));
        }
      }
      // Relational sharpening: `x <= s + rel` plus `x != s + rel` gives
      // `x < s + rel` (the `idx == v.size() -> bail` sentinel idiom), and
      // symmetrically for an exact lower bound.
      if (var && !other_sym.empty() && other_sym != sym) {
        auto u = var->upper_lt.find(other_sym);
        if (u != var->upper_lt.end() && u->second == rel + 1) u->second = rel;
        auto l = var->lower_ge.find(other_sym);
        if (l != var->lower_ge.end() && l->second == rel) l->second = rel + 1;
      }
      break;
    default:
      break;
  }
  if (iv->bottom) *iv = Interval::Top();  // contradicting guard: stay sound
}

void AbsInterpreter::RefineCond(int f, size_t b, size_t e, bool truth,
                                AbsEnv* env) const {
  if (!env->reachable) return;
  const CgFunction& cf = ctx_->cg.functions[f];
  const std::vector<Token>& t = (*ctx_->files)[cf.file].file->tokens;
  e = std::min(e, t.size());
  if (b >= e) return;
  AbsEvalImpl scan(*this, t, *env, b, e);
  // Strip enclosing parens.
  while (b < e && t[b].text == "(") {
    scan.p = b;
    size_t c = scan.Close(b);
    if (c == e - 1) {
      ++b;
      --e;
    } else {
      break;
    }
  }
  if (b >= e) return;
  // `if (init; cond)` — refine only the condition after the last ';'.
  {
    int depth = 0;
    for (size_t i = b; i < e; ++i) {
      const std::string& s = t[i].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      if (s == ")" || s == "]" || s == "}") --depth;
      if (s == ";" && depth == 0) b = i + 1;
    }
    if (b >= e) return;
  }
  // `!expr`
  if (t[b].text == "!" && (e - b == 2 || t[b + 1].text == "(")) {
    if (e - b == 2) {
      RefineCond(f, b + 1, e, !truth, env);
      return;
    }
    scan.p = b + 1;
    if (scan.Close(b + 1) == e - 1) {
      RefineCond(f, b + 2, e - 1, !truth, env);
      return;
    }
  }
  // Top-level && / ||.
  std::vector<size_t> ands;
  std::vector<size_t> ors;
  {
    int depth = 0;
    for (size_t i = b; i + 1 < e; ++i) {
      const std::string& s = t[i].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      if (s == ")" || s == "]" || s == "}") --depth;
      if (depth != 0) continue;
      if (s == "&" && t[i + 1].text == "&") ands.push_back(i++);
      else if (s == "|" && t[i + 1].text == "|") ors.push_back(i++);
    }
  }
  if (!ors.empty()) {
    if (truth) return;  // `a || b` true: no single-branch refinement
    size_t start = b;
    for (size_t pos : ors) {
      RefineCond(f, start, pos, false, env);
      start = pos + 2;
    }
    RefineCond(f, start, e, false, env);
    return;
  }
  if (!ands.empty()) {
    if (!truth) return;  // `a && b` false: which conjunct failed is unknown
    size_t start = b;
    for (size_t pos : ands) {
      RefineCond(f, start, pos, true, env);
      start = pos + 2;
    }
    RefineCond(f, start, e, true, env);
    return;
  }
  // Find the top-level comparison operator.
  char op = 0;
  size_t opb = e;
  size_t ope = e;
  {
    int depth = 0;
    for (size_t i = b; i < e; ++i) {
      const std::string& s = t[i].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      if (s == ")" || s == "]" || s == "}") --depth;
      if (depth != 0 || s.size() != 1) continue;
      const std::string& n = i + 1 < e ? t[i + 1].text : "";
      if (s == "<") {
        if (n == "<") { ++i; continue; }  // shift
        op = n == "=" ? 'l' : '<';
        opb = i;
        ope = i + (n == "=" ? 2 : 1);
        break;
      }
      if (s == ">") {
        if (n == ">") { ++i; continue; }
        op = n == "=" ? 'g' : '>';
        opb = i;
        ope = i + (n == "=" ? 2 : 1);
        break;
      }
      if (s == "=" && n == "=") {
        op = '=';
        opb = i;
        ope = i + 2;
        break;
      }
      if (s == "!" && n == "=") {
        op = '!';
        opb = i;
        ope = i + 2;
        break;
      }
      if (s == "=") return;  // embedded assignment: bail out
    }
  }
  if (op != 0 && opb > b && ope < e) {
    char eff = truth ? op : NegateCmp(op);
    if (eff == 0) return;
    EvalOut lv = Eval(f, *env, b, opb);
    EvalOut rv = Eval(f, *env, ope, e);
    auto [ls, loff] = SymPlusConst(f, *env, b, opb);
    auto [rs, roff] = SymPlusConst(f, *env, ope, e);
    RefineHalf(env, ls, loff, eff, rv.val.range, rs, roff);
    RefineHalf(env, rs, roff, FlipCmp(eff), lv.val.range, ls, loff);
    return;
  }
  // `path.empty()` / `!path.empty()` (the bang binds tighter than any
  // operator that could appear here, so consuming it is safe).
  {
    bool etruth = truth;
    size_t eb = b;
    if (t[eb].text == "!" && eb + 1 < e) {
      etruth = !etruth;
      ++eb;
    }
    if (e - eb >= 4 && t[e - 1].text == ")" && t[e - 2].text == "(" &&
        t[e - 3].text == "empty") {
      size_t pe = e - 3;
      if (pe > eb + 1 && (t[pe - 1].text == "." || t[pe - 1].text == "->")) {
        AbsEvalImpl pr(*this, t, *env, eb, pe - 1);
        std::string path = pr.ReadPath();
        if (pr.p == pe - 1) {
          // First touch of the container may well be this guard; seed the
          // size entry so the refinement has something to narrow.
          auto it = env->sizes.find(path);
          if (it == env->sizes.end()) {
            it = env->sizes.emplace(path, Interval::Range(0, Interval::kMax))
                     .first;
          }
          if (etruth) {
            it->second = Interval::Meet(it->second, Interval::Constant(0));
          } else {
            it->second =
                Interval::Meet(it->second, Interval::Range(1, Interval::kMax));
          }
          if (it->second.bottom) {
            it->second = Interval::Range(0, Interval::kMax);
          }
        }
        return;
      }
    }
  }
  // Bare truthiness of a tracked variable.
  if (t[b].ident) {
    AbsEvalImpl pr(*this, t, *env, b, e);
    std::string path = pr.ReadPath();
    if (pr.p == e) {
      auto it = env->vars.find(path);
      if (it != env->vars.end()) {
        if (truth) {
          it->second.nonzero = true;
          if (it->second.range.lo >= 0) {
            it->second.range = Interval::Meet(
                it->second.range, Interval::Range(1, Interval::kMax));
            if (it->second.range.bottom) it->second.range = Interval::Top();
          }
        } else {
          it->second.range =
              Interval::Meet(it->second.range, Interval::Constant(0));
          if (it->second.range.bottom) {
            it->second.range = Interval::Constant(0);
          }
        }
      }
    }
  }
}

AbsEnv AbsInterpreter::RefinedAt(int f, size_t tok) const {
  AbsEnv env;  // default-constructed: unreachable
  int n = NodeOfToken(f, tok);
  if (n < 0) return env;
  const FnAbsResult& r = results_[f];
  if (!r.solved || n >= static_cast<int>(r.in.size())) return env;
  env = r.in[n];
  if (!env.reachable) return env;
  const CfgNode& nd = ctx_->cfgs[f].nodes[n];
  RefinePrefix(f, nd.begin, nd.end, tok, &env);
  return env;
}

/// Applies the short-circuit facts a site inherits from the sub-expressions
/// sequenced before it in the same CFG node. C++ guarantees `a` is fully
/// evaluated (and decisive) before `b` in `a && b` / `a || b` / `a ? b : c`,
/// so a subscript in the second position runs only under the refined state.
void AbsInterpreter::RefinePrefix(int f, size_t b, size_t e, size_t site,
                                  AbsEnv* env) const {
  const CgFunction& cf = ctx_->cg.functions[f];
  const std::vector<Token>& t = (*ctx_->files)[cf.file].file->tokens;
  e = std::min(e, t.size());
  if (site < b || site >= e) return;
  for (int round = 0; round < 16 && b < e; ++round) {
    while (e > b && t[e - 1].text == ";") --e;
    if (t[b].text == "return") ++b;
    if (site < b || site >= e) return;
    // Strip parens enclosing the whole remaining span.
    if (t[b].text == "(") {
      AbsEvalImpl scan(*this, t, *env, b, e);
      size_t c = scan.Close(b);
      if (c == e - 1 && site > b && site < c) {
        ++b;
        --e;
        continue;
      }
    }
    // `path(args)` spanning the rest: descend into the argument list and
    // narrow to the argument containing the site (short-circuit facts from
    // sibling arguments never apply, so split at top-level commas).
    if (t[b].ident) {
      size_t j = b;
      while (j + 2 < e && t[j].ident &&
             (t[j + 1].text == "." || t[j + 1].text == "->" ||
              t[j + 1].text == "::") &&
             t[j + 2].ident) {
        j += 2;
      }
      if (t[j].ident && j + 1 < e && t[j + 1].text == "(") {
        AbsEvalImpl scan(*this, t, *env, j + 1, e);
        size_t c = scan.Close(j + 1);
        if (c == e - 1 && site > j + 1 && site < c) {
          size_t ab = j + 2;
          size_t ae = c;
          int depth = 0;
          for (size_t i = ab; i < c; ++i) {
            const std::string& s = t[i].text;
            if (s == "(" || s == "[" || s == "{") ++depth;
            if (s == ")" || s == "]" || s == "}") --depth;
            if (depth == 0 && s == ",") {
              if (i < site) ab = i + 1;
              if (i > site) {
                ae = i;
                break;
              }
            }
          }
          b = ab;
          e = ae;
          continue;
        }
      }
    }
    // Skip a leading declaration / assignment prefix: refinement concerns
    // the RHS expression only. An assignment `=` is a bare `=` (two-char
    // operator spellings arrive as separate tokens; check the neighbours).
    // Top-level scan for the earliest of: assignment `=`, ternary `?`,
    // `&&` / `||` splits.
    size_t assign = e;
    size_t q = e;
    std::vector<size_t> ands;
    std::vector<size_t> ors;
    {
      int depth = 0;
      for (size_t i = b; i < e; ++i) {
        const std::string& s = t[i].text;
        if (s == "(" || s == "[" || s == "{") ++depth;
        if (s == ")" || s == "]" || s == "}") --depth;
        if (depth != 0 || s.size() != 1) continue;
        const std::string& nx = i + 1 < e ? t[i + 1].text : "";
        if (assign == e && s == "=" && nx != "=" &&
            (i == b || (t[i - 1].text != "=" && t[i - 1].text != "<" &&
                        t[i - 1].text != ">" && t[i - 1].text != "!" &&
                        t[i - 1].text != "+" && t[i - 1].text != "-" &&
                        t[i - 1].text != "*" && t[i - 1].text != "/" &&
                        t[i - 1].text != "%" && t[i - 1].text != "&" &&
                        t[i - 1].text != "|" && t[i - 1].text != "^"))) {
          assign = i;
        }
        if (q == e && s == "?") q = i;
        if (s == "&" && nx == "&") ands.push_back(i++);
        else if (s == "|" && nx == "|") ors.push_back(i++);
      }
    }
    if (assign < e && site > assign) {
      b = assign + 1;
      continue;
    }
    // Ternary: the `?` splits condition from arms; find the matching `:`
    // (nested ternaries associate right, so track `?` depth).
    if (q < e && site > q) {
      size_t colon = e;
      int qd = 0;
      int depth = 0;
      for (size_t i = q + 1; i < e; ++i) {
        const std::string& s = t[i].text;
        if (s == "(" || s == "[" || s == "{") ++depth;
        if (s == ")" || s == "]" || s == "}") --depth;
        if (depth != 0) continue;
        if (s == "?") ++qd;
        if (s == ":" && t[i - 1].text != ":" &&
            (i + 1 >= e || t[i + 1].text != ":")) {
          if (qd == 0) {
            colon = i;
            break;
          }
          --qd;
        }
      }
      if (colon == e) return;
      if (site < colon) {
        RefineCond(f, b, q, /*truth=*/true, env);
        b = q + 1;
        e = colon;
      } else {
        RefineCond(f, b, q, /*truth=*/false, env);
        b = colon + 1;
      }
      continue;
    }
    // `a || b`: operands before the one containing the site are false.
    if (!ors.empty()) {
      size_t start = b;
      bool advanced = false;
      for (size_t pos : ors) {
        if (site > pos) {
          RefineCond(f, start, pos, /*truth=*/false, env);
          start = pos + 2;
          advanced = true;
        }
      }
      if (!advanced) {
        e = ors.front();  // site inside the first operand: recurse into it
      } else {
        b = start;
        // Narrow to the operand containing the site.
        for (size_t pos : ors) {
          if (pos > site) {
            e = pos;
            break;
          }
        }
      }
      continue;
    }
    // `a && b`: operands before the one containing the site are true.
    if (!ands.empty()) {
      size_t start = b;
      bool advanced = false;
      for (size_t pos : ands) {
        if (site > pos) {
          RefineCond(f, start, pos, /*truth=*/true, env);
          start = pos + 2;
          advanced = true;
        }
      }
      if (!advanced) {
        e = ands.front();
      } else {
        b = start;
        for (size_t pos : ands) {
          if (pos > site) {
            e = pos;
            break;
          }
        }
      }
      continue;
    }
    return;  // no further top-level structure before the site
  }
}

AbsEnv AbsInterpreter::TransferNode(int f, int node, const AbsEnv& env,
                                    Interval* ret) const {
  const Cfg& cfg = ctx_->cfgs[f];
  const CfgNode& nd = cfg.nodes[node];
  AbsEnv out = env;
  if (!env.reachable) return out;
  if (nd.kind == CfgNode::Kind::kCondition) return out;  // side-effect-free
  const CgFunction& cf = ctx_->cg.functions[f];
  const std::vector<Token>& t = (*ctx_->files)[cf.file].file->tokens;
  size_t b = nd.begin;
  size_t e = std::min(nd.end, t.size());
  while (e > b && t[e - 1].text == ";") --e;
  if (b >= e) return out;
  AbsEvalImpl scan(*this, t, out, b, e);

  const std::string& first = t[b].text;
  if (first == "assert") {
    if (b + 1 < e && t[b + 1].text == "(") {
      scan.p = b + 1;
      size_t close = scan.Close(b + 1);
      if (close <= e) RefineCond(f, b + 2, close, true, &out);
    }
    return out;
  }
  // `CLOUDDB_ASSIGN_OR_RETURN(type name, expr)` declares `name`: the value
  // is the unwrapped StatusOr, opaque here, but the declared type still
  // gives its range (and floatness, which the div-zero rule consults).
  if (first == "CLOUDDB_ASSIGN_OR_RETURN" && b + 1 < e &&
      t[b + 1].text == "(") {
    scan.p = b + 1;
    size_t close = scan.Close(b + 1);
    size_t comma = close;
    int depth = 0;
    for (size_t i = b + 2; i < close && i < e; ++i) {
      const std::string& s = t[i].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      if (s == ")" || s == "]" || s == "}") --depth;
      if (depth == 0 && s == ",") {
        comma = i;
        break;
      }
    }
    if (comma < close && comma > b + 2 && t[comma - 1].ident) {
      const std::string& name = t[comma - 1].text;
      std::string type_last;
      for (size_t i = b + 2; i + 1 < comma; ++i) {
        if (t[i].ident && t[i].text != "const" && t[i].text != "std") {
          type_last = t[i].text;
        }
      }
      AbsValue v;
      if (IsFloatTypeName(type_last)) {
        v.is_float = true;
      } else if (!type_last.empty()) {
        v.range = ResolvedTypeRange(aliases_, type_last);
      }
      KillVar(&out, name);
      RemoveFactsRootedAt(&out, name);
      out.vars[name] = v;
    }
    return out;
  }
  if (first == "return") {
    if (ret != nullptr && e > b + 1) {
      EvalOut v = Eval(f, out, b + 1, e);
      *ret = Interval::Join(*ret, v.val.range);
    }
    return out;
  }
  if (first == "throw" || first == "goto" || first == "break" ||
      first == "continue" || first == "case" || first == "default") {
    return out;
  }

  // Out-parameter kills: `call(&x, ...)` may write anything into x.
  for (size_t i = b; i + 1 < e; ++i) {
    if (t[i].text == "&" && t[i + 1].ident && i > b &&
        (t[i - 1].text == "(" || t[i - 1].text == ",")) {
      const std::string& n = t[i + 1].text;
      KillVar(&out, n);
      RemoveFactsRootedAt(&out, n);
      out.vars.erase(n);
    }
  }

  // ++x / x++ / --x / x-- as the whole statement (incl. for-increment nodes).
  {
    std::string name;
    int delta = 0;
    if (e - b == 3 && t[b].text == t[b + 1].text &&
        (t[b].text == "+" || t[b].text == "-") && t[b + 2].ident) {
      name = t[b + 2].text;
      delta = t[b].text == "+" ? 1 : -1;
    } else if (e - b == 3 && t[b].ident && t[b + 1].text == t[b + 2].text &&
               (t[b + 1].text == "+" || t[b + 1].text == "-")) {
      name = t[b].text;
      delta = t[b + 1].text == "+" ? 1 : -1;
    }
    if (delta != 0) {
      ShiftVar(&out, name, delta);
      return out;
    }
  }

  // Embedded `x++` / `--x` inside a larger statement (`stack[sp++] = t;`,
  // `sel[m++] = sel[j];`): collect the side effects now, apply them after
  // the main transfer so the statement's own reads see the old value.
  std::vector<std::pair<std::string, int>> embedded;
  for (size_t i = b; i + 1 < e; ++i) {
    const std::string& s = t[i].text;
    if ((s != "+" && s != "-") || t[i + 1].text != s) continue;
    int d = s == "+" ? 1 : -1;
    bool prev_operand =
        i > b && (t[i - 1].ident || t[i - 1].text == ")" || t[i - 1].text == "]");
    if (i + 2 < e && t[i + 2].ident && !prev_operand) {
      embedded.emplace_back(t[i + 2].text, d);  // prefix
      ++i;
    } else if (i > b && t[i - 1].ident && t[i - 1].text != "operator" &&
               (i + 2 >= e || !t[i + 2].ident)) {
      embedded.emplace_back(t[i - 1].text, d);  // postfix
      ++i;
    }
  }

  // Top-level assignment or compound assignment.
  size_t eq = e;
  char compound = 0;
  {
    int depth = 0;
    for (size_t i = b; i < e; ++i) {
      const std::string& s = t[i].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      else if (s == ")" || s == "]" || s == "}") --depth;
      if (depth != 0 || s != "=") continue;
      const std::string& prev = i > b ? t[i - 1].text : "";
      const std::string& next = i + 1 < e ? t[i + 1].text : "";
      if (next == "=") { ++i; continue; }  // ==
      if (prev == "=" || prev == "<" || prev == ">" || prev == "!") continue;
      if (prev.size() == 1 &&
          std::string("+-*/%&|^").find(prev[0]) != std::string::npos) {
        compound = prev[0];
        eq = i;
        break;
      }
      eq = i;
      break;
    }
  }
  if (eq != e) {
    TransferAssign(f, b, eq, e, compound, &out);
  } else {
    // No assignment: declarations without initializer and container effects.
    TransferEffects(f, b, e, &out);
  }
  for (const auto& [name, delta] : embedded) ShiftVar(&out, name, delta);
  return out;
}

/// `[lb, le0)` = LHS tokens (excluding a compound operator), `[eq+1, e)` the
/// RHS. Handles declarations, scalar/container/pointer assignment, and the
/// special value shapes (size aliasing, ceil-division, midpoint, X/c).
void AbsInterpreter::TransferAssign(int f, size_t b, size_t eq, size_t e,
                                    char compound, AbsEnv* out) const {
  const CgFunction& cf = ctx_->cg.functions[f];
  const std::vector<Token>& t = (*ctx_->files)[cf.file].file->tokens;
  size_t lb = b;
  size_t le = compound ? eq - 1 : eq;
  size_t rb = eq + 1;
  // Element store `v[i] = x` / deref store `*p = x`: no tracked cell
  // changes. A C-array declaration with initializer still records extent.
  for (size_t i = lb; i < le; ++i) {
    if (t[i].text == "[") {
      int64_t k = 0;
      if (i > lb && t[i - 1].ident && i + 2 < le &&
          ParseIntLit(t[i + 1].text, &k) && t[i + 2].text == "]" &&
          i >= lb + 2) {
        Extent ext;
        ext.known = true;
        ext.count = Interval::Constant(k);
        out->extents[t[i - 1].text] = ext;
      }
      return;
    }
  }
  if (le > lb && t[lb].text == "*") return;
  if (le == lb || !t[le - 1].ident) return;
  // Trailing path of the LHS = the assigned entity.
  size_t ps = le - 1;
  std::string name = t[ps].text;
  while (ps >= lb + 2 && (t[ps - 1].text == "." || t[ps - 1].text == "->") &&
         t[ps - 2].ident) {
    name = t[ps - 2].text + t[ps - 1].text + name;
    ps -= 2;
  }
  bool is_decl = ps > lb;
  std::string type_last;
  bool decl_container = false;
  bool decl_float = false;
  if (is_decl) {
    for (size_t i = lb; i < ps; ++i) {
      const std::string& s = t[i].text;
      if (s == "vector" || s == "deque") decl_container = true;
      if (t[i].ident && s != "const" && s != "std" && s != "auto" &&
          s != "static" && s != "constexpr" && s != "unsigned" &&
          s != "struct") {
        type_last = s;
      }
    }
    decl_float = IsFloatTypeName(type_last);
  }

  // Whole-container assignment.
  if (decl_container || out->sizes.count(name)) {
    Interval sz = Interval::Range(0, Interval::kMax);
    if (rb < e && t[rb].text == "{") {
      AbsEvalImpl scan(*this, t, *out, rb, e);
      size_t close = scan.Close(rb);
      if (close == rb + 1) {
        sz = Interval::Constant(0);
      } else if (close < e) {
        int depth = 0;
        int64_t commas = 0;
        for (size_t i = rb; i < close; ++i) {
          const std::string& s = t[i].text;
          if (s == "(" || s == "[" || s == "{") ++depth;
          if (s == ")" || s == "]" || s == "}") --depth;
          if (s == "," && depth == 1) ++commas;
        }
        sz = Interval::Constant(commas + 1);
      }
    } else {
      EvalOut rv = Eval(f, *out, rb, e);
      if (rv.sym.rfind("size:", 0) == 0) {
        // not meaningful — a size is not a container
      } else if (!rv.sym.empty()) {
        auto it = out->sizes.find(rv.sym);
        if (it != out->sizes.end()) sz = it->second;  // copy assignment
      }
    }
    RemoveFactSym(out, "size:" + name);
    out->sizes[name] = sz;
    return;
  }

  // Pointer from arena: `T* p = arena->AllocateArray<T>(n)`.
  for (size_t i = rb; i + 1 < e; ++i) {
    if (t[i].text != "AllocateArray") continue;
    size_t open = i + 1;
    if (t[open].text == "<") {
      int depth = 0;
      for (; open < e; ++open) {
        if (t[open].text == "<") ++depth;
        if (t[open].text == ">" && --depth == 0) {
          ++open;
          break;
        }
      }
    }
    if (open >= e || t[open].text != "(") break;
    AbsEvalImpl scan(*this, t, *out, open, e);
    size_t close = scan.Close(open);
    if (close >= e) break;
    EvalOut cnt = Eval(f, *out, open + 1, close);
    Extent ext;
    ext.known = true;
    ext.count = Interval::Meet(cnt.val.range, Interval::Range(0, Interval::kMax));
    if (ext.count.bottom) ext.count = Interval::Range(0, Interval::kMax);
    ext.sym = cnt.sym;
    KillVar(out, name);
    RemoveFactsRootedAt(out, name);
    out->extents[name] = ext;
    AbsValue pv;
    pv.nullness = Nullness::kNonNull;
    pv.nonzero = true;
    out->vars[name] = pv;
    return;
  }

  // Scalar assignment. Evaluate the RHS *before* killing the target so
  // `i = i + 1` reads the old value.
  EvalOut rv = Eval(f, *out, rb, e);
  AbsValue nv;
  if (compound) {
    auto it = out->vars.find(name);
    AbsValue cur = it != out->vars.end() ? it->second : AbsValue::Top();
    Interval iv;
    switch (compound) {
      case '+': iv = Interval::Add(cur.range, rv.val.range); break;
      case '-': iv = Interval::Sub(cur.range, rv.val.range); break;
      case '*': iv = Interval::Mul(cur.range, rv.val.range); break;
      case '/': iv = Interval::Div(cur.range, rv.val.range); break;
      case '%': iv = Interval::Mod(cur.range, rv.val.range); break;
      case '&': iv = Interval::BitAnd(cur.range, rv.val.range); break;
      default: iv = Interval::Top(); break;
    }
    nv = AbsValue::Of(iv);
    nv.is_float = cur.is_float || rv.val.is_float;
  } else {
    nv = rv.val;
    if (is_decl && decl_float) nv.is_float = true;
    if (is_decl && !type_last.empty() && !decl_float && type_last != "auto") {
      Interval tr = ResolvedTypeRange(aliases_, type_last);
      Interval met = Interval::Meet(nv.range, tr);
      nv.range = met.bottom ? tr : met;
    }
    // Equality facts: x = <sym ± c>.
    auto [s, off] = SymPlusConst(f, *out, rb, e);
    if (!s.empty() && s != name) {
      nv.upper_lt[s] = off + 1;
      nv.lower_ge[s] = off;
    }
    // The kill must precede ShapeRules: the shapes *record* results keyed by
    // `name` (ceil_of) that the kill would otherwise erase. The facts the
    // shapes read anchor on other variables, which the kill leaves alone.
    KillVar(out, name);
    RemoveFactsRootedAt(out, name);
    ShapeRules(f, rb, e, *out, &nv, name, out);
    out->vars[name] = nv;
    return;
  }
  KillVar(out, name);
  RemoveFactsRootedAt(out, name);
  out->vars[name] = nv;
}

/// Structural value rules applied to a plain assignment's RHS:
///   * `(X + c1) / c2` with c1 == c2-1 — records `name = ceil(X/c2)`.
///   * `(a + b) / 2` and `a + (b - a) / 2` with `a < b` known — midpoint:
///     `name < b` plus b's upper anchors, and a's lower bound.
///   * `X / c` (c >= 2) with X >= 1 — `name < X` (strict shrink).
void AbsInterpreter::ShapeRules(int f, size_t rb, size_t re, const AbsEnv& env,
                                AbsValue* nv, const std::string& name,
                                AbsEnv* out) const {
  const CgFunction& cf = ctx_->cg.functions[f];
  const std::vector<Token>& t = (*ctx_->files)[cf.file].file->tokens;
  re = std::min(re, t.size());
  if (rb >= re) return;
  int64_t c2 = 0;
  // Trailing `/ c` at top level.
  if (re - rb >= 3 && t[re - 2].text == "/" && ParseIntLit(t[re - 1].text, &c2) &&
      c2 >= 2) {
    int depth = 0;
    for (size_t i = rb; i < re - 2; ++i) {
      const std::string& s = t[i].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      if (s == ")" || s == "]" || s == "}") --depth;
    }
    if (depth != 0) return;
    size_t xb = rb;
    size_t xe = re - 2;
    // Parenthesized numerator?
    AbsEvalImpl scan(*this, t, env, xb, xe);
    if (t[xb].text == "(" && scan.Close(xb) == xe - 1) {
      size_t ib = xb + 1;
      size_t ie = xe - 1;
      // (X + c1) / c2 with c1 == c2-1: ceil-division shape.
      int64_t c1 = 0;
      if (ie - ib >= 3 && t[ie - 2].text == "+" &&
          ParseIntLit(t[ie - 1].text, &c1) && c1 == c2 - 1) {
        EvalOut base = Eval(f, env, ib, ie - 2);
        if (!base.sym.empty()) {
          out->ceil_of[name] = {base.sym, c2};
        }
      }
      // (a + b) / 2: midpoint.
      if (c2 == 2) MidpointFacts(f, ib, ie, env, nv);
      ib = ie;  // done with the parenthesized forms
    } else {
      // X / c with X >= 1: strict shrink below X.
      EvalOut base = Eval(f, env, xb, xe);
      if (!base.sym.empty() && base.val.range.lo >= 1) {
        nv->upper_lt[base.sym] = 0;
        if (nv->range.lo == Interval::kMin || nv->range.lo < 0) {
          nv->range = Interval::Meet(nv->range,
                                     Interval::Range(0, Interval::kMax));
          if (nv->range.bottom) nv->range = Interval::Range(0, Interval::kMax);
        }
      }
    }
  }
  // a + (b - a) / 2: the overflow-safe midpoint spelling.
  if (re - rb >= 9 && t[rb].ident && t[rb + 1].text == "+" &&
      t[rb + 2].text == "(" && t[rb + 3].ident && t[rb + 4].text == "-" &&
      t[rb + 5].text == t[rb].text && t[rb + 6].text == ")" &&
      t[rb + 7].text == "/" && t[rb + 8].text == "2" &&
      t[rb + 3].text != t[rb].text) {
    const std::string& a = t[rb].text;
    const std::string& bn = t[rb + 3].text;
    auto ai = env.vars.find(a);
    auto bi = env.vars.find(bn);
    if (ai != env.vars.end() && bi != env.vars.end()) {
      auto lt = ai->second.upper_lt.find(bn);
      if (lt != ai->second.upper_lt.end() && lt->second <= 0) {
        nv->upper_lt[bn] = 0;
        for (const auto& [s, c] : bi->second.upper_lt) {
          auto it = nv->upper_lt.find(s);
          nv->upper_lt[s] = it == nv->upper_lt.end() ? c : std::min(it->second, c);
        }
        for (const auto& [s, c] : ai->second.lower_ge) nv->lower_ge[s] = c;
        if (ai->second.range.lo != Interval::kMin) {
          nv->range = Interval::Meet(
              nv->range, Interval::Range(ai->second.range.lo, Interval::kMax));
          if (nv->range.bottom) nv->range = Interval::Top();
        }
      }
    }
  }
}

/// `(a + b) / 2` numerator handling: with `a < b` known, the midpoint is
/// strictly below b and at or above a's lower bound.
void AbsInterpreter::MidpointFacts(int f, size_t ib, size_t ie,
                                   const AbsEnv& env, AbsValue* nv) const {
  const CgFunction& cf = ctx_->cg.functions[f];
  const std::vector<Token>& t = (*ctx_->files)[cf.file].file->tokens;
  if (ie - ib != 3 || !t[ib].ident || t[ib + 1].text != "+" ||
      !t[ib + 2].ident) {
    return;
  }
  const std::string& a = t[ib].text;
  const std::string& bn = t[ib + 2].text;
  auto ai = env.vars.find(a);
  auto bi = env.vars.find(bn);
  if (ai == env.vars.end() || bi == env.vars.end()) return;
  auto lt = ai->second.upper_lt.find(bn);
  if (lt == ai->second.upper_lt.end() || lt->second > 0) return;
  nv->upper_lt[bn] = 0;  // (a + b)/2 <= b-1 when a <= b-1
  for (const auto& [s, c] : bi->second.upper_lt) {
    auto it = nv->upper_lt.find(s);
    nv->upper_lt[s] = it == nv->upper_lt.end() ? c : std::min(it->second, c);
  }
  for (const auto& [s, c] : ai->second.lower_ge) nv->lower_ge[s] = c;
  if (ai->second.range.lo != Interval::kMin) {
    nv->range = Interval::Meet(
        nv->range, Interval::Range(ai->second.range.lo, Interval::kMax));
    if (nv->range.bottom) nv->range = Interval::Top();
  }
}

/// Statements without a top-level `=`: uninitialized declarations and
/// container effect calls.
void AbsInterpreter::TransferEffects(int f, size_t b, size_t e,
                                     AbsEnv* out) const {
  const CgFunction& cf = ctx_->cg.functions[f];
  const std::vector<Token>& t = (*ctx_->files)[cf.file].file->tokens;
  AbsEvalImpl scan(*this, t, *out, b, e);

  // `std::vector<T> v;` / `v(n)` / `v(n, x)` / `v{...}` declarations.
  for (size_t i = b; i < e; ++i) {
    if (t[i].text != "vector" && t[i].text != "deque") continue;
    size_t j = i + 1;
    if (j < e && t[j].text == "<") {
      int depth = 0;
      for (; j < e; ++j) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">" && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    if (j >= e || !t[j].ident) break;
    const std::string& name = t[j].text;
    Interval sz = Interval::Range(0, Interval::kMax);
    if (j + 1 >= e || t[j + 1].text == ";") {
      sz = Interval::Constant(0);
    } else if (t[j + 1].text == "(") {
      size_t close = scan.Close(j + 1);
      size_t first_end = close;
      int depth = 0;
      for (size_t k = j + 1; k < close; ++k) {
        const std::string& s = t[k].text;
        if (s == "(" || s == "[" || s == "{") ++depth;
        if (s == ")" || s == "]" || s == "}") --depth;
        if (s == "," && depth == 1) {
          first_end = k;
          break;
        }
      }
      if (close > j + 2 && close < e + 1) {
        EvalOut n = Eval(f, *out, j + 2, first_end);
        sz = Interval::Meet(n.val.range, Interval::Range(0, Interval::kMax));
        if (sz.bottom) sz = Interval::Range(0, Interval::kMax);
      } else {
        sz = Interval::Constant(0);
      }
    }
    RemoveFactSym(out, "size:" + name);
    out->sizes[name] = sz;
    break;
  }

  // C-array declaration: `T name[K];`.
  for (size_t i = b; i + 3 < e; ++i) {
    int64_t k = 0;
    if (t[i].ident && i > b && t[i - 1].ident && t[i + 1].text == "[" &&
        ParseIntLit(t[i + 2].text, &k) && t[i + 3].text == "]") {
      Extent ext;
      ext.known = true;
      ext.count = Interval::Constant(k);
      out->extents[t[i].text] = ext;
    }
    // `T name[K]` with a named constant bound.
    if (t[i].ident && i > b && t[i - 1].ident && t[i + 1].text == "[" &&
        t[i + 2].ident && t[i + 3].text == "]") {
      auto cit = constants_.find(t[i + 2].text);
      if (cit != constants_.end()) {
        Extent ext;
        ext.known = true;
        ext.count = Interval::Constant(cit->second);
        out->extents[t[i].text] = ext;
      }
    }
  }

  // Container effect calls: `path.method(args)`.
  for (size_t i = b; i + 1 < e; ++i) {
    if (!(t[i].ident && i > b && (t[i - 1].text == "." || t[i - 1].text == "->") &&
          t[i + 1].text == "(")) {
      continue;
    }
    const std::string& method = t[i].text;
    // Backward path walk (mirrors the entry-env seeding).
    size_t j = i - 1;
    std::string base;
    bool ok = true;
    for (;;) {
      if (j <= b || !t[j - 1].ident) {
        ok = false;
        break;
      }
      base = t[j - 1].text + (base.empty() ? "" : t[j].text + base);
      if (j >= b + 2 && (t[j - 2].text == "." || t[j - 2].text == "->")) {
        j -= 2;
        continue;
      }
      break;
    }
    if (!ok || base.empty()) continue;
    auto it = out->sizes.find(base);
    if (it == out->sizes.end()) continue;  // unmodeled path
    Interval& sz = it->second;
    const std::string sym = "size:" + base;
    if (method == "push_back" || method == "emplace_back") {
      // Growth preserves `x < size` facts: strictly-below stays strictly
      // below when the bound moves up.
      sz = Interval::Meet(Interval::Add(sz, Interval::Constant(1)),
                          Interval::Range(0, Interval::kMax));
      if (sz.bottom) sz = Interval::Range(1, Interval::kMax);
    } else if (method == "pop_back") {
      sz = Interval::Meet(Interval::Sub(sz, Interval::Constant(1)),
                          Interval::Range(0, Interval::kMax));
      if (sz.bottom) sz = Interval::Range(0, Interval::kMax);
      RemoveFactSym(out, sym);
    } else if (method == "clear") {
      sz = Interval::Constant(0);
      RemoveFactSym(out, sym);
    } else if (method == "resize" || method == "assign") {
      size_t close = scan.Close(i + 1);
      size_t first_end = close;
      int depth = 0;
      for (size_t k = i + 1; k < close; ++k) {
        const std::string& s = t[k].text;
        if (s == "(" || s == "[" || s == "{") ++depth;
        if (s == ")" || s == "]" || s == "}") --depth;
        if (s == "," && depth == 1) {
          first_end = k;
          break;
        }
      }
      Interval n = Interval::Range(0, Interval::kMax);
      if (close > i + 2 && close <= e) {
        EvalOut v = Eval(f, *out, i + 2, first_end);
        n = Interval::Meet(v.val.range, Interval::Range(0, Interval::kMax));
        if (n.bottom) n = Interval::Range(0, Interval::kMax);
      }
      sz = n;
      RemoveFactSym(out, sym);
    } else if (method == "reserve") {
      // capacity only; size unchanged
    } else if (method == "erase" || method == "insert" || method == "append" ||
               method == "emplace") {
      sz = Interval::Range(0, Interval::kMax);
      RemoveFactSym(out, sym);
    } else if (!ReadOnlyMethods().count(method)) {
      sz = Interval::Range(0, Interval::kMax);
      RemoveFactSym(out, sym);
    }
  }
}

bool AbsInterpreter::ProveIndex(int f, const AbsEnv& env, size_t b, size_t e,
                                const std::string& limit_sym,
                                const Interval& limit, int slack) const {
  const CgFunction& cf = ctx_->cg.functions[f];
  const std::vector<Token>& t = (*ctx_->files)[cf.file].file->tokens;
  e = std::min(e, t.size());
  if (b >= e) return false;
  EvalOut iv = Eval(f, env, b, e);
  const Interval& r = iv.val.range;
  if (r.bottom) return true;  // unreachable read
  if (r.lo < 0) return false;
  // Concrete proof.
  if (limit.lo != Interval::kMin && r.hi != Interval::kMax &&
      r.hi < limit.lo + slack) {
    return true;
  }
  if (limit_sym.empty()) return false;
  // Relational proof through sym ± const decomposition.
  auto [s, off] = SymPlusConst(f, env, b, e);
  if (!s.empty()) {
    const AbsValue* sv = nullptr;
    auto vit = env.vars.find(s);
    if (vit != env.vars.end()) sv = &vit->second;
    if (sv != nullptr) {
      auto it = sv->upper_lt.find(limit_sym);
      if (it != sv->upper_lt.end() && it->second + off <= slack) return true;
      // One transitive step: x < m + c1, m < limit + c2  =>  x < limit + c1+c2-1.
      for (const auto& [mid, c1] : sv->upper_lt) {
        auto mv = env.vars.find(mid);
        if (mv == env.vars.end()) continue;
        auto it2 = mv->second.upper_lt.find(limit_sym);
        if (it2 != mv->second.upper_lt.end() &&
            c1 + it2->second - 1 + off <= slack) {
          return true;
        }
      }
    }
    // `limit_expr ± c` indexing against its own limit symbol:
    // `v[v.size() - 1]` is `s + (-1)` vs limit s, in range iff off < slack.
    if (s == limit_sym && off + 1 <= slack) return true;
  }
  // Ceil-division word count: `p[i >> k]` / `p[i / c]` into an extent of
  // ceil(len / c) elements, justified by `i < len`.
  auto ci = env.ceil_of.find(limit_sym);
  if (ci != env.ceil_of.end()) {
    int64_t div = 0;
    size_t m = e;
    int64_t lit = 0;
    if (e - b >= 3 && t[e - 2].text == "/" && ParseIntLit(t[e - 1].text, &lit)) {
      div = lit;
      m = e - 2;
    } else if (e - b >= 4 && t[e - 3].text == ">" && t[e - 2].text == ">" &&
               ParseIntLit(t[e - 1].text, &lit) && lit >= 0 && lit <= 62) {
      div = int64_t{1} << lit;
      m = e - 3;
    }
    if (div != 0 && div == ci->second.second) {
      EvalOut bv = Eval(f, env, b, m);
      if (!bv.sym.empty() && bv.val.range.lo >= 0) {
        auto it = bv.val.upper_lt.find(ci->second.first);
        if (it != bv.val.upper_lt.end() && it->second <= 0) return true;
      }
    }
  }
  return false;
}

}  // namespace clouddb::lint
