#include "rules_flow.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "frontend.h"
#include "linter.h"

namespace clouddb::lint {
namespace {

constexpr char kRuleCapture[] = "clouddb-dangling-capture";
constexpr char kRuleLock[] = "clouddb-lock-discipline";
constexpr char kRuleHygiene[] = "clouddb-include-hygiene";

bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}

// ---------------------------------------------------------------------------
// clouddb-dangling-capture
// ---------------------------------------------------------------------------

/// Class facts merged across every scanned file (class definitions usually
/// live in headers while the lambdas live in the .cc).
struct ClassFacts {
  bool found = false;
  bool has_timer_member = false;
  std::set<std::string> timer_members;
};

/// (class, method) -> body token range, per file, for the one-hop
/// destructor-calls-Cancel analysis.
struct MethodBody {
  const SourceFile* file;
  size_t begin, end;
};

bool RangeHasCall(const SourceFile& file, size_t begin, size_t end,
                  std::string_view name) {
  const auto& t = file.tokens;
  for (size_t i = begin; i + 1 < end; ++i) {
    if (t[i].ident && t[i].text == name && t[i + 1].text == "(") return true;
  }
  return false;
}

/// True when `cls` has a destructor that calls Cancel() — directly, or via a
/// method of the same class (one hop; enough for handle-vector helpers).
bool DtorCancels(const std::string& cls,
                 const std::multimap<std::string, MethodBody>& methods,
                 const std::multimap<std::string, MethodBody>& dtors) {
  auto [d_begin, d_end] = dtors.equal_range(cls);
  for (auto it = d_begin; it != d_end; ++it) {
    const MethodBody& dtor = it->second;
    if (RangeHasCall(*dtor.file, dtor.begin, dtor.end, "Cancel")) return true;
    // One hop: the dtor calls a sibling method that cancels.
    const auto& t = dtor.file->tokens;
    for (size_t i = dtor.begin; i + 1 < dtor.end; ++i) {
      if (!t[i].ident || t[i + 1].text != "(") continue;
      auto [m_begin, m_end] = methods.equal_range(cls + "::" + t[i].text);
      for (auto mit = m_begin; mit != m_end; ++mit) {
        const MethodBody& m = mit->second;
        if (RangeHasCall(*m.file, m.begin, m.end, "Cancel")) return true;
      }
    }
  }
  return false;
}

/// Raw-pointer locals/parameters of a function body (token-pattern match on
/// `T* name` followed by '=', ';', ',' or ')').
std::set<std::string> PointerNames(const SourceFile& file, size_t begin,
                                   size_t end) {
  std::set<std::string> names;
  const auto& t = file.tokens;
  // Include the parameter list: scan from a bit before the body too — the
  // caller passes the body range, so walk back to the function's '(' is not
  // available here; parameters declared `Foo* p` appear right before `{` and
  // are covered by starting a few tokens early.
  size_t start = begin > 32 ? begin - 32 : 0;
  for (size_t i = start + 1; i + 2 < end; ++i) {
    if (t[i].text != "*" || !t[i + 1].ident) continue;
    const std::string& next = t[i + 2].text;
    if (next != "=" && next != ";" && next != "," && next != ")") continue;
    if (!(t[i - 1].ident || t[i - 1].text == ">")) continue;
    names.insert(t[i + 1].text);
  }
  return names;
}

bool IsLocalTimer(const SourceFile& file, const FunctionDef& fn,
                  const LambdaExpr& lam, const std::string& name) {
  const auto& t = file.tokens;
  for (size_t i = fn.body_begin; i + 1 < lam.intro; ++i) {
    if ((t[i].text == "Timer" || t[i].text == "PeriodicTimer") &&
        t[i + 1].ident && t[i + 1].text == name) {
      return true;
    }
  }
  return false;
}

}  // namespace

void CheckDanglingCaptures(const std::vector<AnalyzedFile>& files,
                           std::vector<Diagnostic>* out_) {
  // Merge class facts and collect method/dtor bodies across all files.
  std::map<std::string, ClassFacts> classes;
  std::multimap<std::string, MethodBody> methods;  // "Cls::Method" -> body
  std::multimap<std::string, MethodBody> dtors;    // "Cls" -> dtor body
  for (const AnalyzedFile& af : files) {
    for (const ClassDef& c : af.index->classes) {
      ClassFacts& facts = classes[c.name];
      facts.found = true;
      if (!c.timer_members.empty()) facts.has_timer_member = true;
      facts.timer_members.insert(c.timer_members.begin(),
                                 c.timer_members.end());
    }
    for (const FunctionDef& fn : af.index->functions) {
      if (fn.cls.empty()) continue;
      MethodBody body{af.file, fn.body_begin, fn.body_end};
      if (fn.is_dtor) {
        dtors.emplace(fn.cls, body);
      } else {
        methods.emplace(fn.cls + "::" + fn.name, body);
      }
    }
  }

  for (const AnalyzedFile& af : files) {
    const SourceFile& file = *af.file;
    if (!StartsWith(file.rel, "src/")) continue;
    for (const FunctionDef& fn : af.index->functions) {
      for (const LambdaExpr& lam : fn.lambdas) {
        bool schedule_like = lam.callee == "ScheduleAt" ||
                             lam.callee == "ScheduleAfter" ||
                             lam.callee == "EventCallback";
        bool bind_like = lam.callee == "Bind" || lam.callee == "Start";
        if (!schedule_like && !bind_like) continue;

        if (bind_like) {
          // Binding to a timer whose lifetime covers the callback is the
          // sanctioned pattern: a timer member of the enclosing class, or a
          // timer local to this (stack) scope, releases its slot on
          // destruction.
          const std::string& recv = lam.receiver;
          if (!recv.empty() && recv != "?") {
            auto it = classes.find(fn.cls);
            if (it != classes.end() && it->second.timer_members.count(recv)) {
              continue;
            }
            if (IsLocalTimer(file, fn, lam, recv)) continue;
          }
          // `Start` is a common method name; without a resolved timer
          // receiver, treat it as an unrelated API.
          if (lam.callee == "Start") continue;
        }

        // Risky captures: anything that aliases state the scheduled-time
        // callback does not own.
        std::vector<std::string> risky;
        if (lam.captures_this) risky.push_back("'this'");
        if (lam.ref_default && !fn.cls.empty()) risky.push_back("'&' (default ref)");
        if (lam.copy_default && !fn.cls.empty()) risky.push_back("'=' (captures this)");
        for (const std::string& r : lam.by_ref) risky.push_back("'&" + r + "'");
        std::set<std::string> ptrs =
            PointerNames(file, fn.body_begin, fn.body_end);
        for (const std::string& c : lam.by_copy) {
          if (ptrs.count(c)) risky.push_back("raw pointer '" + c + "'");
        }
        if (risky.empty()) continue;
        // Stack-owned contexts (free functions) drive the Simulation from
        // the same frame the captures live in; documented false-negative
        // trade for zero noise.
        if (fn.cls.empty()) continue;
        auto it = classes.find(fn.cls);
        if (it == classes.end() || !it->second.found) continue;
        if (it->second.has_timer_member) continue;
        if (DtorCancels(fn.cls, methods, dtors)) continue;

        std::string what;
        for (size_t i = 0; i < risky.size(); ++i) {
          if (i > 0) what += ", ";
          what += risky[i];
        }
        out_->push_back(
            {file.rel, lam.line, kRuleCapture,
             "lambda passed to '" + lam.callee + "' captures " + what +
                 " but class '" + fn.cls +
                 "' has no cancelling sim::Timer/PeriodicTimer member and no "
                 "destructor-side Cancel; the callback can fire after the "
                 "object dies — bind through a Timer member, store and Cancel "
                 "the EventHandle in the destructor, or capture by value"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// clouddb-lock-discipline
// ---------------------------------------------------------------------------

namespace {

bool IsAcquireName(const std::string& s) {
  return s == "AcquireRead" || s == "AcquireWrite";
}

/// Innermost '{' enclosing token `pos` within [body_begin, body_end].
/// Returns the body range itself when no nested block encloses `pos`.
std::pair<size_t, size_t> InnermostBlock(const FileIndex& idx, size_t pos,
                                         size_t body_begin, size_t body_end) {
  std::pair<size_t, size_t> best{body_begin, body_end};
  const auto& match = idx.match;
  for (size_t i = body_begin + 1; i < pos; ++i) {
    if (match[i] < 0) continue;
    size_t m = static_cast<size_t>(match[i]);
    if (m > pos && m <= body_end && i > best.first) best = {i, m};
  }
  return best;
}

/// Extracts the first quoted string literal after column `from` on raw line
/// `line` (1-based), or "" — used for literal lock-key ordering.
std::string LiteralOnLine(const SourceFile& file, int line) {
  if (line <= 0 || static_cast<size_t>(line) > file.raw_lines.size()) return "";
  const std::string& raw = file.raw_lines[line - 1];
  size_t q1 = raw.find('"');
  if (q1 == std::string::npos) return "";
  size_t q2 = raw.find('"', q1 + 1);
  if (q2 == std::string::npos) return "";
  return raw.substr(q1 + 1, q2 - q1 - 1);
}

}  // namespace

void CheckLockDiscipline(const std::vector<AnalyzedFile>& files,
                         std::vector<Diagnostic>* out_) {
  // Pass 1: the transitive set of releasing functions in src/db — seeded by
  // bodies that call LockManager::ReleaseAll, closed over the call graph so
  // wrappers like Database::CommitSession/RollbackSession count as releases
  // at their call sites.
  std::map<std::string, std::vector<MethodBody>> db_functions;
  for (const AnalyzedFile& af : files) {
    if (!StartsWith(af.file->rel, "src/db/")) continue;
    for (const FunctionDef& fn : af.index->functions) {
      db_functions[fn.name].push_back(
          {af.file, fn.body_begin, fn.body_end});
    }
  }
  std::set<std::string> releasing = {"ReleaseAll"};
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& [name, bodies] : db_functions) {
      if (releasing.count(name)) continue;
      for (const MethodBody& b : bodies) {
        bool calls_release = false;
        const auto& t = b.file->tokens;
        for (size_t i = b.begin; i + 1 < b.end; ++i) {
          if (t[i].ident && t[i + 1].text == "(" && releasing.count(t[i].text)) {
            calls_release = true;
            break;
          }
        }
        if (calls_release) {
          releasing.insert(name);
          grew = true;
          break;
        }
      }
    }
  }

  // Pass 2: per-function pairing checks.
  for (const AnalyzedFile& af : files) {
    const SourceFile& file = *af.file;
    if (!StartsWith(file.rel, "src/db/")) continue;
    const auto& t = file.tokens;
    for (const FunctionDef& fn : af.index->functions) {
      // Collect acquire / release / return positions inside the body,
      // excluding nested lambda bodies (their returns are not this
      // function's exits).
      auto in_lambda = [&fn](size_t pos) {
        for (const LambdaExpr& lam : fn.lambdas) {
          if (lam.body_begin != 0 && pos > lam.body_begin &&
              pos < lam.body_end) {
            return true;
          }
        }
        return false;
      };
      std::vector<size_t> acquires, releases, returns;
      for (size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
        if (!t[i].ident) continue;
        if (t[i].text == "return") {
          if (!in_lambda(i)) returns.push_back(i);
          continue;
        }
        if (t[i + 1].text != "(") continue;
        if (IsAcquireName(t[i].text)) {
          if (!in_lambda(i)) acquires.push_back(i);
        } else if (releasing.count(t[i].text)) {
          if (!in_lambda(i)) releases.push_back(i);
        }
      }
      if (acquires.empty()) continue;

      // (a) Acquire after a dominating release: 2PL's shrinking phase has
      // begun, so growing again risks deadlock and breaks the protocol. A
      // release dominates an acquire when the release's innermost block also
      // contains the acquire (a release inside an early-return branch does
      // not flow into code after the branch).
      for (size_t a : acquires) {
        for (size_t r : releases) {
          if (r >= a) continue;
          auto block = InnermostBlock(*af.index, r, fn.body_begin, fn.body_end);
          if (a > block.first && a < block.second) {
            out_->push_back(
                {file.rel, t[a].line, kRuleLock,
                 "lock acquired after a release on the same path: two-phase "
                 "locking forbids growing the lock set once the shrinking "
                 "phase has begun (acquire everything up front, release at "
                 "commit/rollback)"});
            break;
          }
        }
      }

      // (b)/(c) Every exit after the first acquire needs a release on the
      // way (transaction-scoped 2PL: a releasing *wrapper* call — commit or
      // rollback — counts; holding locks past a return with neither is a
      // leak under the no-wait policy, which aborts whole transactions on
      // conflict).
      size_t first_acquire = acquires.front();
      if (releases.empty()) {
        out_->push_back(
            {file.rel, t[first_acquire].line, kRuleLock,
             "function acquires table locks but never releases them on any "
             "path; pair every acquire with ReleaseAll (or a commit/rollback "
             "wrapper) before the transaction scope ends"});
      } else {
        for (size_t r : returns) {
          if (r < first_acquire) continue;
          bool released = false;
          for (size_t rel : releases) {
            if (rel > first_acquire && rel < r) {
              released = true;
              break;
            }
          }
          if (!released) {
            out_->push_back(
                {file.rel, t[r].line, kRuleLock,
                 "exit path holds table locks: no release between the "
                 "acquire and this return (a failed acquire must abort the "
                 "transaction — release — before propagating its status)"});
          }
        }
      }

      // (d) Literal lock keys must grow in canonical (sorted) order so
      // concurrent transactions cannot deadlock in the growing phase.
      std::string prev_key;
      for (size_t a : acquires) {
        std::string key = LiteralOnLine(file, t[a].line);
        if (key.empty()) continue;
        if (!prev_key.empty() && key < prev_key) {
          out_->push_back(
              {file.rel, t[a].line, kRuleLock,
               "lock keys acquired out of canonical order ('" + key +
                   "' after '" + prev_key +
                   "'); acquire table locks in sorted key order to keep the "
                   "growing phase deadlock-free"});
        }
        prev_key = key;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// clouddb-include-hygiene
// ---------------------------------------------------------------------------

namespace {

std::string DirOf(const std::string& rel) {
  size_t slash = rel.find_last_of('/');
  return slash == std::string::npos ? "" : rel.substr(0, slash + 1);
}

std::string StemOf(const std::string& rel) {
  size_t slash = rel.find_last_of('/');
  std::string base = slash == std::string::npos ? rel : rel.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

/// Resolves a quoted include path to a scanned file rel, or "".
std::string ResolveInclude(const std::map<std::string, AnalyzedFile>& by_rel,
                           const std::string& includer_rel,
                           const std::string& path) {
  std::string cand = "src/" + path;
  if (by_rel.count(cand)) return cand;
  cand = DirOf(includer_rel) + path;
  if (by_rel.count(cand)) return cand;
  return "";
}

/// The include spelling a file should use for in-tree header `target`:
/// src/-relative for src/ headers (the tree compiles with -Isrc), same-dir
/// filename otherwise, or "" when no canonical spelling exists.
std::string IncludeSpelling(const std::string& includer_rel,
                            const std::string& target) {
  if (StartsWith(target, "src/")) return target.substr(4);
  if (DirOf(target) == DirOf(includer_rel)) {
    return target.substr(DirOf(target).size());
  }
  return "";
}

}  // namespace

void CheckIncludeHygiene(const std::vector<AnalyzedFile>& files,
                         std::vector<Diagnostic>* out_) {
  std::map<std::string, AnalyzedFile> by_rel;
  for (const AnalyzedFile& af : files) by_rel[af.file->rel] = af;

  // Unique strong owner per symbol, headers only.
  std::map<std::string, std::string> owner;     // symbol -> header rel
  std::set<std::string> ambiguous;              // defined in 2+ headers
  for (const AnalyzedFile& af : files) {
    if (!af.file->is_header) continue;
    for (const std::string& sym : af.index->strong_exports) {
      auto [it, inserted] = owner.emplace(sym, af.file->rel);
      if (!inserted && it->second != af.file->rel) ambiguous.insert(sym);
    }
  }
  for (const std::string& sym : ambiguous) owner.erase(sym);

  for (const AnalyzedFile& af : files) {
    const SourceFile& file = *af.file;
    // Direct includes (resolved), the own header, and include lines.
    std::map<std::string, int> direct;  // resolved rel -> include line
    std::string own_header;
    for (const Include& inc : file.includes) {
      std::string target = ResolveInclude(by_rel, file.rel, inc.path);
      if (target.empty()) continue;
      direct.emplace(target, inc.line);
      if (!file.is_header && StemOf(target) == StemOf(file.rel)) {
        own_header = target;
      }
    }

    // Transitive closure of in-tree includes.
    std::set<std::string> reachable;
    std::vector<std::string> frontier;
    for (const auto& [rel, line] : direct) frontier.push_back(rel);
    while (!frontier.empty()) {
      std::string cur = frontier.back();
      frontier.pop_back();
      if (!reachable.insert(cur).second) continue;
      const AnalyzedFile& caf = by_rel.at(cur);
      for (const Include& inc : caf.file->includes) {
        std::string target = ResolveInclude(by_rel, cur, inc.path);
        if (!target.empty() && !reachable.count(target)) {
          frontier.push_back(target);
        }
      }
    }

    // Identifier usage set (tokens are comment/string-stripped already).
    std::set<std::string> used;
    std::map<std::string, int> first_use;
    for (size_t i = 0; i < file.tokens.size(); ++i) {
      const Token& tok = file.tokens[i];
      if (!tok.ident || IsKeyword(tok.text)) continue;
      // A forward declaration / friend declaration is not a use that needs
      // the definition's header.
      if (i > 0 && (file.tokens[i - 1].text == "class" ||
                    file.tokens[i - 1].text == "struct" ||
                    file.tokens[i - 1].text == "enum" ||
                    file.tokens[i - 1].text == "friend")) {
        continue;
      }
      used.insert(tok.text);
      first_use.emplace(tok.text, tok.line);
    }

    // (1) Unused direct includes.
    for (const auto& [target, line] : direct) {
      if (target == own_header || target == file.rel) continue;
      const AnalyzedFile& taf = by_rel.at(target);
      if (!taf.file->is_header) continue;
      if (taf.index->exports_operators) continue;  // un-nameable API
      bool any_export = !taf.index->strong_exports.empty() ||
                        !taf.index->weak_exports.empty();
      if (!any_export) continue;  // umbrella/config header: cannot judge
      bool used_any = false;
      for (const std::string& sym : taf.index->strong_exports) {
        if (used.count(sym)) {
          used_any = true;
          break;
        }
      }
      if (!used_any) {
        for (const std::string& sym : taf.index->weak_exports) {
          if (used.count(sym)) {
            used_any = true;
            break;
          }
        }
      }
      if (!used_any) {
        std::string spelling = IncludeSpelling(file.rel, target);
        Diagnostic d{file.rel, line, kRuleHygiene,
                     "include \"" + (spelling.empty() ? target : spelling) +
                         "\" is unused: no symbol it declares is referenced "
                         "here; remove it (clouddb_lint --fix)"};
        d.fix_kind = FixKind::kRemoveLine;
        out_->push_back(std::move(d));
      }
    }

    // (2) Used but only transitively included.
    std::map<std::string, std::pair<std::string, int>> missing;  // header -> (sym, line)
    for (const std::string& sym : used) {
      auto it = owner.find(sym);
      if (it == owner.end()) continue;
      const std::string& header = it->second;
      if (header == file.rel || header == own_header) continue;
      if (direct.count(header)) continue;
      if (!reachable.count(header)) continue;  // different thing entirely
      // The file redeclares the name itself (helper shadowing an in-tree
      // name): its own declaration is what's used.
      if (af.index->strong_exports.count(sym) ||
          af.index->weak_exports.count(sym)) {
        continue;
      }
      if (IncludeSpelling(file.rel, header).empty()) continue;
      auto [mit, inserted] =
          missing.emplace(header, std::make_pair(sym, first_use.at(sym)));
      if (!inserted && first_use.at(sym) < mit->second.second) {
        mit->second = {sym, first_use.at(sym)};
      }
    }
    for (const auto& [header, sym_line] : missing) {
      std::string spelling = IncludeSpelling(file.rel, header);
      Diagnostic d{file.rel, sym_line.second, kRuleHygiene,
                   "'" + sym_line.first + "' is declared in \"" + spelling +
                       "\" which is only transitively included; include it "
                       "directly (clouddb_lint --fix)"};
      d.fix_kind = FixKind::kAddInclude;
      d.fix_include = spelling;
      out_->push_back(std::move(d));
    }
  }
}

}  // namespace clouddb::lint
