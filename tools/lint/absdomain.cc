#include "absdomain.h"

#include <algorithm>

namespace clouddb::lint {
namespace {

/// Saturating add treating kMin/kMax as infinities.
int64_t SatAdd(int64_t a, int64_t b) {
  if (a == Interval::kMin || b == Interval::kMin) return Interval::kMin;
  if (a == Interval::kMax || b == Interval::kMax) return Interval::kMax;
  int64_t r;
  if (__builtin_add_overflow(a, b, &r))
    return b > 0 ? Interval::kMax : Interval::kMin;
  return r;
}

int64_t SatMul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  bool neg = (a < 0) != (b < 0);
  if (a == Interval::kMin || a == Interval::kMax || b == Interval::kMin ||
      b == Interval::kMax)
    return neg ? Interval::kMin : Interval::kMax;
  int64_t r;
  if (__builtin_mul_overflow(a, b, &r))
    return neg ? Interval::kMin : Interval::kMax;
  return r;
}

int64_t SatNeg(int64_t a) {
  if (a == Interval::kMin) return Interval::kMax;
  if (a == Interval::kMax) return Interval::kMin;
  return -a;
}

}  // namespace

Interval Interval::Join(const Interval& a, const Interval& b) {
  if (a.bottom) return b;
  if (b.bottom) return a;
  return Range(std::min(a.lo, b.lo), std::max(a.hi, b.hi));
}

Interval Interval::Meet(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) return Bottom();
  return Range(std::max(a.lo, b.lo), std::min(a.hi, b.hi));
}

Interval Interval::Widen(const Interval& prev, const Interval& next) {
  if (prev.bottom) return next;
  if (next.bottom) return prev;
  Interval r;
  r.lo = next.lo < prev.lo ? kMin : prev.lo;
  r.hi = next.hi > prev.hi ? kMax : prev.hi;
  // Widening must cover the new state: keep any bound next already has.
  r.lo = std::min(r.lo, next.lo);
  r.hi = std::max(r.hi, next.hi);
  return r;
}

Interval Interval::Add(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) return Bottom();
  return Range(SatAdd(a.lo, b.lo), SatAdd(a.hi, b.hi));
}

Interval Interval::Sub(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) return Bottom();
  return Range(SatAdd(a.lo, SatNeg(b.hi)), SatAdd(a.hi, SatNeg(b.lo)));
}

Interval Interval::Mul(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) return Bottom();
  int64_t c[4] = {SatMul(a.lo, b.lo), SatMul(a.lo, b.hi), SatMul(a.hi, b.lo),
                  SatMul(a.hi, b.hi)};
  return Range(*std::min_element(c, c + 4), *std::max_element(c, c + 4));
}

Interval Interval::Div(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) return Bottom();
  // Only the common lint cases need precision: positive constant-ish
  // divisors. Anything whose divisor range includes 0 or negatives degrades.
  if (b.lo >= 1) {
    auto dv = [](int64_t x, int64_t d) {
      if (x == kMin || x == kMax) return x;
      if (d == kMax) return int64_t{0};
      return x / d;
    };
    int64_t lo = a.lo >= 0 ? dv(a.lo, b.hi) : dv(a.lo, b.lo);
    int64_t hi = a.hi >= 0 ? dv(a.hi, b.lo) : dv(a.hi, b.hi);
    return Range(lo, hi);
  }
  return Top();
}

Interval Interval::Mod(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) return Bottom();
  if (b.lo >= 1 && b.hi != kMax) {
    if (a.lo >= 0) return Range(0, std::min(a.hi, b.hi - 1));
    return Range(SatNeg(b.hi - 1), b.hi - 1);
  }
  return Top();
}

Interval Interval::Shl(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) return Bottom();
  if (a.lo >= 0 && b.lo >= 0 && b.hi <= 62) {
    return Range(SatMul(a.lo, int64_t{1} << b.lo),
                 SatMul(a.hi, int64_t{1} << b.hi));
  }
  return Top();
}

Interval Interval::Shr(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) return Bottom();
  if (a.lo >= 0 && b.lo >= 0 && b.hi <= 62) {
    int64_t lo = a.lo == kMax ? kMax : a.lo >> b.hi;
    int64_t hi = a.hi == kMax ? kMax : a.hi >> b.lo;
    return Range(lo, hi);
  }
  return Top();
}

Interval Interval::BitAnd(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) return Bottom();
  // x & mask with a nonnegative constant-ish mask lands in [0, mask].
  if (b.lo >= 0 && b.hi != kMax) return Range(0, b.hi);
  if (a.lo >= 0 && a.hi != kMax) return Range(0, a.hi);
  return Top();
}

Interval Interval::Neg(const Interval& a) {
  if (a.bottom) return Bottom();
  return Range(SatNeg(a.hi), SatNeg(a.lo));
}

Interval Interval::Min(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) return Bottom();
  return Range(std::min(a.lo, b.lo), std::min(a.hi, b.hi));
}

Interval Interval::Max(const Interval& a, const Interval& b) {
  if (a.bottom || b.bottom) return Bottom();
  return Range(std::max(a.lo, b.lo), std::max(a.hi, b.hi));
}

Nullness JoinNullness(Nullness a, Nullness b) {
  if (a == Nullness::kBottom) return b;
  if (b == Nullness::kBottom) return a;
  if (a == b) return a;
  return Nullness::kTop;
}

AbsValue AbsValue::Join(const AbsValue& a, const AbsValue& b) {
  AbsValue r;
  r.range = Interval::Join(a.range, b.range);
  r.nullness = JoinNullness(a.nullness, b.nullness);
  r.nonzero = a.nonzero && b.nonzero;
  r.is_float = a.is_float || b.is_float;
  for (const auto& [sym, c] : a.upper_lt) {
    auto it = b.upper_lt.find(sym);
    if (it != b.upper_lt.end()) r.upper_lt[sym] = std::max(c, it->second);
  }
  for (const auto& [sym, c] : a.lower_ge) {
    auto it = b.lower_ge.find(sym);
    if (it != b.lower_ge.end()) r.lower_ge[sym] = std::min(c, it->second);
  }
  return r;
}

AbsValue AbsValue::Widen(const AbsValue& prev, const AbsValue& next) {
  AbsValue r;
  r.range = Interval::Widen(prev.range, next.range);
  r.nullness = JoinNullness(prev.nullness, next.nullness);
  r.nonzero = prev.nonzero && next.nonzero;
  r.is_float = prev.is_float || next.is_float;
  // Keep a relational fact only when stable: present on both sides and not
  // weakening. A growing constant would ascend forever; drop it instead.
  for (const auto& [sym, c] : prev.upper_lt) {
    auto it = next.upper_lt.find(sym);
    if (it != next.upper_lt.end() && it->second <= c) r.upper_lt[sym] = c;
  }
  for (const auto& [sym, c] : prev.lower_ge) {
    auto it = next.lower_ge.find(sym);
    if (it != next.lower_ge.end() && it->second >= c) r.lower_ge[sym] = c;
  }
  return r;
}

Interval TypeRange(const std::string& t) {
  if (t == "bool") return Interval::Range(0, 1);
  if (t == "int8_t") return Interval::Range(-128, 127);
  if (t == "uint8_t") return Interval::Range(0, 255);
  if (t == "int16_t" || t == "short") return Interval::Range(-32768, 32767);
  if (t == "uint16_t") return Interval::Range(0, 65535);
  if (t == "int32_t" || t == "int")
    return Interval::Range(INT32_MIN, INT32_MAX);
  if (t == "uint32_t" || t == "unsigned") return Interval::Range(0, UINT32_MAX);
  if (t == "int64_t" || t == "long" || t == "ptrdiff_t" || t == "ssize_t")
    return Interval::Top();
  if (t == "uint64_t" || t == "size_t")
    return Interval::Range(0, Interval::kMax);  // 2^63..2^64-1 folded into +inf
  return Interval::Top();
}

bool IsNarrowIntType(const std::string& t) {
  return t == "int8_t" || t == "uint8_t" || t == "int16_t" || t == "short" ||
         t == "uint16_t" || t == "int32_t" || t == "int" || t == "uint32_t" ||
         t == "unsigned";
}

}  // namespace clouddb::lint
