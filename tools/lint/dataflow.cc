#include "dataflow.h"

#include <algorithm>
#include <deque>

#include "cfg.h"

namespace clouddb::lint {
namespace {

// a |= b, returning whether a changed. Empty vectors stand for all-false.
bool UnionInto(std::vector<bool>& a, const std::vector<bool>& b,
               size_t num_facts) {
  if (b.empty()) return false;
  if (a.empty()) a.assign(num_facts, false);
  bool changed = false;
  for (size_t i = 0; i < num_facts; ++i) {
    if (b[i] && !a[i]) {
      a[i] = true;
      changed = true;
    }
  }
  return changed;
}

// out = gen | (in & ~kill), returning whether out changed.
bool Transfer(const std::vector<bool>& in, const std::vector<bool>& gen,
              const std::vector<bool>& kill, std::vector<bool>& out,
              size_t num_facts) {
  bool changed = false;
  for (size_t i = 0; i < num_facts; ++i) {
    bool g = i < gen.size() && gen[i];
    bool k = i < kill.size() && kill[i];
    bool v = g || ((!in.empty() && in[i]) && !k);
    if (i >= out.size()) out.resize(num_facts, false);
    if (out[i] != v) {
      // Union meet + gen/kill transfer is monotone, so bits only ever flip
      // from false to true once seeded; assigning is still safe either way.
      out[i] = v;
      changed = true;
    }
  }
  return changed;
}

DataflowResult Solve(const Cfg& cfg, size_t num_facts,
                     const std::vector<std::vector<bool>>& gen,
                     const std::vector<std::vector<bool>>& kill,
                     const std::vector<bool>& boundary, bool forward) {
  const size_t n = cfg.nodes.size();
  DataflowResult r;
  r.in.assign(n, {});
  r.out.assign(n, {});

  static const std::vector<bool> kEmpty;
  auto gen_of = [&](size_t i) -> const std::vector<bool>& {
    return i < gen.size() ? gen[i] : kEmpty;
  };
  auto kill_of = [&](size_t i) -> const std::vector<bool>& {
    return i < kill.size() ? kill[i] : kEmpty;
  };

  const int boundary_node = forward ? Cfg::kEntry : Cfg::kExit;
  if (!boundary.empty()) {
    auto& b = forward ? r.in[boundary_node] : r.out[boundary_node];
    b = boundary;
    b.resize(num_facts, false);
  }

  // Seed the worklist in reverse post-order (post-order for backward), so a
  // pass over an acyclic region converges in one sweep; loops iterate.
  std::vector<int> order = cfg.ReversePostOrder();
  if (!forward) std::reverse(order.begin(), order.end());
  std::deque<int> work(order.begin(), order.end());
  std::vector<bool> queued(n, true);

  while (!work.empty()) {
    int node = work.front();
    work.pop_front();
    queued[node] = false;

    auto& flow_in = forward ? r.in[node] : r.out[node];
    const auto& edges_in =
        forward ? cfg.nodes[node].preds : cfg.nodes[node].succs;
    for (int p : edges_in) {
      UnionInto(flow_in, forward ? r.out[p] : r.in[p], num_facts);
    }

    auto& flow_out = forward ? r.out[node] : r.in[node];
    if (Transfer(flow_in, gen_of(node), kill_of(node), flow_out, num_facts)) {
      const auto& edges_out =
          forward ? cfg.nodes[node].succs : cfg.nodes[node].preds;
      for (int s : edges_out) {
        if (!queued[s]) {
          queued[s] = true;
          work.push_back(s);
        }
      }
    }
  }
  return r;
}

}  // namespace

DataflowResult SolveForward(const Cfg& cfg, size_t num_facts,
                            const std::vector<std::vector<bool>>& gen,
                            const std::vector<std::vector<bool>>& kill,
                            const std::vector<bool>& boundary) {
  return Solve(cfg, num_facts, gen, kill, boundary, /*forward=*/true);
}

DataflowResult SolveBackward(const Cfg& cfg, size_t num_facts,
                             const std::vector<std::vector<bool>>& gen,
                             const std::vector<std::vector<bool>>& kill,
                             const std::vector<bool>& boundary) {
  return Solve(cfg, num_facts, gen, kill, boundary, /*forward=*/false);
}

size_t FactTable::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  size_t id = names_.size();
  ids_.emplace(name, id);
  names_.push_back(name);
  return id;
}

size_t FactTable::Find(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? npos : it->second;
}

}  // namespace clouddb::lint
