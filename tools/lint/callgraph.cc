#include "callgraph.h"

#include <string_view>

#include "frontend.h"
#include "rules_flow.h"

namespace clouddb::lint {
namespace {

/// Counts top-level commas in tokens (open, close) exclusive, ignoring commas
/// nested in (), {}, [], or <...> (angle depth is tracked textually — good
/// enough for argument lists; shifts inside arguments are vanishingly rare
/// in this tree).
size_t ArityOfRange(const std::vector<Token>& t, size_t open, size_t close) {
  if (open + 1 >= close) return 0;
  size_t commas = 0;
  int depth = 0;
  for (size_t i = open + 1; i < close; ++i) {
    const std::string& s = t[i].text;
    if (s == "(" || s == "{" || s == "[" || s == "<") ++depth;
    else if (s == ")" || s == "}" || s == "]" || s == ">") --depth;
    else if (s == "," && depth == 0) ++commas;
  }
  return commas + 1;
}

bool CallLikeIdent(const std::vector<Token>& t, size_t i) {
  if (!t[i].ident || IsKeyword(t[i].text)) return false;
  std::string_view s = t[i].text;
  // Control keywords the tokenizer treats as idents plus cast-like noise.
  if (s == "if" || s == "for" || s == "while" || s == "switch" ||
      s == "catch" || s == "return" || s == "sizeof" || s == "alignof" ||
      s == "decltype" || s == "assert" || s == "defined") {
    return false;
  }
  return true;
}

}  // namespace

size_t CountParams(const SourceFile& file, const FileIndex& idx,
                   const FunctionDef& fn) {
  (void)idx;
  const std::vector<Token>& t = file.tokens;
  if (fn.params_begin >= fn.params_end) return 0;
  if (fn.params_end - fn.params_begin == 1 && t[fn.params_begin].text == "void")
    return 0;
  return ArityOfRange(t, fn.params_begin - 1, fn.params_end);
}

CallGraph BuildCallGraph(const std::vector<AnalyzedFile>& files,
                         bool (*file_filter)(const std::string& rel)) {
  CallGraph cg;
  // Pass 1: definition nodes.
  for (size_t fi = 0; fi < files.size(); ++fi) {
    const AnalyzedFile& af = files[fi];
    if (file_filter != nullptr && !file_filter(af.file->rel)) continue;
    for (const FunctionDef& fn : af.index->functions) {
      CgFunction node;
      node.file = static_cast<int>(fi);
      node.fn = &fn;
      node.cls = fn.cls;
      node.name = fn.name;
      node.arity = CountParams(*af.file, *af.index, fn);
      int id = static_cast<int>(cg.functions.size());
      cg.by_name[fn.name].push_back(id);
      cg.functions.push_back(std::move(node));
    }
  }
  // Pass 2: call sites + resolution.
  for (CgFunction& node : cg.functions) {
    const AnalyzedFile& af = files[static_cast<size_t>(node.file)];
    const std::vector<Token>& t = af.file->tokens;
    const std::vector<int>& match = af.index->match;
    for (size_t i = node.fn->body_begin + 1; i + 1 < node.fn->body_end; ++i) {
      if (!CallLikeIdent(t, i) || t[i + 1].text != "(") continue;
      if (match[i + 1] < 0) continue;
      auto hit = cg.by_name.find(t[i].text);
      if (hit == cg.by_name.end()) continue;  // library / unknown callee
      CallSite site;
      site.token = i;
      site.line = t[i].line;
      site.name = t[i].text;
      site.arity = ArityOfRange(t, i + 1, static_cast<size_t>(match[i + 1]));
      for (int cand : hit->second) {
        if (cg.functions[cand].arity == site.arity) {
          site.targets.push_back(cand);
        }
      }
      if (site.targets.empty()) {
        // Default arguments / overload arity mismatch: keep every
        // same-named definition so the edge set stays an over-approximation.
        site.targets = hit->second;
      }
      node.calls.push_back(std::move(site));
    }
  }
  return cg;
}

}  // namespace clouddb::lint
