#include "rules_absint.h"
#include "absdomain.h"
#include "absint.h"
#include "callgraph.h"
#include "frontend.h"
#include "linter.h"
#include "rules_flow.h"
#include "rules_interproc.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace clouddb::lint {
namespace {

constexpr char kRuleBounds[] = "clouddb-bounds";
constexpr char kRuleDivZero[] = "clouddb-div-zero";
constexpr char kRuleNarrowing[] = "clouddb-narrowing";
constexpr char kRuleCodecSymmetry[] = "clouddb-codec-symmetry";

bool StartsWith(const std::string& s, const std::string& p) {
  return s.rfind(p, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& p) {
  return s.size() >= p.size() && s.compare(s.size() - p.size(), p.size(), p) == 0;
}

std::string FmtBound(int64_t v) {
  if (v == Interval::kMin) return "-inf";
  if (v == Interval::kMax) return "+inf";
  return std::to_string(v);
}

std::string FmtInterval(const Interval& iv) {
  if (iv.bottom) return "[unreachable]";
  return "[" + FmtBound(iv.lo) + ", " + FmtBound(iv.hi) + "]";
}

/// Matching-bracket lookup through the FileIndex, falling back to a linear
/// scan when the index has no entry.
size_t MatchTok(const FileIndex& idx, const std::vector<Token>& t, size_t i) {
  if (i < idx.match.size() && idx.match[i] > 0) {
    return static_cast<size_t>(idx.match[i]);
  }
  const std::string& o = t[i].text;
  std::string c = o == "(" ? ")" : o == "[" ? "]" : o == "{" ? "}" : "";
  if (c.empty()) return t.size();
  int depth = 0;
  for (size_t j = i; j < t.size(); ++j) {
    if (t[j].text == o) ++depth;
    if (t[j].text == c && --depth == 0) return j;
  }
  return t.size();
}

/// Reads the `a.b->c` path ending at token `last` (inclusive). Returns the
/// joined spelling, or "" when `last` is not an identifier or the chain runs
/// through anything but ident-sep-ident links (e.g. `(*rows[i])`).
std::string PathEndingAt(const std::vector<Token>& t, size_t begin,
                         size_t last) {
  if (!t[last].ident) return "";
  std::string path = t[last].text;
  size_t j = last;
  while (j >= begin + 2 && (t[j - 1].text == "." || t[j - 1].text == "->") &&
         t[j - 2].ident) {
    path = t[j - 2].text + t[j - 1].text + path;
    j -= 2;
  }
  return path;
}

/// End (exclusive) of the multiplicative/unary operand starting at `b`:
/// optional prefix operators, then a primary with member/call/subscript
/// suffixes. Used to slice out a divisor or a `.data() + i` offset.
size_t OperandEnd(const FileIndex& idx, const std::vector<Token>& t, size_t b,
                  size_t limit) {
  size_t j = b;
  while (j < limit && (t[j].text == "-" || t[j].text == "+" ||
                       t[j].text == "!" || t[j].text == "~" ||
                       t[j].text == "*" || t[j].text == "&")) {
    ++j;
  }
  if (j >= limit) return limit;
  if (t[j].text == "(") {
    size_t c = MatchTok(idx, t, j);
    return std::min(c + 1, limit);
  }
  if (t[j].text == "static_cast" || t[j].text == "reinterpret_cast" ||
      t[j].text == "const_cast") {
    ++j;
    if (j < limit && t[j].text == "<") {
      int depth = 0;
      for (; j < limit; ++j) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">" && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    if (j < limit && t[j].text == "(") {
      size_t c = MatchTok(idx, t, j);
      return std::min(c + 1, limit);
    }
    return j;
  }
  if (!t[j].ident) return std::min(j + 1, limit);
  ++j;
  for (;;) {
    if (j + 1 < limit && (t[j].text == "." || t[j].text == "->" ||
                          t[j].text == "::") &&
        t[j + 1].ident) {
      j += 2;
      continue;
    }
    if (j < limit && (t[j].text == "(" || t[j].text == "[")) {
      size_t c = MatchTok(idx, t, j);
      if (c >= limit) return limit;
      j = c + 1;
      continue;
    }
    break;
  }
  return std::min(j, limit);
}

struct FnScope {
  int f;
  const CgFunction* cf;
  const SourceFile* file;
  const FileIndex* idx;
};

/// Enumerates solved functions whose file matches `want`, in call-graph
/// order (deterministic).
std::vector<FnScope> ScopedFns(const AbsInterpreter& ai,
                               bool (*want)(const std::string& rel)) {
  std::vector<FnScope> out;
  const InterprocContext& ctx = ai.ctx();
  for (int f = 0; f < static_cast<int>(ctx.cg.functions.size()); ++f) {
    const CgFunction& cf = ctx.cg.functions[f];
    const AnalyzedFile& af = (*ctx.files)[cf.file];
    if (!want(af.file->rel)) continue;
    if (!ai.Result(f).solved) continue;
    out.push_back(FnScope{f, &cf, af.file, af.index});
  }
  return out;
}

// ---------------------------------------------------------------------------
// clouddb-bounds
// ---------------------------------------------------------------------------

bool BoundsScope(const std::string& rel) {
  return StartsWith(rel, "src/db/vec_") || EndsWith(rel, "bplus_tree.h");
}

void BoundsCheckSite(const AbsInterpreter& ai, const FnScope& fs,
                     const AbsEnv& env, const std::string& base, size_t ib,
                     size_t ie, int line, int slack, const char* what,
                     std::vector<Diagnostic>* out) {
  std::string limit_sym;
  Interval limit = Interval::Top();
  auto si = env.sizes.find(base);
  if (si != env.sizes.end()) {
    limit_sym = "size:" + base;
    limit = si->second;
  } else {
    auto ei = env.extents.find(base);
    if (ei == env.extents.end() || !ei->second.known) return;  // unmodeled
    limit_sym = ei->second.sym;
    limit = ei->second.count;
  }
  if (ai.ProveIndex(fs.f, env, ib, ie, limit_sym, limit, slack)) return;
  EvalOut iv = ai.Eval(fs.f, env, ib, ie);
  Diagnostic d(fs.file->rel, line, kRuleBounds,
               std::string(what) + " into '" + base + "' not provably within " +
                   (limit_sym.empty() ? std::string("extent ")
                                      : "'" + limit_sym + "' = ") +
                   FmtInterval(limit) + "; index range " +
                   FmtInterval(iv.val.range));
  out->push_back(std::move(d));
}

void RunBounds(const AbsInterpreter& ai, std::vector<Diagnostic>* out) {
  for (const FnScope& fs : ScopedFns(ai, BoundsScope)) {
    const std::vector<Token>& t = fs.file->tokens;
    const FunctionDef& fn = *fs.cf->fn;
    size_t b = fn.body_begin;
    size_t e = std::min(fn.body_end, t.size());
    for (size_t i = b; i < e; ++i) {
      // `base[expr]` subscripts.
      if (t[i].text == "[" && i > b && t[i - 1].ident) {
        // Array *declarations* spell `T name[K]` — the token before the
        // base is a type identifier, not punctuation. Skip them.
        if (i >= b + 2 && t[i - 2].ident && !IsKeyword(t[i - 2].text)) {
          continue;
        }
        std::string base = PathEndingAt(t, b, i - 1);
        if (base.empty()) continue;
        size_t close = MatchTok(*fs.idx, t, i);
        if (close >= e) continue;
        AbsEnv env = ai.RefinedAt(fs.f, i);
        if (!env.reachable) continue;
        BoundsCheckSite(ai, fs, env, base, i + 1, close, t[i].line, 0,
                        "index", out);
      }
      // `base.data() + expr` pointer arithmetic (one-past-end allowed).
      if (t[i].text == "data" && i > b + 1 &&
          (t[i - 1].text == "." || t[i - 1].text == "->") && i + 3 < e &&
          t[i + 1].text == "(" && t[i + 2].text == ")" &&
          t[i + 3].text == "+") {
        std::string base = PathEndingAt(t, b, i - 2);
        if (base.empty()) continue;
        size_t ob = i + 4;
        size_t oe = OperandEnd(*fs.idx, t, ob, e);
        if (ob >= oe) continue;
        AbsEnv env = ai.RefinedAt(fs.f, i);
        if (!env.reachable) continue;
        BoundsCheckSite(ai, fs, env, base, ob, oe, t[i].line, 1,
                        "offset from data()", out);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// clouddb-div-zero
// ---------------------------------------------------------------------------

bool DivZeroScope(const std::string& rel) {
  return StartsWith(rel, "src/db/") || StartsWith(rel, "src/repl/") ||
         StartsWith(rel, "src/metrics/");
}

void RunDivZero(const AbsInterpreter& ai, std::vector<Diagnostic>* out) {
  for (const FnScope& fs : ScopedFns(ai, DivZeroScope)) {
    const std::vector<Token>& t = fs.file->tokens;
    const FunctionDef& fn = *fs.cf->fn;
    size_t b = fn.body_begin;
    size_t e = std::min(fn.body_end, t.size());
    for (size_t i = b + 1; i + 1 < e; ++i) {
      if (t[i].text != "/" && t[i].text != "%") continue;
      if (fs.file->directive_lines.count(t[i].line)) continue;
      // Binary use only: the left neighbour must terminate an operand.
      const std::string& prev = t[i - 1].text;
      if (!(t[i - 1].ident || prev == ")" || prev == "]")) continue;
      if (prev == "operator") continue;
      // Compound assignment `/=` is still a division; plain `/` followed by
      // `=` is the operator spelling `/=` (tokenizer splits it).
      size_t ob = t[i + 1].text == "=" ? i + 2 : i + 1;
      size_t oe = OperandEnd(*fs.idx, t, ob, e);
      if (ob >= oe) continue;
      AbsEnv env = ai.RefinedAt(fs.f, i);
      if (!env.reachable) continue;
      EvalOut dv = ai.Eval(fs.f, env, ob, oe);
      if (dv.val.is_float) continue;  // IEEE semantics, not UB
      if (dv.val.nonzero || !dv.val.range.Contains(0)) continue;
      // Float *numerator* also lifts the operation out of UB. Walk back
      // over the left operand: bracket groups, then the leading path (or a
      // cast spelling).
      size_t k = i;
      if (prev == ")" || prev == "]") {
        int depth = 0;
        for (--k; k > b; --k) {
          const std::string& s = t[k].text;
          if (s == ")" || s == "]") ++depth;
          else if (s == "(" || s == "[") {
            if (--depth == 0) break;
          }
        }
        // `>` before the open paren: a cast's template-argument close.
        while (k > b && t[k - 1].text == ">") {
          int ad = 0;
          for (--k; k > b; --k) {
            if (t[k].text == ">") ++ad;
            else if (t[k].text == "<" && --ad == 0) break;
          }
        }
      }
      while (k > b + 1 && t[k - 1].ident) {
        --k;
        if (k > b + 1 && (t[k - 1].text == "." || t[k - 1].text == "->" ||
                          t[k - 1].text == "::")) {
          --k;
        } else {
          break;
        }
      }
      if (k < i) {
        EvalOut nv = ai.Eval(fs.f, env, k, i);
        if (nv.val.is_float) continue;
      }
      out->push_back(Diagnostic(
          fs.file->rel, t[i].line, kRuleDivZero,
          std::string("divisor of '") + t[i].text +
              "' not provably nonzero; range " + FmtInterval(dv.val.range)));
    }
  }
}

// ---------------------------------------------------------------------------
// clouddb-narrowing
// ---------------------------------------------------------------------------

bool NarrowingScope(const std::string& rel) {
  return StartsWith(rel, "src/db/binlog") || StartsWith(rel, "src/db/vec_") ||
         StartsWith(rel, "src/repl/");
}

/// Resolves one `using` alias step, then answers whether `ty` is a sized
/// integer type strictly narrower than 64 bits.
bool NarrowTarget(const AbsInterpreter& ai, const std::string& ty,
                  std::string* resolved) {
  std::string r = ty;
  auto it = ai.aliases().find(r);
  if (it != ai.aliases().end()) r = it->second;
  *resolved = r;
  return IsNarrowIntType(r);
}

void NarrowingCheck(const AbsInterpreter& ai, const FnScope& fs,
                    const std::string& target, size_t ob, size_t oe,
                    int line, const char* what,
                    std::vector<Diagnostic>* out) {
  AbsEnv env = ai.RefinedAt(fs.f, ob);
  if (!env.reachable) return;
  EvalOut v = ai.Eval(fs.f, env, ob, oe);
  if (v.val.is_float) return;  // float->int is a different rule's business
  const Interval& r = v.val.range;
  if (r.bottom) return;
  // A completely unknown operand (both bounds at infinity, e.g. an enum
  // member or an unmodeled field) is skipped: the rule reports *broken*
  // proofs on values the solver actually reasons about — sizes, counts,
  // loop indexes — not every opaque expression.
  if (r.lo == Interval::kMin && r.hi == Interval::kMax) return;
  Interval tr = TypeRange(target);
  if (tr.IsTop()) return;
  if (r.Within(tr.lo, tr.hi)) return;
  out->push_back(Diagnostic(
      fs.file->rel, line, kRuleNarrowing,
      std::string(what) + " to " + target + " " + FmtInterval(tr) +
          " not provably lossless; operand range " + FmtInterval(r)));
}

void RunNarrowing(const AbsInterpreter& ai, std::vector<Diagnostic>* out) {
  for (const FnScope& fs : ScopedFns(ai, NarrowingScope)) {
    const std::vector<Token>& t = fs.file->tokens;
    const FunctionDef& fn = *fs.cf->fn;
    size_t b = fn.body_begin;
    size_t e = std::min(fn.body_end, t.size());
    for (size_t i = b; i < e; ++i) {
      // Explicit cast: static_cast<T>(expr).
      if (t[i].text == "static_cast" && i + 1 < e && t[i + 1].text == "<") {
        size_t j = i + 1;
        int depth = 0;
        std::string ty;
        bool uns = false;
        for (; j < e; ++j) {
          if (t[j].text == "<") ++depth;
          else if (t[j].text == ">") {
            if (--depth == 0) {
              ++j;
              break;
            }
          } else if (t[j].ident) {
            if (t[j].text == "unsigned") uns = true;
            else if (t[j].text != "const" && t[j].text != "std") ty = t[j].text;
          }
        }
        if (ty.empty() && uns) ty = "unsigned";
        std::string resolved;
        if (j >= e || t[j].text != "(" || !NarrowTarget(ai, ty, &resolved)) {
          continue;
        }
        size_t close = MatchTok(*fs.idx, t, j);
        if (close >= e) continue;
        NarrowingCheck(ai, fs, resolved, j + 1, close, t[i].line,
                       "explicit narrowing cast", out);
        continue;
      }
      // Implicit narrowing declaration: `T name = expr ;`.
      if (t[i].ident && i + 2 < e && t[i + 1].ident && t[i + 2].text == "=" &&
          (i == b || !t[i - 1].ident) && t[i].text != "return" &&
          (i + 3 >= e || t[i + 3].text != "=")) {
        std::string resolved;
        if (!NarrowTarget(ai, t[i].text, &resolved)) continue;
        size_t se = i + 3;
        int depth = 0;
        for (; se < e; ++se) {
          const std::string& s = t[se].text;
          if (s == "(" || s == "[" || s == "{") ++depth;
          if (s == ")" || s == "]" || s == "}") --depth;
          if (s == ";" && depth == 0) break;
        }
        if (se >= e || se == i + 3) continue;
        NarrowingCheck(ai, fs, resolved, i + 3, se, t[i].line,
                       "implicit narrowing initialization", out);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// clouddb-codec-symmetry
// ---------------------------------------------------------------------------

/// Canonical wire-op label for a call name, or "" when the call is not a
/// codec primitive. The suffix after the direction prefix is the label, so
/// AppendU32 and ReadU32 (or SerializeRow / DeserializeRow) unify.
std::string WireOp(const std::string& name) {
  static const char* kWrite[] = {"Append", "Serialize"};
  static const char* kRead[] = {"Read", "Deserialize"};
  for (const char* p : kWrite) {
    if (StartsWith(name, p) && name.size() > std::string(p).size()) {
      return name.substr(std::string(p).size());
    }
  }
  for (const char* p : kRead) {
    if (StartsWith(name, p) && name.size() > std::string(p).size()) {
      return name.substr(std::string(p).size());
    }
  }
  return "";
}

constexpr size_t kMaxPaths = 64;

struct PathSet {
  std::set<std::string> done;  // paths that returned normally
  std::set<std::string> open;  // paths flowing off the end of the block
  bool overflow = false;       // exceeded kMaxPaths: comparison abstains
};

std::string JoinOp(const std::string& path, const std::string& op) {
  return path.empty() ? op : path + " " + op;
}

void AppendToAll(PathSet* ps, const std::string& op) {
  std::set<std::string> next;
  for (const std::string& p : ps->open) next.insert(JoinOp(p, op));
  ps->open = std::move(next);
}

/// True when the return statement tokens [b, e) abort with an error status:
/// `return Status::<NotOk>(...)` or a call whose name ends in Error/Corrupt.
bool IsAbortReturn(const std::vector<Token>& t, size_t b, size_t e) {
  for (size_t i = b; i + 2 < e; ++i) {
    if (t[i].text == "Status" && t[i + 1].text == "::" && t[i + 2].ident &&
        t[i + 2].text != "Ok") {
      return true;
    }
  }
  return false;
}

class PathBuilder {
 public:
  PathBuilder(const FileIndex& idx, const std::vector<Token>& t)
      : idx_(idx), t_(t) {}

  /// Paths through the statement list [b, e) (exclusive of enclosing braces).
  PathSet Build(size_t b, size_t e) {
    PathSet ps;
    ps.open.insert("");
    size_t i = b;
    while (i < e && !ps.overflow) {
      const std::string& s = t_[i].text;
      if (s == "if") {
        i = HandleIf(i, e, &ps);
      } else if (s == "for" || s == "while") {
        i = HandleLoop(i, e, &ps);
      } else if (s == "do") {
        i = HandleDo(i, e, &ps);
      } else if (s == "switch") {
        i = HandleSwitch(i, e, &ps);
      } else if (s == "return") {
        i = HandleReturn(i, e, &ps);
      } else if (s == "{") {
        size_t c = MatchTok(idx_, t_, i);
        Cross(&ps, Build(i + 1, std::min(c, e)));
        i = std::min(c + 1, e);
      } else {
        // Plain statement: collect wire ops in source order to the `;`.
        size_t j = i;
        int depth = 0;
        for (; j < e; ++j) {
          const std::string& w = t_[j].text;
          if (w == "(" || w == "[" || w == "{") ++depth;
          if (w == ")" || w == "]" || w == "}") --depth;
          if (w == ";" && depth == 0) break;
          if (t_[j].ident && j + 1 < e && t_[j + 1].text == "(") {
            std::string op = WireOp(w);
            if (!op.empty()) AppendToAll(&ps, op);
          }
        }
        i = std::min(j + 1, e);
      }
      if (ps.open.size() + ps.done.size() > kMaxPaths) ps.overflow = true;
    }
    return ps;
  }

 private:
  /// Sequences `ps` with the sub-block result `sub`.
  static void Cross(PathSet* ps, const PathSet& sub) {
    if (sub.overflow) ps->overflow = true;
    std::set<std::string> open;
    for (const std::string& a : ps->open) {
      for (const std::string& b : sub.open) {
        open.insert(b.empty() ? a : JoinOp(a, b));
      }
      for (const std::string& b : sub.done) {
        ps->done.insert(b.empty() ? a : JoinOp(a, b));
      }
    }
    ps->open = std::move(open);
    if (ps->open.size() + ps->done.size() > kMaxPaths) ps->overflow = true;
  }

  /// [stmt_begin, stmt_end) of the statement or brace block starting at `i`.
  std::pair<size_t, size_t> BlockAt(size_t i, size_t e) const {
    if (i >= e) return {e, e};
    if (t_[i].text == "{") {
      size_t c = MatchTok(idx_, t_, i);
      return {i + 1, std::min(c, e)};
    }
    size_t j = i;
    int depth = 0;
    for (; j < e; ++j) {
      const std::string& w = t_[j].text;
      if (w == "(" || w == "[" || w == "{") ++depth;
      if (w == ")" || w == "]" || w == "}") --depth;
      if (w == ";" && depth == 0) break;
    }
    return {i, std::min(j + 1, e)};
  }

  size_t AfterBlock(size_t i, size_t e) const {
    if (i < e && t_[i].text == "{") {
      return std::min(MatchTok(idx_, t_, i) + 1, e);
    }
    auto [b2, e2] = BlockAt(i, e);
    return e2;
  }

  size_t HandleIf(size_t i, size_t e, PathSet* ps) {
    size_t open = i + 1;
    if (open >= e || t_[open].text != "(") return i + 1;
    size_t close = MatchTok(idx_, t_, open);
    size_t tb = close + 1;
    auto [then_b, then_e0] = BlockAt(tb, e);
    size_t then_after = AfterBlock(tb, e);
    PathSet thenp = Build(then_b, t_[tb].text == "{" ? then_e0 : then_after);
    PathSet elsep;
    elsep.open.insert("");
    size_t next = then_after;
    if (next < e && t_[next].text == "else") {
      size_t eb = next + 1;
      auto [else_b, else_e0] = BlockAt(eb, e);
      size_t else_after = AfterBlock(eb, e);
      elsep = Build(else_b, t_[eb].text == "{" ? else_e0 : else_after);
      next = else_after;
    } else {
      // No else: the empty path joins the then-paths.
    }
    PathSet merged;
    merged.open = thenp.open;
    merged.open.insert(elsep.open.begin(), elsep.open.end());
    merged.done = thenp.done;
    merged.done.insert(elsep.done.begin(), elsep.done.end());
    merged.overflow = thenp.overflow || elsep.overflow;
    Cross(ps, merged);
    return next;
  }

  size_t HandleLoop(size_t i, size_t e, PathSet* ps) {
    size_t open = i + 1;
    if (open >= e || t_[open].text != "(") return i + 1;
    size_t close = MatchTok(idx_, t_, open);
    size_t bb = close + 1;
    auto [body_b, body_e0] = BlockAt(bb, e);
    size_t after = AfterBlock(bb, e);
    PathSet body = Build(body_b, t_[bb].text == "{" ? body_e0 : after);
    StarInto(ps, body);
    return after;
  }

  size_t HandleDo(size_t i, size_t e, PathSet* ps) {
    size_t bb = i + 1;
    auto [body_b, body_e0] = BlockAt(bb, e);
    size_t after = AfterBlock(bb, e);
    PathSet body = Build(body_b, t_[bb].text == "{" ? body_e0 : after);
    StarInto(ps, body);
    // Skip the trailing `while (...);`.
    if (after < e && t_[after].text == "while" && after + 1 < e &&
        t_[after + 1].text == "(") {
      size_t c = MatchTok(idx_, t_, after + 1);
      after = std::min(c + 2, e);  // past ')' and ';'
    }
    return after;
  }

  size_t HandleSwitch(size_t i, size_t e, PathSet* ps) {
    size_t open = i + 1;
    if (open >= e || t_[open].text != "(") return i + 1;
    size_t close = MatchTok(idx_, t_, open);
    size_t bb = close + 1;
    if (bb >= e || t_[bb].text != "{") return std::min(close + 1, e);
    size_t be = MatchTok(idx_, t_, bb);
    // Split the body at top-level `case`/`default` labels; each segment is
    // one alternative (break/fallthrough distinctions are ignored: every
    // case is compared independently, which is what a tag dispatch means).
    std::vector<size_t> starts;
    int depth = 0;
    for (size_t j = bb + 1; j < be; ++j) {
      const std::string& w = t_[j].text;
      if (w == "(" || w == "[" || w == "{") ++depth;
      if (w == ")" || w == "]" || w == "}") --depth;
      if (depth == 0 && (w == "case" || w == "default")) starts.push_back(j);
    }
    PathSet merged;
    merged.open.insert("");
    if (!starts.empty()) {
      merged.open.clear();
      for (size_t k = 0; k < starts.size(); ++k) {
        size_t sb = starts[k];
        // Skip to past the label's ':'.
        while (sb < be && t_[sb].text != ":") ++sb;
        ++sb;
        size_t se = k + 1 < starts.size() ? starts[k + 1] : be;
        PathSet alt = Build(sb, se);
        merged.open.insert(alt.open.begin(), alt.open.end());
        merged.done.insert(alt.done.begin(), alt.done.end());
        merged.overflow = merged.overflow || alt.overflow;
      }
    }
    Cross(ps, merged);
    return std::min(be + 1, e);
  }

  size_t HandleReturn(size_t i, size_t e, PathSet* ps) {
    size_t j = i;
    int depth = 0;
    for (; j < e; ++j) {
      const std::string& w = t_[j].text;
      if (w == "(" || w == "[" || w == "{") ++depth;
      if (w == ")" || w == "]" || w == "}") --depth;
      if (w == ";" && depth == 0) break;
    }
    bool abort = IsAbortReturn(t_, i, j);
    if (!abort) {
      // Ops inside the returned expression still execute.
      for (size_t k = i; k < j; ++k) {
        if (t_[k].ident && k + 1 < j && t_[k + 1].text == "(") {
          std::string op = WireOp(t_[k].text);
          if (!op.empty()) AppendToAll(ps, op);
        }
      }
      ps->done.insert(ps->open.begin(), ps->open.end());
    }
    ps->open.clear();
    return std::min(j + 1, e);
  }

  /// Appends the starred canonical form of `body`'s paths to every open
  /// path, unless the body touches no wire ops at all (pure control loops
  /// contribute nothing to the wire).
  static void StarInto(PathSet* ps, const PathSet& body) {
    if (body.overflow) ps->overflow = true;
    std::set<std::string> all = body.open;
    all.insert(body.done.begin(), body.done.end());
    std::string joined;
    bool any = false;
    for (const std::string& p : all) {
      if (p.empty()) continue;
      any = true;
      if (!joined.empty()) joined += "|";
      joined += p;
    }
    if (!any) return;
    AppendToAll(ps, "(" + joined + ")*");
  }

  const FileIndex& idx_;
  const std::vector<Token>& t_;
};

std::string FmtPaths(const std::set<std::string>& paths) {
  std::string s;
  int n = 0;
  for (const std::string& p : paths) {
    if (n++) s += "; ";
    if (s.size() > 160) {
      s += "...";
      break;
    }
    s += p.empty() ? "<none>" : p;
  }
  return "{" + s + "}";
}

void RunCodecSymmetry(const AbsInterpreter& ai,
                      std::vector<Diagnostic>* out) {
  const InterprocContext& ctx = ai.ctx();
  // Collect writer/reader definitions by wire suffix. Ambiguous suffixes
  // (overloads) abstain.
  std::map<std::string, std::vector<int>> writers;
  std::map<std::string, std::vector<int>> readers;
  for (int f = 0; f < static_cast<int>(ctx.cg.functions.size()); ++f) {
    const CgFunction& cf = ctx.cg.functions[f];
    const std::string& rel = (*ctx.files)[cf.file].file->rel;
    if (!StartsWith(rel, "src/")) continue;
    if (cf.fn == nullptr || cf.fn->body_begin == 0) continue;
    std::string op = WireOp(cf.name);
    if (op.empty()) continue;
    bool is_writer =
        StartsWith(cf.name, "Append") || StartsWith(cf.name, "Serialize");
    (is_writer ? writers : readers)[op].push_back(f);
  }
  for (const auto& [suffix, ws] : writers) {
    auto ri = readers.find(suffix);
    if (ri == readers.end()) continue;  // no counterpart: nothing to compare
    if (ws.size() != 1 || ri->second.size() != 1) continue;  // ambiguous
    const CgFunction& w = ctx.cg.functions[ws[0]];
    const CgFunction& r = ctx.cg.functions[ri->second[0]];
    const AnalyzedFile& wf = (*ctx.files)[w.file];
    const AnalyzedFile& rf = (*ctx.files)[r.file];
    PathBuilder wb(*wf.index, wf.file->tokens);
    PathBuilder rb(*rf.index, rf.file->tokens);
    PathSet wp = wb.Build(w.fn->body_begin + 1, w.fn->body_end);
    PathSet rp = rb.Build(r.fn->body_begin + 1, r.fn->body_end);
    if (wp.overflow || rp.overflow) continue;  // abstain, never guess
    std::set<std::string> wall = wp.open;
    wall.insert(wp.done.begin(), wp.done.end());
    std::set<std::string> rall = rp.open;
    rall.insert(rp.done.begin(), rp.done.end());
    if (wall == rall) continue;
    out->push_back(Diagnostic(
        rf.file->rel, r.fn->line, kRuleCodecSymmetry,
        "wire-op sequences of " + w.Qualified() + " and " + r.Qualified() +
            " diverge: writer " + FmtPaths(wall) + " vs reader " +
            FmtPaths(rall)));
  }
}

}  // namespace

void CheckBounds(const AbsInterpreter& ai, std::vector<Diagnostic>* out) {
  RunBounds(ai, out);
}

void CheckDivZero(const AbsInterpreter& ai, std::vector<Diagnostic>* out) {
  RunDivZero(ai, out);
}

void CheckNarrowing(const AbsInterpreter& ai, std::vector<Diagnostic>* out) {
  RunNarrowing(ai, out);
}

void CheckCodecSymmetry(const AbsInterpreter& ai,
                        std::vector<Diagnostic>* out) {
  RunCodecSymmetry(ai, out);
}

}  // namespace clouddb::lint
