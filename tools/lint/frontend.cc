#include "frontend.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string_view>

namespace clouddb::lint {
namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

/// Parses NOLINT / NOLINT(rule, ...) / NOLINTNEXTLINE(...) markers from a raw
/// source line into `out[target_line]`. A marker of the form
/// `NOLINT(rule): rationale text` — explicit rule list, colon, non-empty
/// justification — is additionally recorded in `justified[target_line]`.
void ParseNolint(const std::string& raw, int line,
                 std::map<int, std::set<std::string>>* out,
                 std::map<int, std::set<std::string>>* justified) {
  size_t pos = 0;
  while ((pos = raw.find("NOLINT", pos)) != std::string::npos) {
    size_t after = pos + 6;
    int target = line;
    if (raw.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
      after = pos + 14;
      target = line + 1;
    }
    std::set<std::string>& rules = (*out)[target];
    size_t p = after;
    while (p < raw.size() && raw[p] == ' ') ++p;
    if (p < raw.size() && raw[p] == '(') {
      size_t close = raw.find(')', p);
      std::string list = raw.substr(
          p + 1, close == std::string::npos ? std::string::npos : close - p - 1);
      std::string name;
      std::set<std::string> named;
      std::istringstream ss(list);
      while (std::getline(ss, name, ',')) {
        name.erase(0, name.find_first_not_of(" \t"));
        name.erase(name.find_last_not_of(" \t") + 1);
        if (!name.empty()) named.insert(name);
      }
      rules.insert(named.begin(), named.end());
      if (named.empty()) rules.insert("*");
      // `NOLINT(rule): why` — a named rule list followed by a rationale.
      if (!named.empty() && close != std::string::npos) {
        size_t q = close + 1;
        if (q < raw.size() && raw[q] == ':') {
          ++q;
          while (q < raw.size() && (raw[q] == ' ' || raw[q] == '\t')) ++q;
          if (q < raw.size()) {
            std::set<std::string>& jr = (*justified)[target];
            jr.insert(named.begin(), named.end());
          }
        }
      }
    } else {
      rules.insert("*");  // bare NOLINT silences every rule on the line
    }
    pos = after;
  }
}

void ParseIncludes(SourceFile* f) {
  for (size_t li = 0; li < f->raw_lines.size(); ++li) {
    const std::string& raw = f->raw_lines[li];
    size_t p = raw.find_first_not_of(" \t");
    if (p == std::string::npos || raw[p] != '#') continue;
    ++p;
    while (p < raw.size() && (raw[p] == ' ' || raw[p] == '\t')) ++p;
    if (raw.compare(p, 7, "include") != 0) continue;
    p += 7;
    while (p < raw.size() && (raw[p] == ' ' || raw[p] == '\t')) ++p;
    if (p >= raw.size() || raw[p] != '"') continue;
    size_t close = raw.find('"', p + 1);
    if (close == std::string::npos) continue;
    f->includes.push_back(
        {static_cast<int>(li) + 1, raw.substr(p + 1, close - p - 1)});
  }
}

void MarkDirectiveLines(SourceFile* f) {
  bool continuing = false;
  for (size_t li = 0; li < f->raw_lines.size(); ++li) {
    const std::string& raw = f->raw_lines[li];
    size_t p = raw.find_first_not_of(" \t");
    bool directive = continuing || (p != std::string::npos && raw[p] == '#');
    if (directive) f->directive_lines.insert(static_cast<int>(li) + 1);
    continuing = directive && !raw.empty() && raw.back() == '\\';
  }
}

std::string ReadFileText(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// Bracket matching.
// ---------------------------------------------------------------------------

/// Fills `match[i]` with the index of the bracket matching token i (for
/// single-character ()/{}/[] tokens), or -1. Unbalanced brackets are left
/// unmatched rather than guessed at.
std::vector<int> MatchBrackets(const std::vector<Token>& t) {
  std::vector<int> match(t.size(), -1);
  std::vector<size_t> parens, braces, squares;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].text.size() != 1) continue;
    char c = t[i].text[0];
    switch (c) {
      case '(': parens.push_back(i); break;
      case '{': braces.push_back(i); break;
      case '[': squares.push_back(i); break;
      case ')':
        if (!parens.empty()) {
          match[i] = static_cast<int>(parens.back());
          match[parens.back()] = static_cast<int>(i);
          parens.pop_back();
        }
        break;
      case '}':
        if (!braces.empty()) {
          match[i] = static_cast<int>(braces.back());
          match[braces.back()] = static_cast<int>(i);
          braces.pop_back();
        }
        break;
      case ']':
        if (!squares.empty()) {
          match[i] = static_cast<int>(squares.back());
          match[squares.back()] = static_cast<int>(i);
          squares.pop_back();
        }
        break;
      default: break;
    }
  }
  return match;
}

bool IsTok(const Token& t, std::string_view s) { return t.text == s; }

// ---------------------------------------------------------------------------
// Class definitions.
// ---------------------------------------------------------------------------

/// Parses the depth-1 member declarations of a class body: member-variable
/// names, timer-typed members, and method names. Nested braces (inline method
/// bodies, nested classes) are skipped over.
void ParseClassMembers(const std::vector<Token>& t, const std::vector<int>& match,
                       ClassDef* cls) {
  size_t i = cls->body_begin + 1;
  size_t stmt_begin = i;
  while (i < cls->body_end) {
    const std::string& s = t[i].text;
    if (s == "{" || s == "(" || s == "[") {
      int m = match[i];
      if (m < 0 || static_cast<size_t>(m) > cls->body_end) break;
      if (s == "{") {
        // Inline method body (or nested class / brace init). A method body
        // ends the "statement" without a semicolon.
        i = static_cast<size_t>(m) + 1;
        if (i < cls->body_end && IsTok(t[i], ";")) ++i;  // class/init `};`
        stmt_begin = i;
        continue;
      }
      i = static_cast<size_t>(m) + 1;
      continue;
    }
    if (s == ";") {
      // Statement [stmt_begin, i). Method declaration if it contains a '(',
      // member variable otherwise.
      size_t open = stmt_begin;
      while (open < i && !IsTok(t[open], "(")) ++open;
      if (open < i) {
        if (open > stmt_begin && t[open - 1].ident &&
            !IsKeyword(t[open - 1].text)) {
          cls->method_names.insert(t[open - 1].text);
        }
      } else {
        // Name = last identifier before ';' or before an '=' initializer.
        size_t end = i;
        for (size_t k = stmt_begin; k < i; ++k) {
          if (IsTok(t[k], "=")) {
            end = k;
            break;
          }
        }
        size_t name = end;
        while (name > stmt_begin && !t[name - 1].ident) --name;
        if (name > stmt_begin && t[name - 1].ident &&
            !IsKeyword(t[name - 1].text)) {
          const std::string& nm = t[name - 1].text;
          cls->members.insert(nm);
          for (size_t k = stmt_begin; k + 1 < name; ++k) {
            if (t[k].text == "Timer" || t[k].text == "PeriodicTimer") {
              cls->timer_members.insert(nm);
              break;
            }
          }
        }
      }
      ++i;
      stmt_begin = i;
      continue;
    }
    ++i;
  }
}

void FindClasses(const std::vector<Token>& t, const std::vector<int>& match,
                 FileIndex* idx) {
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(IsTok(t[i], "class") || IsTok(t[i], "struct"))) continue;
    if (i > 0 && IsTok(t[i - 1], "enum")) continue;  // enum class
    size_t j = i + 1;
    // Skip attributes between the keyword and the name:
    // `class [[nodiscard]] Result`, `class alignas(64) Slab`.
    while (j < t.size() &&
           ((IsTok(t[j], "[") && match[j] >= 0) ||
            (IsTok(t[j], "alignas") && j + 1 < t.size() &&
             IsTok(t[j + 1], "(") && match[j + 1] >= 0))) {
      j = static_cast<size_t>(match[IsTok(t[j], "[") ? j : j + 1]) + 1;
    }
    if (j >= t.size() || !t[j].ident || IsKeyword(t[j].text)) continue;
    ClassDef cls;
    cls.name = t[j].text;
    cls.line = t[j].line;
    // Scan to the body '{' or a ';' (forward declaration). Base-class lists
    // may contain template angle brackets but no braces.
    size_t k = j + 1;
    while (k < t.size() && !IsTok(t[k], "{") && !IsTok(t[k], ";") &&
           !IsTok(t[k], "(")) {
      ++k;
    }
    if (k >= t.size() || !IsTok(t[k], "{")) continue;
    if (match[k] < 0) continue;
    cls.body_begin = k;
    cls.body_end = static_cast<size_t>(match[k]);
    ParseClassMembers(t, match, &cls);
    idx->classes.push_back(std::move(cls));
  }
}

// ---------------------------------------------------------------------------
// Function definitions.
// ---------------------------------------------------------------------------

bool IsControlKeyword(std::string_view s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "new" || s == "delete" || s == "assert";
}

/// Given the ')' closing a parameter list, skips trailing specifiers
/// (const/noexcept/override/..., trailing return type, ctor init list) and
/// returns the index of the body '{', or npos if this is not a definition.
size_t FindBodyBrace(const std::vector<Token>& t, const std::vector<int>& match,
                     size_t close_paren) {
  size_t i = close_paren + 1;
  bool in_init_list = false;
  while (i < t.size()) {
    const std::string& s = t[i].text;
    if (s == ";" || s == "=") return std::string::npos;  // decl / =default
    if (s == "{") {
      if (in_init_list && i > 0 && (t[i - 1].ident || IsTok(t[i - 1], ">"))) {
        // Member brace-init `b_{y}` inside a ctor init list; skip it.
        if (match[i] < 0) return std::string::npos;
        i = static_cast<size_t>(match[i]) + 1;
        continue;
      }
      return i;
    }
    if (s == ":") {
      in_init_list = true;
      ++i;
      continue;
    }
    if (s == "(") {  // member init `a_(x)` or noexcept(...)
      if (match[i] < 0) return std::string::npos;
      i = static_cast<size_t>(match[i]) + 1;
      continue;
    }
    if (s == ")" || s == "}") return std::string::npos;
    ++i;  // const, noexcept, override, final, ->, type tokens, commas, ...
  }
  return std::string::npos;
}

void FindFunctions(const std::vector<Token>& t, const std::vector<int>& match,
                   FileIndex* idx) {
  for (size_t i = 1; i + 1 < t.size(); ++i) {
    if (!t[i].ident || IsKeyword(t[i].text) || !IsTok(t[i + 1], "(")) continue;
    if (IsControlKeyword(t[i].text)) continue;
    if (match[i + 1] < 0) continue;
    size_t close = static_cast<size_t>(match[i + 1]);
    size_t body = FindBodyBrace(t, match, close);
    if (body == std::string::npos || match[body] < 0) continue;
    FunctionDef fn;
    fn.name = t[i].text;
    fn.line = t[i].line;
    fn.name_tok = i;
    fn.params_begin = i + 2;
    fn.params_end = close;
    fn.body_begin = body;
    fn.body_end = static_cast<size_t>(match[body]);
    // Qualifier / dtor detection, walking back from the name.
    size_t p = i;
    if (p > 0 && IsTok(t[p - 1], "~")) {
      fn.is_dtor = true;
      fn.cls = fn.name;
      if (p > 1 && IsTok(t[p - 2], "::") && t[p - 3].ident) fn.cls = fn.name;
    } else if (p > 1 && IsTok(t[p - 1], "::") && t[p - 2].ident &&
               !IsKeyword(t[p - 2].text)) {
      fn.cls = t[p - 2].text;
    }
    idx->functions.push_back(std::move(fn));
  }
  // Inline methods: attribute enclosing class to functions without an
  // explicit qualifier whose body lies inside a class body.
  for (FunctionDef& fn : idx->functions) {
    if (!fn.cls.empty()) continue;
    const ClassDef* innermost = nullptr;
    for (const ClassDef& cls : idx->classes) {
      if (fn.body_begin > cls.body_begin && fn.body_end < cls.body_end) {
        if (innermost == nullptr || cls.body_begin > innermost->body_begin) {
          innermost = &cls;
        }
      }
    }
    if (innermost != nullptr) fn.cls = innermost->name;
  }
}

// ---------------------------------------------------------------------------
// Lambda expressions.
// ---------------------------------------------------------------------------

/// Parses the capture list of the lambda introduced at token `intro` ('[').
/// Returns false when the bracket pair is not actually a lambda introducer.
bool ParseLambda(const std::vector<Token>& t, const std::vector<int>& match,
                 size_t intro, LambdaExpr* out) {
  if (match[intro] < 0) return false;
  size_t close = static_cast<size_t>(match[intro]);
  // After the capture list a lambda has (params), a template <...>, or its
  // body '{' directly.
  if (close + 1 >= t.size()) return false;
  const std::string& after = t[close + 1].text;
  if (after != "(" && after != "{" && after != "<" && after != "mutable" &&
      after != "->") {
    return false;
  }
  out->line = t[intro].line;
  out->intro = intro;
  // Split the capture list at top-level commas.
  std::vector<std::vector<const Token*>> items(1);
  int depth = 0;
  for (size_t i = intro + 1; i < close; ++i) {
    const std::string& s = t[i].text;
    if (s == "(" || s == "{" || s == "[" || s == "<") ++depth;
    if (s == ")" || s == "}" || s == "]" || s == ">") --depth;
    if (s == "," && depth == 0) {
      items.emplace_back();
      continue;
    }
    items.back().push_back(&t[i]);
  }
  for (const auto& item : items) {
    if (item.empty()) continue;
    if (item.size() == 1 && item[0]->text == "&") {
      out->ref_default = true;
    } else if (item.size() == 1 && item[0]->text == "=") {
      out->copy_default = true;
    } else if (item[0]->text == "this") {
      out->captures_this = true;
    } else if (item[0]->text == "*" && item.size() > 1 &&
               item[1]->text == "this") {
      // [*this] copies the object: lifetime-safe, not a risky capture.
    } else if (item[0]->text == "&" && item.size() > 1 && item[1]->ident) {
      out->by_ref.push_back(item[1]->text);
    } else if (item[0]->ident && !IsKeyword(item[0]->text)) {
      out->by_copy.push_back(item[0]->text);  // [x] or [x = init]
    }
  }
  // Locate the body braces (used to scope statement-level passes).
  size_t b = close + 1;
  while (b < t.size() && !IsTok(t[b], "{") && !IsTok(t[b], ";")) {
    if (IsTok(t[b], "(") && match[b] >= 0) {
      b = static_cast<size_t>(match[b]) + 1;
      continue;
    }
    ++b;
  }
  if (b < t.size() && IsTok(t[b], "{") && match[b] >= 0) {
    out->body_begin = b;
    out->body_end = static_cast<size_t>(match[b]);
  }
  return true;
}

/// Finds the innermost call the lambda at `intro` is an argument of:
/// walks back over preceding argument tokens to an unmatched '(' and reads
/// the callee (and `recv.callee` / `recv->callee` receiver) before it.
void FindCallContext(const std::vector<Token>& t, const std::vector<int>& match,
                     size_t intro, LambdaExpr* out) {
  size_t i = intro;
  while (i > 0) {
    --i;
    const std::string& s = t[i].text;
    if (s == ")" || s == "}" || s == "]") {
      if (match[i] < 0) return;
      i = static_cast<size_t>(match[i]);
      continue;
    }
    if (s == ";" || s == "{") return;  // statement start: not a call argument
    if (s == "(") {
      if (i == 0 || !t[i - 1].ident || IsKeyword(t[i - 1].text)) return;
      out->callee = t[i - 1].text;
      if (i >= 3 && (IsTok(t[i - 2], ".") || IsTok(t[i - 2], "->") ||
                     IsTok(t[i - 2], "::"))) {
        out->receiver = t[i - 3].ident ? t[i - 3].text : "?";
      }
      return;
    }
  }
}

void FindLambdas(const std::vector<Token>& t, const std::vector<int>& match,
                 FileIndex* idx) {
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!IsTok(t[i], "[")) continue;
    if (IsTok(t[i + 1], "[")) continue;  // [[attribute]]
    if (i > 0 && (t[i - 1].ident || IsTok(t[i - 1], "]") ||
                  IsTok(t[i - 1], ")"))) {
      continue;  // subscript a[i], arr[0](...)
    }
    LambdaExpr lam;
    if (!ParseLambda(t, match, i, &lam)) continue;
    FindCallContext(t, match, i, &lam);
    // Attribute to the innermost enclosing function.
    FunctionDef* owner = nullptr;
    for (FunctionDef& fn : idx->functions) {
      if (i > fn.body_begin && i < fn.body_end) {
        if (owner == nullptr || fn.body_begin > owner->body_begin) owner = &fn;
      }
    }
    if (owner != nullptr) owner->lambdas.push_back(std::move(lam));
  }
}

// ---------------------------------------------------------------------------
// Namespace-scope exports (include-hygiene).
// ---------------------------------------------------------------------------

bool InsideAny(size_t i, const FileIndex& idx) {
  for (const ClassDef& c : idx.classes) {
    if (i > c.body_begin && i < c.body_end) return true;
  }
  for (const FunctionDef& f : idx.functions) {
    if (i > f.body_begin && i < f.body_end) return true;
  }
  return false;
}

void CollectExports(const SourceFile& file, FileIndex* idx) {
  const std::vector<Token>& t = file.tokens;
  // Classes, structs, enums (names), and their nested declarations.
  for (const ClassDef& c : idx->classes) {
    idx->strong_exports.insert(c.name);
    for (const auto& m : c.members) idx->weak_exports.insert(m);
    for (const auto& m : c.method_names) idx->weak_exports.insert(m);
  }
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "enum") {
      size_t j = i + 1;
      if (j < t.size() && (IsTok(t[j], "class") || IsTok(t[j], "struct"))) ++j;
      if (j < t.size() && t[j].ident && !IsKeyword(t[j].text)) {
        idx->strong_exports.insert(t[j].text);
        // Enumerators: idents at depth 1 of the enum body.
        size_t k = j;
        while (k < t.size() && !IsTok(t[k], "{") && !IsTok(t[k], ";")) ++k;
        if (k < t.size() && IsTok(t[k], "{") && idx->match[k] >= 0) {
          for (size_t e = k + 1; e < static_cast<size_t>(idx->match[k]); ++e) {
            if (t[e].ident && !IsKeyword(t[e].text) &&
                (e == k + 1 || IsTok(t[e - 1], ","))) {
              idx->weak_exports.insert(t[e].text);
            }
          }
        }
      }
    } else if (s == "using" && i + 2 < t.size() && t[i + 1].ident &&
               IsTok(t[i + 2], "=")) {
      (InsideAny(i, *idx) ? idx->weak_exports : idx->strong_exports)
          .insert(t[i + 1].text);
    } else if (s == "operator" && !InsideAny(i, *idx)) {
      idx->exports_operators = true;
    } else if (s == "template" && IsTok(t[i + 1], "<") && !InsideAny(i, *idx)) {
      // Explicit specialization `template <> ...` has no name of its own.
      if (i + 2 < t.size() && IsTok(t[i + 2], ">")) {
        idx->exports_operators = true;
      }
    } else if (s == "constexpr" && !InsideAny(i, *idx)) {
      // `constexpr T kName = ...;` / `constexpr char kName[] = ...;`
      size_t k = i + 1;
      size_t name = 0;
      while (k < t.size() && !IsTok(t[k], ";") && !IsTok(t[k], "=") &&
             !IsTok(t[k], "(")) {
        if (IsTok(t[k], "[")) break;
        if (t[k].ident && !IsKeyword(t[k].text)) name = k;
        ++k;
      }
      if (name != 0 && k < t.size() && !IsTok(t[k], "(")) {
        idx->strong_exports.insert(t[name].text);
      }
    }
  }
  // Free functions declared or defined at namespace scope.
  for (const FunctionDef& fn : idx->functions) {
    if (fn.cls.empty() && !InsideAny(fn.body_begin, *idx)) {
      idx->strong_exports.insert(fn.name);
    }
  }
  for (size_t i = 1; i + 1 < t.size(); ++i) {
    // Declarations (no body): `Ret Name(...);` at namespace scope with a
    // type-ish token before the name.
    if (!t[i].ident || IsKeyword(t[i].text) || !IsTok(t[i + 1], "(")) continue;
    if (IsControlKeyword(t[i].text) || InsideAny(i, *idx)) continue;
    if (idx->match[i + 1] < 0) continue;
    size_t close = static_cast<size_t>(idx->match[i + 1]);
    // Skip trailing qualifiers and attributes before the terminating ';':
    // `std::string StrFormat(...) __attribute__((format(printf, 1, 2)));`
    size_t q = close + 1;
    while (q < t.size()) {
      if (t[q].ident && (t[q].text == "noexcept" || t[q].text == "const" ||
                         t[q].text == "__attribute__")) {
        ++q;
        continue;
      }
      if ((IsTok(t[q], "(") || IsTok(t[q], "[")) && idx->match[q] >= 0) {
        q = static_cast<size_t>(idx->match[q]) + 1;
        continue;
      }
      break;
    }
    if (q < t.size() && IsTok(t[q], ";")) {
      const Token& prev = t[i - 1];
      bool typeish = (prev.ident && !IsControlKeyword(prev.text)) ||
                     prev.text == ">" || prev.text == "*" || prev.text == "&";
      if (typeish) idx->strong_exports.insert(t[i].text);
    }
  }
  // Macros.
  for (size_t li = 0; li < file.raw_lines.size(); ++li) {
    const std::string& raw = file.raw_lines[li];
    size_t p = raw.find_first_not_of(" \t");
    if (p == std::string::npos || raw[p] != '#') continue;
    size_t d = raw.find("define", p + 1);
    if (d == std::string::npos) continue;
    size_t q = d + 6;
    while (q < raw.size() && (raw[q] == ' ' || raw[q] == '\t')) ++q;
    size_t e = q;
    while (e < raw.size() && IsIdentChar(raw[e])) ++e;
    if (e > q) idx->strong_exports.insert(raw.substr(q, e - q));
  }
}

}  // namespace

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsKeyword(std::string_view s) {
  static const std::set<std::string_view> kKw = {
      "alignas",  "alignof",  "auto",     "bool",     "break",    "case",
      "catch",    "char",     "class",    "const",    "constexpr",
      "continue", "decltype", "default",  "delete",   "do",       "double",
      "else",     "enum",     "explicit", "extern",   "false",    "float",
      "for",      "friend",   "goto",     "if",       "inline",   "int",
      "long",     "mutable",  "namespace", "new",     "noexcept", "nullptr",
      "operator", "private",  "protected", "public",  "return",   "short",
      "signed",   "sizeof",   "static",   "struct",   "switch",   "template",
      "this",     "throw",    "true",     "try",      "typedef",  "typename",
      "union",    "unsigned", "using",    "virtual",  "void",     "volatile",
      "while",    "co_await", "co_return", "co_yield", "final",   "override",
  };
  return kKw.count(s) > 0;
}

std::string StripCommentsAndStrings(const std::string& src) {
  std::string out = src;
  enum class St { kNormal, kLine, kBlock, kStr, kChar, kRaw };
  St st = St::kNormal;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case St::kNormal:
        if (c == '/' && next == '/') {
          st = St::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !IsIdentChar(src[i - 1]))) {
          size_t open = src.find('(', i + 2);
          if (open != std::string::npos) {
            raw_delim = ")" + src.substr(i + 2, open - i - 2) + "\"";
            for (size_t k = i; k <= open; ++k)
              if (out[k] != '\n') out[k] = ' ';
            i = open;
            st = St::kRaw;
          }
        } else if (c == '"') {
          st = St::kStr;
        } else if (c == '\'' && i > 0 && IsIdentChar(src[i - 1])) {
          // digit separator (1'000'000) or suffix — not a char literal
        } else if (c == '\'') {
          st = St::kChar;
        }
        break;
      case St::kLine:
        if (c == '\n')
          st = St::kNormal;
        else
          out[i] = ' ';
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          st = St::kNormal;
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
      case St::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if ((st == St::kStr && c == '"') ||
                   (st == St::kChar && c == '\'')) {
          st = St::kNormal;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRaw:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 0; k < raw_delim.size(); ++k)
            if (out[i + k] != '\n') out[i + k] = ' ';
          i += raw_delim.size() - 1;
          st = St::kNormal;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Token> Tokenize(const std::vector<std::string>& stripped_lines) {
  std::vector<Token> toks;
  for (size_t li = 0; li < stripped_lines.size(); ++li) {
    const std::string& s = stripped_lines[li];
    int line = static_cast<int>(li) + 1;
    size_t i = 0;
    while (i < s.size()) {
      char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < s.size() && IsIdentChar(s[j])) ++j;
        toks.push_back({s.substr(i, j - i), line, true});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t j = i;
        while (j < s.size() && (IsIdentChar(s[j]) || s[j] == '.')) ++j;
        toks.push_back({s.substr(i, j - i), line, false});
        i = j;
        continue;
      }
      // Two-char puncts the scanners care about.
      if (i + 1 < s.size()) {
        std::string two = s.substr(i, 2);
        if (two == "::" || two == "->") {
          toks.push_back({two, line, false});
          i += 2;
          continue;
        }
      }
      toks.push_back({std::string(1, c), line, false});
      ++i;
    }
  }
  return toks;
}

SourceFile LoadSourceFile(const std::filesystem::path& path,
                          const std::string& rel) {
  std::string ext = path.extension().string();
  bool is_header = ext == ".h" || ext == ".hpp" || ext == ".hh";
  return ParseSource(ReadFileText(path), rel, is_header);
}

SourceFile ParseSource(const std::string& text, const std::string& rel,
                       bool is_header) {
  SourceFile f;
  f.rel = rel;
  f.is_header = is_header;
  f.raw_lines = SplitLines(text);
  f.stripped_lines = SplitLines(StripCommentsAndStrings(text));
  f.tokens = Tokenize(f.stripped_lines);
  for (size_t li = 0; li < f.raw_lines.size(); ++li)
    ParseNolint(f.raw_lines[li], static_cast<int>(li) + 1, &f.nolint,
                &f.nolint_justified);
  ParseIncludes(&f);
  MarkDirectiveLines(&f);
  return f;
}

FileIndex BuildIndex(const SourceFile& file) {
  FileIndex idx;
  idx.match = MatchBrackets(file.tokens);
  FindClasses(file.tokens, idx.match, &idx);
  FindFunctions(file.tokens, idx.match, &idx);
  FindLambdas(file.tokens, idx.match, &idx);
  CollectExports(file, &idx);
  return idx;
}

}  // namespace clouddb::lint
