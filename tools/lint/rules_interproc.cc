#include "rules_interproc.h"

#include <algorithm>
#include <deque>
#include <map>
#include <string_view>
#include <unordered_map>

#include "dataflow.h"
#include "frontend.h"
#include "callgraph.h"
#include "cfg.h"
#include "linter.h"
#include "rules_flow.h"

namespace clouddb::lint {
namespace {

constexpr char kRuleLockOrder[] = "clouddb-lock-order";
constexpr char kRuleUseAfterMove[] = "clouddb-use-after-move";
constexpr char kRuleStatusPath[] = "clouddb-status-path";
constexpr char kRuleDetTaint[] = "clouddb-determinism-taint";

bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool SrcFile(const std::string& rel) { return StartsWith(rel, "src/"); }

/// Maps every token index inside a function body to its CFG node (or -1 for
/// tokens not covered by any node, e.g. bare braces).
std::vector<int> TokenToNode(const Cfg& cfg, const FunctionDef& fn) {
  std::vector<int> node_of(fn.body_end + 1, -1);
  for (size_t n = 0; n < cfg.nodes.size(); ++n) {
    const CfgNode& nd = cfg.nodes[n];
    for (size_t j = nd.begin; j < nd.end && j < node_of.size(); ++j)
      node_of[j] = static_cast<int>(n);
  }
  return node_of;
}

/// Extracts the first string-literal argument of the call whose name token
/// sits at stripped-line position: StripCommentsAndStrings blanks literal
/// contents but preserves the quotes, so the key is recovered from the raw
/// line between the stripped line's quote columns. Empty when the argument
/// is not a literal (variable lock keys contribute nothing to the order
/// graph — a documented capability limit).
std::string LiteralArg(const SourceFile& file, const std::string& callee,
                       int line) {
  if (line <= 0 || static_cast<size_t>(line) > file.stripped_lines.size())
    return "";
  const std::string& s = file.stripped_lines[static_cast<size_t>(line) - 1];
  const std::string& raw = file.raw_lines[static_cast<size_t>(line) - 1];
  for (size_t pos = s.find(callee); pos != std::string::npos;
       pos = s.find(callee, pos + 1)) {
    if (pos > 0 && IsIdentChar(s[pos - 1])) continue;
    size_t k = pos + callee.size();
    while (k < s.size() && s[k] == ' ') ++k;
    if (k >= s.size() || s[k] != '(') continue;
    ++k;
    while (k < s.size() && s[k] == ' ') ++k;
    if (k >= s.size() || s[k] != '"') return "";
    size_t close = s.find('"', k + 1);
    if (close == std::string::npos || close > raw.size()) return "";
    return raw.substr(k + 1, close - k - 1);
  }
  return "";
}

}  // namespace

InterprocContext BuildInterprocContext(const std::vector<AnalyzedFile>& files) {
  InterprocContext ctx;
  ctx.files = &files;
  ctx.cg = BuildCallGraph(files, SrcFile);
  ctx.cfgs.reserve(ctx.cg.functions.size());
  for (const CgFunction& f : ctx.cg.functions) {
    const AnalyzedFile& af = files[static_cast<size_t>(f.file)];
    ctx.cfgs.push_back(BuildCfg(*af.file, *af.index, *f.fn));
  }
  return ctx;
}

// ---------------------------------------------------------------------------
// clouddb-lock-order.
// ---------------------------------------------------------------------------

namespace {

bool IsAcquireName(std::string_view s) {
  return s == "Acquire" || s == "AcquireRead" || s == "AcquireWrite";
}

bool LockOrderScope(const std::string& rel) {
  return StartsWith(rel, "src/db/") || StartsWith(rel, "src/repl/");
}

/// Names whose call (transitively) reaches ReleaseAll. Matching is by name:
/// release entry points are declared in headers the scan may not load, so
/// resolution cannot be required.
std::set<std::string> ReleasingNames(const CallGraph& cg) {
  std::set<std::string> releasing = {"ReleaseAll"};
  bool changed = true;
  while (changed) {
    changed = false;
    for (const CgFunction& f : cg.functions) {
      if (releasing.count(f.name)) continue;
      for (const CallSite& site : f.calls) {
        if (releasing.count(site.name)) {
          releasing.insert(f.name);
          changed = true;
          break;
        }
      }
    }
  }
  return releasing;
}

struct LockEvent {
  enum class Kind { kAcquire, kRelease, kCall };
  Kind kind;
  size_t token;
  int line;
  size_t key = FactTable::npos;  // kAcquire
  int callee = -1;               // kCall: CgFunction index
};

struct EdgeSite {
  std::string file;
  int line = 0;
};

}  // namespace

void CheckLockOrder(const InterprocContext& ctx, std::vector<Diagnostic>* out) {
  const std::vector<AnalyzedFile>& files = *ctx.files;
  const CallGraph& cg = ctx.cg;
  std::set<std::string> releasing = ReleasingNames(cg);

  // Per-function lock events, in token order, and the global key table.
  FactTable keys;
  std::vector<std::vector<LockEvent>> events(cg.functions.size());
  for (size_t fi = 0; fi < cg.functions.size(); ++fi) {
    const CgFunction& f = cg.functions[fi];
    const AnalyzedFile& af = files[static_cast<size_t>(f.file)];
    const std::vector<Token>& t = af.file->tokens;
    std::unordered_map<size_t, const CallSite*> site_at;
    for (const CallSite& s : f.calls) site_at[s.token] = &s;
    for (size_t j = f.fn->body_begin + 1; j + 1 < f.fn->body_end; ++j) {
      if (!t[j].ident || t[j + 1].text != "(") continue;
      if (IsAcquireName(t[j].text)) {
        std::string key = LiteralArg(*af.file, t[j].text, t[j].line);
        if (!key.empty()) {
          events[fi].push_back({LockEvent::Kind::kAcquire, j, t[j].line,
                                keys.Intern(key), -1});
        }
        continue;
      }
      if (releasing.count(t[j].text)) {
        events[fi].push_back({LockEvent::Kind::kRelease, j, t[j].line});
        continue;
      }
      auto it = site_at.find(j);
      if (it != site_at.end() && !it->second->targets.empty()) {
        events[fi].push_back(
            {LockEvent::Kind::kCall, j, t[j].line, FactTable::npos,
             it->second->targets.front()});
        // All same-name targets share one footprint union below; keep every
        // resolved target so the edge set stays conservative.
        for (size_t k = 1; k < it->second->targets.size(); ++k) {
          events[fi].push_back(
              {LockEvent::Kind::kCall, j, t[j].line, FactTable::npos,
               it->second->targets[k]});
        }
      }
    }
  }
  if (keys.size() == 0) return;

  // Acquisition footprint of each function: keys it (or a callee) acquires.
  std::vector<std::vector<bool>> footprint(cg.functions.size(),
                                           std::vector<bool>(keys.size()));
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t fi = 0; fi < cg.functions.size(); ++fi) {
      for (const LockEvent& ev : events[fi]) {
        if (ev.kind == LockEvent::Kind::kAcquire) {
          if (!footprint[fi][ev.key]) {
            footprint[fi][ev.key] = true;
            changed = true;
          }
        } else if (ev.kind == LockEvent::Kind::kCall) {
          const auto& callee_fp = footprint[static_cast<size_t>(ev.callee)];
          for (size_t k = 0; k < keys.size(); ++k) {
            if (callee_fp[k] && !footprint[fi][k]) {
              footprint[fi][k] = true;
              changed = true;
            }
          }
        }
      }
    }
  }

  // Held-set dataflow per in-scope function, then edge collection. First
  // site per (from, to) edge wins; the scan order is deterministic.
  std::map<std::pair<std::string, std::string>, EdgeSite> edges;
  auto add_edge = [&](size_t from, size_t to, const std::string& file,
                      int line) {
    if (from == to) return;
    edges.emplace(std::make_pair(keys.Name(from), keys.Name(to)),
                  EdgeSite{file, line});
  };
  for (size_t fi = 0; fi < cg.functions.size(); ++fi) {
    const CgFunction& f = cg.functions[fi];
    const AnalyzedFile& af = files[static_cast<size_t>(f.file)];
    if (!LockOrderScope(af.file->rel)) continue;
    const Cfg& cfg = ctx.cfgs[fi];
    if (!cfg.ok || events[fi].empty()) continue;
    std::vector<int> node_of = TokenToNode(cfg, *f.fn);

    // Node-level gen/kill from the in-node event sequence.
    std::vector<std::vector<bool>> gen(cfg.nodes.size());
    std::vector<std::vector<bool>> kill(cfg.nodes.size());
    for (const LockEvent& ev : events[fi]) {
      int n = ev.token < node_of.size() ? node_of[ev.token] : -1;
      if (n < 0) continue;
      auto& g = gen[static_cast<size_t>(n)];
      auto& k = kill[static_cast<size_t>(n)];
      if (ev.kind == LockEvent::Kind::kAcquire) {
        if (g.empty()) g.assign(keys.size(), false);
        g[ev.key] = true;
      } else if (ev.kind == LockEvent::Kind::kRelease) {
        k.assign(keys.size(), true);
        g.clear();  // acquires before the release in this node do not escape
      }
    }
    DataflowResult held = SolveForward(cfg, keys.size(), gen, kill);

    // Replay each node's events against its incoming held set.
    std::vector<std::vector<const LockEvent*>> per_node(cfg.nodes.size());
    for (const LockEvent& ev : events[fi]) {
      int n = ev.token < node_of.size() ? node_of[ev.token] : -1;
      if (n >= 0) per_node[static_cast<size_t>(n)].push_back(&ev);
    }
    for (size_t n = 0; n < cfg.nodes.size(); ++n) {
      if (per_node[n].empty()) continue;
      std::vector<bool> running = held.in[n];
      running.resize(keys.size(), false);
      for (const LockEvent* ev : per_node[n]) {
        switch (ev->kind) {
          case LockEvent::Kind::kAcquire:
            for (size_t h = 0; h < keys.size(); ++h)
              if (running[h]) add_edge(h, ev->key, af.file->rel, ev->line);
            running[ev->key] = true;
            break;
          case LockEvent::Kind::kRelease:
            running.assign(keys.size(), false);
            break;
          case LockEvent::Kind::kCall: {
            const auto& fp = footprint[static_cast<size_t>(ev->callee)];
            for (size_t h = 0; h < keys.size(); ++h) {
              if (!running[h]) continue;
              for (size_t k = 0; k < keys.size(); ++k)
                if (fp[k]) add_edge(h, k, af.file->rel, ev->line);
            }
            break;
          }
        }
      }
    }
  }

  // Cycle detection over the key order graph. Each cycle is reported once,
  // at the lexicographically smallest edge that participates in it.
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [e, site] : edges) adj[e.first].push_back(e.second);
  std::set<std::string> reported;
  for (const auto& [e, site] : edges) {
    const std::string& a = e.first;
    const std::string& b = e.second;
    // BFS b -> a.
    std::map<std::string, std::string> parent;
    std::deque<std::string> q{b};
    parent[b] = b;
    while (!q.empty() && !parent.count(a)) {
      std::string u = q.front();
      q.pop_front();
      for (const std::string& v : adj[u]) {
        if (!parent.count(v)) {
          parent[v] = u;
          q.push_back(v);
        }
      }
    }
    if (!parent.count(a)) continue;
    std::vector<std::string> cycle{a};
    for (std::string v = a; v != b; v = parent[v]) cycle.push_back(parent[v]);
    std::reverse(cycle.begin() + 1, cycle.end());
    std::vector<std::string> canon = cycle;
    std::sort(canon.begin(), canon.end());
    std::string canon_key;
    for (const auto& k : canon) canon_key += k + "|";
    if (!reported.insert(canon_key).second) continue;

    const EdgeSite& closing = edges.at({cycle.back(), a});
    std::string path;
    for (const auto& k : cycle) path += "\"" + k + "\" -> ";
    path += "\"" + a + "\"";
    out->push_back(
        {site.file, site.line, kRuleLockOrder,
         "acquiring \"" + b + "\" while holding \"" + a +
             "\" completes a lock-order cycle " + path + " (closing edge at " +
             closing.file + ":" + std::to_string(closing.line) +
             "); acquire lock keys in one global order to rule out deadlock"});
  }
}

// ---------------------------------------------------------------------------
// clouddb-use-after-move.
// ---------------------------------------------------------------------------

namespace {

struct MoveEvent {
  enum class Kind { kMove, kKill, kUse };
  Kind kind;
  size_t var;  // fact id
  size_t token;
  int line;
};

/// True when token j is the `v` of a `std::move(v)` / `move(v)` expression.
bool IsMoveArg(const std::vector<Token>& t, size_t j) {
  if (j < 2 || j + 1 >= t.size()) return false;
  if (t[j - 1].text != "(" || t[j - 2].text != "move" || t[j + 1].text != ")")
    return false;
  size_t m = j - 2;
  if (m >= 2 && t[m - 1].text == "::")
    return t[m - 2].text == "std";           // std::move(v)
  return m == 0 || (t[m - 1].text != "." && t[m - 1].text != "->");
}

/// Locals of `fn`: parameters plus body-scope declarations, by name.
/// Token-level, so it over-collects rarely and misses ctor-style `T v(x);`
/// declarations — both err toward fewer diagnostics.
void CollectLocals(const std::vector<Token>& t, const FunctionDef& fn,
                   FactTable* vars) {
  for (size_t j = fn.params_begin; j < fn.params_end; ++j) {
    if (!t[j].ident || IsKeyword(t[j].text) || j == fn.params_begin) continue;
    const std::string& prev = t[j - 1].text;
    bool typed_before = (t[j - 1].ident && !IsKeyword(t[j - 1].text)) ||
                        prev == ">" || prev == "*" || prev == "&";
    const std::string& next = t[j + 1].text;
    bool decl_after = next == "," || next == ")" || next == "=" || next == "[";
    if (typed_before && decl_after) vars->Intern(t[j].text);
  }
  for (size_t j = fn.body_begin + 1; j + 1 < fn.body_end; ++j) {
    if (!t[j].ident || IsKeyword(t[j].text)) continue;
    const Token& p = t[j - 1];
    bool typed_before = (p.ident && (!IsKeyword(p.text) || p.text == "auto")) ||
                        p.text == ">" || p.text == "*" || p.text == "&";
    if (!typed_before) continue;
    const std::string& next = t[j + 1].text;
    if (next == "=" || next == ";" || next == "{" || next == ":")
      vars->Intern(t[j].text);
  }
}

bool InsideLambda(const FunctionDef& fn, size_t j) {
  for (const LambdaExpr& lam : fn.lambdas) {
    if (lam.body_begin != 0 && j > lam.body_begin && j < lam.body_end)
      return true;
  }
  return false;
}

/// Classifies every occurrence of a tracked local inside [begin, end) into
/// move / kill / use events, in token order. Lambda bodies are opaque.
void ScanMoveEvents(const std::vector<Token>& t, const FunctionDef& fn,
                    const FactTable& vars, size_t begin, size_t end,
                    std::vector<MoveEvent>* out) {
  for (size_t j = begin; j < end; ++j) {
    if (!t[j].ident) continue;
    size_t var = vars.Find(t[j].text);
    if (var == FactTable::npos || InsideLambda(fn, j)) continue;
    const std::string prev = j > 0 ? t[j - 1].text : "";
    if (prev == "." || prev == "->" || prev == "::") continue;  // x.v
    if (IsMoveArg(t, j)) {
      out->push_back({MoveEvent::Kind::kMove, var, j, t[j].line});
      continue;
    }
    const std::string next = j + 1 < t.size() ? t[j + 1].text : "";
    bool plain_assign =
        next == "=" && (j + 2 >= t.size() || t[j + 2].text != "=");
    // Re-declaration / reference binding / address-of out-param. A `*`
    // only introduces a declaration when a type name precedes it
    // (`Row* v`); a bare `*v` is a pointer dereference, i.e. a use.
    bool redecl = prev == "&" || prev == ">" ||
                  (prev == "*" && j >= 2 && t[j - 2].ident &&
                   !IsKeyword(t[j - 2].text)) ||
                  (t[j - 1].ident && (!IsKeyword(prev) || prev == "auto"));
    bool refill = (next == "." || next == "->") && j + 2 < t.size() &&
                  (t[j + 2].text == "reset" || t[j + 2].text == "clear" ||
                   t[j + 2].text == "assign" || t[j + 2].text == "emplace");
    if (plain_assign || redecl || refill) {
      out->push_back({MoveEvent::Kind::kKill, var, j, t[j].line});
    } else {
      out->push_back({MoveEvent::Kind::kUse, var, j, t[j].line});
    }
  }
}

}  // namespace

void CheckUseAfterMove(const InterprocContext& ctx,
                       std::vector<Diagnostic>* out) {
  const std::vector<AnalyzedFile>& files = *ctx.files;
  for (size_t fi = 0; fi < ctx.cg.functions.size(); ++fi) {
    const CgFunction& f = ctx.cg.functions[fi];
    const AnalyzedFile& af = files[static_cast<size_t>(f.file)];
    const std::vector<Token>& t = af.file->tokens;
    const Cfg& cfg = ctx.cfgs[fi];
    if (!cfg.ok) continue;

    FactTable vars;
    CollectLocals(t, *f.fn, &vars);
    if (vars.size() == 0) continue;

    // Fast path: no tracked local is ever moved in this function.
    std::vector<int> first_move_line(vars.size(), 0);
    bool any_move = false;
    for (size_t j = f.fn->body_begin + 1; j + 1 < f.fn->body_end; ++j) {
      if (!t[j].ident || InsideLambda(*f.fn, j)) continue;
      size_t var = vars.Find(t[j].text);
      if (var == FactTable::npos || !IsMoveArg(t, j)) continue;
      if (first_move_line[var] == 0) first_move_line[var] = t[j].line;
      any_move = true;
    }
    if (!any_move) continue;

    // Node-level gen/kill: the last move/kill event in the node wins.
    std::vector<std::vector<bool>> gen(cfg.nodes.size());
    std::vector<std::vector<bool>> kill(cfg.nodes.size());
    std::vector<std::vector<MoveEvent>> per_node(cfg.nodes.size());
    for (size_t n = 0; n < cfg.nodes.size(); ++n) {
      const CfgNode& nd = cfg.nodes[n];
      if (nd.begin >= nd.end) continue;
      ScanMoveEvents(t, *f.fn, vars, nd.begin, nd.end, &per_node[n]);
      for (const MoveEvent& ev : per_node[n]) {
        if (ev.kind == MoveEvent::Kind::kUse) continue;
        if (gen[n].empty()) gen[n].assign(vars.size(), false);
        if (kill[n].empty()) kill[n].assign(vars.size(), false);
        bool moved = ev.kind == MoveEvent::Kind::kMove;
        gen[n][ev.var] = moved;
        kill[n][ev.var] = !moved;
      }
    }
    DataflowResult moved = SolveForward(cfg, vars.size(), gen, kill);

    // Replay node events against the incoming moved-from set.
    std::set<std::string> seen;  // one report per (var, line)
    for (size_t n = 0; n < cfg.nodes.size(); ++n) {
      if (per_node[n].empty()) continue;
      std::vector<bool> state = moved.in[n];
      state.resize(vars.size(), false);
      for (const MoveEvent& ev : per_node[n]) {
        switch (ev.kind) {
          case MoveEvent::Kind::kKill:
            state[ev.var] = false;
            break;
          case MoveEvent::Kind::kMove:
          case MoveEvent::Kind::kUse:
            if (state[ev.var] &&
                seen.insert(vars.Name(ev.var) + ":" +
                            std::to_string(ev.line)).second) {
              bool dbl = ev.kind == MoveEvent::Kind::kMove;
              out->push_back(
                  {af.file->rel, ev.line, kRuleUseAfterMove,
                   std::string(dbl ? "'" : "use of '") + vars.Name(ev.var) +
                       (dbl ? "' is moved again" : "' after it was moved") +
                       " (moved-from since line " +
                       std::to_string(first_move_line[ev.var]) +
                       " on some path); reinitialize it before this point"});
            }
            if (ev.kind == MoveEvent::Kind::kMove) state[ev.var] = true;
            break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// clouddb-status-path.
// ---------------------------------------------------------------------------

namespace {

/// A definition site of a status-typed local from a status-returning call.
struct StatusDef {
  size_t var;
  int node;
  int line;
};

/// True when [begin, end) contains a call to one of `status_fns`.
/// `Status::Ok()` does not count: an Ok-initialized accumulator that is
/// overwritten later is the intended pattern, not a dropped payload.
bool ContainsStatusCall(const std::vector<Token>& t, size_t begin, size_t end,
                        const std::set<std::string>& status_fns) {
  for (size_t j = begin; j + 1 < end; ++j) {
    if (t[j].ident && t[j + 1].text == "(" && t[j].text != "Ok" &&
        status_fns.count(t[j].text))
      return true;
  }
  return false;
}

size_t StatementEnd(const std::vector<Token>& t, size_t j, size_t limit) {
  while (j < limit && t[j].text != ";") ++j;
  return j;
}

}  // namespace

void CheckStatusPath(const InterprocContext& ctx,
                     const std::set<std::string>& status_fns,
                     std::vector<Diagnostic>* out) {
  if (status_fns.empty()) return;
  const std::vector<AnalyzedFile>& files = *ctx.files;
  for (size_t fi = 0; fi < ctx.cg.functions.size(); ++fi) {
    const CgFunction& f = ctx.cg.functions[fi];
    const AnalyzedFile& af = files[static_cast<size_t>(f.file)];
    const std::vector<Token>& t = af.file->tokens;
    const Cfg& cfg = ctx.cfgs[fi];
    if (!cfg.ok) continue;
    std::vector<int> node_of = TokenToNode(cfg, *f.fn);

    // Status-typed locals and their definition sites. A def is a declaration
    // or assignment whose right-hand side calls a known Status/Result
    // returning function; plain `Status st;` or `st = Status::Ok()` carry no
    // checkable payload and are ignored.
    FactTable vars;
    std::vector<size_t> decl_tokens;  // declaration name occurrences
    std::vector<StatusDef> defs;
    for (size_t j = f.fn->body_begin + 1; j + 1 < f.fn->body_end; ++j) {
      if (!t[j].ident || InsideLambda(*f.fn, j)) continue;
      bool status_decl = t[j - 1].text == "Status" ||
                         (t[j - 1].text == ">" &&
                          t[j].ident && !IsKeyword(t[j].text));
      bool auto_decl = t[j - 1].text == "auto";
      if (!(status_decl || auto_decl) || IsKeyword(t[j].text)) continue;
      const std::string& next = t[j + 1].text;
      if (next != "=" && next != ";") continue;
      if (next == "=" && j + 2 < t.size() && t[j + 2].text == "=") continue;
      size_t end = StatementEnd(t, j, f.fn->body_end);
      bool from_status_call =
          next == "=" && ContainsStatusCall(t, j + 2, end, status_fns);
      if (auto_decl && !from_status_call) continue;  // unrelated auto local
      size_t var = vars.Intern(t[j].text);
      decl_tokens.push_back(j);
      if (from_status_call && node_of[j] >= 0)
        defs.push_back({var, node_of[j], t[j].line});
    }
    if (defs.empty()) continue;

    // Later assignments `v = ... status_fn(...)` are defs too.
    for (size_t j = f.fn->body_begin + 1; j + 1 < f.fn->body_end; ++j) {
      if (!t[j].ident || vars.Find(t[j].text) == FactTable::npos) continue;
      if (InsideLambda(*f.fn, j)) continue;
      if (std::find(decl_tokens.begin(), decl_tokens.end(), j) !=
          decl_tokens.end())
        continue;
      const std::string& prev = t[j - 1].text;
      if (prev == "." || prev == "->" || prev == "::") continue;
      if (t[j + 1].text != "=" ||
          (j + 2 < t.size() && t[j + 2].text == "=")) continue;
      size_t end = StatementEnd(t, j, f.fn->body_end);
      if (ContainsStatusCall(t, j + 2, end, status_fns) && node_of[j] >= 0)
        defs.push_back({vars.Find(t[j].text), node_of[j], t[j].line});
    }

    // Node classification: per var, does the node read it (consume the
    // value) or only redefine it?
    std::vector<std::vector<bool>> reads(cfg.nodes.size());
    std::vector<std::vector<bool>> redefs(cfg.nodes.size());
    for (size_t j = f.fn->body_begin + 1; j + 1 < f.fn->body_end; ++j) {
      if (!t[j].ident || InsideLambda(*f.fn, j)) continue;
      size_t var = vars.Find(t[j].text);
      if (var == FactTable::npos) continue;
      if (std::find(decl_tokens.begin(), decl_tokens.end(), j) !=
          decl_tokens.end())
        continue;
      const std::string& prev = t[j - 1].text;
      if (prev == "." || prev == "->" || prev == "::") continue;
      int n = node_of[j];
      if (n < 0) continue;
      bool redef = t[j + 1].text == "=" &&
                   !(j + 2 < t.size() && t[j + 2].text == "=");
      auto& vec = redef ? redefs[static_cast<size_t>(n)]
                        : reads[static_cast<size_t>(n)];
      if (vec.empty()) vec.assign(vars.size(), false);
      vec[var] = true;
    }

    // DROP: a path that overwrites or leaves the function without reading.
    // READ: a path that consumes the value. Both backward may-analyses; a
    // node that reads never counts as a drop even if it also redefines.
    std::vector<std::vector<bool>> drop_gen(cfg.nodes.size());
    std::vector<std::vector<bool>> read_kill(cfg.nodes.size());
    for (size_t n = 0; n < cfg.nodes.size(); ++n) {
      if (redefs[n].empty()) continue;
      drop_gen[n].assign(vars.size(), false);
      read_kill[n].assign(vars.size(), false);
      for (size_t v = 0; v < vars.size(); ++v) {
        bool r = !reads[n].empty() && reads[n][v];
        drop_gen[n][v] = redefs[n][v] && !r;
        read_kill[n][v] = drop_gen[n][v];
      }
    }
    std::vector<bool> all(vars.size(), true);
    DataflowResult drop =
        SolveBackward(cfg, vars.size(), drop_gen, reads, all);
    DataflowResult read =
        SolveBackward(cfg, vars.size(), reads, read_kill);

    std::set<std::string> seen;
    for (const StatusDef& d : defs) {
      size_t n = static_cast<size_t>(d.node);
      bool dropped = !drop.out[n].empty() && drop.out[n][d.var];
      bool consumed = !read.out[n].empty() && read.out[n][d.var];
      if (dropped && consumed &&
          seen.insert(vars.Name(d.var) + ":" + std::to_string(d.line))
              .second) {
        out->push_back(
            {af.file->rel, d.line, kRuleStatusPath,
             "Status in '" + vars.Name(d.var) +
                 "' is checked on one path out of this definition but "
                 "silently dropped on another; check it on every path or "
                 "cast to (void)"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// clouddb-determinism-taint.
// ---------------------------------------------------------------------------

namespace {

/// Wall-clock and entropy primitives that make a function nondeterministic.
/// Seeded std engines (mt19937, ...) are excluded: the syntactic
/// clouddb-random rule polices where engines live; here only genuine
/// environment reads taint. `call_only` names are common identifiers (time,
/// rand) that must look like a free-function call to count.
struct TaintSource {
  std::string_view name;
  bool call_only;
};

const std::vector<TaintSource>& TaintSources() {
  static const std::vector<TaintSource> kSources = {
      {"system_clock", false},   {"steady_clock", false},
      {"high_resolution_clock", false}, {"file_clock", false},
      {"utc_clock", false},      {"tai_clock", false},
      {"gps_clock", false},      {"gettimeofday", false},
      {"clock_gettime", false},  {"timespec_get", false},
      {"localtime", false},      {"localtime_r", false},
      {"gmtime", false},         {"gmtime_r", false},
      {"mktime", false},         {"time", true},
      {"random_device", false},  {"rand", true},
      {"srand", true},           {"rand_r", true},
      {"random", true},          {"drand48", false},
      {"erand48", false},        {"lrand48", false},
      {"nrand48", false},        {"mrand48", false},
      {"jrand48", false},        {"random_shuffle", false},
  };
  return kSources;
}

/// Files sanctioned to touch the primitives directly: the seeded RNG module
/// and the sweep harness (mirrors the syntactic rules' exemptions). Calls
/// *from* these files are not reported; functions *defined* in them still
/// taint their callers.
bool TaintExemptFile(const std::string& rel) {
  return StartsWith(rel, "src/common/rng") ||
         StartsWith(rel, "src/harness/sweep");
}

/// The primitive directly used in [begin, end), or "" when none.
std::string DirectSourceIn(const std::vector<Token>& t, size_t begin,
                           size_t end) {
  for (size_t j = begin; j < end; ++j) {
    if (!t[j].ident) continue;
    for (const TaintSource& src : TaintSources()) {
      if (t[j].text != src.name) continue;
      if (src.call_only) {
        if (j + 1 >= t.size() || t[j + 1].text != "(") break;
        if (j > 0) {
          const Token& p = t[j - 1];
          if (p.text == "." || p.text == "->") break;  // member call
          if (p.ident) {
            // `long time(...)` declares; `return time(...)` calls.
            static const std::set<std::string_view> kStmt = {
                "return", "co_return", "co_yield", "co_await",
                "throw",  "else",      "do",       "case"};
            if (!kStmt.count(p.text)) break;
          }
        }
      }
      return std::string(src.name);
    }
  }
  return "";
}

}  // namespace

void CheckDeterminismTaint(const InterprocContext& ctx,
                           std::vector<Diagnostic>* out) {
  const std::vector<AnalyzedFile>& files = *ctx.files;
  const CallGraph& cg = ctx.cg;
  const size_t n = cg.functions.size();

  // Direct sources, then the taint fixpoint over call edges with a witness
  // (the callee that carried the taint) for chain reconstruction.
  std::vector<std::string> direct(n);
  std::vector<bool> tainted(n, false);
  std::vector<int> witness(n, -1);
  for (size_t fi = 0; fi < n; ++fi) {
    const CgFunction& f = cg.functions[fi];
    const AnalyzedFile& af = files[static_cast<size_t>(f.file)];
    direct[fi] = DirectSourceIn(af.file->tokens, f.fn->body_begin + 1,
                                f.fn->body_end);
    tainted[fi] = !direct[fi].empty();
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t fi = 0; fi < n; ++fi) {
      if (tainted[fi]) continue;
      for (const CallSite& site : cg.functions[fi].calls) {
        for (int target : site.targets) {
          if (tainted[static_cast<size_t>(target)]) {
            tainted[fi] = true;
            witness[fi] = target;
            changed = true;
            break;
          }
        }
        if (tainted[fi]) break;
      }
    }
  }

  auto chain_of = [&](int id) {
    std::string chain = cg.functions[static_cast<size_t>(id)].Qualified();
    int cur = id;
    while (direct[static_cast<size_t>(cur)].empty() &&
           witness[static_cast<size_t>(cur)] >= 0) {
      cur = witness[static_cast<size_t>(cur)];
      chain += " -> " + cg.functions[static_cast<size_t>(cur)].Qualified();
    }
    return std::make_pair(chain, direct[static_cast<size_t>(cur)]);
  };

  std::set<std::string> seen;
  for (size_t fi = 0; fi < n; ++fi) {
    const CgFunction& f = cg.functions[fi];
    const AnalyzedFile& af = files[static_cast<size_t>(f.file)];
    if (TaintExemptFile(af.file->rel)) continue;
    for (const CallSite& site : f.calls) {
      int hit = -1;
      for (int target : site.targets) {
        if (tainted[static_cast<size_t>(target)]) {
          hit = target;
          break;
        }
      }
      if (hit < 0) continue;
      if (!seen.insert(af.file->rel + ":" + std::to_string(site.line)).second)
        continue;
      auto [chain, primitive] = chain_of(hit);
      out->push_back(
          {af.file->rel, site.line, kRuleDetTaint,
           "call to '" + site.name + "' reaches nondeterministic '" +
               primitive + "' (" + chain +
               "); derive time from sim::Simulation::Now() or draw from a "
               "seeded clouddb::Rng"});
    }
  }
}

}  // namespace clouddb::lint
