#!/usr/bin/env sh
# CI lint gate: runs the tree-wide clouddb_lint scan (machine-readable JSON,
# NOLINT forbidden) and, when clang-format is installed, a formatting check
# over every C++ file. Exits non-zero on any lint error or formatting diff.
#
# Usage: tools/ci_lint.sh [path-to-clouddb_lint] [repo-root]
# Defaults assume an in-tree build directory named "build".
set -eu

LINT_BIN="${1:-}"
ROOT="${2:-}"

if [ -z "$ROOT" ]; then
  ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
fi
if [ -z "$LINT_BIN" ]; then
  LINT_BIN="$ROOT/build/tools/lint/clouddb_lint"
fi
if [ ! -x "$LINT_BIN" ]; then
  echo "ci_lint: linter not found at $LINT_BIN (build the tree first)" >&2
  exit 2
fi

# The tree scan runs every rule family: the interprocedural passes
# (lock-order, use-after-move, status-path, determinism-taint) and the
# abstract-interpretation rules (bounds, div-zero, narrowing,
# codec-symmetry) all at error severity, under --forbid-nolint.
# --forbid-nolint fails only on *bare* suppressions: a
# `NOLINT(rule): rationale` comment is a justified exemption — the
# sanctioned escape for invariants outside the solver's domain — and is
# counted separately (`justified_suppressions` in the JSON). When a
# committed baseline exists, pre-existing warnings frozen there are
# dropped and only regressions fail; the baseline carries no
# abstract-interpretation findings (those are fixed or justified inline).
BASELINE_ARGS=""
if [ -f "$ROOT/tools/lint_baseline.txt" ]; then
  BASELINE_ARGS="--baseline $ROOT/tools/lint_baseline.txt"
  echo "ci_lint: using baseline $ROOT/tools/lint_baseline.txt"
fi

echo "ci_lint: clouddb_lint --root $ROOT --forbid-nolint --json $BASELINE_ARGS"
# shellcheck disable=SC2086  # BASELINE_ARGS is two words by construction
"$LINT_BIN" --root "$ROOT" --forbid-nolint --json $BASELINE_ARGS

# clang-format is optional in the build image; the lint gate must not fail
# on machines that do not ship it. When present, check — never rewrite.
if command -v clang-format >/dev/null 2>&1; then
  echo "ci_lint: clang-format --dry-run -Werror"
  # Same extension set clouddb_lint scans, minus lint fixtures (deliberately
  # odd formatting lives there).
  find "$ROOT/src" "$ROOT/tools" "$ROOT/bench" "$ROOT/tests" "$ROOT/examples" \
      -path '*/fixtures/*' -prune -o \
      \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) -print |
    LC_ALL=C sort |
    xargs clang-format --dry-run -Werror
else
  echo "ci_lint: clang-format not installed, skipping format check"
fi

echo "ci_lint: OK"
