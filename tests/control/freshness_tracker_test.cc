// FreshnessTracker tests: observed staleness measured from the heartbeat
// table of a real replicating cluster (no synthetic probe here — this is
// the sensor end of the control loop).

#include "control/freshness_tracker.h"

#include <gtest/gtest.h>

#include <memory>

#include "cloud/cloud_provider.h"
#include "common/time_types.h"
#include "repl/heartbeat.h"
#include "repl/replication_cluster.h"
#include "sim/simulation.h"

namespace clouddb::control {
namespace {

class FreshnessTrackerTest : public ::testing::Test {
 protected:
  FreshnessTrackerTest() {
    cloud_options_.latency_jitter_sigma = 0.0;
    cloud_options_.cpu_speed_cov = 0.0;
    cloud_options_.max_initial_clock_offset = 0;
    cloud_options_.max_clock_drift_ppm = 0.0;
  }

  void Deploy(int slaves) {
    provider_ = std::make_unique<cloud::CloudProvider>(&sim_, cloud_options_,
                                                       1);
    repl::ClusterConfig config;
    config.num_slaves = slaves;
    cluster_ =
        std::make_unique<repl::ReplicationCluster>(provider_.get(), config);
    repl::HeartbeatOptions heartbeat_options;
    heartbeat_options.period = Millis(100);
    heartbeat_ = std::make_unique<repl::HeartbeatPlugin>(
        &sim_, cluster_->master(), heartbeat_options);
    ASSERT_TRUE(heartbeat_->CreateTable().ok());
    heartbeat_->Start();
    FreshnessTrackerOptions tracker_options;
    tracker_options.poll_period = Millis(100);
    tracker_ = std::make_unique<FreshnessTracker>(&sim_, cluster_.get(),
                                                  tracker_options);
  }

  sim::Simulation sim_;
  cloud::CloudOptions cloud_options_;
  std::unique_ptr<cloud::CloudProvider> provider_;
  std::unique_ptr<repl::ReplicationCluster> cluster_;
  std::unique_ptr<repl::HeartbeatPlugin> heartbeat_;
  std::unique_ptr<FreshnessTracker> tracker_;
};

TEST_F(FreshnessTrackerTest, UnknownBeforeAnyHeartbeat) {
  Deploy(1);
  tracker_->Poll();  // heartbeat table exists but holds no rows yet
  EXPECT_LT(tracker_->StalenessMs(0), 0.0);
  EXPECT_LT(tracker_->Probe()(0), 0.0);
}

TEST_F(FreshnessTrackerTest, HealthyReplicaMeasuresNearZero) {
  Deploy(1);
  tracker_->Start();
  sim_.RunUntil(Seconds(10));
  tracker_->Stop();
  heartbeat_->Stop();
  sim_.Run();
  double staleness = tracker_->StalenessMs(0);
  // An idle replica applies each heartbeat as it arrives: observed staleness
  // stays within one heartbeat period of zero.
  EXPECT_GE(staleness, 0.0);
  EXPECT_LE(staleness, 200.0);
  // The probe and the slave-registry metric expose the same sample.
  EXPECT_EQ(tracker_->Probe()(0), staleness);
  EXPECT_EQ(cluster_->slave(0)->metrics().ValueOf(
                "repl.slave.observed_staleness_ms"),
            staleness);
}

TEST_F(FreshnessTrackerTest, DetachedReplicaFallsBehind) {
  Deploy(2);
  tracker_->Start();
  sim_.RunUntil(Seconds(2));
  // Retire slave 1 mid-run: it stops applying heartbeats; slave 0 stays
  // current. A retired replica reads as unknown (it is out of the rotation),
  // while re-activating it must resume measurement.
  ASSERT_TRUE(cluster_->RetireSlave(1).ok());
  sim_.RunUntil(Seconds(5));
  EXPECT_GE(tracker_->StalenessMs(0), 0.0);
  EXPECT_LE(tracker_->StalenessMs(0), 200.0);
  EXPECT_LT(tracker_->StalenessMs(1), 0.0);
  ASSERT_TRUE(cluster_->ReviveSlave(1).ok());
  sim_.RunUntil(Seconds(7));  // at least one poll after the revival
  EXPECT_GE(tracker_->StalenessMs(1), 0.0);
  tracker_->Stop();
  heartbeat_->Stop();
  sim_.Run();
}

TEST_F(FreshnessTrackerTest, PollCountIsMetered) {
  Deploy(1);
  tracker_->Poll();
  tracker_->Poll();
  EXPECT_EQ(tracker_->polls(), 2);
  EXPECT_EQ(tracker_->metrics().ValueOf("control.freshness.polls"), 2.0);
}

}  // namespace
}  // namespace clouddb::control
