// Freshness-SLA routing edge cases: bounded reads against a proxy whose
// staleness signal is a test-controlled probe (per-slave ms, negative =
// unknown) — the same shape control::FreshnessTracker::Probe() produces.

#include "client/rw_split_proxy.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cloud/cloud_provider.h"
#include "cloud/instance.h"
#include "cloud/placement.h"
#include "common/result.h"
#include "common/time_types.h"
#include "db/database.h"
#include "repl/replication_cluster.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"
#include "metrics/metric_registry.h"

namespace clouddb::client {
namespace {

class FreshnessRoutingTest : public ::testing::Test {
 protected:
  FreshnessRoutingTest() {
    options_.latency_jitter_sigma = 0.0;
    options_.cpu_speed_cov = 0.0;
    options_.max_initial_clock_offset = 0;
    options_.max_clock_drift_ppm = 0.0;
  }

  void MakeDeployment(int slaves) {
    provider_ = std::make_unique<cloud::CloudProvider>(&sim_, options_, 1);
    repl::ClusterConfig config;
    config.num_slaves = slaves;
    cluster_ =
        std::make_unique<repl::ReplicationCluster>(provider_.get(), config);
    app_ = provider_->Launch("app", cloud::InstanceType::kLarge,
                             cloud::MasterPlacement());
    ProxyOptions proxy_options;
    proxy_options.policy = BalancePolicy::kFreshnessAware;
    std::vector<repl::SlaveNode*> slave_ptrs;
    for (int i = 0; i < slaves; ++i) slave_ptrs.push_back(cluster_->slave(i));
    proxy_ = std::make_unique<ReadWriteSplitProxy>(
        &sim_, &provider_->network(), app_->node_id(), cluster_->master(),
        slave_ptrs, proxy_options);
    staleness_ms_.assign(static_cast<size_t>(slaves), -1.0);
    proxy_->SetStalenessProbe([this](int i) {
      return staleness_ms_[static_cast<size_t>(i)];
    });
    ASSERT_TRUE(
        cluster_->ExecuteEverywhereDirect("CREATE TABLE t (a INT)").ok());
  }

  int64_t Metric(const char* name) const {
    const metrics::Counter* c = proxy_->metrics().FindCounter(name);
    return c == nullptr ? -1 : c->value();
  }

  void BoundedRead(SimDuration bound, int* ok_count) {
    ReadOptions read_options;
    read_options.max_staleness = bound;
    proxy_->Execute("SELECT COUNT(*) FROM t", /*is_read=*/true, Millis(1),
                    read_options, [ok_count](Result<db::ExecResult> r) {
                      *ok_count += r.ok();
                    });
  }

  sim::Simulation sim_;
  cloud::CloudOptions options_;
  std::unique_ptr<cloud::CloudProvider> provider_;
  std::unique_ptr<repl::ReplicationCluster> cluster_;
  cloud::Instance* app_ = nullptr;
  std::unique_ptr<ReadWriteSplitProxy> proxy_;
  std::vector<double> staleness_ms_;
};

TEST_F(FreshnessRoutingTest, InBoundSlaveServesBoundedReads) {
  MakeDeployment(2);
  staleness_ms_ = {40.0, 40.0};
  int ok = 0;
  for (int i = 0; i < 6; ++i) BoundedRead(Millis(100), &ok);
  sim_.Run();
  EXPECT_EQ(ok, 6);
  EXPECT_EQ(proxy_->reads_routed(0) + proxy_->reads_routed(1), 6);
  EXPECT_EQ(Metric("proxy.reads.bounded"), 6);
  EXPECT_EQ(Metric("proxy.reads.bounded_to_slave"), 6);
  EXPECT_EQ(Metric("proxy.reads.master_fallback"), 0);
}

TEST_F(FreshnessRoutingTest, AllSlavesOverBoundFallsBackToMaster) {
  MakeDeployment(2);
  staleness_ms_ = {900.0, 1500.0};
  int ok = 0;
  for (int i = 0; i < 4; ++i) BoundedRead(Millis(100), &ok);
  sim_.Run();
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(proxy_->total_reads_routed(), 0);
  EXPECT_EQ(cluster_->master()->queries_completed(), 4);
  EXPECT_EQ(Metric("proxy.reads.master_fallback"), 4);
  EXPECT_EQ(Metric("proxy.reads.bounded_to_slave"), 0);
}

TEST_F(FreshnessRoutingTest, OnlyInBoundSlavesAreEligible) {
  MakeDeployment(2);
  staleness_ms_ = {2000.0, 10.0};  // slave 0 lagging badly, slave 1 fresh
  int ok = 0;
  for (int i = 0; i < 6; ++i) BoundedRead(Millis(100), &ok);
  sim_.Run();
  EXPECT_EQ(ok, 6);
  EXPECT_EQ(proxy_->reads_routed(0), 0);
  EXPECT_EQ(proxy_->reads_routed(1), 6);
}

TEST_F(FreshnessRoutingTest, BoundZeroAlwaysGoesToMaster) {
  MakeDeployment(2);
  staleness_ms_ = {0.0, 0.0};  // even "zero observed staleness" is not exact
  int ok = 0;
  for (int i = 0; i < 3; ++i) BoundedRead(SimDuration{0}, &ok);
  sim_.Run();
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(proxy_->total_reads_routed(), 0);
  EXPECT_EQ(cluster_->master()->queries_completed(), 3);
}

TEST_F(FreshnessRoutingTest, UnknownStalenessCountsAsOverBound) {
  MakeDeployment(1);
  staleness_ms_ = {-1.0};  // probe has no data yet
  int ok = 0;
  BoundedRead(Millis(100), &ok);
  sim_.Run();
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(proxy_->total_reads_routed(), 0);
  EXPECT_EQ(Metric("proxy.reads.master_fallback"), 1);
}

TEST_F(FreshnessRoutingTest, UnboundedReadsIgnoreStaleness) {
  MakeDeployment(2);
  staleness_ms_ = {5000.0, 5000.0};  // hopelessly stale — and irrelevant
  int ok = 0;
  for (int i = 0; i < 4; ++i) BoundedRead(kNoStalenessBound, &ok);
  sim_.Run();
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(proxy_->total_reads_routed(), 4);
}

TEST_F(FreshnessRoutingTest, SlavePartitionedMidQueryRetriesOnMaster) {
  MakeDeployment(1);
  staleness_ms_ = {10.0};                 // probe says fresh...
  cluster_->slave(0)->set_online(false);  // ...but the node is unreachable
  int ok = 0;
  BoundedRead(Millis(100), &ok);
  sim_.Run();
  // The bounded read was routed to the slave, failed Unavailable, and was
  // transparently retried on the master — the caller sees one success.
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(proxy_->reads_routed(0), 1);
  EXPECT_EQ(cluster_->master()->queries_completed(), 1);
  EXPECT_EQ(Metric("proxy.reads.retries"), 1);
}

TEST_F(FreshnessRoutingTest, SlaViolationIsCountedAtCompletion) {
  MakeDeployment(1);
  staleness_ms_ = {10.0};
  int ok = 0;
  BoundedRead(Millis(100), &ok);
  // While the read is in flight the replica falls behind; the completion-time
  // re-probe must count the violation.
  staleness_ms_ = {400.0};
  sim_.Run();
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(Metric("proxy.sla.checked"), 1);
  EXPECT_EQ(Metric("proxy.sla.violations"), 1);
}

TEST_F(FreshnessRoutingTest, ReactivatedSlaveRejoinsBoundedRotation) {
  MakeDeployment(2);
  staleness_ms_ = {5.0, 5.0};
  proxy_->DeactivateSlave(0);
  int ok = 0;
  for (int i = 0; i < 4; ++i) BoundedRead(Millis(100), &ok);
  sim_.Run();
  EXPECT_EQ(proxy_->reads_routed(0), 0);
  EXPECT_EQ(proxy_->reads_routed(1), 4);
  proxy_->ReactivateSlave(0);
  for (int i = 0; i < 4; ++i) BoundedRead(Millis(100), &ok);
  sim_.Run();
  EXPECT_EQ(ok, 8);
  EXPECT_GT(proxy_->reads_routed(0), 0);
}

}  // namespace
}  // namespace clouddb::client
