// Elasticity controller unit tests: ticks are driven by hand with a
// test-controlled staleness signal, so every hysteresis/cooldown transition
// is observable one decision at a time. (The controller's saturation signal
// reads real CPU busy-time deltas; with no load the tier is idle, which is
// exactly the "lag is the only evidence" regime these tests want.)

#include "control/elasticity_controller.h"

#include <gtest/gtest.h>

#include <memory>

#include "cloud/cloud_provider.h"
#include "repl/replication_cluster.h"
#include "sim/simulation.h"

namespace clouddb::control {
namespace {

class ElasticityControllerTest : public ::testing::Test {
 protected:
  ElasticityControllerTest() {
    cloud_options_.latency_jitter_sigma = 0.0;
    cloud_options_.cpu_speed_cov = 0.0;
    cloud_options_.max_initial_clock_offset = 0;
    cloud_options_.max_clock_drift_ppm = 0.0;
  }

  void Deploy(int slaves, ElasticityControllerOptions options) {
    provider_ = std::make_unique<cloud::CloudProvider>(&sim_, cloud_options_,
                                                       1);
    repl::ClusterConfig config;
    config.num_slaves = slaves;
    cluster_ =
        std::make_unique<repl::ReplicationCluster>(provider_.get(), config);
    ASSERT_TRUE(
        cluster_->ExecuteEverywhereDirect("CREATE TABLE t (a INT)").ok());
    controller_ = std::make_unique<ElasticityController>(
        &sim_, cluster_.get(), /*proxy=*/nullptr,
        [this](int) { return staleness_ms_; }, options);
  }

  sim::Simulation sim_;
  cloud::CloudOptions cloud_options_;
  std::unique_ptr<cloud::CloudProvider> provider_;
  std::unique_ptr<repl::ReplicationCluster> cluster_;
  std::unique_ptr<ElasticityController> controller_;
  double staleness_ms_ = -1.0;
};

ElasticityControllerOptions FastOptions() {
  ElasticityControllerOptions options;
  options.sustain_ticks = 3;
  options.cooldown_ticks = 2;
  options.min_active_slaves = 1;
  options.max_active_slaves = 3;
  return options;
}

TEST_F(ElasticityControllerTest, SustainedLagScalesOutAfterSustainTicks) {
  Deploy(1, FastOptions());
  staleness_ms_ = 1000.0;  // well over scale_out_staleness_ms (500)
  controller_->Tick();
  controller_->Tick();
  EXPECT_EQ(controller_->events().size(), 0u);  // streak not yet sustained
  controller_->Tick();
  ASSERT_EQ(controller_->events().size(), 1u);
  EXPECT_EQ(controller_->events()[0].action, ScalingAction::kScaleOut);
  EXPECT_EQ(cluster_->num_active_slaves(), 2);
  EXPECT_EQ(cluster_->num_slaves(), 2);  // fresh launch: no retiree to revive
}

TEST_F(ElasticityControllerTest, OneTickSpikeDoesNotScale) {
  Deploy(1, FastOptions());
  staleness_ms_ = 1000.0;
  controller_->Tick();  // spike
  staleness_ms_ = 200.0;  // back inside the hysteresis band
  for (int i = 0; i < 10; ++i) controller_->Tick();
  EXPECT_EQ(controller_->events().size(), 0u);
  EXPECT_EQ(cluster_->num_active_slaves(), 1);
}

TEST_F(ElasticityControllerTest, CooldownSeparatesConsecutiveScaleOuts) {
  ElasticityControllerOptions options = FastOptions();
  options.sustain_ticks = 1;
  options.cooldown_ticks = 3;
  Deploy(1, options);
  staleness_ms_ = 1000.0;
  controller_->Tick();  // immediate scale-out (sustain 1)
  ASSERT_EQ(controller_->events().size(), 1u);
  controller_->Tick();  // cooldown 3
  controller_->Tick();  // cooldown 2
  controller_->Tick();  // cooldown 1
  EXPECT_EQ(controller_->events().size(), 1u);  // held despite high lag
  controller_->Tick();  // first post-cooldown evidence tick
  ASSERT_EQ(controller_->events().size(), 2u);
  EXPECT_EQ(cluster_->num_active_slaves(), 3);
}

TEST_F(ElasticityControllerTest, MaxActiveSlavesClampsScaleOut) {
  ElasticityControllerOptions options = FastOptions();
  options.sustain_ticks = 1;
  options.max_active_slaves = 1;
  Deploy(1, options);
  staleness_ms_ = 5000.0;
  for (int i = 0; i < 10; ++i) controller_->Tick();
  EXPECT_EQ(controller_->events().size(), 0u);
  EXPECT_EQ(cluster_->num_active_slaves(), 1);
}

TEST_F(ElasticityControllerTest, QuietTierScalesInToMinAndHolds) {
  ElasticityControllerOptions options = FastOptions();
  options.sustain_ticks = 2;
  options.cooldown_ticks = 0;
  Deploy(3, options);
  staleness_ms_ = 5.0;  // fresh and idle
  for (int i = 0; i < 10; ++i) controller_->Tick();
  // Retired from the top down, one per sustained streak, never below min.
  EXPECT_EQ(cluster_->num_active_slaves(), 1);
  ASSERT_EQ(controller_->events().size(), 2u);
  EXPECT_EQ(controller_->events()[0].action, ScalingAction::kScaleIn);
  EXPECT_TRUE(cluster_->IsSlaveRetired(2));
  EXPECT_TRUE(cluster_->IsSlaveRetired(1));
  EXPECT_FALSE(cluster_->IsSlaveRetired(0));
}

TEST_F(ElasticityControllerTest, ScaleOutPrefersRevivingARetiredSlave) {
  ElasticityControllerOptions options = FastOptions();
  options.sustain_ticks = 1;
  options.cooldown_ticks = 0;
  Deploy(2, options);
  staleness_ms_ = 5.0;
  controller_->Tick();  // scale in: retires slave 1
  ASSERT_TRUE(cluster_->IsSlaveRetired(1));
  staleness_ms_ = 1000.0;
  controller_->Tick();  // scale out: revives slave 1, no new launch
  EXPECT_FALSE(cluster_->IsSlaveRetired(1));
  EXPECT_EQ(cluster_->num_slaves(), 2);
  EXPECT_EQ(cluster_->num_active_slaves(), 2);
  ASSERT_EQ(controller_->events().size(), 2u);
  EXPECT_EQ(controller_->events()[1].action, ScalingAction::kScaleOut);
}

TEST_F(ElasticityControllerTest, MetricsMirrorDecisions) {
  ElasticityControllerOptions options = FastOptions();
  options.sustain_ticks = 1;
  options.cooldown_ticks = 0;
  Deploy(1, options);
  staleness_ms_ = 1000.0;
  controller_->Tick();
  EXPECT_EQ(controller_->metrics().ValueOf("control.ticks"), 1.0);
  EXPECT_EQ(controller_->metrics().ValueOf("control.scale_out.total"), 1.0);
  EXPECT_EQ(controller_->metrics().ValueOf("control.active_slaves"), 2.0);
  EXPECT_EQ(controller_->metrics().ValueOf("control.signal.staleness_ms"),
            1000.0);
}

}  // namespace
}  // namespace clouddb::control
