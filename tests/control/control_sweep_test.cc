// End-to-end control-loop tests: a short RunControlExperiment exercising the
// full spine (heartbeats -> tracker -> bounded routing -> controller), and
// the sweep determinism contract — with the controller in the loop, the
// rendered tables must be byte-identical for any worker count.

#include "harness/sweep_control.h"

#include <gtest/gtest.h>

#include "client/rw_split_proxy.h"
#include "common/time_types.h"
#include "harness/control_experiment.h"

namespace clouddb::harness {
namespace {

ControlExperimentConfig ShortConfig() {
  ControlExperimentConfig config;
  config.staleness_bound = Millis(500);
  config.base_users = 4;
  config.surge_users = 12;
  config.warmup = Seconds(10);
  config.measure = Seconds(90);
  config.surge_start = Seconds(20);
  config.surge_duration = Seconds(30);
  config.data_scale = 20;
  config.initial_slaves = 1;
  config.controller.max_active_slaves = 3;
  config.controller.sustain_ticks = 2;
  config.controller.cooldown_ticks = 3;
  config.seed = 42;
  return config;
}

TEST(ControlExperimentTest, ClosesTheLoopOnAShortRun) {
  auto outcome = RunControlExperiment(ShortConfig());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const ControlExperimentResult& r = *outcome;
  EXPECT_GT(r.completed_ops, 0);
  EXPECT_EQ(r.failed_ops, 0);
  EXPECT_GT(r.bounded_reads, 0);
  // Every bounded read either went to an in-bound replica or fell back.
  EXPECT_EQ(r.bounded_to_slave + r.master_fallbacks + r.read_retries,
            r.bounded_reads);
  EXPECT_GE(r.achieved_freshness_pct, 0.0);
  EXPECT_LE(r.achieved_freshness_pct, 100.0);
  // The merged cluster table carries spine metrics from every tier.
  EXPECT_NE(r.metrics_table.find("proxy.reads.bounded"), std::string::npos);
  EXPECT_NE(r.metrics_table.find("control.ticks"), std::string::npos);
  EXPECT_NE(r.metrics_table.find("repl.slave.applied_index"),
            std::string::npos);
}

TEST(ControlExperimentTest, IdenticalSeedsReproduceByteIdenticalMetrics) {
  auto a = RunControlExperiment(ShortConfig());
  auto b = RunControlExperiment(ShortConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->metrics_table, b->metrics_table);
  EXPECT_EQ(a->TimelineString(), b->TimelineString());
  EXPECT_EQ(a->completed_ops, b->completed_ops);
  EXPECT_EQ(a->sla_violations, b->sla_violations);
}

TEST(ControlSweepTest, ParallelJobsAreByteIdenticalToSerial) {
  ControlSweepConfig sweep;
  sweep.base = ShortConfig();
  sweep.base.measure = Seconds(60);
  sweep.staleness_bounds = {Millis(250), client::kNoStalenessBound};
  sweep.user_counts = {2, 4};
  sweep.surge_factor = 2.0;

  sweep.jobs = 1;
  auto serial = RunControlSweep(sweep);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  sweep.jobs = 4;
  auto parallel = RunControlSweep(sweep);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  EXPECT_EQ(
      serial->FreshnessTable(sweep.staleness_bounds, sweep.user_counts)
          .ToAscii(),
      parallel->FreshnessTable(sweep.staleness_bounds, sweep.user_counts)
          .ToAscii());
  EXPECT_EQ(
      serial->OffloadTable(sweep.staleness_bounds, sweep.user_counts)
          .ToAscii(),
      parallel->OffloadTable(sweep.staleness_bounds, sweep.user_counts)
          .ToAscii());
  EXPECT_EQ(
      serial->ReplicaTable(sweep.staleness_bounds, sweep.user_counts)
          .ToAscii(),
      parallel->ReplicaTable(sweep.staleness_bounds, sweep.user_counts)
          .ToAscii());
  ASSERT_EQ(serial->cells().size(), parallel->cells().size());
  for (size_t i = 0; i < serial->cells().size(); ++i) {
    EXPECT_EQ(serial->cells()[i].result.metrics_table,
              parallel->cells()[i].result.metrics_table);
  }
}

TEST(ControlSweepTest, GridIsCompleteAndOrdered) {
  ControlSweepConfig sweep;
  sweep.base = ShortConfig();
  sweep.base.measure = Seconds(30);
  sweep.base.enable_controller = false;  // routing-only cells run faster
  sweep.staleness_bounds = {SimDuration{0}, Millis(500)};
  sweep.user_counts = {2};
  auto result = RunControlSweep(sweep);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->cells().size(), 2u);
  EXPECT_EQ(result->cells()[0].bound, SimDuration{0});
  EXPECT_EQ(result->cells()[1].bound, Millis(500));
  ASSERT_NE(result->Find(SimDuration{0}, 2), nullptr);
  // Bound 0 never trusts a replica: full master fallback.
  EXPECT_EQ(result->Find(SimDuration{0}, 2)->result.bounded_to_slave, 0);
  EXPECT_EQ(result->MasterOffload(SimDuration{0}, 2), 0.0);
}

}  // namespace
}  // namespace clouddb::harness
