// Negative fixture: src/common/rng is the sanctioned home of randomness, so
// clouddb-random must not fire here.
#include <cstdlib>
namespace clouddb {
int Entropy() { return rand(); }
}  // namespace clouddb
