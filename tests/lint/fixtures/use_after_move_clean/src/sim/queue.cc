namespace demo {

struct Callback {
  void Run();
  void reset();
};

Callback MakeCb();
void Sink(Callback cb);
void Fill(Callback* cb);

void Reassign() {
  Callback cb = MakeCb();
  Sink(std::move(cb));
  cb = MakeCb();
  cb.Run();
}

void ResetClears() {
  Callback cb = MakeCb();
  Sink(std::move(cb));
  cb.reset();
  cb.Run();
}

void DisjointBranches(int flaky) {
  Callback cb = MakeCb();
  if (flaky > 0) {
    Sink(std::move(cb));
  } else {
    cb.Run();
  }
}

void OutParamRefill() {
  Callback cb = MakeCb();
  Sink(std::move(cb));
  Fill(&cb);
  cb.Run();
}

void LoopReinit(int n) {
  for (int i = 0; i < n; i = i + 1) {
    Callback cb = MakeCb();
    Sink(std::move(cb));
  }
}

}  // namespace demo
