#include "db/table.h"
#include "db/writeset.h"

int ApplyRowImages(int n) { return n; }
