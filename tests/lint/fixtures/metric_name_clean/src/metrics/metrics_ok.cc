// Fixture: every registration here is well-formed; the rule must stay
// quiet. Also exercises the shapes the scanner must *not* treat as
// registrations: method definitions (parameter list after the paren),
// wrapped literals, computed names, and longer identifiers.

Counter* MetricRegistry::AddCounter(const std::string& name) {
  return nullptr;
}

void RegisterAll(MetricRegistry& m) {
  m.AddCounter("node.ops.total");
  m.AddGauge("node.queue.depth");
  m.AddProbe(
      "node.relay.backlog", [] { return 0.0; });
  m.AddEwma("node.apply_delay_ms");
  m.AddHistogram("node.latency_us", 100.0, 2.0, 24);
  m.AddCounter(StrFormat("node.backend_%d.total", 7));
  MyAddCounter("Not A Metric");
}
