#include "db/engine.h"

namespace demo {

void Log(const Status& s);

// Every path out of the definition reads the status.
int AllPathsCheck(int row, int verbose) {
  Status st = Apply(row);
  if (verbose > 0) {
    Log(st);
    return 1;
  }
  if (!st.ok()) {
    return -1;
  }
  return 0;
}

// An explicit (void) cast is a deliberate discard, not a silent one.
int VoidCast(int row) {
  Status st = Apply(row);
  (void)st;
  return 0;
}

// Overwriting after checking is the normal reuse of a status local.
int CheckedThenOverwritten(int row) {
  Status st = Apply(row);
  if (!st.ok()) {
    return -1;
  }
  st = Validate(row);
  if (!st.ok()) {
    return 1;
  }
  return 0;
}

}  // namespace demo
