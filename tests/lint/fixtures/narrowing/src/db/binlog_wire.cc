#include <cstddef>
#include <cstdint>

// Unwitnessed truncation: nothing bounds n below 2^32.
uint32_t CountField(size_t n) {
  return static_cast<uint32_t>(n);
}
