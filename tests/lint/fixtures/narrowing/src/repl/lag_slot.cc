#include <cstdint>

// Implicit narrowing initialization: a 64-bit LSN into an int slot. The
// sign guard bounds the operand below but not above, so the proof fails.
int ToSlot(int64_t lsn) {
  if (lsn < 0) return -1;
  int slot = lsn;
  return slot;
}
