namespace demo {

struct LockManager {
  bool AcquireRead(const char* key);
  bool AcquireWrite(const char* key);
  void ReleaseAll(int txn);
};

class TxnEngine {
 public:
  // Acquires in the tree's global order: "events" before "users".
  int Begin(int txn) {
    locks_.AcquireWrite("events");
    locks_.AcquireWrite("users");
    locks_.ReleaseAll(txn);
    return 0;
  }

 private:
  LockManager locks_;
};

}  // namespace demo
