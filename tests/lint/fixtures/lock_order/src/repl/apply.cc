namespace demo {

struct ReplLocks {
  bool AcquireRead(const char* key);
  bool AcquireWrite(const char* key);
  void ReleaseAll(int txn);
};

struct ReplState {
  ReplLocks locks;
};

// The acquisition footprint of this helper is what makes the
// "users" -> "events" edge below interprocedural.
void LockEvents(ReplState* st) { st->locks.AcquireWrite("events"); }

int ApplyBackward(ReplState* st, int txn) {
  st->locks.AcquireWrite("users");
  LockEvents(st);
  st->locks.ReleaseAll(txn);
  return 0;
}

}  // namespace demo
