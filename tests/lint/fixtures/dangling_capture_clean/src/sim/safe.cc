#include "sim/kernel.h"

namespace demo {

// Safe harbor 1: the owning class holds a cancelling Timer member.
class TimerOwner {
 public:
  void Arm() {
    sim_->ScheduleAfter(10, [this] { Tick(); });
  }

  void Tick() {}

 private:
  Kernel* sim_;
  Timer timer_;
};

// Safe harbor 2: the destructor cancels the pending handle directly.
class DtorCancels {
 public:
  ~DtorCancels() { handle_.Cancel(); }

  void Arm() {
    handle_ = sim_->ScheduleAfter(10, [this] { Tick(); });
  }

  void Tick() {}

 private:
  Kernel* sim_;
  EventHandle handle_;
};

// Safe harbor 3: the destructor cancels through a same-class helper.
class HelperCancels {
 public:
  ~HelperCancels() { Shutdown(); }

  void Arm() {
    handle_ = sim_->ScheduleAfter(10, [this] { Tick(); });
  }

  void Shutdown() { handle_.Cancel(); }
  void Tick() {}

 private:
  Kernel* sim_;
  EventHandle handle_;
};

// By-value capture of plain data never dangles.
class ValueCapture {
 public:
  void Arm(int delta) {
    sim_->ScheduleAfter(10, [delta] { Consume(delta); });
  }

 private:
  Kernel* sim_;
};

}  // namespace demo
