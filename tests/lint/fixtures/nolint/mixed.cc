long A() { return time(nullptr); }  // NOLINT
long B() { return time(nullptr); }  // NOLINT(clouddb-wallclock)
// NOLINTNEXTLINE(clouddb-wallclock)
long C() { return time(nullptr); }
long D() { return time(nullptr); }  // NOLINT(clouddb-random) -- wrong rule
long E() { return time(nullptr); }
