// Deliberate bounds violations: the off-by-one loop guard, a constant
// negative index, and a compaction write with no provable bound.
void FillInclusive(int* out, int n) {
  for (int i = 0; i <= n; ++i) {
    out[i] = i;
  }
}

int FirstBeforeStart(const int* vals, int n) {
  int j = -1;
  return vals[j];
}
