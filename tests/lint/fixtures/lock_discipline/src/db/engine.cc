#include "db/lock_manager.h"

namespace demo {

struct LockManager {
  bool AcquireRead(const char* key);
  bool AcquireWrite(const char* key);
  void ReleaseAll(int txn);
};

class Engine {
 public:
  int LeakOnError(int txn) {
    locks_.AcquireWrite("accounts");
    if (txn < 0) {
      return -1;
    }
    locks_.ReleaseAll(txn);
    return 0;
  }

  void NeverReleases() {
    locks_.AcquireRead("branches");
  }

  int GrowAfterShrink(int txn) {
    locks_.AcquireWrite("accounts");
    locks_.ReleaseAll(txn);
    locks_.AcquireWrite("tellers");
    locks_.ReleaseAll(txn);
    return 0;
  }

  int OutOfOrder(int txn) {
    locks_.AcquireWrite("tellers");
    locks_.AcquireRead("accounts");
    locks_.ReleaseAll(txn);
    return 0;
  }

 private:
  LockManager locks_;
};

}  // namespace demo
