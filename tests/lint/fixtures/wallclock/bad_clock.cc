// Fixture: wall-clock reads, one per line (lines 4-7 must each fire).
#include <chrono>

long Now1() { return std::chrono::system_clock::now().time_since_epoch().count(); }
long Now2() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
long Now3() { return time(nullptr); }
long Now4() { gettimeofday(nullptr, nullptr); return 0; }
