#pragma once
namespace eng {
class Status {};
template <typename T> class Result {};
Status Flush();
Result<int> ReadRow(int id);
void Reset();
Status Reset();
}  // namespace eng
