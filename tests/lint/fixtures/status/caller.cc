#include "engine.h"
void Run() {
  eng::Flush();
  if (true) eng::Flush();
  (void)eng::Flush();
  auto r = eng::ReadRow(1);
  eng::ReadRow(2);
  eng::Reset();
  (void)r;
}
eng::Status Again() { return eng::Flush(); }
bool Chain() { return true; }
