#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

struct Row {
  std::vector<uint64_t> vals;
};

struct Reader {
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
};

void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);

// Helper pair: the Count suffix pairs AppendCount with ReadCount, and both
// bodies ship exactly one U32.
void AppendCount(std::string* out, size_t n) {
  AppendU32(out, static_cast<uint32_t>(n));
}

bool ReadCount(Reader* r, uint32_t* v) {
  return r->ReadU32(v);
}

void SerializeRow(std::string* out, const Row& row) {
  AppendCount(out, row.vals.size());
  for (size_t i = 0; i < row.vals.size(); ++i) {
    AppendU64(out, row.vals[i]);
  }
}

bool DeserializeRow(Reader* r, Row* row) {
  uint32_t n = 0;
  ReadCount(r, &n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t v = 0;
    r->ReadU64(&v);
    row->vals.push_back(v);
  }
  return true;
}
