#pragma once
#include "db/b.h"
struct A {
  B* b;
};
