#pragma once
#include "db/a.h"
struct B {
  A* a;
};
