#include <cstdint>
#include <string>

struct Header {
  uint32_t id = 0;
  uint64_t ts = 0;
};

struct Reader {
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
};

void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);

void SerializeHeader(std::string* out, const Header& h) {
  AppendU32(out, h.id);
  AppendU64(out, h.ts);
}

// BUG: the writer shipped ts as a U64; this reader consumes a U32.
bool DeserializeHeader(Reader* r, Header* h) {
  uint32_t ts_lo = 0;
  r->ReadU32(&h->id);
  r->ReadU32(&ts_lo);
  h->ts = ts_lo;
  return true;
}
