#include "sim/kernel.h"

namespace demo {

class Poller {
 public:
  explicit Poller(Kernel* sim) : sim_(sim) {}

  void Arm() {
    sim_->ScheduleAfter(10, [this] { Fire(); });
  }

  void ArmCounter(int* total) {
    int& hits = *total;
    sim_->ScheduleAt(20, [&hits] { ++hits; });
  }

  void ArmRows(Table* rows) {
    sim_->ScheduleAt(30, [rows] { rows->Compact(); });
  }

  void Fire() {}

 private:
  Kernel* sim_;
};

}  // namespace demo
