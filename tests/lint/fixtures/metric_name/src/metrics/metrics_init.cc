// Fixture: invalid and duplicate metric registrations in a production-path
// file. Duplicate literals are flagged under src/ only; tests may reuse
// names across short-lived registries (see the sibling tests/ fixture).

void RegisterAll(MetricRegistry& m) {
  m.AddCounter("node.ops.total");
  m.AddCounter("Node.Ops.Total");
  m.AddGauge("depth");
  m.AddEwma("node..latency_us");
  m.AddCounter("node.cache-hits");
  m.AddCounter("node.ops.total");
  m.AddProbe(
      "node.queue.depth", [] { return 0.0; });
  m.AddCounter(StrFormat("node.backend_%d.total", 3));
}
