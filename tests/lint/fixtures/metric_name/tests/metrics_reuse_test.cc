// Fixture: the same metric name across two *different* registries is legal
// in tests (the once-per-registry duplicate check applies to src/ only),
// but malformed names still fire anywhere.

void TwoRegistries(MetricRegistry& a, MetricRegistry& b) {
  a.AddCounter("bench.ops.total");
  b.AddCounter("bench.ops.total");
  b.AddGauge("UPPER");
}
