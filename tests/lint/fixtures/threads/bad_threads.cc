#include <thread>
#include <atomic>
void Spawn() { std::thread t([] {}); t.detach(); }
void Busy() { std::atomic<int> hits{0}; hits = 1; }
void Nap() { std::this_thread::sleep_for(100); }
void Posix() { pthread_mutex_lock(nullptr); }
