// Negative fixture: mentions of system_clock / gettimeofday / time( in
// comments and strings must not fire, nor member calls named time().
struct Node {
  long time() const { return 42; }  // simulated clock, not ::time()
};
long Use(const Node& n) { return n.time(); }
const char* kMsg = "never call gettimeofday or std::chrono::system_clock";
