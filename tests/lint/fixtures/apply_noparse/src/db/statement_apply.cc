#include "db/sql_parser.h"

int ApplyStatementText(int n) { return n; }
