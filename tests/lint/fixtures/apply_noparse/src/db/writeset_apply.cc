#include "db/sql_parser.h"
#include "db/sql_lexer.h"
#include "db/table.h"

int ApplyRowImages(int n) { return n; }
