namespace demo {

struct LocalClock {
  double time() const;
};

int Mix(int x) { return x * 3 + 1; }

// A member call named time() is the simulated clock, not ::time().
double Sample(const LocalClock& clock) { return clock.time(); }

// `random` as a plain identifier is not the libc random() call.
int Derived() {
  int random = Mix(7);
  return random;
}

}  // namespace demo
