// Every divisor here is provably nonzero: a <= 0 bail, an == 0 bail, and a
// ternary whose division arm only evaluates under n != 0.
long PerMicro(long events, long micros) {
  if (micros <= 0) return 0;
  return events / micros;
}

int PerBatch(int total, int batches) {
  if (batches == 0) return 0;
  return total / batches;
}

int Guarded(int total, int n) {
  return n != 0 ? total / n : 0;
}
