// Deliberate division hazards: an unguarded divisor and a guard that only
// excludes the negative half.
int Average(int total, int count) {
  return total / count;
}

int Modulo(int total, int count) {
  if (count < 0) return 0;
  return total % count;
}
