// Mirrors the sanctioned parallel sweep runner: worker threads over
// independent simulations are allowed here and only here.
#include <atomic>
#include <mutex>
#include <thread>
void RunCells() {
  std::atomic<int> cursor{0};
  std::mutex mu;
  std::thread worker([&] { std::lock_guard<std::mutex> lock(mu); });
  worker.join();
}
