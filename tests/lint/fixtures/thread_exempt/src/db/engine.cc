#include <mutex>
void Lock() { std::mutex mu; mu.lock(); }
