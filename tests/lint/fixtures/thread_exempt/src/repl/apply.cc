#include <atomic>
void Count() { std::atomic<long> n{0}; n = 1; }
