#include <thread>
void Fire() { std::thread t([] {}); t.join(); }
