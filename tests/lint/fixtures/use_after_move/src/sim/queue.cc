namespace demo {

struct Callback {
  void Run();
  void reset();
};

Callback MakeCb();
void Sink(Callback cb);

void DoubleUse() {
  Callback cb = MakeCb();
  Sink(std::move(cb));
  cb.Run();
}

void BranchMove(int flaky) {
  Callback cb = MakeCb();
  if (flaky > 0) {
    Sink(std::move(cb));
  }
  cb.Run();
}

void DoubleMove() {
  Callback cb = MakeCb();
  Sink(std::move(cb));
  Sink(std::move(cb));
}

}  // namespace demo
