#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>

// The assert is the documented witness form: it pins n under 2^32 at the
// cast site, so the truncation is provably lossless.
uint32_t CountField(size_t n) {
  assert(n <= std::numeric_limits<uint32_t>::max());
  return static_cast<uint32_t>(n);
}
