#include <cstddef>
#include <cstdint>

// The disengage guard bounds i strictly below the cast target's range.
uint16_t Slot(size_t i) {
  if (i >= 65535) return 65535;
  return static_cast<uint16_t>(i);
}
