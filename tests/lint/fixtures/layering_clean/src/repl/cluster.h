#pragma once
#include "common/base.h"
#include "db/rows.h"
struct Cluster {
  Base base;
  Rows rows;
};
