#pragma once
struct Base {};
