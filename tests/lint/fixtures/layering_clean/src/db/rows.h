#pragma once
#include "common/base.h"
struct Rows {
  Base base;
};
