#include <string>

// Ordinary engine code: std::string use outside src/db/vec_* is fine.
std::string PlanLabel(int col) { return "col" + std::to_string(col); }
