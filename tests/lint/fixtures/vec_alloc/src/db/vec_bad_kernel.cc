#include <string>

void LabelLanes(const int* lanes, int n) {
  std::string label = "k";
  for (int i = 0; i < n; ++i) label += std::to_string(lanes[i]);
  (void)label;
}
