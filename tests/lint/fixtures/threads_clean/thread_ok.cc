// Negative fixture: thread-like identifiers that are not real-thread
// primitives must not fire (the rule matches whole tokens only).
struct ApplyThreadState {
  int backlog = 0;
};
int thread_count();
void Run() {
  ApplyThreadState st;
  st.backlog = thread_count();
}
const char* kNote = "the slave SQL apply thread is an event-driven state machine";
