#include <cstddef>
#include <cstdint>
#include <vector>

struct Arena {
  template <typename T>
  T* AllocateArray(size_t n);
};

// The vec-kernel null-mask shape: words = ceil(len/64) words are allocated,
// and every store lands at i >> 6 for some i < len.
void BuildMask(Arena* arena, const int* vals, size_t len) {
  size_t words = (len + 63) / 64;
  uint64_t* nulls = arena->AllocateArray<uint64_t>(words);
  for (size_t w = 0; w < words; ++w) nulls[w] = 0;
  for (size_t i = 0; i < len; ++i) {
    if (vals[i] != 0) nulls[i >> 6] |= uint64_t{1} << (i & 63);
  }
}

// The sentinel idiom: a scan leaves idx <= v.size(), and the == bail
// sharpens the survivor to idx < v.size().
int FindSlot(const std::vector<int>& v, int key) {
  size_t idx = v.size();
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] == key) {
      idx = i;
      break;
    }
  }
  if (idx == v.size()) return -1;
  return v[idx];
}
