namespace demo {

int Entropy();
unsigned MixedSeed();

unsigned PickSeed() { return MixedSeed(); }

unsigned InitWorld(int worlds) {
  unsigned seed = PickSeed();
  return seed + static_cast<unsigned>(worlds);
}

}  // namespace demo
