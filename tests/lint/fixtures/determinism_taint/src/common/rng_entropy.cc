namespace demo {

// src/common/rng* is sanctioned to touch entropy primitives directly, so
// nothing is reported here -- but these definitions taint their callers.
int Entropy() { return rand(); }

unsigned MixedSeed() { return static_cast<unsigned>(Entropy()) * 2654435761u; }

}  // namespace demo
