namespace demo {

struct ReplLocks {
  bool AcquireRead(const char* key);
  bool AcquireWrite(const char* key);
  void ReleaseAll(int txn);
};

struct ReplState {
  ReplLocks locks;
};

// Same global order as src/db ("events" before "users"): no cycle.
int ApplyForward(ReplState* st, int txn) {
  st->locks.AcquireWrite("events");
  st->locks.AcquireWrite("users");
  st->locks.ReleaseAll(txn);
  return 0;
}

// The release empties the held set, so the second acquisition opens no
// "users" -> "events" edge.
int Replay(ReplState* st, int txn) {
  st->locks.AcquireWrite("users");
  st->locks.ReleaseAll(txn);
  st->locks.AcquireWrite("events");
  st->locks.ReleaseAll(txn);
  return 0;
}

}  // namespace demo
