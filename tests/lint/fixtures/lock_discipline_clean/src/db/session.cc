#include "db/lock_manager.h"

namespace demo {

struct LockManager {
  bool AcquireRead(const char* key);
  bool AcquireWrite(const char* key);
  void ReleaseAll(int txn);
};

class Session {
 public:
  int id() const { return id_; }

 private:
  int id_ = 0;
};

class Database {
 public:
  int Execute(Session* session, bool is_commit, bool is_write) {
    if (is_commit) {
      Commit(session);
      return 0;
    }
    bool ok = is_write ? locks_.AcquireWrite("accounts")
                       : locks_.AcquireRead("accounts");
    if (!ok) {
      Rollback(session);
      return -1;
    }
    bool more = locks_.AcquireWrite("tellers");
    if (!more) {
      Rollback(session);
      return -1;
    }
    Commit(session);
    return 0;
  }

 private:
  void Commit(Session* session) { locks_.ReleaseAll(session->id()); }
  void Rollback(Session* session) { locks_.ReleaseAll(session->id()); }

  LockManager locks_;
};

}  // namespace demo
