#include "sim/kernel.h"

namespace demo {

class Quiet {
 public:
  void Arm() {
    // The enclosing runner outlives the kernel by construction.
    sim_->ScheduleAfter(5, [this] { Tick(); });  // NOLINT(clouddb-dangling-capture)
  }

  void Tick() {}

 private:
  Kernel* sim_;
};

}  // namespace demo
