// Fixture: a statement cache tracking LRU recency with the wall clock —
// recency must be a logical counter (lines 5 and 8 must fire).
#include <chrono>

long Tick() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
struct Entry { long last_used = 0; };
struct StatementCache {
  void Touch(Entry& e) { e.last_used = time(nullptr); }
};
