#pragma once
struct Thing {};
