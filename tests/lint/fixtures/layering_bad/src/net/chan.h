#pragma once
#include "db/value.h"
