#ifndef FIXTURE_TABLE_EXT_H_
#define FIXTURE_TABLE_EXT_H_
#include "repl/failover.h"
#endif
