#include <string_view>

// Allocation-free kernel: string_view operands, caller-owned output buffer.
int CountMatches(const std::string_view* lanes, int n, std::string_view key,
                 unsigned char* match) {
  int m = 0;
  for (int i = 0; i < n; ++i) {
    match[i] = lanes[i] == key ? 1 : 0;
    if (match[i] != 0) ++m;
  }
  return m;
}
