#include <string_view>

// Allocation-free kernel: string_view operands, caller-owned output buffer.
int CountMatches(const std::string_view* lanes, int n, std::string_view key,
                 int* sel) {
  int m = 0;
  for (int i = 0; i < n; ++i) {
    if (lanes[i] == key) sel[m++] = i;
  }
  return m;
}
