#include "common/api.h"
#include "common/extra.h"

namespace demo {

int Use(int value) { return u::Api(u::FormatX(value)); }

}  // namespace demo
