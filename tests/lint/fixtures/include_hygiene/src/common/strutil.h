#pragma once

namespace u {

int FormatX(int value);

}  // namespace u
