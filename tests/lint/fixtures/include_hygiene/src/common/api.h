#pragma once

#include "common/strutil.h"

namespace u {

inline int Api(int value) { return FormatX(value) + 1; }

}  // namespace u
