#pragma once

namespace demo {

struct Status {
  bool ok() const;
};

Status Apply(int row);
Status Validate(int row);

}  // namespace demo
