#include "db/engine.h"

namespace demo {

void Log(const Status& s);

// The status is consumed on the verbose path but falls off the end of
// the function unread on the other.
int HalfChecked(int row, int verbose) {
  Status st = Apply(row);
  if (verbose > 0) {
    Log(st);
    return 1;
  }
  return 0;
}

// The retry path overwrites the first status without ever reading it.
int OverwriteUnread(int row, int retry) {
  Status st = Apply(row);
  if (retry > 0) {
    st = Validate(row);
  }
  if (!st.ok()) {
    return -1;
  }
  return 0;
}

}  // namespace demo
