// A well-behaved file: simulated time and seeded randomness only.
#include "common/rng.h"
#include "sim/simulation.h"
namespace clouddb {
double Jitter(Rng& rng) { return rng.Uniform(0.0, 1.0); }
}  // namespace clouddb
