#include <random>
int A() { return rand(); }
void B() { srand(7); }
unsigned C() { std::random_device rd; return rd(); }
unsigned D() { std::mt19937 gen(1); return gen(); }
