#include "common/api.h"
#include "common/extra.h"
#include "common/extra.h"

namespace demo {

int Use(int value) { return u::Api(value); }

}  // namespace demo
