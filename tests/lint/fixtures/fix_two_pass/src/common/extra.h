#pragma once

struct Widget {
  int size = 0;
};
