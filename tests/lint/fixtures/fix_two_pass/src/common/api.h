#pragma once

namespace u {

inline int Api(int value) { return value + 1; }

}  // namespace u
