// Fixture-based tests for clouddb_lint (tools/lint). Each fixture directory
// under tests/lint/fixtures/ is a miniature scan root with known violations;
// tests assert the exact file:line:rule diagnostics the analyzer must emit.
// The tree-wide `clouddb_lint_tree` ctest run skips any directory named
// "fixtures", so the deliberate violations here never fail CI.

#include "frontend.h"
#include "linter.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace clouddb::lint {
namespace {

LintResult RunOn(const std::string& scenario) {
  Options opts;
  opts.root = std::filesystem::path(CLOUDDB_LINT_FIXTURE_DIR) / scenario;
  return RunLint(opts);
}

std::vector<std::string> Keys(const LintResult& r) {
  std::vector<std::string> keys;
  for (const Diagnostic& d : r.diagnostics) keys.push_back(d.Key());
  return keys;
}

using StrVec = std::vector<std::string>;

TEST(WallclockRule, FlagsEveryRealTimeSource) {
  LintResult r = RunOn("wallclock");
  EXPECT_EQ(Keys(r), (StrVec{
                         "bad_clock.cc:4:clouddb-wallclock",
                         "bad_clock.cc:5:clouddb-wallclock",
                         "bad_clock.cc:6:clouddb-wallclock",
                         "bad_clock.cc:7:clouddb-wallclock",
                     }));
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_NE(r.diagnostics[0].message.find("Simulation::Now()"),
            std::string::npos);
}

TEST(WallclockRule, RejectsWallClockLruInAStatementCache) {
  // The real db::StatementCache keys recency on list position — a pure
  // function of the statement sequence. A variant that timestamps entries
  // with any real-time source would make cache behavior (and so the whole
  // simulation) depend on host timing; the tree-wide scan (which covers
  // src/db/statement_cache.cc with --forbid-nolint) must reject it.
  LintResult r = RunOn("cache_wallclock");
  EXPECT_EQ(Keys(r), (StrVec{
                         "bad_cache_lru.cc:5:clouddb-wallclock",
                         "bad_cache_lru.cc:8:clouddb-wallclock",
                     }));
}

TEST(WallclockRule, IgnoresCommentsStringsAndMemberCalls) {
  LintResult r = RunOn("wallclock_clean");
  EXPECT_EQ(Keys(r), StrVec{});
  EXPECT_EQ(r.files_scanned, 1);
}

TEST(RandomRule, FlagsPlatformRngsAndStdEngines) {
  LintResult r = RunOn("random");
  EXPECT_EQ(Keys(r), (StrVec{
                         "bad_random.cc:2:clouddb-random",
                         "bad_random.cc:3:clouddb-random",
                         "bad_random.cc:4:clouddb-random",
                         "bad_random.cc:5:clouddb-random",
                     }));
}

TEST(RandomRule, CommonRngModuleIsExempt) {
  LintResult r = RunOn("random_exempt");
  EXPECT_EQ(Keys(r), StrVec{});
}

TEST(ThreadRule, FlagsThreadsAtomicsSleepsAndPthreads) {
  LintResult r = RunOn("threads");
  EXPECT_EQ(Keys(r), (StrVec{
                         "bad_threads.cc:1:clouddb-thread",
                         "bad_threads.cc:2:clouddb-thread",
                         "bad_threads.cc:3:clouddb-thread",
                         "bad_threads.cc:4:clouddb-thread",
                         "bad_threads.cc:5:clouddb-thread",
                         "bad_threads.cc:5:clouddb-thread",
                         "bad_threads.cc:6:clouddb-thread",
                     }));
}

TEST(ThreadRule, IgnoresThreadLikeIdentifiersAndProse) {
  LintResult r = RunOn("threads_clean");
  EXPECT_EQ(Keys(r), StrVec{});
  EXPECT_EQ(r.files_scanned, 1);
}

TEST(ThreadRule, SweepRunnerIsExemptButCoreModulesStayThreadFree) {
  // src/harness/sweep* is the one sanctioned home for real threads (workers
  // drive independent Simulations; results merge in grid order). The
  // allowlist must not leak into the single-threaded core: identical thread
  // tokens in src/sim, src/db, and src/repl must still fire.
  LintResult r = RunOn("thread_exempt");
  EXPECT_EQ(Keys(r), (StrVec{
                         "src/db/engine.cc:1:clouddb-thread",
                         "src/db/engine.cc:2:clouddb-thread",
                         "src/repl/apply.cc:1:clouddb-thread",
                         "src/repl/apply.cc:2:clouddb-thread",
                         "src/sim/kernel.cc:1:clouddb-thread",
                         "src/sim/kernel.cc:2:clouddb-thread",
                     }));
  EXPECT_EQ(r.files_scanned, 4);
}

TEST(Nolint, SuppressesMatchingRuleOnlyAndIsCounted) {
  LintResult r = RunOn("nolint");
  // Lines 1-2 (same-line NOLINT) and 4 (NOLINTNEXTLINE) are suppressed;
  // line 5 carries a NOLINT for the wrong rule and must still fire.
  EXPECT_EQ(Keys(r), (StrVec{
                         "mixed.cc:5:clouddb-wallclock",
                         "mixed.cc:6:clouddb-wallclock",
                     }));
  EXPECT_EQ(r.suppressions_used, 3);
}

TEST(LayeringRule, RejectsUpwardPeerAndUnregisteredEdges) {
  LintResult r = RunOn("layering_bad");
  EXPECT_EQ(Keys(r), (StrVec{
                         "src/db/table_ext.h:3:clouddb-layering",
                         "src/net/chan.h:2:clouddb-layering",
                         "src/widgets/thing.h:1:clouddb-layering",
                     }));
  EXPECT_NE(r.diagnostics[0].message.find("strictly downward"),
            std::string::npos);
  EXPECT_NE(r.diagnostics[1].message.find("peer modules"), std::string::npos);
  EXPECT_NE(r.diagnostics[2].message.find("not registered"),
            std::string::npos);
}

TEST(LayeringRule, AcceptsDownwardEdges) {
  LintResult r = RunOn("layering_clean");
  EXPECT_EQ(Keys(r), StrVec{});
  EXPECT_EQ(r.files_scanned, 3);
}

TEST(CycleRule, ReportsIncludeCycleOnce) {
  LintResult r = RunOn("cycle");
  EXPECT_EQ(Keys(r), (StrVec{"src/db/b.h:2:clouddb-include-cycle"}));
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].message,
            "include cycle: src/db/a.h -> src/db/b.h -> src/db/a.h");
}

TEST(CycleRule, DiamondIncludeGraphIsNotACycle) {
  // layering_clean is a diamond: cluster.h -> {rows.h, base.h},
  // rows.h -> base.h. Shared includes must not be reported as cycles.
  LintResult r = RunOn("layering_clean");
  EXPECT_EQ(Keys(r), StrVec{});
}

TEST(StatusRule, FlagsDiscardsButNotChecksCastsOrAmbiguousNames) {
  LintResult r = RunOn("status");
  // Line 5 ((void) cast), 6 (assignment), 8 (name also declared void) and
  // 11 (return) are clean; 3 (bare), 4 (if-body) and 7 discard.
  EXPECT_EQ(Keys(r), (StrVec{
                         "caller.cc:3:clouddb-status",
                         "caller.cc:4:clouddb-status",
                         "caller.cc:7:clouddb-status",
                     }));
}

TEST(CleanTree, ProducesZeroOutput) {
  LintResult r = RunOn("clean");
  EXPECT_EQ(Keys(r), StrVec{});
  EXPECT_EQ(r.files_scanned, 1);
  EXPECT_EQ(r.suppressions_used, 0);
}

TEST(DanglingCaptureRule, SeededBugIsCaughtAtTheExactLine) {
  // poller.cc seeds three lifetime bugs: a `this` capture, a reference
  // capture of a local, and a by-copy raw-pointer capture, all handed to the
  // kernel with no cancelling timer member and no destructor-side Cancel.
  LintResult r = RunOn("dangling_capture");
  EXPECT_EQ(Keys(r), (StrVec{
                         "src/sim/poller.cc:10:clouddb-dangling-capture",
                         "src/sim/poller.cc:15:clouddb-dangling-capture",
                         "src/sim/poller.cc:19:clouddb-dangling-capture",
                     }));
  ASSERT_EQ(r.diagnostics.size(), 3u);
  EXPECT_NE(r.diagnostics[0].message.find("'ScheduleAfter'"),
            std::string::npos);
  EXPECT_NE(r.diagnostics[0].message.find("captures 'this'"),
            std::string::npos);
  EXPECT_NE(r.diagnostics[1].message.find("captures '&hits'"),
            std::string::npos);
  EXPECT_NE(r.diagnostics[2].message.find("raw pointer 'rows'"),
            std::string::npos);
}

TEST(DanglingCaptureRule, NolintSuppressesAndIsCounted) {
  LintResult r = RunOn("dangling_capture_nolint");
  EXPECT_EQ(Keys(r), StrVec{});
  EXPECT_EQ(r.suppressions_used, 1);
}

TEST(DanglingCaptureRule, SafeHarborsAndValueCapturesAreClean) {
  // Covers all three escape hatches: a Timer member, a destructor that
  // cancels the stored handle directly, a destructor that cancels through a
  // same-class helper — plus a plain by-value capture, which never dangles.
  LintResult r = RunOn("dangling_capture_clean");
  EXPECT_EQ(Keys(r), StrVec{});
  EXPECT_EQ(r.files_scanned, 1);
}

TEST(LockDisciplineRule, FlagsLeaksGrowthAfterShrinkAndKeyOrder) {
  LintResult r = RunOn("lock_discipline");
  EXPECT_EQ(Keys(r), (StrVec{
                         "src/db/engine.cc:16:clouddb-lock-discipline",
                         "src/db/engine.cc:23:clouddb-lock-discipline",
                         "src/db/engine.cc:29:clouddb-lock-discipline",
                         "src/db/engine.cc:36:clouddb-lock-discipline",
                     }));
  ASSERT_EQ(r.diagnostics.size(), 4u);
  EXPECT_NE(r.diagnostics[0].message.find("exit path holds"),
            std::string::npos);
  EXPECT_NE(r.diagnostics[1].message.find("never releases"),
            std::string::npos);
  EXPECT_NE(r.diagnostics[2].message.find("shrinking phase"),
            std::string::npos);
  EXPECT_NE(r.diagnostics[3].message.find("canonical order"),
            std::string::npos);
}

TEST(LockDisciplineRule, CommitRollbackWrapperShapeIsClean) {
  // session.cc mirrors the real db::Database: acquires routed through a
  // ternary, releases through Commit()/Rollback() helpers (found by the
  // releasing-function fixpoint), and an early commit branch that returns
  // before any acquire. None of it may fire.
  LintResult r = RunOn("lock_discipline_clean");
  EXPECT_EQ(Keys(r), StrVec{});
}

TEST(IncludeHygieneRule, FlagsUnusedAndTransitiveIncludesWithFixes) {
  LintResult r = RunOn("include_hygiene");
  EXPECT_EQ(Keys(r), (StrVec{
                         "src/db/user.cc:2:clouddb-include-hygiene",
                         "src/db/user.cc:6:clouddb-include-hygiene",
                     }));
  ASSERT_EQ(r.diagnostics.size(), 2u);
  EXPECT_EQ(r.diagnostics[0].fix_kind, FixKind::kRemoveLine);
  EXPECT_EQ(r.diagnostics[1].fix_kind, FixKind::kAddInclude);
  EXPECT_EQ(r.diagnostics[1].fix_include, "common/strutil.h");
}

TEST(Severity, WarnDowngradesAndOffDisables) {
  Options opts;
  opts.root =
      std::filesystem::path(CLOUDDB_LINT_FIXTURE_DIR) / "include_hygiene";
  opts.severities["clouddb-include-hygiene"] = Severity::kWarn;
  LintResult warn = RunLint(opts);
  EXPECT_EQ(warn.errors, 0);
  EXPECT_EQ(warn.warnings, 2);
  ASSERT_EQ(warn.diagnostics.size(), 2u);
  EXPECT_EQ(warn.diagnostics[0].severity, Severity::kWarn);
  EXPECT_NE(warn.diagnostics[0].ToString().find("warning:"),
            std::string::npos);

  opts.severities["clouddb-include-hygiene"] = Severity::kOff;
  LintResult off = RunLint(opts);
  EXPECT_EQ(Keys(off), StrVec{});
  EXPECT_EQ(off.errors, 0);
  EXPECT_EQ(off.suppressions_used, 0);
}

TEST(JsonOutput, MatchesGoldenByteForByte) {
  LintResult r = RunOn("include_hygiene");
  EXPECT_EQ(
      ToJson(r),
      "{\n"
      "  \"files_scanned\": 4,\n"
      "  \"suppressions_used\": 0,\n"
      "  \"justified_suppressions\": 0,\n"
      "  \"baselined\": 0,\n"
      "  \"errors\": 2,\n"
      "  \"warnings\": 0,\n"
      "  \"diagnostics\": [\n"
      "    {\"file\": \"src/db/user.cc\", \"line\": 2, \"rule\": "
      "\"clouddb-include-hygiene\", \"severity\": \"error\", \"message\": "
      "\"include \\\"common/extra.h\\\" is unused: no symbol it declares is "
      "referenced here; remove it (clouddb_lint --fix)\", \"fix\": "
      "\"remove-line\"},\n"
      "    {\"file\": \"src/db/user.cc\", \"line\": 6, \"rule\": "
      "\"clouddb-include-hygiene\", \"severity\": \"error\", \"message\": "
      "\"'FormatX' is declared in \\\"common/strutil.h\\\" which is only "
      "transitively included; include it directly (clouddb_lint --fix)\", "
      "\"fix\": \"add-include\", \"fix_include\": \"common/strutil.h\"}\n"
      "  ]\n"
      "}\n");
}

TEST(ApplyFixes, RemovesUnusedAndInsertsDirectIncludesToConvergence) {
  // Copy the include_hygiene scenario into a scratch root, apply the fixes it
  // carries, and re-lint: the tree must come out hygiene-clean in one pass.
  namespace fs = std::filesystem;
  fs::path src = fs::path(CLOUDDB_LINT_FIXTURE_DIR) / "include_hygiene";
  fs::path scratch = fs::path(testing::TempDir()) / "clouddb_lint_fix";
  fs::remove_all(scratch);
  fs::copy(src, scratch, fs::copy_options::recursive);

  Options opts;
  opts.root = scratch;
  LintResult before = RunLint(opts);
  ASSERT_EQ(before.errors, 2);
  EXPECT_EQ(ApplyFixes(scratch, before), 2);

  LintResult after = RunLint(opts);
  EXPECT_EQ(Keys(after), StrVec{});

  std::ifstream in(scratch / "src" / "db" / "user.cc");
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(text.find("common/extra.h"), std::string::npos);
  EXPECT_NE(text.find("#include \"common/strutil.h\""), std::string::npos);
  fs::remove_all(scratch);
}

TEST(MetricNameRule, FlagsMalformedAndDuplicateNamesInSrc) {
  // src/metrics/metrics_init.cc: lines 7-10 are malformed (uppercase, single
  // segment, empty segment, illegal '-'); line 11 re-registers the line-6
  // name. The wrapped literal (12-13) and the StrFormat-computed name (14)
  // are clean. tests/metrics_reuse_test.cc re-registers a name across two
  // registries — legal outside src/ — but its malformed name still fires.
  LintResult r = RunOn("metric_name");
  EXPECT_EQ(Keys(r), (StrVec{
                         "src/metrics/metrics_init.cc:7:clouddb-metric-name",
                         "src/metrics/metrics_init.cc:8:clouddb-metric-name",
                         "src/metrics/metrics_init.cc:9:clouddb-metric-name",
                         "src/metrics/metrics_init.cc:10:clouddb-metric-name",
                         "src/metrics/metrics_init.cc:11:clouddb-metric-name",
                         "tests/metrics_reuse_test.cc:8:clouddb-metric-name",
                     }));
  ASSERT_EQ(r.diagnostics.size(), 6u);
  EXPECT_NE(r.diagnostics[0].message.find("not lowercase dot-separated"),
            std::string::npos);
  EXPECT_NE(r.diagnostics[4].message.find("already registered at line 6"),
            std::string::npos);
}

TEST(MetricNameRule, IgnoresDefinitionsWrappedLiteralsAndComputedNames) {
  LintResult r = RunOn("metric_name_clean");
  EXPECT_EQ(Keys(r), StrVec{});
  EXPECT_EQ(r.files_scanned, 1);
}

TEST(VecAllocRule, FlagsStringAllocationOnlyInsideVecKernelFiles) {
  // src/db/vec_bad_kernel.cc allocates (std::string local, std::to_string);
  // src/db/query_exec.cc uses the same constructs but is outside the
  // src/db/vec_* scope, so it must stay silent.
  LintResult r = RunOn("vec_alloc");
  EXPECT_EQ(Keys(r), (StrVec{
                         "src/db/vec_bad_kernel.cc:1:clouddb-vec-alloc",
                         "src/db/vec_bad_kernel.cc:4:clouddb-vec-alloc",
                         "src/db/vec_bad_kernel.cc:5:clouddb-vec-alloc",
                     }));
  EXPECT_EQ(r.files_scanned, 2);
  ASSERT_GE(r.diagnostics.size(), 1u);
  EXPECT_NE(r.diagnostics[0].message.find("allocation-free"),
            std::string::npos);
}

TEST(VecAllocRule, StringViewKernelsAreClean) {
  LintResult r = RunOn("vec_alloc_clean");
  EXPECT_EQ(Keys(r), StrVec{});
  EXPECT_EQ(r.files_scanned, 1);
}

TEST(ApplyNoparseRule, FlagsParserIncludesOnlyInWritesetApplyFiles) {
  // src/db/writeset_apply.cc pulls in both front-end headers (lines 1-2);
  // src/db/statement_apply.cc includes sql_parser.h too but sits outside
  // the writeset-apply scope, so it must stay silent.
  LintResult r = RunOn("apply_noparse");
  EXPECT_EQ(Keys(r), (StrVec{
                         "src/db/writeset_apply.cc:1:clouddb-apply-noparse",
                         "src/db/writeset_apply.cc:2:clouddb-apply-noparse",
                     }));
  EXPECT_EQ(r.files_scanned, 2);
  ASSERT_GE(r.diagnostics.size(), 1u);
  EXPECT_NE(r.diagnostics[0].message.find("parser-free"), std::string::npos);
}

TEST(ApplyNoparseRule, RowDeltaOnlyApplyIsClean) {
  LintResult r = RunOn("apply_noparse_clean");
  EXPECT_EQ(Keys(r), StrVec{});
  EXPECT_EQ(r.files_scanned, 1);
}

TEST(StripCommentsAndStrings, PreservesLinesBlanksContent) {
  std::string src =
      "int a; // std::thread here\n"
      "/* rand()\n"
      "   rand() */ int b;\n"
      "const char* s = \"mutex\";\n";
  std::string out = StripCommentsAndStrings(src);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_EQ(out.find("thread"), std::string::npos);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("mutex"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(StripCommentsAndStrings, HandlesRawStringsAndDigitSeparators) {
  std::string src =
      "auto r = R\"(std::mutex inside raw)\";\n"
      "long n = 1'000'000;\n"
      "char c = 't';\n";
  std::string out = StripCommentsAndStrings(src);
  EXPECT_EQ(out.find("mutex"), std::string::npos);
  EXPECT_NE(out.find("1'000'000"), std::string::npos);
  EXPECT_NE(out.find("long n"), std::string::npos);
}

}  // namespace
}  // namespace clouddb::lint
