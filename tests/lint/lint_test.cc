// Fixture-based tests for clouddb_lint (tools/lint). Each fixture directory
// under tests/lint/fixtures/ is a miniature scan root with known violations;
// tests assert the exact file:line:rule diagnostics the analyzer must emit.
// The tree-wide `clouddb_lint_tree` ctest run skips any directory named
// "fixtures", so the deliberate violations here never fail CI.

#include "linter.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace clouddb::lint {
namespace {

LintResult RunOn(const std::string& scenario) {
  Options opts;
  opts.root = std::filesystem::path(CLOUDDB_LINT_FIXTURE_DIR) / scenario;
  return RunLint(opts);
}

std::vector<std::string> Keys(const LintResult& r) {
  std::vector<std::string> keys;
  for (const Diagnostic& d : r.diagnostics) keys.push_back(d.Key());
  return keys;
}

using StrVec = std::vector<std::string>;

TEST(WallclockRule, FlagsEveryRealTimeSource) {
  LintResult r = RunOn("wallclock");
  EXPECT_EQ(Keys(r), (StrVec{
                         "bad_clock.cc:4:clouddb-wallclock",
                         "bad_clock.cc:5:clouddb-wallclock",
                         "bad_clock.cc:6:clouddb-wallclock",
                         "bad_clock.cc:7:clouddb-wallclock",
                     }));
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_NE(r.diagnostics[0].message.find("Simulation::Now()"),
            std::string::npos);
}

TEST(WallclockRule, RejectsWallClockLruInAStatementCache) {
  // The real db::StatementCache keys recency on list position — a pure
  // function of the statement sequence. A variant that timestamps entries
  // with any real-time source would make cache behavior (and so the whole
  // simulation) depend on host timing; the tree-wide scan (which covers
  // src/db/statement_cache.cc with --forbid-nolint) must reject it.
  LintResult r = RunOn("cache_wallclock");
  EXPECT_EQ(Keys(r), (StrVec{
                         "bad_cache_lru.cc:5:clouddb-wallclock",
                         "bad_cache_lru.cc:8:clouddb-wallclock",
                     }));
}

TEST(WallclockRule, IgnoresCommentsStringsAndMemberCalls) {
  LintResult r = RunOn("wallclock_clean");
  EXPECT_EQ(Keys(r), StrVec{});
  EXPECT_EQ(r.files_scanned, 1);
}

TEST(RandomRule, FlagsPlatformRngsAndStdEngines) {
  LintResult r = RunOn("random");
  EXPECT_EQ(Keys(r), (StrVec{
                         "bad_random.cc:2:clouddb-random",
                         "bad_random.cc:3:clouddb-random",
                         "bad_random.cc:4:clouddb-random",
                         "bad_random.cc:5:clouddb-random",
                     }));
}

TEST(RandomRule, CommonRngModuleIsExempt) {
  LintResult r = RunOn("random_exempt");
  EXPECT_EQ(Keys(r), StrVec{});
}

TEST(ThreadRule, FlagsThreadsAtomicsSleepsAndPthreads) {
  LintResult r = RunOn("threads");
  EXPECT_EQ(Keys(r), (StrVec{
                         "bad_threads.cc:1:clouddb-thread",
                         "bad_threads.cc:2:clouddb-thread",
                         "bad_threads.cc:3:clouddb-thread",
                         "bad_threads.cc:4:clouddb-thread",
                         "bad_threads.cc:5:clouddb-thread",
                         "bad_threads.cc:5:clouddb-thread",
                         "bad_threads.cc:6:clouddb-thread",
                     }));
}

TEST(ThreadRule, IgnoresThreadLikeIdentifiersAndProse) {
  LintResult r = RunOn("threads_clean");
  EXPECT_EQ(Keys(r), StrVec{});
  EXPECT_EQ(r.files_scanned, 1);
}

TEST(ThreadRule, SweepRunnerIsExemptButCoreModulesStayThreadFree) {
  // src/harness/sweep* is the one sanctioned home for real threads (workers
  // drive independent Simulations; results merge in grid order). The
  // allowlist must not leak into the single-threaded core: identical thread
  // tokens in src/sim, src/db, and src/repl must still fire.
  LintResult r = RunOn("thread_exempt");
  EXPECT_EQ(Keys(r), (StrVec{
                         "src/db/engine.cc:1:clouddb-thread",
                         "src/db/engine.cc:2:clouddb-thread",
                         "src/repl/apply.cc:1:clouddb-thread",
                         "src/repl/apply.cc:2:clouddb-thread",
                         "src/sim/kernel.cc:1:clouddb-thread",
                         "src/sim/kernel.cc:2:clouddb-thread",
                     }));
  EXPECT_EQ(r.files_scanned, 4);
}

TEST(Nolint, SuppressesMatchingRuleOnlyAndIsCounted) {
  LintResult r = RunOn("nolint");
  // Lines 1-2 (same-line NOLINT) and 4 (NOLINTNEXTLINE) are suppressed;
  // line 5 carries a NOLINT for the wrong rule and must still fire.
  EXPECT_EQ(Keys(r), (StrVec{
                         "mixed.cc:5:clouddb-wallclock",
                         "mixed.cc:6:clouddb-wallclock",
                     }));
  EXPECT_EQ(r.suppressions_used, 3);
}

TEST(LayeringRule, RejectsUpwardPeerAndUnregisteredEdges) {
  LintResult r = RunOn("layering_bad");
  EXPECT_EQ(Keys(r), (StrVec{
                         "src/db/table_ext.h:3:clouddb-layering",
                         "src/net/chan.h:2:clouddb-layering",
                         "src/widgets/thing.h:1:clouddb-layering",
                     }));
  EXPECT_NE(r.diagnostics[0].message.find("strictly downward"),
            std::string::npos);
  EXPECT_NE(r.diagnostics[1].message.find("peer modules"), std::string::npos);
  EXPECT_NE(r.diagnostics[2].message.find("not registered"),
            std::string::npos);
}

TEST(LayeringRule, AcceptsDownwardEdges) {
  LintResult r = RunOn("layering_clean");
  EXPECT_EQ(Keys(r), StrVec{});
  EXPECT_EQ(r.files_scanned, 3);
}

TEST(CycleRule, ReportsIncludeCycleOnce) {
  LintResult r = RunOn("cycle");
  EXPECT_EQ(Keys(r), (StrVec{"src/db/b.h:2:clouddb-include-cycle"}));
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].message,
            "include cycle: src/db/a.h -> src/db/b.h -> src/db/a.h");
}

TEST(CycleRule, DiamondIncludeGraphIsNotACycle) {
  // layering_clean is a diamond: cluster.h -> {rows.h, base.h},
  // rows.h -> base.h. Shared includes must not be reported as cycles.
  LintResult r = RunOn("layering_clean");
  EXPECT_EQ(Keys(r), StrVec{});
}

TEST(StatusRule, FlagsDiscardsButNotChecksCastsOrAmbiguousNames) {
  LintResult r = RunOn("status");
  // Line 5 ((void) cast), 6 (assignment), 8 (name also declared void) and
  // 11 (return) are clean; 3 (bare), 4 (if-body) and 7 discard.
  EXPECT_EQ(Keys(r), (StrVec{
                         "caller.cc:3:clouddb-status",
                         "caller.cc:4:clouddb-status",
                         "caller.cc:7:clouddb-status",
                     }));
}

TEST(CleanTree, ProducesZeroOutput) {
  LintResult r = RunOn("clean");
  EXPECT_EQ(Keys(r), StrVec{});
  EXPECT_EQ(r.files_scanned, 1);
  EXPECT_EQ(r.suppressions_used, 0);
}

TEST(StripCommentsAndStrings, PreservesLinesBlanksContent) {
  std::string src =
      "int a; // std::thread here\n"
      "/* rand()\n"
      "   rand() */ int b;\n"
      "const char* s = \"mutex\";\n";
  std::string out = StripCommentsAndStrings(src);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_EQ(out.find("thread"), std::string::npos);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("mutex"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(StripCommentsAndStrings, HandlesRawStringsAndDigitSeparators) {
  std::string src =
      "auto r = R\"(std::mutex inside raw)\";\n"
      "long n = 1'000'000;\n"
      "char c = 't';\n";
  std::string out = StripCommentsAndStrings(src);
  EXPECT_EQ(out.find("mutex"), std::string::npos);
  EXPECT_NE(out.find("1'000'000"), std::string::npos);
  EXPECT_NE(out.find("long n"), std::string::npos);
}

}  // namespace
}  // namespace clouddb::lint
