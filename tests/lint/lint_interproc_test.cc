// Tests for the interprocedural analysis core of clouddb_lint: CFG shape,
// call-graph resolution, the worklist dataflow engine, the four
// graph-backed rules (clouddb-lock-order, clouddb-use-after-move,
// clouddb-status-path, clouddb-determinism-taint), baseline filtering, and
// the --fix convergence loop. Fixture trees live under tests/lint/fixtures
// next to the ones lint_test.cc uses.

#include "callgraph.h"
#include "cfg.h"
#include "dataflow.h"
#include "frontend.h"
#include "linter.h"
#include "rules_flow.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace clouddb::lint {
namespace {

namespace fs = std::filesystem;
using StrVec = std::vector<std::string>;

LintResult RunOn(const std::string& scenario) {
  Options opts;
  opts.root = fs::path(CLOUDDB_LINT_FIXTURE_DIR) / scenario;
  return RunLint(opts);
}

std::vector<std::string> Keys(const LintResult& r) {
  std::vector<std::string> keys;
  for (const Diagnostic& d : r.diagnostics) keys.push_back(d.Key());
  return keys;
}

// ---------------------------------------------------------------------------
// CFG construction.
// ---------------------------------------------------------------------------

struct ParsedFn {
  SourceFile file;
  FileIndex idx;
  Cfg cfg;
};

/// Parses `text` as a source file and builds the CFG of the function named
/// `name` (the only function in most tests).
ParsedFn CfgOf(const std::string& text, const std::string& name) {
  ParsedFn p;
  p.file = ParseSource(text, "src/db/t.cc");
  p.idx = BuildIndex(p.file);
  for (const FunctionDef& fn : p.idx.functions) {
    if (fn.name == name) {
      p.cfg = BuildCfg(p.file, p.idx, fn);
      return p;
    }
  }
  ADD_FAILURE() << "no function named " << name;
  return p;
}

/// Index of the first non-synthetic node whose range starts on `line`.
int NodeAtLine(const Cfg& cfg, int line) {
  for (size_t n = 2; n < cfg.nodes.size(); ++n) {
    if (cfg.nodes[n].line == line && cfg.nodes[n].begin < cfg.nodes[n].end)
      return static_cast<int>(n);
  }
  return -1;
}

bool HasEdge(const Cfg& cfg, int from, int to) {
  if (from < 0 || to < 0) return false;
  const std::vector<int>& s = cfg.nodes[static_cast<size_t>(from)].succs;
  return std::find(s.begin(), s.end(), to) != s.end();
}

TEST(CfgShape, EarlyReturnForksTheExit) {
  ParsedFn p = CfgOf(
      "void F(int x) {\n"        // 1
      "  if (x > 0) {\n"         // 2
      "    return;\n"            // 3
      "  }\n"                    // 4
      "  Work();\n"              // 5
      "}\n",
      "F");
  ASSERT_TRUE(p.cfg.ok);
  int cond = NodeAtLine(p.cfg, 2);
  int ret = NodeAtLine(p.cfg, 3);
  int work = NodeAtLine(p.cfg, 5);
  EXPECT_EQ(p.cfg.nodes[static_cast<size_t>(cond)].succs.size(), 2u);
  EXPECT_TRUE(HasEdge(p.cfg, ret, Cfg::kExit));
  EXPECT_TRUE(HasEdge(p.cfg, work, Cfg::kExit));
  EXPECT_FALSE(HasEdge(p.cfg, ret, work));
  EXPECT_EQ(p.cfg.nodes[Cfg::kExit].preds.size(), 2u);
}

TEST(CfgShape, ReturnInsideLambdaIsNotAFunctionExit) {
  ParsedFn p = CfgOf(
      "int F(int x) {\n"
      "  auto fn = [x]() {\n"
      "    return x + 1;\n"
      "  };\n"
      "  int y = fn();\n"
      "  return y;\n"
      "}\n",
      "F");
  ASSERT_TRUE(p.cfg.ok);
  // The lambda-bearing statement is one opaque node; only the final return
  // reaches the exit.
  EXPECT_EQ(p.cfg.nodes[Cfg::kExit].preds.size(), 1u);
  EXPECT_EQ(p.cfg.nodes.size(), 5u);  // entry, exit, 3 statements
}

TEST(CfgShape, SwitchCasesFallThroughUntilBreak) {
  ParsedFn p = CfgOf(
      "int F(int x) {\n"         // 1
      "  int r = 0;\n"           // 2
      "  switch (x) {\n"         // 3
      "    case 0:\n"            // 4
      "      r = 1;\n"           // 5
      "    case 1:\n"            // 6
      "      r = 2;\n"           // 7
      "      break;\n"           // 8
      "    default:\n"           // 9
      "      r = 3;\n"           // 10
      "  }\n"                    // 11
      "  return r;\n"            // 12
      "}\n",
      "F");
  ASSERT_TRUE(p.cfg.ok);
  int case0 = NodeAtLine(p.cfg, 5);
  int case1 = NodeAtLine(p.cfg, 7);
  ASSERT_GE(case0, 0);
  ASSERT_GE(case1, 0);
  // case 0 falls through into case 1 and never jumps straight to the
  // switch join.
  EXPECT_TRUE(HasEdge(p.cfg, case0, case1));
  EXPECT_FALSE(HasEdge(p.cfg, case0, NodeAtLine(p.cfg, 12)));
}

TEST(CfgShape, DoWhileHasABackEdge) {
  ParsedFn p = CfgOf(
      "int F(int n) {\n"         // 1
      "  int i = 0;\n"           // 2
      "  do {\n"                 // 3
      "    i = i + 1;\n"         // 4
      "  } while (i < n);\n"     // 5
      "  return i;\n"            // 6
      "}\n",
      "F");
  ASSERT_TRUE(p.cfg.ok);
  int body = NodeAtLine(p.cfg, 4);
  int cond = NodeAtLine(p.cfg, 5);
  EXPECT_TRUE(HasEdge(p.cfg, body, cond));
  // The back edge targets a synthetic loop head that dominates the body.
  bool loops_back = false;
  for (int s : p.cfg.nodes[static_cast<size_t>(cond)].succs)
    if (s == body || HasEdge(p.cfg, s, body)) loops_back = true;
  EXPECT_TRUE(loops_back);
  EXPECT_TRUE(HasEdge(p.cfg, cond, NodeAtLine(p.cfg, 6)));
}

TEST(CfgShape, ReversePostOrderCoversUnreachableNodes) {
  ParsedFn p = CfgOf(
      "int F() {\n"
      "  return 1;\n"
      "  int dead = 0;\n"
      "  return dead;\n"
      "}\n",
      "F");
  ASSERT_TRUE(p.cfg.ok);
  std::vector<int> rpo = p.cfg.ReversePostOrder();
  EXPECT_EQ(rpo.size(), p.cfg.nodes.size());
  std::vector<int> sorted = rpo;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i)
    EXPECT_EQ(sorted[i], static_cast<int>(i));
}

// ---------------------------------------------------------------------------
// Call graph.
// ---------------------------------------------------------------------------

TEST(CallGraphBuild, ResolvesByNameAndArity) {
  SourceFile sf = ParseSource(
      "int Helper(int a) { return a; }\n"
      "int Helper(int a, int b) { return a + b; }\n"
      "int Caller(int x) { return Helper(x) + Helper(x, x); }\n"
      "int Odd(int x) { return Helper(x, x, x); }\n",
      "src/db/a.cc");
  FileIndex idx = BuildIndex(sf);
  std::vector<AnalyzedFile> files{{&sf, &idx}};
  CallGraph cg = BuildCallGraph(files);

  const CgFunction* caller = nullptr;
  const CgFunction* odd = nullptr;
  for (const CgFunction& f : cg.functions) {
    if (f.name == "Caller") caller = &f;
    if (f.name == "Odd") odd = &f;
  }
  ASSERT_NE(caller, nullptr);
  ASSERT_EQ(caller->calls.size(), 2u);
  ASSERT_EQ(caller->calls[0].targets.size(), 1u);
  ASSERT_EQ(caller->calls[1].targets.size(), 1u);
  EXPECT_EQ(cg.functions[caller->calls[0].targets[0]].arity, 1u);
  EXPECT_EQ(cg.functions[caller->calls[1].targets[0]].arity, 2u);

  // No exact arity match: the site keeps every same-named candidate so the
  // analyses stay conservative.
  ASSERT_NE(odd, nullptr);
  ASSERT_EQ(odd->calls.size(), 1u);
  EXPECT_EQ(odd->calls[0].targets.size(), 2u);
}

// ---------------------------------------------------------------------------
// Dataflow engine.
// ---------------------------------------------------------------------------

TEST(DataflowEngine, ForwardFactsFlowAroundALoop) {
  ParsedFn p = CfgOf(
      "void F(int n) {\n"        // 1
      "  Acquire();\n"           // 2
      "  while (n > 0) {\n"      // 3
      "    Step();\n"            // 4
      "    n = n - 1;\n"         // 5
      "  }\n"                    // 6
      "  Release();\n"           // 7
      "}\n",
      "F");
  ASSERT_TRUE(p.cfg.ok);
  size_t num = p.cfg.nodes.size();
  std::vector<std::vector<bool>> gen(num), kill(num);
  gen[static_cast<size_t>(NodeAtLine(p.cfg, 2))] = {true};
  kill[static_cast<size_t>(NodeAtLine(p.cfg, 7))] = {true};
  DataflowResult r = SolveForward(p.cfg, 1, gen, kill);
  // The fact generated before the loop reaches the loop body and the
  // release site, but is dead after the kill.
  EXPECT_TRUE(r.in[static_cast<size_t>(NodeAtLine(p.cfg, 4))][0]);
  EXPECT_TRUE(r.in[static_cast<size_t>(NodeAtLine(p.cfg, 7))][0]);
  EXPECT_FALSE(r.out[static_cast<size_t>(NodeAtLine(p.cfg, 7))][0]);
  EXPECT_FALSE(r.out[Cfg::kExit][0]);
}

TEST(DataflowEngine, BackwardLivenessReachesDefinitionSites) {
  ParsedFn p = CfgOf(
      "void F(int n) {\n"        // 1
      "  Acquire();\n"           // 2
      "  while (n > 0) {\n"      // 3
      "    Step();\n"            // 4
      "  }\n"                    // 5
      "  Release();\n"           // 6
      "}\n",
      "F");
  ASSERT_TRUE(p.cfg.ok);
  size_t num = p.cfg.nodes.size();
  std::vector<std::vector<bool>> gen(num), kill(num);
  gen[static_cast<size_t>(NodeAtLine(p.cfg, 6))] = {true};  // read at release
  DataflowResult r = SolveBackward(p.cfg, 1, gen, kill);
  EXPECT_TRUE(r.out[static_cast<size_t>(NodeAtLine(p.cfg, 2))][0]);
  EXPECT_TRUE(r.out[static_cast<size_t>(NodeAtLine(p.cfg, 4))][0]);
  EXPECT_FALSE(r.out[static_cast<size_t>(NodeAtLine(p.cfg, 6))][0]);
}

// ---------------------------------------------------------------------------
// clouddb-lock-order.
// ---------------------------------------------------------------------------

TEST(LockOrderRule, InterproceduralCycleAcrossDbAndReplLayers) {
  LintResult r = RunOn("lock_order");
  ASSERT_EQ(Keys(r), (StrVec{"src/db/txn.cc:14:clouddb-lock-order"}));
  // The report names the cycle and the closing edge in the other layer.
  EXPECT_NE(r.diagnostics[0].message.find(
                "\"events\" -> \"users\" -> \"events\""),
            std::string::npos);
  EXPECT_NE(r.diagnostics[0].message.find("src/repl/apply.cc:19"),
            std::string::npos);
}

TEST(LockOrderRule, ConsistentOrderAndReleasedSetsAreClean) {
  LintResult r = RunOn("lock_order_clean");
  EXPECT_EQ(Keys(r), StrVec{});
}

// ---------------------------------------------------------------------------
// clouddb-use-after-move.
// ---------------------------------------------------------------------------

TEST(UseAfterMoveRule, FlagsStraightLineBranchJoinAndDoubleMove) {
  LintResult r = RunOn("use_after_move");
  ASSERT_EQ(Keys(r), (StrVec{
                         "src/sim/queue.cc:14:clouddb-use-after-move",
                         "src/sim/queue.cc:22:clouddb-use-after-move",
                         "src/sim/queue.cc:28:clouddb-use-after-move",
                     }));
  EXPECT_NE(r.diagnostics[1].message.find("on some path"), std::string::npos);
  EXPECT_NE(r.diagnostics[2].message.find("moved again"), std::string::npos);
}

TEST(UseAfterMoveRule, KillsAndDisjointPathsAreClean) {
  LintResult r = RunOn("use_after_move_clean");
  EXPECT_EQ(Keys(r), StrVec{});
}

// ---------------------------------------------------------------------------
// clouddb-status-path.
// ---------------------------------------------------------------------------

TEST(StatusPathRule, FlagsHalfCheckedAndOverwrittenDefinitions) {
  LintResult r = RunOn("status_path");
  EXPECT_EQ(Keys(r), (StrVec{
                         "src/db/apply_paths.cc:10:clouddb-status-path",
                         "src/db/apply_paths.cc:20:clouddb-status-path",
                     }));
}

TEST(StatusPathRule, AllPathChecksVoidCastsAndReuseAreClean) {
  LintResult r = RunOn("status_path_clean");
  EXPECT_EQ(Keys(r), StrVec{});
}

// ---------------------------------------------------------------------------
// clouddb-determinism-taint.
// ---------------------------------------------------------------------------

TEST(DeterminismTaintRule, TaintCrossesFilesWithAWitnessChain) {
  LintResult r = RunOn("determinism_taint");
  ASSERT_EQ(Keys(r), (StrVec{
                         "src/sim/seed.cc:6:clouddb-determinism-taint",
                         "src/sim/seed.cc:9:clouddb-determinism-taint",
                     }));
  EXPECT_NE(r.diagnostics[0].message.find("(MixedSeed -> Entropy)"),
            std::string::npos);
  EXPECT_NE(r.diagnostics[1].message.find("(PickSeed -> MixedSeed -> Entropy)"),
            std::string::npos);
  EXPECT_NE(r.diagnostics[1].message.find("'rand'"), std::string::npos);
}

TEST(DeterminismTaintRule, MemberCallsAndPlainIdentifiersAreClean) {
  LintResult r = RunOn("determinism_taint_clean");
  EXPECT_EQ(Keys(r), StrVec{});
}

TEST(JsonOutput, InterproceduralDiagnosticsMatchGoldenByteForByte) {
  LintResult r = RunOn("lock_order");
  EXPECT_EQ(
      ToJson(r),
      "{\n"
      "  \"files_scanned\": 2,\n"
      "  \"suppressions_used\": 0,\n"
      "  \"justified_suppressions\": 0,\n"
      "  \"baselined\": 0,\n"
      "  \"errors\": 1,\n"
      "  \"warnings\": 0,\n"
      "  \"diagnostics\": [\n"
      "    {\"file\": \"src/db/txn.cc\", \"line\": 14, \"rule\": "
      "\"clouddb-lock-order\", \"severity\": \"error\", \"message\": "
      "\"acquiring \\\"users\\\" while holding \\\"events\\\" completes a "
      "lock-order cycle \\\"events\\\" -> \\\"users\\\" -> \\\"events\\\" "
      "(closing edge at src/repl/apply.cc:19); acquire lock keys in one "
      "global order to rule out deadlock\", \"fix\": \"none\"}\n"
      "  ]\n"
      "}\n");
}

// ---------------------------------------------------------------------------
// Baseline filtering.
// ---------------------------------------------------------------------------

TEST(Baseline, FrozenFindingsAreDroppedAndCounted) {
  fs::path bl = fs::path(testing::TempDir()) / "clouddb_lint_baseline.txt";
  {
    std::ofstream out(bl);
    out << "# frozen pre-existing findings\n"
        << "src/sim/queue.cc:14:clouddb-use-after-move\n"
        << "src/db/never.cc:1:clouddb-wallclock\n";  // stale entries are inert
  }
  Options opts;
  opts.root = fs::path(CLOUDDB_LINT_FIXTURE_DIR) / "use_after_move";
  opts.baseline_file = bl;
  LintResult r = RunLint(opts);
  EXPECT_EQ(r.baselined, 1);
  EXPECT_EQ(Keys(r), (StrVec{
                         "src/sim/queue.cc:22:clouddb-use-after-move",
                         "src/sim/queue.cc:28:clouddb-use-after-move",
                     }));
  fs::remove(bl);
}

// ---------------------------------------------------------------------------
// --fix convergence loop.
// ---------------------------------------------------------------------------

/// Copies a fixture tree into a scratch dir the fixer may mutate.
fs::path ScratchCopy(const std::string& scenario, const std::string& tag) {
  fs::path src = fs::path(CLOUDDB_LINT_FIXTURE_DIR) / scenario;
  fs::path scratch = fs::path(testing::TempDir()) / tag;
  fs::remove_all(scratch);
  fs::copy(src, scratch, fs::copy_options::recursive);
  return scratch;
}

TEST(FixLoop, DuplicateUnusedIncludeConvergesInTwoPasses) {
  // The hygiene pass sees one include per (file, target) pair, so the
  // duplicate unused include surfaces only after the first copy is removed:
  // exactly the case a single --fix pass used to leave behind silently.
  fs::path scratch = ScratchCopy("fix_two_pass", "clouddb_lint_fix2");
  Options opts;
  opts.root = scratch;
  FixLoopResult loop = FixUntilConverged(opts);
  EXPECT_TRUE(loop.converged);
  EXPECT_EQ(loop.passes, 2);
  EXPECT_EQ(loop.edits, 2);
  EXPECT_EQ(Keys(loop.result), StrVec{});

  std::ifstream in(scratch / "src/db/user.cc");
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(text.find("extra.h"), std::string::npos);
  fs::remove_all(scratch);
}

TEST(FixLoop, SinglePassBudgetLeavesResidueUnconverged) {
  fs::path scratch = ScratchCopy("fix_two_pass", "clouddb_lint_fix1");
  Options opts;
  opts.root = scratch;
  FixLoopResult loop = FixUntilConverged(opts, /*max_passes=*/1);
  EXPECT_FALSE(loop.converged);
  EXPECT_EQ(loop.passes, 1);
  EXPECT_EQ(loop.edits, 1);
  EXPECT_EQ(Keys(loop.result),
            (StrVec{"src/db/user.cc:2:clouddb-include-hygiene"}));
  fs::remove_all(scratch);
}

TEST(FixLoop, StalledFixesStopEarlyAndReportDivergence) {
  // Regression: a fixable diagnostic whose fix never lands (here: the file
  // does not exist) must not loop forever or report success.
  auto runner = []() {
    LintResult r;
    Diagnostic d{"src/db/ghost.cc", 1, "clouddb-include-hygiene",
                 "include \"x.h\" is unused"};
    d.fix_kind = FixKind::kRemoveLine;
    r.diagnostics.push_back(d);
    return r;
  };
  FixLoopResult loop =
      FixUntilConverged(fs::path(testing::TempDir()), runner, /*max_passes=*/4);
  EXPECT_FALSE(loop.converged);
  EXPECT_EQ(loop.passes, 1);  // stopped at the first zero-edit round
  EXPECT_EQ(loop.edits, 0);
}

}  // namespace
}  // namespace clouddb::lint
