// Tests for the abstract-interpretation rule family (tools/lint/absint,
// rules_absint): fixture trees with known violations, provably-clean
// counterparts, and direct solver-level checks on widening convergence.
// Each dirty fixture pins exact file:line:rule keys so a precision
// regression (a lost proof or a new false positive) fails loudly.

#include "absint.h"
#include "frontend.h"
#include "linter.h"
#include "rules_interproc.h"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace clouddb::lint {
namespace {

LintResult RunOn(const std::string& scenario) {
  Options opts;
  opts.root = std::filesystem::path(CLOUDDB_LINT_FIXTURE_DIR) / scenario;
  return RunLint(opts);
}

std::vector<std::string> Keys(const LintResult& r) {
  std::vector<std::string> keys;
  for (const Diagnostic& d : r.diagnostics) keys.push_back(d.Key());
  return keys;
}

using StrVec = std::vector<std::string>;

// --- clouddb-bounds --------------------------------------------------------

TEST(BoundsRule, FlagsInclusiveLoopAndNegativeIndex) {
  LintResult r = RunOn("bounds");
  EXPECT_EQ(Keys(r), (StrVec{
                         "src/db/vec_bad_kernel.cc:5:clouddb-bounds",
                         "src/db/vec_bad_kernel.cc:11:clouddb-bounds",
                     }));
  ASSERT_EQ(r.diagnostics.size(), 2u);
  // The message carries the failed proof obligation: the limit symbol and
  // the concrete index range the solver derived.
  EXPECT_NE(r.diagnostics[0].message.find("not provably within 'n'"),
            std::string::npos);
  EXPECT_NE(r.diagnostics[1].message.find("[-1, -1]"), std::string::npos);
}

TEST(BoundsRule, ProvesMaskKernelAndSentinelScan) {
  // Ceil-division word mask (`words = (len + 63) / 64`, `nulls[i >> 6]`)
  // plus a for-scan sentinel (`idx == v.size()` bail) — both shapes the
  // real vec kernels rely on; zero findings means the proofs discharge.
  LintResult r = RunOn("bounds_clean");
  EXPECT_EQ(Keys(r), StrVec{});
}

// --- clouddb-div-zero ------------------------------------------------------

TEST(DivZeroRule, FlagsUnguardedDivisionAndModulo) {
  LintResult r = RunOn("div_zero");
  EXPECT_EQ(Keys(r), (StrVec{
                         "src/db/bad_div.cc:4:clouddb-div-zero",
                         "src/db/bad_div.cc:9:clouddb-div-zero",
                     }));
  ASSERT_EQ(r.diagnostics.size(), 2u);
  // The `if (count < 0) return 0;` guard narrows the modulo's divisor to
  // [0, INT_MAX] — still containing zero, so the finding must survive.
  EXPECT_NE(r.diagnostics[1].message.find("[0, 2147483647]"),
            std::string::npos);
}

TEST(DivZeroRule, AcceptsGuardedDivisors) {
  // `<= 0` early return, `== 0` early return, and a ternary guard: three
  // refinement paths that must each prove the divisor nonzero.
  LintResult r = RunOn("div_zero_clean");
  EXPECT_EQ(Keys(r), StrVec{});
}

// --- clouddb-narrowing -----------------------------------------------------

TEST(NarrowingRule, FlagsUnprovenExplicitAndImplicitNarrowing) {
  LintResult r = RunOn("narrowing");
  EXPECT_EQ(Keys(r), (StrVec{
                         "src/db/binlog_wire.cc:6:clouddb-narrowing",
                         "src/repl/lag_slot.cc:7:clouddb-narrowing",
                     }));
  ASSERT_EQ(r.diagnostics.size(), 2u);
  EXPECT_NE(r.diagnostics[0].message.find("explicit narrowing cast"),
            std::string::npos);
  EXPECT_NE(r.diagnostics[1].message.find("implicit narrowing initialization"),
            std::string::npos);
}

TEST(NarrowingRule, AcceptsAssertWitnessAndClampedCast) {
  // The binlog AppendCount idiom (assert pins the range, then cast) and a
  // clamp-before-cast — the two sanctioned ways to narrow.
  LintResult r = RunOn("narrowing_clean");
  EXPECT_EQ(Keys(r), StrVec{});
}

// --- clouddb-codec-symmetry ------------------------------------------------

TEST(CodecSymmetryRule, FlagsWriterReaderDivergence) {
  LintResult r = RunOn("codec_symmetry");
  EXPECT_EQ(Keys(r), (StrVec{
                         "src/db/header_codec.cc:23:clouddb-codec-symmetry",
                     }));
  ASSERT_EQ(r.diagnostics.size(), 1u);
  // The diagnostic names both functions and renders both wire-op paths.
  EXPECT_NE(r.diagnostics[0].message.find("diverge"), std::string::npos);
  EXPECT_NE(r.diagnostics[0].message.find("{U32 U64}"), std::string::npos);
  EXPECT_NE(r.diagnostics[0].message.find("{U32 U32}"), std::string::npos);
}

TEST(CodecSymmetryRule, AcceptsMatchedPairsWithLoops) {
  // AppendCount/ReadCount helper pair plus starred (looped) row bodies on
  // both sides: the path sets must compare equal.
  LintResult r = RunOn("codec_symmetry_clean");
  EXPECT_EQ(Keys(r), StrVec{});
}

// --- report-only contract --------------------------------------------------

TEST(AbsIntRules, FindingsAreReportOnly) {
  // None of the abstract-interpretation rules may attach a fix: a bounds or
  // narrowing proof failure needs a human (or a NOLINT with rationale), so
  // `--fix` must stay convergent with these rules enabled.
  for (const char* scenario :
       {"bounds", "div_zero", "narrowing", "codec_symmetry"}) {
    LintResult r = RunOn(scenario);
    ASSERT_FALSE(r.diagnostics.empty()) << scenario;
    for (const Diagnostic& d : r.diagnostics) {
      EXPECT_EQ(d.fix_kind, FixKind::kNone) << d.Key();
    }
  }
}

// --- solver convergence ----------------------------------------------------

/// Builds a single-file interpreter over `text` and runs it to fixpoint.
struct Solved {
  SourceFile sf;
  FileIndex idx;
  std::vector<AnalyzedFile> files;
  InterprocContext ctx;
  AbsInterpreter ai;

  explicit Solved(const std::string& text)
      : sf(ParseSource(text, "src/db/vec_gen.cc")),
        idx(BuildIndex(sf)),
        files({{&sf, &idx}}),
        ctx(BuildInterprocContext(files)),
        ai(ctx) {
    ai.Run();
  }
};

TEST(AbsInterpreter, WideningTerminatesOnUnknownBoundLoop) {
  // `n` is a full-range parameter, so the loop cannot settle by joining:
  // without widening the head state would climb forever. kWidenAfter joins
  // then one widening step must reach the fixpoint, so the round count is
  // bounded by a small constant independent of n's range.
  Solved s(
      "int Sum(int n) {\n"
      "  int acc = 0;\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    acc = acc + i;\n"
      "  }\n"
      "  return acc;\n"
      "}\n");
  ASSERT_EQ(s.ctx.cg.functions.size(), 1u);
  const FnAbsResult& r = s.ai.Result(0);
  ASSERT_TRUE(r.solved);
  EXPECT_GT(r.join_rounds, 0);
  // Generous static budget: CFG nodes * (kWidenAfter + narrowing + slack).
  // The point is termination with a small bound, not the exact count.
  int budget = static_cast<int>(r.in.size()) *
               (AbsInterpreter::kWidenAfter + AbsInterpreter::kNarrowRounds + 4);
  EXPECT_LE(r.join_rounds, budget);
  EXPECT_GT(s.ai.interval_ops(), 0);
}

TEST(AbsInterpreter, NarrowingRecoversBoundsAfterWidening) {
  // After widening blows the loop index to +inf, the narrowing sweeps must
  // pull the post-loop state back under the guard: a counted loop to 8
  // leaves i == 8 exactly on exit.
  Solved s(
      "int Fixed() {\n"
      "  int i = 0;\n"
      "  while (i < 8) {\n"
      "    i = i + 1;\n"
      "  }\n"
      "  return i;\n"
      "}\n");
  ASSERT_EQ(s.ctx.cg.functions.size(), 1u);
  const FnAbsResult& r = s.ai.Result(0);
  ASSERT_TRUE(r.solved);
  EXPECT_FALSE(r.ret.bottom);
  EXPECT_EQ(r.ret.lo, 8);
  EXPECT_EQ(r.ret.hi, 8);
}

TEST(AbsInterpreter, PhaseBReturnSummariesCrossFunctions) {
  // Clamp() has a provable [0, 100] return; the caller's division by
  // `Clamp(x) + 1` is safe only through that summary.
  Solved s(
      "int Clamp(int x) {\n"
      "  if (x < 0) return 0;\n"
      "  if (x > 100) return 100;\n"
      "  return x;\n"
      "}\n"
      "\n"
      "int Scale(int total, int x) {\n"
      "  return total / (Clamp(x) + 1);\n"
      "}\n");
  ASSERT_EQ(s.ctx.cg.functions.size(), 2u);
  int clamp = s.ctx.cg.functions[0].fn->name == "Clamp" ? 0 : 1;
  const FnAbsResult& r = s.ai.Result(clamp);
  ASSERT_TRUE(r.solved);
  EXPECT_EQ(r.ret.lo, 0);
  EXPECT_EQ(r.ret.hi, 100);
  // And the div-zero rule agrees: the fixture-independent check here is
  // that RunLint over an equivalent source reports nothing, which the
  // div_zero_clean fixture already covers; this test pins the summary.
}

}  // namespace
}  // namespace clouddb::lint
