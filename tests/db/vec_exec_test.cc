// Vectorized execution engine: per-kernel unit tests of the predicate
// bytecode (compile, bind, filter) against the scalar tree-walking
// evaluator, plus end-to-end vectorized-on vs vectorized-off equivalence of
// Database::Execute. The engine's contract is bit-identical results either
// way — these tests are the enforcement.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "db/database.h"
#include "db/expr_eval.h"
#include "db/functions.h"
#include "db/schema.h"
#include "db/sql_ast.h"
#include "db/sql_parser.h"
#include "db/statement_cache.h"
#include "db/value.h"
#include "db/vec_arena.h"
#include "db/vec_expr.h"

namespace clouddb::db {
namespace {

Schema TestSchema() {
  auto schema = Schema::Create({
      {"id", ValueType::kInt64, false, true},
      {"n", ValueType::kInt64, true, false},
      {"d", ValueType::kDouble, true, false},
      {"s", ValueType::kString, true, false},
  });
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

/// Owns the parsed statement whose WHERE tree the compiled program points
/// into (column name views and literal pointers reference the Expr nodes).
struct Compiled {
  Statement stmt;
  VecProgram program;
  bool covered = false;

  const Expr& where() const {
    return *std::get<SelectStatement>(stmt).where;
  }
};

Compiled CompileWhere(const std::string& condition) {
  Compiled c;
  auto parsed = ParseSql("SELECT * FROM t WHERE " + condition);
  EXPECT_TRUE(parsed.ok()) << condition;
  c.stmt = std::move(*parsed);
  c.covered = CompilePredicate(c.where(), &c.program);
  return c;
}

/// Fixture rows covering every lane kind the kernels branch on: NULLs in
/// each column, negative/zero/positive ints, fractional doubles, and
/// strings that straddle the probe literals.
std::vector<Row> MakeRows() {
  auto row = [](int64_t id, Value n, Value d, Value s) {
    return Row{Value(id), std::move(n), std::move(d), std::move(s)};
  };
  return {
      row(1, Value(int64_t{5}), Value(2.5), Value("mm")),
      row(2, Value(), Value(0.0), Value("aa")),
      row(3, Value(int64_t{-7}), Value(), Value("zz")),
      row(4, Value(int64_t{5}), Value(-1.25), Value()),
      row(5, Value(int64_t{0}), Value(5.0), Value("mm")),
      row(6, Value(int64_t{42}), Value(2.5), Value("")),
      row(7, Value(), Value(), Value()),
      row(8, Value(int64_t{6}), Value(2.4999), Value("mn")),
  };
}

std::vector<uint32_t> ScalarFilter(const Expr& where, const Schema& schema,
                                   const std::vector<Row>& rows) {
  FunctionRegistry functions;
  std::vector<uint32_t> out;
  for (size_t i = 0; i < rows.size(); ++i) {
    auto keep = EvaluatePredicate(where, &schema, &rows[i], functions);
    EXPECT_TRUE(keep.ok());
    if (keep.ok() && *keep) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

std::vector<uint32_t> VecFilter(const Compiled& c, const Schema& schema,
                                const std::vector<Row>& rows,
                                const std::vector<Value>* params = nullptr) {
  VecBinding binding;
  EXPECT_TRUE(BindProgram(c.program, schema, params, &binding));
  std::vector<const Row*> ptrs;
  ptrs.reserve(rows.size());
  for (const Row& r : rows) ptrs.push_back(&r);
  std::vector<uint32_t> sel(rows.size() + 1);
  VecArena arena;
  size_t n =
      VecFilterChunk(binding, ptrs.data(), ptrs.size(), sel.data(), &arena);
  sel.resize(n);
  return sel;
}

/// The core per-kernel property: the compiled program selects exactly the
/// lanes the scalar evaluator keeps.
void ExpectVecMatchesScalar(const std::string& condition) {
  Schema schema = TestSchema();
  std::vector<Row> rows = MakeRows();
  Compiled c = CompileWhere(condition);
  ASSERT_TRUE(c.covered) << condition;
  EXPECT_EQ(VecFilter(c, schema, rows), ScalarFilter(c.where(), schema, rows))
      << condition;
}

TEST(VecKernels, Int64ComparisonsMatchScalar) {
  for (const char* cond : {"n = 5", "n != 5", "n < 5", "n <= 5", "n > 5",
                           "n >= 5", "n = -7", "n < 0"}) {
    ExpectVecMatchesScalar(cond);
  }
}

TEST(VecKernels, DoubleComparisonsMatchScalar) {
  for (const char* cond : {"d = 2.5", "d != 2.5", "d < 2.5", "d <= 2.5",
                           "d > 2.5", "d >= 2.5", "d < 0.0"}) {
    ExpectVecMatchesScalar(cond);
  }
}

TEST(VecKernels, StringComparisonsMatchScalar) {
  for (const char* cond : {"s = 'mm'", "s != 'mm'", "s < 'mm'", "s <= 'mm'",
                           "s > 'mm'", "s >= 'mm'", "s = ''"}) {
    ExpectVecMatchesScalar(cond);
  }
}

TEST(VecKernels, MixedNumericComparisonsMatchScalar) {
  // Int column vs double literal and double column vs int literal go
  // through the double three-way, same as Value::Compare.
  for (const char* cond : {"n < 2.5", "n >= 5.0", "n = 5.0", "d >= 2",
                           "d = 5", "d < -1"}) {
    ExpectVecMatchesScalar(cond);
  }
}

TEST(VecKernels, CrossKindConstantsMatchScalar) {
  // Numeric column vs string literal (and vice versa) never compare equal;
  // Value::Compare ranks numeric < string, which the kernels collapse to a
  // fixed three-way result per chunk.
  for (const char* cond : {"n = 'x'", "n != 'x'", "n < 'x'", "n > 'x'",
                           "s = 5", "s != 5", "s < 5", "s > 5"}) {
    ExpectVecMatchesScalar(cond);
  }
}

TEST(VecKernels, NullLiteralComparisonsMatchScalar) {
  // Comparing against NULL yields unknown for every lane — nothing
  // selected, matching SQL semantics in the scalar path.
  for (const char* cond : {"n = NULL", "n != NULL", "s < NULL"}) {
    ExpectVecMatchesScalar(cond);
  }
}

TEST(VecKernels, IsNullMatchesScalar) {
  for (const char* cond : {"n IS NULL", "n IS NOT NULL", "d IS NULL",
                           "s IS NOT NULL", "id IS NULL"}) {
    ExpectVecMatchesScalar(cond);
  }
}

TEST(VecKernels, BooleanCombinatorsMatchScalar) {
  // Three-valued AND/OR/NOT over lanes that are true, false, and unknown
  // (the NULL rows make every combination reachable).
  for (const char* cond :
       {"n > 2 AND d < 3.5", "n > 2 OR d < 3.5", "NOT (n = 5)",
        "NOT (n IS NULL)", "(n > 2 AND d < 3.5) OR s = 'aa'",
        "NOT (n < 10 OR d > 0.5)", "n >= 0 AND n <= 10 AND s != 'zz'",
        "NOT (NOT (n = 5))"}) {
    ExpectVecMatchesScalar(cond);
  }
}

TEST(VecKernels, EmptySelectionShortCircuits) {
  // The first conjunct matches nothing, so the evaluator must stop without
  // running the rest — observable only through the (correct, empty) result.
  ExpectVecMatchesScalar("n > 1000000 AND s = 'zz'");
  ExpectVecMatchesScalar("n > 1000000 AND n < -1000000 AND d = 0.0");
}

TEST(VecKernels, UncoveredShapesAreRejectedByTheCompiler) {
  // Arithmetic, column-to-column comparison, function calls: outside the
  // never-raises coverage, so the whole program must disengage.
  for (const char* cond : {"n + 1 = 6", "n = id", "UPPER(s) = 'MM'",
                           "n = 5 AND n + 1 = 6"}) {
    Compiled c = CompileWhere(cond);
    EXPECT_FALSE(c.covered) << cond;
  }
}

TEST(VecKernels, RandomizedPredicatesMatchScalar) {
  // Property sweep: random comparisons joined by random AND/OR/NOT over
  // random rows (with NULLs) must select the same lanes as the scalar
  // evaluator, at sizes that cross the chunk-internal word boundaries.
  Schema schema = TestSchema();
  Rng rng(20260809);
  const char* cols[] = {"n", "d", "s"};
  const char* ops[] = {"=", "!=", "<", "<=", ">", ">="};
  auto leaf = [&]() {
    std::string col = cols[rng.UniformInt(0, 2)];
    if (rng.UniformInt(0, 9) == 0) {
      return col + (rng.UniformInt(0, 1) ? " IS NULL" : " IS NOT NULL");
    }
    std::string op = ops[rng.UniformInt(0, 5)];
    std::string lit;
    switch (rng.UniformInt(0, 2)) {
      case 0:
        lit = StrFormat("%lld",
                        static_cast<long long>(rng.UniformInt(-5, 5)));
        break;
      case 1:
        lit = StrFormat("%lld.5",
                        static_cast<long long>(rng.UniformInt(-5, 5)));
        break;
      default:
        lit = StrFormat("'s%lld'",
                        static_cast<long long>(rng.UniformInt(0, 9)));
        break;
    }
    return col + " " + op + " " + lit;
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::string cond = leaf();
    for (int64_t i = rng.UniformInt(0, 3); i > 0; --i) {
      std::string joiner = rng.UniformInt(0, 1) ? " AND " : " OR ";
      cond = "(" + cond + ")" + joiner + "(" + leaf() + ")";
    }
    if (rng.UniformInt(0, 3) == 0) cond = "NOT (" + cond + ")";

    size_t n_rows = static_cast<size_t>(rng.UniformInt(1, 130));
    std::vector<Row> rows;
    rows.reserve(n_rows);
    for (size_t i = 0; i < n_rows; ++i) {
      Row row;
      row.push_back(Value(static_cast<int64_t>(i)));
      row.push_back(rng.UniformInt(0, 4) == 0
                        ? Value()
                        : Value(rng.UniformInt(-5, 5)));
      row.push_back(rng.UniformInt(0, 4) == 0
                        ? Value()
                        : Value(rng.UniformInt(-10, 10) * 0.5));
      row.push_back(
          rng.UniformInt(0, 4) == 0
              ? Value()
              : Value(StrFormat("s%lld", static_cast<long long>(
                                             rng.UniformInt(0, 9)))));
      rows.push_back(std::move(row));
    }

    Compiled c = CompileWhere(cond);
    ASSERT_TRUE(c.covered) << cond;
    EXPECT_EQ(VecFilter(c, schema, rows),
              ScalarFilter(c.where(), schema, rows))
        << cond << " over " << n_rows << " rows";
  }
}

TEST(VecKernels, CacheCompilesTemplatesAndBindsParameters) {
  // The statement cache lowers the WHERE at template-insert time; literals
  // become parameter slots that BindProgram resolves per call.
  StatementCache cache;
  auto call = cache.Prepare("SELECT * FROM t WHERE n = 5 AND s = 'mm'");
  ASSERT_TRUE(call.ok());
  ASSERT_TRUE(call->prepared->has_where_program);
  EXPECT_EQ(cache.stats().programs_compiled, 1);

  Schema schema = TestSchema();
  std::vector<Row> rows = MakeRows();
  Compiled ref = CompileWhere("n = 5 AND s = 'mm'");
  ASSERT_TRUE(ref.covered);

  VecBinding binding;
  ASSERT_TRUE(BindProgram(call->prepared->where_program, schema,
                          &call->params, &binding));
  std::vector<const Row*> ptrs;
  for (const Row& r : rows) ptrs.push_back(&r);
  std::vector<uint32_t> sel(rows.size() + 1);
  VecArena arena;
  size_t n =
      VecFilterChunk(binding, ptrs.data(), ptrs.size(), sel.data(), &arena);
  sel.resize(n);
  EXPECT_EQ(sel, ScalarFilter(ref.where(), schema, rows));
}

TEST(VecKernels, BindFailsAgainstChangedSchema) {
  // The DDL-staleness defense: a program compiled against one catalog must
  // refuse to bind against a schema missing its columns.
  Compiled c = CompileWhere("n = 5");
  ASSERT_TRUE(c.covered);
  auto other = Schema::Create({{"id", ValueType::kInt64, false, true}});
  ASSERT_TRUE(other.ok());
  VecBinding binding;
  EXPECT_FALSE(BindProgram(c.program, *other, nullptr, &binding));
}

TEST(VecKernels, MissingParameterFailsToBind) {
  StatementCache cache;
  auto call = cache.Prepare("SELECT * FROM t WHERE n = 5");
  ASSERT_TRUE(call.ok());
  ASSERT_TRUE(call->prepared->has_where_program);
  Schema schema = TestSchema();
  VecBinding binding;
  std::vector<Value> no_params;
  EXPECT_FALSE(BindProgram(call->prepared->where_program, schema, &no_params,
                           &binding));
}

TEST(VecArenaTest, ResetReusesCapacity) {
  VecArena arena;
  (void)arena.AllocateArray<uint8_t>(1000);
  (void)arena.AllocateArray<uint64_t>(500);
  size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  for (int i = 0; i < 16; ++i) {
    arena.Reset();
    (void)arena.AllocateArray<uint8_t>(1000);
    (void)arena.AllocateArray<uint64_t>(500);
  }
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

// ---------------------------------------------------------------------------
// End-to-end: two databases with identical data, vectorized execution on in
// one and off in the other. Every observable of ExecResult must match.

class VecExecEquivalenceTest : public ::testing::Test {
 protected:
  static DatabaseOptions Options(bool vectorized) {
    DatabaseOptions options;
    options.vectorized_exec = vectorized;
    return options;
  }

  VecExecEquivalenceTest() : vec_(Options(true)), scalar_(Options(false)) {}

  void Fill(int n_rows, uint64_t seed) {
    Rng rng(seed);
    for (Database* d : {&vec_, &scalar_}) {
      ASSERT_TRUE(d->Execute("CREATE TABLE t (id BIGINT PRIMARY KEY, "
                             "n BIGINT, d DOUBLE, s TEXT)")
                      .ok());
    }
    for (int i = 0; i < n_rows; ++i) {
      std::string n = rng.UniformInt(0, 6) == 0
                          ? "NULL"
                          : StrFormat("%lld", static_cast<long long>(
                                                  rng.UniformInt(-50, 50)));
      std::string dv = rng.UniformInt(0, 6) == 0
                           ? "NULL"
                           : StrFormat("%lld.25",
                                       static_cast<long long>(
                                           rng.UniformInt(-20, 20)));
      std::string s =
          rng.UniformInt(0, 6) == 0
              ? "NULL"
              : StrFormat("'w%lld'", static_cast<long long>(
                                         rng.UniformInt(0, 30)));
      std::string sql =
          StrFormat("INSERT INTO t VALUES (%d, %s, %s, %s)", i, n.c_str(),
                    dv.c_str(), s.c_str());
      ASSERT_TRUE(vec_.Execute(sql).ok()) << sql;
      ASSERT_TRUE(scalar_.Execute(sql).ok()) << sql;
    }
  }

  /// Executes `sql` on both engines and requires every observable field of
  /// the result — including row ORDER, rows_examined, and the chosen plan —
  /// to be identical. Errors must match byte-for-byte too.
  void ExpectSameExec(const std::string& sql) {
    auto a = vec_.Execute(sql);
    auto b = scalar_.Execute(sql);
    ASSERT_EQ(a.ok(), b.ok()) << sql;
    if (!a.ok()) {
      EXPECT_EQ(a.status().ToString(), b.status().ToString()) << sql;
      return;
    }
    EXPECT_EQ(a->column_names, b->column_names) << sql;
    ASSERT_EQ(a->rows.size(), b->rows.size()) << sql;
    for (size_t i = 0; i < a->rows.size(); ++i) {
      EXPECT_EQ(RowToString(a->rows[i]), RowToString(b->rows[i]))
          << sql << " row " << i;
    }
    EXPECT_EQ(a->rows_affected, b->rows_affected) << sql;
    EXPECT_EQ(a->rows_examined, b->rows_examined) << sql;
    EXPECT_EQ(a->plan, b->plan) << sql;
    EXPECT_EQ(a->scan_ordered_by, b->scan_ordered_by) << sql;
  }

  Database vec_;
  Database scalar_;
};

TEST_F(VecExecEquivalenceTest, SelectsAreBitIdentical) {
  Fill(600, 11);
  ExpectSameExec("SELECT * FROM t WHERE n > 10 AND s = 'w3'");
  ExpectSameExec("SELECT id, s FROM t WHERE n IS NULL");
  ExpectSameExec("SELECT * FROM t WHERE NOT (n < 10 OR d > 0.5)");
  ExpectSameExec("SELECT * FROM t WHERE d >= -3.25 AND d <= 4.25 "
                 "ORDER BY id LIMIT 17");
  ExpectSameExec("SELECT * FROM t WHERE s != 'w0' AND s IS NOT NULL "
                 "ORDER BY s");
  ExpectSameExec("SELECT * FROM t WHERE n = 'not_a_number'");
  ExpectSameExec("SELECT * FROM t");  // no WHERE: both take the plain scan
  // PK point lookup and range: index paths with and without residual
  // predicates (the residual runs through the chunked filter when on).
  ExpectSameExec("SELECT * FROM t WHERE id = 37");
  ExpectSameExec("SELECT * FROM t WHERE id >= 10 AND id < 300 AND n > 0");
  // Uncovered predicate: the vectorized engine must fall back scalar and
  // still agree (trivially — it runs the identical code).
  ExpectSameExec("SELECT * FROM t WHERE n + 0 = 4");
}

TEST_F(VecExecEquivalenceTest, AggregatesAreBitIdentical) {
  Fill(600, 12);
  ExpectSameExec("SELECT COUNT(*) FROM t WHERE n > 0");
  ExpectSameExec("SELECT SUM(n), MIN(n), MAX(n) FROM t WHERE s != 'w9'");
  // AVG and SUM over doubles: accumulation order must match exactly for
  // bit-identical floating-point results.
  ExpectSameExec("SELECT SUM(d), AVG(d) FROM t WHERE n IS NOT NULL");
  ExpectSameExec("SELECT MIN(s), MAX(s) FROM t WHERE d > -100");
  ExpectSameExec("SELECT COUNT(*), SUM(n), AVG(n) FROM t");
  // Aggregates over an empty match set (NULL results except COUNT).
  ExpectSameExec("SELECT COUNT(*), SUM(n), MIN(d), MAX(s) FROM t "
                 "WHERE n > 1000000");
  // Mixed int/double SUM (int column promoted exactly as scalar does).
  ExpectSameExec("SELECT SUM(n), SUM(d) FROM t WHERE n < 0 OR d < 0");
  // Error paths must be identical text: SUM over a string column.
  ExpectSameExec("SELECT SUM(s) FROM t");
}

TEST_F(VecExecEquivalenceTest, WritesConvergeToIdenticalContents) {
  Fill(400, 13);
  ExpectSameExec("UPDATE t SET n = 99 WHERE n > 25 AND s IS NOT NULL");
  ExpectSameExec("DELETE FROM t WHERE d < -2.25");
  ExpectSameExec("UPDATE t SET s = 'rewritten' WHERE n = 99");
  ExpectSameExec("SELECT COUNT(*), SUM(n) FROM t");
  EXPECT_TRUE(Database::ContentsEqual(vec_, scalar_));
  std::string err;
  EXPECT_TRUE(vec_.ValidateAllIndexes(&err)) << err;
}

TEST_F(VecExecEquivalenceTest, ChunkBoundaryRowCountsAgree) {
  // Table sizes straddling the 1024-row chunk size: partial chunk, exactly
  // one chunk, one chunk plus one row.
  for (int n_rows : {1, 1023, 1024, 1025}) {
    DatabaseOptions on = Options(true);
    DatabaseOptions off = Options(false);
    Database vec(on), scalar(off);
    for (Database* d : {&vec, &scalar}) {
      ASSERT_TRUE(
          d->Execute("CREATE TABLE t (id BIGINT PRIMARY KEY, n BIGINT)")
              .ok());
      for (int i = 0; i < n_rows; ++i) {
        ASSERT_TRUE(d->Execute(StrFormat("INSERT INTO t VALUES (%d, %d)", i,
                                         i % 7))
                        .ok());
      }
    }
    for (const char* sql :
         {"SELECT * FROM t WHERE n = 3", "SELECT COUNT(*), SUM(n) FROM t",
          "SELECT * FROM t WHERE n != 100"}) {
      auto a = vec.Execute(sql);
      auto b = scalar.Execute(sql);
      ASSERT_TRUE(a.ok() && b.ok()) << sql;
      ASSERT_EQ(a->rows.size(), b->rows.size()) << sql << " n=" << n_rows;
      for (size_t i = 0; i < a->rows.size(); ++i) {
        EXPECT_EQ(RowToString(a->rows[i]), RowToString(b->rows[i]));
      }
      EXPECT_EQ(a->rows_examined, b->rows_examined) << sql;
    }
    // The filter SELECTs each visit ceil(n/1024) chunks covering all rows.
    EXPECT_EQ(vec.vec_stats().chunks_filtered,
              2 * ((n_rows + 1023) / 1024));
    EXPECT_EQ(vec.vec_stats().rows_filtered, 2 * n_rows);
    EXPECT_EQ(scalar.vec_stats().chunks_filtered, 0);
  }
}

TEST_F(VecExecEquivalenceTest, StatsTrackEngagementAndFallback) {
  Fill(100, 14);
  vec_.ResetVecStats();
  ASSERT_TRUE(vec_.Execute("SELECT * FROM t WHERE n > 0").ok());
  EXPECT_EQ(vec_.vec_stats().chunks_filtered, 1);
  EXPECT_EQ(vec_.vec_stats().rows_filtered, 100);
  EXPECT_EQ(vec_.vec_stats().scalar_fallbacks, 0);
  ASSERT_TRUE(vec_.Execute("SELECT SUM(n) FROM t WHERE n > 0").ok());
  EXPECT_EQ(vec_.vec_stats().fused_aggregates, 1);
  // Uncovered shape: engine disengages and counts the fallback.
  ASSERT_TRUE(vec_.Execute("SELECT * FROM t WHERE n + 0 = 4").ok());
  EXPECT_EQ(vec_.vec_stats().scalar_fallbacks, 1);
  // Toggled off at runtime: nothing counts.
  vec_.ResetVecStats();
  vec_.set_vectorized_exec_enabled(false);
  ASSERT_TRUE(vec_.Execute("SELECT * FROM t WHERE n > 0").ok());
  EXPECT_EQ(vec_.vec_stats().chunks_filtered, 0);
  vec_.set_vectorized_exec_enabled(true);
}

TEST_F(VecExecEquivalenceTest, RandomizedStatementsAreBitIdentical) {
  Fill(700, 15);
  Rng rng(99);
  const char* ops[] = {"=", "!=", "<", "<=", ">", ">="};
  for (int trial = 0; trial < 150; ++trial) {
    std::string sql = "SELECT * FROM t WHERE ";
    int64_t conjuncts = rng.UniformInt(1, 3);
    for (int64_t i = 0; i < conjuncts; ++i) {
      if (i > 0) sql += rng.UniformInt(0, 1) ? " AND " : " OR ";
      switch (rng.UniformInt(0, 3)) {
        case 0:
          sql += StrFormat("n %s %lld", ops[rng.UniformInt(0, 5)],
                           static_cast<long long>(rng.UniformInt(-50, 50)));
          break;
        case 1:
          sql += StrFormat("d %s %lld.25", ops[rng.UniformInt(0, 5)],
                           static_cast<long long>(rng.UniformInt(-20, 20)));
          break;
        case 2:
          sql += StrFormat("s %s 'w%lld'", ops[rng.UniformInt(0, 5)],
                           static_cast<long long>(rng.UniformInt(0, 30)));
          break;
        default:
          sql += rng.UniformInt(0, 1) ? "n IS NULL" : "s IS NOT NULL";
          break;
      }
    }
    if (rng.UniformInt(0, 4) == 0) sql += " ORDER BY id";
    if (rng.UniformInt(0, 4) == 0) {
      sql += StrFormat(" LIMIT %lld",
                       static_cast<long long>(rng.UniformInt(1, 40)));
    }
    ExpectSameExec(sql);
  }
}

}  // namespace
}  // namespace clouddb::db
