#include "db/statement_cache.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/cloud_provider.h"
#include "common/str_util.h"
#include "db/database.h"
#include "db/sql_lexer.h"
#include "repl/replication_cluster.h"
#include "sim/simulation.h"
#include "common/status.h"
#include "db/sql_ast.h"
#include "db/value.h"

namespace clouddb::db {
namespace {

using StrVec = std::vector<std::string>;

// ---------------------------------------------------------------------------
// Fingerprinting

// The fused single-pass scan (the hit path) must agree byte for byte — and
// value for value — with the reference token-stream construction on every
// lexical shape the dialect can produce.
TEST(Fingerprint, FusedScanMatchesTokenConstruction) {
  const StrVec corpus = {
      "SELECT * FROM t WHERE a = 5",
      "select  A , b  from T where a >= 1 AND b <> 'x' or c != .5",
      "INSERT INTO t (a, b) VALUES (1, 'it''s'), (2, '')",
      "UPDATE t SET a = -5, b = 1.5e+3 WHERE c BETWEEN 2 AND 7",
      "DELETE FROM t WHERE a IN (1, 2, 3) AND b IS NOT NULL",
      "SELECT MIN(Age), COUNT(*) FROM people ORDER BY id DESC LIMIT 10",
      "SELECT NOW_MICROS() FROM t WHERE ts < NOW_MICROS() - 100",
      "CREATE TABLE t (a BIGINT PRIMARY KEY, b VARCHAR(32) NOT NULL)",
      "BEGIN", "COMMIT", "ROLLBACK", "",
      "   SELECT\t*\nFROM t  ",
  };
  for (const std::string& sql : corpus) {
    std::vector<Value> scan_params, token_params;
    auto scanned = FingerprintSql(sql, &scan_params);
    ASSERT_TRUE(scanned.ok()) << sql;
    auto tokens = Tokenize(sql);
    ASSERT_TRUE(tokens.ok()) << sql;
    EXPECT_EQ(*scanned, FingerprintTokens(*tokens, &token_params)) << sql;
    EXPECT_EQ(scan_params, token_params) << sql;
  }
}

TEST(Fingerprint, FusedScanMatchesTokenizeErrors) {
  for (const std::string& sql :
       {"SELECT 'unterminated", "SELECT @ FROM t",
        "SELECT 99999999999999999999 FROM t"}) {
    std::vector<Value> params;
    auto scanned = FingerprintSql(sql, &params);
    auto tokens = Tokenize(sql);
    ASSERT_FALSE(scanned.ok()) << sql;
    ASSERT_FALSE(tokens.ok()) << sql;
    EXPECT_EQ(scanned.status().ToString(), tokens.status().ToString()) << sql;
  }
}

TEST(Fingerprint, SameShapeDifferentLiteralsShareOneTemplate) {
  StatementCache cache;
  auto a = cache.Prepare("SELECT * FROM t WHERE a = 5 AND b = 'x'");
  auto b = cache.Prepare("select *  from t WHERE a=99 and B = 'yy'");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // "b" vs "B" differ (identifier case is preserved) — use matching spelling
  // to show literal masking and whitespace/keyword folding alone.
  auto c = cache.Prepare("select *  from t WHERE a=99 and b = 'yy'");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->prepared.get(), c->prepared.get());  // literally one template
  EXPECT_NE(a->prepared.get(), b->prepared.get());
  EXPECT_EQ(a->params, (std::vector<Value>{Value(int64_t{5}), Value("x")}));
  EXPECT_EQ(c->params, (std::vector<Value>{Value(int64_t{99}), Value("yy")}));
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 2);
}

// Statements with different semantics must never collapse to one template.
TEST(Fingerprint, NeverConflatesDifferentSemantics) {
  const StrVec distinct = {
      "SELECT a FROM t WHERE x = 1",
      "SELECT a, b FROM t WHERE x = 1",      // different column list
      "SELECT a FROM t WHERE x = NOW_MICROS()",  // function, not literal
      "SELECT a FROM t WHERE x IN (1)",
      "SELECT a FROM t WHERE x IN (1, 2)",   // different IN-list arity
      "SELECT a FROM t WHERE x = -1",        // unary minus is shape, not value
      "SELECT MIN(Age) FROM t",
      "SELECT MIN(age) FROM t",  // output column name echoes the spelling
      "SELECT a FROM t WHERE x = 1 LIMIT 2",
  };
  StatementCache cache;
  for (const std::string& sql : distinct) {
    ASSERT_TRUE(cache.Prepare(sql).ok()) << sql;
  }
  EXPECT_EQ(cache.stats().misses, static_cast<int64_t>(distinct.size()));
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.size(), distinct.size());
}

TEST(Fingerprint, DdlAndTransactionControlBypass) {
  StatementCache cache;
  for (const std::string& sql :
       {"CREATE TABLE t (a INT PRIMARY KEY)", "CREATE INDEX i ON t (a)",
        "DROP TABLE t", "TRUNCATE t", "BEGIN", "COMMIT", "ROLLBACK", ""}) {
    auto call = cache.Prepare(sql);
    EXPECT_FALSE(call.ok()) << sql;
    EXPECT_EQ(call.status().code(), StatusCode::kNotSupported) << sql;
  }
  EXPECT_EQ(cache.stats().bypasses, 8);
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// LRU behavior

TEST(StatementCacheLru, RecencyAndEvictionAreDeterministic) {
  StatementCache cache(/*capacity=*/2);
  (void)cache.Prepare("SELECT a FROM t");
  (void)cache.Prepare("SELECT b FROM t");
  EXPECT_EQ(cache.FingerprintsByRecency(),
            (StrVec{"SELECT b FROM t ", "SELECT a FROM t "}));
  // Touch `a`: becomes MRU.
  (void)cache.Prepare("SELECT a FROM t");
  EXPECT_EQ(cache.FingerprintsByRecency(),
            (StrVec{"SELECT a FROM t ", "SELECT b FROM t "}));
  // Insert a third shape: `b` (now LRU) is evicted.
  (void)cache.Prepare("SELECT c FROM t");
  EXPECT_EQ(cache.FingerprintsByRecency(),
            (StrVec{"SELECT c FROM t ", "SELECT a FROM t "}));
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(StatementCacheLru, IdenticalTextMemoCountsAsHitAndTouches) {
  StatementCache cache;
  (void)cache.Prepare("SELECT a FROM t WHERE x = 1");
  (void)cache.Prepare("SELECT b FROM t");
  // Same text as the last call: served from the memo.
  auto memo = cache.Prepare("SELECT b FROM t");
  ASSERT_TRUE(memo.ok());
  EXPECT_EQ(cache.stats().hits, 1);
  // And the same text after an intervening statement: the scan-hit path.
  (void)cache.Prepare("SELECT a FROM t WHERE x = 2");
  auto scan = cache.Prepare("SELECT b FROM t");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->prepared.get(), memo->prepared.get());
  EXPECT_EQ(cache.stats().hits, 3);  // memo, the x=2 hit, the scan hit
  EXPECT_EQ(cache.FingerprintsByRecency().front(), "SELECT b FROM t ");
}

TEST(StatementCacheLru, InvalidateDropsEverythingIncludingMemo) {
  StatementCache cache;
  (void)cache.Prepare("SELECT a FROM t WHERE x = 1");
  (void)cache.Prepare("SELECT a FROM t WHERE x = 1");
  EXPECT_EQ(cache.stats().hits, 1);
  cache.Invalidate();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1);
  auto call = cache.Prepare("SELECT a FROM t WHERE x = 1");
  ASSERT_TRUE(call.ok());
  EXPECT_EQ(cache.stats().misses, 2);  // re-parsed, not served from the memo
}

// An execution holding a PreparedCall must survive eviction of its entry.
TEST(StatementCacheLru, InFlightCallSurvivesEviction) {
  StatementCache cache(/*capacity=*/1);
  auto call = cache.Prepare("SELECT a FROM t WHERE x = 1");
  ASSERT_TRUE(call.ok());
  (void)cache.Prepare("SELECT b FROM t");  // evicts the first template
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(call->prepared->fingerprint, "SELECT a FROM t WHERE x = ? ");
  EXPECT_TRUE(std::holds_alternative<SelectStatement>(
      call->prepared->statement));
}

// ---------------------------------------------------------------------------
// Through the Database: DDL invalidation and plan re-derivation

class CachedDatabaseTest : public ::testing::Test {
 protected:
  ExecResult Must(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : ExecResult{};
  }

  Database db_;
};

TEST_F(CachedDatabaseTest, DdlInvalidatesCachedPlans) {
  Must("CREATE TABLE t (id BIGINT PRIMARY KEY, d BIGINT)");
  for (int i = 0; i < 20; ++i) {
    Must(StrFormat("INSERT INTO t VALUES (%d, %d)", i, i % 5));
  }
  EXPECT_GT(db_.statement_cache().size(), 0u);
  // Cache the SELECT's template and plan: no index on d -> table scan.
  ExecResult before = Must("SELECT id FROM t WHERE d = 3");
  EXPECT_EQ(before.plan, "table_scan");
  // DDL drops every cached template...
  Must("CREATE INDEX idx_d ON t (d)");
  EXPECT_EQ(db_.statement_cache().size(), 0u);
  EXPECT_GT(db_.statement_cache().stats().invalidations, 0);
  // ...and the replan through the fresh template picks up the new index.
  ExecResult after = Must("SELECT id FROM t WHERE d = 3");
  EXPECT_EQ(after.plan, "index_eq(d)");
  EXPECT_EQ(after.rows, before.rows);
}

TEST_F(CachedDatabaseTest, DropAndRecreateResolvesAgainstNewCatalog) {
  Must("CREATE TABLE t (a BIGINT PRIMARY KEY)");
  Must("INSERT INTO t VALUES (1)");
  EXPECT_EQ(Must("SELECT COUNT(*) FROM t").rows[0][0].AsInt64(), 1);
  Must("DROP TABLE t");
  Must("CREATE TABLE t (a BIGINT PRIMARY KEY)");
  EXPECT_EQ(Must("SELECT COUNT(*) FROM t").rows[0][0].AsInt64(), 0);
}

TEST_F(CachedDatabaseTest, DdlDropsCompiledPredicateBytecode) {
  Must("CREATE TABLE t (id BIGINT PRIMARY KEY, n BIGINT, s TEXT)");
  for (int i = 0; i < 30; ++i) {
    Must(StrFormat("INSERT INTO t VALUES (%d, %d, 'x%d')", i, i % 7, i % 3));
  }
  // Caching the SELECT's template lowers its WHERE to predicate bytecode.
  const std::string select = "SELECT id FROM t WHERE n = 3 AND s = 'x1'";
  ExecResult before = Must(select);
  EXPECT_GE(db_.statement_cache().stats().programs_compiled, 1);
  // Keep the prepared entry alive across the DDL, as an in-flight routed
  // execution would: its compiled program must never read the new catalog
  // through its old column slots.
  auto call = db_.Prepare(select);
  ASSERT_TRUE(call.ok());
  ASSERT_TRUE(call->prepared->has_where_program);

  // DDL drops every cached template and counts the compiled programs that
  // went with them.
  Must("DROP TABLE t");
  EXPECT_GE(db_.statement_cache().stats().programs_invalidated, 1);
  EXPECT_EQ(db_.statement_cache().size(), 0u);

  // Re-create the table with the filtered columns at different slots (and
  // an extra column in between): a stale program executing by its old slot
  // indexes would filter id against 'n = 3' and s against a double.
  Must("CREATE TABLE t (id BIGINT PRIMARY KEY, s TEXT, extra DOUBLE, "
       "n BIGINT)");
  for (int i = 0; i < 30; ++i) {
    Must(StrFormat("INSERT INTO t VALUES (%d, 'x%d', 0.5, %d)", i, i % 3,
                   i % 7));
  }
  // The survivor re-binds its program by column name against the live
  // schema at execution, so it matches a fresh statement exactly.
  auto stale = db_.ExecutePrepared(*call, select, nullptr);
  ASSERT_TRUE(stale.ok());
  ExecResult fresh = Must(select);
  EXPECT_EQ(stale->rows, fresh.rows);
  EXPECT_EQ(stale->rows, before.rows);  // same logical data, same ids
}

// ---------------------------------------------------------------------------
// Cache on/off equivalence: byte-identical results, plans, and errors

void ExpectEquivalent(const StrVec& statements) {
  DatabaseOptions off_options;
  off_options.statement_cache = false;
  Database on;   // cache defaults on
  Database off(std::move(off_options));
  for (const std::string& sql : statements) {
    auto a = on.Execute(sql);
    auto b = off.Execute(sql);
    ASSERT_EQ(a.ok(), b.ok()) << sql;
    if (!a.ok()) {
      EXPECT_EQ(a.status().ToString(), b.status().ToString()) << sql;
      continue;
    }
    EXPECT_EQ(a->column_names, b->column_names) << sql;
    EXPECT_EQ(a->rows, b->rows) << sql;
    EXPECT_EQ(a->rows_affected, b->rows_affected) << sql;
    EXPECT_EQ(a->rows_examined, b->rows_examined) << sql;
    EXPECT_EQ(a->plan, b->plan) << sql;
    EXPECT_EQ(a->scan_ordered_by, b->scan_ordered_by) << sql;
  }
  EXPECT_GT(on.statement_cache().stats().hits, 0);
  EXPECT_EQ(off.statement_cache().stats().hits, 0);
}

TEST(CacheEquivalence, RepeatedShapesPlansErrorsAndEdgeLiterals) {
  StrVec statements = {
      "CREATE TABLE people (id BIGINT PRIMARY KEY, name TEXT NOT NULL, "
      "Age INT, score DOUBLE)",
      "CREATE INDEX idx_age ON people (Age)",
  };
  for (int i = 1; i <= 30; ++i) {
    statements.push_back(StrFormat(
        "INSERT INTO people VALUES (%d, 'p%d', %d, %d.5)", i, i, 20 + i % 9,
        i));
  }
  StrVec probes = {
      // Repeated shapes with fresh literals: point, range, scan.
      "SELECT * FROM people WHERE id = 7",
      "SELECT * FROM people WHERE id = 23",
      "SELECT name FROM people WHERE Age >= 21 AND Age <= 24 ORDER BY Age",
      "SELECT name FROM people WHERE Age >= 25 AND Age <= 28 ORDER BY Age",
      // LIMIT binds through a parameter slot; 0 and repeated values too.
      "SELECT id FROM people ORDER BY id LIMIT 5",
      "SELECT id FROM people ORDER BY id LIMIT 0",
      "SELECT id FROM people ORDER BY id LIMIT 5",
      // Negative literals lex as unary minus over a masked literal.
      "SELECT id FROM people WHERE id > -3 AND score > -1.5 LIMIT 3",
      // Aggregate output columns echo the query's identifier spelling.
      "SELECT MIN(Age), MAX(Age), AVG(score) FROM people",
      "SELECT COUNT(*) FROM people WHERE name = 'p3'",
      // String edge cases: '' escape, empty string.
      "SELECT id FROM people WHERE name = 'it''s'",
      "SELECT id FROM people WHERE name = ''",
      // Writes through the cache.
      "UPDATE people SET Age = 99 WHERE id = 5",
      "UPDATE people SET Age = 98 WHERE id = 6",
      "DELETE FROM people WHERE id = 30",
      // Errors must be byte-identical: unknown table, bad syntax, bad lex,
      // negative LIMIT (a *valid* template whose bound value is rejected).
      "SELECT * FROM nope WHERE id = 1",
      "SELECT FROM WHERE",
      "SELECT 'unterminated",
      "SELECT id FROM people LIMIT 0 - 1",
      // Uncacheable statements interleaved.
      "BEGIN", "COMMIT",
      "SELECT * FROM people WHERE id = 7",
  };
  statements.insert(statements.end(), probes.begin(), probes.end());
  ExpectEquivalent(statements);
}

// ---------------------------------------------------------------------------
// Replication: caches warm independently on both ends and converge

TEST(CachedReplication, MasterAndSlavesConvergeWithWarmCaches) {
  sim::Simulation sim;
  cloud::CloudOptions options;
  options.latency_jitter_sigma = 0.0;
  options.cpu_speed_cov = 0.0;
  options.max_initial_clock_offset = 0;
  options.max_clock_drift_ppm = 0.0;
  cloud::CloudProvider provider(&sim, options, 1);
  repl::ClusterConfig config;
  config.num_slaves = 2;
  repl::ReplicationCluster cluster(&provider, config);

  ASSERT_TRUE(cluster.master()
                  ->ExecuteDirect(
                      "CREATE TABLE t (a BIGINT PRIMARY KEY, b BIGINT)")
                  .ok());
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(cluster.master()
                    ->ExecuteDirect(StrFormat(
                        "INSERT INTO t VALUES (%d, %d)", i, i * i))
                    .ok());
  }
  sim.Run();  // drain replication
  EXPECT_TRUE(cluster.FullyReplicated());
  EXPECT_TRUE(cluster.Converged());
  // One INSERT shape, parsed once per replica: the master's cache served the
  // repeats, and each slave's apply loop prepared through its own cache.
  EXPECT_GT(cluster.master()->database().statement_cache().stats().hits, 20);
  for (int i = 0; i < 2; ++i) {
    const StatementCacheStats& stats =
        cluster.slave(i)->database().statement_cache().stats();
    EXPECT_EQ(stats.misses, 1);
    EXPECT_GT(stats.hits, 20);
  }
}

}  // namespace
}  // namespace clouddb::db
