// Property test: the planner's access-path choices (PK lookups, secondary
// index scans, range scans, limit pushdown, order-skipping) must never
// change query *results*. Two databases hold identical data; one has every
// secondary index, the other none. Random queries must return identical
// row sets from both.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/str_util.h"
#include "db/database.h"
#include "db/value.h"

namespace clouddb::db {
namespace {

/// Canonical rendering of a result set for comparison. Order-insensitive
/// unless `ordered` (ORDER BY queries compare the sort column sequence).
std::string Canonical(const ExecResult& result, bool ordered) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const Row& row : result.rows) rows.push_back(RowToString(row));
  if (!ordered) std::sort(rows.begin(), rows.end());
  return StrJoin(rows, "\n");
}

class PlannerEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    for (Database* d : {&indexed_, &heap_}) {
      ASSERT_TRUE(d->Execute("CREATE TABLE items (id BIGINT PRIMARY KEY, "
                             "cat BIGINT, price BIGINT, name TEXT)")
                      .ok());
    }
    ASSERT_TRUE(indexed_.Execute("CREATE INDEX idx_cat ON items (cat)").ok());
    ASSERT_TRUE(
        indexed_.Execute("CREATE INDEX idx_price ON items (price)").ok());
    // Both databases keep the PK (it is part of the schema); only the
    // secondary indexes differ, so cat/price predicates take different
    // access paths in the two databases.
    Rng rng(GetParam());
    for (int i = 0; i < 400; ++i) {
      // Prices are unique (i*37 mod 1000 is injective for i < 1000), so
      // ORDER BY price has no ties and LIMIT cutoffs are deterministic
      // across plans. cat is deliberately low-cardinality.
      std::string sql = StrFormat(
          "INSERT INTO items VALUES (%d, %lld, %lld, 'item_%lld')", i,
          static_cast<long long>(rng.UniformInt(0, 20)),
          static_cast<long long>((i * 37) % 1000),
          static_cast<long long>(rng.UniformInt(0, 50)));
      ASSERT_TRUE(indexed_.Execute(sql).ok());
      ASSERT_TRUE(heap_.Execute(sql).ok());
    }
  }

  void ExpectSameResults(const std::string& sql, bool ordered) {
    auto a = indexed_.Execute(sql);
    auto b = heap_.Execute(sql);
    ASSERT_EQ(a.ok(), b.ok()) << sql;
    if (!a.ok()) return;
    EXPECT_EQ(Canonical(*a, ordered), Canonical(*b, ordered)) << sql;
  }

  Database indexed_;
  Database heap_;
};

TEST_P(PlannerEquivalenceTest, RandomRangeAndEqualityQueries) {
  Rng rng(GetParam() * 101 + 7);
  for (int trial = 0; trial < 400; ++trial) {
    int64_t a = rng.UniformInt(0, 999);
    int64_t b = rng.UniformInt(0, 999);
    if (a > b) std::swap(a, b);
    std::string sql;
    switch (rng.UniformInt(0, 7)) {
      case 0:
        sql = StrFormat("SELECT * FROM items WHERE cat = %lld",
                        static_cast<long long>(a % 21));
        break;
      case 1:
        sql = StrFormat(
            "SELECT id, price FROM items WHERE price >= %lld AND price <= "
            "%lld",
            static_cast<long long>(a), static_cast<long long>(b));
        break;
      case 2:
        sql = StrFormat(
            "SELECT * FROM items WHERE price BETWEEN %lld AND %lld "
            "ORDER BY price LIMIT %lld",
            static_cast<long long>(a), static_cast<long long>(b),
            static_cast<long long>(rng.UniformInt(0, 20)));
        break;
      case 3:
        sql = StrFormat(
            "SELECT * FROM items WHERE cat = %lld AND price > %lld",
            static_cast<long long>(a % 21), static_cast<long long>(b));
        break;
      case 4:
        sql = StrFormat(
            "SELECT * FROM items WHERE price > %lld ORDER BY price DESC "
            "LIMIT 5",
            static_cast<long long>(a));
        break;
      case 5:
        sql = StrFormat(
            "SELECT COUNT(*), MIN(price), MAX(price) FROM items WHERE "
            "cat IN (%lld, %lld, 3)",
            static_cast<long long>(a % 21), static_cast<long long>(b % 21));
        break;
      case 6:
        sql = StrFormat(
            "SELECT * FROM items WHERE cat = %lld OR price = %lld",
            static_cast<long long>(a % 21), static_cast<long long>(b));
        break;
      default:
        sql = StrFormat(
            "SELECT * FROM items WHERE id >= %lld AND id < %lld "
            "ORDER BY id LIMIT 7",
            static_cast<long long>(a * 4), static_cast<long long>(b * 4));
        break;
    }
    bool ordered = sql.find("ORDER BY") != std::string::npos;
    ExpectSameResults(sql, ordered);
    if (HasFailure()) return;
  }
}

TEST_P(PlannerEquivalenceTest, EquivalenceSurvivesMutations) {
  Rng rng(GetParam() * 31 + 5);
  for (int round = 0; round < 30; ++round) {
    // Apply the same random mutation to both databases.
    std::string mutation;
    if (rng.Bernoulli(0.5)) {
      mutation = StrFormat(
          "UPDATE items SET name = 'renamed_%lld' WHERE cat = %lld",
          static_cast<long long>(rng.UniformInt(0, 9)),
          static_cast<long long>(rng.UniformInt(0, 20)));
    } else {
      mutation = StrFormat("DELETE FROM items WHERE price > %lld AND "
                           "price < %lld",
                           static_cast<long long>(rng.UniformInt(0, 400)),
                           static_cast<long long>(rng.UniformInt(400, 999)));
    }
    auto ra = indexed_.Execute(mutation);
    auto rb = heap_.Execute(mutation);
    ASSERT_EQ(ra.ok(), rb.ok());
    if (ra.ok()) {
      ASSERT_EQ(ra->rows_affected, rb->rows_affected) << mutation;
    }
    ExpectSameResults("SELECT * FROM items", false);
    ExpectSameResults(
        StrFormat("SELECT * FROM items WHERE price BETWEEN 10 AND %lld "
                  "ORDER BY price LIMIT 9",
                  static_cast<long long>(rng.UniformInt(200, 900))),
        true);
    if (HasFailure()) return;
  }
  std::string err;
  EXPECT_TRUE(indexed_.ValidateAllIndexes(&err)) << err;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerEquivalenceTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace clouddb::db
