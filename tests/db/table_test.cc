#include "db/table.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/schema.h"
#include "db/value.h"

namespace clouddb::db {
namespace {

Schema UserSchema() {
  auto schema = Schema::Create({
      {"id", ValueType::kInt64, false, true},
      {"name", ValueType::kString, true, false},
      {"age", ValueType::kInt64, false, false},
  });
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

Row MakeUser(int64_t id, const std::string& name, int64_t age) {
  return {Value(id), Value(name), Value(age)};
}

class TableTest : public ::testing::Test {
 protected:
  TableTest() : table_("users", UserSchema()) {}
  Table table_;
};

TEST_F(TableTest, InsertAndGet) {
  auto id = table_.Insert(MakeUser(1, "ann", 30));
  ASSERT_TRUE(id.ok());
  const Row* row = table_.Get(*id);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[1].AsString(), "ann");
  EXPECT_EQ(table_.num_rows(), 1u);
}

TEST_F(TableTest, InsertRejectsDuplicatePk) {
  ASSERT_TRUE(table_.Insert(MakeUser(1, "ann", 30)).ok());
  auto dup = table_.Insert(MakeUser(1, "bob", 25));
  EXPECT_FALSE(dup.ok());
  EXPECT_TRUE(dup.status().IsAlreadyExists());
  EXPECT_EQ(table_.num_rows(), 1u);
}

TEST_F(TableTest, InsertRejectsBadRow) {
  EXPECT_FALSE(table_.Insert({Value(int64_t{1})}).ok());          // arity
  EXPECT_FALSE(
      table_.Insert({Value(int64_t{1}), Value::Null(), Value::Null()}).ok());
}

TEST_F(TableTest, FindByPrimaryKey) {
  ASSERT_TRUE(table_.Insert(MakeUser(5, "eve", 20)).ok());
  auto found = table_.FindByPrimaryKey(Value(int64_t{5}));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*table_.Get(*found))[1].AsString(), "eve");
  EXPECT_TRUE(table_.FindByPrimaryKey(Value(int64_t{6})).status().IsNotFound());
}

TEST_F(TableTest, DeleteRemovesRowAndIndexEntries) {
  auto id = table_.Insert(MakeUser(1, "ann", 30));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(table_.Delete(*id).ok());
  EXPECT_EQ(table_.Get(*id), nullptr);
  EXPECT_TRUE(table_.FindByPrimaryKey(Value(int64_t{1})).status().IsNotFound());
  EXPECT_TRUE(table_.Delete(*id).IsNotFound());
  // PK is reusable after delete.
  EXPECT_TRUE(table_.Insert(MakeUser(1, "ann2", 31)).ok());
}

TEST_F(TableTest, UpdateChangesContentAndIndexes) {
  auto id = table_.Insert(MakeUser(1, "ann", 30));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(table_.Update(*id, MakeUser(2, "ann", 31)).ok());
  EXPECT_TRUE(table_.FindByPrimaryKey(Value(int64_t{1})).status().IsNotFound());
  ASSERT_TRUE(table_.FindByPrimaryKey(Value(int64_t{2})).ok());
  std::string err;
  EXPECT_TRUE(table_.ValidateIndexes(&err)) << err;
}

TEST_F(TableTest, UpdateRejectsPkCollision) {
  auto a = table_.Insert(MakeUser(1, "a", 1));
  ASSERT_TRUE(table_.Insert(MakeUser(2, "b", 2)).ok());
  auto st = table_.Update(*a, MakeUser(2, "a", 1));
  EXPECT_TRUE(st.IsAlreadyExists());
  // Original row unharmed.
  EXPECT_TRUE(table_.FindByPrimaryKey(Value(int64_t{1})).ok());
  std::string err;
  EXPECT_TRUE(table_.ValidateIndexes(&err)) << err;
}

TEST_F(TableTest, UpdateSamePkAllowed) {
  auto a = table_.Insert(MakeUser(1, "a", 1));
  EXPECT_TRUE(table_.Update(*a, MakeUser(1, "renamed", 2)).ok());
  EXPECT_EQ((*table_.Get(*a))[1].AsString(), "renamed");
}

TEST_F(TableTest, SecondaryIndexScan) {
  ASSERT_TRUE(table_.CreateIndex("idx_age", "age").ok());
  for (int64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(table_.Insert(MakeUser(i, "u", i * 10)).ok());
  }
  std::vector<int64_t> ages;
  Value lo(int64_t{30});
  Value hi(int64_t{50});
  ASSERT_TRUE(table_
                  .ScanIndex(2, &lo, true, &hi, true,
                             [&](RowId id) {
                               ages.push_back((*table_.Get(id))[2].AsInt64());
                               return true;
                             })
                  .ok());
  EXPECT_EQ(ages, (std::vector<int64_t>{30, 40, 50}));
}

TEST_F(TableTest, SecondaryIndexHandlesDuplicateValues) {
  ASSERT_TRUE(table_.CreateIndex("idx_age", "age").ok());
  for (int64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(table_.Insert(MakeUser(i, "u", 99)).ok());
  }
  int count = 0;
  Value target(int64_t{99});
  ASSERT_TRUE(table_
                  .ScanIndex(2, &target, true, &target, true,
                             [&](RowId) {
                               ++count;
                               return true;
                             })
                  .ok());
  EXPECT_EQ(count, 5);
}

TEST_F(TableTest, CreateIndexBackfillsExistingRows) {
  for (int64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(table_.Insert(MakeUser(i, "u", i)).ok());
  }
  ASSERT_TRUE(table_.CreateIndex("idx_age", "age").ok());
  int count = 0;
  ASSERT_TRUE(table_
                  .ScanIndex(2, nullptr, true, nullptr, true,
                             [&](RowId) {
                               ++count;
                               return true;
                             })
                  .ok());
  EXPECT_EQ(count, 3);
  std::string err;
  EXPECT_TRUE(table_.ValidateIndexes(&err)) << err;
}

TEST_F(TableTest, CreateIndexRejectsDuplicatesAndUnknownColumns) {
  ASSERT_TRUE(table_.CreateIndex("idx", "age").ok());
  EXPECT_TRUE(table_.CreateIndex("idx", "name").IsAlreadyExists());
  EXPECT_FALSE(table_.CreateIndex("idx2", "missing").ok());
  EXPECT_TRUE(table_.HasIndexNamed("IDX"));  // case-insensitive
  EXPECT_TRUE(table_.HasIndexOn(2));
  EXPECT_FALSE(table_.HasIndexOn(1));
  EXPECT_TRUE(table_.HasIndexOn(0));  // the PK
}

TEST_F(TableTest, ScanPrimaryRange) {
  for (int64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(table_.Insert(MakeUser(i, "u", i)).ok());
  }
  std::vector<int64_t> ids;
  Value lo(int64_t{4});
  ASSERT_TRUE(table_
                  .ScanPrimary(&lo, false, nullptr, true,
                               [&](RowId id) {
                                 ids.push_back((*table_.Get(id))[0].AsInt64());
                                 return ids.size() < 3;
                               })
                  .ok());
  EXPECT_EQ(ids, (std::vector<int64_t>{5, 6, 7}));
}

TEST_F(TableTest, ScanAllVisitsEveryRow) {
  for (int64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(table_.Insert(MakeUser(i, "u", i)).ok());
  }
  int visited = 0;
  table_.ScanAll([&](RowId, const Row&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 4);
}

TEST_F(TableTest, TruncateClearsRowsKeepsIndexes) {
  ASSERT_TRUE(table_.CreateIndex("idx_age", "age").ok());
  for (int64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(table_.Insert(MakeUser(i, "u", i)).ok());
  }
  table_.Truncate();
  EXPECT_EQ(table_.num_rows(), 0u);
  ASSERT_TRUE(table_.Insert(MakeUser(1, "u", 1)).ok());
  std::string err;
  EXPECT_TRUE(table_.ValidateIndexes(&err)) << err;
}

TEST_F(TableTest, RestoreRowReinstatesExactRowId) {
  auto id = table_.Insert(MakeUser(1, "ann", 30));
  ASSERT_TRUE(id.ok());
  Row saved = *table_.Get(*id);
  ASSERT_TRUE(table_.Delete(*id).ok());
  ASSERT_TRUE(table_.RestoreRow(*id, saved).ok());
  EXPECT_NE(table_.Get(*id), nullptr);
  EXPECT_TRUE(table_.FindByPrimaryKey(Value(int64_t{1})).ok());
  std::string err;
  EXPECT_TRUE(table_.ValidateIndexes(&err)) << err;
}

TEST_F(TableTest, RestoreRowRejectsLiveIdAndDuplicatePk) {
  auto id = table_.Insert(MakeUser(1, "ann", 30));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(table_.RestoreRow(*id, MakeUser(9, "x", 1)).IsAlreadyExists());
  // Delete then try restoring with a PK owned by another row.
  ASSERT_TRUE(table_.Insert(MakeUser(2, "bob", 25)).ok());
  Row saved = *table_.Get(*id);
  ASSERT_TRUE(table_.Delete(*id).ok());
  EXPECT_TRUE(table_.RestoreRow(*id, MakeUser(2, "x", 1)).IsAlreadyExists());
  EXPECT_TRUE(table_.RestoreRow(*id, saved).ok());
}

TEST_F(TableTest, ContentsEqualIgnoresRowIds) {
  Table other("users", UserSchema());
  ASSERT_TRUE(table_.Insert(MakeUser(1, "a", 1)).ok());
  ASSERT_TRUE(table_.Insert(MakeUser(2, "b", 2)).ok());
  // Insert in the opposite order: different RowIds, same contents.
  ASSERT_TRUE(other.Insert(MakeUser(2, "b", 2)).ok());
  ASSERT_TRUE(other.Insert(MakeUser(1, "a", 1)).ok());
  EXPECT_TRUE(Table::ContentsEqual(table_, other));
  ASSERT_TRUE(other.Insert(MakeUser(3, "c", 3)).ok());
  EXPECT_FALSE(Table::ContentsEqual(table_, other));
}

TEST_F(TableTest, IndexConsistencyUnderRandomChurn) {
  ASSERT_TRUE(table_.CreateIndex("idx_age", "age").ok());
  Rng rng(7);
  std::vector<RowId> live;
  for (int step = 0; step < 2000; ++step) {
    double action = rng.NextDouble();
    if (action < 0.5 || live.empty()) {
      auto id = table_.Insert(MakeUser(rng.UniformInt(0, 1 << 30), "u",
                                       rng.UniformInt(0, 100)));
      if (id.ok()) live.push_back(*id);
    } else if (action < 0.75) {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      ASSERT_TRUE(table_.Delete(live[pick]).ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    } else {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      Row updated = *table_.Get(live[pick]);
      updated[2] = Value(rng.UniformInt(0, 100));
      ASSERT_TRUE(table_.Update(live[pick], updated).ok());
    }
  }
  std::string err;
  EXPECT_TRUE(table_.ValidateIndexes(&err)) << err;
  EXPECT_EQ(table_.num_rows(), live.size());
}

TEST(TableNoPkTest, TablesWithoutPrimaryKeyWork) {
  auto schema = Schema::Create({{"a", ValueType::kInt64, false, false}});
  ASSERT_TRUE(schema.ok());
  Table table("t", std::move(schema).value());
  EXPECT_FALSE(table.HasPrimaryKey());
  ASSERT_TRUE(table.Insert({Value(int64_t{1})}).ok());
  ASSERT_TRUE(table.Insert({Value(int64_t{1})}).ok());  // duplicates fine
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_TRUE(
      table.FindByPrimaryKey(Value(int64_t{1})).status().IsFailedPrecondition());
  EXPECT_TRUE(table.ScanPrimary(nullptr, true, nullptr, true, [](RowId) {
    return true;
  }).IsFailedPrecondition());
}

}  // namespace
}  // namespace clouddb::db
