#include "db/expr_eval.h"

#include <gtest/gtest.h>

#include "db/sql_parser.h"
#include "common/result.h"
#include "db/functions.h"
#include "db/schema.h"
#include "db/sql_ast.h"
#include "db/value.h"

namespace clouddb::db {
namespace {

/// Parses `expr_sql` by wrapping it in a SELECT WHERE clause.
ExprPtr ParseExpr(const std::string& expr_sql) {
  auto r = ParseSql("SELECT * FROM t WHERE " + expr_sql);
  EXPECT_TRUE(r.ok()) << expr_sql << ": " << r.status().ToString();
  auto& sel = std::get<SelectStatement>(*r);
  return std::move(sel.where);
}

class ExprEvalTest : public ::testing::Test {
 protected:
  ExprEvalTest() {
    auto schema = Schema::Create({
        {"id", ValueType::kInt64, false, true},
        {"name", ValueType::kString, false, false},
        {"score", ValueType::kDouble, false, false},
    });
    schema_ = std::move(schema).value();
    row_ = {Value(int64_t{7}), Value("ann"), Value(2.5)};
  }

  Result<Value> Eval(const std::string& expr_sql) {
    ExprPtr e = ParseExpr(expr_sql);
    return EvaluateExpr(*e, &schema_, &row_, funcs_);
  }
  Result<bool> Pred(const std::string& expr_sql) {
    ExprPtr e = ParseExpr(expr_sql);
    return EvaluatePredicate(*e, &schema_, &row_, funcs_);
  }

  Schema schema_;
  Row row_;
  FunctionRegistry funcs_;
};

TEST_F(ExprEvalTest, IntArithmeticStaysInt) {
  auto r = Eval("2 + 3 * 4 = 1");
  // The comparison wrapping forces a full expression; evaluate pieces:
  EXPECT_TRUE(r.ok());
  auto sum = Eval("id = 2 + 3 * 4");  // 14
  ASSERT_TRUE(sum.ok());
  // id(7) != 14 -> 0
  EXPECT_EQ(*sum, Value(int64_t{0}));
}

TEST_F(ExprEvalTest, ArithmeticValues) {
  EXPECT_TRUE(*Pred("id + 1 = 8"));
  EXPECT_TRUE(*Pred("id - 10 = -3"));
  EXPECT_TRUE(*Pred("id * 2 = 14"));
  EXPECT_TRUE(*Pred("id / 2 = 3.5"));  // division always real
  EXPECT_TRUE(*Pred("score * 4 = 10"));
}

TEST_F(ExprEvalTest, DivisionByZeroIsError) {
  auto r = Eval("id / 0 = 1");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(ExprEvalTest, ComparisonsProduceBooleanInts) {
  EXPECT_EQ(*Eval("id = 7"), Value(int64_t{1}));
  EXPECT_EQ(*Eval("id != 7"), Value(int64_t{0}));
  EXPECT_EQ(*Eval("id < 8"), Value(int64_t{1}));
  EXPECT_EQ(*Eval("id <= 7"), Value(int64_t{1}));
  EXPECT_EQ(*Eval("id > 7"), Value(int64_t{0}));
  EXPECT_EQ(*Eval("id >= 8"), Value(int64_t{0}));
}

TEST_F(ExprEvalTest, StringComparisons) {
  EXPECT_TRUE(*Pred("name = 'ann'"));
  EXPECT_FALSE(*Pred("name = 'bob'"));
  EXPECT_TRUE(*Pred("name < 'bob'"));
}

TEST_F(ExprEvalTest, NullComparisonsAreUnknown) {
  EXPECT_TRUE(Eval("NULL = 1")->is_null());
  EXPECT_TRUE(Eval("NULL != NULL")->is_null());
  EXPECT_TRUE(Eval("id + NULL = 7")->is_null());
  // ...and unknown predicates are false.
  EXPECT_FALSE(*Pred("NULL = 1"));
}

TEST_F(ExprEvalTest, ThreeValuedAnd) {
  EXPECT_EQ(*Eval("1 = 1 AND 2 = 2"), Value(int64_t{1}));
  EXPECT_EQ(*Eval("1 = 1 AND 2 = 3"), Value(int64_t{0}));
  // false AND unknown = false (not unknown).
  EXPECT_EQ(*Eval("1 = 2 AND NULL = 1"), Value(int64_t{0}));
  // true AND unknown = unknown.
  EXPECT_TRUE(Eval("1 = 1 AND NULL = 1")->is_null());
}

TEST_F(ExprEvalTest, IsNullOperator) {
  EXPECT_TRUE(*Pred("NULL IS NULL"));
  EXPECT_FALSE(*Pred("id IS NULL"));
  EXPECT_TRUE(*Pred("id IS NOT NULL"));
  EXPECT_FALSE(*Pred("NULL IS NOT NULL"));
}

TEST_F(ExprEvalTest, ColumnResolutionErrors) {
  auto r = Eval("missing = 1");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(ExprEvalTest, ColumnOutsideRowContextFails) {
  ExprPtr e = ParseExpr("id = 1");
  auto r = EvaluateExpr(*e, nullptr, nullptr, funcs_);
  EXPECT_FALSE(r.ok());
}

TEST_F(ExprEvalTest, FunctionCalls) {
  EXPECT_TRUE(*Pred("ABS(0 - 5) = 5"));
  EXPECT_TRUE(*Pred("MOD(id, 4) = 3"));
  EXPECT_TRUE(*Pred("LENGTH(name) = 3"));
  EXPECT_TRUE(*Pred("CONCAT(name, '!') = 'ann!'"));
}

TEST_F(ExprEvalTest, UnknownFunctionFails) {
  auto r = Eval("NO_SUCH_FN() = 1");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(ExprEvalTest, IsRowIndependent) {
  EXPECT_TRUE(IsRowIndependent(*ParseExpr("1 + 2 = 3")));
  EXPECT_TRUE(IsRowIndependent(*ParseExpr("ABS(0-4) = 4")));
  EXPECT_FALSE(IsRowIndependent(*ParseExpr("id = 1")));
  EXPECT_FALSE(IsRowIndependent(*ParseExpr("ABS(id) = 1")));
  EXPECT_FALSE(IsRowIndependent(*ParseExpr("id IS NULL")));
  EXPECT_TRUE(IsRowIndependent(*ParseExpr("NULL IS NULL")));
}

TEST_F(ExprEvalTest, ExprToStringRoundTripsStructure) {
  ExprPtr e = ParseExpr("id >= 5 AND name = 'x'");
  std::string s = e->ToString();
  EXPECT_NE(s.find(">="), std::string::npos);
  EXPECT_NE(s.find("AND"), std::string::npos);
  EXPECT_NE(s.find("'x'"), std::string::npos);
}

TEST_F(ExprEvalTest, MixedIntDoubleComparison) {
  EXPECT_TRUE(*Pred("score = 2.5"));
  EXPECT_TRUE(*Pred("score > 2"));
  EXPECT_TRUE(*Pred("2 < score"));
}

TEST_F(ExprEvalTest, ThreeValuedOr) {
  EXPECT_EQ(*Eval("1 = 1 OR 1 = 2"), Value(int64_t{1}));
  EXPECT_EQ(*Eval("1 = 2 OR 1 = 3"), Value(int64_t{0}));
  // true OR unknown = true.
  EXPECT_EQ(*Eval("1 = 1 OR NULL = 1"), Value(int64_t{1}));
  // false OR unknown = unknown.
  EXPECT_TRUE(Eval("1 = 2 OR NULL = 1")->is_null());
}

TEST_F(ExprEvalTest, NotOperator) {
  EXPECT_EQ(*Eval("NOT 1 = 2"), Value(int64_t{1}));
  EXPECT_EQ(*Eval("NOT 1 = 1"), Value(int64_t{0}));
  EXPECT_TRUE(Eval("NOT NULL = 1")->is_null());
  EXPECT_TRUE(*Pred("NOT NOT id = 7"));
}

TEST_F(ExprEvalTest, InListSemantics) {
  EXPECT_TRUE(*Pred("id IN (5, 6, 7)"));
  EXPECT_FALSE(*Pred("id IN (1, 2)"));
  EXPECT_TRUE(*Pred("name IN ('ann', 'bob')"));
  // NULL needle -> unknown -> false as predicate.
  EXPECT_FALSE(*Pred("NULL IN (1, 2)"));
  // Not found + NULL in list -> unknown.
  EXPECT_TRUE(Eval("id IN (1, NULL)")->is_null());
  // Found even with NULL in list -> true.
  EXPECT_TRUE(*Pred("id IN (7, NULL)"));
}

TEST_F(ExprEvalTest, NotInSemantics) {
  EXPECT_TRUE(*Pred("id NOT IN (1, 2)"));
  EXPECT_FALSE(*Pred("id NOT IN (7)"));
  // Not found but list has NULL -> unknown (the classic NOT IN trap).
  EXPECT_TRUE(Eval("id NOT IN (1, NULL)")->is_null());
}

TEST_F(ExprEvalTest, BetweenEvaluates) {
  EXPECT_TRUE(*Pred("id BETWEEN 5 AND 9"));
  EXPECT_TRUE(*Pred("id BETWEEN 7 AND 7"));
  EXPECT_FALSE(*Pred("id BETWEEN 8 AND 9"));
  EXPECT_TRUE(*Pred("id NOT BETWEEN 8 AND 9"));
  EXPECT_FALSE(*Pred("id NOT BETWEEN 1 AND 9"));
}

TEST_F(ExprEvalTest, OrAndPrecedenceInEvaluation) {
  // a=1 AND b=2 OR id=7  ->  (false AND ...) OR true = true
  EXPECT_TRUE(*Pred("1 = 2 AND 1 = 1 OR id = 7"));
  EXPECT_FALSE(*Pred("1 = 2 AND (1 = 1 OR id = 7)"));
}

}  // namespace
}  // namespace clouddb::db
