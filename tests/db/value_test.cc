#include "db/value.h"

#include <gtest/gtest.h>

namespace clouddb::db {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value(int64_t{42}).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Value(3.5).AsDouble(), 3.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
  EXPECT_EQ(Value(std::string("s")).AsString(), "s");
}

TEST(ValueTest, NumericCoercion) {
  ASSERT_TRUE(Value(int64_t{7}).ToDouble().ok());
  EXPECT_DOUBLE_EQ(*Value(int64_t{7}).ToDouble(), 7.0);
  ASSERT_TRUE(Value(7.9).ToInt64().ok());
  EXPECT_EQ(*Value(7.9).ToInt64(), 7);  // truncation
  EXPECT_FALSE(Value("x").ToDouble().ok());
  EXPECT_FALSE(Value::Null().ToInt64().ok());
}

TEST(ValueTest, CrossTypeNumericComparison) {
  EXPECT_EQ(Value(int64_t{2}), Value(2.0));
  EXPECT_LT(Value(int64_t{2}), Value(2.5));
  EXPECT_GT(Value(3.1), Value(int64_t{3}));
}

TEST(ValueTest, TypeOrderingNullNumericString) {
  EXPECT_LT(Value::Null(), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{999999}), Value("a"));
  EXPECT_LT(Value::Null(), Value(""));
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_LT(Value("ab"), Value("abc"));
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(ValueTest, NullsCompareEqualForOrdering) {
  EXPECT_EQ(Value::Compare(Value::Null(), Value::Null()), 0);
}

struct LiteralCase {
  Value value;
  const char* literal;
};

class SqlLiteralTest : public ::testing::TestWithParam<LiteralCase> {};

TEST_P(SqlLiteralTest, Renders) {
  EXPECT_EQ(GetParam().value.ToSqlLiteral(), GetParam().literal);
}

INSTANTIATE_TEST_SUITE_P(
    Literals, SqlLiteralTest,
    ::testing::Values(LiteralCase{Value::Null(), "NULL"},
                      LiteralCase{Value(int64_t{42}), "42"},
                      LiteralCase{Value(int64_t{-7}), "-7"},
                      LiteralCase{Value(2.5), "2.5"},
                      LiteralCase{Value("hello"), "'hello'"},
                      LiteralCase{Value("it's"), "'it''s'"},
                      LiteralCase{Value(""), "''"}));

TEST(ValueTest, DoubleLiteralKeepsDoubleness) {
  // 3.0 must not render as "3" (would re-lex as an integer).
  std::string lit = Value(3.0).ToSqlLiteral();
  EXPECT_NE(lit.find_first_of(".eE"), std::string::npos);
}

TEST(ValueTest, HashEqualValuesHashEqual) {
  EXPECT_EQ(Value(int64_t{5}).Hash(), Value(int64_t{5}).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  // int 1 and double 1.0 compare equal, so they must hash equal.
  EXPECT_EQ(Value(int64_t{1}).Hash(), Value(1.0).Hash());
}

TEST(ValueTest, HashMostlyDistinct) {
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(int64_t{2}).Hash());
  EXPECT_NE(Value("a").Hash(), Value("b").Hash());
  EXPECT_NE(Value::Null().Hash(), Value(int64_t{0}).Hash());
}

TEST(ValueTest, RowToStringFormatsTuple) {
  Row row = {Value(int64_t{1}), Value("x"), Value::Null()};
  EXPECT_EQ(RowToString(row), "(1, 'x', NULL)");
  EXPECT_EQ(RowToString({}), "()");
}

TEST(ValueTest, ToStringUnquotesStrings) {
  EXPECT_EQ(Value("plain").ToString(), "plain");
  EXPECT_EQ(Value(int64_t{3}).ToString(), "3");
}

}  // namespace
}  // namespace clouddb::db
