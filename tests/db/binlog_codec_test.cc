#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "db/binlog.h"
#include "db/value.h"
#include "db/writeset.h"

namespace clouddb::db {
namespace {

// --- Randomized event generation --------------------------------------------

Value RandomValue(Rng* rng) {
  switch (rng->UniformInt(0, 4)) {
    case 0:
      return Value::Null();
    case 1:
      // Full signed range, so negative ints round-trip.
      return Value(rng->UniformInt(-1'000'000'000, 1'000'000'000));
    case 2:
      return Value(rng->Uniform(-1e9, 1e9));
    case 3:
      return Value(std::string());  // empty strings must survive
    default: {
      std::string s;
      int64_t len = rng->UniformInt(1, 24);
      for (int64_t i = 0; i < len; ++i) {
        // Include the quote character — codec framing must not care.
        s.push_back(static_cast<char>(rng->UniformInt(32, 126)));
      }
      return Value(std::move(s));
    }
  }
}

Row RandomRow(Rng* rng) {
  Row row;
  int64_t cols = rng->UniformInt(0, 5);
  for (int64_t i = 0; i < cols; ++i) row.push_back(RandomValue(rng));
  return row;
}

RowOp RandomRowOp(Rng* rng) {
  RowOp op;
  switch (rng->UniformInt(0, 2)) {
    case 0:
      op.kind = RowOp::Kind::kInsert;
      op.after = RandomRow(rng);
      break;
    case 1:
      op.kind = RowOp::Kind::kDelete;
      op.before = RandomRow(rng);
      break;
    default:
      op.kind = RowOp::Kind::kUpdate;
      op.before = RandomRow(rng);
      op.after = RandomRow(rng);
      break;
  }
  op.table = "t" + std::to_string(rng->UniformInt(0, 9));
  return op;
}

BinlogEvent RandomEvent(Rng* rng, bool with_writesets) {
  BinlogEvent event;
  event.index = rng->UniformInt(0, 1'000'000);
  event.commit_micros = rng->UniformInt(-5'000'000, 5'000'000'000);
  int64_t statements = rng->UniformInt(1, 4);
  for (int64_t i = 0; i < statements; ++i) {
    std::string sql = "INSERT INTO t VALUES (" +
                      std::to_string(rng->UniformInt(-100, 100)) + ")";
    event.statements.push_back(std::move(sql));
    if (with_writesets) {
      StatementWriteset ws;
      ws.covered = rng->Bernoulli(0.8);
      if (ws.covered) {
        int64_t ops = rng->UniformInt(0, 3);
        for (int64_t j = 0; j < ops; ++j) {
          ws.ops.push_back(RandomRowOp(rng));
        }
      }
      event.writesets.push_back(std::move(ws));
    }
  }
  return event;
}

bool ValuesEqual(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kInt64:
      return a.AsInt64() == b.AsInt64();
    case ValueType::kDouble:
      return a.AsDouble() == b.AsDouble();  // codec is bit-exact, == is fair
    case ValueType::kString:
      return a.AsString() == b.AsString();
  }
  return false;
}

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!ValuesEqual(a[i], b[i])) return false;
  }
  return true;
}

void ExpectRoundTrip(const BinlogEvent& event) {
  std::string wire = SerializeBinlogEvent(event);
  auto decoded = DeserializeBinlogEvent(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->index, event.index);
  EXPECT_EQ(decoded->commit_micros, event.commit_micros);
  EXPECT_EQ(decoded->statements, event.statements);
  ASSERT_EQ(decoded->writesets.size(), event.writesets.size());
  for (size_t i = 0; i < event.writesets.size(); ++i) {
    const StatementWriteset& in = event.writesets[i];
    const StatementWriteset& out = decoded->writesets[i];
    EXPECT_EQ(out.covered, in.covered);
    ASSERT_EQ(out.ops.size(), in.ops.size());
    for (size_t j = 0; j < in.ops.size(); ++j) {
      EXPECT_EQ(out.ops[j].kind, in.ops[j].kind);
      EXPECT_EQ(out.ops[j].table, in.ops[j].table);
      EXPECT_TRUE(RowsEqual(out.ops[j].before, in.ops[j].before));
      EXPECT_TRUE(RowsEqual(out.ops[j].after, in.ops[j].after));
    }
  }
}

// --- Property tests ---------------------------------------------------------

TEST(BinlogCodecTest, StatementOnlyEventsRoundTrip) {
  Rng rng(20260809);
  for (int trial = 0; trial < 200; ++trial) {
    BinlogEvent event = RandomEvent(&rng, /*with_writesets=*/false);
    ExpectRoundTrip(event);
  }
}

TEST(BinlogCodecTest, WritesetEventsRoundTrip) {
  Rng rng(424242);
  for (int trial = 0; trial < 200; ++trial) {
    BinlogEvent event = RandomEvent(&rng, /*with_writesets=*/true);
    ExpectRoundTrip(event);
  }
}

TEST(BinlogCodecTest, EdgeValuesRoundTrip) {
  BinlogEvent event;
  event.index = 0;
  event.commit_micros = -1;
  event.statements = {"", "UPDATE t SET a = 1"};
  StatementWriteset empty_uncovered;  // DDL-style fallback marker
  StatementWriteset ws;
  ws.covered = true;
  RowOp op;
  op.kind = RowOp::Kind::kUpdate;
  op.table = "attendees";
  op.before = {Value::Null(), Value(int64_t{-9'223'372'036'854'775'807LL}),
               Value(std::string())};
  op.after = {Value(0.0), Value(std::string("it's quoted")),
              Value(int64_t{0})};
  ws.ops.push_back(std::move(op));
  event.writesets = {std::move(empty_uncovered), std::move(ws)};
  ExpectRoundTrip(event);
}

TEST(BinlogCodecTest, WireSizeMatchesLegacyChargeForStatementEvents) {
  // Statement-only events must charge exactly the legacy 32-byte header
  // plus statement bytes — the toggle-off wire figures depend on it.
  BinlogEvent event;
  event.index = 7;
  event.commit_micros = 123;
  event.statements = {"INSERT INTO t VALUES (1)", "COMMIT"};
  int64_t expected = 32;
  for (const std::string& s : event.statements) {
    expected += static_cast<int64_t>(s.size());
  }
  EXPECT_EQ(EventWireSize(event), expected);
}

TEST(BinlogCodecTest, TruncationAndTrailingBytesAreRejected) {
  Rng rng(7);
  BinlogEvent event = RandomEvent(&rng, /*with_writesets=*/true);
  std::string wire = SerializeBinlogEvent(event);
  // Every strict prefix must fail loudly, never crash or mis-decode.
  for (size_t len = 0; len < wire.size(); ++len) {
    auto decoded = DeserializeBinlogEvent(std::string_view(wire).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
  auto trailing = DeserializeBinlogEvent(wire + "x");
  EXPECT_FALSE(trailing.ok());
}

// --- Explicit-width boundary tests ------------------------------------------
//
// Collection counts and string lengths ship as explicit 32-bit fields
// (AppendCount / ReadCount). These tests pin the behavior at the edges of
// that width: hostile counts near UINT32_MAX must fail as clean truncation
// errors (and must not pre-allocate gigabytes on the way), zero-length
// collections must survive, and statements far past any realistic SQL size
// must round-trip byte-exact.

/// Overwrites the 4-byte little-endian count field at `at` in `wire`.
void PatchCount(std::string* wire, size_t at, uint32_t v) {
  ASSERT_LE(at + 4, wire->size());
  for (int i = 0; i < 4; ++i) {
    (*wire)[at + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

TEST(BinlogCodecTest, StatementCountsNearU32MaxAreRejectedCleanly) {
  BinlogEvent event;
  event.index = 1;
  event.commit_micros = 2;
  event.statements = {"COMMIT"};
  std::string wire = SerializeBinlogEvent(event);
  // num_statements sits after index (8) + commit_micros (8).
  const size_t count_at = 16;
  for (uint32_t hostile :
       {uint32_t{0xFFFFFFFFu}, uint32_t{0xFFFFFFFEu}, uint32_t{0x80000000u}}) {
    std::string bad = wire;
    PatchCount(&bad, count_at, hostile);
    auto decoded = DeserializeBinlogEvent(bad);
    // A 23-byte buffer cannot hold 2^31+ statements: the decoder must
    // return a truncation error after consuming what is actually there —
    // not crash, and not reserve() billions of slots first.
    EXPECT_FALSE(decoded.ok()) << "count " << hostile << " decoded";
  }
}

TEST(BinlogCodecTest, OpAndColumnCountsNearU32MaxAreRejectedCleanly) {
  BinlogEvent event;
  event.index = 1;
  event.commit_micros = 2;
  event.statements = {"DELETE FROM t"};
  StatementWriteset ws;
  ws.covered = true;
  RowOp op;
  op.kind = RowOp::Kind::kDelete;
  op.table = "t";
  op.before = {Value(int64_t{5})};
  ws.ops.push_back(std::move(op));
  event.writesets.push_back(std::move(ws));
  std::string wire = SerializeBinlogEvent(event);
  // Layout: header (8+8+4+1) + statement (4+len) + covered (1), then the
  // op count; the before-row's column count follows kind (1) + table (4+1)
  // + that op count.
  const size_t ops_at = 8 + 8 + 4 + 1 + 4 + event.statements[0].size() + 1;
  const size_t cols_at = ops_at + 4 + 1 + 4 + 1;
  for (size_t at : {ops_at, cols_at}) {
    std::string bad = wire;
    PatchCount(&bad, at, 0xFFFFFFFFu);
    EXPECT_FALSE(DeserializeBinlogEvent(bad).ok())
        << "count at offset " << at << " decoded";
  }
}

TEST(BinlogCodecTest, StringLengthsNearU32MaxAreRejectedCleanly) {
  BinlogEvent event;
  event.index = 3;
  event.commit_micros = 4;
  event.statements = {"SELECT 1"};
  std::string wire = SerializeBinlogEvent(event);
  // The first statement's length prefix follows the 21-byte header.
  std::string bad = wire;
  PatchCount(&bad, 21, 0xFFFFFFF0u);
  EXPECT_FALSE(DeserializeBinlogEvent(bad).ok());
}

TEST(BinlogCodecTest, ZeroLengthCollectionsRoundTrip) {
  // Zero statements (and so zero writesets) is the degenerate but legal
  // event; a covered writeset with zero ops is a real shape (a statement
  // that matched no rows).
  BinlogEvent empty;
  empty.index = 0;
  empty.commit_micros = 0;
  ExpectRoundTrip(empty);

  BinlogEvent no_rows;
  no_rows.index = 1;
  no_rows.commit_micros = 2;
  no_rows.statements = {"DELETE FROM t WHERE 0 = 1"};
  StatementWriteset ws;
  ws.covered = true;  // covered, but zero ops
  no_rows.writesets.push_back(std::move(ws));
  ExpectRoundTrip(no_rows);
}

TEST(BinlogCodecTest, MaxSizeStatementsRoundTrip) {
  // A statement and a string value far beyond realistic SQL (4 MiB each):
  // the u32 length prefix must carry them without truncation, and the
  // decode must be byte-exact.
  const size_t kBig = size_t{4} << 20;
  BinlogEvent event;
  event.index = 9;
  event.commit_micros = 10;
  std::string sql(kBig, 'x');
  sql[0] = 'S';
  sql[kBig - 1] = ';';
  event.statements.push_back(sql);
  StatementWriteset ws;
  ws.covered = true;
  RowOp op;
  op.kind = RowOp::Kind::kInsert;
  op.table = "t";
  op.after = {Value(std::string(kBig, 'v'))};
  ws.ops.push_back(std::move(op));
  event.writesets.push_back(std::move(ws));
  ExpectRoundTrip(event);
}

TEST(BinlogCodecTest, UnknownTagsAreRejected) {
  BinlogEvent event;
  event.index = 1;
  event.commit_micros = 2;
  event.statements = {"DELETE FROM t"};
  StatementWriteset ws;
  ws.covered = true;
  RowOp op;
  op.kind = RowOp::Kind::kDelete;
  op.table = "t";
  op.before = {Value(int64_t{5})};
  ws.ops.push_back(std::move(op));
  event.writesets.push_back(std::move(ws));
  std::string wire = SerializeBinlogEvent(event);
  // Layout: header (8+8+4+1) + length-prefixed statement (4+len) +
  // covered (1) + op count (4) + kind byte.
  size_t kind_at =
      8 + 8 + 4 + 1 + 4 + event.statements[0].size() + 1 + 4;
  ASSERT_LT(kind_at, wire.size());
  ASSERT_EQ(wire[kind_at], '\1');  // kDelete
  std::string bad = wire;
  bad[kind_at] = '\x7f';
  EXPECT_FALSE(DeserializeBinlogEvent(bad).ok());
}

}  // namespace
}  // namespace clouddb::db
