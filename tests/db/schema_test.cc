#include "db/schema.h"
#include "db/value.h"

#include <gtest/gtest.h>

namespace clouddb::db {
namespace {

Schema MakeSchema() {
  auto schema = Schema::Create({
      {"id", ValueType::kInt64, false, true},
      {"name", ValueType::kString, true, false},
      {"score", ValueType::kDouble, false, false},
  });
  EXPECT_TRUE(schema.ok());
  return std::move(schema).value();
}

TEST(SchemaTest, CreateValidSchema) {
  Schema s = MakeSchema();
  EXPECT_EQ(s.num_columns(), 3u);
  ASSERT_TRUE(s.primary_key_index().has_value());
  EXPECT_EQ(*s.primary_key_index(), 0u);
  // PK implies NOT NULL.
  EXPECT_TRUE(s.columns()[0].not_null);
}

TEST(SchemaTest, RejectsEmptyColumnList) {
  EXPECT_FALSE(Schema::Create({}).ok());
}

TEST(SchemaTest, RejectsDuplicateNamesCaseInsensitive) {
  auto r = Schema::Create({{"id", ValueType::kInt64, false, false},
                           {"ID", ValueType::kString, false, false}});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(SchemaTest, RejectsTwoPrimaryKeys) {
  auto r = Schema::Create({{"a", ValueType::kInt64, false, true},
                           {"b", ValueType::kInt64, false, true}});
  EXPECT_FALSE(r.ok());
}

TEST(SchemaTest, RejectsNullType) {
  auto r = Schema::Create({{"a", ValueType::kNull, false, false}});
  EXPECT_FALSE(r.ok());
}

TEST(SchemaTest, RejectsEmptyName) {
  auto r = Schema::Create({{"", ValueType::kInt64, false, false}});
  EXPECT_FALSE(r.ok());
}

TEST(SchemaTest, ColumnIndexIsCaseInsensitive) {
  Schema s = MakeSchema();
  ASSERT_TRUE(s.ColumnIndex("NAME").ok());
  EXPECT_EQ(*s.ColumnIndex("NAME"), 1u);
  EXPECT_FALSE(s.ColumnIndex("missing").ok());
  EXPECT_TRUE(s.HasColumn("Score"));
  EXPECT_FALSE(s.HasColumn("other"));
}

TEST(SchemaTest, ValidateRowHappyPath) {
  Schema s = MakeSchema();
  EXPECT_TRUE(
      s.ValidateRow({Value(int64_t{1}), Value("x"), Value(1.5)}).ok());
  // Int accepted where double declared.
  EXPECT_TRUE(
      s.ValidateRow({Value(int64_t{1}), Value("x"), Value(int64_t{2})}).ok());
  // Nullable column may be null.
  EXPECT_TRUE(
      s.ValidateRow({Value(int64_t{1}), Value("x"), Value::Null()}).ok());
}

TEST(SchemaTest, ValidateRowRejectsArityMismatch) {
  Schema s = MakeSchema();
  EXPECT_FALSE(s.ValidateRow({Value(int64_t{1})}).ok());
  EXPECT_FALSE(s.ValidateRow({}).ok());
}

TEST(SchemaTest, ValidateRowRejectsNullInNotNull) {
  Schema s = MakeSchema();
  EXPECT_FALSE(
      s.ValidateRow({Value::Null(), Value("x"), Value(1.0)}).ok());
  EXPECT_FALSE(
      s.ValidateRow({Value(int64_t{1}), Value::Null(), Value(1.0)}).ok());
}

TEST(SchemaTest, ValidateRowRejectsTypeMismatch) {
  Schema s = MakeSchema();
  EXPECT_FALSE(s.ValidateRow({Value("str"), Value("x"), Value(1.0)}).ok());
  EXPECT_FALSE(
      s.ValidateRow({Value(int64_t{1}), Value(int64_t{2}), Value(1.0)}).ok());
  // Double NOT accepted where int declared.
  EXPECT_FALSE(s.ValidateRow({Value(1.5), Value("x"), Value(1.0)}).ok());
}

TEST(SchemaTest, CoerceWidensIntToDouble) {
  Schema s = MakeSchema();
  Row row = {Value(int64_t{1}), Value("x"), Value(int64_t{3})};
  ASSERT_TRUE(s.CoerceRow(&row).ok());
  EXPECT_EQ(row[2].type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(row[2].AsDouble(), 3.0);
}

TEST(SchemaTest, ToStringMentionsEveryColumn) {
  std::string s = MakeSchema().ToString();
  EXPECT_NE(s.find("id"), std::string::npos);
  EXPECT_NE(s.find("PRIMARY KEY"), std::string::npos);
  EXPECT_NE(s.find("NOT NULL"), std::string::npos);
}

}  // namespace
}  // namespace clouddb::db
