#include "db/bplus_tree.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace clouddb::db {
namespace {

using Tree = BPlusTree<int, int>;

TEST(BPlusTreeTest, EmptyTree) {
  Tree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Find(5), nullptr);
  EXPECT_FALSE(tree.Erase(5));
  EXPECT_EQ(tree.Height(), 1u);
  std::string err;
  EXPECT_TRUE(tree.Validate(&err)) << err;
}

TEST(BPlusTreeTest, InsertAndFind) {
  Tree tree;
  EXPECT_TRUE(tree.Insert(5, 50));
  EXPECT_TRUE(tree.Insert(3, 30));
  EXPECT_TRUE(tree.Insert(7, 70));
  EXPECT_EQ(tree.size(), 3u);
  ASSERT_NE(tree.Find(5), nullptr);
  EXPECT_EQ(*tree.Find(5), 50);
  EXPECT_EQ(*tree.Find(3), 30);
  EXPECT_EQ(*tree.Find(7), 70);
  EXPECT_EQ(tree.Find(4), nullptr);
}

TEST(BPlusTreeTest, DuplicateInsertFails) {
  Tree tree;
  EXPECT_TRUE(tree.Insert(1, 10));
  EXPECT_FALSE(tree.Insert(1, 99));
  EXPECT_EQ(*tree.Find(1), 10);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTreeTest, InsertOrAssignOverwrites) {
  Tree tree;
  EXPECT_TRUE(tree.InsertOrAssign(1, 10));
  EXPECT_FALSE(tree.InsertOrAssign(1, 20));
  EXPECT_EQ(*tree.Find(1), 20);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTreeTest, EraseLeavesOthersIntact) {
  Tree tree;
  for (int i = 0; i < 10; ++i) tree.Insert(i, i * 10);
  EXPECT_TRUE(tree.Erase(4));
  EXPECT_FALSE(tree.Contains(4));
  EXPECT_EQ(tree.size(), 9u);
  for (int i = 0; i < 10; ++i) {
    if (i != 4) {
      EXPECT_TRUE(tree.Contains(i)) << i;
    }
  }
  EXPECT_FALSE(tree.Erase(4));
}

TEST(BPlusTreeTest, GrowsAndShrinksThroughSplitsAndMerges) {
  Tree tree;
  const int kN = 5000;
  for (int i = 0; i < kN; ++i) ASSERT_TRUE(tree.Insert(i, i));
  EXPECT_GT(tree.Height(), 2u);
  std::string err;
  ASSERT_TRUE(tree.Validate(&err)) << err;
  for (int i = 0; i < kN; ++i) ASSERT_TRUE(tree.Erase(i));
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 1u);
  ASSERT_TRUE(tree.Validate(&err)) << err;
}

TEST(BPlusTreeTest, ReverseOrderInsertionValid) {
  Tree tree;
  for (int i = 2000; i >= 0; --i) ASSERT_TRUE(tree.Insert(i, i));
  std::string err;
  ASSERT_TRUE(tree.Validate(&err)) << err;
  int expected = 0;
  tree.ScanAll([&](const int& k, const int&) {
    EXPECT_EQ(k, expected++);
    return true;
  });
  EXPECT_EQ(expected, 2001);
}

TEST(BPlusTreeTest, ScanAllInOrder) {
  Tree tree;
  for (int i : {5, 1, 9, 3, 7}) tree.Insert(i, i);
  std::vector<int> keys;
  tree.ScanAll([&](const int& k, const int&) {
    keys.push_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(BPlusTreeTest, ScanRangeBounds) {
  Tree tree;
  for (int i = 0; i < 100; ++i) tree.Insert(i, i);
  auto collect = [&](const int* lo, bool li, const int* hi, bool hi_inc) {
    std::vector<int> keys;
    tree.Scan(lo, li, hi, hi_inc, [&](const int& k, const int&) {
      keys.push_back(k);
      return true;
    });
    return keys;
  };
  int lo = 10, hi = 13;
  EXPECT_EQ(collect(&lo, true, &hi, true), (std::vector<int>{10, 11, 12, 13}));
  EXPECT_EQ(collect(&lo, false, &hi, true), (std::vector<int>{11, 12, 13}));
  EXPECT_EQ(collect(&lo, true, &hi, false), (std::vector<int>{10, 11, 12}));
  EXPECT_EQ(collect(&lo, false, &hi, false), (std::vector<int>{11, 12}));
  // Open-ended scans.
  int lo2 = 97;
  EXPECT_EQ(collect(&lo2, true, nullptr, true), (std::vector<int>{97, 98, 99}));
  int hi2 = 2;
  EXPECT_EQ(collect(nullptr, true, &hi2, true), (std::vector<int>{0, 1, 2}));
}

TEST(BPlusTreeTest, ScanEarlyStop) {
  Tree tree;
  for (int i = 0; i < 100; ++i) tree.Insert(i, i);
  int visited = 0;
  tree.ScanAll([&](const int&, const int&) { return ++visited < 5; });
  EXPECT_EQ(visited, 5);
}

TEST(BPlusTreeTest, ScanEmptyRange) {
  Tree tree;
  for (int i = 0; i < 10; ++i) tree.Insert(i * 10, i);
  int lo = 11, hi = 19;
  int visited = 0;
  tree.Scan(&lo, true, &hi, true, [&](const int&, const int&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 0);
}

TEST(BPlusTreeTest, ClearResets) {
  Tree tree;
  for (int i = 0; i < 1000; ++i) tree.Insert(i, i);
  tree.Clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Find(1), nullptr);
  EXPECT_TRUE(tree.Insert(1, 1));
}

TEST(BPlusTreeTest, StringKeys) {
  BPlusTree<std::string, int> tree;
  tree.Insert("banana", 1);
  tree.Insert("apple", 2);
  tree.Insert("cherry", 3);
  std::vector<std::string> keys;
  tree.ScanAll([&](const std::string& k, const int&) {
    keys.push_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"apple", "banana", "cherry"}));
}

// ---- Property-based testing against a std::map reference model ----------

class BPlusTreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BPlusTreePropertyTest, MatchesReferenceModelUnderRandomOps) {
  Rng rng(GetParam());
  BPlusTree<int, int, std::less<int>, 8> tree;  // small fan-out: deep trees
  std::map<int, int> model;
  std::string err;
  for (int step = 0; step < 4000; ++step) {
    int key = static_cast<int>(rng.UniformInt(0, 300));
    double action = rng.NextDouble();
    if (action < 0.5) {
      int value = static_cast<int>(rng.UniformInt(0, 1 << 30));
      bool inserted_tree = tree.Insert(key, value);
      bool inserted_model = model.emplace(key, value).second;
      ASSERT_EQ(inserted_tree, inserted_model);
    } else if (action < 0.85) {
      bool erased_tree = tree.Erase(key);
      bool erased_model = model.erase(key) > 0;
      ASSERT_EQ(erased_tree, erased_model);
    } else {
      const int* found = tree.Find(key);
      auto it = model.find(key);
      if (it == model.end()) {
        ASSERT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        ASSERT_EQ(*found, it->second);
      }
    }
    if (step % 500 == 0) {
      ASSERT_TRUE(tree.Validate(&err)) << "step " << step << ": " << err;
    }
  }
  ASSERT_TRUE(tree.Validate(&err)) << err;
  ASSERT_EQ(tree.size(), model.size());
  auto it = model.begin();
  tree.ScanAll([&](const int& k, const int& v) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
    return true;
  });
  EXPECT_EQ(it, model.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(BPlusTreePropertyTest, RangeScansMatchModelAfterChurn) {
  Rng rng(99);
  BPlusTree<int, int, std::less<int>, 6> tree;
  std::map<int, int> model;
  for (int step = 0; step < 3000; ++step) {
    int key = static_cast<int>(rng.UniformInt(0, 500));
    if (rng.Bernoulli(0.6)) {
      tree.Insert(key, key);
      model.emplace(key, key);
    } else {
      tree.Erase(key);
      model.erase(key);
    }
  }
  for (int trial = 0; trial < 50; ++trial) {
    int lo = static_cast<int>(rng.UniformInt(0, 500));
    int hi = lo + static_cast<int>(rng.UniformInt(0, 100));
    std::vector<int> tree_keys;
    tree.Scan(&lo, true, &hi, true, [&](const int& k, const int&) {
      tree_keys.push_back(k);
      return true;
    });
    std::vector<int> model_keys;
    for (auto it = model.lower_bound(lo);
         it != model.end() && it->first <= hi; ++it) {
      model_keys.push_back(it->first);
    }
    ASSERT_EQ(tree_keys, model_keys) << "range [" << lo << "," << hi << "]";
  }
}

// ---------------------------------------------------------------------------
// BulkLoad: bottom-up construction from sorted input must produce a tree
// indistinguishable (Find, Scan order, Validate, further mutation) from one
// built by repeated Insert.

TEST(BPlusTreeBulkLoad, NodeBoundarySizesValidateAndFind) {
  // Sizes straddling every packing boundary of the 32-key nodes: empty,
  // one leaf, leaf exactly full, tail-leaf underflow (borrows from its left
  // neighbor), one internal level, and tail adjustments at the internal
  // level.
  for (int n : {0, 1, 15, 16, 17, 31, 32, 33, 48, 49, 63, 64, 65, 100, 1024,
                1056, 1057, 5000}) {
    Tree tree;
    std::vector<std::pair<int, int>> items;
    items.reserve(n);
    for (int i = 0; i < n; ++i) items.emplace_back(i * 2, i);
    tree.BulkLoad(std::move(items));
    ASSERT_EQ(tree.size(), static_cast<size_t>(n)) << "n=" << n;
    std::string err;
    ASSERT_TRUE(tree.Validate(&err)) << "n=" << n << ": " << err;
    for (int i = 0; i < n; ++i) {
      const int* v = tree.Find(i * 2);
      ASSERT_NE(v, nullptr) << "n=" << n << " key " << i * 2;
      EXPECT_EQ(*v, i);
    }
    EXPECT_EQ(tree.Find(-1), nullptr);
    EXPECT_EQ(tree.Find(2 * n + 1), nullptr);
  }
}

TEST(BPlusTreeBulkLoad, ScanYieldsLoadOrderThroughLeafChain) {
  Tree tree;
  std::vector<std::pair<int, int>> items;
  for (int i = 0; i < 2000; ++i) items.emplace_back(i * 3, i);
  tree.BulkLoad(std::move(items));
  int expect = 0;
  tree.Scan(nullptr, true, nullptr, true, [&](const int& k, const int& v) {
    EXPECT_EQ(k, expect * 3);
    EXPECT_EQ(v, expect);
    ++expect;
    return true;
  });
  EXPECT_EQ(expect, 2000);
}

TEST(BPlusTreeBulkLoad, MatchesInsertBuiltTreeAndStaysMutable) {
  Rng rng(77);
  std::vector<std::pair<int, int>> items;
  int key = 0;
  for (int i = 0; i < 777; ++i) {
    key += static_cast<int>(rng.UniformInt(1, 50));  // strictly increasing
    items.emplace_back(key, i);
  }
  Tree inserted;
  for (const auto& [k, v] : items) ASSERT_TRUE(inserted.Insert(k, v));
  Tree loaded;
  loaded.BulkLoad(items);
  ASSERT_EQ(loaded.size(), inserted.size());
  std::string err;
  ASSERT_TRUE(loaded.Validate(&err)) << err;
  for (const auto& [k, v] : items) {
    const int* found = loaded.Find(k);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, v);
  }
  // The loaded tree must keep working as a normal tree: mixed churn after
  // the bulk build, validating throughout.
  for (int i = 0; i < 300; ++i) {
    int k = items[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(items.size()) - 1))].first;
    if (rng.UniformInt(0, 1)) {
      loaded.Erase(k);
      inserted.Erase(k);
    } else {
      loaded.InsertOrAssign(k, -i);
      inserted.InsertOrAssign(k, -i);
    }
  }
  ASSERT_TRUE(loaded.Validate(&err)) << err;
  EXPECT_EQ(loaded.size(), inserted.size());
  std::vector<int> a, b;
  loaded.Scan(nullptr, true, nullptr, true, [&](const int& k, const int&) {
    a.push_back(k);
    return true;
  });
  inserted.Scan(nullptr, true, nullptr, true, [&](const int& k, const int&) {
    b.push_back(k);
    return true;
  });
  EXPECT_EQ(a, b);
}

TEST(BPlusTreeBulkLoad, ReplacesExistingContents) {
  Tree tree;
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(tree.Insert(i, i));
  std::vector<std::pair<int, int>> items = {{100, 1}, {200, 2}};
  tree.BulkLoad(std::move(items));
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(tree.Find(5), nullptr);
  ASSERT_NE(tree.Find(200), nullptr);
  std::string err;
  EXPECT_TRUE(tree.Validate(&err)) << err;
}

}  // namespace
}  // namespace clouddb::db
