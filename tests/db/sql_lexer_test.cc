#include "db/sql_lexer.h"

#include <gtest/gtest.h>

namespace clouddb::db {
namespace {

std::vector<Token> MustTokenize(const std::string& sql) {
  auto r = Tokenize(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = MustTokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitiveAndNormalized) {
  auto tokens = MustTokenize("select SeLeCt SELECT");
  ASSERT_EQ(tokens.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(tokens[static_cast<size_t>(i)].type, TokenType::kKeyword);
    EXPECT_EQ(tokens[static_cast<size_t>(i)].text, "SELECT");
  }
}

TEST(LexerTest, IdentifiersKeepTheirCase) {
  auto tokens = MustTokenize("MyTable my_col _x");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "MyTable");
  EXPECT_EQ(tokens[1].text, "my_col");
  EXPECT_EQ(tokens[2].text, "_x");
}

TEST(LexerTest, IntegerLiterals) {
  auto tokens = MustTokenize("0 42 9223372036854775807");
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, INT64_MAX);
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
}

TEST(LexerTest, DoubleLiterals) {
  auto tokens = MustTokenize("3.14 0.5 2e3 1.5e-2 .25");
  EXPECT_EQ(tokens[0].type, TokenType::kDouble);
  EXPECT_DOUBLE_EQ(tokens[0].double_value, 3.14);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 0.5);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 2000.0);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.015);
  EXPECT_DOUBLE_EQ(tokens[4].double_value, 0.25);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = MustTokenize("'hello' 'it''s' ''");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
  EXPECT_EQ(tokens[2].text, "");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
  EXPECT_FALSE(Tokenize("'trailing escape''").ok());
}

TEST(LexerTest, MultiCharSymbols) {
  auto tokens = MustTokenize("<= >= <> != < > = + - * / ( ) , .");
  EXPECT_EQ(tokens[0].text, "<=");
  EXPECT_EQ(tokens[1].text, ">=");
  EXPECT_EQ(tokens[2].text, "<>");
  EXPECT_EQ(tokens[3].text, "!=");
  EXPECT_EQ(tokens[4].text, "<");
  EXPECT_EQ(tokens[5].text, ">");
  for (size_t i = 0; i < 15; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kSymbol);
  }
}

TEST(LexerTest, UnexpectedCharacterFails) {
  auto r = Tokenize("SELECT @ FROM t");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("@"), std::string::npos);
}

TEST(LexerTest, OffsetsPointIntoSource) {
  auto tokens = MustTokenize("ab  cd");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 4u);
}

TEST(LexerTest, TokenPredicates) {
  auto tokens = MustTokenize("SELECT (");
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_FALSE(tokens[0].IsKeyword("FROM"));
  EXPECT_TRUE(tokens[1].IsSymbol("("));
  EXPECT_FALSE(tokens[1].IsKeyword("SELECT"));
}

TEST(LexerTest, FullStatementTokenStream) {
  auto tokens = MustTokenize(
      "INSERT INTO heartbeat (hb_id, ts) VALUES (7, NOW_MICROS())");
  // INSERT INTO heartbeat ( hb_id , ts ) VALUES ( 7 , NOW_MICROS ( ) ) END
  ASSERT_EQ(tokens.size(), 17u);
  EXPECT_TRUE(tokens[0].IsKeyword("INSERT"));
  EXPECT_EQ(tokens[2].text, "heartbeat");
  EXPECT_EQ(tokens[12].text, "NOW_MICROS");
  EXPECT_EQ(tokens[12].type, TokenType::kIdentifier);
}

}  // namespace
}  // namespace clouddb::db
