#include "db/sql_parser.h"
#include "db/sql_ast.h"
#include "db/value.h"

#include <gtest/gtest.h>

namespace clouddb::db {
namespace {

Statement MustParse(const std::string& sql) {
  auto r = ParseSql(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return std::move(r).value();
}


template <typename T>
T MustParseAs(const std::string& sql) {
  auto r = ParseSql(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return std::move(std::get<T>(*r));
}

TEST(ParserTest, CreateTable) {
  Statement stmt = MustParse(
      "CREATE TABLE t (id BIGINT PRIMARY KEY, name TEXT NOT NULL, "
      "score DOUBLE, note VARCHAR(80), stamp TIMESTAMP)");
  auto& create = std::get<CreateTableStatement>(stmt);
  EXPECT_EQ(create.table, "t");
  ASSERT_EQ(create.columns.size(), 5u);
  EXPECT_TRUE(create.columns[0].primary_key);
  EXPECT_EQ(create.columns[0].type, ValueType::kInt64);
  EXPECT_TRUE(create.columns[1].not_null);
  EXPECT_EQ(create.columns[1].type, ValueType::kString);
  EXPECT_EQ(create.columns[2].type, ValueType::kDouble);
  EXPECT_EQ(create.columns[3].type, ValueType::kString);
  EXPECT_EQ(create.columns[4].type, ValueType::kInt64);
}

TEST(ParserTest, CreateIndex) {
  Statement stmt = MustParse("CREATE INDEX idx_age ON people (age)");
  auto& ci = std::get<CreateIndexStatement>(stmt);
  EXPECT_EQ(ci.index, "idx_age");
  EXPECT_EQ(ci.table, "people");
  EXPECT_EQ(ci.column, "age");
}

TEST(ParserTest, DropAndTruncate) {
  EXPECT_EQ(MustParseAs<DropTableStatement>(("DROP TABLE t")).table, "t");
  EXPECT_EQ(MustParseAs<TruncateStatement>(("TRUNCATE t")).table, "t");
  EXPECT_EQ(MustParseAs<TruncateStatement>(("TRUNCATE TABLE t")).table,
            "t");
}

TEST(ParserTest, InsertWithColumnList) {
  Statement stmt =
      MustParse("INSERT INTO t (a, b) VALUES (1, 'x')");
  auto& ins = std::get<InsertStatement>(stmt);
  EXPECT_EQ(ins.table, "t");
  EXPECT_EQ(ins.columns, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(ins.values.size(), 2u);
  EXPECT_EQ(ins.values[0]->literal, Value(int64_t{1}));
  EXPECT_EQ(ins.values[1]->literal, Value("x"));
}

TEST(ParserTest, InsertWithoutColumnList) {
  auto ins = MustParseAs<InsertStatement>(("INSERT INTO t VALUES (1, 2.5, NULL)"));
  EXPECT_TRUE(ins.columns.empty());
  ASSERT_EQ(ins.values.size(), 3u);
  EXPECT_TRUE(ins.values[2]->literal.is_null());
}

TEST(ParserTest, InsertWithFunctionCall) {
  auto ins = MustParseAs<InsertStatement>(("INSERT INTO hb (id, ts) VALUES (7, NOW_MICROS())"));
  ASSERT_EQ(ins.values.size(), 2u);
  EXPECT_EQ(ins.values[1]->kind, Expr::Kind::kFunctionCall);
  EXPECT_EQ(ins.values[1]->function, "NOW_MICROS");
  EXPECT_TRUE(ins.values[1]->args.empty());
}

TEST(ParserTest, SelectStar) {
  auto sel = MustParseAs<SelectStatement>(("SELECT * FROM t"));
  EXPECT_TRUE(sel.star);
  EXPECT_FALSE(sel.count_star);
  EXPECT_EQ(sel.table, "t");
  EXPECT_EQ(sel.where, nullptr);
}

TEST(ParserTest, SelectColumnsWhereOrderLimit) {
  auto sel = MustParseAs<SelectStatement>((
      "SELECT a, b FROM t WHERE a >= 5 AND b = 'x' ORDER BY a DESC LIMIT 10"));
  EXPECT_EQ(sel.columns, (std::vector<std::string>{"a", "b"}));
  ASSERT_NE(sel.where, nullptr);
  EXPECT_EQ(sel.where->kind, Expr::Kind::kBinary);
  EXPECT_EQ(sel.where->op, BinaryOp::kAnd);
  EXPECT_EQ(sel.order_by, "a");
  EXPECT_TRUE(sel.order_desc);
  ASSERT_TRUE(sel.limit.has_value());
  EXPECT_EQ(*sel.limit, 10);
}

TEST(ParserTest, SelectOrderByAscExplicit) {
  auto sel = MustParseAs<SelectStatement>(("SELECT * FROM t ORDER BY a ASC"));
  EXPECT_EQ(sel.order_by, "a");
  EXPECT_FALSE(sel.order_desc);
}

TEST(ParserTest, SelectCountStar) {
  auto sel = MustParseAs<SelectStatement>(("SELECT COUNT(*) FROM t"));
  EXPECT_TRUE(sel.count_star);
  EXPECT_FALSE(sel.star);
}

TEST(ParserTest, UpdateMultipleAssignments) {
  auto upd = MustParseAs<UpdateStatement>(("UPDATE t SET a = a + 1, b = 'y' WHERE id = 3"));
  EXPECT_EQ(upd.table, "t");
  ASSERT_EQ(upd.assignments.size(), 2u);
  EXPECT_EQ(upd.assignments[0].first, "a");
  EXPECT_EQ(upd.assignments[0].second->kind, Expr::Kind::kBinary);
  EXPECT_EQ(upd.assignments[1].second->literal, Value("y"));
  ASSERT_NE(upd.where, nullptr);
}

TEST(ParserTest, DeleteWithAndWithoutWhere) {
  auto d1 = MustParseAs<DeleteStatement>(("DELETE FROM t WHERE a < 3"));
  EXPECT_NE(d1.where, nullptr);
  auto d2 = MustParseAs<DeleteStatement>(("DELETE FROM t"));
  EXPECT_EQ(d2.where, nullptr);
}

TEST(ParserTest, TransactionControl) {
  EXPECT_TRUE(std::holds_alternative<BeginStatement>(MustParse("BEGIN")));
  EXPECT_TRUE(std::holds_alternative<CommitStatement>(MustParse("commit")));
  EXPECT_TRUE(
      std::holds_alternative<RollbackStatement>(MustParse("ROLLBACK;")));
}

TEST(ParserTest, ExpressionPrecedence) {
  auto sel = MustParseAs<SelectStatement>(("SELECT * FROM t WHERE a = 1 + 2 * 3"));
  // Rhs of '=' must be 1 + (2*3).
  const Expr& eq = *sel.where;
  EXPECT_EQ(eq.op, BinaryOp::kEq);
  const Expr& add = *eq.rhs;
  EXPECT_EQ(add.op, BinaryOp::kAdd);
  EXPECT_EQ(add.lhs->literal, Value(int64_t{1}));
  EXPECT_EQ(add.rhs->op, BinaryOp::kMul);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto sel = MustParseAs<SelectStatement>(("SELECT * FROM t WHERE a = (1 + 2) * 3"));
  const Expr& mul = *sel.where->rhs;
  EXPECT_EQ(mul.op, BinaryOp::kMul);
  EXPECT_EQ(mul.lhs->op, BinaryOp::kAdd);
}

TEST(ParserTest, UnaryMinus) {
  auto ins = MustParseAs<InsertStatement>(("INSERT INTO t VALUES (-5)"));
  const Expr& e = *ins.values[0];
  // Encoded as 0 - 5.
  EXPECT_EQ(e.kind, Expr::Kind::kBinary);
  EXPECT_EQ(e.op, BinaryOp::kSub);
  EXPECT_EQ(e.rhs->literal, Value(int64_t{5}));
}

TEST(ParserTest, IsNullAndIsNotNull) {
  auto s1 = MustParseAs<SelectStatement>(("SELECT * FROM t WHERE a IS NULL"));
  EXPECT_EQ(s1.where->kind, Expr::Kind::kIsNull);
  EXPECT_FALSE(s1.where->is_null_negated);
  auto s2 = MustParseAs<SelectStatement>(("SELECT * FROM t WHERE a IS NOT NULL"));
  EXPECT_TRUE(s2.where->is_null_negated);
}

TEST(ParserTest, ComparisonOperators) {
  for (const char* op : {"=", "!=", "<>", "<", "<=", ">", ">="}) {
    std::string sql = std::string("SELECT * FROM t WHERE a ") + op + " 1";
    EXPECT_TRUE(ParseSql(sql).ok()) << sql;
  }
}

TEST(ParserTest, StatementClassifiers) {
  EXPECT_TRUE(IsWriteStatement(MustParse("INSERT INTO t VALUES (1)")));
  EXPECT_TRUE(IsWriteStatement(MustParse("UPDATE t SET a = 1")));
  EXPECT_TRUE(IsWriteStatement(MustParse("DELETE FROM t")));
  EXPECT_TRUE(IsWriteStatement(MustParse("CREATE TABLE t (a INT)")));
  EXPECT_TRUE(IsWriteStatement(MustParse("DROP TABLE t")));
  EXPECT_FALSE(IsWriteStatement(MustParse("SELECT * FROM t")));
  EXPECT_FALSE(IsWriteStatement(MustParse("BEGIN")));
  EXPECT_TRUE(IsTransactionControl(MustParse("BEGIN")));
  EXPECT_TRUE(IsTransactionControl(MustParse("COMMIT")));
  EXPECT_FALSE(IsTransactionControl(MustParse("SELECT * FROM t")));
}

TEST(ParserTest, StatementKindNames) {
  EXPECT_STREQ(StatementKindName(MustParse("SELECT * FROM t")), "SELECT");
  EXPECT_STREQ(StatementKindName(MustParse("INSERT INTO t VALUES (1)")),
               "INSERT");
  EXPECT_STREQ(StatementKindName(MustParse("BEGIN")), "BEGIN");
}

struct BadSqlCase {
  const char* sql;
};

class ParserErrorTest : public ::testing::TestWithParam<BadSqlCase> {};

TEST_P(ParserErrorTest, Rejects) {
  auto r = ParseSql(GetParam().sql);
  EXPECT_FALSE(r.ok()) << GetParam().sql;
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

INSTANTIATE_TEST_SUITE_P(
    BadStatements, ParserErrorTest,
    ::testing::Values(BadSqlCase{""},
                      BadSqlCase{"SELEC * FROM t"},
                      BadSqlCase{"SELECT FROM t"},
                      BadSqlCase{"SELECT * FROM"},
                      BadSqlCase{"SELECT * t"},
                      BadSqlCase{"INSERT t VALUES (1)"},
                      BadSqlCase{"INSERT INTO t VALUES 1"},
                      BadSqlCase{"INSERT INTO t (a VALUES (1)"},
                      BadSqlCase{"CREATE TABLE t ()"},
                      BadSqlCase{"CREATE TABLE t (a)"},
                      BadSqlCase{"CREATE TABLE t (a FLOAT)"},
                      BadSqlCase{"CREATE INDEX i ON t"},
                      BadSqlCase{"UPDATE t a = 1"},
                      BadSqlCase{"UPDATE t SET a"},
                      BadSqlCase{"DELETE t"},
                      BadSqlCase{"SELECT * FROM t WHERE"},
                      BadSqlCase{"SELECT * FROM t WHERE a ="},
                      BadSqlCase{"SELECT * FROM t LIMIT x"},
                      BadSqlCase{"SELECT * FROM t ORDER a"},
                      BadSqlCase{"SELECT * FROM t extra garbage"},
                      BadSqlCase{"SELECT * FROM t WHERE a IS 5"}));

TEST(ParserTest, TrailingSemicolonAccepted) {
  EXPECT_TRUE(ParseSql("SELECT * FROM t;").ok());
}

TEST(ParserTest, OrBindsLooserThanAnd) {
  auto sel = MustParseAs<SelectStatement>(
      "SELECT * FROM t WHERE a = 1 AND b = 2 OR c = 3");
  // Parsed as (a=1 AND b=2) OR (c=3).
  ASSERT_EQ(sel.where->op, BinaryOp::kOr);
  EXPECT_EQ(sel.where->lhs->op, BinaryOp::kAnd);
  EXPECT_EQ(sel.where->rhs->op, BinaryOp::kEq);
}

TEST(ParserTest, NotPrefix) {
  auto sel = MustParseAs<SelectStatement>(
      "SELECT * FROM t WHERE NOT a = 1");
  EXPECT_EQ(sel.where->kind, Expr::Kind::kNot);
  EXPECT_EQ(sel.where->lhs->op, BinaryOp::kEq);
}

TEST(ParserTest, InList) {
  auto sel = MustParseAs<SelectStatement>(
      "SELECT * FROM t WHERE a IN (1, 2, 3)");
  ASSERT_EQ(sel.where->kind, Expr::Kind::kInList);
  EXPECT_FALSE(sel.where->is_null_negated);
  EXPECT_EQ(sel.where->args.size(), 3u);
}

TEST(ParserTest, NotInList) {
  auto sel = MustParseAs<SelectStatement>(
      "SELECT * FROM t WHERE a NOT IN (1, 2)");
  ASSERT_EQ(sel.where->kind, Expr::Kind::kInList);
  EXPECT_TRUE(sel.where->is_null_negated);
}

TEST(ParserTest, BetweenDesugarsToRange) {
  auto sel = MustParseAs<SelectStatement>(
      "SELECT * FROM t WHERE a BETWEEN 3 AND 7");
  // (a >= 3) AND (a <= 7)
  ASSERT_EQ(sel.where->op, BinaryOp::kAnd);
  EXPECT_EQ(sel.where->lhs->op, BinaryOp::kGe);
  EXPECT_EQ(sel.where->rhs->op, BinaryOp::kLe);
  EXPECT_EQ(sel.where->lhs->rhs->literal, Value(int64_t{3}));
  EXPECT_EQ(sel.where->rhs->rhs->literal, Value(int64_t{7}));
}

TEST(ParserTest, NotBetween) {
  auto sel = MustParseAs<SelectStatement>(
      "SELECT * FROM t WHERE a NOT BETWEEN 3 AND 7");
  EXPECT_EQ(sel.where->kind, Expr::Kind::kNot);
  EXPECT_EQ(sel.where->lhs->op, BinaryOp::kAnd);
}

TEST(ParserTest, BetweenCombinesWithOuterAnd) {
  auto sel = MustParseAs<SelectStatement>(
      "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b = 2");
  // ((a>=1 AND a<=5) AND b=2)
  ASSERT_EQ(sel.where->op, BinaryOp::kAnd);
  EXPECT_EQ(sel.where->lhs->op, BinaryOp::kAnd);
  EXPECT_EQ(sel.where->rhs->op, BinaryOp::kEq);
}

TEST(ParserTest, AggregateSelectList) {
  auto sel = MustParseAs<SelectStatement>(
      "SELECT MIN(a), MAX(a), SUM(b), AVG(b), COUNT(*) FROM t");
  ASSERT_EQ(sel.aggregates.size(), 5u);
  EXPECT_EQ(sel.aggregates[0].fn, AggregateFn::kMin);
  EXPECT_EQ(sel.aggregates[0].column, "a");
  EXPECT_EQ(sel.aggregates[2].fn, AggregateFn::kSum);
  EXPECT_EQ(sel.aggregates[4].fn, AggregateFn::kCountStar);
  EXPECT_FALSE(sel.count_star);  // not a lone COUNT(*)
}

TEST(ParserTest, LoneCountStarSetsFlag) {
  auto sel = MustParseAs<SelectStatement>("SELECT COUNT(*) FROM t");
  EXPECT_TRUE(sel.count_star);
  ASSERT_EQ(sel.aggregates.size(), 1u);
}

TEST(ParserTest, MixedAggregatesAndColumnsRejected) {
  EXPECT_FALSE(ParseSql("SELECT a, MAX(b) FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT MAX(b), a FROM t").ok());
}

TEST(ParserTest, NewPredicateErrorCases) {
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE a IN ()").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE a IN 1").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE a BETWEEN 1").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE a NOT 5").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE NOT").ok());
}

TEST(ParserTest, CloneExprDeepCopies) {
  auto sel = MustParseAs<SelectStatement>(
      "SELECT * FROM t WHERE a IN (1, 2) AND NOT b = ABS(0 - 3)");
  ExprPtr copy = CloneExpr(*sel.where);
  EXPECT_EQ(copy->ToString(), sel.where->ToString());
  EXPECT_NE(copy.get(), sel.where.get());
  EXPECT_NE(copy->lhs.get(), sel.where->lhs.get());
}

}  // namespace
}  // namespace clouddb::db
