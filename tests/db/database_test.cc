#include "db/database.h"
#include "db/binlog.h"
#include "db/transaction.h"
#include "db/value.h"

#include <gtest/gtest.h>

namespace clouddb::db {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  ExecResult Must(const std::string& sql, Session* session = nullptr) {
    auto r = db_.Execute(sql, session);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : ExecResult{};
  }

  void SetUpPeople() {
    Must("CREATE TABLE people (id BIGINT PRIMARY KEY, name TEXT NOT NULL, "
         "age INT)");
    Must("INSERT INTO people VALUES (1, 'ann', 30)");
    Must("INSERT INTO people VALUES (2, 'bob', 25)");
    Must("INSERT INTO people VALUES (3, 'cat', 35)");
    Must("INSERT INTO people VALUES (4, 'dan', 25)");
  }

  Database db_;
};

TEST_F(DatabaseTest, CreateInsertSelect) {
  SetUpPeople();
  ExecResult r = Must("SELECT * FROM people WHERE id = 2");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].AsString(), "bob");
  EXPECT_EQ(r.column_names,
            (std::vector<std::string>{"id", "name", "age"}));
}

TEST_F(DatabaseTest, PkLookupUsesPkPlan) {
  SetUpPeople();
  ExecResult r = Must("SELECT * FROM people WHERE id = 3");
  EXPECT_EQ(r.plan, "pk_eq(id)");
  EXPECT_EQ(r.rows_examined, 1);
}

TEST_F(DatabaseTest, FullScanWithoutIndex) {
  SetUpPeople();
  ExecResult r = Must("SELECT * FROM people WHERE age = 25");
  EXPECT_EQ(r.plan, "table_scan");
  EXPECT_EQ(r.rows_examined, 4);
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(DatabaseTest, SecondaryIndexEqPlan) {
  SetUpPeople();
  Must("CREATE INDEX idx_age ON people (age)");
  ExecResult r = Must("SELECT * FROM people WHERE age = 25");
  EXPECT_EQ(r.plan, "index_eq(age)");
  EXPECT_EQ(r.rows_examined, 2);
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(DatabaseTest, SecondaryIndexRangePlan) {
  SetUpPeople();
  Must("CREATE INDEX idx_age ON people (age)");
  ExecResult r = Must("SELECT name FROM people WHERE age >= 30 AND age <= 40");
  EXPECT_EQ(r.plan, "index_range(age)");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(DatabaseTest, PkRangePlan) {
  SetUpPeople();
  ExecResult r = Must("SELECT * FROM people WHERE id > 1 AND id < 4");
  EXPECT_EQ(r.plan, "index_range(id)");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(DatabaseTest, FlippedComparisonUsesIndex) {
  SetUpPeople();
  ExecResult r = Must("SELECT * FROM people WHERE 2 = id");
  EXPECT_EQ(r.plan, "pk_eq(id)");
  ASSERT_EQ(r.rows.size(), 1u);
  ExecResult r2 = Must("SELECT * FROM people WHERE 2 < id");
  EXPECT_EQ(r2.plan, "index_range(id)");
  EXPECT_EQ(r2.rows.size(), 2u);
}

TEST_F(DatabaseTest, PredicateStillAppliedAfterIndexScan) {
  SetUpPeople();
  // id = 2 via index, plus a non-indexable residual predicate.
  ExecResult r = Must("SELECT * FROM people WHERE id = 2 AND name = 'zzz'");
  EXPECT_EQ(r.plan, "pk_eq(id)");
  EXPECT_EQ(r.rows.size(), 0u);
}

TEST_F(DatabaseTest, OrderByAndLimit) {
  SetUpPeople();
  ExecResult r = Must("SELECT name FROM people ORDER BY age DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "cat");
  EXPECT_EQ(r.rows[1][0].AsString(), "ann");
}

TEST_F(DatabaseTest, OrderByAscendingStable) {
  SetUpPeople();
  ExecResult r = Must("SELECT id FROM people ORDER BY age");
  ASSERT_EQ(r.rows.size(), 4u);
  // bob(25), dan(25) keep id order (stable sort), then ann(30), cat(35).
  EXPECT_EQ(r.rows[0][0].AsInt64(), 2);
  EXPECT_EQ(r.rows[1][0].AsInt64(), 4);
  EXPECT_EQ(r.rows[2][0].AsInt64(), 1);
  EXPECT_EQ(r.rows[3][0].AsInt64(), 3);
}

TEST_F(DatabaseTest, CountStar) {
  SetUpPeople();
  ExecResult r = Must("SELECT COUNT(*) FROM people WHERE age = 25");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 2);
  EXPECT_EQ(r.column_names[0], "COUNT(*)");
}

TEST_F(DatabaseTest, LimitZero) {
  SetUpPeople();
  EXPECT_EQ(Must("SELECT * FROM people LIMIT 0").rows.size(), 0u);
}

TEST_F(DatabaseTest, ProjectionSubset) {
  SetUpPeople();
  ExecResult r = Must("SELECT age, id FROM people WHERE id = 1");
  EXPECT_EQ(r.column_names, (std::vector<std::string>{"age", "id"}));
  EXPECT_EQ(r.rows[0][0].AsInt64(), 30);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 1);
}

TEST_F(DatabaseTest, UpdateRowsAffected) {
  SetUpPeople();
  ExecResult r = Must("UPDATE people SET age = age + 1 WHERE age = 25");
  EXPECT_EQ(r.rows_affected, 2);
  ExecResult check = Must("SELECT COUNT(*) FROM people WHERE age = 26");
  EXPECT_EQ(check.rows[0][0].AsInt64(), 2);
}

TEST_F(DatabaseTest, UpdateSeesOldRowInAssignments) {
  Must("CREATE TABLE t (a INT, b INT)");
  Must("INSERT INTO t VALUES (1, 10)");
  // Swap using old values: both assignments read the pre-update row.
  Must("UPDATE t SET a = b, b = a");
  ExecResult r = Must("SELECT * FROM t");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 10);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 1);
}

TEST_F(DatabaseTest, DeleteRowsAffected) {
  SetUpPeople();
  ExecResult r = Must("DELETE FROM people WHERE age < 30");
  EXPECT_EQ(r.rows_affected, 2);
  EXPECT_EQ(Must("SELECT COUNT(*) FROM people").rows[0][0].AsInt64(), 2);
}

TEST_F(DatabaseTest, InsertWithColumnListFillsNulls) {
  Must("CREATE TABLE t (a INT PRIMARY KEY, b TEXT, c DOUBLE)");
  Must("INSERT INTO t (a) VALUES (1)");
  ExecResult r = Must("SELECT * FROM t");
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_TRUE(r.rows[0][2].is_null());
}

TEST_F(DatabaseTest, DuplicatePkRejected) {
  SetUpPeople();
  auto r = db_.Execute("INSERT INTO people VALUES (1, 'dup', 1)");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAlreadyExists());
  EXPECT_EQ(Must("SELECT COUNT(*) FROM people").rows[0][0].AsInt64(), 4);
}

TEST_F(DatabaseTest, ErrorsForMissingTableAndColumn) {
  EXPECT_TRUE(db_.Execute("SELECT * FROM nope").status().IsNotFound());
  SetUpPeople();
  EXPECT_FALSE(db_.Execute("SELECT missing FROM people").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO people (nope) VALUES (1)").ok());
}

TEST_F(DatabaseTest, DropTable) {
  SetUpPeople();
  Must("DROP TABLE people");
  EXPECT_EQ(db_.GetTable("people"), nullptr);
  EXPECT_TRUE(db_.Execute("DROP TABLE people").status().IsNotFound());
}

TEST_F(DatabaseTest, TruncateReportsRowCount) {
  SetUpPeople();
  ExecResult r = Must("TRUNCATE people");
  EXPECT_EQ(r.rows_affected, 4);
  EXPECT_EQ(Must("SELECT COUNT(*) FROM people").rows[0][0].AsInt64(), 0);
}

TEST_F(DatabaseTest, TableNamesAreCaseInsensitive) {
  Must("CREATE TABLE CamelCase (a INT)");
  Must("INSERT INTO camelcase VALUES (1)");
  EXPECT_EQ(Must("SELECT COUNT(*) FROM CAMELCASE").rows[0][0].AsInt64(), 1);
}

// ---- Transactions --------------------------------------------------------

TEST_F(DatabaseTest, ExplicitCommitPersists) {
  SetUpPeople();
  auto session = db_.CreateSession();
  Must("BEGIN", session.get());
  Must("INSERT INTO people VALUES (10, 'joe', 40)", session.get());
  Must("UPDATE people SET age = 41 WHERE id = 10", session.get());
  Must("COMMIT", session.get());
  EXPECT_EQ(Must("SELECT COUNT(*) FROM people WHERE id = 10")
                .rows[0][0]
                .AsInt64(),
            1);
}

TEST_F(DatabaseTest, RollbackUndoesInsertUpdateDelete) {
  SetUpPeople();
  auto session = db_.CreateSession();
  Must("BEGIN", session.get());
  Must("INSERT INTO people VALUES (10, 'joe', 40)", session.get());
  Must("UPDATE people SET age = 99 WHERE id = 1", session.get());
  Must("DELETE FROM people WHERE id = 2", session.get());
  Must("ROLLBACK", session.get());
  EXPECT_EQ(Must("SELECT COUNT(*) FROM people").rows[0][0].AsInt64(), 4);
  EXPECT_EQ(Must("SELECT age FROM people WHERE id = 1").rows[0][0].AsInt64(),
            30);
  EXPECT_EQ(Must("SELECT COUNT(*) FROM people WHERE id = 2")
                .rows[0][0]
                .AsInt64(),
            1);
  std::string err;
  EXPECT_TRUE(db_.ValidateAllIndexes(&err)) << err;
}

TEST_F(DatabaseTest, NestedBeginFails) {
  auto session = db_.CreateSession();
  Must("BEGIN", session.get());
  auto r = db_.Execute("BEGIN", session.get());
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

TEST_F(DatabaseTest, CommitWithoutBeginIsNoOp) {
  EXPECT_TRUE(db_.Execute("COMMIT").ok());
  EXPECT_TRUE(db_.Execute("ROLLBACK").ok());
}

TEST_F(DatabaseTest, FailedStatementAbortsExplicitTransaction) {
  SetUpPeople();
  auto session = db_.CreateSession();
  Must("BEGIN", session.get());
  Must("INSERT INTO people VALUES (10, 'joe', 40)", session.get());
  auto bad = db_.Execute("INSERT INTO people VALUES (1, 'dup', 0)",
                         session.get());
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(session->in_explicit_transaction());
  // The earlier insert of the transaction must be rolled back too.
  EXPECT_EQ(Must("SELECT COUNT(*) FROM people WHERE id = 10")
                .rows[0][0]
                .AsInt64(),
            0);
}

TEST_F(DatabaseTest, LockConflictAbortsNoWait) {
  SetUpPeople();
  auto s1 = db_.CreateSession();
  auto s2 = db_.CreateSession();
  Must("BEGIN", s1.get());
  Must("UPDATE people SET age = 1 WHERE id = 1", s1.get());
  // s2 cannot read or write while s1 holds the write lock.
  EXPECT_TRUE(
      db_.Execute("SELECT * FROM people", s2.get()).status().IsAborted());
  EXPECT_TRUE(db_.Execute("DELETE FROM people", s2.get()).status().IsAborted());
  Must("COMMIT", s1.get());
  EXPECT_TRUE(db_.Execute("SELECT * FROM people", s2.get()).ok());
}

TEST_F(DatabaseTest, ConcurrentReadersAllowed) {
  SetUpPeople();
  auto s1 = db_.CreateSession();
  auto s2 = db_.CreateSession();
  Must("BEGIN", s1.get());
  Must("SELECT * FROM people", s1.get());
  EXPECT_TRUE(db_.Execute("SELECT * FROM people", s2.get()).ok());
  // But a writer is blocked by s1's read lock.
  auto s3 = db_.CreateSession();
  EXPECT_TRUE(db_.Execute("DELETE FROM people", s3.get()).status().IsAborted());
  Must("COMMIT", s1.get());
}

TEST_F(DatabaseTest, ReadLockUpgradesWithinSession) {
  SetUpPeople();
  auto s1 = db_.CreateSession();
  Must("BEGIN", s1.get());
  Must("SELECT * FROM people", s1.get());
  // Sole reader can upgrade to writer.
  EXPECT_TRUE(
      db_.Execute("UPDATE people SET age = 1 WHERE id = 1", s1.get()).ok());
  Must("COMMIT", s1.get());
}

// ---- Binlog --------------------------------------------------------------

TEST_F(DatabaseTest, BinlogRecordsWritesNotReads) {
  SetUpPeople();
  int64_t before = db_.binlog().size();
  Must("SELECT * FROM people");
  EXPECT_EQ(db_.binlog().size(), before);
  Must("INSERT INTO people VALUES (9, 'zed', 1)");
  EXPECT_EQ(db_.binlog().size(), before + 1);
  const BinlogEvent& ev = db_.binlog().At(before);
  ASSERT_EQ(ev.statements.size(), 1u);
  EXPECT_EQ(ev.statements[0], "INSERT INTO people VALUES (9, 'zed', 1)");
}

TEST_F(DatabaseTest, TransactionIsOneBinlogEvent) {
  SetUpPeople();
  int64_t before = db_.binlog().size();
  auto session = db_.CreateSession();
  Must("BEGIN", session.get());
  Must("INSERT INTO people VALUES (10, 'x', 1)", session.get());
  Must("INSERT INTO people VALUES (11, 'y', 2)", session.get());
  EXPECT_EQ(db_.binlog().size(), before);  // nothing until commit
  Must("COMMIT", session.get());
  ASSERT_EQ(db_.binlog().size(), before + 1);
  EXPECT_EQ(db_.binlog().At(before).statements.size(), 2u);
}

TEST_F(DatabaseTest, RolledBackTransactionNotLogged) {
  SetUpPeople();
  int64_t before = db_.binlog().size();
  auto session = db_.CreateSession();
  Must("BEGIN", session.get());
  Must("INSERT INTO people VALUES (10, 'x', 1)", session.get());
  Must("ROLLBACK", session.get());
  EXPECT_EQ(db_.binlog().size(), before);
}

TEST_F(DatabaseTest, FailedAutocommitNotLogged) {
  SetUpPeople();
  int64_t before = db_.binlog().size();
  EXPECT_FALSE(db_.Execute("INSERT INTO people VALUES (1, 'dup', 0)").ok());
  EXPECT_EQ(db_.binlog().size(), before);
}

TEST_F(DatabaseTest, BinlogDisabledDatabaseLogsNothing) {
  DatabaseOptions options;
  options.enable_binlog = false;
  Database slave(std::move(options));
  ASSERT_TRUE(slave.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(slave.Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_EQ(slave.binlog().size(), 0);
}

TEST_F(DatabaseTest, BinlogSuppressionScopes) {
  SetUpPeople();
  int64_t before = db_.binlog().size();
  db_.set_binlog_suppressed(true);
  Must("INSERT INTO people VALUES (20, 'bulk', 1)");
  db_.set_binlog_suppressed(false);
  EXPECT_EQ(db_.binlog().size(), before);
  Must("INSERT INTO people VALUES (21, 'live', 1)");
  EXPECT_EQ(db_.binlog().size(), before + 1);
}

TEST_F(DatabaseTest, DdlCausesImplicitCommit) {
  SetUpPeople();
  auto session = db_.CreateSession();
  Must("BEGIN", session.get());
  Must("INSERT INTO people VALUES (10, 'x', 1)", session.get());
  Must("CREATE TABLE other (a INT)", session.get());  // implicit commit
  EXPECT_FALSE(session->in_explicit_transaction());
  // The insert survived the implicit commit; rollback now has nothing.
  Must("ROLLBACK", session.get());
  EXPECT_EQ(Must("SELECT COUNT(*) FROM people WHERE id = 10")
                .rows[0][0]
                .AsInt64(),
            1);
}

TEST_F(DatabaseTest, NowMicrosFlowsFromTimeSource) {
  int64_t now = 1111;
  db_.SetTimeSource([&] { return now; });
  Must("CREATE TABLE hb (id INT PRIMARY KEY, ts BIGINT)");
  Must("INSERT INTO hb VALUES (1, NOW_MICROS())");
  now = 2222;
  Must("INSERT INTO hb VALUES (2, NOW_MICROS())");
  ExecResult r = Must("SELECT ts FROM hb ORDER BY id");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 1111);
  EXPECT_EQ(r.rows[1][0].AsInt64(), 2222);
  // Binlog commit timestamps come from the same source.
  EXPECT_EQ(db_.binlog().At(db_.binlog().size() - 1).commit_micros, 2222);
}

TEST_F(DatabaseTest, ContentsEqualAndIgnoreList) {
  Database other;
  for (Database* d : {&db_, &other}) {
    ASSERT_TRUE(d->Execute("CREATE TABLE t (a INT PRIMARY KEY)").ok());
    ASSERT_TRUE(d->Execute("INSERT INTO t VALUES (1)").ok());
    ASSERT_TRUE(d->Execute("CREATE TABLE hb (id INT PRIMARY KEY, ts BIGINT)").ok());
  }
  ASSERT_TRUE(db_.Execute("INSERT INTO hb VALUES (1, 100)").ok());
  ASSERT_TRUE(other.Execute("INSERT INTO hb VALUES (1, 200)").ok());
  EXPECT_FALSE(Database::ContentsEqual(db_, other));
  EXPECT_TRUE(Database::ContentsEqual(db_, other, {"hb"}));
}

TEST_F(DatabaseTest, TableNamesListsTables) {
  SetUpPeople();
  Must("CREATE TABLE zoo (a INT)");
  auto names = db_.TableNames();
  EXPECT_EQ(names.size(), 2u);
}

// ---- Extended predicates & aggregates -------------------------------------

TEST_F(DatabaseTest, OrPredicateSelectsUnion) {
  SetUpPeople();
  ExecResult r = Must("SELECT name FROM people WHERE id = 1 OR age = 25");
  EXPECT_EQ(r.rows.size(), 3u);  // ann + bob + dan
  // OR disables index constraint extraction -> full scan.
  EXPECT_EQ(r.plan, "table_scan");
}

TEST_F(DatabaseTest, OrWithinAndStillUsesIndexFromConjunct) {
  SetUpPeople();
  ExecResult r = Must(
      "SELECT * FROM people WHERE id = 2 AND (age = 25 OR age = 30)");
  EXPECT_EQ(r.plan, "pk_eq(id)");
  EXPECT_EQ(r.rows.size(), 1u);
}

TEST_F(DatabaseTest, InListPredicate) {
  SetUpPeople();
  ExecResult r = Must("SELECT name FROM people WHERE id IN (1, 3, 99)");
  EXPECT_EQ(r.rows.size(), 2u);
  ExecResult nr = Must("SELECT name FROM people WHERE id NOT IN (1, 3)");
  EXPECT_EQ(nr.rows.size(), 2u);
}

TEST_F(DatabaseTest, BetweenUsesIndexRange) {
  SetUpPeople();
  ExecResult r = Must("SELECT * FROM people WHERE id BETWEEN 2 AND 3");
  EXPECT_EQ(r.plan, "index_range(id)");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(DatabaseTest, NotPredicate) {
  SetUpPeople();
  ExecResult r = Must("SELECT * FROM people WHERE NOT age = 25");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(DatabaseTest, AggregatesOverWhere) {
  SetUpPeople();
  ExecResult r = Must(
      "SELECT MIN(age), MAX(age), SUM(age), AVG(age), COUNT(*) FROM people "
      "WHERE age >= 25");
  ASSERT_EQ(r.rows.size(), 1u);
  const Row& row = r.rows[0];
  EXPECT_EQ(row[0], Value(int64_t{25}));
  EXPECT_EQ(row[1], Value(int64_t{35}));
  EXPECT_EQ(row[2], Value(int64_t{115}));
  EXPECT_DOUBLE_EQ(row[3].AsDouble(), 115.0 / 4.0);
  EXPECT_EQ(row[4], Value(int64_t{4}));
  EXPECT_EQ(r.column_names[0], "MIN(age)");
  EXPECT_EQ(r.column_names[4], "COUNT(*)");
}

TEST_F(DatabaseTest, AggregatesOnEmptySetAreNullExceptCount) {
  SetUpPeople();
  ExecResult r = Must(
      "SELECT MIN(age), SUM(age), COUNT(*) FROM people WHERE age > 1000");
  const Row& row = r.rows[0];
  EXPECT_TRUE(row[0].is_null());
  EXPECT_TRUE(row[1].is_null());
  EXPECT_EQ(row[2], Value(int64_t{0}));
}

TEST_F(DatabaseTest, AggregatesSkipNulls) {
  Must("CREATE TABLE t (a INT, b INT)");
  Must("INSERT INTO t VALUES (1, 10)");
  Must("INSERT INTO t VALUES (2, NULL)");
  Must("INSERT INTO t VALUES (3, 20)");
  ExecResult r = Must("SELECT COUNT(*), SUM(b), AVG(b), MIN(b) FROM t");
  const Row& row = r.rows[0];
  EXPECT_EQ(row[0], Value(int64_t{3}));  // COUNT(*) counts rows
  EXPECT_EQ(row[1], Value(int64_t{30}));
  EXPECT_DOUBLE_EQ(row[2].AsDouble(), 15.0);
  EXPECT_EQ(row[3], Value(int64_t{10}));
}

TEST_F(DatabaseTest, SumOverStringColumnRejected) {
  SetUpPeople();
  EXPECT_FALSE(db_.Execute("SELECT SUM(name) FROM people").ok());
  // MIN/MAX over strings are fine (lexicographic).
  ExecResult r = Must("SELECT MIN(name), MAX(name) FROM people");
  EXPECT_EQ(r.rows[0][0], Value("ann"));
  EXPECT_EQ(r.rows[0][1], Value("dan"));
}

TEST_F(DatabaseTest, AvgOfDoubleColumn) {
  Must("CREATE TABLE m (v DOUBLE)");
  Must("INSERT INTO m VALUES (1.5)");
  Must("INSERT INTO m VALUES (2.5)");
  ExecResult r = Must("SELECT AVG(v), SUM(v) FROM m");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 4.0);
}

}  // namespace
}  // namespace clouddb::db
