#include "db/functions.h"
#include "common/result.h"
#include "db/value.h"

#include <gtest/gtest.h>

namespace clouddb::db {
namespace {

TEST(FunctionRegistryTest, BuiltinsPresent) {
  FunctionRegistry funcs;
  EXPECT_TRUE(funcs.Has("ABS"));
  EXPECT_TRUE(funcs.Has("abs"));  // case-insensitive
  EXPECT_TRUE(funcs.Has("MOD"));
  EXPECT_TRUE(funcs.Has("LENGTH"));
  EXPECT_TRUE(funcs.Has("CONCAT"));
  EXPECT_TRUE(funcs.Has("NOW_MICROS"));
  EXPECT_FALSE(funcs.Has("NOPE"));
}

TEST(FunctionRegistryTest, AbsIntAndDouble) {
  FunctionRegistry funcs;
  EXPECT_EQ(*funcs.Call("ABS", {Value(int64_t{-3})}), Value(int64_t{3}));
  EXPECT_EQ(*funcs.Call("ABS", {Value(-2.5)}), Value(2.5));
  EXPECT_TRUE(funcs.Call("ABS", {Value::Null()})->is_null());
  EXPECT_FALSE(funcs.Call("ABS", {}).ok());
  EXPECT_FALSE(funcs.Call("ABS", {Value("x")}).ok());
}

TEST(FunctionRegistryTest, Mod) {
  FunctionRegistry funcs;
  EXPECT_EQ(*funcs.Call("MOD", {Value(int64_t{7}), Value(int64_t{3})}),
            Value(int64_t{1}));
  EXPECT_FALSE(funcs.Call("MOD", {Value(int64_t{7}), Value(int64_t{0})}).ok());
  EXPECT_TRUE(
      funcs.Call("MOD", {Value::Null(), Value(int64_t{3})})->is_null());
}

TEST(FunctionRegistryTest, LengthAndConcat) {
  FunctionRegistry funcs;
  EXPECT_EQ(*funcs.Call("LENGTH", {Value("hello")}), Value(int64_t{5}));
  EXPECT_FALSE(funcs.Call("LENGTH", {Value(int64_t{5})}).ok());
  EXPECT_EQ(*funcs.Call("CONCAT", {Value("a"), Value(int64_t{1}), Value("b")}),
            Value("a1b"));
  EXPECT_EQ(*funcs.Call("CONCAT", {}), Value(""));
  EXPECT_TRUE(funcs.Call("CONCAT", {Value("a"), Value::Null()})->is_null());
}

TEST(FunctionRegistryTest, NowMicrosDefaultsToZero) {
  FunctionRegistry funcs;
  EXPECT_EQ(*funcs.Call("NOW_MICROS", {}), Value(int64_t{0}));
  EXPECT_FALSE(funcs.Call("NOW_MICROS", {Value(int64_t{1})}).ok());
}

TEST(FunctionRegistryTest, NowMicrosUsesTimeSource) {
  int64_t now = 12345;
  FunctionRegistry funcs([&] { return now; });
  EXPECT_EQ(*funcs.Call("NOW_MICROS", {}), Value(int64_t{12345}));
  now = 99;
  EXPECT_EQ(*funcs.Call("NOW_MICROS", {}), Value(int64_t{99}));
}

TEST(FunctionRegistryTest, SetTimeSourceRebinds) {
  FunctionRegistry funcs;
  funcs.SetTimeSource([] { return int64_t{7}; });
  EXPECT_EQ(*funcs.Call("NOW_MICROS", {}), Value(int64_t{7}));
}

TEST(FunctionRegistryTest, CustomRegistration) {
  FunctionRegistry funcs;
  funcs.Register("TWICE", [](const std::vector<Value>& args) -> Result<Value> {
    return Value(args[0].AsInt64() * 2);
  });
  EXPECT_EQ(*funcs.Call("twice", {Value(int64_t{21})}), Value(int64_t{42}));
}

TEST(FunctionRegistryTest, UnknownFunctionIsNotFound) {
  FunctionRegistry funcs;
  auto r = funcs.Call("MISSING", {});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

}  // namespace
}  // namespace clouddb::db
