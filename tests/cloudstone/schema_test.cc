#include "cloudstone/schema.h"

#include <gtest/gtest.h>

#include <vector>

#include "db/database.h"
#include "common/rng.h"
#include "common/status.h"

namespace clouddb::cloudstone {
namespace {

Status ExecuteOn(db::Database* database, const std::string& sql) {
  auto r = database->Execute(sql);
  return r.ok() ? Status::Ok() : r.status();
}

TEST(SchemaStatementsTest, AllStatementsExecute) {
  db::Database database;
  for (const std::string& sql : SchemaStatements()) {
    EXPECT_TRUE(ExecuteOn(&database, sql).ok()) << sql;
  }
  EXPECT_NE(database.GetTable("users"), nullptr);
  EXPECT_NE(database.GetTable("events"), nullptr);
  EXPECT_NE(database.GetTable("tags"), nullptr);
  EXPECT_NE(database.GetTable("event_tags"), nullptr);
  EXPECT_NE(database.GetTable("attendees"), nullptr);
  EXPECT_NE(database.GetTable("comments"), nullptr);
  // The read paths are indexed.
  auto date_col = database.GetTable("events")->schema().ColumnIndex("event_date");
  ASSERT_TRUE(date_col.ok());
  EXPECT_TRUE(database.GetTable("events")->HasIndexOn(*date_col));
}

TEST(DataProfileTest, ScalesWithParameter) {
  DataProfile p300 = DataProfile::FromScale(300);
  DataProfile p600 = DataProfile::FromScale(600);
  EXPECT_EQ(p300.users, 300);
  EXPECT_EQ(p300.events, 600);
  EXPECT_EQ(p600.users, 600);
  EXPECT_EQ(p600.events, 1200);
  EXPECT_GT(p300.tags, 0);
}

TEST(LoadInitialDataTest, PopulatesTablesAndState) {
  db::Database database;
  WorkloadState state;
  ASSERT_TRUE(LoadInitialData(
                  [&](const std::string& sql) {
                    return ExecuteOn(&database, sql);
                  },
                  50, /*seed=*/1, &state)
                  .ok());
  DataProfile profile = DataProfile::FromScale(50);
  EXPECT_EQ(database.GetTable("users")->num_rows(),
            static_cast<size_t>(profile.users));
  EXPECT_EQ(database.GetTable("events")->num_rows(),
            static_cast<size_t>(profile.events));
  EXPECT_EQ(database.GetTable("tags")->num_rows(),
            static_cast<size_t>(profile.tags));
  EXPECT_EQ(database.GetTable("attendees")->num_rows(),
            static_cast<size_t>(profile.events * profile.attendees_per_event));
  EXPECT_EQ(database.GetTable("comments")->num_rows(),
            static_cast<size_t>(profile.events * profile.comments_per_event));
  EXPECT_EQ(state.num_users, profile.users);
  EXPECT_EQ(state.next_event_id, profile.events + 1);
  EXPECT_GT(state.next_attendee_id, 1);
  EXPECT_GT(state.next_comment_id, 1);
  std::string err;
  EXPECT_TRUE(database.ValidateAllIndexes(&err)) << err;
}

TEST(LoadInitialDataTest, DeterministicUnderSeed) {
  db::Database a;
  db::Database b;
  WorkloadState state_a, state_b;
  ASSERT_TRUE(LoadInitialData([&](const std::string& sql) {
                return ExecuteOn(&a, sql);
              }, 30, 7, &state_a).ok());
  ASSERT_TRUE(LoadInitialData([&](const std::string& sql) {
                return ExecuteOn(&b, sql);
              }, 30, 7, &state_b).ok());
  EXPECT_TRUE(db::Database::ContentsEqual(a, b));
  EXPECT_EQ(state_a.next_event_id, state_b.next_event_id);
}

TEST(LoadInitialDataTest, DifferentSeedsDifferentContents) {
  db::Database a;
  db::Database b;
  WorkloadState state;
  ASSERT_TRUE(LoadInitialData([&](const std::string& sql) {
                return ExecuteOn(&a, sql);
              }, 30, 1, &state).ok());
  ASSERT_TRUE(LoadInitialData([&](const std::string& sql) {
                return ExecuteOn(&b, sql);
              }, 30, 2, &state).ok());
  EXPECT_FALSE(db::Database::ContentsEqual(a, b));
}

TEST(LoadInitialDataTest, PropagatesExecutionErrors) {
  int calls = 0;
  WorkloadState state;
  Status st = LoadInitialData(
      [&](const std::string&) {
        ++calls;
        return calls > 3 ? Status::Internal("boom") : Status::Ok();
      },
      10, 1, &state);
  EXPECT_TRUE(st.IsInternal());
  EXPECT_EQ(calls, 4);
}

TEST(WorkloadStateTest, RandomIdsWithinRanges) {
  WorkloadState state;
  state.num_users = 10;
  state.num_tags = 5;
  state.next_event_id = 21;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t u = state.RandomUserId(rng);
    int64_t e = state.RandomEventId(rng);
    int64_t t = state.RandomTagId(rng);
    ASSERT_GE(u, 1);
    ASSERT_LE(u, 10);
    ASSERT_GE(e, 1);
    ASSERT_LE(e, 20);
    ASSERT_GE(t, 1);
    ASSERT_LE(t, 5);
  }
}

}  // namespace
}  // namespace clouddb::cloudstone
