#include "cloudstone/benchmark_driver.h"

#include <gtest/gtest.h>

#include "cloud/cloud_provider.h"
#include "cloudstone/schema.h"
#include "client/rw_split_proxy.h"
#include "cloud/instance.h"
#include "cloud/placement.h"
#include "cloudstone/operations.h"
#include "common/stats.h"
#include "common/time_types.h"
#include "repl/replication_cluster.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"

namespace clouddb::cloudstone {
namespace {

class DriverTest : public ::testing::Test {
 protected:
  DriverTest() {
    cloud_options_.latency_jitter_sigma = 0.0;
    cloud_options_.cpu_speed_cov = 0.0;
    cloud_options_.max_initial_clock_offset = 0;
    cloud_options_.max_clock_drift_ppm = 0.0;
  }

  void Deploy(int slaves) {
    provider_ = std::make_unique<cloud::CloudProvider>(&sim_, cloud_options_, 1);
    repl::ClusterConfig cluster_config;
    cluster_config.num_slaves = slaves;
    cluster_config.cost_model = MakeWorkloadCostModel(OperationCosts{});
    cluster_ = std::make_unique<repl::ReplicationCluster>(provider_.get(),
                                                          cluster_config);
    app_ = provider_->Launch("app", cloud::InstanceType::kLarge,
                             cloud::MasterPlacement());
    ASSERT_TRUE(LoadInitialData(
                    [&](const std::string& sql) {
                      return cluster_->ExecuteEverywhereDirect(sql);
                    },
                    30, 2, &state_)
                    .ok());
    client::ProxyOptions proxy_options;
    std::vector<repl::SlaveNode*> slave_ptrs;
    for (int i = 0; i < slaves; ++i) slave_ptrs.push_back(cluster_->slave(i));
    proxy_ = std::make_unique<client::ReadWriteSplitProxy>(
        &sim_, &provider_->network(), app_->node_id(), cluster_->master(),
        slave_ptrs, proxy_options);
    generator_ = std::make_unique<OperationGenerator>(
        WorkloadMix::FiftyFifty(), OperationCosts{}, &state_);
  }

  sim::Simulation sim_;
  cloud::CloudOptions cloud_options_;
  std::unique_ptr<cloud::CloudProvider> provider_;
  std::unique_ptr<repl::ReplicationCluster> cluster_;
  cloud::Instance* app_ = nullptr;
  WorkloadState state_;
  std::unique_ptr<client::ReadWriteSplitProxy> proxy_;
  std::unique_ptr<OperationGenerator> generator_;
};

TEST_F(DriverTest, PhasesAreLaidOutSequentially) {
  Deploy(1);
  BenchmarkOptions options;
  options.num_users = 5;
  options.ramp_up = Minutes(2);
  options.steady = Minutes(3);
  options.ramp_down = Minutes(1);
  BenchmarkDriver driver(&sim_, proxy_.get(), cluster_.get(), generator_.get(),
                         options);
  driver.Start();
  EXPECT_EQ(driver.steady_start(), Minutes(2));
  EXPECT_EQ(driver.steady_end(), Minutes(5));
  EXPECT_EQ(driver.end_time(), Minutes(6));
}

TEST_F(DriverTest, RunProducesThroughputAndResponseStats) {
  Deploy(2);
  BenchmarkOptions options;
  options.num_users = 20;
  options.ramp_up = Minutes(1);
  options.steady = Minutes(4);
  options.ramp_down = Seconds(30);
  options.think_time_mean = Seconds(5);
  options.seed = 3;
  BenchmarkDriver driver(&sim_, proxy_.get(), cluster_.get(), generator_.get(),
                         options);
  driver.Start();
  sim_.RunUntil(driver.end_time());
  sim_.Run();  // drain

  BenchmarkReport report = driver.Report();
  // Closed loop, 20 users, ~5s cycles: roughly 4 ops/s, certainly 2..6.
  EXPECT_GT(report.throughput_ops, 2.0);
  EXPECT_LT(report.throughput_ops, 6.0);
  EXPECT_GT(report.completed_ops, 0);
  EXPECT_EQ(report.failed_ops, 0);
  EXPECT_GT(report.mean_response_ms, 0.0);
  EXPECT_GE(report.p95_response_ms, report.mean_response_ms);
  // ~50/50 mix.
  EXPECT_NEAR(report.read_throughput_ops,
              report.write_throughput_ops,
              0.5 * report.throughput_ops);
  // Utilizations measured and sane.
  EXPECT_GT(report.master_cpu_utilization, 0.0);
  EXPECT_LT(report.master_cpu_utilization, 1.01);
  ASSERT_EQ(report.slave_cpu_utilization.size(), 2u);
  for (double u : report.slave_cpu_utilization) {
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.01);
  }
  // Replication stayed healthy and converged after drain.
  EXPECT_TRUE(cluster_->FullyReplicated());
  EXPECT_TRUE(cluster_->Converged());
}

/// Builds a fresh deployment and runs a short benchmark; returns steady
/// throughput. Everything is seeded, so two calls must agree exactly.
double RunSeededBenchmark(uint64_t seed) {
  sim::Simulation sim;
  cloud::CloudOptions cloud_options;  // jitter/variance on: still seeded
  auto provider = std::make_unique<cloud::CloudProvider>(&sim, cloud_options,
                                                         seed);
  repl::ClusterConfig cluster_config;
  cluster_config.num_slaves = 1;
  cluster_config.cost_model = MakeWorkloadCostModel(OperationCosts{});
  repl::ReplicationCluster cluster(provider.get(), cluster_config);
  cloud::Instance* app = provider->Launch("app", cloud::InstanceType::kLarge,
                                          cloud::MasterPlacement());
  WorkloadState state;
  EXPECT_TRUE(LoadInitialData(
                  [&](const std::string& sql) {
                    return cluster.ExecuteEverywhereDirect(sql);
                  },
                  30, seed, &state)
                  .ok());
  client::ProxyOptions proxy_options;
  client::ReadWriteSplitProxy proxy(&sim, &provider->network(),
                                    app->node_id(), cluster.master(),
                                    {cluster.slave(0)}, proxy_options);
  OperationGenerator generator(WorkloadMix::FiftyFifty(), OperationCosts{},
                               &state);
  BenchmarkOptions options;
  options.num_users = 10;
  options.ramp_up = Seconds(30);
  options.steady = Minutes(2);
  options.ramp_down = Seconds(10);
  options.seed = seed;
  BenchmarkDriver driver(&sim, &proxy, &cluster, &generator, options);
  driver.Start();
  sim.RunUntil(driver.end_time());
  sim.Run();
  return driver.Report().throughput_ops;
}

TEST_F(DriverTest, DeterministicUnderSeed) {
  double t1 = RunSeededBenchmark(99);
  double t2 = RunSeededBenchmark(99);
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_GT(t1, 0.0);
}

TEST_F(DriverTest, UsersStopAtEndTime) {
  Deploy(1);
  BenchmarkOptions options;
  options.num_users = 5;
  options.ramp_up = Seconds(10);
  options.steady = Seconds(60);
  options.ramp_down = Seconds(10);
  options.think_time_mean = Seconds(2);
  BenchmarkDriver driver(&sim_, proxy_.get(), cluster_.get(), generator_.get(),
                         options);
  driver.Start();
  sim_.RunUntil(driver.end_time());
  sim_.Run();
  // The simulation drains fully: no runaway event sources.
  EXPECT_EQ(sim_.pending_events(), 0u);
  // No operation completed after a grace window past end_time.
  for (const OpRecord& r : driver.metrics().records()) {
    EXPECT_LT(r.completed_at, driver.end_time() + Minutes(2));
  }
}

TEST_F(DriverTest, MetricsCollectorWindows) {
  MetricsCollector metrics;
  metrics.Record({Seconds(1), OpType::kViewEvent, true, true, Millis(10)});
  metrics.Record({Seconds(2), OpType::kCreateEvent, false, true, Millis(20)});
  metrics.Record({Seconds(3), OpType::kViewEvent, true, false, Millis(30)});
  metrics.Record({Seconds(10), OpType::kViewEvent, true, true, Millis(40)});
  EXPECT_EQ(metrics.CountInWindow(0, Seconds(5)), 2);  // failures excluded
  EXPECT_EQ(metrics.CountInWindow(0, Seconds(5), true), 1);
  EXPECT_EQ(metrics.CountInWindow(0, Seconds(5), false), 1);
  EXPECT_EQ(metrics.failures(), 1);
  Sample responses = metrics.ResponseTimesMs(0, Seconds(20));
  EXPECT_EQ(responses.count(), 3u);
  EXPECT_NEAR(responses.Mean(), (10 + 20 + 40) / 3.0, 1e-9);
}

}  // namespace
}  // namespace clouddb::cloudstone
