#include "cloudstone/operations.h"

#include <gtest/gtest.h>

#include <set>

#include "cloudstone/schema.h"
#include "db/database.h"
#include "db/sql_parser.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/time_types.h"
#include "repl/cost_model.h"

namespace clouddb::cloudstone {
namespace {

Status ExecuteOn(db::Database* database, const std::string& sql) {
  auto r = database->Execute(sql);
  return r.ok() ? Status::Ok() : r.status();
}

class OperationsTest : public ::testing::Test {
 protected:
  OperationsTest() {
    EXPECT_TRUE(LoadInitialData(
                    [&](const std::string& sql) {
                      return ExecuteOn(&db_, sql);
                    },
                    40, 11, &state_)
                    .ok());
  }

  db::Database db_;
  WorkloadState state_;
};

TEST_F(OperationsTest, MixReadFractionRespected) {
  for (auto [mix, expect] :
       {std::pair{WorkloadMix::FiftyFifty(), 0.5},
        std::pair{WorkloadMix::EightyTwenty(), 0.8}}) {
    OperationGenerator gen(mix, OperationCosts{}, &state_);
    Rng rng(5);
    int reads = 0;
    const int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) {
      if (gen.Next(rng).is_read) ++reads;
    }
    EXPECT_NEAR(static_cast<double>(reads) / kDraws, expect, 0.02);
  }
}

TEST_F(OperationsTest, GeneratedSqlParsesAndExecutes) {
  OperationGenerator gen(WorkloadMix::FiftyFifty(), OperationCosts{}, &state_);
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    GeneratedOp op = gen.Next(rng);
    ASSERT_TRUE(db::ParseSql(op.sql).ok()) << op.sql;
    auto r = db_.Execute(op.sql);
    ASSERT_TRUE(r.ok()) << op.sql << " -> " << r.status().ToString();
  }
  std::string err;
  EXPECT_TRUE(db_.ValidateAllIndexes(&err)) << err;
}

TEST_F(OperationsTest, WriteIdsNeverCollideAcrossUsers) {
  OperationGenerator gen(WorkloadMix::EightyTwenty(), OperationCosts{},
                         &state_);
  // Two "users" with independent rngs share the generator/state.
  Rng rng1(1);
  Rng rng2(2);
  std::set<std::string> write_sql;
  for (int i = 0; i < 3000; ++i) {
    GeneratedOp op1 = gen.Next(rng1);
    GeneratedOp op2 = gen.Next(rng2);
    for (const auto& op : {op1, op2}) {
      if (!op.is_read) {
        // INSERT statements must be unique (ids allocated centrally).
        EXPECT_TRUE(write_sql.insert(op.sql).second) << op.sql;
      }
    }
  }
}

TEST_F(OperationsTest, CostsMatchOpTypes) {
  OperationCosts costs;
  OperationGenerator gen(WorkloadMix::FiftyFifty(), costs, &state_);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    GeneratedOp op = gen.Next(rng);
    EXPECT_EQ(op.cpu_cost, costs.CostOf(op.type));
    EXPECT_EQ(op.is_read, IsReadOp(op.type));
  }
}

TEST_F(OperationsTest, ReadsUseIndexablePredicates) {
  OperationGenerator gen(WorkloadMix::EightyTwenty(), OperationCosts{},
                         &state_);
  Rng rng(8);
  int checked = 0;
  for (int i = 0; i < 300 && checked < 50; ++i) {
    GeneratedOp op = gen.Next(rng);
    if (!op.is_read) continue;
    auto r = db_.Execute(op.sql);
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r->plan, "table_scan") << op.sql;
    ++checked;
  }
  EXPECT_GE(checked, 50);
}

TEST_F(OperationsTest, ExpectedCostsOrderedByMix) {
  // The 50/50 mix deliberately has heavier reads than the 80/20 mix
  // (that is what positions the paper's saturation points).
  WorkloadMix heavy = WorkloadMix::FiftyFifty();
  WorkloadMix light = WorkloadMix::EightyTwenty();
  EXPECT_GT(heavy.ExpectedReadCost(), light.ExpectedReadCost());
  EXPECT_GT(heavy.ExpectedReadCost(), Millis(100));
  EXPECT_GT(light.ExpectedWriteCost(), Millis(50));
}

TEST_F(OperationsTest, MakeWorkloadCostModelHasTableOverrides) {
  repl::CostModel model = MakeWorkloadCostModel(OperationCosts{}, 0.5);
  EXPECT_EQ(model.apply_cost_by_table.count("events"), 1u);
  EXPECT_EQ(model.apply_cost_by_table.count("attendees"), 1u);
  EXPECT_EQ(model.apply_cost_by_table.count("event_tags"), 1u);
  EXPECT_EQ(model.apply_cost_by_table.count("comments"), 1u);
  EXPECT_EQ(model.apply_cost_by_table.count("heartbeat"), 1u);
  OperationCosts costs;
  EXPECT_EQ(model.apply_cost_by_table["events"],
            static_cast<SimDuration>(0.5 * static_cast<double>(costs.create)));
}

TEST_F(OperationsTest, TimestampSourceEmbedsLiterals) {
  int64_t now = 987654;
  OperationGenerator gen(WorkloadMix::FiftyFifty(), OperationCosts{}, &state_,
                         [&] { return now; });
  Rng rng(9);
  bool saw_create = false;
  for (int i = 0; i < 200 && !saw_create; ++i) {
    GeneratedOp op = gen.Next(rng);
    if (op.type == OpType::kCreateEvent) {
      saw_create = true;
      EXPECT_NE(op.sql.find("987654"), std::string::npos) << op.sql;
      EXPECT_EQ(op.sql.find("NOW_MICROS"), std::string::npos) << op.sql;
    }
  }
  EXPECT_TRUE(saw_create);
}

TEST(OpTypeTest, NamesAndClassification) {
  EXPECT_STREQ(OpTypeToString(OpType::kBrowseEvents), "browse_events");
  EXPECT_STREQ(OpTypeToString(OpType::kCreateEvent), "create_event");
  EXPECT_TRUE(IsReadOp(OpType::kSearchEvents));
  EXPECT_TRUE(IsReadOp(OpType::kViewEvent));
  EXPECT_FALSE(IsReadOp(OpType::kJoinEvent));
  EXPECT_FALSE(IsReadOp(OpType::kAddComment));
  EXPECT_FALSE(IsReadOp(OpType::kTagEvent));
}

}  // namespace
}  // namespace clouddb::cloudstone
