#include "net/network.h"

#include <gtest/gtest.h>

#include "common/time_types.h"
#include "sim/simulation.h"

namespace clouddb::net {
namespace {

std::vector<std::vector<SimDuration>> SymmetricMatrix(SimDuration self,
                                                      SimDuration cross) {
  return {{self, cross}, {cross, self}};
}

TEST(StaticLatencyModelTest, ReturnsMatrixEntries) {
  StaticLatencyModel model({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  EXPECT_EQ(model.SampleOneWay(0, 2), 3);
  EXPECT_EQ(model.SampleOneWay(2, 0), 7);
  EXPECT_EQ(model.SampleOneWay(1, 1), 5);
}

TEST(NetworkTest, DeliversAfterOneWayDelay) {
  sim::Simulation sim;
  StaticLatencyModel model(SymmetricMatrix(0, Millis(10)));
  Network network(&sim, &model);
  SimTime delivered_at = -1;
  network.Send(0, 1, 100, [&] { delivered_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(delivered_at, Millis(10));
  EXPECT_EQ(network.messages_sent(), 1);
  EXPECT_EQ(network.bytes_sent(), 100);
}

TEST(NetworkTest, ConcurrentMessagesAllDelivered) {
  sim::Simulation sim;
  StaticLatencyModel model(SymmetricMatrix(0, Millis(5)));
  Network network(&sim, &model);
  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    network.Send(0, 1, 10, [&] { ++delivered; });
  }
  sim.Run();
  EXPECT_EQ(delivered, 10);
  // FIFO enforcement nudges equal arrivals apart by 1us each; no
  // serialization beyond that (bandwidth is not modelled).
  EXPECT_EQ(sim.Now(), Millis(5) + 9);
}

TEST(NetworkTest, PingMeasuresRoundTrip) {
  sim::Simulation sim;
  StaticLatencyModel model(SymmetricMatrix(0, Millis(16)));
  Network network(&sim, &model);
  SimDuration rtt = -1;
  network.Ping(0, 1, [&](SimDuration r) { rtt = r; });
  sim.Run();
  EXPECT_EQ(rtt, Millis(32));
}

TEST(NetworkTest, AsymmetricPathsSumInPing) {
  sim::Simulation sim;
  StaticLatencyModel model({{0, Millis(10)}, {Millis(30), 0}});
  Network network(&sim, &model);
  SimDuration rtt = -1;
  network.Ping(0, 1, [&](SimDuration r) { rtt = r; });
  sim.Run();
  EXPECT_EQ(rtt, Millis(40));
}

TEST(PingProbeTest, CollectsRequestedSamples) {
  sim::Simulation sim;
  StaticLatencyModel model(SymmetricMatrix(0, Millis(16)));
  Network network(&sim, &model);
  PingProbe probe(&sim, &network, 0, 1);
  probe.Start(Seconds(1), 20);
  sim.Run();
  ASSERT_EQ(probe.half_rtt_ms().size(), 20u);
  for (double half : probe.half_rtt_ms()) {
    EXPECT_DOUBLE_EQ(half, 16.0);
  }
  // 20 pings spaced 1 s: last sent at t=19s, reply at 19s+32ms.
  EXPECT_EQ(sim.Now(), Seconds(19) + Millis(32));
}

/// Latency model whose delay shrinks on every call — without FIFO
/// enforcement, later messages would overtake earlier ones.
class ShrinkingLatencyModel : public LatencyModel {
 public:
  SimDuration SampleOneWay(NodeId, NodeId) override {
    return next_ > Millis(1) ? next_ -= Millis(20) : next_;
  }

 private:
  SimDuration next_ = Millis(200);
};

TEST(NetworkTest, FifoDeliveryPerPathDespiteJitter) {
  // Regression test: binlog events must never be reordered in flight (an
  // INSERT overtaking its CREATE TABLE breaks the slave's SQL thread).
  sim::Simulation sim;
  ShrinkingLatencyModel model;
  Network network(&sim, &model);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    network.Send(0, 1, 10, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(NetworkTest, FifoOrderingIsPerDirectedPath) {
  sim::Simulation sim;
  // Path 0->1 is slow, path 0->2 fast: messages to different destinations
  // are not serialized against each other.
  StaticLatencyModel model(
      {{0, Millis(100), Millis(1)}, {0, 0, 0}, {0, 0, 0}});
  Network network(&sim, &model);
  std::vector<int> order;
  network.Send(0, 1, 10, [&] { order.push_back(1); });
  network.Send(0, 2, 10, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(PingProbeTest, ZeroCountIsSafe) {
  sim::Simulation sim;
  StaticLatencyModel model(SymmetricMatrix(0, Millis(1)));
  Network network(&sim, &model);
  PingProbe probe(&sim, &network, 0, 1);
  probe.Start(Seconds(1), 0);
  sim.Run();
  EXPECT_TRUE(probe.half_rtt_ms().empty());
}

}  // namespace
}  // namespace clouddb::net
