#include "fault/fault_schedule.h"

#include <gtest/gtest.h>

#include "cloud/cloud_provider.h"
#include "fault/fault_injector.h"
#include "cloud/instance.h"
#include "cloud/placement.h"
#include "common/status.h"
#include "common/time_types.h"
#include "sim/simulation.h"

namespace clouddb::fault {
namespace {

TEST(FaultScheduleTest, BuilderRecordsEventsInOrder) {
  FaultSchedule schedule;
  schedule.Crash(Seconds(60), "master", Seconds(60))
      .Partition(Seconds(20), "slave-1", "master", Seconds(10))
      .Freeze(Seconds(5), "slave-2", Seconds(2))
      .Slowdown(Seconds(7), "slave-2", 0.25, Seconds(3))
      .Isolate(Seconds(9), "slave-1", Seconds(1))
      .LatencySpike(Seconds(11), "master", "slave-1", Millis(200), Seconds(4))
      .PacketLoss(Seconds(13), "master", "slave-2", 0.3, Seconds(5))
      .ClockStep(Seconds(15), "slave-1", -Millis(40));
  ASSERT_EQ(schedule.size(), 8u);
  EXPECT_FALSE(schedule.empty());

  const FaultEvent& crash = schedule.events()[0];
  EXPECT_EQ(crash.kind, FaultKind::kCrash);
  EXPECT_EQ(crash.at, Seconds(60));
  EXPECT_EQ(crash.duration, Seconds(60));
  EXPECT_EQ(crash.target, "master");
  EXPECT_TRUE(crash.peer.empty());

  const FaultEvent& partition = schedule.events()[1];
  EXPECT_EQ(partition.kind, FaultKind::kPartition);
  EXPECT_EQ(partition.target, "slave-1");
  EXPECT_EQ(partition.peer, "master");

  const FaultEvent& slowdown = schedule.events()[3];
  EXPECT_DOUBLE_EQ(slowdown.magnitude, 0.25);

  const FaultEvent& spike = schedule.events()[5];
  EXPECT_EQ(spike.delta, Millis(200));

  const FaultEvent& loss = schedule.events()[6];
  EXPECT_DOUBLE_EQ(loss.magnitude, 0.3);

  const FaultEvent& step = schedule.events()[7];
  EXPECT_EQ(step.delta, -Millis(40));
  EXPECT_EQ(step.duration, 0);
}

TEST(FaultScheduleTest, ToStringDescribesEveryKind) {
  FaultSchedule schedule;
  schedule.Crash(Seconds(60), "master", Seconds(30))
      .Crash(Seconds(90), "slave-1")  // permanent
      .Slowdown(Seconds(1), "slave-2", 0.5, Seconds(2))
      .PacketLoss(Seconds(2), "a", "b", 0.25, Seconds(3))
      .ClockStep(Seconds(3), "slave-1", Millis(40));
  std::string s = schedule.ToString();
  EXPECT_NE(s.find("crash master"), std::string::npos);
  EXPECT_NE(s.find("for 30.00s"), std::string::npos) << s;
  EXPECT_NE(s.find("permanently"), std::string::npos);
  EXPECT_NE(s.find("x0.50"), std::string::npos);
  EXPECT_NE(s.find("p=0.25"), std::string::npos);
  EXPECT_NE(s.find("clock-step"), std::string::npos);
}

class ArmValidationTest : public ::testing::Test {
 protected:
  ArmValidationTest() : provider_(&sim_, cloud::CloudOptions{}, 1) {
    provider_.Launch("master", cloud::InstanceType::kSmall,
                     cloud::MasterPlacement());
    provider_.Launch("slave-1", cloud::InstanceType::kSmall,
                     cloud::SameZonePlacement());
  }

  sim::Simulation sim_;
  cloud::CloudProvider provider_;
};

TEST_F(ArmValidationTest, UnknownInstanceRejected) {
  FaultInjector injector(&sim_, &provider_);
  FaultSchedule schedule;
  schedule.Crash(Seconds(1), "no-such-instance");
  Status s = injector.Arm(schedule);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("no-such-instance"), std::string::npos);
  // Nothing was scheduled.
  EXPECT_EQ(sim_.pending_events(), 0u);
}

TEST_F(ArmValidationTest, UnknownPeerRejected) {
  FaultInjector injector(&sim_, &provider_);
  FaultSchedule schedule;
  schedule.Partition(Seconds(1), "master", "ghost", Seconds(1));
  EXPECT_TRUE(injector.Arm(schedule).IsInvalidArgument());
}

TEST_F(ArmValidationTest, SelfPartitionRejected) {
  FaultInjector injector(&sim_, &provider_);
  FaultSchedule schedule;
  schedule.Partition(Seconds(1), "master", "master", Seconds(1));
  EXPECT_TRUE(injector.Arm(schedule).IsInvalidArgument());
}

TEST_F(ArmValidationTest, BadMagnitudesRejected) {
  FaultInjector injector(&sim_, &provider_);
  FaultSchedule zero_speed;
  zero_speed.Slowdown(Seconds(1), "master", 0.0, Seconds(1));
  EXPECT_TRUE(injector.Arm(zero_speed).IsInvalidArgument());

  FaultSchedule bad_loss;
  bad_loss.PacketLoss(Seconds(1), "master", "slave-1", 1.5, Seconds(1));
  EXPECT_TRUE(injector.Arm(bad_loss).IsInvalidArgument());

  FaultSchedule negative_time;
  negative_time.Crash(-Seconds(1), "master");
  EXPECT_TRUE(injector.Arm(negative_time).IsInvalidArgument());

  FaultSchedule negative_duration;
  negative_duration.Freeze(Seconds(1), "master", -Seconds(1));
  EXPECT_TRUE(injector.Arm(negative_duration).IsInvalidArgument());
}

TEST_F(ArmValidationTest, ValidScheduleArmsBeginAndHealEvents) {
  FaultInjector injector(&sim_, &provider_);
  FaultSchedule schedule;
  schedule.Partition(Seconds(1), "master", "slave-1", Seconds(2))
      .ClockStep(Seconds(5), "slave-1", Millis(10));
  ASSERT_TRUE(injector.Arm(schedule).ok());
  // Partition begin + heal, clock step (one-shot, no heal).
  EXPECT_EQ(sim_.pending_events(), 3u);
  sim_.Run();
  EXPECT_EQ(injector.faults_begun(), 2);
  EXPECT_EQ(injector.faults_healed(), 1);
  EXPECT_EQ(injector.log().size(), 3u);
}

}  // namespace
}  // namespace clouddb::fault
