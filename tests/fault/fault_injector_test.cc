#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "cloud/cloud_provider.h"
#include "common/str_util.h"
#include "fault/recovery_observer.h"
#include "repl/failover.h"
#include "repl/replication_cluster.h"
#include "cloud/instance.h"
#include "cloud/placement.h"
#include "common/time_types.h"
#include "db/database.h"
#include "fault/fault_schedule.h"
#include "repl/master_node.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"

namespace clouddb::fault {
namespace {

using repl::MasterNode;
using repl::SlaveNode;

/// One deterministic deployment (no jitter, no speed lottery, no clock
/// noise): master + N slaves + a monitor, with a FailoverManager,
/// FaultInjector and RecoveryObserver wired the way a scenario would wire
/// them. A plain struct so tests can build several independent worlds (the
/// determinism test runs two).
struct World {
  World(int slaves, uint64_t seed) {
    cloud::CloudOptions options;
    options.latency_jitter_sigma = 0.0;
    options.cpu_speed_cov = 0.0;
    options.max_initial_clock_offset = 0;
    options.max_clock_drift_ppm = 0.0;
    provider = std::make_unique<cloud::CloudProvider>(&sim, options, seed);
    repl::ClusterConfig config;
    config.num_slaves = slaves;
    cluster = std::make_unique<repl::ReplicationCluster>(provider.get(),
                                                         config);
    monitor = provider->Launch("monitor", cloud::InstanceType::kSmall,
                               cloud::MasterPlacement());
    std::vector<SlaveNode*> slave_ptrs;
    for (int i = 0; i < slaves; ++i) slave_ptrs.push_back(cluster->slave(i));
    manager = std::make_unique<repl::FailoverManager>(
        &sim, &provider->network(), monitor->node_id(), cluster->master(),
        slave_ptrs, repl::FailoverOptions{});
    injector = std::make_unique<FaultInjector>(&sim, provider.get());
    observer = std::make_unique<RecoveryObserver>(&sim, manager.get());
    injector->SetFaultListener([this](const FaultEvent&, bool begin) {
      if (begin) {
        observer->NoteFault();
      } else {
        observer->NoteHeal();
      }
    });
    EXPECT_TRUE(cluster->master()
                    ->ExecuteDirect("CREATE TABLE t (a INT PRIMARY KEY)")
                    .ok());
    sim.Run();
  }

  void WriteAt(SimTime at, int value) {
    sim.ScheduleAt(at, [this, value] {
      EXPECT_TRUE(
          cluster->master()
              ->ExecuteDirect(StrFormat("INSERT INTO t VALUES (%d)", value))
              .ok());
    });
  }

  void StopAll() {
    manager->Stop();
    observer->Stop();
    for (int i = 0; i < cluster->num_slaves(); ++i) {
      cluster->slave(i)->StopAutoResync();
    }
  }

  bool ActiveSlavesConverged() {
    for (SlaveNode* slave : manager->active_slaves()) {
      if (!db::Database::ContentsEqual(manager->current_master()->database(),
                                       slave->database(), {})) {
        return false;
      }
    }
    return true;
  }

  sim::Simulation sim;
  std::unique_ptr<cloud::CloudProvider> provider;
  std::unique_ptr<repl::ReplicationCluster> cluster;
  cloud::Instance* monitor = nullptr;
  std::unique_ptr<repl::FailoverManager> manager;
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<RecoveryObserver> observer;
};

TEST(FaultInjectorTest, MasterCrashTriggersFailoverAndObserverMeasuresIt) {
  World w(2, 1);
  for (int i = 0; i < 5; ++i) w.WriteAt(Seconds(i + 1), i);
  w.manager->Start();
  w.observer->Start();

  FaultSchedule schedule;
  schedule.Crash(Seconds(10), "master", Seconds(20));
  ASSERT_TRUE(w.injector->Arm(schedule).ok());

  w.sim.RunUntil(Seconds(45));
  w.StopAll();
  w.sim.Run();

  ASSERT_TRUE(w.manager->failover_performed());
  EXPECT_TRUE(w.cluster->master()->instance().running());  // zombie rebooted
  const RecoveryReport& report = w.observer->report();
  EXPECT_EQ(report.fault_at, Seconds(10));
  EXPECT_EQ(report.healed_at, Seconds(30));
  ASSERT_GE(report.detected_at, report.fault_at);
  ASSERT_GE(report.promoted_at, report.detected_at);
  // Default policy: 1s probe interval, 2s timeout, 3 consecutive failures —
  // detection lands within a handful of seconds.
  EXPECT_LT(report.TimeToDetect(), Seconds(10));
  EXPECT_GE(report.reconverged_at, report.healed_at);
  // All writes replicated before the crash: nothing lost.
  EXPECT_EQ(report.lost_writes, 0);
  EXPECT_TRUE(w.ActiveSlavesConverged());
}

TEST(FaultInjectorTest, PartitionedSlaveReconnectsViaBackoff) {
  World w(2, 1);
  w.cluster->slave(0)->StartAutoResync();
  w.cluster->slave(1)->StartAutoResync();
  // Writes land while slave-2 is cut off from the master.
  for (int i = 0; i < 8; ++i) w.WriteAt(Seconds(4) + Seconds(i), i);

  FaultSchedule schedule;
  schedule.Partition(Seconds(3), "slave-2", "master", Seconds(10));
  ASSERT_TRUE(w.injector->Arm(schedule).ok());

  w.sim.RunUntil(Seconds(40));
  w.StopAll();
  w.sim.Run();

  SlaveNode* cut = w.cluster->slave(1);
  // The keepalive noticed the dead link and retried with backoff: more than
  // one request went out before the heal let one through.
  EXPECT_GT(cut->resync_requests_sent(), 1);
  EXPECT_GE(cut->resync_acks_received(), 1);
  EXPECT_EQ(cut->current_backoff(), 0);  // reset on successful reconnect
  EXPECT_FALSE(cut->replication_broken());
  EXPECT_EQ(cut->applied_index(), w.cluster->master()->binlog_size() - 1);
  EXPECT_TRUE(db::Database::ContentsEqual(w.cluster->master()->database(),
                                          cut->database(), {}));
}

TEST(FaultInjectorTest, SameSeedRunsProduceIdenticalReports) {
  auto run_once = [](uint64_t seed) {
    World w(2, seed);
    w.cluster->slave(0)->StartAutoResync();
    w.cluster->slave(1)->StartAutoResync();
    for (int i = 0; i < 12; ++i) w.WriteAt(Seconds(2 + i), i);
    w.manager->Start();
    w.observer->Start();
    FaultSchedule schedule;
    schedule.Partition(Seconds(4), "slave-2", "master", Seconds(6))
        .Crash(Seconds(15), "master", Seconds(15));
    EXPECT_TRUE(w.injector->Arm(schedule).ok());
    w.sim.RunUntil(Seconds(60));
    w.StopAll();
    w.sim.Run();
    return std::make_tuple(w.observer->report(),
                           w.cluster->slave(1)->resync_requests_sent(),
                           w.sim.events_executed());
  };
  auto a = run_once(99);
  auto b = run_once(99);
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  // And the episode actually exercised a failover.
  EXPECT_GE(std::get<0>(a).detected_at, 0);
  EXPECT_GE(std::get<0>(a).promoted_at, 0);
}

TEST(FaultInjectorTest, FreezeBacklogsApplyThreadThenThawDrains) {
  World w(1, 1);
  FaultSchedule schedule;
  schedule.Freeze(Seconds(2), "slave-1", Seconds(20));
  ASSERT_TRUE(w.injector->Arm(schedule).ok());
  for (int i = 0; i < 6; ++i) w.WriteAt(Seconds(3) + Seconds(i), i);

  w.sim.RunUntil(Seconds(15));
  // Mid-freeze: events arrived (network unaffected) but the SQL apply
  // thread is stalled on the frozen CPU.
  EXPECT_TRUE(w.cluster->slave(0)->instance().cpu().frozen());
  EXPECT_GT(w.cluster->slave(0)->relay_backlog(), 0u);
  EXPECT_LT(w.cluster->slave(0)->applied_index(),
            w.cluster->master()->binlog_size() - 1);

  w.sim.Run();  // thaw fires at t=22s, then the backlog drains
  EXPECT_FALSE(w.cluster->slave(0)->instance().cpu().frozen());
  EXPECT_EQ(w.cluster->slave(0)->relay_backlog(), 0u);
  EXPECT_EQ(w.cluster->slave(0)->applied_index(),
            w.cluster->master()->binlog_size() - 1);
  EXPECT_TRUE(w.cluster->Converged());
}

TEST(FaultInjectorTest, SlowdownScalesCpuAndHealRestoresIt) {
  World w(1, 1);
  double original = w.cluster->slave(0)->instance().cpu().speed_factor();
  FaultSchedule schedule;
  schedule.Slowdown(Seconds(1), "slave-1", 0.25, Seconds(10));
  ASSERT_TRUE(w.injector->Arm(schedule).ok());

  w.sim.RunUntil(Seconds(5));
  EXPECT_DOUBLE_EQ(w.cluster->slave(0)->instance().cpu().speed_factor(),
                   original * 0.25);
  w.sim.Run();
  EXPECT_DOUBLE_EQ(w.cluster->slave(0)->instance().cpu().speed_factor(),
                   original);
}

TEST(FaultInjectorTest, ClockStepShiftsLocalTime) {
  World w(1, 1);
  FaultSchedule schedule;
  schedule.ClockStep(Seconds(5), "slave-1", Millis(40));
  ASSERT_TRUE(w.injector->Arm(schedule).ok());
  w.sim.Run();
  // Zero drift/offset deployment: local time is sim time plus the step.
  EXPECT_EQ(w.provider->FindByName("slave-1")->LocalNowMicros(),
            w.sim.Now() + Millis(40));
  EXPECT_EQ(w.provider->FindByName("master")->LocalNowMicros(), w.sim.Now());
}

TEST(FaultInjectorTest, PacketLossIsSurvivedWithAutoResync) {
  World w(1, 1);
  w.cluster->slave(0)->StartAutoResync();
  FaultSchedule schedule;
  schedule.PacketLoss(Seconds(1), "master", "slave-1", 0.5, Seconds(20));
  ASSERT_TRUE(w.injector->Arm(schedule).ok());
  for (int i = 0; i < 20; ++i) w.WriteAt(Seconds(2) + Millis(800) * i, i);

  w.sim.RunUntil(Seconds(60));
  w.StopAll();
  w.sim.Run();

  SlaveNode* slave = w.cluster->slave(0);
  // Half the stream vanished; the gap detector noticed and resync repaired.
  EXPECT_GT(w.provider->network().messages_dropped(), 0);
  EXPECT_FALSE(slave->replication_broken());
  EXPECT_EQ(slave->applied_index(), w.cluster->master()->binlog_size() - 1);
  EXPECT_TRUE(w.cluster->Converged());
}

TEST(FaultInjectorTest, SlaveCrashLosesRelayLogButResyncRecovers) {
  World w(2, 1);
  w.cluster->slave(0)->StartAutoResync();
  w.cluster->slave(1)->StartAutoResync();
  FaultSchedule schedule;
  schedule.Crash(Seconds(5), "slave-2", Seconds(10));
  ASSERT_TRUE(w.injector->Arm(schedule).ok());
  for (int i = 0; i < 10; ++i) w.WriteAt(Seconds(2) + Seconds(i), i);

  w.sim.RunUntil(Seconds(10));
  EXPECT_FALSE(w.cluster->slave(1)->instance().running());
  w.sim.RunUntil(Seconds(45));
  w.StopAll();
  w.sim.Run();

  EXPECT_TRUE(w.cluster->slave(1)->instance().running());
  EXPECT_EQ(w.cluster->slave(1)->instance().crash_count(), 1);
  EXPECT_FALSE(w.cluster->slave(1)->replication_broken());
  EXPECT_TRUE(w.cluster->Converged());
}

TEST(FaultInjectorTest, IsolationHealsAndRejoins) {
  World w(2, 1);
  w.cluster->slave(0)->StartAutoResync();
  w.cluster->slave(1)->StartAutoResync();
  FaultSchedule schedule;
  schedule.Isolate(Seconds(3), "slave-1", Seconds(8));
  ASSERT_TRUE(w.injector->Arm(schedule).ok());
  for (int i = 0; i < 8; ++i) w.WriteAt(Seconds(4) + Seconds(i), i);

  w.sim.RunUntil(Seconds(40));
  w.StopAll();
  w.sim.Run();

  EXPECT_FALSE(w.cluster->slave(0)->replication_broken());
  EXPECT_GT(w.cluster->slave(0)->resync_requests_sent(), 0);
  EXPECT_TRUE(w.cluster->Converged());
}

}  // namespace
}  // namespace clouddb::fault
