#include "metrics/metric_registry.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace clouddb::metrics {
namespace {

TEST(MetricRegistryTest, CountersAccumulateAndAreFindable) {
  MetricRegistry registry("node");
  Counter* ops = registry.AddCounter("node.ops.total");
  ops->Increment();
  ops->Increment(41);
  EXPECT_EQ(ops->value(), 42);
  ASSERT_NE(registry.FindCounter("node.ops.total"), nullptr);
  EXPECT_EQ(registry.FindCounter("node.ops.total")->value(), 42);
  EXPECT_EQ(registry.ValueOf("node.ops.total"), 42.0);
  EXPECT_TRUE(registry.Has("node.ops.total"));
  EXPECT_FALSE(registry.Has("node.ops.missing"));
  EXPECT_EQ(registry.ValueOf("node.ops.missing"), 0.0);
  // Kind-mismatched lookups return nullptr, not a reinterpreted entry.
  EXPECT_EQ(registry.FindGauge("node.ops.total"), nullptr);
}

TEST(MetricRegistryTest, ProbeGaugesEvaluateLazily) {
  MetricRegistry registry("node");
  int64_t backing = 0;
  Gauge* probe = registry.AddProbe("node.queue.depth", [&backing] {
    return static_cast<double>(backing);
  });
  EXPECT_TRUE(probe->is_probe());
  EXPECT_EQ(probe->value(), 0.0);
  backing = 7;  // no Set() call: the probe tracks the backing field
  EXPECT_EQ(probe->value(), 7.0);
  EXPECT_EQ(registry.ValueOf("node.queue.depth"), 7.0);
}

TEST(MetricRegistryTest, SnapshotIsNameOrderedAndComplete) {
  MetricRegistry registry("node");
  registry.AddCounter("z.last.total")->Increment(3);
  registry.AddGauge("a.first.depth")->Set(1.5);
  registry.AddEwma("m.middle.us")->Observe(10.0);
  std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "a.first.depth");
  EXPECT_EQ(snapshot[1].name, "m.middle.us");
  EXPECT_EQ(snapshot[2].name, "z.last.total");
  EXPECT_EQ(snapshot[0].kind, MetricKind::kGauge);
  EXPECT_EQ(snapshot[2].kind, MetricKind::kCounter);
  EXPECT_EQ(snapshot[2].value, 3.0);
  EXPECT_EQ(snapshot[2].count, 1);
}

TEST(MetricRegistryTest, ValidNamesAreLowercaseDotSeparated) {
  EXPECT_TRUE(MetricRegistry::IsValidName("repl.slave.apply_backlog"));
  EXPECT_TRUE(MetricRegistry::IsValidName("a.b"));
  EXPECT_TRUE(MetricRegistry::IsValidName("proxy.backend.3.outstanding"));
  EXPECT_FALSE(MetricRegistry::IsValidName(""));
  EXPECT_FALSE(MetricRegistry::IsValidName("single_segment"));
  EXPECT_FALSE(MetricRegistry::IsValidName("Upper.Case"));
  EXPECT_FALSE(MetricRegistry::IsValidName("a..b"));
  EXPECT_FALSE(MetricRegistry::IsValidName(".a.b"));
  EXPECT_FALSE(MetricRegistry::IsValidName("a.b."));
  EXPECT_FALSE(MetricRegistry::IsValidName("a.b-c"));
  EXPECT_FALSE(MetricRegistry::IsValidName("a b.c"));
}

TEST(MetricRegistryDeathTest, DuplicateAndMalformedRegistrationsAbort) {
  MetricRegistry registry("node");
  registry.AddCounter("node.ops.total");
  EXPECT_DEATH(registry.AddCounter("node.ops.total"), "already registered");
  // Deliberately malformed; built in a variable so the clouddb-metric-name
  // literal scan (rightly) has nothing to flag here.
  const std::string malformed = "NotAName";
  EXPECT_DEATH(registry.AddGauge(malformed),
               "not a lowercase dot-separated metric name");
}

TEST(MetricRegistryTest, MergeAddsCountersAndSumsGauges) {
  MetricRegistry a("node-a");
  a.AddCounter("node.ops.total")->Increment(10);
  a.AddGauge("node.queue.depth")->Set(2.0);
  MetricRegistry b("node-b");
  b.AddCounter("node.ops.total")->Increment(5);
  b.AddGauge("node.queue.depth")->Set(3.0);
  b.AddCounter("node.only_b.total")->Increment(1);

  MetricRegistry total("cluster");
  total.MergeFrom(a);
  total.MergeFrom(b);
  EXPECT_EQ(total.ValueOf("node.ops.total"), 15.0);
  EXPECT_EQ(total.ValueOf("node.queue.depth"), 5.0);
  EXPECT_EQ(total.ValueOf("node.only_b.total"), 1.0);
}

TEST(MetricRegistryTest, MergeFlattensProbesToPlainValues) {
  MetricRegistry source("node");
  int64_t backing = 9;
  source.AddProbe("node.queue.depth",
                  [&backing] { return static_cast<double>(backing); });
  MetricRegistry total("cluster");
  total.MergeFrom(source);
  backing = 100;  // merged copy sampled at merge time; must not follow
  const Gauge* merged = total.FindGauge("node.queue.depth");
  ASSERT_NE(merged, nullptr);
  EXPECT_FALSE(merged->is_probe());
  EXPECT_EQ(merged->value(), 9.0);
}

TEST(MetricRegistryTest, MergeCombinesEwmasCountWeighted) {
  MetricRegistry a("node-a");
  Ewma* ea = a.AddEwma("node.response_us", /*alpha=*/1.0);
  for (int i = 0; i < 3; ++i) ea->Observe(10.0);  // value 10, count 3
  MetricRegistry b("node-b");
  Ewma* eb = b.AddEwma("node.response_us", /*alpha=*/1.0);
  eb->Observe(50.0);  // value 50, count 1

  MetricRegistry total("cluster");
  total.MergeFrom(a);
  total.MergeFrom(b);
  const Ewma* merged = total.FindEwma("node.response_us");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->count(), 4);
  // Count-weighted mean: (10*3 + 50*1) / 4 = 20.
  EXPECT_DOUBLE_EQ(merged->value(), 20.0);
}

TEST(MetricRegistryTest, MergeAddsHistogramBuckets) {
  MetricRegistry a("node-a");
  HistogramSampler* ha =
      a.AddHistogram("node.latency_us", /*first_upper=*/10.0, /*base=*/2.0,
                     /*num_buckets=*/8);
  for (int i = 0; i < 10; ++i) ha->Observe(5.0);
  MetricRegistry b("node-b");
  HistogramSampler* hb =
      b.AddHistogram("node.latency_us", /*first_upper=*/10.0, /*base=*/2.0,
                     /*num_buckets=*/8);
  for (int i = 0; i < 10; ++i) hb->Observe(100.0);

  MetricRegistry total("cluster");
  total.MergeFrom(a);
  total.MergeFrom(b);
  const HistogramSampler* merged = total.FindHistogram("node.latency_us");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->histogram().TotalCount(), 20);
}

TEST(MetricRegistryTest, ToStringIsDeterministicAcrossEqualRegistries) {
  auto build = [](MetricRegistry& r) {
    r.AddCounter("node.ops.total")->Increment(3);
    r.AddGauge("node.queue.depth")->Set(1.0);
    r.AddEwma("node.response_us")->Observe(25.0);
  };
  MetricRegistry a("node");
  MetricRegistry b("node");
  build(a);
  build(b);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_NE(a.ToString().find("node.ops.total"), std::string::npos);
}

}  // namespace
}  // namespace clouddb::metrics
