#include "sim/simulation.h"
#include "common/time_types.h"

#include <gtest/gtest.h>

#include <vector>

namespace clouddb::sim {
namespace {

TEST(SimulationTest, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulationTest, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(300, [&] { order.push_back(3); });
  sim.ScheduleAt(100, [&] { order.push_back(1); });
  sim.ScheduleAt(200, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 300);
  EXPECT_EQ(sim.events_executed(), 3);
}

TEST(SimulationTest, TiesBreakInSchedulingOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(50, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulationTest, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  SimTime seen = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { seen = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 150);
}

TEST(SimulationTest, PastDeadlineClampsToNow) {
  Simulation sim;
  SimTime seen = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAt(10, [&] { seen = sim.Now(); });  // in the past
  });
  sim.Run();
  EXPECT_EQ(seen, 100);
}

TEST(SimulationTest, NegativeDelayClampsToZero) {
  Simulation sim;
  SimTime seen = -1;
  sim.ScheduleAfter(-100, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, 0);
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  auto handle = sim.ScheduleAt(10, [&] { ran = true; });
  handle.Cancel();
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulationTest, CancelIsIdempotentAndSafeAfterRun) {
  Simulation sim;
  int runs = 0;
  auto handle = sim.ScheduleAt(10, [&] { ++runs; });
  sim.Run();
  handle.Cancel();  // already executed; must be harmless
  handle.Cancel();
  EXPECT_EQ(runs, 1);
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  std::vector<SimTime> fired;
  sim.ScheduleAt(100, [&] { fired.push_back(100); });
  sim.ScheduleAt(200, [&] { fired.push_back(200); });
  sim.ScheduleAt(300, [&] { fired.push_back(300); });
  sim.RunUntil(200);
  EXPECT_EQ(fired, (std::vector<SimTime>{100, 200}));
  EXPECT_EQ(sim.Now(), 200);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(SimulationTest, RunUntilAdvancesClockWhenQueueEmpty) {
  Simulation sim;
  sim.RunUntil(5000);
  EXPECT_EQ(sim.Now(), 5000);
}

TEST(SimulationTest, EventsScheduledDuringRunExecute) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.ScheduleAfter(10, recurse);
  };
  sim.ScheduleAt(0, recurse);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), 40);
}

TEST(SimulationTest, FastForwardMovesClock) {
  Simulation sim;
  sim.FastForwardTo(123);
  EXPECT_EQ(sim.Now(), 123);
  sim.FastForwardTo(50);  // backwards is a no-op
  EXPECT_EQ(sim.Now(), 123);
}

TEST(SimulationTest, RunUntilFiresEventsExactlyAtDeadline) {
  // An event at t == deadline is inside the window (RunUntil is inclusive),
  // and a later event must survive untouched with the clock pinned to the
  // deadline, not to the last fired event.
  Simulation sim;
  std::vector<SimTime> fired;
  sim.ScheduleAt(200, [&] { fired.push_back(sim.Now()); });
  sim.ScheduleAt(201, [&] { fired.push_back(sim.Now()); });
  sim.RunUntil(200);
  EXPECT_EQ(fired, (std::vector<SimTime>{200}));
  EXPECT_EQ(sim.Now(), 200);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulationTest, CancelledEventsLeavePendingCount) {
  // pending_events() counts live work only; tombstones are tracked
  // separately and swept lazily.
  Simulation sim;
  auto a = sim.ScheduleAt(10, [] {});
  auto b = sim.ScheduleAt(20, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  a.Cancel();
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(sim.cancelled_pending(), 1u);
  b.Cancel();
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 0);
}

TEST(SimulationTest, FastForwardSkipsOverCancelledEvents) {
  // A cancelled event between now and the target must not trip the
  // "cannot skip pending work" precondition.
  Simulation sim;
  auto h = sim.ScheduleAt(50, [] {});
  h.Cancel();
  sim.FastForwardTo(100);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulationTest, CancelFromInsideFiringCallback) {
  // An event may cancel a later one while firing; the handle of the
  // *currently firing* event is already spent, so cancelling it is a no-op.
  Simulation sim;
  bool later_ran = false;
  Simulation::EventHandle self, later;
  later = sim.ScheduleAt(20, [&] { later_ran = true; });
  self = sim.ScheduleAt(10, [&] {
    self.Cancel();   // firing event: must be harmless
    later.Cancel();  // future event: must stick
  });
  sim.Run();
  EXPECT_FALSE(later_ran);
  EXPECT_EQ(sim.events_executed(), 1);
}

TEST(SimulationTest, SlotReuseNeverResurrectsCancelledEvent) {
  // Cancelling frees the slab slot for reuse. A stale handle to the old
  // occupant must not cancel (or fire) the new one: generations disambiguate.
  Simulation sim;
  bool old_ran = false;
  std::vector<int> new_ran;
  auto stale = sim.ScheduleAt(10, [&] { old_ran = true; });
  stale.Cancel();
  // Reoccupy the freed slot (LIFO free list: first reschedule reuses it).
  for (int i = 0; i < 4; ++i) {
    sim.ScheduleAt(10 + i, [&new_ran, i] { new_ran.push_back(i); });
  }
  stale.Cancel();  // stale generation: must not touch the new occupant
  sim.Run();
  EXPECT_FALSE(old_ran);
  EXPECT_EQ(new_ran, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.events_executed(), 4);
}

TEST(SimulationTest, CancelHeavyChurnStaysConsistent) {
  // Schedule/cancel churn far past the compaction threshold: survivors all
  // fire in order and both counters drain to zero.
  Simulation sim;
  int fired = 0;
  std::vector<Simulation::EventHandle> doomed;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 10; ++i) {
      doomed.push_back(
          sim.ScheduleAt(1000 + round * 10 + i, [&] { ++fired; }));
    }
    sim.ScheduleAt(500 + round, [&] { ++fired; });  // survivor
    for (auto& h : doomed) h.Cancel();
    doomed.clear();
  }
  EXPECT_EQ(sim.pending_events(), 50u);
  sim.Run();
  EXPECT_EQ(fired, 50);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
}

TEST(TimerTest, RearmSupersedesPendingOccurrence) {
  Simulation sim;
  std::vector<SimTime> fired;
  Timer t;
  t.Bind(&sim, [&] { fired.push_back(sim.Now()); });
  t.ArmAt(100);
  t.ArmAt(250);  // supersedes the 100us occurrence entirely
  sim.Run();
  EXPECT_EQ(fired, (std::vector<SimTime>{250}));
}

TEST(TimerTest, CancelAndRearmFromOwnCallback) {
  Simulation sim;
  int fires = 0;
  Timer t;
  t.Bind(&sim, [&] {
    if (++fires < 3) t.ArmAfter(10);
  });
  t.ArmAt(5);
  sim.Run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sim.Now(), 25);
  EXPECT_FALSE(t.armed());
}

TEST(PeriodicTimerTest, FirstFireIsOnePeriodOut) {
  Simulation sim;
  std::vector<SimTime> ticks;
  PeriodicTimer p;
  p.Start(&sim, 100, [&] {
    ticks.push_back(sim.Now());
    if (ticks.size() == 3) p.Stop();
  });
  sim.Run();
  EXPECT_EQ(ticks, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(PeriodicTimerTest, SetPeriodFromOwnTickTakesEffectNextArm) {
  // The kernel re-arms the next tick *before* invoking the callback, so a
  // set_period from tick 1 (t=100) leaves the already-scheduled tick at 200
  // and shortens the cadence from there on.
  Simulation sim;
  std::vector<SimTime> ticks;
  PeriodicTimer p;
  p.Start(&sim, 100, [&] {
    ticks.push_back(sim.Now());
    if (ticks.size() == 1) p.set_period(50);
    if (ticks.size() == 3) p.Stop();
  });
  sim.Run();
  EXPECT_EQ(ticks, (std::vector<SimTime>{100, 200, 250}));
  EXPECT_EQ(p.period(), 50);
}

TEST(PeriodicTimerTest, StopFromOwnTickLeavesNoPendingWork) {
  Simulation sim;
  int ticks = 0;
  PeriodicTimer p;
  p.Start(&sim, 7, [&] {
    if (++ticks == 2) p.Stop();
  });
  sim.RunUntil(1000);
  EXPECT_EQ(ticks, 2);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
}

TEST(SimulationTest, ManyEventsStressOrdering) {
  Simulation sim;
  SimTime last = -1;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    SimTime when = (i * 7919) % 10007;  // pseudo-shuffled times
    sim.ScheduleAt(when, [&, when] {
      if (when < last) monotone = false;
      last = when;
    });
  }
  sim.Run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.events_executed(), 10000);
}

}  // namespace
}  // namespace clouddb::sim
