#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace clouddb::sim {
namespace {

TEST(SimulationTest, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulationTest, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(300, [&] { order.push_back(3); });
  sim.ScheduleAt(100, [&] { order.push_back(1); });
  sim.ScheduleAt(200, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 300);
  EXPECT_EQ(sim.events_executed(), 3);
}

TEST(SimulationTest, TiesBreakInSchedulingOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(50, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulationTest, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  SimTime seen = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { seen = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 150);
}

TEST(SimulationTest, PastDeadlineClampsToNow) {
  Simulation sim;
  SimTime seen = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAt(10, [&] { seen = sim.Now(); });  // in the past
  });
  sim.Run();
  EXPECT_EQ(seen, 100);
}

TEST(SimulationTest, NegativeDelayClampsToZero) {
  Simulation sim;
  SimTime seen = -1;
  sim.ScheduleAfter(-100, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, 0);
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  auto handle = sim.ScheduleAt(10, [&] { ran = true; });
  handle.Cancel();
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulationTest, CancelIsIdempotentAndSafeAfterRun) {
  Simulation sim;
  int runs = 0;
  auto handle = sim.ScheduleAt(10, [&] { ++runs; });
  sim.Run();
  handle.Cancel();  // already executed; must be harmless
  handle.Cancel();
  EXPECT_EQ(runs, 1);
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  std::vector<SimTime> fired;
  sim.ScheduleAt(100, [&] { fired.push_back(100); });
  sim.ScheduleAt(200, [&] { fired.push_back(200); });
  sim.ScheduleAt(300, [&] { fired.push_back(300); });
  sim.RunUntil(200);
  EXPECT_EQ(fired, (std::vector<SimTime>{100, 200}));
  EXPECT_EQ(sim.Now(), 200);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(SimulationTest, RunUntilAdvancesClockWhenQueueEmpty) {
  Simulation sim;
  sim.RunUntil(5000);
  EXPECT_EQ(sim.Now(), 5000);
}

TEST(SimulationTest, EventsScheduledDuringRunExecute) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.ScheduleAfter(10, recurse);
  };
  sim.ScheduleAt(0, recurse);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), 40);
}

TEST(SimulationTest, FastForwardMovesClock) {
  Simulation sim;
  sim.FastForwardTo(123);
  EXPECT_EQ(sim.Now(), 123);
  sim.FastForwardTo(50);  // backwards is a no-op
  EXPECT_EQ(sim.Now(), 123);
}

TEST(SimulationTest, ManyEventsStressOrdering) {
  Simulation sim;
  SimTime last = -1;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    SimTime when = (i * 7919) % 10007;  // pseudo-shuffled times
    sim.ScheduleAt(when, [&, when] {
      if (when < last) monotone = false;
      last = when;
    });
  }
  sim.Run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.events_executed(), 10000);
}

}  // namespace
}  // namespace clouddb::sim
