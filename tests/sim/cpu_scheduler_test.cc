#include "sim/cpu_scheduler.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"
#include "common/time_types.h"

namespace clouddb::sim {
namespace {

TEST(CpuSchedulerTest, SingleJobTakesItsCost) {
  Simulation sim;
  CpuScheduler cpu(&sim, 1, 1.0);
  SimTime done_at = -1;
  cpu.Submit(1000, [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, 1000);
  EXPECT_EQ(cpu.JobsCompleted(), 1);
  EXPECT_EQ(cpu.CumulativeBusyMicros(), 1000);
}

TEST(CpuSchedulerTest, SpeedFactorScalesServiceTime) {
  Simulation sim;
  CpuScheduler cpu(&sim, 1, 2.0);
  SimTime done_at = -1;
  cpu.Submit(1000, [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, 500);
}

TEST(CpuSchedulerTest, SlowInstanceTakesLonger) {
  Simulation sim;
  CpuScheduler cpu(&sim, 1, 0.5);
  SimTime done_at = -1;
  cpu.Submit(1000, [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, 2000);
}

TEST(CpuSchedulerTest, FcfsOrderOnOneCore) {
  Simulation sim;
  CpuScheduler cpu(&sim, 1, 1.0);
  std::vector<int> order;
  std::vector<SimTime> times;
  for (int i = 0; i < 3; ++i) {
    cpu.Submit(100, [&, i] {
      order.push_back(i);
      times.push_back(sim.Now());
    });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(times, (std::vector<SimTime>{100, 200, 300}));
}

TEST(CpuSchedulerTest, TwoCoresRunInParallel) {
  Simulation sim;
  CpuScheduler cpu(&sim, 2, 1.0);
  std::vector<SimTime> times;
  for (int i = 0; i < 4; ++i) {
    cpu.Submit(100, [&] { times.push_back(sim.Now()); });
  }
  sim.Run();
  // Jobs 1&2 finish at t=100, jobs 3&4 at t=200.
  ASSERT_EQ(times.size(), 4u);
  EXPECT_EQ(times[0], 100);
  EXPECT_EQ(times[1], 100);
  EXPECT_EQ(times[2], 200);
  EXPECT_EQ(times[3], 200);
}

TEST(CpuSchedulerTest, QueueLengthAndBusyCores) {
  Simulation sim;
  CpuScheduler cpu(&sim, 1, 1.0);
  EXPECT_TRUE(cpu.Idle());
  cpu.Submit(100, [] {});
  cpu.Submit(100, [] {});
  cpu.Submit(100, [] {});
  EXPECT_EQ(cpu.BusyCores(), 1);
  EXPECT_EQ(cpu.QueueLength(), 2u);
  EXPECT_FALSE(cpu.Idle());
  sim.Run();
  EXPECT_TRUE(cpu.Idle());
  EXPECT_EQ(cpu.QueueLength(), 0u);
}

TEST(CpuSchedulerTest, ZeroCostJobStillTakesATick) {
  Simulation sim;
  CpuScheduler cpu(&sim, 1, 1.0);
  SimTime done_at = -1;
  cpu.Submit(0, [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, 1);
}

TEST(CpuSchedulerTest, UtilizationAccountingUnderSaturation) {
  Simulation sim;
  CpuScheduler cpu(&sim, 1, 1.0);
  // Offered: 20 jobs x 100us = 2000us of work, submitted at t=0.
  for (int i = 0; i < 20; ++i) cpu.Submit(100, [] {});
  sim.Run();
  EXPECT_EQ(sim.Now(), 2000);
  EXPECT_EQ(cpu.CumulativeBusyMicros(), 2000);  // 100% busy
}

TEST(CpuSchedulerTest, CompletionCallbackCanResubmit) {
  Simulation sim;
  CpuScheduler cpu(&sim, 1, 1.0);
  int chain = 0;
  std::function<void()> again = [&] {
    if (++chain < 5) cpu.Submit(10, again);
  };
  cpu.Submit(10, again);
  sim.Run();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(cpu.JobsCompleted(), 5);
  EXPECT_EQ(sim.Now(), 50);
}

TEST(CpuSchedulerTest, FreezeStallsQueueAndThawDrainsIt) {
  Simulation sim;
  CpuScheduler cpu(&sim, 1, 1.0);
  std::vector<SimTime> times;
  cpu.Submit(100, [&] { times.push_back(sim.Now()); });
  sim.ScheduleAt(50, [&] { cpu.Freeze(); });
  // Submitted while frozen: waits for the thaw.
  sim.ScheduleAt(60, [&] { cpu.Submit(100, [&] { times.push_back(sim.Now()); }); });
  sim.ScheduleAt(500, [&] { cpu.Thaw(); });
  sim.Run();
  ASSERT_EQ(times.size(), 2u);
  // The in-flight job ran to completion despite the freeze.
  EXPECT_EQ(times[0], 100);
  // The queued one only started at thaw time.
  EXPECT_EQ(times[1], 600);
  EXPECT_EQ(cpu.JobsCompleted(), 2);
}

TEST(CpuSchedulerTest, HaltDropsQueuedAndInFlightJobs) {
  Simulation sim;
  CpuScheduler cpu(&sim, 1, 1.0);
  int completions = 0;
  for (int i = 0; i < 3; ++i) cpu.Submit(100, [&] { ++completions; });
  sim.ScheduleAt(50, [&] { cpu.Halt(); });  // mid-first-job
  sim.ScheduleAt(500, [&] { cpu.Thaw(); }); // reboot finishes
  sim.Run();
  // Nothing survived: the in-flight job's completion was epoch-invalidated
  // and the two queued jobs were discarded.
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(cpu.JobsDropped(), 3);
  EXPECT_EQ(cpu.JobsCompleted(), 0);
  EXPECT_TRUE(cpu.Idle());
  // The rebooted scheduler works normally.
  cpu.Submit(100, [&] { ++completions; });
  sim.Run();
  EXPECT_EQ(completions, 1);
}

TEST(CpuSchedulerTest, SetSpeedFactorAffectsOnlyNewJobs) {
  Simulation sim;
  CpuScheduler cpu(&sim, 1, 1.0);
  std::vector<SimTime> times;
  cpu.Submit(100, [&] { times.push_back(sim.Now()); });
  cpu.Submit(100, [&] { times.push_back(sim.Now()); });
  sim.ScheduleAt(10, [&] { cpu.SetSpeedFactor(0.5); });  // halve mid-first-job
  sim.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 100);  // in-flight job keeps its old service time
  EXPECT_EQ(times[1], 300);  // the queued job runs at half speed (200us)
  EXPECT_DOUBLE_EQ(cpu.speed_factor(), 0.5);
}

class CpuCoreCountTest : public ::testing::TestWithParam<int> {};

TEST_P(CpuCoreCountTest, ThroughputScalesWithCores) {
  int cores = GetParam();
  Simulation sim;
  CpuScheduler cpu(&sim, cores, 1.0);
  const int kJobs = 120;
  for (int i = 0; i < kJobs; ++i) cpu.Submit(100, [] {});
  sim.Run();
  EXPECT_EQ(sim.Now(), kJobs * 100 / cores);
}

INSTANTIATE_TEST_SUITE_P(Cores, CpuCoreCountTest,
                         ::testing::Values(1, 2, 3, 4, 6));

}  // namespace
}  // namespace clouddb::sim
