#include "sim/local_clock.h"

#include <gtest/gtest.h>

#include "common/time_types.h"

namespace clouddb::sim {
namespace {

TEST(LocalClockTest, NoOffsetNoDriftTracksTrueTime) {
  LocalClock clock(0, 0.0);
  EXPECT_EQ(clock.NowMicros(0), 0);
  EXPECT_EQ(clock.NowMicros(1000000), 1000000);
  EXPECT_EQ(clock.OffsetAt(123456), 0);
}

TEST(LocalClockTest, InitialOffsetApplies) {
  LocalClock clock(Millis(5), 0.0);
  EXPECT_EQ(clock.NowMicros(0), Millis(5));
  EXPECT_EQ(clock.OffsetAt(Seconds(100)), Millis(5));
}

TEST(LocalClockTest, DriftAccumulates) {
  // +100 ppm: gains 100us per second of true time.
  LocalClock clock(0, 100.0);
  EXPECT_EQ(clock.OffsetAt(Seconds(1)), 100);
  EXPECT_EQ(clock.OffsetAt(Seconds(10)), 1000);
  EXPECT_EQ(clock.OffsetAt(Minutes(20)), 120000);  // 120 ms over 20 min
}

TEST(LocalClockTest, NegativeDriftFallsBehind) {
  LocalClock clock(0, -50.0);
  EXPECT_EQ(clock.OffsetAt(Seconds(10)), -500);
}

TEST(LocalClockTest, StepToResetsReading) {
  LocalClock clock(Millis(10), 200.0);
  SimTime t = Seconds(5);
  clock.StepTo(t, t + Millis(1));  // step to 1ms ahead of true
  EXPECT_EQ(clock.NowMicros(t), t + Millis(1));
  // Drift resumes from the new anchor.
  EXPECT_EQ(clock.OffsetAt(t + Seconds(1)), Millis(1) + 200);
}

TEST(LocalClockTest, MonotoneForPositiveElapsed) {
  LocalClock clock(Millis(3), 37.0);
  int64_t prev = clock.NowMicros(0);
  for (SimTime t = 1000; t <= Seconds(10); t += 1000) {
    int64_t now = clock.NowMicros(t);
    ASSERT_GT(now, prev);
    prev = now;
  }
}

TEST(LocalClockTest, TwoClocksDivergeAtRelativeDrift) {
  // The Fig. 4 scenario: synced once at t=0, then drifting apart.
  LocalClock a(0, 18.0);
  LocalClock b(0, -18.0);
  SimTime twenty_min = Minutes(20);
  int64_t diff = a.NowMicros(twenty_min) - b.NowMicros(twenty_min);
  // 36 ppm relative drift over 1200 s = 43.2 ms.
  EXPECT_NEAR(static_cast<double>(diff), 43200.0 * 1000.0 / 1000.0, 100.0);
}

}  // namespace
}  // namespace clouddb::sim
