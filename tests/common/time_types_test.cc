#include "common/time_types.h"

#include <gtest/gtest.h>

namespace clouddb {
namespace {

TEST(TimeTypesTest, UnitConversions) {
  EXPECT_EQ(Micros(5), 5);
  EXPECT_EQ(Millis(2), 2000);
  EXPECT_EQ(Seconds(3), 3000000);
  EXPECT_EQ(Minutes(1), 60000000);
  EXPECT_EQ(kHour, 60 * kMinute);
}

TEST(TimeTypesTest, FloatingConversionsRound) {
  EXPECT_EQ(SecondsF(1.5), 1500000);
  EXPECT_EQ(MillisF(0.5), 500);
  EXPECT_EQ(MillisF(3.3), 3300);
  // Rounds to nearest microsecond.
  EXPECT_EQ(MillisF(0.0004), 0);
  EXPECT_EQ(MillisF(0.0006), 1);
}

TEST(TimeTypesTest, BackConversions) {
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(7)), 7.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Millis(500)), 0.5);
}

struct FormatCase {
  SimDuration d;
  const char* expected;
};

class FormatDurationTest : public ::testing::TestWithParam<FormatCase> {};

TEST_P(FormatDurationTest, Formats) {
  EXPECT_EQ(FormatDuration(GetParam().d), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FormatDurationTest,
    ::testing::Values(FormatCase{0, "0us"}, FormatCase{25, "25us"},
                      FormatCase{Millis(1), "1.00ms"},
                      FormatCase{MillisF(2.5), "2.50ms"},
                      FormatCase{Seconds(1), "1.00s"},
                      FormatCase{SecondsF(1.75), "1.75s"},
                      FormatCase{Minutes(2), "2.00min"},
                      FormatCase{Minutes(90), "90.00min"},
                      FormatCase{-Millis(3), "-3.00ms"},
                      FormatCase{-Seconds(2), "-2.00s"}));

}  // namespace
}  // namespace clouddb
