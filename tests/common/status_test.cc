#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace clouddb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::Ok().ok());
}

struct CodeCase {
  Status status;
  StatusCode code;
  const char* name;
};

class StatusCodeTest : public ::testing::TestWithParam<CodeCase> {};

TEST_P(StatusCodeTest, FactoryProducesCode) {
  const CodeCase& c = GetParam();
  EXPECT_FALSE(c.status.ok());
  EXPECT_EQ(c.status.code(), c.code);
  EXPECT_EQ(c.status.message(), "m");
  EXPECT_EQ(c.status.ToString(), std::string(c.name) + ": m");
}

INSTANTIATE_TEST_SUITE_P(
    AllCodes, StatusCodeTest,
    ::testing::Values(
        CodeCase{Status::InvalidArgument("m"), StatusCode::kInvalidArgument,
                 "InvalidArgument"},
        CodeCase{Status::NotFound("m"), StatusCode::kNotFound, "NotFound"},
        CodeCase{Status::AlreadyExists("m"), StatusCode::kAlreadyExists,
                 "AlreadyExists"},
        CodeCase{Status::FailedPrecondition("m"),
                 StatusCode::kFailedPrecondition, "FailedPrecondition"},
        CodeCase{Status::OutOfRange("m"), StatusCode::kOutOfRange,
                 "OutOfRange"},
        CodeCase{Status::ResourceExhausted("m"),
                 StatusCode::kResourceExhausted, "ResourceExhausted"},
        CodeCase{Status::Unavailable("m"), StatusCode::kUnavailable,
                 "Unavailable"},
        CodeCase{Status::Aborted("m"), StatusCode::kAborted, "Aborted"},
        CodeCase{Status::TimedOut("m"), StatusCode::kTimedOut, "TimedOut"},
        CodeCase{Status::Corruption("m"), StatusCode::kCorruption,
                 "Corruption"},
        CodeCase{Status::NotSupported("m"), StatusCode::kNotSupported,
                 "NotSupported"},
        CodeCase{Status::Internal("m"), StatusCode::kInternal, "Internal"}));

TEST(StatusTest, PredicatesMatchCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsAborted());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Aborted("a"));
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::TimedOut("slow");
  EXPECT_EQ(os.str(), "TimedOut: slow");
}

Status Fails() { return Status::NotFound("gone"); }
Status Succeeds() { return Status::Ok(); }

Status UseReturnIfError(bool fail, bool* reached_end) {
  CLOUDDB_RETURN_IF_ERROR(fail ? Fails() : Succeeds());
  *reached_end = true;
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  bool reached = false;
  Status s = UseReturnIfError(true, &reached);
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(reached);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  bool reached = false;
  Status s = UseReturnIfError(false, &reached);
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(reached);
}

}  // namespace
}  // namespace clouddb
