#include "common/str_util.h"

#include <gtest/gtest.h>

namespace clouddb {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 42, "x", 3.14159), "42-x-3.14");
  EXPECT_EQ(StrFormat("no args"), "no args");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrFormatTest, LongOutput) {
  std::string long_arg(5000, 'a');
  std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 5002u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

TEST(StrSplitTest, SplitsAndKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"only"}, ","), "only");
}

TEST(CaseTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("SeLeCt *"), "select *");
  EXPECT_EQ(ToUpper("SeLeCt *"), "SELECT *");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  x  "), "x");
  EXPECT_EQ(StripWhitespace("\t\nabc\r "), "abc");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(PrefixSuffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("SELECT 1", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
  EXPECT_TRUE(EndsWith("a.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(EqualsIgnoreCaseTest, Comparisons) {
  EXPECT_TRUE(EqualsIgnoreCase("select", "SELECT"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

}  // namespace
}  // namespace clouddb
