#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace clouddb {
namespace {

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

class RngUniformIntTest : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(RngUniformIntTest, StaysInRangeAndHitsEndpoints) {
  auto [lo, hi] = GetParam();
  Rng rng(99);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 20000; ++i) {
    int64_t v = rng.UniformInt(lo, hi);
    ASSERT_GE(v, lo);
    ASSERT_LE(v, hi);
    if (v == lo) hit_lo = true;
    if (v == hi) hit_hi = true;
  }
  if (hi - lo < 1000) {
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, RngUniformIntTest,
    ::testing::Values(std::make_pair<int64_t, int64_t>(0, 0),
                      std::make_pair<int64_t, int64_t>(0, 1),
                      std::make_pair<int64_t, int64_t>(-5, 5),
                      std::make_pair<int64_t, int64_t>(1, 100),
                      std::make_pair<int64_t, int64_t>(-1000000, 1000000)));

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<size_t>(rng.UniformInt(0, 9))];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.1);
  }
}

TEST(RngTest, ExponentialMeanCloseToRequested) {
  Rng rng(11);
  double sum = 0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.1);
}

TEST(RngTest, ExponentialAlwaysNonNegative) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(rng.Exponential(1.0), 0.0);
  }
}

TEST(RngTest, NormalMomentsCloseToRequested) {
  Rng rng(13);
  const int kDraws = 200000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / kDraws;
  double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ClampedNormalRespectsBounds) {
  Rng rng(14);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.ClampedNormal(1.0, 0.5, 0.8, 1.2);
    ASSERT_GE(v, 0.8);
    ASSERT_LE(v, 1.2);
  }
}

TEST(RngTest, LogNormalMedianCloseToRequested) {
  Rng rng(15);
  std::vector<double> vals;
  for (int i = 0; i < 50001; ++i) vals.push_back(rng.LogNormal(3.0, 0.5));
  std::sort(vals.begin(), vals.end());
  EXPECT_NEAR(vals[vals.size() / 2], 3.0, 0.1);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(16);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFraction) {
  Rng rng(17);
  int heads = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.8)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / kDraws, 0.8, 0.01);
}

TEST(RngTest, ZipfInRange) {
  Rng rng(18);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.Zipf(100, 0.99);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
  }
}

TEST(RngTest, ZipfSkewsTowardSmallValues) {
  Rng rng(19);
  int small = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Zipf(1000, 1.1) < 10) ++small;
  }
  // With heavy skew, the first 1% of values get far more than 1% of mass.
  EXPECT_GT(small, kDraws / 5);
}

TEST(RngTest, ZipfZeroSkewIsUniform) {
  Rng rng(20);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<size_t>(rng.Zipf(10, 0.0))];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.1);
  }
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(21);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<size_t>(rng.WeightedIndex(weights))];
  }
  EXPECT_NEAR(counts[0], kDraws * 0.1, kDraws * 0.02);
  EXPECT_NEAR(counts[1], kDraws * 0.3, kDraws * 0.02);
  EXPECT_NEAR(counts[2], kDraws * 0.6, kDraws * 0.02);
}

TEST(RngTest, WeightedIndexSingleBucket) {
  Rng rng(22);
  std::vector<double> weights = {2.5};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 0);
  }
}

TEST(RngTest, ForkProducesDecorrelatedStreams) {
  Rng parent(33);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.NextU64() == child2.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(33);
  Rng b(33);
  Rng ca = a.Fork(9);
  Rng cb = b.Fork(9);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(ca.NextU64(), cb.NextU64());
  }
}

}  // namespace
}  // namespace clouddb
