#include "common/table_writer.h"

#include <gtest/gtest.h>

namespace clouddb {
namespace {

TEST(TableWriterTest, AsciiTableContainsHeaderAndRows) {
  TableWriter t({"users", "throughput"});
  t.AddRow({"50", "5.3"});
  t.AddRow({"100", "10.1"});
  std::string ascii = t.ToAscii();
  EXPECT_NE(ascii.find("users"), std::string::npos);
  EXPECT_NE(ascii.find("throughput"), std::string::npos);
  EXPECT_NE(ascii.find("10.1"), std::string::npos);
  // Box borders present.
  EXPECT_NE(ascii.find("+--"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableWriterTest, CsvOutput) {
  TableWriter t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TableWriterTest, CsvEscapesSpecialCharacters) {
  TableWriter t({"name", "note"});
  t.AddRow({"x,y", "he said \"hi\""});
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TableWriterTest, NumericRowFormatting) {
  TableWriter t({"a", "b"});
  t.AddNumericRow({1.23456, 2.0}, 2);
  EXPECT_EQ(t.ToCsv(), "a,b\n1.23,2.00\n");
}

TEST(TableWriterTest, WriteCsvFile) {
  TableWriter t({"x"});
  t.AddRow({"1"});
  std::string path = ::testing::TempDir() + "/table_writer_test.csv";
  ASSERT_TRUE(t.WriteCsvFile(path));
  FILE* f = fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  size_t n = fread(buf, 1, sizeof(buf) - 1, f);
  fclose(f);
  EXPECT_EQ(std::string(buf, n), "x\n1\n");
}

TEST(TableWriterTest, WriteCsvFileFailsOnBadPath) {
  TableWriter t({"x"});
  EXPECT_FALSE(t.WriteCsvFile("/nonexistent_dir_xyz/file.csv"));
}

}  // namespace
}  // namespace clouddb
