#include "common/result.h"
#include "common/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace clouddb {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> err(Status::Aborted("x"));
  EXPECT_EQ(err.value_or(7), 7);
  Result<int> ok(3);
  EXPECT_EQ(ok.value_or(7), 3);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> Doubled(int v) {
  CLOUDDB_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, AssignOrReturnHappyPath) {
  Result<int> r = Doubled(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> r = Doubled(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultTest, CopyableWhenValueCopyable) {
  Result<std::vector<int>> a(std::vector<int>{1, 2, 3});
  Result<std::vector<int>> b = a;
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->size(), 3u);
  EXPECT_EQ(a->size(), 3u);
}

}  // namespace
}  // namespace clouddb
