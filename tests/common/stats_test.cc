#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace clouddb {
namespace {

TEST(SampleTest, EmptySampleIsSafe) {
  Sample s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Median(), 0.0);
  EXPECT_EQ(s.StdDev(), 0.0);
  EXPECT_EQ(s.Min(), 0.0);
  EXPECT_EQ(s.Max(), 0.0);
}

TEST(SampleTest, EmptySamplePercentilesAndTrimsAreZero) {
  Sample s;
  EXPECT_EQ(s.Sum(), 0.0);
  EXPECT_EQ(s.Percentile(0.0), 0.0);
  EXPECT_EQ(s.Percentile(0.5), 0.0);
  EXPECT_EQ(s.Percentile(1.0), 0.0);
  EXPECT_EQ(s.TrimmedMean(0.05), 0.0);
  // Never NaN: the contract is an exact 0.0 on no data.
  EXPECT_FALSE(std::isnan(s.Mean()));
  EXPECT_FALSE(std::isnan(s.StdDev()));
}

TEST(SampleTest, SingleElementStatisticsAreThatElement) {
  Sample s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.Min(), 42.0);
  EXPECT_DOUBLE_EQ(s.Max(), 42.0);
  EXPECT_DOUBLE_EQ(s.Median(), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.25), 42.0);
  EXPECT_DOUBLE_EQ(s.TrimmedMean(0.05), 42.0);
  EXPECT_EQ(s.StdDev(), 0.0);
}

TEST(SampleTest, PercentileDegenerateQIsSafe) {
  Sample s;
  for (double v : {1.0, 2.0, 3.0}) s.Add(v);
  // Out-of-range and NaN q clamp instead of indexing out of bounds.
  EXPECT_DOUBLE_EQ(s.Percentile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(2.0), 3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(std::nan("")), 1.0);
}

TEST(SampleTest, ClearResetsToEmpty) {
  Sample s;
  s.Add(1.0);
  s.Clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Mean(), 0.0);
}

TEST(SampleTest, BasicMoments) {
  Sample s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 2.0);  // classic population-stddev example
  EXPECT_EQ(s.Min(), 2.0);
  EXPECT_EQ(s.Max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(SampleTest, MedianOddAndEven) {
  Sample odd;
  for (double v : {3.0, 1.0, 2.0}) odd.Add(v);
  EXPECT_DOUBLE_EQ(odd.Median(), 2.0);

  Sample even;
  for (double v : {1.0, 2.0, 3.0, 4.0}) even.Add(v);
  EXPECT_DOUBLE_EQ(even.Median(), 2.5);
}

TEST(SampleTest, PercentileInterpolates) {
  Sample s;
  for (int i = 0; i <= 100; ++i) s.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 100.0);
  EXPECT_NEAR(s.Percentile(0.95), 95.0, 1e-9);
  EXPECT_NEAR(s.Percentile(0.5), 50.0, 1e-9);
}

TEST(SampleTest, TrimmedMeanDropsOutliers) {
  Sample s;
  // 18 well-behaved values plus two wild outliers.
  for (int i = 0; i < 18; ++i) s.Add(10.0);
  s.Add(100000.0);
  s.Add(-100000.0);
  // 5% two-sided trim on 20 samples drops exactly one from each end.
  EXPECT_DOUBLE_EQ(s.TrimmedMean(0.05), 10.0);
  EXPECT_NE(s.Mean(), 10.0);
}

TEST(SampleTest, TrimmedMeanZeroFractionIsMean) {
  Sample s;
  for (double v : {1.0, 2.0, 3.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.TrimmedMean(0.0), s.Mean());
}

TEST(SampleTest, TrimmedMeanTinySampleFallsBackToMean) {
  Sample s;
  s.Add(5.0);
  s.Add(100.0);
  EXPECT_DOUBLE_EQ(s.TrimmedMean(0.05), s.Mean());
}

TEST(SampleTest, AddAllAppends) {
  Sample s;
  s.AddAll({1.0, 2.0});
  s.AddAll({3.0});
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.Sum(), 6.0);
}

TEST(HistogramTest, BucketsCountCorrectly) {
  Histogram h(1.0, 2.0, 10);  // buckets: <1, <2, <4, <8, ...
  h.Add(0.5);
  h.Add(1.5);
  h.Add(3.0);
  h.Add(3.9);
  EXPECT_EQ(h.TotalCount(), 4);
  EXPECT_EQ(h.counts()[0], 1);
  EXPECT_EQ(h.counts()[1], 1);
  EXPECT_EQ(h.counts()[2], 2);
}

TEST(HistogramTest, OverflowBucket) {
  Histogram h(1.0, 2.0, 3);  // <1, <2, <4, overflow
  h.Add(100.0);
  EXPECT_EQ(h.counts().back(), 1);
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a(1.0, 2.0, 4);
  Histogram b(1.0, 2.0, 4);
  a.Add(0.5);
  b.Add(0.5);
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.TotalCount(), 3);
  EXPECT_EQ(a.counts()[0], 2);
}

TEST(HistogramTest, ApproxPercentile) {
  Histogram h(1.0, 10.0, 5);
  for (int i = 0; i < 99; ++i) h.Add(0.5);
  h.Add(5000.0);
  // p50 falls in the first bucket, p999 in a later one.
  EXPECT_LE(h.ApproxPercentile(0.5), 1.0);
  EXPECT_GT(h.ApproxPercentile(0.999), 100.0);
}

TEST(HistogramTest, ToStringListsNonEmptyBuckets) {
  Histogram h(1.0, 2.0, 4);
  h.Add(0.2);
  h.Add(3.0);
  std::string s = h.ToString();
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_FALSE(s.empty());
}

TEST(RateCounterTest, RateOverWindow) {
  RateCounter c;
  for (int i = 0; i < 100; ++i) c.Record(i * 10000);
  // 100 events over a 1-second window.
  EXPECT_DOUBLE_EQ(c.RatePerSecond(0, 1000000), 100.0);
  EXPECT_EQ(c.count(), 100);
}

TEST(RateCounterTest, DegenerateWindowIsZero) {
  RateCounter c;
  c.Record(5);
  EXPECT_EQ(c.RatePerSecond(10, 10), 0.0);
  EXPECT_EQ(c.RatePerSecond(10, 5), 0.0);
}

}  // namespace
}  // namespace clouddb
