// End-to-end property tests: a randomized mixed workload (DDL, DML,
// transactions, rollbacks, failures) runs against a full replicated
// deployment; afterwards every replica must converge to the master and all
// index structures must validate. Also: bitwise-deterministic replay and a
// parser robustness fuzz.

#include <gtest/gtest.h>

#include "cloud/cloud_provider.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "db/sql_parser.h"
#include "repl/replication_cluster.h"
#include "common/time_types.h"
#include "sim/simulation.h"

namespace clouddb::repl {
namespace {

/// Generates a random statement against a small ledger schema. Some
/// statements intentionally fail (duplicate keys, missing rows) — failures
/// must not replicate and must not break anything.
class StatementFuzzer {
 public:
  explicit StatementFuzzer(uint64_t seed) : rng_(seed) {}

  std::string Next() {
    double pick = rng_.NextDouble();
    if (pick < 0.45) {
      // Insert, ~20% duplicate-key failures.
      int64_t key = rng_.UniformInt(0, 200);
      return StrFormat(
          "INSERT INTO ledger (id, owner, amount) VALUES (%lld, 'u%lld', %lld)",
          static_cast<long long>(key),
          static_cast<long long>(rng_.UniformInt(1, 10)),
          static_cast<long long>(rng_.UniformInt(-50, 50)));
    }
    if (pick < 0.70) {
      return StrFormat(
          "UPDATE ledger SET amount = amount + %lld WHERE id %s %lld",
          static_cast<long long>(rng_.UniformInt(-5, 5)),
          rng_.Bernoulli(0.5) ? "=" : ">",
          static_cast<long long>(rng_.UniformInt(0, 200)));
    }
    if (pick < 0.85) {
      return StrFormat("DELETE FROM ledger WHERE id = %lld",
                       static_cast<long long>(rng_.UniformInt(0, 200)));
    }
    if (pick < 0.95) {
      return StrFormat("SELECT COUNT(*) FROM ledger WHERE amount >= %lld",
                       static_cast<long long>(rng_.UniformInt(-50, 50)));
    }
    return StrFormat("SELECT SUM(amount), MIN(id), MAX(id) FROM ledger "
                     "WHERE id BETWEEN %lld AND %lld",
                     static_cast<long long>(rng_.UniformInt(0, 100)),
                     static_cast<long long>(rng_.UniformInt(100, 200)));
  }

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

struct RunDigest {
  int64_t binlog_events = 0;
  int64_t ok_statements = 0;
  int64_t failed_statements = 0;
  int64_t final_sum = 0;
  int64_t final_count = 0;
  bool converged = false;
  bool indexes_valid = true;
};

RunDigest RunRandomWorkload(uint64_t seed, int num_slaves, int statements,
                            bool with_transactions) {
  sim::Simulation sim;
  cloud::CloudOptions cloud_options;
  cloud::CloudProvider provider(&sim, cloud_options, seed);
  ClusterConfig config;
  config.num_slaves = num_slaves;
  ReplicationCluster cluster(&provider, config);
  EXPECT_TRUE(cluster.master()
                  ->ExecuteDirect(
                      "CREATE TABLE ledger (id BIGINT PRIMARY KEY, "
                      "owner TEXT NOT NULL, amount BIGINT)")
                  .ok());
  EXPECT_TRUE(cluster.master()
                  ->ExecuteDirect("CREATE INDEX idx_owner ON ledger (owner)")
                  .ok());

  StatementFuzzer fuzzer(seed * 31 + 7);
  RunDigest digest;
  auto session = cluster.master()->database().CreateSession();
  int txn_depth = 0;
  for (int i = 0; i < statements; ++i) {
    // Occasionally wrap stretches in explicit transactions, some of which
    // roll back.
    if (with_transactions && txn_depth == 0 && fuzzer.rng().Bernoulli(0.1)) {
      EXPECT_TRUE(cluster.master()
                      ->database()
                      .Execute("BEGIN", session.get())
                      .ok());
      txn_depth = static_cast<int>(fuzzer.rng().UniformInt(1, 5));
    }
    auto result =
        cluster.master()->database().Execute(fuzzer.Next(), session.get());
    if (result.ok()) {
      ++digest.ok_statements;
    } else {
      ++digest.failed_statements;
    }
    if (txn_depth > 0 && --txn_depth == 0) {
      const char* end = fuzzer.rng().Bernoulli(0.3) ? "ROLLBACK" : "COMMIT";
      EXPECT_TRUE(
          cluster.master()->database().Execute(end, session.get()).ok());
    }
    // Let replication make progress between statements now and then.
    if (i % 50 == 0) sim.RunUntil(sim.Now() + Seconds(1));
  }
  if (session->in_explicit_transaction()) {
    EXPECT_TRUE(
        cluster.master()->database().Execute("COMMIT", session.get()).ok());
  }
  sim.Run();  // drain replication fully

  digest.binlog_events = cluster.master()->database().binlog().size();
  digest.converged = cluster.Converged() && cluster.FullyReplicated();
  std::string err;
  digest.indexes_valid =
      cluster.master()->database().ValidateAllIndexes(&err);
  for (int i = 0; i < num_slaves; ++i) {
    digest.indexes_valid = digest.indexes_valid &&
                           cluster.slave(i)->database().ValidateAllIndexes(&err);
  }
  EXPECT_TRUE(digest.indexes_valid) << err;
  auto sum = cluster.master()->database().Execute(
      "SELECT SUM(amount), COUNT(*) FROM ledger");
  EXPECT_TRUE(sum.ok());
  if (sum.ok()) {
    digest.final_sum =
        sum->rows[0][0].is_null() ? 0 : sum->rows[0][0].AsInt64();
    digest.final_count = sum->rows[0][1].AsInt64();
  }
  return digest;
}

class ReplicationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplicationFuzzTest, RandomWorkloadConvergesOnAllReplicas) {
  RunDigest digest = RunRandomWorkload(GetParam(), 3, 1500,
                                       /*with_transactions=*/true);
  EXPECT_TRUE(digest.converged);
  EXPECT_TRUE(digest.indexes_valid);
  EXPECT_GT(digest.ok_statements, 0);
  EXPECT_GT(digest.failed_statements, 0);  // the fuzz does produce failures
  EXPECT_GT(digest.binlog_events, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicationFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ReplicationReplayTest, IdenticalSeedsProduceIdenticalDigests) {
  RunDigest a = RunRandomWorkload(77, 2, 800, true);
  RunDigest b = RunRandomWorkload(77, 2, 800, true);
  EXPECT_EQ(a.binlog_events, b.binlog_events);
  EXPECT_EQ(a.ok_statements, b.ok_statements);
  EXPECT_EQ(a.failed_statements, b.failed_statements);
  EXPECT_EQ(a.final_sum, b.final_sum);
  EXPECT_EQ(a.final_count, b.final_count);
}

TEST(ReplicationReplayTest, DifferentSeedsDiverge) {
  RunDigest a = RunRandomWorkload(101, 1, 500, false);
  RunDigest b = RunRandomWorkload(202, 1, 500, false);
  // Overwhelmingly likely to differ in at least one digest field.
  EXPECT_TRUE(a.binlog_events != b.binlog_events ||
              a.final_sum != b.final_sum || a.final_count != b.final_count);
}

// ---- Parser robustness fuzz ------------------------------------------------

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  const char* kFragments[] = {
      "SELECT", "INSERT", "UPDATE", "DELETE", "FROM",  "WHERE", "AND",
      "OR",     "NOT",    "IN",     "BETWEEN", "NULL", "IS",    "VALUES",
      "INTO",   "SET",    "ORDER",  "BY",     "LIMIT", "(",     ")",
      ",",      "*",      "=",      "<",      ">=",    "+",     "-",
      "'str'",  "42",     "3.14",   "tbl",    "col",   ";",     "COUNT",
      "MIN(",   "BEGIN",  "COMMIT", "PRIMARY", "KEY",  "TABLE", "CREATE",
  };
  Rng rng(555);
  int parsed_ok = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    std::string sql;
    int len = static_cast<int>(rng.UniformInt(1, 12));
    for (int i = 0; i < len; ++i) {
      sql += kFragments[rng.UniformInt(
          0, static_cast<int64_t>(std::size(kFragments)) - 1)];
      sql += " ";
    }
    auto result = db::ParseSql(sql);  // must never crash or hang
    if (result.ok()) ++parsed_ok;
  }
  // Some soup accidentally forms valid SQL; most does not.
  EXPECT_LT(parsed_ok, 2000);
}

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(777);
  for (int trial = 0; trial < 5000; ++trial) {
    std::string sql;
    int len = static_cast<int>(rng.UniformInt(0, 60));
    for (int i = 0; i < len; ++i) {
      sql += static_cast<char>(rng.UniformInt(1, 127));
    }
    (void)db::ParseSql(sql);
  }
  SUCCEED();
}

}  // namespace
}  // namespace clouddb::repl
