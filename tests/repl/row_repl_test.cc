#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud_provider.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "repl/replication_cluster.h"
#include "common/result.h"
#include "db/database.h"
#include "db/table.h"
#include "metrics/metric_registry.h"
#include "sim/simulation.h"
#include "db/binlog.h"

namespace clouddb::repl {
namespace {

/// One self-contained deployment (own simulation, cloud, cluster) so two
/// runs of the same workload under different replication modes can be
/// compared side by side.
struct Deployment {
  explicit Deployment(int slaves, bool sync = false) {
    options.latency_jitter_sigma = 0.0;
    options.cpu_speed_cov = 0.0;
    options.max_initial_clock_offset = 0;
    options.max_clock_drift_ppm = 0.0;
    provider = std::make_unique<cloud::CloudProvider>(&sim, options, 1);
    ClusterConfig config;
    config.num_slaves = slaves;
    config.synchronous_replication = sync;
    cluster = std::make_unique<ReplicationCluster>(provider.get(), config);
  }

  Result<db::ExecResult> Run(const std::string& sql) {
    return cluster->master()->ExecuteDirect(sql);
  }

  uint64_t SlaveTableHash(int slave, const std::string& table) {
    db::Table* t = cluster->slave(slave)->database().GetTable(table);
    return t == nullptr ? 0 : t->ContentsHash();
  }

  uint64_t MasterTableHash(const std::string& table) {
    db::Table* t = cluster->master()->database().GetTable(table);
    return t == nullptr ? 0 : t->ContentsHash();
  }

  sim::Simulation sim;
  cloud::CloudOptions options;
  std::unique_ptr<cloud::CloudProvider> provider;
  std::unique_ptr<ReplicationCluster> cluster;
};

/// Deterministic function-free workload: interleaved inserts, updates and
/// deletes on a keyed table, with a CREATE INDEX dropped mid-stream so the
/// run always exercises the DDL fallback inside a row-based stream.
std::vector<std::string> MakeWorkload(uint64_t seed, int steps) {
  std::vector<std::string> sql;
  sql.push_back(
      "CREATE TABLE items (id INT PRIMARY KEY, qty INT, label TEXT)");
  Rng rng(seed);
  std::vector<int64_t> live;
  int64_t next_id = 1;
  for (int i = 0; i < steps; ++i) {
    if (i == steps / 2) {
      sql.push_back("CREATE INDEX idx_items_qty ON items (qty)");
      continue;
    }
    int64_t kind = rng.UniformInt(0, 9);
    if (live.empty() || kind < 5) {
      int64_t id = next_id++;
      sql.push_back(StrFormat("INSERT INTO items VALUES (%lld, %lld, 'L%lld')",
                              static_cast<long long>(id),
                              static_cast<long long>(rng.UniformInt(-50, 50)),
                              static_cast<long long>(id % 7)));
      live.push_back(id);
    } else if (kind < 8) {
      int64_t id = live[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
      sql.push_back(StrFormat("UPDATE items SET qty = %lld WHERE id = %lld",
                              static_cast<long long>(rng.UniformInt(-50, 50)),
                              static_cast<long long>(id)));
    } else {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      sql.push_back(StrFormat("DELETE FROM items WHERE id = %lld",
                              static_cast<long long>(live[pick])));
      live.erase(live.begin() + static_cast<long>(pick));
    }
  }
  return sql;
}

TEST(RowReplTest, RandomizedWorkloadIsBitIdenticalAcrossModes) {
  std::vector<std::string> workload = MakeWorkload(/*seed=*/99, /*steps=*/120);

  Deployment stmt_mode(2);
  Deployment row_mode(2);
  row_mode.cluster->SetRowBasedReplication(true);
  row_mode.cluster->SetBinlogBatchSize(8);

  for (const std::string& sql : workload) {
    ASSERT_TRUE(stmt_mode.Run(sql).ok()) << sql;
    ASSERT_TRUE(row_mode.Run(sql).ok()) << sql;
  }
  stmt_mode.sim.Run();
  row_mode.sim.Run();

  ASSERT_TRUE(stmt_mode.cluster->FullyReplicated());
  ASSERT_TRUE(row_mode.cluster->FullyReplicated());
  EXPECT_TRUE(stmt_mode.cluster->Converged());
  EXPECT_TRUE(row_mode.cluster->Converged());

  // Replica state must be bit-identical: same per-table checksum on every
  // node in both modes (the ablation-toggle contract).
  uint64_t expected = stmt_mode.MasterTableHash("items");
  EXPECT_EQ(row_mode.MasterTableHash("items"), expected);
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(stmt_mode.SlaveTableHash(s, "items"), expected);
    EXPECT_EQ(row_mode.SlaveTableHash(s, "items"), expected);
  }

  // The row-mode run actually used the fast path, and the mid-stream DDL
  // actually used the fallback.
  EXPECT_GT(row_mode.cluster->slave(0)->writeset_applies(), 0);
  EXPECT_GT(row_mode.cluster->slave(0)->fallback_applies(), 0);
  EXPECT_EQ(stmt_mode.cluster->slave(0)->writeset_applies(), 0);
  EXPECT_EQ(stmt_mode.cluster->slave(0)->fallback_applies(), 0);

  // Batching shipped group messages on the row cluster only.
  EXPECT_GT(row_mode.cluster->master()->batches_shipped(), 0);
  EXPECT_EQ(stmt_mode.cluster->master()->batches_shipped(), 0);
}

TEST(RowReplTest, FunctionBearingStatementsFallBackAndReplicate) {
  Deployment d(1);
  d.cluster->SetRowBasedReplication(true);
  ASSERT_TRUE(
      d.Run("CREATE TABLE hb (hb_id INT PRIMARY KEY, ts BIGINT)").ok());
  // NOW_MICROS must re-evaluate on each replica (heartbeat semantics), so
  // the statement is never covered by a writeset.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(d.Run(StrFormat(
                     "INSERT INTO hb (hb_id, ts) VALUES (%d, NOW_MICROS())",
                     i))
                    .ok());
  }
  d.sim.Run();
  EXPECT_TRUE(d.cluster->FullyReplicated());
  EXPECT_FALSE(d.cluster->slave(0)->replication_broken());
  EXPECT_EQ(d.cluster->slave(0)->writeset_applies(), 0);
  // 5 uncovered inserts + the CREATE TABLE DDL.
  EXPECT_EQ(d.cluster->slave(0)->fallback_applies(), 6);
  // The slave has all five rows even though none shipped row images.
  auto r = d.cluster->slave(0)->database().Execute("SELECT COUNT(*) FROM hb");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt64(), 5);
}

TEST(RowReplTest, BatchingCutsShippedMessages) {
  Deployment per_event(1);
  Deployment batched(1);
  batched.cluster->SetBinlogBatchSize(64);

  ASSERT_TRUE(per_event.Run("CREATE TABLE t (a INT PRIMARY KEY)").ok());
  ASSERT_TRUE(batched.Run("CREATE TABLE t (a INT PRIMARY KEY)").ok());
  for (int i = 0; i < 63; ++i) {
    std::string sql = StrFormat("INSERT INTO t VALUES (%d)", i);
    ASSERT_TRUE(per_event.Run(sql).ok());
    ASSERT_TRUE(batched.Run(sql).ok());
  }
  per_event.sim.Run();
  batched.sim.Run();

  ASSERT_TRUE(per_event.cluster->FullyReplicated());
  ASSERT_TRUE(batched.cluster->FullyReplicated());
  EXPECT_TRUE(batched.cluster->Converged());

  // 64 events: 64 per-event messages vs one full group message.
  EXPECT_EQ(per_event.cluster->master()->messages_sent(), 64);
  EXPECT_EQ(batched.cluster->master()->messages_sent(), 1);
  EXPECT_EQ(batched.cluster->master()->batches_shipped(), 1);
  EXPECT_GE(per_event.cluster->master()->messages_sent(),
            8 * batched.cluster->master()->messages_sent());
}

TEST(RowReplTest, FlushTimerShipsPartialBatches) {
  Deployment d(1);
  d.cluster->SetBinlogBatchSize(64);
  ASSERT_TRUE(d.Run("CREATE TABLE t (a INT PRIMARY KEY)").ok());
  ASSERT_TRUE(d.Run("INSERT INTO t VALUES (1)").ok());
  // Two events buffered, far below the batch size: only the flush interval
  // gets them onto the wire.
  d.sim.Run();
  EXPECT_TRUE(d.cluster->FullyReplicated());
  EXPECT_EQ(d.cluster->master()->batches_shipped(), 1);
  EXPECT_EQ(d.cluster->slave(0)->events_applied(), 2);
}

TEST(RowReplTest, GroupCommitAckReleasesAllSyncWaiters) {
  Deployment d(1, /*sync=*/true);
  d.cluster->SetBinlogBatchSize(4);
  ASSERT_TRUE(d.Run("CREATE TABLE t (a INT PRIMARY KEY)").ok());
  d.sim.Run();

  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    d.cluster->master()->Submit(
        StrFormat("INSERT INTO t VALUES (%d)", i), /*cpu_cost=*/-1,
        [&completed](Result<db::ExecResult> r) {
          ASSERT_TRUE(r.ok());
          ++completed;
        });
  }
  d.sim.Run();
  // Every synchronous write completed even though the slave sent only
  // batch-end acks (one cumulative ack covers the whole batch).
  EXPECT_EQ(completed, 8);
  EXPECT_TRUE(d.cluster->FullyReplicated());
}

TEST(RowReplTest, LegacyModeIsByteIdenticalOnTheWire) {
  // batch_size <= 1 and row_based_repl off must reproduce the seed path
  // exactly: same message count, same per-event wire size.
  Deployment d(1);
  ASSERT_TRUE(d.Run("CREATE TABLE t (a INT PRIMARY KEY)").ok());
  ASSERT_TRUE(d.Run("INSERT INTO t VALUES (42)").ok());
  d.sim.Run();
  EXPECT_EQ(d.cluster->master()->messages_sent(), 2);
  EXPECT_EQ(d.cluster->master()->batches_shipped(), 0);
  const db::BinlogEvent& event =
      d.cluster->master()->database().binlog().At(1);
  ASSERT_EQ(event.statements.size(), 1u);
  EXPECT_TRUE(event.writesets.empty());
  EXPECT_EQ(db::EventWireSize(event),
            32 + static_cast<int64_t>(event.statements[0].size()));
}

TEST(RowReplTest, ReplicationMetricsAppearInSnapshots) {
  Deployment d(1);
  d.cluster->SetRowBasedReplication(true);
  d.cluster->SetBinlogBatchSize(4);
  ASSERT_TRUE(d.Run("CREATE TABLE t (a INT PRIMARY KEY)").ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(d.Run(StrFormat("INSERT INTO t VALUES (%d)", i)).ok());
  }
  d.sim.Run();

  auto value_of = [](const std::vector<metrics::MetricSnapshot>& snap,
                     const std::string& name) -> double {
    for (const auto& m : snap) {
      if (m.name == name) return m.value;
    }
    ADD_FAILURE() << "metric '" << name << "' not registered";
    return -1.0;
  };
  auto master_snap = d.cluster->master()->metrics().Snapshot();
  EXPECT_GT(value_of(master_snap, "repl.binlog.batches"), 0.0);
  EXPECT_GT(value_of(master_snap, "repl.binlog.events_per_batch"), 0.0);
  auto slave_snap = d.cluster->slave(0)->metrics().Snapshot();
  EXPECT_GT(value_of(slave_snap, "repl.apply.writeset"), 0.0);
  // CREATE TABLE is DDL inside a row-based stream: the fallback fired.
  EXPECT_GT(value_of(slave_snap, "repl.apply.fallback"), 0.0);
}

}  // namespace
}  // namespace clouddb::repl
