#include "repl/cost_model.h"

#include <gtest/gtest.h>

#include "db/sql_parser.h"
#include "common/time_types.h"
#include "db/sql_ast.h"

namespace clouddb::repl {
namespace {

db::Statement Parse(const std::string& sql) {
  auto r = db::ParseSql(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(CostModelTest, PerKindDefaults) {
  CostModel model;
  EXPECT_EQ(model.EstimateStatement(Parse("SELECT * FROM t")),
            model.select_cost);
  EXPECT_EQ(model.EstimateStatement(Parse("INSERT INTO t VALUES (1)")),
            model.insert_cost);
  EXPECT_EQ(model.EstimateStatement(Parse("UPDATE t SET a = 1")),
            model.update_cost);
  EXPECT_EQ(model.EstimateStatement(Parse("DELETE FROM t")),
            model.delete_cost);
  EXPECT_EQ(model.EstimateStatement(Parse("CREATE TABLE t (a INT)")),
            model.ddl_cost);
  EXPECT_EQ(model.EstimateStatement(Parse("BEGIN")), model.txn_control_cost);
}

TEST(CostModelTest, ApplyScalesByFactor) {
  CostModel model;
  model.apply_factor = 0.5;
  model.insert_cost = Millis(100);
  EXPECT_EQ(model.EstimateApply(Parse("INSERT INTO t VALUES (1)")),
            Millis(50));
}

TEST(CostModelTest, ApplyTableOverrideWins) {
  CostModel model;
  model.apply_factor = 0.5;
  model.insert_cost = Millis(100);
  model.apply_cost_by_table["heartbeat"] = Millis(4);
  EXPECT_EQ(model.EstimateApply(Parse("INSERT INTO heartbeat VALUES (1, 2)")),
            Millis(4));
  // Other tables still use the factor.
  EXPECT_EQ(model.EstimateApply(Parse("INSERT INTO other VALUES (1)")),
            Millis(50));
}

TEST(CostModelTest, OverrideIsCaseInsensitiveOnTableName) {
  CostModel model;
  model.apply_cost_by_table["events"] = Millis(42);
  EXPECT_EQ(model.EstimateApply(Parse("INSERT INTO Events VALUES (1)")),
            Millis(42));
}

}  // namespace
}  // namespace clouddb::repl
