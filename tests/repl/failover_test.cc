#include "repl/failover.h"

#include <gtest/gtest.h>

#include "client/rw_split_proxy.h"
#include "cloud/cloud_provider.h"
#include "common/str_util.h"
#include "repl/replication_cluster.h"
#include "cloud/instance.h"
#include "cloud/placement.h"
#include "common/result.h"
#include "common/status.h"
#include "common/time_types.h"
#include "db/database.h"
#include "db/table.h"
#include "repl/master_node.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"

namespace clouddb::repl {
namespace {

class FailoverTest : public ::testing::Test {
 protected:
  FailoverTest() {
    options_.latency_jitter_sigma = 0.0;
    options_.cpu_speed_cov = 0.0;
    options_.max_initial_clock_offset = 0;
    options_.max_clock_drift_ppm = 0.0;
  }

  void Deploy(int slaves) {
    provider_ = std::make_unique<cloud::CloudProvider>(&sim_, options_, 1);
    ClusterConfig config;
    config.num_slaves = slaves;
    cluster_ = std::make_unique<ReplicationCluster>(provider_.get(), config);
    monitor_ = provider_->Launch("monitor", cloud::InstanceType::kSmall,
                                 cloud::MasterPlacement());
    std::vector<SlaveNode*> slave_ptrs;
    for (int i = 0; i < slaves; ++i) slave_ptrs.push_back(cluster_->slave(i));
    manager_ = std::make_unique<FailoverManager>(
        &sim_, &provider_->network(), monitor_->node_id(), cluster_->master(),
        slave_ptrs, FailoverOptions{});
    ASSERT_TRUE(cluster_->master()
                    ->ExecuteDirect("CREATE TABLE t (a INT PRIMARY KEY)")
                    .ok());
    sim_.Run();
  }

  sim::Simulation sim_;
  cloud::CloudOptions options_;
  std::unique_ptr<cloud::CloudProvider> provider_;
  std::unique_ptr<ReplicationCluster> cluster_;
  cloud::Instance* monitor_ = nullptr;
  std::unique_ptr<FailoverManager> manager_;
};

TEST_F(FailoverTest, HealthyMasterNeverTrips) {
  Deploy(2);
  manager_->Start();
  sim_.RunUntil(Minutes(2));
  manager_->Stop();
  sim_.Run();
  EXPECT_FALSE(manager_->failover_performed());
  EXPECT_GT(manager_->probes_sent(), 100);
  EXPECT_EQ(manager_->probes_failed(), 0);
  EXPECT_EQ(manager_->current_master(), cluster_->master());
}

TEST_F(FailoverTest, OfflineNodeRefusesQueries) {
  Deploy(1);
  cluster_->master()->set_online(false);
  Status seen;
  cluster_->master()->Submit("SELECT COUNT(*) FROM t", Millis(1),
                             [&](Result<db::ExecResult> r) {
                               seen = r.status();
                             });
  sim_.Run();
  EXPECT_TRUE(seen.IsUnavailable());
}

TEST_F(FailoverTest, DetectsCrashAndPromotes) {
  Deploy(3);
  // Commit some writes and let them replicate.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster_->master()
                    ->ExecuteDirect(StrFormat("INSERT INTO t VALUES (%d)", i))
                    .ok());
  }
  sim_.Run();
  manager_->Start();
  sim_.RunUntil(Seconds(5));
  // Crash the master.
  cluster_->master()->set_online(false);
  sim_.RunUntil(Seconds(30));
  manager_->Stop();
  sim_.Run();

  ASSERT_TRUE(manager_->failover_performed());
  MasterNode* new_master = manager_->current_master();
  ASSERT_NE(new_master, cluster_->master());
  // The promoted node serves the replicated data.
  auto count = new_master->database().Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt64(), 10);
  // No writes were in flight: nothing lost.
  EXPECT_FALSE(manager_->lost_writes_possible());
  // Two survivors re-attached.
  EXPECT_EQ(manager_->active_slaves().size(), 2u);
}

TEST_F(FailoverTest, WritesReplicateAfterFailover) {
  Deploy(3);
  manager_->Start();
  sim_.RunUntil(Seconds(2));
  cluster_->master()->set_online(false);
  sim_.RunUntil(Seconds(30));
  ASSERT_TRUE(manager_->failover_performed());
  MasterNode* new_master = manager_->current_master();

  for (int i = 0; i < 5; ++i) {
    new_master->Submit(StrFormat("INSERT INTO t VALUES (%d)", 100 + i),
                       Millis(5), [](Result<db::ExecResult> r) {
                         ASSERT_TRUE(r.ok());
                       });
  }
  manager_->Stop();
  sim_.Run();
  for (SlaveNode* slave : manager_->active_slaves()) {
    EXPECT_FALSE(slave->replication_broken());
    auto r = slave->database().Execute("SELECT COUNT(*) FROM t");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rows[0][0].AsInt64(), 5);
    EXPECT_TRUE(db::Database::ContentsEqual(new_master->database(),
                                            slave->database()));
  }
}

TEST_F(FailoverTest, ElectsMostUpToDateSlave) {
  Deploy(2);
  // Slave 1 lags: take it offline during the writes, then bring it back.
  cluster_->slave(1)->set_online(false);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cluster_->master()
                    ->ExecuteDirect(StrFormat("INSERT INTO t VALUES (%d)", i))
                    .ok());
  }
  sim_.Run();
  cluster_->slave(1)->set_online(true);  // back, but missing 6 events
  EXPECT_GT(cluster_->slave(0)->applied_index(),
            cluster_->slave(1)->applied_index());

  manager_->Start();
  cluster_->master()->set_online(false);
  sim_.RunUntil(Seconds(30));
  manager_->Stop();
  sim_.Run();
  ASSERT_TRUE(manager_->failover_performed());
  EXPECT_EQ(manager_->promoted_slave(), cluster_->slave(0));
  // The lagging slave was resynced from the winner.
  EXPECT_TRUE(db::Database::ContentsEqual(
      manager_->current_master()->database(),
      cluster_->slave(1)->database()));
}

TEST_F(FailoverTest, DetectsPossibleWriteLoss) {
  Deploy(1);
  manager_->Start();
  sim_.RunUntil(Seconds(2));
  // Commit on the master while the slave is unreachable (network partition),
  // then crash the master: the committed event never lands anywhere.
  cluster_->slave(0)->set_online(false);
  ASSERT_TRUE(
      cluster_->master()->ExecuteDirect("INSERT INTO t VALUES (42)").ok());
  cluster_->master()->set_online(false);
  sim_.RunUntil(Seconds(5));
  cluster_->slave(0)->set_online(true);  // partition heals, too late
  sim_.RunUntil(Seconds(30));
  manager_->Stop();
  sim_.Run();
  ASSERT_TRUE(manager_->failover_performed());
  // §II: "once the updated replica goes offline before duplicating data,
  // data loss may occur."
  EXPECT_TRUE(manager_->lost_writes_possible());
  auto r = manager_->current_master()->database().Execute(
      "SELECT COUNT(*) FROM t");
  EXPECT_EQ(r->rows[0][0].AsInt64(), 0);
}

TEST_F(FailoverTest, ProxyRepointsAfterFailover) {
  Deploy(2);
  cloud::Instance* app = provider_->Launch("app", cloud::InstanceType::kLarge,
                                           cloud::MasterPlacement());
  client::ReadWriteSplitProxy proxy(
      &sim_, &provider_->network(), app->node_id(), cluster_->master(),
      {cluster_->slave(0), cluster_->slave(1)}, client::ProxyOptions{});
  manager_->SetFailoverListener([&](MasterNode* new_master) {
    proxy.ReplaceMaster(new_master);
    // The promoted node left the read rotation.
    for (int i = 0; i < 2; ++i) {
      if (cluster_->slave(i) == manager_->promoted_slave()) {
        proxy.DeactivateSlave(i);
      }
    }
  });
  manager_->Start();
  sim_.RunUntil(Seconds(2));
  cluster_->master()->set_online(false);
  // A write during the outage fails with Unavailable.
  Status during_outage;
  proxy.Execute("INSERT INTO t VALUES (1)", false, Millis(5),
                [&](Result<db::ExecResult> r) { during_outage = r.status(); });
  sim_.RunUntil(Seconds(30));
  EXPECT_TRUE(during_outage.IsUnavailable());
  ASSERT_TRUE(manager_->failover_performed());
  // Writes and reads work again through the repointed proxy.
  int ok_count = 0;
  proxy.Execute("INSERT INTO t VALUES (2)", false, Millis(5),
                [&](Result<db::ExecResult> r) { ok_count += r.ok(); });
  proxy.Execute("SELECT COUNT(*) FROM t", true, Millis(5),
                [&](Result<db::ExecResult> r) { ok_count += r.ok(); });
  manager_->Stop();
  sim_.Run();
  EXPECT_EQ(ok_count, 2);
}

TEST_F(FailoverTest, CountsLostWritesWhenLaggingSlaveIsPromoted) {
  Deploy(1);
  manager_->Start();
  sim_.RunUntil(Seconds(2));
  // Three writes commit while the only slave is unreachable; then the
  // master dies. Whoever wins the election is missing all three.
  cluster_->slave(0)->set_online(false);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster_->master()
                    ->ExecuteDirect(StrFormat("INSERT INTO t VALUES (%d)", i))
                    .ok());
  }
  cluster_->master()->set_online(false);
  sim_.RunUntil(Seconds(5));
  cluster_->slave(0)->set_online(true);
  sim_.RunUntil(Seconds(30));
  manager_->Stop();
  sim_.Run();

  ASSERT_TRUE(manager_->failover_performed());
  EXPECT_TRUE(manager_->lost_writes_possible());
  EXPECT_EQ(manager_->lost_writes_count(), 3);
}

TEST_F(FailoverTest, SurvivorResyncRebuildsSecondaryIndexes) {
  Deploy(2);
  // A second table with a secondary index, replicated everywhere, plus a
  // backlog that slave 2 misses (offline during the writes).
  ASSERT_TRUE(cluster_->master()
                  ->ExecuteDirect(
                      "CREATE TABLE u (id INT PRIMARY KEY, tag TEXT)")
                  .ok());
  ASSERT_TRUE(cluster_->master()
                  ->ExecuteDirect("CREATE INDEX idx_tag ON u (tag)")
                  .ok());
  sim_.Run();
  cluster_->slave(1)->set_online(false);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        cluster_->master()
            ->ExecuteDirect(StrFormat(
                "INSERT INTO u VALUES (%d, 'tag-%d')", i, i % 2))
            .ok());
  }
  sim_.Run();
  cluster_->slave(1)->set_online(true);  // back, lagging 4 events

  manager_->Start();
  cluster_->master()->set_online(false);
  sim_.RunUntil(Seconds(30));
  manager_->Stop();
  sim_.Run();

  ASSERT_TRUE(manager_->failover_performed());
  EXPECT_EQ(manager_->promoted_slave(), cluster_->slave(0));
  // The lagging survivor was re-cloned from the winner: identical contents
  // AND a working secondary index (ResyncDatabase recreates indexes, not
  // just rows).
  ASSERT_EQ(manager_->active_slaves().size(), 1u);
  SlaveNode* survivor = manager_->active_slaves()[0];
  EXPECT_TRUE(db::Database::ContentsEqual(
      manager_->current_master()->database(), survivor->database()));
  const db::Table* u = survivor->database().GetTable("u");
  ASSERT_NE(u, nullptr);
  auto tag_col = u->schema().ColumnIndex("tag");
  ASSERT_TRUE(tag_col.ok());
  EXPECT_TRUE(u->HasIndexOn(*tag_col));
  std::string err;
  EXPECT_TRUE(survivor->database().ValidateAllIndexes(&err)) << err;
  // Writes through the promoted master keep replicating to the survivor.
  ASSERT_TRUE(manager_->current_master()
                  ->ExecuteDirect("INSERT INTO u VALUES (100, 'tag-x')")
                  .ok());
  sim_.Run();
  EXPECT_TRUE(db::Database::ContentsEqual(
      manager_->current_master()->database(), survivor->database()));
}

TEST_F(FailoverTest, ResyncDatabaseCopiesEverything) {
  db::Database source;
  ASSERT_TRUE(source
                  .Execute("CREATE TABLE a (id INT PRIMARY KEY, v TEXT, "
                           "d DOUBLE)")
                  .ok());
  ASSERT_TRUE(source.Execute("CREATE INDEX idx_v ON a (v)").ok());
  ASSERT_TRUE(source.Execute("INSERT INTO a VALUES (1, 'x', 1.5)").ok());
  ASSERT_TRUE(source.Execute("INSERT INTO a VALUES (2, NULL, NULL)").ok());
  db::Database target;
  ASSERT_TRUE(target.Execute("CREATE TABLE junk (z INT)").ok());
  ASSERT_TRUE(ResyncDatabase(source, &target).ok());
  EXPECT_TRUE(db::Database::ContentsEqual(source, target));
  EXPECT_EQ(target.GetTable("junk"), nullptr);
  // Secondary indexes recreated.
  auto v_col = target.GetTable("a")->schema().ColumnIndex("v");
  ASSERT_TRUE(v_col.ok());
  EXPECT_TRUE(target.GetTable("a")->HasIndexOn(*v_col));
  std::string err;
  EXPECT_TRUE(target.ValidateAllIndexes(&err)) << err;
}

}  // namespace
}  // namespace clouddb::repl
