#include <gtest/gtest.h>

#include "cloud/cloud_provider.h"
#include "common/stats.h"
#include "common/str_util.h"
#include "repl/delay_monitor.h"
#include "repl/heartbeat.h"
#include "repl/master_node.h"
#include "repl/replication_cluster.h"
#include "repl/slave_node.h"
#include "common/result.h"
#include "common/time_types.h"
#include "db/binlog.h"
#include "db/database.h"
#include "repl/cost_model.h"
#include "sim/simulation.h"

namespace clouddb::repl {
namespace {

/// A cluster on a deterministic cloud with jitter and variance disabled
/// unless a test opts in.
class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest() {
    options_.latency_jitter_sigma = 0.0;
    options_.cpu_speed_cov = 0.0;
    options_.max_initial_clock_offset = 0;
    options_.max_clock_drift_ppm = 0.0;
  }

  std::unique_ptr<ReplicationCluster> MakeCluster(int slaves,
                                                  bool sync = false) {
    provider_ = std::make_unique<cloud::CloudProvider>(&sim_, options_, 1);
    ClusterConfig config;
    config.num_slaves = slaves;
    config.synchronous_replication = sync;
    return std::make_unique<ReplicationCluster>(provider_.get(), config);
  }

  sim::Simulation sim_;
  cloud::CloudOptions options_;
  std::unique_ptr<cloud::CloudProvider> provider_;
};

TEST_F(ReplicationTest, WritesPropagateToAllSlaves) {
  auto cluster = MakeCluster(3);
  ASSERT_TRUE(cluster->master()
                  ->ExecuteDirect("CREATE TABLE t (a INT PRIMARY KEY)")
                  .ok());
  ASSERT_TRUE(
      cluster->master()->ExecuteDirect("INSERT INTO t VALUES (1)").ok());
  sim_.Run();  // drain replication
  EXPECT_TRUE(cluster->FullyReplicated());
  EXPECT_TRUE(cluster->Converged());
  for (int i = 0; i < 3; ++i) {
    auto r = cluster->slave(i)->database().Execute("SELECT COUNT(*) FROM t");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rows[0][0].AsInt64(), 1);
  }
}

TEST_F(ReplicationTest, ReadsDoNotReplicate) {
  auto cluster = MakeCluster(1);
  ASSERT_TRUE(
      cluster->master()->ExecuteDirect("CREATE TABLE t (a INT)").ok());
  sim_.Run();
  int64_t size = cluster->master()->database().binlog().size();
  ASSERT_TRUE(cluster->master()->ExecuteDirect("SELECT * FROM t").ok());
  sim_.Run();
  EXPECT_EQ(cluster->master()->database().binlog().size(), size);
  EXPECT_EQ(cluster->slave(0)->events_applied(), size);
}

TEST_F(ReplicationTest, EventsApplyInOrder) {
  auto cluster = MakeCluster(1);
  ASSERT_TRUE(cluster->master()
                  ->ExecuteDirect("CREATE TABLE t (a INT PRIMARY KEY, b INT)")
                  .ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(cluster->master()
                    ->ExecuteDirect(StrFormat("INSERT INTO t VALUES (%d, %d)",
                                              i, i))
                    .ok());
    ASSERT_TRUE(cluster->master()
                    ->ExecuteDirect(StrFormat(
                        "UPDATE t SET b = b * 2 + 1 WHERE a = %d", i))
                    .ok());
  }
  sim_.Run();
  EXPECT_TRUE(cluster->Converged());
  EXPECT_EQ(cluster->slave(0)->applied_index(),
            cluster->master()->database().binlog().size() - 1);
}

TEST_F(ReplicationTest, AsyncWriteCompletesBeforeSlaveApplies) {
  auto cluster = MakeCluster(1);
  ASSERT_TRUE(
      cluster->master()->ExecuteDirect("CREATE TABLE t (a INT)").ok());
  sim_.Run();
  bool responded = false;
  cluster->master()->Submit("INSERT INTO t VALUES (1)", Millis(10),
                            [&](Result<db::ExecResult> r) {
                              ASSERT_TRUE(r.ok());
                              responded = true;
                              // Asynchronous: the slave cannot have applied
                              // yet (one-way latency alone exceeds 0).
                              EXPECT_LT(cluster->slave(0)->events_applied(),
                                        cluster->master()->binlog_size());
                            });
  sim_.Run();
  EXPECT_TRUE(responded);
  EXPECT_TRUE(cluster->Converged());
}

TEST_F(ReplicationTest, SyncWriteWaitsForAllSlaveAcks) {
  auto cluster = MakeCluster(2, /*sync=*/true);
  ASSERT_TRUE(
      cluster->master()->ExecuteDirect("CREATE TABLE t (a INT)").ok());
  sim_.Run();
  SimTime responded_at = -1;
  cluster->master()->Submit("INSERT INTO t VALUES (1)", Millis(10),
                            [&](Result<db::ExecResult> r) {
                              ASSERT_TRUE(r.ok());
                              responded_at = sim_.Now();
                              // Both slaves must already have applied.
                              EXPECT_EQ(cluster->slave(0)->events_applied(),
                                        cluster->master()->binlog_size());
                              EXPECT_EQ(cluster->slave(1)->events_applied(),
                                        cluster->master()->binlog_size());
                            });
  sim_.Run();
  ASSERT_GT(responded_at, 0);
  // Response time covers master exec + one-way push + apply + ack.
  EXPECT_GE(responded_at, Millis(10) + 2 * options_.same_zone_one_way);
}

TEST_F(ReplicationTest, SyncModeSlowerThanAsyncForTheClient) {
  SimTime async_done = 0;
  SimTime sync_done = 0;
  for (bool sync : {false, true}) {
    sim::Simulation sim;
    auto provider = std::make_unique<cloud::CloudProvider>(&sim, options_, 1);
    ClusterConfig config;
    config.num_slaves = 3;
    config.synchronous_replication = sync;
    ReplicationCluster cluster(provider.get(), config);
    ASSERT_TRUE(
        cluster.master()->ExecuteDirect("CREATE TABLE t (a INT)").ok());
    sim.Run();
    SimTime start = sim.Now();
    SimTime done = 0;
    cluster.master()->Submit("INSERT INTO t VALUES (1)", Millis(10),
                             [&](Result<db::ExecResult>) { done = sim.Now(); });
    sim.Run();
    (sync ? sync_done : async_done) = done - start;
  }
  EXPECT_GT(sync_done, async_done);
}

TEST_F(ReplicationTest, FailedStatementsDoNotReplicate) {
  auto cluster = MakeCluster(1);
  ASSERT_TRUE(cluster->master()
                  ->ExecuteDirect("CREATE TABLE t (a INT PRIMARY KEY)")
                  .ok());
  ASSERT_TRUE(
      cluster->master()->ExecuteDirect("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(
      cluster->master()->ExecuteDirect("INSERT INTO t VALUES (1)").ok());
  sim_.Run();
  EXPECT_TRUE(cluster->Converged());
  auto r = cluster->slave(0)->database().Execute("SELECT COUNT(*) FROM t");
  EXPECT_EQ(r->rows[0][0].AsInt64(), 1);
}

TEST_F(ReplicationTest, SlaveAppliesChargeCpu) {
  auto cluster = MakeCluster(1);
  ASSERT_TRUE(
      cluster->master()->ExecuteDirect("CREATE TABLE t (a INT)").ok());
  sim_.Run();
  int64_t busy_before = cluster->slave(0)->instance().cpu().CumulativeBusyMicros();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster->master()
                    ->ExecuteDirect(StrFormat("INSERT INTO t VALUES (%d)", i))
                    .ok());
  }
  sim_.Run();
  int64_t busy_after = cluster->slave(0)->instance().cpu().CumulativeBusyMicros();
  // 10 inserts at apply cost = 0.5 * insert_cost (30ms) = 150ms.
  CostModel defaults;
  EXPECT_EQ(busy_after - busy_before,
            10 * static_cast<int64_t>(defaults.apply_factor *
                                      static_cast<double>(defaults.insert_cost)));
}

TEST_F(ReplicationTest, BrokenSlaveStopsApplying) {
  auto cluster = MakeCluster(1);
  ASSERT_TRUE(cluster->master()
                  ->ExecuteDirect("CREATE TABLE t (a INT PRIMARY KEY)")
                  .ok());
  sim_.Run();
  // Sabotage: insert a conflicting row directly on the slave (out-of-band
  // write — the classic way operators break MySQL replication).
  ASSERT_TRUE(
      cluster->slave(0)->database().Execute("INSERT INTO t VALUES (7)").ok());
  ASSERT_TRUE(
      cluster->master()->ExecuteDirect("INSERT INTO t VALUES (7)").ok());
  ASSERT_TRUE(
      cluster->master()->ExecuteDirect("INSERT INTO t VALUES (8)").ok());
  sim_.Run();
  EXPECT_TRUE(cluster->slave(0)->replication_broken());
  // The event after the failure was never applied.
  auto r = cluster->slave(0)->database().Execute(
      "SELECT COUNT(*) FROM t WHERE a = 8");
  EXPECT_EQ(r->rows[0][0].AsInt64(), 0);
  EXPECT_FALSE(cluster->FullyReplicated());
}

TEST_F(ReplicationTest, ExecuteEverywhereDirectDoesNotReplicate) {
  auto cluster = MakeCluster(2);
  ASSERT_TRUE(
      cluster->ExecuteEverywhereDirect("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(cluster->ExecuteEverywhereDirect("INSERT INTO t VALUES (1)").ok());
  sim_.Run();
  // Nothing went through the binlog; contents equal by direct loading.
  EXPECT_EQ(cluster->master()->database().binlog().size(), 0);
  EXPECT_TRUE(cluster->Converged());
  EXPECT_TRUE(cluster->FullyReplicated());  // trivially: empty binlog
}

TEST_F(ReplicationTest, TransactionAppliesAtomicallyOnSlave) {
  auto cluster = MakeCluster(1);
  ASSERT_TRUE(
      cluster->master()->ExecuteDirect("CREATE TABLE t (a INT PRIMARY KEY)").ok());
  auto session = cluster->master()->database().CreateSession();
  ASSERT_TRUE(cluster->master()->database().Execute("BEGIN", session.get()).ok());
  ASSERT_TRUE(cluster->master()
                  ->database()
                  .Execute("INSERT INTO t VALUES (1)", session.get())
                  .ok());
  ASSERT_TRUE(cluster->master()
                  ->database()
                  .Execute("INSERT INTO t VALUES (2)", session.get())
                  .ok());
  ASSERT_TRUE(
      cluster->master()->database().Execute("COMMIT", session.get()).ok());
  sim_.Run();
  EXPECT_TRUE(cluster->Converged());
  // One binlog event carried both statements.
  const db::Binlog& binlog = cluster->master()->database().binlog();
  EXPECT_EQ(binlog.At(binlog.size() - 1).statements.size(), 2u);
}

// ---- Heartbeat & delay monitor -------------------------------------------

class HeartbeatTest : public ReplicationTest {};

TEST_F(HeartbeatTest, HeartbeatsReplicateWithLocalTimestamps) {
  auto cluster = MakeCluster(1);
  HeartbeatOptions options;
  HeartbeatPlugin heartbeat(&sim_, cluster->master(), options);
  ASSERT_TRUE(heartbeat.CreateTable().ok());
  heartbeat.Start();
  sim_.RunUntil(Seconds(10));
  heartbeat.Stop();
  sim_.Run();

  auto master_hb =
      ReadHeartbeats(cluster->master()->database(), options.table);
  auto slave_hb = ReadHeartbeats(cluster->slave(0)->database(), options.table);
  EXPECT_EQ(master_hb.size(), 11u);  // t = 0..10 inclusive
  EXPECT_EQ(slave_hb.size(), 11u);
  // Slave apply timestamps trail master commit timestamps (no clock skew in
  // this fixture): delay = network + apply CPU > 0 for every heartbeat.
  for (const auto& [id, master_ts] : master_hb) {
    ASSERT_TRUE(slave_hb.count(id) > 0);
    EXPECT_GT(slave_hb[id], master_ts) << "heartbeat " << id;
  }
}

TEST_F(HeartbeatTest, DelaysReflectNetworkPlusApply) {
  auto cluster = MakeCluster(1);
  HeartbeatOptions options;
  HeartbeatPlugin heartbeat(&sim_, cluster->master(), options);
  ASSERT_TRUE(heartbeat.CreateTable().ok());
  heartbeat.Start();
  sim_.RunUntil(Seconds(30));
  heartbeat.Stop();
  sim_.Run();
  std::vector<double> delays =
      HeartbeatDelaysMs(cluster->master()->database(),
                        cluster->slave(0)->database(), 1,
                        heartbeat.next_id() - 1, options.table);
  ASSERT_GT(delays.size(), 20u);
  for (double d : delays) {
    // One-way 16ms + apply 4ms (idle slave), plus the master-side insert.
    EXPECT_GT(d, 16.0);
    EXPECT_LT(d, 40.0);
  }
}

TEST_F(HeartbeatTest, RelativeDelayCancelsClockOffset) {
  // Give the slave instance a large fixed clock offset; the relative delay
  // computation must cancel it.
  auto cluster = MakeCluster(1);
  cluster->slave(0)->instance().clock().StepTo(0, Millis(500));

  HeartbeatOptions options;
  HeartbeatPlugin heartbeat(&sim_, cluster->master(), options);
  ASSERT_TRUE(heartbeat.CreateTable().ok());
  heartbeat.Start();
  sim_.RunUntil(Seconds(20));
  int64_t idle_max = heartbeat.next_id() - 1;
  // "Load": occupy the slave CPU with reads so applies queue behind them.
  for (int i = 0; i < 200; ++i) {
    cluster->slave(0)->Submit("SELECT COUNT(*) FROM heartbeat", Millis(50),
                              [](Result<db::ExecResult>) {});
  }
  sim_.RunUntil(Seconds(40));
  heartbeat.Stop();
  sim_.Run();

  std::vector<double> idle =
      HeartbeatDelaysMs(cluster->master()->database(),
                        cluster->slave(0)->database(), 1, idle_max);
  std::vector<double> loaded = HeartbeatDelaysMs(
      cluster->master()->database(), cluster->slave(0)->database(),
      idle_max + 1, heartbeat.next_id() - 1);
  ASSERT_FALSE(idle.empty());
  ASSERT_FALSE(loaded.empty());
  // Raw delays carry the 500ms offset...
  Sample idle_sample;
  idle_sample.AddAll(idle);
  EXPECT_GT(idle_sample.Mean(), 400.0);
  // ...but the relative delay cancels it and reflects pure queueing.
  double relative = AverageRelativeDelayMs(loaded, idle);
  EXPECT_GT(relative, 100.0);    // queueing behind 200 x 50ms reads
  EXPECT_LT(relative, 20000.0);  // and no runaway offset contamination
}

TEST_F(HeartbeatTest, MoreHeartbeatsWithShorterPeriod) {
  auto cluster = MakeCluster(1);
  HeartbeatOptions fast;
  fast.period = Millis(200);
  HeartbeatPlugin heartbeat(&sim_, cluster->master(), fast);
  ASSERT_TRUE(heartbeat.CreateTable().ok());
  heartbeat.Start();
  sim_.RunUntil(Seconds(10));
  heartbeat.Stop();
  sim_.Run();
  EXPECT_EQ(heartbeat.next_id() - 1, 51);  // t=0,0.2,...,10.0
}

TEST(ReconnectOptionsTest, EffectiveAckTimeoutFallsBackToNamedDefault) {
  ReconnectOptions options;
  EXPECT_EQ(options.ack_timeout, ReconnectOptions::kDefaultAckTimeout);
  options.ack_timeout = 0;  // "use the default", not "no timeout"
  EXPECT_EQ(options.effective_ack_timeout(),
            ReconnectOptions::kDefaultAckTimeout);
  options.ack_timeout = Seconds(3);
  EXPECT_EQ(options.effective_ack_timeout(), Seconds(3));
}

TEST_F(HeartbeatTest, DelayMonitorHandlesMissingTables) {
  db::Database a;
  db::Database b;
  EXPECT_TRUE(ReadHeartbeats(a, "heartbeat").empty());
  EXPECT_TRUE(HeartbeatDelaysMs(a, b, 1, 100).empty());
  EXPECT_EQ(AverageRelativeDelayMs({}, {}), 0.0);
}

}  // namespace
}  // namespace clouddb::repl
