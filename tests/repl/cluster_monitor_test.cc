#include "repl/cluster_monitor.h"

#include <gtest/gtest.h>

#include "cloud/cloud_provider.h"
#include "common/str_util.h"
#include "repl/replication_cluster.h"
#include "common/result.h"
#include "common/table_writer.h"
#include "common/time_types.h"
#include "db/database.h"
#include "sim/simulation.h"

namespace clouddb::repl {
namespace {

class ClusterMonitorTest : public ::testing::Test {
 protected:
  ClusterMonitorTest() {
    options_.latency_jitter_sigma = 0.0;
    options_.cpu_speed_cov = 0.0;
    options_.max_initial_clock_offset = 0;
    options_.max_clock_drift_ppm = 0.0;
    provider_ = std::make_unique<cloud::CloudProvider>(&sim_, options_, 1);
    ClusterConfig config;
    config.num_slaves = 2;
    cluster_ = std::make_unique<ReplicationCluster>(provider_.get(), config);
    EXPECT_TRUE(cluster_->master()
                    ->ExecuteDirect("CREATE TABLE t (a INT PRIMARY KEY)")
                    .ok());
    sim_.Run();
  }

  ClusterMonitor MakeMonitor(SimDuration interval) {
    return ClusterMonitor(&sim_, cluster_->master(),
                          {cluster_->slave(0), cluster_->slave(1)}, interval);
  }

  sim::Simulation sim_;
  cloud::CloudOptions options_;
  std::unique_ptr<cloud::CloudProvider> provider_;
  std::unique_ptr<ReplicationCluster> cluster_;
};

TEST_F(ClusterMonitorTest, SamplesAtRequestedCadence) {
  ClusterMonitor monitor = MakeMonitor(Seconds(1));
  monitor.Start();
  sim_.RunUntil(sim_.Now() + Seconds(10));
  monitor.Stop();
  sim_.Run();
  EXPECT_EQ(monitor.samples().size(), 10u);
  ASSERT_FALSE(monitor.samples().empty());
  EXPECT_EQ(monitor.samples()[0].slave_cpu.size(), 2u);
}

TEST_F(ClusterMonitorTest, IdleClusterShowsZeroUtilization) {
  ClusterMonitor monitor = MakeMonitor(Seconds(1));
  monitor.Start();
  sim_.RunUntil(sim_.Now() + Seconds(5));
  monitor.Stop();
  sim_.Run();
  EXPECT_DOUBLE_EQ(monitor.MeanMasterCpu(), 0.0);
  EXPECT_EQ(monitor.MaxLagEvents(), 0);
  EXPECT_DOUBLE_EQ(monitor.SlaveSaturatedFraction(0, 0.5), 0.0);
}

TEST_F(ClusterMonitorTest, LoadShowsUpInUtilizationAndBacklog) {
  ClusterMonitor monitor = MakeMonitor(Seconds(1));
  monitor.Start();
  // Saturate slave 0 with reads and push writes through the master.
  for (int i = 0; i < 100; ++i) {
    cluster_->slave(0)->Submit("SELECT COUNT(*) FROM t", Millis(80),
                               [](Result<db::ExecResult>) {});
  }
  for (int i = 0; i < 50; ++i) {
    cluster_->master()->Submit(
        StrFormat("INSERT INTO t VALUES (%d)", i), Millis(20),
        [](Result<db::ExecResult>) {});
  }
  sim_.RunUntil(sim_.Now() + Seconds(5));
  // While slave 0's CPU is busy with reads, its applies queue: lag > 0.
  EXPECT_GT(monitor.MaxLagEvents(), 0);
  EXPECT_GT(monitor.MeanMasterCpu(), 0.0);
  EXPECT_GT(monitor.SlaveSaturatedFraction(0, 0.9), 0.5);
  monitor.Stop();
  sim_.Run();
  // Utilizations stay within [0, 1] throughout.
  for (const MonitorSample& sample : monitor.samples()) {
    EXPECT_GE(sample.master_cpu, 0.0);
    EXPECT_LE(sample.master_cpu, 1.0 + 1e-9);
    for (double u : sample.slave_cpu) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0 + 1e-9);
    }
  }
}

TEST_F(ClusterMonitorTest, TableHasOneRowPerSample) {
  ClusterMonitor monitor = MakeMonitor(Millis(500));
  monitor.Start();
  sim_.RunUntil(sim_.Now() + Seconds(3));
  monitor.Stop();
  sim_.Run();
  TableWriter table = monitor.ToTable();
  EXPECT_EQ(table.num_rows(), monitor.samples().size());
  std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("master_cpu"), std::string::npos);
  EXPECT_NE(csv.find("slave2_backlog"), std::string::npos);
}

TEST_F(ClusterMonitorTest, StopHaltsSampling) {
  ClusterMonitor monitor = MakeMonitor(Seconds(1));
  monitor.Start();
  sim_.RunUntil(sim_.Now() + Seconds(3));
  monitor.Stop();
  size_t count = monitor.samples().size();
  sim_.RunUntil(sim_.Now() + Seconds(10));
  sim_.Run();
  EXPECT_EQ(monitor.samples().size(), count);
}

}  // namespace
}  // namespace clouddb::repl
