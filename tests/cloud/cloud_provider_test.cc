#include "cloud/cloud_provider.h"

#include <gtest/gtest.h>

#include "cloud/placement.h"
#include "common/stats.h"
#include "sim/simulation.h"
#include "cloud/instance.h"
#include "common/time_types.h"

namespace clouddb::cloud {
namespace {

TEST(PlacementTest, ProximityClassification) {
  EXPECT_EQ(ClassifyProximity(MasterPlacement(), SameZonePlacement()),
            Proximity::kSameZone);
  EXPECT_EQ(ClassifyProximity(MasterPlacement(), DifferentZonePlacement()),
            Proximity::kDifferentZone);
  EXPECT_EQ(ClassifyProximity(MasterPlacement(), DifferentRegionPlacement()),
            Proximity::kDifferentRegion);
}

TEST(PlacementTest, PaperPlacements) {
  EXPECT_EQ(MasterPlacement().zone, "us-west-1a");
  EXPECT_EQ(DifferentZonePlacement().zone, "us-west-1b");
  EXPECT_EQ(DifferentZonePlacement().region, "us-west");
  EXPECT_EQ(DifferentRegionPlacement().region, "eu-west");
}

TEST(InstanceSpecTest, TypesHaveExpectedShape) {
  InstanceSpec small = SpecFor(InstanceType::kSmall);
  InstanceSpec large = SpecFor(InstanceType::kLarge);
  EXPECT_EQ(small.cores, 1);
  EXPECT_GT(large.cores, small.cores);
  EXPECT_GT(large.base_speed, small.base_speed);
}

class CloudProviderTest : public ::testing::Test {
 protected:
  sim::Simulation sim_;
  CloudOptions options_;
};

TEST_F(CloudProviderTest, LaunchAssignsSequentialNodeIds) {
  CloudProvider provider(&sim_, options_, 1);
  Instance* a = provider.Launch("a", InstanceType::kSmall, MasterPlacement());
  Instance* b = provider.Launch("b", InstanceType::kSmall, MasterPlacement());
  EXPECT_EQ(a->node_id(), 0);
  EXPECT_EQ(b->node_id(), 1);
  EXPECT_EQ(provider.FindByNode(0), a);
  EXPECT_EQ(provider.FindByNode(1), b);
  EXPECT_EQ(provider.FindByNode(99), nullptr);
  EXPECT_EQ(provider.instances().size(), 2u);
}

TEST_F(CloudProviderTest, SpeedFactorsWithinConfiguredBounds) {
  CloudProvider provider(&sim_, options_, 2);
  for (int i = 0; i < 50; ++i) {
    Instance* inst =
        provider.Launch("x", InstanceType::kSmall, MasterPlacement());
    EXPECT_GE(inst->speed_factor(), options_.min_speed_factor);
    EXPECT_LE(inst->speed_factor(), options_.max_speed_factor);
  }
}

TEST_F(CloudProviderTest, SpeedFactorsVaryAcrossInstances) {
  // The paper: "the coefficient of variation of CPU of small instances is
  // 21%"; our instances must actually differ.
  CloudProvider provider(&sim_, options_, 3);
  Sample speeds;
  for (int i = 0; i < 200; ++i) {
    speeds.Add(provider
                   .Launch("x", InstanceType::kSmall, MasterPlacement())
                   ->speed_factor());
  }
  EXPECT_NEAR(speeds.Mean(), 1.0, 0.05);
  EXPECT_GT(speeds.StdDev(), 0.1);
  EXPECT_LT(speeds.StdDev(), 0.3);
}

TEST_F(CloudProviderTest, PerfVariationCanBeDisabled) {
  options_.cpu_speed_cov = 0.0;
  CloudProvider provider(&sim_, options_, 4);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(
        provider.Launch("x", InstanceType::kSmall, MasterPlacement())
            ->speed_factor(),
        1.0);
  }
}

TEST_F(CloudProviderTest, DeterministicUnderSeed) {
  CloudProvider p1(&sim_, options_, 42);
  CloudProvider p2(&sim_, options_, 42);
  for (int i = 0; i < 10; ++i) {
    Instance* a = p1.Launch("x", InstanceType::kSmall, MasterPlacement());
    Instance* b = p2.Launch("x", InstanceType::kSmall, MasterPlacement());
    EXPECT_DOUBLE_EQ(a->speed_factor(), b->speed_factor());
    EXPECT_EQ(a->clock().drift_ppm(), b->clock().drift_ppm());
  }
}

TEST_F(CloudProviderTest, LatencyOrderedByProximity) {
  options_.latency_jitter_sigma = 0.0;  // deterministic for this test
  CloudProvider provider(&sim_, options_, 5);
  Instance* master =
      provider.Launch("m", InstanceType::kSmall, MasterPlacement());
  Instance* same =
      provider.Launch("s1", InstanceType::kSmall, SameZonePlacement());
  Instance* zone =
      provider.Launch("s2", InstanceType::kSmall, DifferentZonePlacement());
  Instance* region =
      provider.Launch("s3", InstanceType::kSmall, DifferentRegionPlacement());
  SimDuration d_same = provider.SampleOneWay(master->node_id(), same->node_id());
  SimDuration d_zone = provider.SampleOneWay(master->node_id(), zone->node_id());
  SimDuration d_region =
      provider.SampleOneWay(master->node_id(), region->node_id());
  // Defaults reproduce the paper's 16 / 21 / 173 ms half-RTTs.
  EXPECT_EQ(d_same, Millis(16));
  EXPECT_EQ(d_zone, Millis(21));
  EXPECT_EQ(d_region, Millis(173));
  EXPECT_LT(d_same, d_zone);
  EXPECT_LT(d_zone, d_region);
}

TEST_F(CloudProviderTest, LoopbackIsCheap) {
  CloudProvider provider(&sim_, options_, 6);
  Instance* a = provider.Launch("a", InstanceType::kSmall, MasterPlacement());
  EXPECT_EQ(provider.SampleOneWay(a->node_id(), a->node_id()),
            options_.loopback_one_way);
}

TEST_F(CloudProviderTest, JitterProducesVariation) {
  CloudProvider provider(&sim_, options_, 7);
  Instance* a = provider.Launch("a", InstanceType::kSmall, MasterPlacement());
  Instance* b =
      provider.Launch("b", InstanceType::kSmall, DifferentRegionPlacement());
  Sample delays;
  for (int i = 0; i < 200; ++i) {
    delays.Add(static_cast<double>(
        provider.SampleOneWay(a->node_id(), b->node_id())));
  }
  EXPECT_GT(delays.StdDev(), 0.0);
  // Mean within 10% of the configured base.
  EXPECT_NEAR(delays.Mean(), static_cast<double>(Millis(173)),
              static_cast<double>(Millis(173)) * 0.1);
}

TEST_F(CloudProviderTest, InstanceClockOffsetsWithinBounds) {
  CloudProvider provider(&sim_, options_, 8);
  for (int i = 0; i < 50; ++i) {
    Instance* inst =
        provider.Launch("x", InstanceType::kSmall, MasterPlacement());
    EXPECT_LE(std::abs(inst->clock().OffsetAt(0)),
              options_.max_initial_clock_offset);
    EXPECT_LE(std::abs(inst->clock().drift_ppm()),
              options_.max_clock_drift_ppm);
  }
}

TEST_F(CloudProviderTest, LocalNowUsesInstanceClock) {
  CloudProvider provider(&sim_, options_, 9);
  Instance* inst =
      provider.Launch("x", InstanceType::kSmall, MasterPlacement());
  sim_.FastForwardTo(Seconds(10));
  EXPECT_EQ(inst->LocalNowMicros(), inst->clock().NowMicros(Seconds(10)));
}

}  // namespace
}  // namespace clouddb::cloud
