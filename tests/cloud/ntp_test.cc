#include "cloud/ntp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cloud/cloud_provider.h"
#include "common/stats.h"
#include "sim/simulation.h"
#include "cloud/instance.h"
#include "cloud/placement.h"
#include "common/time_types.h"

namespace clouddb::cloud {
namespace {

class NtpTest : public ::testing::Test {
 protected:
  NtpTest() : provider_(&sim_, options_, 77) {
    a_ = provider_.Launch("a", InstanceType::kSmall, MasterPlacement());
    b_ = provider_.Launch("b", InstanceType::kSmall, MasterPlacement());
  }

  sim::Simulation sim_;
  CloudOptions options_;
  CloudProvider provider_{&sim_, options_, 77};
  Instance* a_;
  Instance* b_;
};

TEST_F(NtpTest, SyncOnceStepsClockNearTruth) {
  NtpOptions ntp;
  NtpClient client(&sim_, a_, ntp, 1);
  client.SyncOnce();
  // After a sync the offset is bias + noise: bounded by a few ms.
  double offset_ms = std::abs(static_cast<double>(a_->clock().OffsetAt(0))) /
                     1000.0;
  EXPECT_LT(offset_ms, ntp.max_bias_ms + 5 * ntp.residual_noise_ms);
  EXPECT_EQ(client.syncs_performed(), 1);
}

TEST_F(NtpTest, PeriodicSyncRunsEverySecond) {
  NtpOptions ntp;
  NtpClient client(&sim_, a_, ntp, 2);
  client.StartPeriodic();
  sim_.RunUntil(Seconds(10));
  client.Stop();
  sim_.Run();
  // Syncs at t=0..10s inclusive boundaries: 11 ticks.
  EXPECT_EQ(client.syncs_performed(), 11);
}

TEST_F(NtpTest, StopCancelsFutureSyncs) {
  NtpOptions ntp;
  NtpClient client(&sim_, a_, ntp, 3);
  client.StartPeriodic();
  sim_.RunUntil(Seconds(2));
  client.Stop();
  int64_t count = client.syncs_performed();
  sim_.RunUntil(Seconds(60));
  sim_.Run();
  EXPECT_EQ(client.syncs_performed(), count);
}

TEST_F(NtpTest, SyncOnceThenDriftGrowsDifference) {
  // The Fig. 4 "sync once at beginning" scenario: the difference between two
  // instances grows roughly linearly with time.
  NtpOptions ntp;
  NtpClient ca(&sim_, a_, ntp, 4);
  NtpClient cb(&sim_, b_, ntp, 5);
  ca.SyncOnce();
  cb.SyncOnce();
  ClockComparison comparison(&sim_, a_, b_);
  comparison.Start(Seconds(60), 21);  // every minute for 20 minutes
  sim_.Run();
  const auto& diffs = comparison.differences_ms();
  ASSERT_EQ(diffs.size(), 21u);
  double relative_drift_ppm =
      std::abs(a_->clock().drift_ppm() - b_->clock().drift_ppm());
  if (relative_drift_ppm > 5.0) {
    // Later samples must exceed earlier ones by roughly drift * elapsed.
    EXPECT_GT(diffs.back(), diffs.front());
    double expected_growth_ms = relative_drift_ppm * 1e-6 * 1200.0 * 1000.0;
    EXPECT_NEAR(diffs.back() - diffs.front(), expected_growth_ms,
                expected_growth_ms * 0.2 + 1.0);
  }
}

TEST_F(NtpTest, PeriodicSyncKeepsDifferenceBounded) {
  // The Fig. 4 "sync every second" scenario: differences stay within a few
  // milliseconds for the whole 20 minutes.
  NtpOptions ntp;
  NtpClient ca(&sim_, a_, ntp, 6);
  NtpClient cb(&sim_, b_, ntp, 7);
  ca.StartPeriodic();
  cb.StartPeriodic();
  ClockComparison comparison(&sim_, a_, b_);
  comparison.Start(Seconds(1), 1200);
  sim_.RunUntil(Minutes(20) + Seconds(1));
  ca.Stop();
  cb.Stop();
  sim_.Run();
  Sample diffs;
  diffs.AddAll(comparison.differences_ms());
  ASSERT_EQ(diffs.count(), 1200u);
  // Bounded: max difference well under what drift alone would produce.
  EXPECT_LT(diffs.Max(), 2.0 * (2.0 * ntp.max_bias_ms) + 10.0);
  // And the median is a few ms (paper: 3.30 ms).
  EXPECT_LT(diffs.Median(), 10.0);
}

TEST_F(NtpTest, PeriodicBeatsSyncOnceOverTwentyMinutes) {
  // Head-to-head comparison backing Fig. 4's conclusion.
  NtpOptions ntp;
  // Force meaningful relative drift so the sync-once case degrades.
  a_->clock().set_drift_ppm(18.0);
  b_->clock().set_drift_ppm(-18.0);

  NtpClient ca(&sim_, a_, ntp, 8);
  NtpClient cb(&sim_, b_, ntp, 9);
  ca.SyncOnce();
  cb.SyncOnce();
  ClockComparison once(&sim_, a_, b_);
  once.Start(Seconds(1), 1200);
  sim_.RunUntil(Minutes(20) + Seconds(1));
  Sample once_sample;
  once_sample.AddAll(once.differences_ms());

  // Now enable per-second sync and measure again.
  ca.StartPeriodic();
  cb.StartPeriodic();
  ClockComparison periodic(&sim_, a_, b_);
  periodic.Start(Seconds(1), 1200);
  sim_.RunUntil(Minutes(40) + Seconds(2));
  ca.Stop();
  cb.Stop();
  sim_.Run();
  Sample periodic_sample;
  periodic_sample.AddAll(periodic.differences_ms());

  EXPECT_GT(once_sample.Max(), periodic_sample.Max());
  EXPECT_GT(once_sample.StdDev(), periodic_sample.StdDev());
}

TEST_F(NtpTest, ClockComparisonSamplesAbsoluteDifference) {
  a_->clock().StepTo(0, Millis(10));
  b_->clock().StepTo(0, Millis(-5));
  a_->clock().set_drift_ppm(0);
  b_->clock().set_drift_ppm(0);
  ClockComparison comparison(&sim_, a_, b_);
  comparison.Start(Seconds(1), 3);
  sim_.Run();
  ASSERT_EQ(comparison.differences_ms().size(), 3u);
  for (double d : comparison.differences_ms()) {
    EXPECT_NEAR(d, 15.0, 0.2);
  }
}

}  // namespace
}  // namespace clouddb::cloud
