#include "client/rw_split_proxy.h"

#include <gtest/gtest.h>

#include "cloud/cloud_provider.h"
#include "repl/replication_cluster.h"
#include "cloud/instance.h"
#include "cloud/placement.h"
#include "common/result.h"
#include "common/time_types.h"
#include "db/database.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"

namespace clouddb::client {
namespace {

class RwSplitProxyTest : public ::testing::Test {
 protected:
  RwSplitProxyTest() {
    options_.latency_jitter_sigma = 0.0;
    options_.cpu_speed_cov = 0.0;
    options_.max_initial_clock_offset = 0;
    options_.max_clock_drift_ppm = 0.0;
  }

  void MakeDeployment(int slaves, BalancePolicy policy) {
    provider_ = std::make_unique<cloud::CloudProvider>(&sim_, options_, 1);
    repl::ClusterConfig config;
    config.num_slaves = slaves;
    cluster_ = std::make_unique<repl::ReplicationCluster>(provider_.get(),
                                                          config);
    app_ = provider_->Launch("app", cloud::InstanceType::kLarge,
                             cloud::MasterPlacement());
    ProxyOptions proxy_options;
    proxy_options.policy = policy;
    std::vector<repl::SlaveNode*> slave_ptrs;
    for (int i = 0; i < slaves; ++i) slave_ptrs.push_back(cluster_->slave(i));
    proxy_ = std::make_unique<ReadWriteSplitProxy>(
        &sim_, &provider_->network(), app_->node_id(), cluster_->master(),
        slave_ptrs, proxy_options);
    ASSERT_TRUE(
        cluster_->ExecuteEverywhereDirect("CREATE TABLE t (a INT)").ok());
  }

  sim::Simulation sim_;
  cloud::CloudOptions options_;
  std::unique_ptr<cloud::CloudProvider> provider_;
  std::unique_ptr<repl::ReplicationCluster> cluster_;
  cloud::Instance* app_ = nullptr;
  std::unique_ptr<ReadWriteSplitProxy> proxy_;
};

TEST_F(RwSplitProxyTest, WritesGoToMaster) {
  MakeDeployment(2, BalancePolicy::kRoundRobin);
  for (int i = 0; i < 5; ++i) {
    proxy_->Execute("INSERT INTO t VALUES (1)", /*is_read=*/false, Millis(5),
                    [](Result<db::ExecResult> r) { ASSERT_TRUE(r.ok()); });
  }
  sim_.Run();
  EXPECT_EQ(proxy_->writes_routed(), 5);
  EXPECT_EQ(proxy_->total_reads_routed(), 0);
  EXPECT_EQ(cluster_->master()->queries_completed(), 5 + 0);
}

TEST_F(RwSplitProxyTest, RoundRobinSpreadsReadsEvenly) {
  MakeDeployment(3, BalancePolicy::kRoundRobin);
  for (int i = 0; i < 9; ++i) {
    proxy_->Execute("SELECT COUNT(*) FROM t", /*is_read=*/true, Millis(5),
                    [](Result<db::ExecResult> r) { ASSERT_TRUE(r.ok()); });
  }
  sim_.Run();
  EXPECT_EQ(proxy_->reads_routed(0), 3);
  EXPECT_EQ(proxy_->reads_routed(1), 3);
  EXPECT_EQ(proxy_->reads_routed(2), 3);
  EXPECT_EQ(proxy_->writes_routed(), 0);
}

TEST_F(RwSplitProxyTest, NoSlavesSendsReadsToMaster) {
  MakeDeployment(0, BalancePolicy::kRoundRobin);
  int done = 0;
  proxy_->Execute("SELECT COUNT(*) FROM t", /*is_read=*/true, Millis(5),
                  [&](Result<db::ExecResult> r) {
                    ASSERT_TRUE(r.ok());
                    ++done;
                  });
  sim_.Run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(cluster_->master()->queries_completed(), 1);
}

TEST_F(RwSplitProxyTest, LeastOutstandingAvoidsBusySlave) {
  MakeDeployment(2, BalancePolicy::kLeastOutstanding);
  // The first read goes to slave 0 (tie broken by index) and gets stuck
  // behind a 100-second CPU job, staying "outstanding" for the whole test.
  cluster_->slave(0)->instance().cpu().Submit(Seconds(100), [] {});
  proxy_->Execute("SELECT COUNT(*) FROM t", true, Millis(1),
                  [](Result<db::ExecResult>) {});
  // Subsequent reads are issued one at a time, each after the previous one
  // completes; slave 0 always has 1 outstanding, so all go to slave 1.
  std::function<void(int)> chain = [&](int remaining) {
    if (remaining == 0) return;
    proxy_->Execute("SELECT COUNT(*) FROM t", true, Millis(1),
                    [&, remaining](Result<db::ExecResult>) {
                      chain(remaining - 1);
                    });
  };
  chain(5);
  sim_.Run();
  EXPECT_EQ(proxy_->reads_routed(0), 1);
  EXPECT_EQ(proxy_->reads_routed(1), 5);
}

TEST_F(RwSplitProxyTest, LatencyWeightedPrefersFastSlave) {
  MakeDeployment(2, BalancePolicy::kLatencyWeighted);
  // Slow down slave 0 dramatically.
  // (Issue interleaved reads; the policy should learn to prefer slave 1.)
  int completed = 0;
  std::function<void(int)> issue = [&](int remaining) {
    if (remaining == 0) return;
    proxy_->Execute("SELECT COUNT(*) FROM t", true, Millis(5),
                    [&, remaining](Result<db::ExecResult>) {
                      ++completed;
                      issue(remaining - 1);
                    });
  };
  // Make slave 0 very slow by keeping its CPU busy the whole time.
  cluster_->slave(0)->instance().cpu().Submit(Seconds(100), [] {});
  issue(20);
  sim_.Run();
  EXPECT_EQ(completed, 20);
  // After the first probe of each slave, everything goes to slave 1.
  EXPECT_LE(proxy_->reads_routed(0), 2);
  EXPECT_GE(proxy_->reads_routed(1), 18);
}

TEST_F(RwSplitProxyTest, ExecuteAutoClassifiesStatements) {
  MakeDeployment(1, BalancePolicy::kRoundRobin);
  proxy_->ExecuteAuto("INSERT INTO t VALUES (2)", Millis(5),
                      [](Result<db::ExecResult> r) { ASSERT_TRUE(r.ok()); });
  proxy_->ExecuteAuto("SELECT COUNT(*) FROM t", Millis(5),
                      [](Result<db::ExecResult> r) { ASSERT_TRUE(r.ok()); });
  sim_.Run();
  EXPECT_EQ(proxy_->writes_routed(), 1);
  EXPECT_EQ(proxy_->total_reads_routed(), 1);
}

TEST_F(RwSplitProxyTest, ReadYourWritesCanBeStale) {
  // The paper's staleness window, observable through the proxy: a read sent
  // immediately after a write completes may not see it on the slave.
  MakeDeployment(1, BalancePolicy::kRoundRobin);
  int64_t read_count = -1;
  proxy_->Execute(
      "INSERT INTO t VALUES (42)", false, Millis(5),
      [&](Result<db::ExecResult> r) {
        ASSERT_TRUE(r.ok());
        proxy_->Execute("SELECT COUNT(*) FROM t", true, Millis(5),
                        [&](Result<db::ExecResult> rr) {
                          ASSERT_TRUE(rr.ok());
                          read_count = rr->rows[0][0].AsInt64();
                        });
      });
  sim_.Run();
  // With same-zone latencies the slave applies the event (~20ms after
  // commit) before the read arrives (~32ms later: round trip to the app and
  // back), so this read *does* see the write. The invariant that always
  // holds is eventual consistency:
  EXPECT_GE(read_count, 0);
  EXPECT_TRUE(cluster_->Converged());
}

TEST_F(RwSplitProxyTest, PolicyNamesRender) {
  EXPECT_STREQ(BalancePolicyToString(BalancePolicy::kRoundRobin),
               "round_robin");
  EXPECT_STREQ(BalancePolicyToString(BalancePolicy::kLeastOutstanding),
               "least_outstanding");
  EXPECT_STREQ(BalancePolicyToString(BalancePolicy::kLatencyWeighted),
               "latency_weighted");
}

}  // namespace
}  // namespace clouddb::client
