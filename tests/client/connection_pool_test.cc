#include "client/connection_pool.h"

#include <gtest/gtest.h>

#include "cloud/cloud_provider.h"
#include "repl/master_node.h"
#include "client/connection.h"
#include "cloud/instance.h"
#include "cloud/placement.h"
#include "common/result.h"
#include "common/status.h"
#include "common/time_types.h"
#include "db/database.h"
#include "repl/cost_model.h"
#include "sim/simulation.h"

namespace clouddb::client {
namespace {

/// Fixture: one app node and one database node on a deterministic cloud.
class ConnectionPoolTest : public ::testing::Test {
 protected:
  ConnectionPoolTest() {
    options_.latency_jitter_sigma = 0.0;
    options_.cpu_speed_cov = 0.0;
    options_.max_initial_clock_offset = 0;
    options_.max_clock_drift_ppm = 0.0;
    provider_ = std::make_unique<cloud::CloudProvider>(&sim_, options_, 1);
    app_ = provider_->Launch("app", cloud::InstanceType::kLarge,
                             cloud::MasterPlacement());
    db_instance_ = provider_->Launch("db", cloud::InstanceType::kSmall,
                                     cloud::MasterPlacement());
    node_ = std::make_unique<repl::MasterNode>(&sim_, &provider_->network(),
                                               db_instance_, repl::CostModel{});
    EXPECT_TRUE(node_->ExecuteDirect("CREATE TABLE t (a INT)").ok());
  }

  ConnectionPool MakePool(int max_active) {
    ConnectionPoolOptions opts;
    opts.max_active = max_active;
    return ConnectionPool(&sim_, &provider_->network(), app_->node_id(),
                          node_.get(), opts);
  }

  sim::Simulation sim_;
  cloud::CloudOptions options_;
  std::unique_ptr<cloud::CloudProvider> provider_;
  cloud::Instance* app_;
  cloud::Instance* db_instance_;
  std::unique_ptr<repl::MasterNode> node_;
};

TEST_F(ConnectionPoolTest, FirstBorrowPaysHandshake) {
  ConnectionPool pool = MakePool(4);
  SimTime got_at = -1;
  pool.Borrow([&](Connection* conn) {
    got_at = sim_.Now();
    pool.Return(conn);
  });
  sim_.Run();
  // Handshake = one round trip at same-zone latency (16ms each way).
  EXPECT_EQ(got_at, 2 * options_.same_zone_one_way);
  EXPECT_EQ(pool.handshakes_performed(), 1);
  EXPECT_EQ(pool.total_connections(), 1);
}

TEST_F(ConnectionPoolTest, ReturnedConnectionIsReusedWithoutHandshake) {
  ConnectionPool pool = MakePool(4);
  pool.Borrow([&](Connection* conn) { pool.Return(conn); });
  sim_.Run();
  SimTime before = sim_.Now();
  SimTime got_at = -1;
  pool.Borrow([&](Connection* conn) {
    got_at = sim_.Now();
    pool.Return(conn);
  });
  sim_.Run();
  EXPECT_EQ(got_at, before);  // immediate, no handshake
  EXPECT_EQ(pool.handshakes_performed(), 1);
  EXPECT_EQ(pool.borrows_served(), 2);
}

TEST_F(ConnectionPoolTest, GrowsUpToMaxActive) {
  ConnectionPool pool = MakePool(3);
  std::vector<Connection*> held;
  for (int i = 0; i < 3; ++i) {
    pool.Borrow([&](Connection* conn) { held.push_back(conn); });
  }
  sim_.Run();
  EXPECT_EQ(held.size(), 3u);
  EXPECT_EQ(pool.total_connections(), 3);
  EXPECT_EQ(pool.idle_count(), 0u);
}

TEST_F(ConnectionPoolTest, ExhaustedBorrowersWaitFifo) {
  ConnectionPool pool = MakePool(1);
  Connection* first = nullptr;
  pool.Borrow([&](Connection* conn) { first = conn; });
  std::vector<int> service_order;
  pool.Borrow([&](Connection* conn) {
    service_order.push_back(1);
    pool.Return(conn);
  });
  pool.Borrow([&](Connection* conn) {
    service_order.push_back(2);
    pool.Return(conn);
  });
  sim_.Run();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(pool.waiting_borrowers(), 2u);
  pool.Return(first);  // hands the connection to waiter 1, then 2
  sim_.Run();
  EXPECT_EQ(service_order, (std::vector<int>{1, 2}));
  EXPECT_EQ(pool.total_connections(), 1);
}

TEST_F(ConnectionPoolTest, ExecuteRoundTripsThroughNetworkAndCpu) {
  ConnectionPool pool = MakePool(2);
  SimTime done_at = -1;
  int64_t count = -1;
  pool.Execute("SELECT COUNT(*) FROM t", Millis(10),
               [&](Result<db::ExecResult> r) {
                 ASSERT_TRUE(r.ok());
                 count = r->rows[0][0].AsInt64();
                 done_at = sim_.Now();
               });
  sim_.Run();
  EXPECT_EQ(count, 0);
  // Handshake RTT + request one-way + 10ms CPU + response one-way.
  EXPECT_EQ(done_at, 4 * options_.same_zone_one_way + Millis(10));
  EXPECT_EQ(pool.idle_count(), 1u);  // returned after use
}

TEST_F(ConnectionPoolTest, ConnectionTracksResponseStats) {
  ConnectionPool pool = MakePool(1);
  Connection* conn = nullptr;
  pool.Borrow([&](Connection* c) { conn = c; });
  sim_.Run();
  ASSERT_NE(conn, nullptr);
  conn->Execute("SELECT COUNT(*) FROM t", Millis(10),
                [&](Result<db::ExecResult>) {});
  sim_.Run();
  EXPECT_EQ(conn->requests_completed(), 1);
  EXPECT_DOUBLE_EQ(
      conn->MeanResponseMicros(),
      static_cast<double>(2 * options_.same_zone_one_way + Millis(10)));
  EXPECT_FALSE(conn->busy());
}

TEST_F(ConnectionPoolTest, ErrorsPropagateAndConnectionIsReturned) {
  ConnectionPool pool = MakePool(1);
  Status seen;
  pool.Execute("SELECT * FROM missing_table", Millis(1),
               [&](Result<db::ExecResult> r) { seen = r.status(); });
  sim_.Run();
  EXPECT_TRUE(seen.IsNotFound());
  EXPECT_EQ(pool.idle_count(), 1u);
}

}  // namespace
}  // namespace clouddb::client
