#include "harness/experiment.h"
#include "cloud/placement.h"
#include "common/time_types.h"

#include <gtest/gtest.h>

namespace clouddb::harness {
namespace {

/// A short-but-real experiment configuration (minutes instead of the paper's
/// 35-minute runs; the machinery exercised is identical).
ExperimentConfig QuickConfig() {
  ExperimentConfig config;
  config.data_scale = 40;
  config.num_slaves = 1;
  config.num_users = 20;
  config.idle_window = Seconds(40);
  config.benchmark.ramp_up = Seconds(60);
  config.benchmark.steady = Seconds(180);
  config.benchmark.ramp_down = Seconds(30);
  config.benchmark.think_time_mean = Seconds(5);
  config.seed = 1234;
  return config;
}

TEST(ExperimentTest, QuickRunProducesSaneMetrics) {
  auto outcome = RunExperiment(QuickConfig());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const ExperimentResult& r = *outcome;
  EXPECT_GT(r.benchmark.throughput_ops, 1.0);
  EXPECT_LT(r.benchmark.throughput_ops, 10.0);
  EXPECT_TRUE(r.fully_replicated);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.heartbeats_issued, 200);  // roughly one per second of run
  EXPECT_GT(r.binlog_events, 0);
  ASSERT_EQ(r.relative_delay_ms.size(), 1u);
  // Low load: relative delay is modest but the loaded window shows *some*
  // extra queueing over idle.
  EXPECT_GT(r.loaded_delay_ms[0], r.idle_delay_ms[0]);
  EXPECT_LT(r.relative_delay_ms[0], 5000.0);
  EXPECT_DOUBLE_EQ(r.mean_relative_delay_ms, r.relative_delay_ms[0]);
}

TEST(ExperimentTest, DeterministicUnderSeed) {
  auto a = RunExperiment(QuickConfig());
  auto b = RunExperiment(QuickConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->benchmark.throughput_ops, b->benchmark.throughput_ops);
  EXPECT_DOUBLE_EQ(a->mean_relative_delay_ms, b->mean_relative_delay_ms);
  EXPECT_EQ(a->binlog_events, b->binlog_events);
}

TEST(ExperimentTest, StatementCacheAblationIsBitIdentical) {
  // The fig2-style invariant for this optimization: the statement cache only
  // removes redundant parsing work, so every measured number — throughput,
  // response times, delays, replication counters — must be bit-identical
  // with the cache on and off.
  ExperimentConfig config = QuickConfig();
  config.statement_cache = true;
  auto on = RunExperiment(config);
  config.statement_cache = false;
  auto off = RunExperiment(config);
  ASSERT_TRUE(on.ok());
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(on->benchmark.throughput_ops, off->benchmark.throughput_ops);
  EXPECT_EQ(on->benchmark.read_throughput_ops,
            off->benchmark.read_throughput_ops);
  EXPECT_EQ(on->benchmark.write_throughput_ops,
            off->benchmark.write_throughput_ops);
  EXPECT_EQ(on->benchmark.mean_response_ms, off->benchmark.mean_response_ms);
  EXPECT_EQ(on->benchmark.p95_response_ms, off->benchmark.p95_response_ms);
  EXPECT_EQ(on->benchmark.completed_ops, off->benchmark.completed_ops);
  EXPECT_EQ(on->benchmark.failed_ops, off->benchmark.failed_ops);
  EXPECT_EQ(on->benchmark.master_cpu_utilization,
            off->benchmark.master_cpu_utilization);
  EXPECT_EQ(on->benchmark.slave_cpu_utilization,
            off->benchmark.slave_cpu_utilization);
  EXPECT_EQ(on->idle_delay_ms, off->idle_delay_ms);
  EXPECT_EQ(on->loaded_delay_ms, off->loaded_delay_ms);
  EXPECT_EQ(on->relative_delay_ms, off->relative_delay_ms);
  EXPECT_EQ(on->mean_relative_delay_ms, off->mean_relative_delay_ms);
  EXPECT_EQ(on->fully_replicated, off->fully_replicated);
  EXPECT_EQ(on->converged, off->converged);
  EXPECT_EQ(on->heartbeats_issued, off->heartbeats_issued);
  EXPECT_EQ(on->binlog_events, off->binlog_events);
  // The run itself exercised the caches: hits on every layer that parses.
  EXPECT_GT(on->benchmark.statement_cache_hits, 0);
  EXPECT_GT(on->benchmark.route_cache_hits, 0);
  EXPECT_EQ(off->benchmark.statement_cache_hits, 0);
  EXPECT_EQ(off->benchmark.route_cache_hits, 0);
}

TEST(ExperimentTest, VectorizedExecAblationIsBitIdentical) {
  // Same invariant for the vectorized engine: chunked filtering, compiled
  // predicate bytecode, and fused aggregation change only how WHERE clauses
  // and aggregates are evaluated, never what they produce — so every
  // measured number must be bit-identical with the engine on and off.
  ExperimentConfig config = QuickConfig();
  config.vectorized_exec = true;
  auto on = RunExperiment(config);
  config.vectorized_exec = false;
  auto off = RunExperiment(config);
  ASSERT_TRUE(on.ok());
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(on->benchmark.throughput_ops, off->benchmark.throughput_ops);
  EXPECT_EQ(on->benchmark.read_throughput_ops,
            off->benchmark.read_throughput_ops);
  EXPECT_EQ(on->benchmark.write_throughput_ops,
            off->benchmark.write_throughput_ops);
  EXPECT_EQ(on->benchmark.mean_response_ms, off->benchmark.mean_response_ms);
  EXPECT_EQ(on->benchmark.p95_response_ms, off->benchmark.p95_response_ms);
  EXPECT_EQ(on->benchmark.completed_ops, off->benchmark.completed_ops);
  EXPECT_EQ(on->benchmark.failed_ops, off->benchmark.failed_ops);
  EXPECT_EQ(on->benchmark.master_cpu_utilization,
            off->benchmark.master_cpu_utilization);
  EXPECT_EQ(on->benchmark.slave_cpu_utilization,
            off->benchmark.slave_cpu_utilization);
  EXPECT_EQ(on->idle_delay_ms, off->idle_delay_ms);
  EXPECT_EQ(on->loaded_delay_ms, off->loaded_delay_ms);
  EXPECT_EQ(on->relative_delay_ms, off->relative_delay_ms);
  EXPECT_EQ(on->mean_relative_delay_ms, off->mean_relative_delay_ms);
  EXPECT_EQ(on->fully_replicated, off->fully_replicated);
  EXPECT_EQ(on->converged, off->converged);
  EXPECT_EQ(on->heartbeats_issued, off->heartbeats_issued);
  EXPECT_EQ(on->binlog_events, off->binlog_events);
}

TEST(ExperimentTest, DifferentSeedsDiffer) {
  ExperimentConfig config = QuickConfig();
  auto a = RunExperiment(config);
  config.seed = 4321;
  auto b = RunExperiment(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->benchmark.throughput_ops, b->benchmark.throughput_ops);
}

TEST(ExperimentTest, MoreSlavesReduceRelativeDelayUnderLoad) {
  // The paper's core delay finding: "as the number of slaves increases, the
  // replication delay decreases". Use a load that saturates one slave.
  ExperimentConfig config = QuickConfig();
  config.num_users = 80;
  config.num_slaves = 1;
  auto one = RunExperiment(config);
  config.num_slaves = 3;
  auto three = RunExperiment(config);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(three.ok());
  EXPECT_GT(one->mean_relative_delay_ms, three->mean_relative_delay_ms);
}

TEST(ExperimentTest, MoreUsersIncreaseRelativeDelay) {
  // "...as the number of workload increases, the replication delay
  // increases."
  ExperimentConfig config = QuickConfig();
  config.num_users = 10;
  auto light = RunExperiment(config);
  config.num_users = 90;
  auto heavy = RunExperiment(config);
  ASSERT_TRUE(light.ok());
  ASSERT_TRUE(heavy.ok());
  EXPECT_GT(heavy->mean_relative_delay_ms, light->mean_relative_delay_ms);
  EXPECT_GT(heavy->benchmark.throughput_ops, light->benchmark.throughput_ops);
}

TEST(ExperimentTest, DifferentRegionLowersThroughputAtFixedWorkload) {
  // Sub-saturation: longer read round trips slow the closed loop.
  ExperimentConfig config = QuickConfig();
  config.num_users = 20;
  config.location = LocationConfig::kSameZone;
  auto near = RunExperiment(config);
  config.location = LocationConfig::kDifferentRegion;
  auto far = RunExperiment(config);
  ASSERT_TRUE(near.ok());
  ASSERT_TRUE(far.ok());
  EXPECT_GT(near->benchmark.throughput_ops, far->benchmark.throughput_ops);
}

TEST(ExperimentTest, SynchronousReplicationStillConverges) {
  ExperimentConfig config = QuickConfig();
  config.synchronous_replication = true;
  config.num_users = 10;
  auto r = RunExperiment(config);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_GT(r->benchmark.throughput_ops, 0.5);
}

TEST(ExperimentTest, LocationHelpers) {
  EXPECT_EQ(SlavePlacementFor(LocationConfig::kSameZone),
            cloud::SameZonePlacement());
  EXPECT_EQ(SlavePlacementFor(LocationConfig::kDifferentZone),
            cloud::DifferentZonePlacement());
  EXPECT_EQ(SlavePlacementFor(LocationConfig::kDifferentRegion),
            cloud::DifferentRegionPlacement());
  EXPECT_NE(std::string(LocationConfigToString(LocationConfig::kSameZone)),
            std::string(LocationConfigToString(LocationConfig::kDifferentRegion)));
}

}  // namespace
}  // namespace clouddb::harness
