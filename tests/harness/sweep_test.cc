#include "harness/sweep.h"

#include <gtest/gtest.h>

namespace clouddb::harness {
namespace {

SweepConfig QuickSweep() {
  SweepConfig sweep;
  sweep.base.data_scale = 30;
  sweep.base.idle_window = Seconds(30);
  sweep.base.benchmark.ramp_up = Seconds(30);
  sweep.base.benchmark.steady = Seconds(120);
  sweep.base.benchmark.ramp_down = Seconds(15);
  sweep.base.benchmark.think_time_mean = Seconds(5);
  sweep.base.seed = 5;
  sweep.slave_counts = {1, 2};
  sweep.user_counts = {10, 40};
  return sweep;
}

TEST(SweepTest, RunsEveryCellAndReportsProgress) {
  SweepConfig sweep = QuickSweep();
  int progress_calls = 0;
  auto result = RunSweep(sweep, [&](const SweepCell&) { ++progress_calls; });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(progress_calls, 4);
  EXPECT_EQ(result->cells().size(), 4u);
  for (int s : sweep.slave_counts) {
    for (int u : sweep.user_counts) {
      ASSERT_NE(result->Find(s, u), nullptr);
      EXPECT_GT(result->Throughput(s, u), 0.0);
    }
  }
  EXPECT_EQ(result->Find(9, 9), nullptr);
  EXPECT_EQ(result->Throughput(9, 9), 0.0);
}

TEST(SweepTest, ThroughputGrowsWithUsersBelowSaturation) {
  auto result = RunSweep(QuickSweep());
  ASSERT_TRUE(result.ok());
  for (int s : {1, 2}) {
    EXPECT_GT(result->Throughput(s, 40), result->Throughput(s, 10));
  }
}

TEST(SweepTest, TablesHaveOneRowPerWorkload) {
  SweepConfig sweep = QuickSweep();
  auto result = RunSweep(sweep);
  ASSERT_TRUE(result.ok());
  TableWriter throughput =
      result->ThroughputTable(sweep.slave_counts, sweep.user_counts);
  EXPECT_EQ(throughput.num_rows(), sweep.user_counts.size());
  std::string csv = throughput.ToCsv();
  EXPECT_NE(csv.find("users,1 slave,2 slaves"), std::string::npos);
  TableWriter delay = result->DelayTable(sweep.slave_counts,
                                         sweep.user_counts);
  EXPECT_EQ(delay.num_rows(), sweep.user_counts.size());
}

TEST(SweepTest, SaturationDetection) {
  // Synthetic sweep result: throughput rises then flattens after 100 users.
  SweepResult result;
  auto add = [&](int slaves, int users, double tput) {
    SweepCell cell;
    cell.slaves = slaves;
    cell.users = users;
    cell.result.benchmark.throughput_ops = tput;
    result.Add(std::move(cell));
  };
  std::vector<int> users = {50, 75, 100, 125, 150};
  add(1, 50, 5.0);
  add(1, 75, 8.0);
  add(1, 100, 10.0);
  add(1, 125, 9.6);
  add(1, 150, 9.5);
  EXPECT_EQ(result.SaturationUsers(1, users), 125);
  // Still rising at the end: no saturation observed.
  add(2, 50, 5.0);
  add(2, 75, 8.0);
  add(2, 100, 10.0);
  add(2, 125, 12.0);
  add(2, 150, 14.0);
  EXPECT_EQ(result.SaturationUsers(2, users), 0);
}

}  // namespace
}  // namespace clouddb::harness
