#include "harness/sweep.h"
#include "common/table_writer.h"
#include "common/time_types.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace clouddb::harness {
namespace {

SweepConfig QuickSweep() {
  SweepConfig sweep;
  sweep.base.data_scale = 30;
  sweep.base.idle_window = Seconds(30);
  sweep.base.benchmark.ramp_up = Seconds(30);
  sweep.base.benchmark.steady = Seconds(120);
  sweep.base.benchmark.ramp_down = Seconds(15);
  sweep.base.benchmark.think_time_mean = Seconds(5);
  sweep.base.seed = 5;
  sweep.slave_counts = {1, 2};
  sweep.user_counts = {10, 40};
  return sweep;
}

TEST(SweepTest, RunsEveryCellAndReportsProgress) {
  SweepConfig sweep = QuickSweep();
  int progress_calls = 0;
  auto result = RunSweep(sweep, [&](const SweepCell&) { ++progress_calls; });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(progress_calls, 4);
  EXPECT_EQ(result->cells().size(), 4u);
  for (int s : sweep.slave_counts) {
    for (int u : sweep.user_counts) {
      ASSERT_NE(result->Find(s, u), nullptr);
      EXPECT_GT(result->Throughput(s, u), 0.0);
    }
  }
  EXPECT_EQ(result->Find(9, 9), nullptr);
  EXPECT_EQ(result->Throughput(9, 9), 0.0);
}

TEST(SweepTest, ThroughputGrowsWithUsersBelowSaturation) {
  auto result = RunSweep(QuickSweep());
  ASSERT_TRUE(result.ok());
  for (int s : {1, 2}) {
    EXPECT_GT(result->Throughput(s, 40), result->Throughput(s, 10));
  }
}

TEST(SweepTest, TablesHaveOneRowPerWorkload) {
  SweepConfig sweep = QuickSweep();
  auto result = RunSweep(sweep);
  ASSERT_TRUE(result.ok());
  TableWriter throughput =
      result->ThroughputTable(sweep.slave_counts, sweep.user_counts);
  EXPECT_EQ(throughput.num_rows(), sweep.user_counts.size());
  std::string csv = throughput.ToCsv();
  EXPECT_NE(csv.find("users,1 slave,2 slaves"), std::string::npos);
  TableWriter delay = result->DelayTable(sweep.slave_counts,
                                         sweep.user_counts);
  EXPECT_EQ(delay.num_rows(), sweep.user_counts.size());
}

TEST(SweepTest, ParallelJobsAreByteIdenticalToSerial) {
  // SweepConfig::jobs trades wall-clock for threads only: every cell's seed
  // is derived from grid position before any worker starts, each worker
  // drives an independent Simulation, and results are consumed in grid
  // order. jobs=4 must therefore reproduce jobs=1 exactly — same progress
  // order, same per-cell metrics, byte-identical tables.
  SweepConfig serial = QuickSweep();
  serial.jobs = 1;
  SweepConfig parallel = QuickSweep();
  parallel.jobs = 4;

  std::vector<std::pair<int, int>> serial_order, parallel_order;
  auto serial_result = RunSweep(serial, [&](const SweepCell& c) {
    serial_order.emplace_back(c.slaves, c.users);
  });
  auto parallel_result = RunSweep(parallel, [&](const SweepCell& c) {
    parallel_order.emplace_back(c.slaves, c.users);
  });
  ASSERT_TRUE(serial_result.ok()) << serial_result.status().ToString();
  ASSERT_TRUE(parallel_result.ok()) << parallel_result.status().ToString();

  EXPECT_EQ(serial_order, parallel_order);
  ASSERT_EQ(serial_result->cells().size(), parallel_result->cells().size());
  for (int s : serial.slave_counts) {
    for (int u : serial.user_counts) {
      const SweepCell* a = serial_result->Find(s, u);
      const SweepCell* b = parallel_result->Find(s, u);
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      EXPECT_EQ(a->result.benchmark.throughput_ops,
                b->result.benchmark.throughput_ops)
          << "slaves=" << s << " users=" << u;
      EXPECT_EQ(a->result.mean_relative_delay_ms,
                b->result.mean_relative_delay_ms)
          << "slaves=" << s << " users=" << u;
    }
  }
  EXPECT_EQ(serial_result->ThroughputTable(serial.slave_counts,
                                           serial.user_counts).ToCsv(),
            parallel_result->ThroughputTable(parallel.slave_counts,
                                             parallel.user_counts).ToCsv());
  EXPECT_EQ(serial_result->DelayTable(serial.slave_counts,
                                      serial.user_counts).ToCsv(),
            parallel_result->DelayTable(parallel.slave_counts,
                                        parallel.user_counts).ToCsv());
}

TEST(SweepTest, JobsZeroMeansHardwareConcurrency) {
  SweepConfig sweep = QuickSweep();
  sweep.jobs = 0;
  int progress_calls = 0;
  auto result = RunSweep(sweep, [&](const SweepCell&) { ++progress_calls; });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(progress_calls, 4);
  EXPECT_EQ(result->cells().size(), 4u);
}

TEST(SweepTest, SaturationDetection) {
  // Synthetic sweep result: throughput rises then flattens after 100 users.
  SweepResult result;
  auto add = [&](int slaves, int users, double tput) {
    SweepCell cell;
    cell.slaves = slaves;
    cell.users = users;
    cell.result.benchmark.throughput_ops = tput;
    result.Add(std::move(cell));
  };
  std::vector<int> users = {50, 75, 100, 125, 150};
  add(1, 50, 5.0);
  add(1, 75, 8.0);
  add(1, 100, 10.0);
  add(1, 125, 9.6);
  add(1, 150, 9.5);
  EXPECT_EQ(result.SaturationUsers(1, users), 125);
  // Still rising at the end: no saturation observed.
  add(2, 50, 5.0);
  add(2, 75, 8.0);
  add(2, 100, 10.0);
  add(2, 125, 12.0);
  add(2, 150, 14.0);
  EXPECT_EQ(result.SaturationUsers(2, users), 0);
}

}  // namespace
}  // namespace clouddb::harness
