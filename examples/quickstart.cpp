// Quickstart: deploy a replicated database tier on the simulated cloud, run
// a small Cloudstone workload through the read/write-splitting proxy, and
// print throughput, replication delay and convergence.
//
// This is the 60-second tour of the library; the other examples and the
// bench/ binaries reproduce the paper's full experiments.

#include <cstdio>

#include "harness/experiment.h"
#include "cloudstone/operations.h"
#include "common/time_types.h"

int main() {
  using namespace clouddb;

  harness::ExperimentConfig config;
  config.location = harness::LocationConfig::kSameZone;
  config.mix = cloudstone::WorkloadMix::FiftyFifty();
  config.data_scale = 50;   // small data set: quick load
  config.num_slaves = 2;
  config.num_users = 60;
  config.idle_window = Minutes(1);
  config.benchmark.ramp_up = Minutes(2);
  config.benchmark.steady = Minutes(5);
  config.benchmark.ramp_down = Minutes(1);
  config.benchmark.think_time_mean = Seconds(9);
  config.seed = 7;

  std::printf("Deploying 1 master + %d slaves (%s), %d emulated users...\n",
              config.num_slaves,
              harness::LocationConfigToString(config.location),
              config.num_users);

  auto outcome = harness::RunExperiment(config);
  if (!outcome.ok()) {
    std::printf("experiment failed: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  const harness::ExperimentResult& r = *outcome;

  std::printf("\n-- steady-state results (%d min window) --\n", 5);
  std::printf("end-to-end throughput : %.1f ops/s  (reads %.1f, writes %.1f)\n",
              r.benchmark.throughput_ops, r.benchmark.read_throughput_ops,
              r.benchmark.write_throughput_ops);
  std::printf("mean response time    : %.1f ms (p95 %.1f ms)\n",
              r.benchmark.mean_response_ms, r.benchmark.p95_response_ms);
  std::printf("master CPU utilization: %.0f%%\n",
              100.0 * r.benchmark.master_cpu_utilization);
  for (size_t i = 0; i < r.benchmark.slave_cpu_utilization.size(); ++i) {
    std::printf("slave %zu CPU utilization: %.0f%%\n", i + 1,
                100.0 * r.benchmark.slave_cpu_utilization[i]);
  }
  for (size_t i = 0; i < r.relative_delay_ms.size(); ++i) {
    std::printf(
        "slave %zu avg relative replication delay: %.2f ms "
        "(idle %.2f ms, loaded %.2f ms)\n",
        i + 1, r.relative_delay_ms[i], r.idle_delay_ms[i],
        r.loaded_delay_ms[i]);
  }
  std::printf("binlog events: %lld, heartbeats: %lld\n",
              static_cast<long long>(r.binlog_events),
              static_cast<long long>(r.heartbeats_issued));
  std::printf("fully replicated after drain: %s, contents converged: %s\n",
              r.fully_replicated ? "yes" : "no", r.converged ? "yes" : "no");
  return r.fully_replicated && r.converged ? 0 : 1;
}
