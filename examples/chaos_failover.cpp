// Chaos failover: the clouddb::fault subsystem in ~100 lines.
//
// A master + 2 slaves tier takes a steady trickle of writes through the
// read/write-splitting proxy while a scripted fault schedule partitions one
// slave and then crashes the master. The FailoverManager detects the death
// and promotes a slave; the RecoveryObserver measures how long each step
// took and how many committed writes were lost. Everything runs on the
// deterministic event queue: re-running this program prints the exact same
// timeline and report every time.

#include <cstdio>
#include <functional>

#include "client/rw_split_proxy.h"
#include "cloud/cloud_provider.h"
#include "common/str_util.h"
#include "fault/fault_injector.h"
#include "fault/recovery_observer.h"
#include "repl/failover.h"
#include "repl/replication_cluster.h"
#include "cloud/instance.h"
#include "cloud/placement.h"
#include "common/result.h"
#include "common/status.h"
#include "common/time_types.h"
#include "db/database.h"
#include "fault/fault_schedule.h"
#include "repl/master_node.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"

int main() {
  using namespace clouddb;

  sim::Simulation sim;
  cloud::CloudProvider provider(&sim, cloud::CloudOptions{}, /*seed=*/42);

  repl::ClusterConfig cluster_config;
  cluster_config.num_slaves = 2;
  cluster_config.cost_model.insert_cost = Millis(5);
  repl::ReplicationCluster cluster(&provider, cluster_config);
  cloud::Instance* app = provider.Launch("app", cloud::InstanceType::kLarge,
                                         cloud::MasterPlacement());
  cloud::Instance* monitor = provider.Launch(
      "monitor", cloud::InstanceType::kSmall, cloud::MasterPlacement());

  Status created = cluster.ExecuteEverywhereDirect(
      "CREATE TABLE events (id INT PRIMARY KEY, payload INT)");
  if (!created.ok()) {
    std::printf("setup failed: %s\n", created.ToString().c_str());
    return 1;
  }

  // Slaves survive transient faults by re-requesting missed events with
  // bounded exponential backoff instead of silently diverging.
  std::vector<repl::SlaveNode*> slaves = {cluster.slave(0), cluster.slave(1)};
  for (repl::SlaveNode* slave : slaves) slave->StartAutoResync();

  client::ReadWriteSplitProxy proxy(&sim, &provider.network(), app->node_id(),
                                    cluster.master(), slaves,
                                    client::ProxyOptions{});
  repl::FailoverManager manager(&sim, &provider.network(), monitor->node_id(),
                                cluster.master(), slaves,
                                repl::FailoverOptions{});
  manager.AddFailoverListener([&](repl::MasterNode* new_master) {
    std::printf("t=%-8s failover! proxy repointed at the promoted slave\n",
                FormatDuration(sim.Now()).c_str());
    proxy.ReplaceMaster(new_master);
    for (int i = 0; i < 2; ++i) {
      if (cluster.slave(i) == manager.promoted_slave()) {
        proxy.DeactivateSlave(i);
      }
    }
  });
  manager.Start();

  fault::RecoveryObserver observer(&sim, &manager);
  observer.Start();

  fault::FaultInjector injector(&sim, &provider);
  injector.SetFaultListener([&](const fault::FaultEvent& event, bool begin) {
    std::printf("t=%-8s %s %s\n", FormatDuration(sim.Now()).c_str(),
                begin ? "inject:" : "heal:  ", event.ToString().c_str());
    if (event.kind != fault::FaultKind::kCrash) return;
    if (begin) {
      observer.NoteFault();
    } else {
      observer.NoteHeal();
    }
  });
  fault::FaultSchedule schedule;
  schedule.Partition(Seconds(10), "slave-1", "master", Seconds(8))
      .Crash(Seconds(30), "master", Seconds(30));
  Status armed = injector.Arm(schedule);
  if (!armed.ok()) {
    std::printf("arm failed: %s\n", armed.ToString().c_str());
    return 1;
  }
  std::printf("fault schedule:\n%s\n", schedule.ToString().c_str());

  // A steady trickle of writes: one INSERT every 500 ms for 90 s.
  SimTime horizon = Seconds(90);
  int64_t next_id = 0, write_ok = 0, write_failed = 0;
  std::function<void()> write_tick = [&] {
    if (sim.Now() >= horizon) return;
    proxy.Execute(
        StrFormat("INSERT INTO events VALUES (%lld, %lld)",
                  static_cast<long long>(next_id),
                  static_cast<long long>(next_id * 7)),
        /*is_read=*/false, /*cpu_cost=*/-1, [&](Result<db::ExecResult> r) {
          if (r.ok()) {
            ++write_ok;
          } else {
            ++write_failed;  // unavailable window: the app's retry problem
          }
        });
    ++next_id;
    sim.ScheduleAfter(Millis(500), write_tick);
  };
  sim.ScheduleAfter(Millis(500), write_tick);

  sim.RunUntil(horizon);
  manager.Stop();
  observer.Stop();
  for (repl::SlaveNode* slave : slaves) slave->StopAutoResync();
  sim.Run();

  bool converged = true;
  for (repl::SlaveNode* slave : manager.active_slaves()) {
    if (!db::Database::ContentsEqual(manager.current_master()->database(),
                                     slave->database(), {})) {
      converged = false;
    }
  }

  std::printf("\n-- recovery report --\n%s", observer.report().ToString().c_str());
  std::printf("writes acknowledged   %lld\n", static_cast<long long>(write_ok));
  std::printf("writes failed         %lld (during the unavailability window)\n",
              static_cast<long long>(write_failed));
  std::printf("cluster converged     %s\n", converged ? "yes" : "no");
  return converged ? 0 : 1;
}
