// Example: geographically distributed read replicas and the staleness they
// buy you.
//
// Deploys one master (us-west-1a) with a slave in the same zone, one in a
// different zone and one across the Atlantic (eu-west-1a), then monitors the
// per-slave replication delay with the heartbeat probe while a moderate
// workload runs. Shows the paper's §IV-B conclusion: the placement adds its
// one-way latency to the delay, but workload-induced queueing dominates.

#include <cstdio>

#include "client/rw_split_proxy.h"
#include "cloud/cloud_provider.h"
#include "cloudstone/benchmark_driver.h"
#include "cloudstone/schema.h"
#include "common/stats.h"
#include "common/str_util.h"
#include "common/table_writer.h"
#include "repl/delay_monitor.h"
#include "repl/heartbeat.h"
#include "repl/master_node.h"
#include "repl/slave_node.h"
#include "cloud/instance.h"
#include "cloud/placement.h"
#include "cloudstone/operations.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/time_types.h"
#include "repl/cost_model.h"
#include "sim/simulation.h"

using namespace clouddb;

int main() {
  sim::Simulation sim;
  cloud::CloudOptions cloud_options;
  cloud::CloudProvider provider(&sim, cloud_options, /*seed=*/11);

  repl::CostModel cost_model =
      cloudstone::MakeWorkloadCostModel(cloudstone::OperationCosts{});
  cloud::Instance* master_instance = provider.Launch(
      "master", cloud::InstanceType::kSmall, cloud::MasterPlacement());
  repl::MasterNode master(&sim, &provider.network(), master_instance,
                          cost_model);

  struct SlaveSite {
    const char* label;
    cloud::Placement placement;
    std::unique_ptr<repl::SlaveNode> node;
  };
  SlaveSite sites[] = {
      {"same zone (us-west-1a)", cloud::SameZonePlacement(), nullptr},
      {"different zone (us-west-1b)", cloud::DifferentZonePlacement(), nullptr},
      {"different region (eu-west-1a)", cloud::DifferentRegionPlacement(),
       nullptr},
  };
  std::vector<repl::SlaveNode*> slaves;
  for (SlaveSite& site : sites) {
    cloud::Instance* instance = provider.Launch(
        site.label, cloud::InstanceType::kSmall, site.placement);
    site.node = std::make_unique<repl::SlaveNode>(&sim, &provider.network(),
                                                  instance, cost_model);
    master.AttachSlave(site.node.get());
    slaves.push_back(site.node.get());
  }
  cloud::Instance* app = provider.Launch("app", cloud::InstanceType::kLarge,
                                         cloud::MasterPlacement());

  // Identical pre-load on every replica (binlog suppressed on the master).
  cloudstone::WorkloadState state;
  Status loaded = cloudstone::LoadInitialData(
      [&](const std::string& sql) -> Status {
        master.database().set_binlog_suppressed(true);
        auto r = master.database().Execute(sql);
        master.database().set_binlog_suppressed(false);
        if (!r.ok()) return r.status();
        for (repl::SlaveNode* slave : slaves) {
          auto rs = slave->database().Execute(sql);
          if (!rs.ok()) return rs.status();
        }
        return Status::Ok();
      },
      /*scale=*/150, /*seed=*/3, &state);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.ToString().c_str());
    return 1;
  }

  // Heartbeat probe + a moderate mixed workload through the proxy.
  repl::HeartbeatPlugin heartbeat(&sim, &master, repl::HeartbeatOptions{});
  if (Status st = heartbeat.CreateTable(); !st.ok()) {
    std::printf("heartbeat table failed: %s\n", st.ToString().c_str());
    return 1;
  }
  heartbeat.Start();
  sim.RunUntil(Minutes(1));  // idle baseline
  int64_t idle_max = heartbeat.next_id() - 1;

  client::ProxyOptions proxy_options;
  client::ReadWriteSplitProxy proxy(&sim, &provider.network(), app->node_id(),
                                    &master, slaves, proxy_options);
  cloudstone::OperationGenerator generator(
      cloudstone::WorkloadMix::EightyTwenty(), cloudstone::OperationCosts{},
      &state, [&] { return app->LocalNowMicros(); });
  cloudstone::MetricsCollector metrics;
  std::vector<std::unique_ptr<cloudstone::UserEmulator>> users;
  Rng seeder(99);
  SimTime stop_at = sim.Now() + Minutes(6);
  for (int i = 0; i < 60; ++i) {
    users.push_back(std::make_unique<cloudstone::UserEmulator>(
        &sim, &proxy, &generator, &metrics, seeder.Fork(i + 1), Seconds(6)));
    users.back()->Activate(sim.Now(), stop_at);
  }
  sim.RunUntil(stop_at);
  heartbeat.Stop();
  sim.Run();  // drain

  TableWriter table({"slave placement", "idle delay (ms)",
                     "loaded delay (ms)", "relative delay (ms)"});
  for (SlaveSite& site : sites) {
    std::vector<double> idle = repl::HeartbeatDelaysMs(
        master.database(), site.node->database(), 1, idle_max);
    std::vector<double> under_load = repl::HeartbeatDelaysMs(
        master.database(), site.node->database(), idle_max + 1,
        heartbeat.next_id() - 1);
    Sample idle_sample;
    idle_sample.AddAll(idle);
    Sample loaded_sample;
    loaded_sample.AddAll(under_load);
    table.AddRow(
        {site.label, StrFormat("%.1f", idle_sample.TrimmedMean(0.05)),
         StrFormat("%.1f", loaded_sample.TrimmedMean(0.05)),
         StrFormat("%.1f", repl::AverageRelativeDelayMs(under_load, idle))});
  }
  std::printf("%s", table.ToAscii().c_str());
  std::printf(
      "\nIdle delay tracks the one-way network latency (16/21/173 ms);\n"
      "under load the extra delay is queueing on the slave CPUs, which is\n"
      "similar across placements — the paper's argument that geographic\n"
      "replication is viable if the workload is managed.\n");
  return 0;
}
