// Adaptive control: the "application-managed" loop closed end to end. A
// staleness-bounded workload runs against a one-slave tier; a mid-run load
// surge drives replication lag up; the freshness tracker measures it from
// the heartbeat table, the proxy routes bounded reads around stale replicas,
// and the elasticity controller grows the tier — then retires the extra
// replica once the surge drains.
//
// Quickstart for a staleness-bounded read (what every user in this example
// issues):
//
//   client::ReadOptions bounded;
//   bounded.max_staleness = Millis(500);   // "at most 0.5 s stale"
//   proxy.ExecuteAuto(sql, cpu_cost, bounded, [](auto result) { ... });

#include <cstdio>

#include "common/time_types.h"
#include "control/elasticity_controller.h"
#include "harness/control_experiment.h"

int main() {
  using namespace clouddb;

  harness::ControlExperimentConfig config;
  config.staleness_bound = Millis(500);
  config.base_users = 10;
  config.surge_users = 40;
  config.warmup = Seconds(30);
  config.measure = Minutes(6);
  config.surge_start = Minutes(1);
  config.surge_duration = Minutes(2);
  config.initial_slaves = 1;
  config.controller.max_active_slaves = 4;
  config.seed = 7;

  std::printf("1 master + %d slave, %d base users, %d-user surge in the "
              "middle, every read bounded to %lld ms staleness...\n",
              config.initial_slaves, config.base_users, config.surge_users,
              static_cast<long long>(config.staleness_bound / 1000));

  auto outcome = harness::RunControlExperiment(config);
  if (!outcome.ok()) {
    std::printf("run failed: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  const harness::ControlExperimentResult& r = *outcome;

  std::printf("\n-- freshness-SLA routing --\n");
  std::printf("bounded reads         : %lld\n",
              static_cast<long long>(r.bounded_reads));
  std::printf("served by a replica   : %lld (%.1f%% master offload)\n",
              static_cast<long long>(r.bounded_to_slave),
              r.master_offload_pct);
  std::printf("master fallbacks      : %lld\n",
              static_cast<long long>(r.master_fallbacks));
  std::printf("mid-query retries     : %lld\n",
              static_cast<long long>(r.read_retries));
  std::printf("achieved freshness    : %.2f%% (%lld violations at "
              "completion)\n",
              r.achieved_freshness_pct,
              static_cast<long long>(r.sla_violations));
  std::printf("peak observed staleness: %.1f ms\n", r.peak_staleness_ms);

  std::printf("\n-- elasticity controller --\n");
  std::printf("scale-outs %lld, scale-ins %lld, replicas peak %d final %d\n",
              static_cast<long long>(r.scale_outs),
              static_cast<long long>(r.scale_ins), r.peak_active_slaves,
              r.final_active_slaves);
  std::printf("%s", r.TimelineString().c_str());

  std::printf("\n-- workload --\n");
  std::printf("completed %lld ops (%.1f ops/s), %lld failed, mean response "
              "%.1f ms\n",
              static_cast<long long>(r.completed_ops), r.throughput_ops,
              static_cast<long long>(r.failed_ops), r.mean_response_ms);

  std::printf("\n-- cluster-wide metric spine (merged registries) --\n%s",
              r.metrics_table.c_str());
  return 0;
}
