// Example: the application-managed elasticity the paper motivates — the
// application itself decides when to attach another read replica.
//
// A workload ramps up in steps; a naive autoscaler watches the slaves'
// CPU utilization over a window and, when the average exceeds a threshold,
// launches a new slave, pre-loads it from a snapshot (as an operator would
// restore a backup), and attaches it to the master. Shows throughput
// recovering after each scale-out and where scaling stops helping — the
// master's write capacity, the paper's central scaling limit.

#include <cstdio>
#include <memory>
#include <vector>

#include "client/rw_split_proxy.h"
#include "cloud/cloud_provider.h"
#include "cloudstone/benchmark_driver.h"
#include "cloudstone/schema.h"
#include "common/str_util.h"
#include "repl/master_node.h"
#include "repl/slave_node.h"
#include "cloud/instance.h"
#include "cloud/placement.h"
#include "cloudstone/operations.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/time_types.h"
#include "db/database.h"
#include "db/table.h"
#include "db/value.h"
#include "repl/cost_model.h"
#include "sim/simulation.h"

using namespace clouddb;

namespace {

/// Copies the master's current contents into a fresh slave (the snapshot
/// restore an operator performs before attaching a replica).
void RestoreSnapshot(repl::MasterNode& master, repl::SlaveNode* slave) {
  for (const std::string& name : master.database().TableNames()) {
    const db::Table* src = master.database().GetTable(name);
    std::string ddl = StrFormat("CREATE TABLE %s %s", name.c_str(),
                                src->schema().ToString().c_str());
    // Recreate the schema (Schema::ToString renders valid column defs).
    auto created = slave->database().Execute(ddl);
    if (!created.ok()) {
      std::printf("snapshot DDL failed: %s\n",
                  created.status().ToString().c_str());
      continue;
    }
    src->ScanAll([&](db::RowId, const db::Row& row) {
      auto inserted = slave->database().Execute(StrFormat(
          "INSERT INTO %s VALUES %s", name.c_str(),
          db::RowToString(row).c_str()));
      (void)inserted;
      return true;
    });
  }
}

}  // namespace

int main() {
  sim::Simulation sim;
  cloud::CloudOptions cloud_options;
  cloud_options.cpu_speed_cov = 0.0;  // keep the demo deterministic-looking
  cloud::CloudProvider provider(&sim, cloud_options, 5);

  repl::CostModel cost_model =
      cloudstone::MakeWorkloadCostModel(cloudstone::OperationCosts{});
  cloud::Instance* master_instance = provider.Launch(
      "master", cloud::InstanceType::kSmall, cloud::MasterPlacement());
  repl::MasterNode master(&sim, &provider.network(), master_instance,
                          cost_model);
  cloud::Instance* app = provider.Launch("app", cloud::InstanceType::kLarge,
                                         cloud::MasterPlacement());

  // Start with a single slave.
  std::vector<std::unique_ptr<repl::SlaveNode>> slaves;
  auto launch_slave = [&]() -> repl::SlaveNode* {
    cloud::Instance* instance =
        provider.Launch(StrFormat("slave-%zu", slaves.size() + 1),
                        cloud::InstanceType::kSmall,
                        cloud::SameZonePlacement());
    slaves.push_back(std::make_unique<repl::SlaveNode>(
        &sim, &provider.network(), instance, cost_model));
    return slaves.back().get();
  };

  cloudstone::WorkloadState state;
  Status loaded = cloudstone::LoadInitialData(
      [&](const std::string& sql) -> Status {
        master.database().set_binlog_suppressed(true);
        auto r = master.database().Execute(sql);
        master.database().set_binlog_suppressed(false);
        return r.ok() ? Status::Ok() : r.status();
      },
      /*scale=*/100, /*seed=*/3, &state);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.ToString().c_str());
    return 1;
  }
  {
    repl::SlaveNode* first = launch_slave();
    RestoreSnapshot(master, first);
    master.AttachSlave(first);
  }

  // The application-managed proxy: new replicas are added to the read
  // rotation in place (AddSlave) while users keep their sessions.
  auto proxy = std::make_unique<client::ReadWriteSplitProxy>(
      &sim, &provider.network(), app->node_id(), &master,
      std::vector<repl::SlaveNode*>{slaves.front().get()},
      client::ProxyOptions{});

  // Closed-loop users arrive in waves.
  cloudstone::OperationGenerator generator(
      cloudstone::WorkloadMix::EightyTwenty(), cloudstone::OperationCosts{},
      &state, [&] { return app->LocalNowMicros(); });
  cloudstone::MetricsCollector metrics;
  std::vector<std::unique_ptr<cloudstone::UserEmulator>> users;
  Rng seeder(1);
  SimTime horizon = Minutes(40);
  auto add_users = [&](int n) {
    for (int i = 0; i < n; ++i) {
      users.push_back(std::make_unique<cloudstone::UserEmulator>(
          &sim, proxy.get(), &generator, &metrics,
          seeder.Fork(users.size() + 1), Seconds(6)));
      users.back()->Activate(sim.Now(), horizon);
    }
  };
  add_users(60);

  std::printf(
      "t(min) users slaves  tput(ops/s)  worst-slave-cpu  master-cpu  action\n");
  int64_t window_ops_mark = 0;
  std::vector<int64_t> busy_marks;
  auto window_stats = [&](SimDuration window) {
    double tput = static_cast<double>(
                      metrics.CountInWindow(sim.Now() - window, sim.Now())) /
                  ToSeconds(window);
    (void)window_ops_mark;
    return tput;
  };
  std::vector<int64_t> prev_busy(16, 0);
  int64_t prev_master_busy = 0;

  for (int minute = 2; minute <= 40; minute += 2) {
    sim.RunUntil(Minutes(minute));
    // Utilization over the last 2 minutes.
    double worst = 0.0;
    for (size_t i = 0; i < slaves.size(); ++i) {
      int64_t busy = slaves[i]->instance().cpu().CumulativeBusyMicros();
      double util = static_cast<double>(busy - prev_busy[i]) /
                    static_cast<double>(Minutes(2));
      prev_busy[i] = busy;
      worst = std::max(worst, util);
    }
    int64_t master_busy = master.instance().cpu().CumulativeBusyMicros();
    double master_util = static_cast<double>(master_busy - prev_master_busy) /
                         static_cast<double>(Minutes(2));
    prev_master_busy = master_busy;

    std::string action = "-";
    if (minute % 8 == 0 && minute <= 24) {
      add_users(40);
      action = "+40 users";
    } else if (worst > 0.9 && slaves.size() < 8 && master_util < 0.95) {
      repl::SlaveNode* fresh = launch_slave();
      RestoreSnapshot(master, fresh);
      master.AttachSlave(fresh);
      proxy->AddSlave(fresh);
      prev_busy.resize(slaves.size() + 8, 0);
      action = StrFormat("scale out -> %zu slaves", slaves.size());
    } else if (master_util >= 0.95) {
      action = "master saturated (scaling is futile)";
    }
    std::printf("%5d %5zu %6zu %12.1f %15.0f%% %10.0f%%  %s\n", minute,
                users.size(), slaves.size(), window_stats(Minutes(2)),
                worst * 100.0, master_util * 100.0, action.c_str());
  }
  sim.Run();
  std::printf("\nFinal: %zu slaves, all converged: %s\n", slaves.size(),
              [&] {
                for (auto& s : slaves) {
                  if (!db::Database::ContentsEqual(master.database(),
                                                   s->database())) {
                    return false;
                  }
                }
                return true;
              }()
                  ? "yes"
                  : "no");
  return 0;
}
