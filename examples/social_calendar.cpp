// Example: the social-events-calendar application, end to end.
//
// Demonstrates the public API a downstream application would use directly:
// a CloudProvider, a ReplicationCluster, the DBCP-style pool / R/W-splitting
// proxy, and hand-written SQL — without the benchmark harness. Walks through
// a user's session (browse, view, create, join, comment) and shows where the
// statements were routed and what the slaves can see.

#include <cstdio>

#include "client/rw_split_proxy.h"
#include "cloud/cloud_provider.h"
#include "cloudstone/operations.h"
#include "cloudstone/schema.h"
#include "common/str_util.h"
#include "repl/replication_cluster.h"
#include "cloud/instance.h"
#include "cloud/placement.h"
#include "common/result.h"
#include "common/status.h"
#include "db/database.h"
#include "db/value.h"
#include "sim/simulation.h"

using namespace clouddb;

namespace {

/// Runs one statement through the proxy and prints the outcome.
void Run(sim::Simulation& sim, client::ReadWriteSplitProxy& proxy,
         const std::string& sql) {
  proxy.ExecuteAuto(sql, /*cpu_cost=*/-1, [&, sql](Result<db::ExecResult> r) {
    if (!r.ok()) {
      std::printf("  !! %s -> %s\n", sql.c_str(),
                  r.status().ToString().c_str());
      return;
    }
    if (!r->rows.empty()) {
      std::printf("  -> %s\n     %zu row(s), first: %s\n", sql.c_str(),
                  r->rows.size(), db::RowToString(r->rows[0]).c_str());
    } else {
      std::printf("  -> %s (%lld row(s) affected)\n", sql.c_str(),
                  static_cast<long long>(r->rows_affected));
    }
  });
  sim.Run();  // settle before the next statement (demo pacing)
}

}  // namespace

int main() {
  sim::Simulation sim;
  cloud::CloudOptions cloud_options;
  cloud::CloudProvider provider(&sim, cloud_options, /*seed=*/2026);

  // One master + two read replicas in the same availability zone.
  repl::ClusterConfig cluster_config;
  cluster_config.num_slaves = 2;
  cluster_config.cost_model =
      cloudstone::MakeWorkloadCostModel(cloudstone::OperationCosts{});
  repl::ReplicationCluster cluster(&provider, cluster_config);

  cloud::Instance* app = provider.Launch("web", cloud::InstanceType::kLarge,
                                         cloud::MasterPlacement());

  // Pre-load the calendar on every replica.
  cloudstone::WorkloadState state;
  Status loaded = cloudstone::LoadInitialData(
      [&](const std::string& sql) {
        return cluster.ExecuteEverywhereDirect(sql);
      },
      /*scale=*/100, /*seed=*/7, &state);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.ToString().c_str());
    return 1;
  }
  std::printf("Loaded calendar: %lld users, %lld events\n\n",
              static_cast<long long>(state.num_users),
              static_cast<long long>(state.next_event_id - 1));

  client::ProxyOptions proxy_options;
  proxy_options.policy = client::BalancePolicy::kRoundRobin;
  client::ReadWriteSplitProxy proxy(&sim, &provider.network(), app->node_id(),
                                    cluster.master(),
                                    {cluster.slave(0), cluster.slave(1)},
                                    proxy_options);

  std::printf("A user's session (reads go to slaves, writes to the master):\n");
  Run(sim, proxy,
      "SELECT event_id, title, event_date FROM events "
      "WHERE event_date >= 18100 ORDER BY event_date LIMIT 5");
  Run(sim, proxy, "SELECT * FROM events WHERE event_id = 17");
  int64_t new_event = state.next_event_id++;
  Run(sim, proxy,
      StrFormat("INSERT INTO events (event_id, title, description, "
                "created_by, event_date, created_at) VALUES (%lld, "
                "'Paper reading group', 'ICDE 2012 replication paper', 3, "
                "18250, 0)",
                static_cast<long long>(new_event)));
  Run(sim, proxy,
      StrFormat("INSERT INTO attendees (att_id, event_id, user_id, joined_at)"
                " VALUES (%lld, %lld, 5, 0)",
                static_cast<long long>(state.next_attendee_id++),
                static_cast<long long>(new_event)));
  Run(sim, proxy,
      StrFormat("INSERT INTO comments (comment_id, event_id, user_id, body, "
                "created_at) VALUES (%lld, %lld, 5, 'count me in', 0)",
                static_cast<long long>(state.next_comment_id++),
                static_cast<long long>(new_event)));
  // The replicas have applied the writes by now (the sim drained); reads see
  // the new event on whichever slave the proxy picks.
  Run(sim, proxy,
      StrFormat("SELECT COUNT(*) FROM attendees WHERE event_id = %lld",
                static_cast<long long>(new_event)));

  std::printf("\nRouting summary: %lld writes to the master; reads per slave:",
              static_cast<long long>(proxy.writes_routed()));
  for (int i = 0; i < proxy.num_slaves(); ++i) {
    std::printf(" %lld", static_cast<long long>(proxy.reads_routed(i)));
  }
  std::printf("\nAll replicas converged: %s\n",
              cluster.Converged() ? "yes" : "no");
  return cluster.Converged() ? 0 : 1;
}
