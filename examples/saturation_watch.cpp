// Example: *watching* the paper's §IV-A saturation transition live.
//
// The paper infers the saturation point's movement from throughput curves:
// slaves pin their CPUs first; adding slaves moves the knee until the
// master's write capacity becomes the wall. This example runs the same
// deployment with a ClusterMonitor attached and prints the per-replica CPU
// and backlog time series while the workload doubles every few minutes —
// the transition is visible directly in the utilization columns.

#include <cstdio>

#include "client/rw_split_proxy.h"
#include "cloud/cloud_provider.h"
#include "cloudstone/benchmark_driver.h"
#include "cloudstone/operations.h"
#include "cloudstone/schema.h"
#include "repl/cluster_monitor.h"
#include "repl/replication_cluster.h"
#include "cloud/instance.h"
#include "cloud/placement.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/time_types.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"

using namespace clouddb;

int main() {
  sim::Simulation sim;
  cloud::CloudOptions cloud_options;
  cloud_options.cpu_speed_cov = 0.0;  // clean curves for the demo
  cloud::CloudProvider provider(&sim, cloud_options, 9);

  repl::ClusterConfig cluster_config;
  cluster_config.num_slaves = 2;
  cluster_config.cost_model =
      cloudstone::MakeWorkloadCostModel(cloudstone::OperationCosts{});
  repl::ReplicationCluster cluster(&provider, cluster_config);
  cloud::Instance* app = provider.Launch("app", cloud::InstanceType::kLarge,
                                         cloud::MasterPlacement());

  cloudstone::WorkloadState state;
  Status loaded = cloudstone::LoadInitialData(
      [&](const std::string& sql) {
        return cluster.ExecuteEverywhereDirect(sql);
      },
      /*scale=*/120, /*seed=*/5, &state);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.ToString().c_str());
    return 1;
  }

  std::vector<repl::SlaveNode*> slaves = {cluster.slave(0), cluster.slave(1)};
  client::ReadWriteSplitProxy proxy(&sim, &provider.network(), app->node_id(),
                                    cluster.master(), slaves,
                                    client::ProxyOptions{});
  repl::ClusterMonitor monitor(&sim, cluster.master(), slaves, Minutes(1));
  monitor.Start();

  cloudstone::OperationGenerator generator(
      cloudstone::WorkloadMix::FiftyFifty(), cloudstone::OperationCosts{},
      &state, [&] { return app->LocalNowMicros(); });
  cloudstone::MetricsCollector metrics;
  std::vector<std::unique_ptr<cloudstone::UserEmulator>> users;
  Rng seeder(3);
  SimTime horizon = Minutes(16);
  auto add_users = [&](int n) {
    for (int i = 0; i < n; ++i) {
      users.push_back(std::make_unique<cloudstone::UserEmulator>(
          &sim, &proxy, &generator, &metrics, seeder.Fork(users.size() + 1),
          Seconds(9)));
      users.back()->Activate(sim.Now(), horizon);
    }
  };
  // Workload steps: 50 -> 100 -> 200 users.
  add_users(50);
  sim.ScheduleAt(Minutes(5), [&] { add_users(50); });
  sim.ScheduleAt(Minutes(10), [&] { add_users(100); });
  sim.RunUntil(horizon);
  monitor.Stop();
  sim.Run();

  std::printf("Per-minute cluster health (50 users, +50 at 5min, +100 at "
              "10min):\n\n%s\n",
              monitor.ToTable().ToAscii().c_str());
  std::printf("mean master CPU: %.0f%%   max slave lag: %lld events\n",
              100.0 * monitor.MeanMasterCpu(),
              static_cast<long long>(monitor.MaxLagEvents()));
  std::printf("slave 1 saturated (>90%% CPU) in %.0f%% of samples\n",
              100.0 * monitor.SlaveSaturatedFraction(0, 0.9));
  std::printf(
      "\nReading the table: the slave CPU columns pin at 1.00 first (reads\n"
      "plus writeset applies) while the master still has headroom; by the\n"
      "final workload step the master hits its wall too and the relay\n"
      "backlogs grow without bound. That is the paper's §IV-A saturation\n"
      "story — and its scaling limit — observed directly.\n");
  return 0;
}
