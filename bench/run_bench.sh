#!/usr/bin/env bash
# Runs the engine microbenchmarks and writes the google-benchmark JSON report
# to BENCH_micro_engine.json at the repository root (the committed perf
# record; see DESIGN.md "Execution pipeline").
#
# Usage: bench/run_bench.sh [build_dir] [extra google-benchmark flags...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
if [[ $# -gt 0 ]]; then shift; fi

bin="${build_dir}/bench/micro_engine"
if [[ ! -x "${bin}" ]]; then
  echo "micro_engine not built at ${bin}; build with:" >&2
  echo "  cmake -B '${build_dir}' -S '${repo_root}' && cmake --build '${build_dir}' --target micro_engine" >&2
  exit 1
fi

"${bin}" --json "${repo_root}/BENCH_micro_engine.json" "$@"
