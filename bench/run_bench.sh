#!/usr/bin/env bash
# Runs the microbenchmarks and writes the google-benchmark JSON reports to
# BENCH_micro_engine.json, BENCH_micro_sim.json, BENCH_micro_metrics.json,
# BENCH_micro_lint.json, and BENCH_micro_repl.json
# at the repository root (the committed perf records; see DESIGN.md
# "Execution pipeline", "Simulation kernel & parallel harness", and
# "Metrics spine").
#
# Measurement policy: every benchmark runs --benchmark_repetitions=5 and the
# report keeps only the aggregates (mean/median/stddev/cv per benchmark,
# --benchmark_report_aggregates_only=true). Single-run numbers on a shared
# machine routinely jitter 5-20%; the committed records quote the *median*
# row, which is robust to one-sided noise (a background process can only
# slow a run down, so outliers skew high). When comparing before/after,
# compare medians and treat deltas within the reported cv as noise.
# Extra flags passed on the command line come after the defaults, so
# e.g. `bench/run_bench.sh build --benchmark_repetitions=1` overrides them.
#
# Usage: bench/run_bench.sh [build_dir] [extra google-benchmark flags...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
if [[ $# -gt 0 ]]; then shift; fi

default_flags=(
  --benchmark_repetitions=5
  --benchmark_report_aggregates_only=true
)

for name in micro_engine micro_sim micro_metrics micro_lint micro_repl; do
  bin="${build_dir}/bench/${name}"
  if [[ ! -x "${bin}" ]]; then
    echo "${name} not built at ${bin}; build with:" >&2
    echo "  cmake -B '${build_dir}' -S '${repo_root}' && cmake --build '${build_dir}' --target ${name}" >&2
    exit 1
  fi
  "${bin}" --json "${repo_root}/BENCH_${name}.json" "${default_flags[@]}" "$@"
done
