// Ablation: heartbeat probing cadence.
//
// The paper inserts a heartbeat row "periodically"; this ablation varies the
// period to show (a) the measured relative delay is robust to the probe
// cadence and (b) the probe's own overhead is negligible until the cadence
// becomes extreme.

#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"
#include "common/table_writer.h"
#include "common/time_types.h"
#include "harness/experiment.h"

int main() {
  using namespace clouddb;
  bench::PrintHeader(
      "Ablation: heartbeat period (1 slave, 100 users, 50/50, same zone)");

  TableWriter table({"heartbeat period", "heartbeats", "throughput (ops/s)",
                     "avg relative delay (ms)"});
  for (SimDuration period : {Millis(250), Millis(1000), Millis(5000)}) {
    harness::ExperimentConfig config = bench::FiftyFiftyBase();
    config.num_slaves = 1;
    config.num_users = 100;
    config.heartbeat.period = period;
    config.seed = 1618;
    auto result = harness::RunExperiment(config);
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "  [run] period=%s done\n",
                 FormatDuration(period).c_str());
    table.AddRow({FormatDuration(period),
                  StrFormat("%lld", static_cast<long long>(
                                        result->heartbeats_issued)),
                  StrFormat("%.1f", result->benchmark.throughput_ops),
                  StrFormat("%.1f", result->mean_relative_delay_ms)});
  }
  std::printf("%s", table.ToAscii().c_str());
  return 0;
}
