// Reproduces the paper's §IV-B.2 network measurement: "We measured 1/2
// round-trip time between the master in us-west-1a and the slave that uses
// different configurations of geographic locations by running ping command
// every second for a 20-minute period. The results suggest an average of 16,
// 21, and 173 milliseconds 1/2 round-trip time".

#include <cstdio>

#include "bench_util.h"
#include "cloud/cloud_provider.h"
#include "common/stats.h"
#include "net/network.h"
#include "cloud/instance.h"
#include "cloud/placement.h"
#include "common/str_util.h"
#include "common/table_writer.h"
#include "common/time_types.h"
#include "sim/simulation.h"

int main() {
  using namespace clouddb;
  bench::PrintHeader(
      "Half round-trip time by placement (ping every 1 s for 20 min)");

  sim::Simulation sim;
  cloud::CloudOptions options;
  cloud::CloudProvider provider(&sim, options, 99);
  cloud::Instance* master = provider.Launch(
      "master", cloud::InstanceType::kSmall, cloud::MasterPlacement());
  struct Target {
    const char* label;
    cloud::Placement placement;
    const char* paper;
  };
  Target targets[] = {
      {"same zone (us-west-1a)", cloud::SameZonePlacement(), "16 ms"},
      {"different zone (us-west-1b)", cloud::DifferentZonePlacement(), "21 ms"},
      {"different region (eu-west-1a)", cloud::DifferentRegionPlacement(),
       "173 ms"},
  };

  TableWriter table({"slave placement", "mean 1/2 RTT (ms)", "p95 (ms)",
                     "samples", "paper"});
  for (const Target& target : targets) {
    cloud::Instance* slave = provider.Launch(
        "slave", cloud::InstanceType::kSmall, target.placement);
    net::PingProbe probe(&sim, &provider.network(), master->node_id(),
                         slave->node_id());
    probe.Start(Seconds(1), 1200);
    sim.Run();
    Sample sample;
    sample.AddAll(probe.half_rtt_ms());
    table.AddRow({target.label, StrFormat("%.1f", sample.Mean()),
                  StrFormat("%.1f", sample.Percentile(0.95)),
                  StrFormat("%zu", sample.count()), target.paper});
  }
  std::printf("%s", table.ToAscii().c_str());
  return 0;
}
