// Ablation: row-based writeset replication + group shipping vs the paper's
// statement-based binlog, on the Fig. 5 staleness setup (50/50 mix, 2
// slaves, same zone). Statement apply re-runs every write's full SQL cost
// on each slave (apply_factor x the statement's nominal cost); writeset
// apply charges only the row-image delta, so the slave-side apply budget —
// the resource whose exhaustion drives Fig. 5's delay explosion — shrinks
// by roughly an order of magnitude. Group shipping additionally collapses
// per-event dump messages into one send per batch.

#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"
#include "common/table_writer.h"
#include "harness/experiment.h"

int main() {
  using namespace clouddb;
  bench::PrintHeader(
      "Ablation: statement vs row-based replication "
      "(2 slaves, same zone, 50/50)");

  struct Mode {
    const char* name;
    bool row_based;
    int batch_size;
  };
  const Mode kModes[] = {
      {"statement", false, 1},
      {"row-based, batch 1", true, 1},
      {"row-based, batch 64", true, 64},
  };

  TableWriter table({"users", "mode", "throughput (ops/s)",
                     "avg relative delay (ms)", "writeset applies",
                     "fallback applies", "batches shipped"});
  for (int users : {100, 150, 200}) {
    for (const Mode& mode : kModes) {
      harness::ExperimentConfig config = bench::FiftyFiftyBase();
      config.location = harness::LocationConfig::kSameZone;
      config.num_slaves = 2;
      config.num_users = users;
      config.row_based_repl = mode.row_based;
      config.binlog_batch_size = mode.batch_size;
      config.seed = 314;
      auto result = harness::RunExperiment(config);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "  [run] %d users, %s done\n", users, mode.name);
      table.AddRow({StrFormat("%d", users), mode.name,
                    StrFormat("%.1f", result->benchmark.throughput_ops),
                    StrFormat("%.1f", result->mean_relative_delay_ms),
                    StrFormat("%lld", static_cast<long long>(
                                          result->benchmark.writeset_applies)),
                    StrFormat("%lld", static_cast<long long>(
                                          result->benchmark.fallback_applies)),
                    StrFormat("%lld", static_cast<long long>(
                                          result->benchmark.binlog_batches))});
    }
  }
  std::printf("%s", table.ToAscii().c_str());
  std::printf(
      "\nExpected: with statement apply the slaves saturate first and the\n"
      "relative delay explodes with the workload (Fig. 5's shape); writeset\n"
      "apply cuts the per-event slave cost ~10x, deferring saturation and\n"
      "collapsing the delay at the same user counts. Batching barely moves\n"
      "the simulated delay further (the network was not the bottleneck) but\n"
      "divides dump-thread sends by the batch size.\n");
  return 0;
}
