// Reproduces paper Fig. 2 (a–c): end-to-end throughput with an increasing
// workload (50–200 users), an increasing number of database replicas (1–4
// slaves) and three geographic configurations of the slaves. Read/write
// ratio 50/50, initial data size 300, master in us-west-1a.
//
// Expected shape (paper §IV-A): 1 slave saturates around 100 users; 2 slaves
// push the saturation point to ~175 users; from the 3rd slave on the master
// is the bottleneck and extra slaves add (almost) nothing.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace clouddb;
  bench::PrintHeader(
      "Figure 2: throughput, 50/50 read/write, data size 300, 1-4 slaves");
  return bench::RunLocationSweeps(bench::FiftyFiftyBase(),
                                  bench::Fig2Slaves(), bench::Fig2Users(),
                                  /*print_throughput=*/true,
                                  /*print_delay=*/false,
                                  "Fig2", bench::SweepJobs(argc, argv));
}
