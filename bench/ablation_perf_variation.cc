// Ablation: instance performance variation (paper §IV-A).
//
// "The performance variation of instances is another factor that needs to be
// considered when deploying database in the cloud... poor-performing
// instances are launched randomly and can largely affect application
// performance." (The paper observed a 1-slave different-zone deployment
// underperform a different-region one purely because of the CPU lottery.)
//
// We rerun the same Fig. 2 point (1 slave, 125 users, same zone) across
// launch seeds, with the CPU-speed coefficient of variation at 0 and at the
// measured 0.21 (Schad et al.).

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/str_util.h"
#include "common/table_writer.h"
#include "harness/experiment.h"

int main() {
  using namespace clouddb;
  bench::PrintHeader(
      "Ablation: instance performance variation (1 slave, 125 users, 50/50)");

  TableWriter table({"cpu speed CoV", "runs", "mean tput", "min tput",
                     "max tput", "stddev", "spread (max/min)"});
  for (double cov : {0.0, 0.21}) {
    Sample throughputs;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      harness::ExperimentConfig config = bench::FiftyFiftyBase();
      config.num_slaves = 1;
      config.num_users = 125;
      config.cloud.cpu_speed_cov = cov;
      config.seed = seed * 7919;
      auto result = harness::RunExperiment(config);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "  [run] cov=%.2f seed=%llu -> %.1f ops/s\n", cov,
                   static_cast<unsigned long long>(seed),
                   result->benchmark.throughput_ops);
      throughputs.Add(result->benchmark.throughput_ops);
    }
    table.AddRow({StrFormat("%.2f", cov),
                  StrFormat("%zu", throughputs.count()),
                  StrFormat("%.1f", throughputs.Mean()),
                  StrFormat("%.1f", throughputs.Min()),
                  StrFormat("%.1f", throughputs.Max()),
                  StrFormat("%.2f", throughputs.StdDev()),
                  StrFormat("%.2fx", throughputs.Max() /
                                         std::max(0.001, throughputs.Min()))});
  }
  std::printf("%s", table.ToAscii().c_str());
  std::printf(
      "\nExpected: with CoV 0.21 the same deployment's throughput varies "
      "across launches\n(the CPU lottery); with CoV 0 it is stable. "
      "Validate instances before deploying.\n");
  return 0;
}
