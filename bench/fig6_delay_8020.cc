// Reproduces paper Fig. 6 (a–c): average relative replication delay with an
// increasing workload, 1–11 slaves, three geographic configurations.
// Read/write 80/20, data size 600.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace clouddb;
  bench::PrintHeader(
      "Figure 6: average relative replication delay (ms), 80/20, 1-11 slaves");
  return bench::RunLocationSweeps(bench::EightyTwentyBase(),
                                  bench::Fig3Slaves(), bench::Fig3Users(),
                                  /*print_throughput=*/false,
                                  /*print_delay=*/true,
                                  "Fig6", bench::SweepJobs(argc, argv));
}
