// Microbenchmarks (google-benchmark) for the discrete-event simulation
// kernel: schedule/fire chains, wide pending queues, cancel-heavy timeout
// patterns, periodic re-arming work, and a mixed workload shaped like a real
// experiment tick loop. These bound how many simulated events per wall-clock
// second every figure sweep can push (see DESIGN.md "Simulation kernel").
//
// Usage: micro_sim [--json <path>] [google-benchmark flags]
// --json writes the standard benchmark JSON report to <path>.

#include <benchmark/benchmark.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/time_types.h"
#include "sim/simulation.h"

namespace {

using namespace clouddb;

// One event in flight at a time: each firing schedules its successor. The
// purest measure of schedule+fire overhead (allocation, heap push/pop).
void BM_SimScheduleFireChain(benchmark::State& state) {
  const int64_t kEvents = 100000;
  for (auto _ : state) {
    sim::Simulation sim;
    int64_t count = 0;
    std::function<void()> tick = [&] {
      if (++count < kEvents) sim.ScheduleAfter(1, tick);
    };
    sim.ScheduleAt(0, tick);
    sim.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_SimScheduleFireChain);

// Wide queue: schedule everything up front, then drain. Stresses heap depth
// and per-event storage.
void BM_SimScheduleFireFanout(benchmark::State& state) {
  const int64_t kEvents = state.range(0);
  for (auto _ : state) {
    sim::Simulation sim;
    int64_t count = 0;
    for (int64_t i = 0; i < kEvents; ++i) {
      // Pseudo-shuffled times so the heap sees non-sorted inserts.
      sim.ScheduleAt((i * 7919) % 100003, [&count] { ++count; });
    }
    sim.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_SimScheduleFireFanout)->Arg(10000)->Arg(100000);

// The timeout pattern every protocol layer uses: each operation arms a guard
// event far in the future and cancels it when the (much earlier) completion
// fires. Almost every scheduled event is cancelled, never executed.
void BM_SimCancelHeavy(benchmark::State& state) {
  const int64_t kOps = 100000;
  for (auto _ : state) {
    sim::Simulation sim;
    int64_t completed = 0;
    std::function<void()> op = [&] {
      sim::Simulation::EventHandle timeout =
          sim.ScheduleAfter(Seconds(5), [] {});
      sim.ScheduleAfter(1, [&, timeout]() mutable {
        timeout.Cancel();
        if (++completed < kOps) op();
      });
    };
    sim.ScheduleAt(0, op);
    sim.Run();
    benchmark::DoNotOptimize(completed);
  }
  // One op = one timeout armed + cancelled, one completion fired.
  state.SetItemsProcessed(state.iterations() * kOps);
}
BENCHMARK(BM_SimCancelHeavy);

// Recurring work written the pre-timer way: every tick constructs a fresh
// closure and re-schedules itself. This is the idiom PeriodicTimer replaces;
// it keeps running on the new kernel for an apples-to-apples comparison.
void BM_SimPeriodicRescheduleClosure(benchmark::State& state) {
  const int kTimers = 64;
  const SimTime kHorizon = Seconds(2);
  for (auto _ : state) {
    sim::Simulation sim;
    int64_t ticks = 0;
    std::vector<std::function<void()>> bodies(kTimers);
    for (int i = 0; i < kTimers; ++i) {
      SimDuration period = Millis(1) + i;  // decorrelate firing times
      bodies[static_cast<size_t>(i)] = [&, i, period] {
        ++ticks;
        if (sim.Now() < kHorizon) {
          sim.ScheduleAfter(period, bodies[static_cast<size_t>(i)]);
        }
      };
      sim.ScheduleAfter(period, bodies[static_cast<size_t>(i)]);
    }
    sim.Run();
    benchmark::DoNotOptimize(ticks);
    state.counters["ticks"] = static_cast<double>(ticks);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 2000);
}
BENCHMARK(BM_SimPeriodicRescheduleClosure);

// The same recurring workload on the first-class PeriodicTimer: the kernel
// re-arms each slot in place, so a tick is pop-heap + push-heap + an indirect
// call — no closure construction, no allocation. Compare against
// BM_SimPeriodicRescheduleClosure for the periodic speedup.
void BM_SimPeriodicTimer(benchmark::State& state) {
  const int kTimers = 64;
  const SimTime kHorizon = Seconds(2);
  for (auto _ : state) {
    sim::Simulation sim;
    int64_t ticks = 0;
    std::vector<std::unique_ptr<sim::PeriodicTimer>> timers;
    timers.reserve(kTimers);
    for (int i = 0; i < kTimers; ++i) {
      timers.push_back(std::make_unique<sim::PeriodicTimer>());
      timers.back()->Start(&sim, Millis(1) + i, [&ticks] { ++ticks; });
    }
    sim.RunUntil(kHorizon);
    benchmark::DoNotOptimize(ticks);
    state.counters["ticks"] = static_cast<double>(ticks);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 2000);
}
BENCHMARK(BM_SimPeriodicTimer);

// A single Timer whose callback re-arms it — the think-time / retry-backoff
// shape where the next deadline is recomputed per occurrence.
void BM_SimTimerRearmChain(benchmark::State& state) {
  const int64_t kEvents = 100000;
  for (auto _ : state) {
    sim::Simulation sim;
    int64_t count = 0;
    sim::Timer timer;
    timer.Bind(&sim, [&] {
      if (++count < kEvents) timer.ArmAfter(1);
    });
    timer.ArmAfter(1);
    sim.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_SimTimerRearmChain);

// The cancel-heavy timeout pattern rewritten on a persistent Timer guard:
// arming and cancelling reuse one slab slot, so a timeout that never fires
// costs two O(log n)-free bookkeeping ops plus one heap push.
void BM_SimTimerTimeoutGuard(benchmark::State& state) {
  const int64_t kOps = 100000;
  for (auto _ : state) {
    sim::Simulation sim;
    int64_t completed = 0;
    sim::Timer guard;
    guard.Bind(&sim, [] {});
    std::function<void()> op = [&] {
      guard.ArmAfter(Seconds(5));
      sim.ScheduleAfter(1, [&] {
        guard.Cancel();
        if (++completed < kOps) op();
      });
    };
    sim.ScheduleAt(0, op);
    sim.Run();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() * kOps);
}
BENCHMARK(BM_SimTimerTimeoutGuard);

// Experiment-shaped mix: a few periodic sources (heartbeat, NTP, monitors),
// a request chain with per-request timeouts that always cancel, and fan-out
// completions — the steady-state event diet of a paper-figure run.
void BM_SimMixedWorkload(benchmark::State& state) {
  const int64_t kOps = 50000;
  for (auto _ : state) {
    sim::Simulation sim;
    int64_t ticks = 0;
    int64_t completed = 0;
    std::vector<std::function<void()>> periodic(8);
    for (int i = 0; i < 8; ++i) {
      SimDuration period = Millis(2) + i;
      periodic[static_cast<size_t>(i)] = [&, i, period] {
        ++ticks;
        if (completed < kOps) {
          sim.ScheduleAfter(period, periodic[static_cast<size_t>(i)]);
        }
      };
      sim.ScheduleAfter(period, periodic[static_cast<size_t>(i)]);
    }
    std::function<void()> op = [&] {
      sim::Simulation::EventHandle timeout =
          sim.ScheduleAfter(Seconds(1), [] {});
      sim.ScheduleAfter(3, [&, timeout]() mutable {
        timeout.Cancel();
        if (++completed < kOps) op();
      });
    };
    sim.ScheduleAt(0, op);
    sim.Run();
    benchmark::DoNotOptimize(ticks + completed);
  }
  state.SetItemsProcessed(state.iterations() * kOps);
}
BENCHMARK(BM_SimMixedWorkload);

}  // namespace

// BENCHMARK_MAIN(), plus a `--json <path>` convenience flag that expands to
// --benchmark_out=<path> --benchmark_out_format=json.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  std::string json_path;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    args.emplace_back(argv[i]);
  }
  if (!json_path.empty()) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> benchmark_argv;
  benchmark_argv.reserve(args.size());
  for (std::string& arg : args) benchmark_argv.push_back(arg.data());
  int benchmark_argc = static_cast<int>(benchmark_argv.size());
  benchmark::Initialize(&benchmark_argc, benchmark_argv.data());
  if (benchmark::ReportUnrecognizedArguments(benchmark_argc,
                                             benchmark_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
