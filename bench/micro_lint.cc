// Microbenchmarks for the clouddb_lint analysis core. The interprocedural
// passes (CFG + call graph + worklist dataflow) run on every CI lint gate,
// so their cost has to stay a small multiple of the token scan itself. The
// headline numbers: tokens/s through the front end, functions/s through CFG
// construction, a dataflow solve on a branchy loop, and the end-to-end
// tree scan (files/s) over a synthetic source tree.
//
// Usage: micro_lint [--json <path>] [google-benchmark flags]

#include <benchmark/benchmark.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "absint.h"
#include "callgraph.h"
#include "cfg.h"
#include "dataflow.h"
#include "frontend.h"
#include "linter.h"
#include "rules_flow.h"
#include "rules_interproc.h"

namespace {

using namespace clouddb::lint;

/// One representative function: branches, a counted loop, a switch — the
/// statement mix the CFG builder sees in real engine code.
std::string SyntheticFunction(const std::string& tag, int i) {
  std::string text = "int ";
  text += tag + std::to_string(i);
  text +=
      "(int a, int b) {\n"
      "  int acc = a;\n"
      "  for (int j = 0; j < b; j = j + 1) {\n"
      "    if (acc > 100) {\n"
      "      acc = acc - b;\n"
      "    } else {\n"
      "      acc = acc + j;\n"
      "    }\n"
      "  }\n";
  if (i > 0) {
    text += "  acc = acc + " + tag + std::to_string(i - 1) + "(acc, b);\n";
  }
  text +=
      "  switch (acc & 3) {\n"
      "    case 0:\n"
      "      return acc;\n"
      "    case 1:\n"
      "      return acc + 1;\n"
      "    default:\n"
      "      return acc + 2;\n"
      "  }\n"
      "}\n\n";
  return text;
}

std::string SyntheticSource(const std::string& tag, int functions) {
  std::string text = "namespace gen {\n\n";
  for (int i = 0; i < functions; ++i) text += SyntheticFunction(tag, i);
  text += "}  // namespace gen\n";
  return text;
}

/// A vec-style kernel with the shapes the abstract-interpretation rules have
/// to prove: guarded subscripts, a ceil-division word mask, a narrowing cast
/// behind an assert, and a guarded division.
std::string SyntheticKernel(const std::string& tag, int i) {
  std::string name = tag + std::to_string(i);
  std::string text = "int ";
  text += name;
  text +=
      "(const int* vals, int len, int* out) {\n"
      "  assert(len <= 1024);\n"
      "  int words = (len + 63) / 64;\n"
      "  int acc = 0;\n"
      "  for (int j = 0; j < len; ++j) {\n"
      "    out[j] = vals[j];\n"
      "    if (vals[j] != 0) acc = acc + out[j] / vals[j];\n"
      "  }\n"
      "  for (int w = 0; w < words; ++w) acc = acc + w;\n"
      "  return acc;\n"
      "}\n\n";
  return text;
}

void BM_Tokenize(benchmark::State& state) {
  std::string text = SyntheticSource("Helper", 100);
  size_t tokens = 0;
  for (auto _ : state) {
    SourceFile sf = ParseSource(text, "src/gen/a.cc");
    tokens = sf.tokens.size();
    benchmark::DoNotOptimize(sf.tokens.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tokens));
  state.SetLabel("tokens/it=" + std::to_string(tokens));
}
BENCHMARK(BM_Tokenize);

void BM_BuildIndex(benchmark::State& state) {
  std::string text = SyntheticSource("Helper", 100);
  SourceFile sf = ParseSource(text, "src/gen/a.cc");
  size_t functions = 0;
  for (auto _ : state) {
    FileIndex idx = BuildIndex(sf);
    functions = idx.functions.size();
    benchmark::DoNotOptimize(idx.functions.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(functions));
}
BENCHMARK(BM_BuildIndex);

void BM_BuildCfg(benchmark::State& state) {
  std::string text = SyntheticSource("Helper", 100);
  SourceFile sf = ParseSource(text, "src/gen/a.cc");
  FileIndex idx = BuildIndex(sf);
  for (auto _ : state) {
    for (const FunctionDef& fn : idx.functions) {
      Cfg cfg = BuildCfg(sf, idx, fn);
      benchmark::DoNotOptimize(cfg.nodes.data());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(idx.functions.size()));
}
BENCHMARK(BM_BuildCfg);

void BM_BuildCallGraph(benchmark::State& state) {
  std::string text = SyntheticSource("Helper", 100);
  SourceFile sf = ParseSource(text, "src/gen/a.cc");
  FileIndex idx = BuildIndex(sf);
  std::vector<AnalyzedFile> files{{&sf, &idx}};
  size_t functions = 0;
  for (auto _ : state) {
    CallGraph cg = BuildCallGraph(files);
    functions = cg.functions.size();
    benchmark::DoNotOptimize(cg.functions.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(functions));
}
BENCHMARK(BM_BuildCallGraph);

void BM_SolveForward(benchmark::State& state) {
  std::string text = SyntheticSource("Helper", 1);
  SourceFile sf = ParseSource(text, "src/gen/a.cc");
  FileIndex idx = BuildIndex(sf);
  Cfg cfg = BuildCfg(sf, idx, idx.functions.front());
  const size_t kFacts = 8;
  std::vector<std::vector<bool>> gen(cfg.nodes.size());
  std::vector<std::vector<bool>> kill(cfg.nodes.size());
  for (size_t n = 2; n < cfg.nodes.size(); ++n) {
    gen[n].assign(kFacts, false);
    gen[n][n % kFacts] = true;
    kill[n].assign(kFacts, false);
    kill[n][(n + 3) % kFacts] = true;
  }
  for (auto _ : state) {
    DataflowResult r = SolveForward(cfg, kFacts, gen, kill);
    benchmark::DoNotOptimize(r.out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cfg.nodes.size()));
  state.SetLabel("nodes=" + std::to_string(cfg.nodes.size()));
}
BENCHMARK(BM_SolveForward);

/// Abstract interpretation (phase A + phase B, widening + narrowing) over a
/// synthetic src/ tree of branchy functions and vec-style kernels. Items
/// processed is the `interval_ops` counter — expression evaluations through
/// the interval domain — so the rate reads as intervals solved per second.
void BM_AbsIntSolve(benchmark::State& state) {
  const int kFiles = 8;
  const int kFns = 6;
  std::vector<SourceFile> files;
  files.reserve(kFiles);
  for (int f = 0; f < kFiles; ++f) {
    std::string tag = "K";
    tag += std::to_string(f);
    tag += "_";
    std::string text = "namespace gen {\n\n";
    for (int i = 0; i < kFns; ++i) text += SyntheticFunction(tag + "b", i);
    for (int i = 0; i < kFns; ++i) text += SyntheticKernel(tag + "k", i);
    text += "}  // namespace gen\n";
    files.push_back(
        ParseSource(text, "src/gen/k" + std::to_string(f) + ".cc"));
  }
  std::vector<FileIndex> indexes;
  indexes.reserve(files.size());
  for (const SourceFile& sf : files) indexes.push_back(BuildIndex(sf));
  std::vector<AnalyzedFile> analyzed;
  analyzed.reserve(files.size());
  for (size_t i = 0; i < files.size(); ++i)
    analyzed.push_back({&files[i], &indexes[i]});
  InterprocContext ctx = BuildInterprocContext(analyzed);
  int64_t ops = 0;
  for (auto _ : state) {
    AbsInterpreter ai(ctx);
    ai.Run();
    ops = ai.interval_ops();
    benchmark::DoNotOptimize(ops);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * ops);
  state.SetLabel("interval_ops=" + std::to_string(ops) +
                 " fns=" + std::to_string(ctx.cg.functions.size()));
}
BENCHMARK(BM_AbsIntSolve);

/// End-to-end RunLint over a synthetic tree: every rule family, including
/// the interprocedural passes, on kFiles files of kFns functions each.
void BM_TreeScan(benchmark::State& state) {
  namespace fs = std::filesystem;
  const int kFiles = 24;
  const int kFns = 12;
  fs::path root = fs::temp_directory_path() / "clouddb_micro_lint_tree";
  fs::remove_all(root);
  fs::create_directories(root / "src/gen");
  for (int f = 0; f < kFiles; ++f) {
    std::string name = "file";
    name += std::to_string(f);
    name += ".cc";
    std::string tag = "F";
    tag += std::to_string(f);
    tag += "_";
    std::ofstream out(root / "src/gen" / name);
    out << SyntheticSource(tag, kFns);
  }
  Options opts;
  opts.root = root;
  int files_scanned = 0;
  for (auto _ : state) {
    LintResult r = RunLint(opts);
    files_scanned = r.files_scanned;
    benchmark::DoNotOptimize(r.diagnostics.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(files_scanned));
  state.SetLabel("files=" + std::to_string(files_scanned));
  fs::remove_all(root);
}
BENCHMARK(BM_TreeScan);

}  // namespace

// BENCHMARK_MAIN() plus the same `--json <path>` convenience flag as the
// other microbenchmarks.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  std::string json_path;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    args.emplace_back(argv[i]);
  }
  if (!json_path.empty()) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> benchmark_argv;
  benchmark_argv.reserve(args.size());
  for (std::string& arg : args) benchmark_argv.push_back(arg.data());
  int benchmark_argc = static_cast<int>(benchmark_argv.size());
  benchmark::Initialize(&benchmark_argc, benchmark_argv.data());
  if (benchmark::ReportUnrecognizedArguments(benchmark_argc,
                                             benchmark_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
