#ifndef CLOUDDB_BENCH_BENCH_UTIL_H_
#define CLOUDDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "harness/sweep.h"
#include "cloudstone/operations.h"
#include "common/time_types.h"
#include "harness/experiment.h"

namespace clouddb::bench {

/// True when the CLOUDDB_FAST environment variable is set: figure benches
/// then use shortened phases (2/5/1 minutes instead of the paper's 10/20/5)
/// for quick iteration. The shapes survive; absolute delays shrink.
inline bool FastMode() {
  const char* v = std::getenv("CLOUDDB_FAST");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Worker count for sweep parallelism: `--jobs N` on the command line wins,
/// else the CLOUDDB_JOBS environment variable, else 1 (serial). 0 means one
/// worker per hardware core. Output is byte-identical for every value — only
/// wall-clock time changes (see harness::SweepConfig::jobs).
inline int SweepJobs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--jobs") return std::atoi(argv[i + 1]);
  }
  const char* v = std::getenv("CLOUDDB_JOBS");
  return v != nullptr && v[0] != '\0' ? std::atoi(v) : 1;
}

/// Applies the paper's run structure (§III-B) or the fast variant.
inline void ApplyRunDurations(harness::ExperimentConfig* config) {
  if (FastMode()) {
    config->benchmark.ramp_up = Minutes(2);
    config->benchmark.steady = Minutes(5);
    config->benchmark.ramp_down = Minutes(1);
    config->idle_window = Minutes(1);
  } else {
    config->benchmark.ramp_up = Minutes(10);
    config->benchmark.steady = Minutes(20);
    config->benchmark.ramp_down = Minutes(5);
    config->idle_window = Minutes(2);
  }
}

/// The paper's 50/50 experiment base: data size 300, think time tuned so one
/// slave saturates around 100 concurrent users (Fig. 2a).
inline harness::ExperimentConfig FiftyFiftyBase() {
  harness::ExperimentConfig config;
  config.mix = cloudstone::WorkloadMix::FiftyFifty();
  config.data_scale = 300;
  config.benchmark.think_time_mean = Seconds(9);
  ApplyRunDurations(&config);
  return config;
}

/// The paper's 80/20 experiment base: data size 600, lighter think time to
/// reach the higher workloads of Fig. 3.
inline harness::ExperimentConfig EightyTwentyBase() {
  harness::ExperimentConfig config;
  config.mix = cloudstone::WorkloadMix::EightyTwenty();
  config.data_scale = 600;
  config.benchmark.think_time_mean = Seconds(7);
  ApplyRunDurations(&config);
  return config;
}

inline std::vector<int> Fig2Users() { return {50, 75, 100, 125, 150, 175, 200}; }
inline std::vector<int> Fig2Slaves() { return {1, 2, 3, 4}; }
inline std::vector<int> Fig3Users() {
  return {50, 100, 150, 200, 250, 300, 350, 400, 450};
}
inline std::vector<int> Fig3Slaves() {
  return {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Stderr progress line after each run of a sweep.
inline void Progress(const harness::SweepCell& cell) {
  std::fprintf(stderr,
               "  [run] slaves=%-2d users=%-3d -> %6.1f ops/s, delay %10.1f ms\n",
               cell.slaves, cell.users,
               cell.result.benchmark.throughput_ops,
               cell.result.mean_relative_delay_ms);
}

/// Runs one location's sweep and prints throughput and/or delay tables.
inline int RunLocationSweeps(const harness::ExperimentConfig& base,
                             const std::vector<int>& slaves,
                             const std::vector<int>& users,
                             bool print_throughput, bool print_delay,
                             const char* figure_prefix, int jobs = 1) {
  using harness::LocationConfig;
  const LocationConfig kLocations[] = {LocationConfig::kSameZone,
                                       LocationConfig::kDifferentZone,
                                       LocationConfig::kDifferentRegion};
  const char* kSubfig[] = {"a", "b", "c"};
  for (int i = 0; i < 3; ++i) {
    harness::SweepConfig sweep;
    sweep.base = base;
    sweep.base.location = kLocations[i];
    // Each location's sweep gets its own instance lottery (the paper
    // launched distinct machines per configuration).
    sweep.base.placement_seed = base.seed * 977 + static_cast<uint64_t>(i) + 1;
    sweep.slave_counts = slaves;
    sweep.user_counts = users;
    sweep.jobs = jobs;
    std::fprintf(stderr, "[%s%s] sweeping %s...\n", figure_prefix, kSubfig[i],
                 LocationConfigToString(kLocations[i]));
    auto result = harness::RunSweep(sweep, Progress);
    if (!result.ok()) {
      std::fprintf(stderr, "sweep failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    if (print_throughput) {
      PrintHeader(StrFormat(
          "%s%s: End-to-end throughput (ops/s) — %s, read/write %d/%d",
          figure_prefix, kSubfig[i], LocationConfigToString(kLocations[i]),
          static_cast<int>(base.mix.read_fraction * 100),
          static_cast<int>((1 - base.mix.read_fraction) * 100 + 0.5)));
      std::printf("%s",
                  result->ThroughputTable(slaves, users).ToAscii().c_str());
      std::printf("Observed saturation points (users right after max "
                  "throughput; 0 = still rising):\n");
      for (int s : slaves) {
        std::printf("  %2d slave%s: %d\n", s, s == 1 ? " " : "s",
                    result->SaturationUsers(s, users));
      }
    }
    if (print_delay) {
      PrintHeader(StrFormat(
          "%s%s: Average relative replication delay (ms) — %s",
          figure_prefix, kSubfig[i], LocationConfigToString(kLocations[i])));
      std::printf("%s", result->DelayTable(slaves, users).ToAscii().c_str());
    }
  }
  return 0;
}

}  // namespace clouddb::bench

#endif  // CLOUDDB_BENCH_BENCH_UTIL_H_
