// Microbenchmarks (google-benchmark) for the replication apply and shipping
// paths: slave-side statement apply (lex + parse + plan + execute) versus
// writeset direct apply (row images through Table::ApplyRowDelta), and the
// group-shipping batch sweep (network sends per replicated event as the ship
// batch size grows). These back the perf claims in DESIGN.md "Row-based
// replication & group shipping".
//
// Usage: micro_repl [--json <path>] [google-benchmark flags]
// --json writes the standard benchmark JSON report to <path>.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud_provider.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "db/binlog.h"
#include "db/database.h"
#include "db/writeset.h"
#include "db/writeset_apply.h"
#include "repl/master_node.h"
#include "repl/replication_cluster.h"
#include "sim/simulation.h"
#include "metrics/metric_registry.h"

namespace {

using namespace clouddb;

// Cloudstone-ish width: replicated rows in the paper's workload carry a
// handful of scalar and text columns, not a 2-column toy shape.
constexpr char kCreateTable[] =
    "CREATE TABLE items (id INT PRIMARY KEY, qty INT, price INT, owner INT, "
    "rating DOUBLE, label TEXT, note TEXT)";

std::string InsertSql(long long id, long long qty) {
  return StrFormat(
      "INSERT INTO items VALUES (%lld, %lld, %lld, %lld, %lld.5, "
      "'item-%lld', 'replicated row payload %lld')",
      id, qty, qty * 3 + 7, id % 1000, qty % 5, id, id);
}

std::string UpdateSql(long long id, long long qty) {
  return StrFormat(
      "UPDATE items SET qty = %lld, note = 'touched %lld' WHERE id = %lld",
      qty, qty, id);
}

// Deterministic literal-only write workload (insert/update/delete mix), the
// same shape the row-repl equivalence test replays. Every statement is
// writeset-coverable: no DDL, no functions.
std::vector<std::string> MakeWriteWorkload(uint64_t seed, int steps) {
  std::vector<std::string> sql;
  Rng rng(seed);
  std::vector<int64_t> live;
  int64_t next_id = 1;
  for (int i = 0; i < steps; ++i) {
    int64_t kind = rng.UniformInt(0, 9);
    if (live.empty() || kind < 5) {
      int64_t id = next_id++;
      sql.push_back(InsertSql(id, rng.UniformInt(-50, 50)));
      live.push_back(id);
    } else if (kind < 8) {
      int64_t id = live[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
      sql.push_back(UpdateSql(id, rng.UniformInt(-50, 50)));
    } else {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      sql.push_back(StrFormat("DELETE FROM items WHERE id = %lld",
                              static_cast<long long>(live[pick])));
      live.erase(live.begin() + static_cast<long>(pick));
    }
  }
  return sql;
}

// Resident rows both replicas start from, so tree operations run against a
// populated table rather than an empty one.
constexpr int kBaseRows = 512;
// Block ids sit far above the resident rows so replays never collide.
constexpr int64_t kBlockIdBase = 1'000'000;

// State-restoring workload: `blocks` blocks of INSERT → UPDATE → DELETE on a
// fresh id each, so the table ends every pass exactly where it started. That
// lets both apply benchmarks replay the same statement list (and the same
// captured row images — every op's before-image matches again) for as many
// iterations as google-benchmark wants, with no per-iteration replica
// rebuild polluting the timings.
std::vector<std::string> MakeBalancedWorkload(uint64_t seed, int blocks) {
  std::vector<std::string> sql;
  sql.reserve(static_cast<size_t>(blocks) * 3);
  Rng rng(seed);
  for (int i = 0; i < blocks; ++i) {
    long long id = kBlockIdBase + i;
    long long qty = static_cast<long long>(rng.UniformInt(-50, 50));
    sql.push_back(InsertSql(id, qty));
    sql.push_back(UpdateSql(id, rng.UniformInt(-50, 50)));
    sql.push_back(StrFormat("DELETE FROM items WHERE id = %lld", id));
  }
  return sql;
}

std::unique_ptr<db::Database> MakeNode(bool row_based) {
  db::DatabaseOptions options;
  options.enable_binlog = row_based;  // replicas: no log-slave-updates
  options.row_based_repl = row_based;
  auto node = std::make_unique<db::Database>(options);
  auto create = node->Execute(kCreateTable);
  if (!create.ok()) std::abort();
  for (int i = 1; i <= kBaseRows; ++i) {
    auto insert = node->Execute(InsertSql(i, i % 97));
    if (!insert.ok()) std::abort();
  }
  return node;
}

// Runs the workload through a row-based master and returns the binlog events
// it produced (statement text + captured writesets), skipping the events of
// the setup statements so every returned event is covered workload.
std::vector<db::BinlogEvent> CaptureEvents(const std::vector<std::string>& sql) {
  auto master = MakeNode(/*row_based=*/true);
  int64_t first_write = master->binlog().size();
  for (const std::string& s : sql) {
    auto result = master->Execute(s);
    if (!result.ok()) std::abort();
  }
  std::vector<db::BinlogEvent> events;
  for (int64_t i = first_write; i < master->binlog().size(); ++i) {
    events.push_back(master->binlog().At(i));
  }
  return events;
}

// Statement apply: the historical slave path — every replicated statement is
// fingerprinted against the statement cache, bound, planned, and executed
// from its SQL text (exactly what SlaveNode's SQL thread does).
void BM_SlaveApplyStatement(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<std::string> workload = MakeBalancedWorkload(/*seed=*/17, n / 3);
  auto replica = MakeNode(/*row_based=*/false);
  for (auto _ : state) {
    for (const std::string& sql : workload) {
      auto result = replica->Execute(sql);
      benchmark::DoNotOptimize(result.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
}
BENCHMARK(BM_SlaveApplyStatement)->Arg(768)->Arg(3072);

// Writeset apply: the row-based fast path — the master's captured row images
// go straight into the tables, no SQL front end.
void BM_SlaveApplyWriteset(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<db::BinlogEvent> events =
      CaptureEvents(MakeBalancedWorkload(/*seed=*/17, n / 3));
  auto replica = MakeNode(/*row_based=*/false);
  auto session = replica->CreateSession();
  int64_t ops = 0;
  for (const db::BinlogEvent& event : events) ops += event.statements.size();
  for (auto _ : state) {
    for (const db::BinlogEvent& event : events) {
      for (const db::StatementWriteset& ws : event.writesets) {
        auto rows = db::ApplyStatementWriteset(replica.get(), session.get(), ws);
        benchmark::DoNotOptimize(rows.ok());
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * ops);
}
BENCHMARK(BM_SlaveApplyWriteset)->Arg(768)->Arg(3072);

// Codec cost on the shipping path: serialize + deserialize one captured
// writeset event (what every group-shipped event pays on the wire).
void BM_BinlogEventRoundTrip(benchmark::State& state) {
  std::vector<db::BinlogEvent> events =
      CaptureEvents(MakeBalancedWorkload(/*seed=*/17, 64));
  size_t i = 0;
  for (auto _ : state) {
    std::string wire = db::SerializeBinlogEvent(events[i % events.size()]);
    auto decoded = db::DeserializeBinlogEvent(wire);
    benchmark::DoNotOptimize(decoded.ok());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BinlogEventRoundTrip);

// Group shipping sweep: one master + two slaves in the simulated cloud,
// replicating 256 covered writes at ship batch sizes 1/4/16/64. The
// `ship_messages` counter is the acceptance metric — network sends on the
// master's dump path per run, which batching must cut ~linearly (512 sends
// at batch 1 with two slaves, 8 at batch 64).
void BM_GroupShipping(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  constexpr int kWrites = 256;
  constexpr int kSlaves = 2;
  std::vector<std::string> workload = MakeWriteWorkload(/*seed=*/23, kWrites);
  int64_t messages = 0;
  int64_t events = 0;
  for (auto _ : state) {
    sim::Simulation sim;
    cloud::CloudOptions options;
    options.latency_jitter_sigma = 0.0;
    options.cpu_speed_cov = 0.0;
    options.max_initial_clock_offset = 0;
    options.max_clock_drift_ppm = 0.0;
    cloud::CloudProvider provider(&sim, options, 1);
    repl::ClusterConfig config;
    config.num_slaves = kSlaves;
    repl::ReplicationCluster cluster(&provider, config);
    cluster.SetRowBasedReplication(true);
    cluster.SetBinlogBatchSize(batch);
    auto create = cluster.master()->ExecuteDirect(kCreateTable);
    if (!create.ok()) std::abort();
    for (const std::string& sql : workload) {
      auto result = cluster.master()->ExecuteDirect(sql);
      if (!result.ok()) std::abort();
    }
    sim.Run();
    if (!cluster.FullyReplicated()) std::abort();
    messages = cluster.master()->messages_sent();
    events = cluster.master()->events_pushed();
  }
  // Deterministic per iteration, so report the last run's counts verbatim.
  state.counters["ship_messages"] =
      benchmark::Counter(static_cast<double>(messages));
  state.counters["events_shipped"] =
      benchmark::Counter(static_cast<double>(events));
  state.SetItemsProcessed(state.iterations() * kWrites);
}
BENCHMARK(BM_GroupShipping)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  std::string json_path;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    args.emplace_back(argv[i]);
  }
  if (!json_path.empty()) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> benchmark_argv;
  benchmark_argv.reserve(args.size());
  for (std::string& arg : args) benchmark_argv.push_back(arg.data());
  int benchmark_argc = static_cast<int>(benchmark_argv.size());
  benchmark::Initialize(&benchmark_argc, benchmark_argv.data());
  if (benchmark::ReportUnrecognizedArguments(benchmark_argc,
                                             benchmark_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
