// Microbenchmarks for the metrics spine: the registry is instrumented into
// every Execute-class hot path (db nodes, proxy routing, slave apply), so
// its primitives must be counter-increment cheap. The headline pair —
// BM_ExecutePathPlain vs BM_ExecutePathInstrumented — bounds the end-to-end
// overhead of the instrumentation actually placed on the Execute path
// (acceptance: < 5%).
//
// Usage: micro_metrics [--json <path>] [google-benchmark flags]

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "db/database.h"
#include "metrics/metric_registry.h"

namespace {

using namespace clouddb;

void BM_CounterIncrement(benchmark::State& state) {
  metrics::MetricRegistry registry("bench");
  metrics::Counter* counter = registry.AddCounter("bench.ops.total");
  for (auto _ : state) {
    counter->Increment();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterIncrement);

void BM_GaugeSet(benchmark::State& state) {
  metrics::MetricRegistry registry("bench");
  metrics::Gauge* gauge = registry.AddGauge("bench.queue.depth");
  double v = 0.0;
  for (auto _ : state) {
    gauge->Set(v += 1.0);
    benchmark::DoNotOptimize(gauge);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaugeSet);

void BM_ProbeRead(benchmark::State& state) {
  metrics::MetricRegistry registry("bench");
  int64_t backing = 0;
  metrics::Gauge* gauge = registry.AddProbe(
      "bench.backlog", [&backing] { return static_cast<double>(backing); });
  for (auto _ : state) {
    ++backing;
    benchmark::DoNotOptimize(gauge->value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProbeRead);

void BM_EwmaObserve(benchmark::State& state) {
  metrics::MetricRegistry registry("bench");
  metrics::Ewma* ewma = registry.AddEwma("bench.response_us");
  double v = 0.0;
  for (auto _ : state) {
    ewma->Observe(v += 3.0);
    benchmark::DoNotOptimize(ewma);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EwmaObserve);

void BM_HistogramObserve(benchmark::State& state) {
  metrics::MetricRegistry registry("bench");
  metrics::HistogramSampler* histogram = registry.AddHistogram(
      "bench.latency_us", /*first_upper=*/100.0, /*base=*/2.0,
      /*num_buckets=*/24);
  Rng rng(11);
  for (auto _ : state) {
    histogram->Observe(static_cast<double>(rng.UniformInt(1, 1000000)));
    benchmark::DoNotOptimize(histogram);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

void FillWideRegistry(metrics::MetricRegistry& registry, int n) {
  for (int i = 0; i < n; ++i) {
    registry.AddCounter(StrFormat("bench.counter_%d.total", i))
        ->Increment(i);
    registry.AddGauge(StrFormat("bench.gauge_%d.depth", i))
        ->Set(static_cast<double>(i));
    registry.AddEwma(StrFormat("bench.ewma_%d.us", i))
        ->Observe(static_cast<double>(i));
  }
}

void BM_RegistrySnapshot(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  metrics::MetricRegistry registry("bench");
  FillWideRegistry(registry, n);
  for (auto _ : state) {
    auto snapshot = registry.Snapshot();
    benchmark::DoNotOptimize(snapshot.size());
  }
  state.SetItemsProcessed(state.iterations() * n * 3);
}
BENCHMARK(BM_RegistrySnapshot)->ArgName("metrics_x3")->Arg(8)->Arg(64);

void BM_RegistryMergeFrom(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  metrics::MetricRegistry source("slave");
  FillWideRegistry(source, n);
  for (auto _ : state) {
    metrics::MetricRegistry total("cluster");
    total.MergeFrom(source);
    total.MergeFrom(source);
    benchmark::DoNotOptimize(total.Snapshot().size());
  }
  state.SetItemsProcessed(state.iterations() * n * 3 * 2);
}
BENCHMARK(BM_RegistryMergeFrom)->ArgName("metrics_x3")->Arg(8)->Arg(64);

void FillEventsDb(db::Database& database) {
  (void)database.Execute(
      "CREATE TABLE events (event_id BIGINT PRIMARY KEY, title TEXT, "
      "event_date BIGINT, created_by BIGINT)");
  for (int64_t i = 0; i < 2048; ++i) {
    (void)database.Execute(StrFormat(
        "INSERT INTO events VALUES (%lld, 'release party', %lld, %lld)",
        static_cast<long long>(i), static_cast<long long>(18200 + i % 365),
        static_cast<long long>(i % 97)));
  }
}

// Baseline: the Execute path with no metrics touched, the same fixed point
// SELECT the engine microbench uses.
void BM_ExecutePathPlain(benchmark::State& state) {
  db::Database database;
  FillEventsDb(database);
  const std::string sql =
      "SELECT event_id, title, event_date FROM events "
      "WHERE event_id = 1027 AND event_date >= 18200 AND created_by = 57";
  for (auto _ : state) {
    auto r = database.Execute(sql);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("plain");
}
BENCHMARK(BM_ExecutePathPlain);

// The same Execute plus exactly the per-operation metric work the
// instrumented hot paths do: two counter bumps (routed + completed) and one
// EWMA observation (response time) — what DbNode/proxy add per statement.
// Acceptance: within 5% of BM_ExecutePathPlain.
void BM_ExecutePathInstrumented(benchmark::State& state) {
  db::Database database;
  FillEventsDb(database);
  metrics::MetricRegistry registry("node");
  metrics::Counter* routed = registry.AddCounter("bench.ops.routed");
  metrics::Counter* completed = registry.AddCounter("bench.ops.completed");
  metrics::Ewma* response = registry.AddEwma("bench.ops.response_us");
  const std::string sql =
      "SELECT event_id, title, event_date FROM events "
      "WHERE event_id = 1027 AND event_date >= 18200 AND created_by = 57";
  double fake_clock = 0.0;
  for (auto _ : state) {
    routed->Increment();
    auto r = database.Execute(sql);
    completed->Increment();
    response->Observe(fake_clock += 2.0);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("instrumented");
}
BENCHMARK(BM_ExecutePathInstrumented);

}  // namespace

// BENCHMARK_MAIN() plus the same `--json <path>` convenience flag as
// micro_engine.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  std::string json_path;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    args.emplace_back(argv[i]);
  }
  if (!json_path.empty()) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> benchmark_argv;
  benchmark_argv.reserve(args.size());
  for (std::string& arg : args) benchmark_argv.push_back(arg.data());
  int benchmark_argc = static_cast<int>(benchmark_argv.size());
  benchmark::Initialize(&benchmark_argc, benchmark_argv.data());
  if (benchmark::ReportUnrecognizedArguments(benchmark_argc,
                                             benchmark_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
