// The control-loop figure (no paper counterpart — the experiment the paper's
// §V outlook asks for): staleness-SLA bound x offered load, under a mid-run
// load step, with the freshness tracker routing bounded reads and the
// elasticity controller scaling the replica tier.
//
// Expected shape: tight bounds sacrifice offload (reads fall back to the
// fresh master) but hold freshness near 100%; loose bounds keep offload high;
// under the load step the controller adds a replica, then retires it once
// the surge drains. A bound of 0 is the always-master degenerate row.

#include <cstdio>

#include "bench_util.h"
#include "client/rw_split_proxy.h"
#include "common/time_types.h"
#include "harness/control_experiment.h"
#include "harness/sweep_control.h"
#include "cloudstone/operations.h"
#include "common/str_util.h"

namespace {

void Progress(const clouddb::harness::ControlSweepCell& cell) {
  std::fprintf(stderr,
               "  [run] bound=%-10s users=%-3d -> fresh %6.2f%%, offload "
               "%5.1f%%, replicas peak %d final %d\n",
               cell.bound < 0 ? "unbounded"
                              : clouddb::StrFormat(
                                    "%lldms",
                                    static_cast<long long>(cell.bound / 1000))
                                    .c_str(),
               cell.users, cell.result.achieved_freshness_pct,
               cell.result.master_offload_pct,
               cell.result.peak_active_slaves,
               cell.result.final_active_slaves);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace clouddb;
  bench::PrintHeader(
      "Figure 7: freshness-SLA routing + elasticity under a load step");

  harness::ControlSweepConfig sweep;
  sweep.base.mix = cloudstone::WorkloadMix::FiftyFifty();
  sweep.base.data_scale = 100;
  sweep.base.initial_slaves = 1;
  sweep.base.controller.max_active_slaves = 4;
  if (bench::FastMode()) {
    sweep.base.warmup = Seconds(20);
    sweep.base.measure = Minutes(4);
    sweep.base.surge_start = Seconds(45);
    sweep.base.surge_duration = Seconds(90);
    sweep.user_counts = {10, 20};
  } else {
    sweep.base.warmup = Seconds(30);
    sweep.base.measure = Minutes(8);
    sweep.base.surge_start = Minutes(1);
    sweep.base.surge_duration = Minutes(3);
    sweep.user_counts = {10, 20, 40};
  }
  // 0 = always-master, -1 = unbounded; the interesting regime in between.
  sweep.staleness_bounds = {0, Millis(250), Millis(1000), Seconds(5),
                            client::kNoStalenessBound};
  sweep.jobs = bench::SweepJobs(argc, argv);

  auto result = harness::RunControlSweep(sweep, Progress);
  if (!result.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  bench::PrintHeader("Fig7a: achieved freshness (% of bounded reads within "
                     "bound at completion)");
  std::printf("%s", result->FreshnessTable(sweep.staleness_bounds,
                                           sweep.user_counts)
                        .ToAscii()
                        .c_str());
  bench::PrintHeader(
      "Fig7b: master offload (% of bounded reads served by a replica)");
  std::printf("%s", result->OffloadTable(sweep.staleness_bounds,
                                         sweep.user_counts)
                        .ToAscii()
                        .c_str());
  bench::PrintHeader("Fig7c: replica count under the controller");
  std::printf("%s", result->ReplicaTable(sweep.staleness_bounds,
                                         sweep.user_counts)
                        .ToAscii()
                        .c_str());

  // One representative cell's scaling timeline, to make the loop visible.
  const auto& cells = result->cells();
  if (!cells.empty()) {
    const harness::ControlSweepCell* shown = nullptr;
    for (const auto& cell : cells) {
      if (!cell.result.scaling_events.empty()) {
        shown = &cell;
        break;
      }
    }
    if (shown == nullptr) shown = &cells.back();
    bench::PrintHeader(StrFormat(
        "Scaling timeline (bound %s, %d users)",
        shown->bound < 0
            ? "unbounded"
            : StrFormat("%lldms", static_cast<long long>(shown->bound / 1000))
                  .c_str(),
        shown->users));
    std::printf("%s", shown->result.TimelineString().c_str());
  }
  return 0;
}
