// Fault storm: a scripted chaos scenario driven by the clouddb::fault
// subsystem, measuring the recovery metrics the paper's HA story implies
// (§I "automatic failover management", §II's lost-write risk).
//
// Timeline (all on the deterministic event queue):
//   t=20s   slave-2 <-> master partitioned for 10s  (slave-2 falls behind,
//           reconnects via its backoff/resync loop at heal)
//   t=60s   master crashes under live load; the monitor detects the death,
//           elects the most-up-to-date slave and promotes it
//   t=120s  the old master's instance reboots as a harmless zombie (the
//           proxy was repointed; nothing routes to it)
//
// The same (schedule, seed) pair is run twice and the two RecoveryReports
// are compared field-for-field — determinism is the subsystem's contract.

#include <cstdio>

#include "bench_util.h"
#include "cloudstone/schema.h"
#include "fault/fault_injector.h"
#include "fault/recovery_observer.h"
#include "repl/failover.h"
#include "client/rw_split_proxy.h"
#include "cloud/cloud_provider.h"
#include "cloud/instance.h"
#include "cloud/placement.h"
#include "cloudstone/benchmark_driver.h"
#include "cloudstone/operations.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/table_writer.h"
#include "common/time_types.h"
#include "db/database.h"
#include "fault/fault_schedule.h"
#include "repl/master_node.h"
#include "repl/replication_cluster.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"

using namespace clouddb;

namespace {

struct StormResult {
  fault::RecoveryReport report;
  int64_t failed_ops = 0;
  int64_t slave2_resync_requests = 0;
  int64_t faults_begun = 0;
  int64_t faults_healed = 0;
  bool converged = false;
};

StormResult RunStorm(uint64_t seed) {
  sim::Simulation sim;
  cloud::CloudProvider provider(&sim, cloud::CloudOptions{}, seed);

  repl::ClusterConfig cluster_config;
  cluster_config.num_slaves = 3;
  cluster_config.cost_model =
      cloudstone::MakeWorkloadCostModel(cloudstone::OperationCosts{});
  repl::ReplicationCluster cluster(&provider, cluster_config);
  cloud::Instance* app = provider.Launch("app", cloud::InstanceType::kLarge,
                                         cloud::MasterPlacement());
  cloud::Instance* monitor = provider.Launch(
      "monitor", cloud::InstanceType::kSmall, cloud::MasterPlacement());

  cloudstone::WorkloadState state;
  Status loaded = cloudstone::LoadInitialData(
      [&](const std::string& sql) {
        return cluster.ExecuteEverywhereDirect(sql);
      },
      150, seed, &state);
  if (!loaded.ok()) return StormResult{};

  std::vector<repl::SlaveNode*> slaves;
  for (int i = 0; i < 3; ++i) {
    slaves.push_back(cluster.slave(i));
    slaves.back()->StartAutoResync();
  }
  client::ReadWriteSplitProxy proxy(&sim, &provider.network(), app->node_id(),
                                    cluster.master(), slaves,
                                    client::ProxyOptions{});
  repl::FailoverManager manager(&sim, &provider.network(), monitor->node_id(),
                                cluster.master(), slaves,
                                repl::FailoverOptions{});
  manager.SetFailoverListener([&](repl::MasterNode* new_master) {
    proxy.ReplaceMaster(new_master);
    for (int i = 0; i < 3; ++i) {
      if (cluster.slave(i) == manager.promoted_slave()) {
        proxy.DeactivateSlave(i);
      }
    }
  });
  manager.Start();

  fault::RecoveryObserver observer(&sim, &manager);
  observer.Start();

  fault::FaultInjector injector(&sim, &provider);
  // The crash is the storm's primary fault: the observer's episode clock
  // runs on it, not on the warm-up partition.
  injector.SetFaultListener([&](const fault::FaultEvent& event, bool begin) {
    if (event.kind != fault::FaultKind::kCrash) return;
    if (begin) {
      observer.NoteFault();
    } else {
      observer.NoteHeal();
    }
  });
  fault::FaultSchedule schedule;
  schedule.Partition(Seconds(20), "slave-2", "master", Seconds(10))
      .Crash(Seconds(60), "master", Seconds(60));
  Status armed = injector.Arm(schedule);
  if (!armed.ok()) {
    std::fprintf(stderr, "arm failed: %s\n", armed.ToString().c_str());
    return StormResult{};
  }

  cloudstone::OperationGenerator generator(
      cloudstone::WorkloadMix::FiftyFifty(), cloudstone::OperationCosts{},
      &state, [&] { return app->LocalNowMicros(); });
  cloudstone::MetricsCollector metrics;
  std::vector<std::unique_ptr<cloudstone::UserEmulator>> users;
  Rng seeder(seed);
  SimTime horizon = Minutes(5);
  for (int i = 0; i < 60; ++i) {
    users.push_back(std::make_unique<cloudstone::UserEmulator>(
        &sim, &proxy, &generator, &metrics, seeder.Fork(i + 1), Seconds(6)));
    users.back()->Activate(Seconds(i % 20), horizon);
  }

  sim.RunUntil(horizon);
  manager.Stop();
  observer.Stop();
  for (repl::SlaveNode* slave : slaves) slave->StopAutoResync();
  sim.Run();

  StormResult result;
  result.report = observer.report();
  result.failed_ops = metrics.failures();
  result.slave2_resync_requests = cluster.slave(1)->resync_requests_sent();
  result.faults_begun = injector.faults_begun();
  result.faults_healed = injector.faults_healed();
  result.converged = true;
  for (repl::SlaveNode* slave : manager.active_slaves()) {
    if (!db::Database::ContentsEqual(manager.current_master()->database(),
                                     slave->database(), {})) {
      result.converged = false;
    }
  }
  return result;
}

std::string Cell(SimDuration d) {
  return d < 0 ? "-" : StrFormat("%.2f", ToSeconds(d));
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fault storm: partition + master crash under load (3 slaves, 60 users, "
      "50/50)");

  const uint64_t kSeed = 20120401;
  std::fprintf(stderr, "  [storm] run 1/2...\n");
  StormResult a = RunStorm(kSeed);
  std::fprintf(stderr, "  [storm] run 2/2 (same seed)...\n");
  StormResult b = RunStorm(kSeed);

  TableWriter table({"run", "detect (s)", "promote (s)", "lost writes",
                     "peak lag (events)", "peak backlog", "reconverge (s)",
                     "failed ops", "converged"});
  int run = 1;
  for (const StormResult* r : {&a, &b}) {
    table.AddRow(
        {StrFormat("%d", run++), Cell(r->report.TimeToDetect()),
         Cell(r->report.TimeToPromote()),
         StrFormat("%lld", static_cast<long long>(r->report.lost_writes)),
         StrFormat("%lld", static_cast<long long>(r->report.peak_lag_events)),
         StrFormat("%lld",
                   static_cast<long long>(r->report.peak_relay_backlog)),
         Cell(r->report.TimeToReconverge()),
         StrFormat("%lld", static_cast<long long>(r->failed_ops)),
         r->converged ? "yes" : "no"});
  }
  std::printf("%s", table.ToAscii().c_str());
  std::printf("\nfaults begun/healed: %lld/%lld; slave-2 resync requests: %lld\n",
              static_cast<long long>(a.faults_begun),
              static_cast<long long>(a.faults_healed),
              static_cast<long long>(a.slave2_resync_requests));
  bool deterministic =
      a.report == b.report && a.failed_ops == b.failed_ops &&
      a.slave2_resync_requests == b.slave2_resync_requests;
  std::printf("deterministic across same-seed runs: %s\n",
              deterministic ? "yes" : "NO — METRICS DIVERGED");
  std::printf(
      "\nExpected: detection within the probe policy's trip window, a "
      "handful of\nlost writes (asynchronous replication's inherent risk), "
      "lag spiking during\nthe partition and crash, and reconvergence shortly "
      "after the zombie reboot.\n");
  return deterministic && a.converged ? 0 : 1;
}
