// Reproduces paper Fig. 5 (a–c): average relative replication delay with an
// increasing workload, 1–4 slaves, three geographic configurations.
// Read/write 50/50, data size 300.
//
// Expected shape (paper §IV-B.2): delay rises with workload — by orders of
// magnitude once replicas saturate (up to 10^5..10^6 ms) — and falls as
// slaves are added; the placement's contribution (16/21/173 ms one-way) is
// minor compared to the workload's.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace clouddb;
  bench::PrintHeader(
      "Figure 5: average relative replication delay (ms), 50/50, 1-4 slaves");
  return bench::RunLocationSweeps(bench::FiftyFiftyBase(),
                                  bench::Fig2Slaves(), bench::Fig2Users(),
                                  /*print_throughput=*/false,
                                  /*print_delay=*/true,
                                  "Fig5", bench::SweepJobs(argc, argv));
}
