// Reproduces paper Fig. 3 (a–c): end-to-end throughput with an increasing
// workload (50–450 users), 1–11 slaves and three geographic configurations.
// Read/write ratio 80/20, initial data size 600.
//
// Expected shape (paper §IV-A): throughput scales with slaves until ~10
// slaves (9 in the different-region configuration), where the master
// saturates; maximum throughput decreases with distance (same zone >
// different zone > different region), and the degradation is larger than in
// Fig. 2 because the read percentage is higher.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace clouddb;
  bench::PrintHeader(
      "Figure 3: throughput, 80/20 read/write, data size 600, 1-11 slaves");
  return bench::RunLocationSweeps(bench::EightyTwentyBase(),
                                  bench::Fig3Slaves(), bench::Fig3Users(),
                                  /*print_throughput=*/true,
                                  /*print_delay=*/false,
                                  "Fig3", bench::SweepJobs(argc, argv));
}
