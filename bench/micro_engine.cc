// Microbenchmarks (google-benchmark) for the engine substrates: B+Tree
// operations, SQL parsing, the statement cache, statement execution, and the
// simulation kernel. These bound how many simulated operations per wall-clock
// second the experiment harness can push.
//
// Usage: micro_engine [--json <path>] [google-benchmark flags]
// --json writes the standard benchmark JSON report to <path>.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "db/bplus_tree.h"
#include "db/database.h"
#include "db/schema.h"
#include "db/sql_lexer.h"
#include "db/sql_parser.h"
#include "db/statement_cache.h"
#include "db/table.h"
#include "db/value.h"
#include "db/vec_chunk.h"
#include "sim/cpu_scheduler.h"
#include "sim/simulation.h"

namespace {

using namespace clouddb;

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextU64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_BPlusTreeInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    db::BPlusTree<int64_t, int64_t> tree;
    Rng rng(7);
    state.ResumeTiming();
    for (int64_t i = 0; i < n; ++i) {
      tree.Insert(rng.NextU64() >> 1, i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BPlusTreeFind(benchmark::State& state) {
  db::BPlusTree<int64_t, int64_t> tree;
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) tree.Insert(i * 2, i);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find(rng.UniformInt(0, 2 * n)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeFind)->Arg(10000)->Arg(100000);

// Sorted-insert baseline for BulkLoad below: n individual descents with
// splits, over already-ordered keys.
void BM_BPlusTreeSortedInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    db::BPlusTree<int64_t, int64_t> tree;
    state.ResumeTiming();
    for (int64_t i = 0; i < n; ++i) {
      tree.Insert(i, i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BPlusTreeSortedInsert)->Arg(10000)->Arg(100000);

// Bottom-up bulk load of the same sorted keys: leaves packed to full
// fan-out, no splits, no per-key descent. This is the CREATE INDEX backfill
// path; compare against BM_BPlusTreeSortedInsert at equal n.
void BM_BPlusTreeBulkLoad(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::pair<int64_t, int64_t>> items;
    items.reserve(n);
    for (int64_t i = 0; i < n; ++i) items.emplace_back(i, i);
    db::BPlusTree<int64_t, int64_t> tree;
    state.ResumeTiming();
    tree.BulkLoad(std::move(items));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BPlusTreeBulkLoad)->Arg(10000)->Arg(100000);

void BM_BPlusTreeScan100(benchmark::State& state) {
  db::BPlusTree<int64_t, int64_t> tree;
  for (int64_t i = 0; i < 100000; ++i) tree.Insert(i, i);
  Rng rng(4);
  for (auto _ : state) {
    int64_t lo = rng.UniformInt(0, 99899);
    int64_t hi = lo + 100;
    int64_t sum = 0;
    tree.Scan(&lo, true, &hi, false, [&](const int64_t&, const int64_t& v) {
      sum += v;
      return true;
    });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BPlusTreeScan100);

void BM_SqlParseSelect(benchmark::State& state) {
  const std::string sql =
      "SELECT event_id, title, event_date FROM events "
      "WHERE event_date >= 18200 AND created_by = 17 ORDER BY event_date "
      "LIMIT 10";
  for (auto _ : state) {
    auto parsed = db::ParseSql(sql);
    benchmark::DoNotOptimize(parsed.ok());
  }
}
BENCHMARK(BM_SqlParseSelect);

void BM_SqlParseInsert(benchmark::State& state) {
  const std::string sql =
      "INSERT INTO comments (comment_id, event_id, user_id, body, created_at)"
      " VALUES (12345, 678, 91, 'nice event, see you there', 1234567890)";
  for (auto _ : state) {
    auto parsed = db::ParseSql(sql);
    benchmark::DoNotOptimize(parsed.ok());
  }
}
BENCHMARK(BM_SqlParseInsert);

void BM_SqlTokenizeSelect(benchmark::State& state) {
  const std::string sql =
      "SELECT event_id, title, event_date FROM events "
      "WHERE event_date >= 18200 AND created_by = 17 ORDER BY event_date "
      "LIMIT 10";
  for (auto _ : state) {
    auto tokens = db::Tokenize(sql);
    benchmark::DoNotOptimize(tokens.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlTokenizeSelect);

// Hit-path throughput on identical text: one string compare against the
// last-call memo, no scan, no parse.
void BM_StatementCachePrepareHit(benchmark::State& state) {
  db::StatementCache cache;
  const std::string sql =
      "SELECT event_id, title, event_date FROM events "
      "WHERE event_date >= 18200 AND created_by = 17 ORDER BY event_date "
      "LIMIT 10";
  (void)cache.Prepare(sql);
  for (auto _ : state) {
    auto call = cache.Prepare(sql);
    benchmark::DoNotOptimize(call.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatementCachePrepareHit);

// Hit-path throughput when the text changes call to call (fresh literals):
// the fused fingerprint scan + LRU touch + literal binding, still no parse.
// Compare against BM_SqlParseSelect for the per-statement work removed.
void BM_StatementCachePrepareScanHit(benchmark::State& state) {
  db::StatementCache cache;
  const std::string sql[2] = {
      "SELECT event_id, title, event_date FROM events "
      "WHERE event_date >= 18200 AND created_by = 17 ORDER BY event_date "
      "LIMIT 10",
      "SELECT event_id, title, event_date FROM events "
      "WHERE event_date >= 18321 AND created_by = 3 ORDER BY event_date "
      "LIMIT 10"};
  (void)cache.Prepare(sql[0]);
  size_t i = 0;
  for (auto _ : state) {
    auto call = cache.Prepare(sql[i ^= 1]);
    benchmark::DoNotOptimize(call.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatementCachePrepareScanHit);

// Miss path: every statement has a distinct shape, so each Prepare parses a
// fresh template and (past capacity) evicts.
void BM_StatementCachePrepareMiss(benchmark::State& state) {
  db::StatementCache cache(/*capacity=*/64);
  int64_t i = 0;
  for (auto _ : state) {
    auto call = cache.Prepare(
        StrFormat("SELECT c%lld FROM t WHERE a = 1",
                  static_cast<long long>(i++ % 1000)));
    benchmark::DoNotOptimize(call.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatementCachePrepareMiss);

void BM_DatabaseInsert(benchmark::State& state) {
  db::Database database;
  (void)database.Execute("CREATE TABLE t (a BIGINT PRIMARY KEY, b TEXT)");
  int64_t key = 0;
  for (auto _ : state) {
    auto r = database.Execute(
        StrFormat("INSERT INTO t VALUES (%lld, 'value')",
                  static_cast<long long>(key++)));
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DatabaseInsert);

void BM_DatabaseSelectPk(benchmark::State& state) {
  db::Database database;
  (void)database.Execute("CREATE TABLE t (a BIGINT PRIMARY KEY, b TEXT)");
  for (int64_t i = 0; i < 10000; ++i) {
    (void)database.Execute(StrFormat("INSERT INTO t VALUES (%lld, 'v')",
                                     static_cast<long long>(i)));
  }
  Rng rng(5);
  for (auto _ : state) {
    auto r = database.Execute(StrFormat(
        "SELECT * FROM t WHERE a = %lld",
        static_cast<long long>(rng.UniformInt(0, 9999))));
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DatabaseSelectPk);

void BM_DatabaseIndexRange(benchmark::State& state) {
  db::Database database;
  (void)database.Execute(
      "CREATE TABLE t (a BIGINT PRIMARY KEY, d BIGINT)");
  (void)database.Execute("CREATE INDEX idx_d ON t (d)");
  Rng fill(6);
  for (int64_t i = 0; i < 10000; ++i) {
    (void)database.Execute(StrFormat(
        "INSERT INTO t VALUES (%lld, %lld)", static_cast<long long>(i),
        static_cast<long long>(fill.UniformInt(0, 365))));
  }
  Rng rng(7);
  for (auto _ : state) {
    int64_t lo = rng.UniformInt(0, 355);
    auto r = database.Execute(StrFormat(
        "SELECT a FROM t WHERE d >= %lld AND d < %lld LIMIT 10",
        static_cast<long long>(lo), static_cast<long long>(lo + 10)));
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DatabaseIndexRange);

db::DatabaseOptions EventsDbOptions(bool cache_enabled) {
  db::DatabaseOptions options;
  options.statement_cache = cache_enabled;
  return options;
}

void FillEventsTable(db::Database& database) {
  (void)database.Execute(
      "CREATE TABLE events (event_id BIGINT PRIMARY KEY, title TEXT, "
      "event_date BIGINT, created_by BIGINT)");
  for (int64_t i = 0; i < 2048; ++i) {
    (void)database.Execute(StrFormat(
        "INSERT INTO events VALUES (%lld, 'release party', %lld, %lld)",
        static_cast<long long>(i), static_cast<long long>(18200 + i % 365),
        static_cast<long long>(i % 97)));
  }
}

// The PR's headline comparison: end-to-end Execute() throughput of one
// repeated statement (a fixed point SELECT, as issued by an application's
// fixed query set) with the statement cache on (cache:1) vs off (cache:0).
// With the cache on the repeated text resolves to the cached template
// without a parse; off, it is parsed from scratch every call.
void BM_DatabaseExecuteRepeated(benchmark::State& state) {
  const bool cache_enabled = state.range(0) != 0;
  db::Database database(EventsDbOptions(cache_enabled));
  FillEventsTable(database);
  const std::string sql =
      "SELECT event_id, title, event_date FROM events "
      "WHERE event_id = 1027 AND event_date >= 18200 AND created_by = 57";
  for (auto _ : state) {
    auto r = database.Execute(sql);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(cache_enabled ? "cache_on" : "cache_off");
}
BENCHMARK(BM_DatabaseExecuteRepeated)->ArgName("cache")->Arg(0)->Arg(1);

// Same comparison when every call carries a fresh literal: the text differs
// call to call, so the cache path pays the fingerprint scan but still skips
// the parse.
void BM_DatabaseExecuteParamVaried(benchmark::State& state) {
  const bool cache_enabled = state.range(0) != 0;
  db::Database database(EventsDbOptions(cache_enabled));
  FillEventsTable(database);
  Rng rng(9);
  for (auto _ : state) {
    auto r = database.Execute(StrFormat(
        "SELECT event_id, title, event_date FROM events WHERE event_id = %lld",
        static_cast<long long>(rng.UniformInt(0, 2047))));
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(cache_enabled ? "cache_on" : "cache_off");
}
BENCHMARK(BM_DatabaseExecuteParamVaried)->ArgName("cache")->Arg(0)->Arg(1);

db::DatabaseOptions VecDbOptions(bool vectorized) {
  db::DatabaseOptions options;
  options.vectorized_exec = vectorized;
  return options;
}

// Tentpole comparison: a full-table-scan SELECT whose WHERE touches only
// non-indexed columns, executed row-at-a-time (vec:0, tree-walking
// EvaluateExpr per row) vs batch-at-a-time (vec:1, compiled predicate
// bytecode over 1024-row column chunks). Results are bit-identical; only
// the evaluation strategy differs.
void BM_DatabaseScanFilter(benchmark::State& state) {
  const bool vectorized = state.range(0) != 0;
  db::Database database(VecDbOptions(vectorized));
  FillEventsTable(database);
  const std::string sql =
      "SELECT event_id FROM events "
      "WHERE created_by = 57 AND event_date >= 18300";
  for (auto _ : state) {
    auto r = database.Execute(sql);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations() * 2048);
  state.SetLabel(vectorized ? "vec_on" : "vec_off");
}
BENCHMARK(BM_DatabaseScanFilter)->ArgName("vec")->Arg(0)->Arg(1);

// Vectorized aggregation over a filtered scan: the filter runs through the
// predicate kernels and the aggregates accumulate directly over column
// chunks (vec:1) instead of per-row Value inspection (vec:0).
void BM_DatabaseAggregate(benchmark::State& state) {
  const bool vectorized = state.range(0) != 0;
  db::Database database(VecDbOptions(vectorized));
  FillEventsTable(database);
  const std::string sql =
      "SELECT COUNT(*), SUM(event_date), MIN(event_date), MAX(created_by) "
      "FROM events WHERE created_by < 50";
  for (auto _ : state) {
    auto r = database.Execute(sql);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations() * 2048);
  state.SetLabel(vectorized ? "vec_on" : "vec_off");
}
BENCHMARK(BM_DatabaseAggregate)->ArgName("vec")->Arg(0)->Arg(1);

// Dispatch cost isolated from SQL: visiting every row of a table through
// the type-erased ScanAll (one std::function call per row), the templated
// ForEachRow (inlined visitor, no type erasure), and the chunked visitor
// (one indirect call per 1024 rows, plus the cost of staging id/row
// pointers into chunk arrays — which pays off only when the per-chunk work
// is substantial, as in the vectorized filter kernels).
void BM_TableVisitDispatch(benchmark::State& state) {
  const int64_t mode = state.range(0);
  auto schema = db::Schema::Create({
      {"id", db::ValueType::kInt64, false, true},
      {"v", db::ValueType::kInt64, false, false},
  });
  db::Table table("t", std::move(schema).value());
  for (int64_t i = 0; i < 8192; ++i) {
    (void)table.Insert({db::Value(i), db::Value(i % 97)});
  }
  for (auto _ : state) {
    int64_t sum = 0;
    if (mode == 2) {
      table.ForEachChunk<db::kVecChunkSize>(
          [&](const db::RowId* ids, const db::Row* const* rows, size_t len) {
            for (size_t i = 0; i < len; ++i) {
              sum += (*rows[i])[1].AsInt64() + ids[i];
            }
            return true;
          });
    } else if (mode == 1) {
      table.ForEachRow([&](db::RowId id, const db::Row& row) {
        sum += row[1].AsInt64() + id;
        return true;
      });
    } else {
      table.ScanAll([&](db::RowId id, const db::Row& row) {
        sum += row[1].AsInt64() + id;
        return true;
      });
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 8192);
  state.SetLabel(mode == 2 ? "chunked" : (mode == 1 ? "for_each_row"
                                                    : "scan_all"));
}
BENCHMARK(BM_TableVisitDispatch)->ArgName("mode")->Arg(0)->Arg(1)->Arg(2);

void BM_SimulationEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int64_t count = 0;
    const int64_t kEvents = 100000;
    std::function<void()> tick = [&] {
      if (++count < kEvents) sim.ScheduleAfter(1, tick);
    };
    sim.ScheduleAt(0, tick);
    sim.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SimulationEventThroughput);

void BM_CpuSchedulerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim::CpuScheduler cpu(&sim, 1, 1.0);
    for (int i = 0; i < 10000; ++i) cpu.Submit(10, [] {});
    sim.Run();
    benchmark::DoNotOptimize(cpu.JobsCompleted());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_CpuSchedulerChurn);

}  // namespace

// BENCHMARK_MAIN(), plus a `--json <path>` convenience flag that expands to
// --benchmark_out=<path> --benchmark_out_format=json.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  std::string json_path;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    args.emplace_back(argv[i]);
  }
  if (!json_path.empty()) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> benchmark_argv;
  benchmark_argv.reserve(args.size());
  for (std::string& arg : args) benchmark_argv.push_back(arg.data());
  int benchmark_argc = static_cast<int>(benchmark_argv.size());
  benchmark::Initialize(&benchmark_argc, benchmark_argv.data());
  if (benchmark::ReportUnrecognizedArguments(benchmark_argc,
                                             benchmark_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
