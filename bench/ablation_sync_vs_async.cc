// Ablation: asynchronous vs synchronous replication (the §II trade-off).
//
// The paper deploys MySQL's asynchronous replication and accepts staleness;
// synchronous replication would bound staleness at the cost of write latency
// that grows with the slowest replica's distance. This ablation quantifies
// both sides on the same workload.

#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"
#include "common/table_writer.h"
#include "harness/experiment.h"

int main() {
  using namespace clouddb;
  bench::PrintHeader(
      "Ablation: asynchronous vs synchronous replication "
      "(2 slaves, 100 users, 50/50)");

  TableWriter table({"placement", "mode", "throughput (ops/s)",
                     "mean resp (ms)", "p95 resp (ms)",
                     "avg relative delay (ms)"});
  for (auto location : {harness::LocationConfig::kSameZone,
                        harness::LocationConfig::kDifferentRegion}) {
    for (bool sync : {false, true}) {
      harness::ExperimentConfig config = bench::FiftyFiftyBase();
      config.location = location;
      config.num_slaves = 2;
      config.num_users = 100;
      config.synchronous_replication = sync;
      config.seed = 314;
      auto result = harness::RunExperiment(config);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "  [run] %s %s done\n",
                   LocationConfigToString(location), sync ? "sync" : "async");
      table.AddRow({LocationConfigToString(location),
                    sync ? "synchronous" : "asynchronous",
                    StrFormat("%.1f", result->benchmark.throughput_ops),
                    StrFormat("%.1f", result->benchmark.mean_response_ms),
                    StrFormat("%.1f", result->benchmark.p95_response_ms),
                    StrFormat("%.1f", result->mean_relative_delay_ms)});
    }
  }
  std::printf("%s", table.ToAscii().c_str());
  std::printf(
      "\nExpected: synchronous mode inflates response times — write latency\n"
      "now includes the slowest replica's apply round trip, which is why the\n"
      "penalty explodes across regions. The heartbeat-measured apply delay\n"
      "barely changes (events still traverse the network and the slave CPU),\n"
      "but the *client-observed* staleness window is eliminated: a write is\n"
      "acknowledged only after every slave has applied it (§II).\n");
  return 0;
}
