// Reproduces paper Fig. 4: measured time differences between two instances
// over a 20-minute period, with and without per-second NTP synchronization.
//
// Paper's measurements: sync-once drifts linearly from ~7 ms to ~50 ms
// (median 28.23 ms, stddev 12.31); sync-every-second stays within 1–8 ms
// (median 3.30 ms, stddev 1.19). The clock model is calibrated to that pair
// of instances: ±18 ppm drift and ±1.65 ms NTP path bias.

#include <cstdio>

#include "bench_util.h"
#include "cloud/cloud_provider.h"
#include "cloud/ntp.h"
#include "common/stats.h"
#include "cloud/instance.h"
#include "cloud/placement.h"
#include "common/str_util.h"
#include "common/table_writer.h"
#include "common/time_types.h"
#include "sim/simulation.h"

namespace {

using namespace clouddb;

struct Scenario {
  const char* name;
  Sample diffs;
  std::vector<double> timeline;  // one sample per 10 s for the table
};

Scenario RunScenario(bool sync_every_second) {
  sim::Simulation sim;
  cloud::CloudOptions options;
  cloud::CloudProvider provider(&sim, options, 1);
  cloud::Instance* a = provider.Launch("i-1", cloud::InstanceType::kSmall,
                                       cloud::MasterPlacement());
  cloud::Instance* b = provider.Launch("i-2", cloud::InstanceType::kSmall,
                                       cloud::MasterPlacement());
  // Calibrated to the paper's measured instance pair.
  a->clock().set_drift_ppm(18.0);
  b->clock().set_drift_ppm(-18.0);

  cloud::NtpOptions ntp;
  ntp.residual_noise_ms = 0.85;
  cloud::NtpOptions ntp_a = ntp;
  cloud::NtpOptions ntp_b = ntp;
  if (sync_every_second) {
    ntp_a.fixed_bias_ms = 1.65;
    ntp_b.fixed_bias_ms = -1.65;
  } else {
    // The paper's sync-once run starts ~7 ms apart (a different pair of NTP
    // exchanges than the per-second run) and drifts to ~50 ms.
    ntp_a.fixed_bias_ms = 3.5;
    ntp_b.fixed_bias_ms = -3.5;
  }
  cloud::NtpClient client_a(&sim, a, ntp_a, 11);
  cloud::NtpClient client_b(&sim, b, ntp_b, 12);

  if (sync_every_second) {
    client_a.StartPeriodic();
    client_b.StartPeriodic();
  } else {
    client_a.SyncOnce();
    client_b.SyncOnce();
  }

  cloud::ClockComparison comparison(&sim, a, b);
  comparison.Start(Seconds(1), 1201);  // every second for 20 minutes
  sim.RunUntil(Minutes(20) + Seconds(1));
  client_a.Stop();
  client_b.Stop();
  sim.Run();

  Scenario out;
  out.name = sync_every_second ? "Sync every second" : "Sync once at beginning";
  out.diffs.AddAll(comparison.differences_ms());
  for (size_t i = 0; i < comparison.differences_ms().size(); i += 60) {
    out.timeline.push_back(comparison.differences_ms()[i]);
  }
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 4: time differences between two instances, 20-minute period");

  Scenario once = RunScenario(false);
  Scenario periodic = RunScenario(true);

  TableWriter table({"timeline", "sync once (ms)", "sync every second (ms)"});
  for (size_t i = 0; i < once.timeline.size(); ++i) {
    table.AddRow({StrFormat("%02zu:00", i),
                  StrFormat("%.2f", once.timeline[i]),
                  StrFormat("%.2f", periodic.timeline[i])});
  }
  std::printf("%s", table.ToAscii().c_str());

  std::printf("\nSummary over all 1-second samples:\n");
  std::printf("  %-24s median %6.2f ms  stddev %5.2f  min %5.2f  max %5.2f"
              "   (paper: median 28.23, stddev 12.31, range ~7..50)\n",
              once.name, once.diffs.Median(), once.diffs.StdDev(),
              once.diffs.Min(), once.diffs.Max());
  std::printf("  %-24s median %6.2f ms  stddev %5.2f  min %5.2f  max %5.2f"
              "   (paper: median 3.30, stddev 1.19, range ~1..8)\n",
              periodic.name, periodic.diffs.Median(), periodic.diffs.StdDev(),
              periodic.diffs.Min(), periodic.diffs.Max());
  return 0;
}
