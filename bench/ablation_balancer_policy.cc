// Ablation: read load-balancing policy of the application-side proxy.
//
// The paper's proxy distributes reads round-robin and §IV-B.2 suggests that
// "a smart load balancer which is able of balancing the operations based on
// estimated processing time" would make geographic replication practical.
// With instance performance variation enabled (CoV 0.21), slaves are
// heterogeneous and round-robin overloads the slow ones.

#include <cstdio>

#include "bench_util.h"
#include "client/rw_split_proxy.h"
#include "common/str_util.h"
#include "common/table_writer.h"
#include "harness/experiment.h"

int main() {
  using namespace clouddb;
  bench::PrintHeader(
      "Ablation: proxy balancing policy (4 heterogeneous slaves, 250 users, "
      "80/20)");

  TableWriter table({"policy", "throughput (ops/s)", "mean resp (ms)",
                     "p95 resp (ms)", "avg relative delay (ms)"});
  for (auto policy : {client::BalancePolicy::kRoundRobin,
                      client::BalancePolicy::kLeastOutstanding,
                      client::BalancePolicy::kLatencyWeighted}) {
    harness::ExperimentConfig config = bench::EightyTwentyBase();
    config.num_slaves = 4;
    config.num_users = 250;
    config.policy = policy;
    // Exaggerated heterogeneity so the policy difference is visible.
    config.cloud.cpu_speed_cov = 0.35;
    config.seed = 2718;
    auto result = harness::RunExperiment(config);
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "  [run] %s done\n", BalancePolicyToString(policy));
    table.AddRow({client::BalancePolicyToString(policy),
                  StrFormat("%.1f", result->benchmark.throughput_ops),
                  StrFormat("%.1f", result->benchmark.mean_response_ms),
                  StrFormat("%.1f", result->benchmark.p95_response_ms),
                  StrFormat("%.1f", result->mean_relative_delay_ms)});
  }
  std::printf("%s", table.ToAscii().c_str());
  std::printf(
      "\nExpected: queue/latency-aware policies beat round-robin on "
      "response time\nwhen slave instances differ in speed.\n");
  return 0;
}
