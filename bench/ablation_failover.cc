// Ablation: automatic failover — unavailability window vs detection policy.
//
// The paper motivates the replication architecture with "automatic failover
// management and ensure high availability" (§I). This drill crashes the
// master mid-run under live load and measures, per detection policy, how
// long writes stay unavailable, how many operations fail, and whether
// committed writes were lost (§II's asynchronous-replication risk).

#include <cstdio>

#include "bench_util.h"
#include "cloudstone/schema.h"
#include "repl/failover.h"
#include "client/rw_split_proxy.h"
#include "cloud/cloud_provider.h"
#include "cloud/instance.h"
#include "cloud/placement.h"
#include "cloudstone/benchmark_driver.h"
#include "cloudstone/operations.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/table_writer.h"
#include "common/time_types.h"
#include "db/database.h"
#include "repl/master_node.h"
#include "repl/replication_cluster.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"

using namespace clouddb;

namespace {

struct DrillResult {
  double detection_s = 0.0;      // crash -> failover completed
  int64_t failed_ops = 0;        // Unavailable responses seen by users
  double tput_before = 0.0;      // ops/s in the 2 min before the crash
  double tput_after = 0.0;       // ops/s in the 2 min after recovery
  bool lost_writes = false;
  bool converged = false;
};

DrillResult RunDrill(const repl::FailoverOptions& failover_options,
                     uint64_t seed) {
  sim::Simulation sim;
  cloud::CloudOptions cloud_options;
  cloud::CloudProvider provider(&sim, cloud_options, seed);

  repl::ClusterConfig cluster_config;
  cluster_config.num_slaves = 3;
  cluster_config.cost_model =
      cloudstone::MakeWorkloadCostModel(cloudstone::OperationCosts{});
  repl::ReplicationCluster cluster(&provider, cluster_config);
  cloud::Instance* app = provider.Launch("app", cloud::InstanceType::kLarge,
                                         cloud::MasterPlacement());
  cloud::Instance* monitor = provider.Launch(
      "monitor", cloud::InstanceType::kSmall, cloud::MasterPlacement());

  cloudstone::WorkloadState state;
  Status loaded = cloudstone::LoadInitialData(
      [&](const std::string& sql) {
        return cluster.ExecuteEverywhereDirect(sql);
      },
      150, seed, &state);
  if (!loaded.ok()) return DrillResult{};

  std::vector<repl::SlaveNode*> slaves;
  for (int i = 0; i < 3; ++i) slaves.push_back(cluster.slave(i));
  client::ReadWriteSplitProxy proxy(&sim, &provider.network(), app->node_id(),
                                    cluster.master(), slaves,
                                    client::ProxyOptions{});
  repl::FailoverManager manager(&sim, &provider.network(), monitor->node_id(),
                                cluster.master(), slaves, failover_options);
  DrillResult result;
  SimTime crash_at = Minutes(4);
  SimTime failover_done_at = 0;
  manager.SetFailoverListener([&](repl::MasterNode* new_master) {
    failover_done_at = sim.Now();
    proxy.ReplaceMaster(new_master);
    for (int i = 0; i < 3; ++i) {
      if (cluster.slave(i) == manager.promoted_slave()) {
        proxy.DeactivateSlave(i);
      }
    }
  });
  manager.Start();

  cloudstone::OperationGenerator generator(
      cloudstone::WorkloadMix::FiftyFifty(), cloudstone::OperationCosts{},
      &state, [&] { return app->LocalNowMicros(); });
  cloudstone::MetricsCollector metrics;
  std::vector<std::unique_ptr<cloudstone::UserEmulator>> users;
  Rng seeder(seed);
  SimTime horizon = Minutes(12);
  for (int i = 0; i < 60; ++i) {
    users.push_back(std::make_unique<cloudstone::UserEmulator>(
        &sim, &proxy, &generator, &metrics, seeder.Fork(i + 1), Seconds(6)));
    users.back()->Activate(Seconds(i), horizon);
  }

  sim.ScheduleAt(crash_at, [&] { cluster.master()->set_online(false); });
  sim.RunUntil(horizon);
  manager.Stop();
  sim.Run();

  double window_s = ToSeconds(Minutes(2));
  result.detection_s =
      failover_done_at > 0 ? ToSeconds(failover_done_at - crash_at) : -1.0;
  result.failed_ops = metrics.failures();
  result.tput_before = static_cast<double>(metrics.CountInWindow(
                           crash_at - Minutes(2), crash_at)) /
                       window_s;
  result.tput_after =
      failover_done_at > 0
          ? static_cast<double>(metrics.CountInWindow(
                failover_done_at, failover_done_at + Minutes(2))) /
                window_s
          : 0.0;
  result.lost_writes = manager.lost_writes_possible();
  result.converged = true;
  for (repl::SlaveNode* slave : manager.active_slaves()) {
    if (!db::Database::ContentsEqual(manager.current_master()->database(),
                                     slave->database(), {"heartbeat"})) {
      result.converged = false;
    }
  }
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: failover drill — master crash under load (3 slaves, 60 "
      "users, 50/50)");

  TableWriter table({"probe interval", "timeout", "failures to trip",
                     "crash->recovered (s)", "failed ops", "tput before",
                     "tput after", "writes lost", "converged"});
  struct Policy {
    SimDuration interval;
    SimDuration timeout;
    int trips;
  };
  for (const Policy& policy :
       {Policy{Millis(500), Seconds(1), 1}, Policy{Seconds(1), Seconds(2), 3},
        Policy{Seconds(5), Seconds(5), 3}}) {
    repl::FailoverOptions options;
    options.check_interval = policy.interval;
    options.probe_timeout = policy.timeout;
    options.failures_to_trip = policy.trips;
    DrillResult r = RunDrill(options, 424242);
    std::fprintf(stderr, "  [drill] interval=%s trips=%d -> %.1fs\n",
                 FormatDuration(policy.interval).c_str(), policy.trips,
                 r.detection_s);
    table.AddRow({FormatDuration(policy.interval),
                  FormatDuration(policy.timeout),
                  StrFormat("%d", policy.trips),
                  StrFormat("%.1f", r.detection_s),
                  StrFormat("%lld", static_cast<long long>(r.failed_ops)),
                  StrFormat("%.1f", r.tput_before),
                  StrFormat("%.1f", r.tput_after),
                  r.lost_writes ? "possibly" : "no",
                  r.converged ? "yes" : "no"});
  }
  std::printf("%s", table.ToAscii().c_str());
  std::printf(
      "\nExpected: aggressive probing shrinks the unavailability window "
      "(fewer failed ops)\nat the cost of false-positive risk; throughput "
      "recovers to near pre-crash levels\nwith one fewer read replica.\n");
  return 0;
}
