#ifndef CLOUDDB_COMMON_STATUS_H_
#define CLOUDDB_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace clouddb {

/// Canonical error codes, modelled after the RocksDB / Abseil status sets.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,
  kUnavailable,
  kAborted,
  kTimedOut,
  kCorruption,
  kNotSupported,
  kInternal,
};

/// Returns the canonical spelling of `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Lightweight result-of-operation type used throughout the library instead of
/// exceptions. A `Status` is either OK (the default) or carries a code and a
/// human-readable message. Cheap to copy in the OK case.
///
/// `[[nodiscard]]` on the class makes the compiler flag any call site that
/// drops a returned Status on the floor; discard deliberately with a
/// `(void)` cast. clouddb_lint enforces the same rule (clouddb-status).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  // Factory helpers, one per canonical code.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace clouddb

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define CLOUDDB_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::clouddb::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

#endif  // CLOUDDB_COMMON_STATUS_H_
