#include "common/status.h"

namespace clouddb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace clouddb
