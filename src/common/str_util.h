#ifndef CLOUDDB_COMMON_STR_UTIL_H_
#define CLOUDDB_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace clouddb {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// ASCII lower/upper-casing (locale-independent).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

}  // namespace clouddb

#endif  // CLOUDDB_COMMON_STR_UTIL_H_
