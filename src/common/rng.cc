#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace clouddb {

uint64_t Rng::NextU64() {
  // splitmix64 step.
  uint64_t z = (state_ += kGolden);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  assert(mean > 0);
  // Inverse-CDF; 1 - u in (0, 1] avoids log(0).
  return -mean * std::log(1.0 - NextDouble());
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box-Muller transform.
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::LogNormal(double median, double sigma) {
  assert(median > 0);
  return median * std::exp(Normal(0.0, sigma));
}

double Rng::ClampedNormal(double mean, double stddev, double lo, double hi) {
  double v = Normal(mean, stddev);
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

int64_t Rng::Zipf(int64_t n, double s) {
  assert(n > 0);
  if (n == 1) return 0;
  if (s <= 0.0) return UniformInt(0, n - 1);
  // Rejection-inversion method over the harmonic-like CDF approximation.
  // Simple and adequate for workload generation (n is modest).
  // Uses the classical "two-segment" bound from Jacobsen/Hormann.
  double one_minus_s = 1.0 - s;
  double zeta2 = one_minus_s == 0.0
                     ? std::log(2.0)
                     : (std::pow(2.0, one_minus_s) - 1.0) / one_minus_s;
  double zetan = one_minus_s == 0.0
                     ? std::log(static_cast<double>(n) + 1.0)
                     : (std::pow(static_cast<double>(n) + 1.0, one_minus_s) -
                        1.0) /
                           one_minus_s;
  while (true) {
    double u = NextDouble();
    double x;
    if (u * zetan < zeta2) {
      x = 1.0 + u * zetan / zeta2;  // within the first segment
    } else if (one_minus_s == 0.0) {
      x = std::exp(u * zetan);
    } else {
      x = std::pow(u * zetan * one_minus_s + 1.0, 1.0 / one_minus_s);
    }
    int64_t k = static_cast<int64_t>(x);
    if (k < 1) k = 1;
    if (k > n) k = n;
    double ratio = std::pow(static_cast<double>(k) / x, s);
    if (NextDouble() < ratio) return k - 1;
  }
}

int Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

Rng Rng::Fork(uint64_t tag) {
  // Mix the tag into a fresh stream derived from this generator's state.
  uint64_t child_seed = NextU64() ^ (tag * 0xD1B54A32D192ED03ull);
  return Rng(child_seed);
}

}  // namespace clouddb
