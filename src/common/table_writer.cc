#include "common/table_writer.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <fstream>

#include "common/str_util.h"

namespace clouddb {

void TableWriter::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TableWriter::AddNumericRow(const std::vector<double>& row,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) {
    cells.push_back(StrFormat("%.*f", precision, v));
  }
  AddRow(std::move(cells));
}

std::string TableWriter::ToAscii() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_sep = [&] {
    std::string s = "+";
    for (size_t w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (size_t i = 0; i < row.size(); ++i) {
      s += " " + row[i] + std::string(widths[i] - row[i].size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };
  std::string out = render_sep() + render_row(header_) + render_sep();
  for (const auto& row : rows_) out += render_row(row);
  out += render_sep();
  return out;
}

namespace {
std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}
}  // namespace

std::string TableWriter::ToCsv() const {
  std::string out;
  std::vector<std::string> escaped;
  escaped.reserve(header_.size());
  for (const auto& h : header_) escaped.push_back(CsvEscape(h));
  out += StrJoin(escaped, ",") + "\n";
  for (const auto& row : rows_) {
    escaped.clear();
    for (const auto& cell : row) escaped.push_back(CsvEscape(cell));
    out += StrJoin(escaped, ",") + "\n";
  }
  return out;
}

bool TableWriter::WriteCsvFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << ToCsv();
  return static_cast<bool>(f);
}

}  // namespace clouddb
