#ifndef CLOUDDB_COMMON_TIME_TYPES_H_
#define CLOUDDB_COMMON_TIME_TYPES_H_

#include <cstdint>
#include <string>

namespace clouddb {

/// Simulated time, in microseconds since the start of the simulation.
/// All latencies, service times and clocks in the library are expressed in
/// this unit; helpers below convert from human-friendly units.
using SimTime = int64_t;

/// A duration in simulated microseconds.
using SimDuration = int64_t;

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1000;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;

constexpr SimDuration Micros(int64_t n) { return n; }
constexpr SimDuration Millis(int64_t n) { return n * kMillisecond; }
constexpr SimDuration Seconds(int64_t n) { return n * kSecond; }
constexpr SimDuration Minutes(int64_t n) { return n * kMinute; }

/// Converts a floating-point number of seconds/milliseconds to SimDuration,
/// rounding to the nearest microsecond.
constexpr SimDuration SecondsF(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond) + 0.5);
}
constexpr SimDuration MillisF(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond) +
                                  0.5);
}

constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double ToMillis(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Formats a duration as a compact human-readable string, e.g. "1.50s",
/// "340ms", "25us".
std::string FormatDuration(SimDuration d);

}  // namespace clouddb

#endif  // CLOUDDB_COMMON_TIME_TYPES_H_
