#ifndef CLOUDDB_COMMON_RESULT_H_
#define CLOUDDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace clouddb {

/// A value-or-error type (StatusOr-style). Holds either a `T` or a non-OK
/// `Status`. Construction from a value yields an OK result; construction from
/// a non-OK Status yields an error result. Accessing `value()` on an error
/// result aborts the process (library code must check `ok()` first).
/// `[[nodiscard]]`: ignoring a returned Result drops an error silently, so
/// the compiler (and clouddb_lint) reject it; discard with `(void)` if meant.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit so that `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace clouddb

/// Assigns the value of a `Result<T>` expression to `lhs`, or returns its
/// status from the enclosing function.
#define CLOUDDB_ASSIGN_OR_RETURN(lhs, expr)              \
  auto CLOUDDB_CONCAT_(_res_, __LINE__) = (expr);        \
  if (!CLOUDDB_CONCAT_(_res_, __LINE__).ok())            \
    return CLOUDDB_CONCAT_(_res_, __LINE__).status();    \
  lhs = std::move(CLOUDDB_CONCAT_(_res_, __LINE__)).value()

#define CLOUDDB_CONCAT_(a, b) CLOUDDB_CONCAT_IMPL_(a, b)
#define CLOUDDB_CONCAT_IMPL_(a, b) a##b

#endif  // CLOUDDB_COMMON_RESULT_H_
