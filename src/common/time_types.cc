#include "common/time_types.h"

#include <cstdio>

namespace clouddb {

std::string FormatDuration(SimDuration d) {
  char buf[64];
  const char* sign = d < 0 ? "-" : "";
  int64_t abs = d < 0 ? -d : d;
  if (abs >= kMinute) {
    std::snprintf(buf, sizeof(buf), "%s%.2fmin", sign,
                  static_cast<double>(abs) / kMinute);
  } else if (abs >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%s%.2fs", sign,
                  static_cast<double>(abs) / kSecond);
  } else if (abs >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%s%.2fms", sign,
                  static_cast<double>(abs) / kMillisecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%lldus", sign,
                  static_cast<long long>(abs));
  }
  return buf;
}

}  // namespace clouddb
