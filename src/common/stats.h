#ifndef CLOUDDB_COMMON_STATS_H_
#define CLOUDDB_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace clouddb {

/// Accumulates a sample of doubles and computes summary statistics.
/// Used for latencies, replication delays and throughput series.
///
/// The paper trims the top and bottom 5 % of replication-delay samples before
/// averaging ("because of network fluctuation"); `TrimmedMean(0.05)`
/// implements exactly that.
///
/// Every statistic is a total function: on an empty sample, Sum/Mean/Min/
/// Max/StdDev/Percentile/TrimmedMean all return exactly 0.0 — never NaN,
/// never a read past the end. (Callers that need to distinguish "no data"
/// from "all zeros" check `empty()` first; the harness does this when a
/// measurement window ends up with no samples.)
class Sample {
 public:
  Sample() = default;

  void Add(double v) { values_.push_back(v); }
  void AddAll(const std::vector<double>& vs);
  void Clear() { values_.clear(); }

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const std::vector<double>& values() const { return values_; }

  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  /// Population standard deviation; 0 for fewer than 2 samples.
  double StdDev() const;
  /// Linear-interpolated quantile; q is clamped to [0, 1] (NaN acts as 0).
  double Percentile(double q) const;
  double Median() const { return Percentile(0.5); }

  /// Mean after removing the lowest and highest `fraction` of samples
  /// (two-sided trim). `fraction` is clamped into [0, 0.5) — out-of-range
  /// values must not underflow the trim arithmetic even in NDEBUG builds.
  /// With fewer than 3 samples the plain mean is returned.
  double TrimmedMean(double fraction) const;

 private:
  std::vector<double> values_;
};

/// Fixed set of log-spaced buckets for latency-style distributions;
/// cheap to merge and render.
class Histogram {
 public:
  /// Buckets are powers of `base` starting at `first_upper` (values below go
  /// to bucket 0), e.g. base=2, first_upper=1ms covers 1ms..~17min in 20
  /// buckets.
  Histogram(double first_upper, double base, int num_buckets);

  void Add(double v);
  void Merge(const Histogram& other);

  int64_t TotalCount() const { return total_; }
  /// Approximate quantile from bucket boundaries.
  double ApproxPercentile(double q) const;
  /// One line per non-empty bucket: "[lo, hi) count".
  std::string ToString() const;

  const std::vector<int64_t>& counts() const { return counts_; }

 private:
  double UpperBound(int bucket) const;

  double first_upper_;
  double base_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

/// Counts events over simulated time to produce rates (e.g. operations per
/// second in the steady-state measurement window).
class RateCounter {
 public:
  RateCounter() = default;

  void Record(int64_t timestamp_us) {
    ++count_;
    if (count_ == 1) first_us_ = timestamp_us;
    last_us_ = timestamp_us;
  }

  int64_t count() const { return count_; }
  /// Events per second over [window_start_us, window_end_us].
  double RatePerSecond(int64_t window_start_us, int64_t window_end_us) const;

 private:
  int64_t count_ = 0;
  int64_t first_us_ = 0;
  int64_t last_us_ = 0;
};

}  // namespace clouddb

#endif  // CLOUDDB_COMMON_STATS_H_
