#ifndef CLOUDDB_COMMON_RNG_H_
#define CLOUDDB_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace clouddb {

/// Deterministic pseudo-random number generator used everywhere in the
/// library. Uses the splitmix64 algorithm (Steele et al.): tiny state, good
/// statistical quality, and — crucially for reproducible experiments —
/// identical output across platforms and standard-library versions (unlike
/// std::normal_distribution etc., whose output is implementation-defined).
class Rng {
 public:
  /// Seeds the generator. The same seed always yields the same stream.
  explicit Rng(uint64_t seed) : state_(seed ^ kGolden) {}

  /// Returns the next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed with the given mean (> 0).
  double Exponential(double mean);

  /// Normally distributed (Box-Muller; consumes two uniforms every two
  /// calls, caching the spare value).
  double Normal(double mean, double stddev);

  /// Log-normally distributed such that the median is `median` and the
  /// underlying normal has standard deviation `sigma`.
  double LogNormal(double median, double sigma);

  /// Normal clamped to [lo, hi].
  double ClampedNormal(double mean, double stddev, double lo, double hi);

  /// Zipf-distributed integer in [0, n) with skew `s` (s = 0 is uniform).
  /// Used for popularity skew in workload key selection.
  int64_t Zipf(int64_t n, double s);

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Requires a non-empty vector of non-negative weights with a
  /// positive sum.
  int WeightedIndex(const std::vector<double>& weights);

  /// Derives an independent child generator; children with different tags
  /// produce decorrelated streams. Used to give each simulated entity its
  /// own stream so adding entities does not perturb others.
  Rng Fork(uint64_t tag);

 private:
  static constexpr uint64_t kGolden = 0x9E3779B97F4A7C15ull;

  uint64_t state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace clouddb

#endif  // CLOUDDB_COMMON_RNG_H_
