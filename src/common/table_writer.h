#ifndef CLOUDDB_COMMON_TABLE_WRITER_H_
#define CLOUDDB_COMMON_TABLE_WRITER_H_

#include <ostream>
#include <string>
#include <vector>

namespace clouddb {

/// Accumulates rows of strings and renders them either as an aligned ASCII
/// table (for terminal output of reproduced figures) or as CSV (for plotting
/// the series against the paper's charts).
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats each double with `precision` digits.
  void AddNumericRow(const std::vector<double>& row, int precision = 2);

  size_t num_rows() const { return rows_.size(); }

  /// Renders an aligned, boxed ASCII table.
  std::string ToAscii() const;

  /// Renders RFC-4180-ish CSV (quotes fields containing commas/quotes).
  std::string ToCsv() const;

  /// Writes CSV to `path`; returns false on I/O failure.
  bool WriteCsvFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace clouddb

#endif  // CLOUDDB_COMMON_TABLE_WRITER_H_
