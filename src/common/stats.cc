#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace clouddb {

void Sample::AddAll(const std::vector<double>& vs) {
  values_.insert(values_.end(), vs.begin(), vs.end());
}

double Sample::Sum() const {
  double s = 0.0;
  for (double v : values_) s += v;
  return s;
}

double Sample::Mean() const {
  if (values_.empty()) return 0.0;
  return Sum() / static_cast<double>(values_.size());
}

double Sample::Min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Sample::Max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double Sample::StdDev() const {
  if (values_.size() < 2) return 0.0;
  double m = Mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size()));
}

double Sample::Percentile(double q) const {
  if (values_.empty()) return 0.0;
  // NaN fails both ordered comparisons and would reach the size_t cast
  // below — undefined behaviour. Treat it (and anything <= 0) as q = 0.
  if (!(q > 0.0)) return Min();
  if (q >= 1.0) return Max();
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double Sample::TrimmedMean(double fraction) const {
  assert(fraction >= 0.0 && fraction < 0.5);
  // Clamp anyway: with NDEBUG the assert is gone, and a fraction >= 0.5
  // would underflow the size_t trim arithmetic below.
  if (!(fraction > 0.0)) fraction = 0.0;  // also normalizes NaN
  if (fraction >= 0.5) fraction = 0.0;
  if (values_.size() < 3 || fraction == 0.0) return Mean();
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  size_t cut = static_cast<size_t>(fraction * static_cast<double>(sorted.size()));
  if (2 * cut >= sorted.size()) return Mean();
  size_t n = sorted.size() - 2 * cut;
  double s = 0.0;
  for (size_t i = cut; i < sorted.size() - cut; ++i) s += sorted[i];
  return s / static_cast<double>(n);
}

Histogram::Histogram(double first_upper, double base, int num_buckets)
    : first_upper_(first_upper), base_(base) {
  assert(first_upper > 0 && base > 1.0 && num_buckets >= 1);
  counts_.assign(static_cast<size_t>(num_buckets) + 1, 0);  // +1 overflow
}

double Histogram::UpperBound(int bucket) const {
  return first_upper_ * std::pow(base_, bucket);
}

void Histogram::Add(double v) {
  ++total_;
  for (size_t b = 0; b + 1 < counts_.size(); ++b) {
    if (v < UpperBound(static_cast<int>(b))) {
      ++counts_[b];
      return;
    }
  }
  ++counts_.back();  // overflow bucket
}

void Histogram::Merge(const Histogram& other) {
  assert(counts_.size() == other.counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double Histogram::ApproxPercentile(double q) const {
  if (total_ == 0) return 0.0;
  int64_t target = static_cast<int64_t>(q * static_cast<double>(total_));
  int64_t acc = 0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    acc += counts_[b];
    if (acc > target) {
      return UpperBound(static_cast<int>(b));
    }
  }
  return UpperBound(static_cast<int>(counts_.size()) - 1);
}

std::string Histogram::ToString() const {
  std::string out;
  double lo = 0.0;
  char buf[128];
  for (size_t b = 0; b < counts_.size(); ++b) {
    double hi = b + 1 == counts_.size()
                    ? std::numeric_limits<double>::infinity()
                    : UpperBound(static_cast<int>(b));
    if (counts_[b] > 0) {
      std::snprintf(buf, sizeof(buf), "[%.3g, %.3g) %lld\n", lo, hi,
                    static_cast<long long>(counts_[b]));
      out += buf;
    }
    lo = hi;
  }
  return out;
}

double RateCounter::RatePerSecond(int64_t window_start_us,
                                  int64_t window_end_us) const {
  if (window_end_us <= window_start_us) return 0.0;
  double secs =
      static_cast<double>(window_end_us - window_start_us) / 1'000'000.0;
  return static_cast<double>(count_) / secs;
}

}  // namespace clouddb
