#ifndef CLOUDDB_CLOUDSTONE_OPERATIONS_H_
#define CLOUDDB_CLOUDSTONE_OPERATIONS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cloudstone/schema.h"
#include "common/rng.h"
#include "common/time_types.h"
#include "repl/cost_model.h"

namespace clouddb::cloudstone {

/// The seven user operations of the social-events-calendar workload.
/// "users ... perform individual operations (e.g. browsing, searching and
/// creating events), as well as social operations (e.g. joining and tagging
/// events)" (§III-A).
enum class OpType {
  // Reads (served by slaves through the proxy):
  kBrowseEvents,   // upcoming events ordered by date
  kSearchEvents,   // events carrying a given tag
  kViewEvent,      // one event's detail page
  // Writes (served by the master):
  kCreateEvent,
  kJoinEvent,      // attend an event
  kTagEvent,
  kAddComment,
};

const char* OpTypeToString(OpType op);
bool IsReadOp(OpType op);

/// A generated operation, ready to send through the proxy.
struct GeneratedOp {
  OpType type;
  std::string sql;
  bool is_read;
  SimDuration cpu_cost;  // nominal CPU cost on the serving replica
};

/// Relative frequencies of the operations. The two mixes realize the paper's
/// 50/50 and 80/20 read/write ratios; within each class the blend determines
/// the *average* CPU cost per read and per write, which is what positions
/// the saturation points.
struct WorkloadMix {
  double read_fraction = 0.5;
  // Within-class weights (need not sum to 1; normalized on use):
  double browse_weight = 1.0;
  double search_weight = 1.0;
  double view_weight = 1.0;
  double create_weight = 1.0;
  double join_weight = 1.0;
  double tag_weight = 1.0;
  double comment_weight = 1.0;

  /// The paper's 50/50 configuration (run with initial data size 300).
  static WorkloadMix FiftyFifty();
  /// The paper's 80/20 configuration (run with initial data size 600).
  static WorkloadMix EightyTwenty();

  /// Expected nominal CPU cost of one read / one write under this mix, µs.
  SimDuration ExpectedReadCost() const;
  SimDuration ExpectedWriteCost() const;
};

/// Nominal per-operation CPU costs (µs at small-instance speed 1.0).
/// Centralised so the cost model, the generator and the benches agree.
struct OperationCosts {
  SimDuration browse = Millis(120);
  SimDuration search = Millis(200);
  SimDuration view = Millis(80);
  SimDuration create = Millis(130);
  SimDuration join = Millis(85);
  SimDuration tag = Millis(65);
  SimDuration comment = Millis(90);

  SimDuration CostOf(OpType op) const;
};

/// Builds the replication cost model matching the workload: slave apply
/// costs per written table (apply_factor x the op cost) plus the tiny
/// heartbeat-table override.
repl::CostModel MakeWorkloadCostModel(const OperationCosts& costs,
                                      double apply_factor = 0.5);

/// Draws operations according to a mix, allocating ids from the shared
/// WorkloadState.
class OperationGenerator {
 public:
  /// `now_micros` supplies the application-side timestamp embedded as a
  /// *literal* in write statements (the web tier computes timestamps before
  /// sending SQL). Embedding literals keeps statement-based replication
  /// deterministic — only the heartbeat probe deliberately uses the
  /// per-replica NOW_MICROS(). Defaults to a constant 0 source.
  OperationGenerator(WorkloadMix mix, OperationCosts costs,
                     WorkloadState* state,
                     std::function<int64_t()> now_micros = nullptr);

  /// Generates the next operation using `rng` (each emulated user owns an
  /// independent stream).
  GeneratedOp Next(Rng& rng);

  const WorkloadMix& mix() const { return mix_; }
  const OperationCosts& costs() const { return costs_; }

 private:
  GeneratedOp Generate(OpType op, Rng& rng);

  WorkloadMix mix_;
  OperationCosts costs_;
  WorkloadState* state_;
  std::function<int64_t()> now_micros_;
  std::vector<double> read_weights_;
  std::vector<double> write_weights_;
};

}  // namespace clouddb::cloudstone

#endif  // CLOUDDB_CLOUDSTONE_OPERATIONS_H_
