#include "cloudstone/benchmark_driver.h"
#include "client/rw_split_proxy.h"
#include "cloudstone/operations.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/time_types.h"
#include "db/database.h"
#include "db/statement_cache.h"
#include "repl/replication_cluster.h"
#include "sim/simulation.h"

#include <algorithm>

namespace clouddb::cloudstone {

int64_t MetricsCollector::CountInWindow(SimTime from, SimTime to) const {
  int64_t n = 0;
  for (const OpRecord& r : records_) {
    if (r.ok && r.completed_at >= from && r.completed_at < to) ++n;
  }
  return n;
}

int64_t MetricsCollector::CountInWindow(SimTime from, SimTime to,
                                        bool reads) const {
  int64_t n = 0;
  for (const OpRecord& r : records_) {
    if (r.ok && r.is_read == reads && r.completed_at >= from &&
        r.completed_at < to) {
      ++n;
    }
  }
  return n;
}

Sample MetricsCollector::ResponseTimesMs(SimTime from, SimTime to) const {
  Sample sample;
  for (const OpRecord& r : records_) {
    if (r.ok && r.completed_at >= from && r.completed_at < to) {
      sample.Add(ToMillis(r.response_time));
    }
  }
  return sample;
}

int64_t MetricsCollector::failures() const {
  int64_t n = 0;
  for (const OpRecord& r : records_) {
    if (!r.ok) ++n;
  }
  return n;
}

UserEmulator::UserEmulator(sim::Simulation* sim,
                           client::ReadWriteSplitProxy* proxy,
                           OperationGenerator* generator,
                           MetricsCollector* metrics, Rng rng,
                           SimDuration think_time_mean)
    : sim_(sim),
      proxy_(proxy),
      generator_(generator),
      metrics_(metrics),
      rng_(rng),
      think_time_mean_(think_time_mean) {}

void UserEmulator::Activate(SimTime start, SimTime stop) {
  stop_time_ = stop;
  activated_ = false;
  // The first fire is the activation; every later fire is the end of a
  // think-time wait. Same timer slot either way, re-armed in place.
  timer_.Bind(sim_, [this] {
    if (!activated_) {
      activated_ = true;
      ThinkThenIssue();
      return;
    }
    IssueOp();
  });
  timer_.ArmAt(start);
}

void UserEmulator::ThinkThenIssue() {
  if (sim_->Now() >= stop_time_) return;
  SimDuration think = static_cast<SimDuration>(
      rng_.Exponential(static_cast<double>(think_time_mean_)));
  timer_.ArmAfter(think);
}

void UserEmulator::IssueOp() {
  if (sim_->Now() >= stop_time_) return;
  GeneratedOp op = generator_->Next(rng_);
  SimTime issued = sim_->Now();
  ++ops_issued_;
  // Route through the proxy's own statement classifier (as Connector/J
  // does): the proxy fingerprints or parses the text, not the driver's
  // op metadata. op.is_read is kept for the metrics breakdown only.
  proxy_->ExecuteAuto(op.sql, op.cpu_cost, read_options_,
                      [this, type = op.type, is_read = op.is_read,
                       issued](Result<db::ExecResult> result) {
                        metrics_->Record(OpRecord{sim_->Now(), type, is_read,
                                                  result.ok(),
                                                  sim_->Now() - issued});
                        ThinkThenIssue();
                      });
}

BenchmarkDriver::BenchmarkDriver(sim::Simulation* sim,
                                 client::ReadWriteSplitProxy* proxy,
                                 repl::ReplicationCluster* cluster,
                                 OperationGenerator* generator,
                                 const BenchmarkOptions& options)
    : sim_(sim),
      proxy_(proxy),
      cluster_(cluster),
      generator_(generator),
      options_(options) {}

BenchmarkDriver::~BenchmarkDriver() {
  snapshot_start_.Cancel();
  snapshot_end_.Cancel();
}

void BenchmarkDriver::Start() {
  SimTime now = sim_->Now();
  steady_start_ = now + options_.ramp_up;
  steady_end_ = steady_start_ + options_.steady;
  end_time_ = steady_end_ + options_.ramp_down;

  Rng seeder(options_.seed);
  users_.reserve(static_cast<size_t>(options_.num_users));
  for (int i = 0; i < options_.num_users; ++i) {
    auto user = std::make_unique<UserEmulator>(
        sim_, proxy_, generator_, &metrics_,
        seeder.Fork(static_cast<uint64_t>(i) + 1), options_.think_time_mean);
    // Stagger user starts uniformly across the ramp-up period.
    SimTime start =
        now + (options_.ramp_up * static_cast<SimDuration>(i)) /
                  std::max(1, options_.num_users);
    user->Activate(start, end_time_);
    users_.push_back(std::move(user));
  }

  snapshot_start_ =
      sim_->ScheduleAt(steady_start_, [this] { SnapshotCpus(&busy_at_start_); });
  snapshot_end_ =
      sim_->ScheduleAt(steady_end_, [this] { SnapshotCpus(&busy_at_end_); });
}

void BenchmarkDriver::SnapshotCpus(std::vector<int64_t>* busy) const {
  busy->clear();
  busy->push_back(cluster_->master()->instance().cpu().CumulativeBusyMicros());
  for (int i = 0; i < cluster_->num_slaves(); ++i) {
    busy->push_back(
        cluster_->slave(i)->instance().cpu().CumulativeBusyMicros());
  }
}

BenchmarkReport BenchmarkDriver::Report() const {
  BenchmarkReport report;
  double window_s = ToSeconds(steady_end_ - steady_start_);
  if (window_s <= 0) return report;
  report.completed_ops = metrics_.CountInWindow(steady_start_, steady_end_);
  report.failed_ops = metrics_.failures();
  report.throughput_ops = static_cast<double>(report.completed_ops) / window_s;
  report.read_throughput_ops =
      static_cast<double>(
          metrics_.CountInWindow(steady_start_, steady_end_, true)) /
      window_s;
  report.write_throughput_ops =
      static_cast<double>(
          metrics_.CountInWindow(steady_start_, steady_end_, false)) /
      window_s;
  Sample responses = metrics_.ResponseTimesMs(steady_start_, steady_end_);
  report.mean_response_ms = responses.Mean();
  report.p95_response_ms = responses.Percentile(0.95);

  // CPU utilization over the steady window, normalizing by core count.
  if (busy_at_start_.size() == busy_at_end_.size() &&
      !busy_at_start_.empty()) {
    double window_us = static_cast<double>(steady_end_ - steady_start_);
    auto utilization = [&](size_t i, int cores) {
      return static_cast<double>(busy_at_end_[i] - busy_at_start_[i]) /
             (window_us * cores);
    };
    report.master_cpu_utilization =
        utilization(0, cluster_->master()->instance().cpu().num_cores());
    for (int i = 0; i < cluster_->num_slaves(); ++i) {
      report.slave_cpu_utilization.push_back(utilization(
          static_cast<size_t>(i) + 1,
          cluster_->slave(i)->instance().cpu().num_cores()));
    }
  }

  auto add_db_stats = [&](const db::Database& database) {
    const db::StatementCacheStats& stats = database.statement_cache().stats();
    report.statement_cache_hits += stats.hits;
    report.statement_cache_misses += stats.misses;
  };
  add_db_stats(cluster_->master()->database());
  for (int i = 0; i < cluster_->num_slaves(); ++i) {
    add_db_stats(cluster_->slave(i)->database());
  }
  report.route_cache_hits = proxy_->route_cache().stats().hits;
  report.route_cache_misses = proxy_->route_cache().stats().misses;
  report.binlog_batches = cluster_->master()->batches_shipped();
  for (int i = 0; i < cluster_->num_slaves(); ++i) {
    report.writeset_applies += cluster_->slave(i)->writeset_applies();
    report.fallback_applies += cluster_->slave(i)->fallback_applies();
  }
  return report;
}

}  // namespace clouddb::cloudstone
