#include "cloudstone/operations.h"

#include <cassert>

#include "common/str_util.h"
#include "cloudstone/schema.h"
#include "common/rng.h"
#include "common/time_types.h"
#include "repl/cost_model.h"

namespace clouddb::cloudstone {

const char* OpTypeToString(OpType op) {
  switch (op) {
    case OpType::kBrowseEvents:
      return "browse_events";
    case OpType::kSearchEvents:
      return "search_events";
    case OpType::kViewEvent:
      return "view_event";
    case OpType::kCreateEvent:
      return "create_event";
    case OpType::kJoinEvent:
      return "join_event";
    case OpType::kTagEvent:
      return "tag_event";
    case OpType::kAddComment:
      return "add_comment";
  }
  return "?";
}

bool IsReadOp(OpType op) {
  switch (op) {
    case OpType::kBrowseEvents:
    case OpType::kSearchEvents:
    case OpType::kViewEvent:
      return true;
    default:
      return false;
  }
}

WorkloadMix WorkloadMix::FiftyFifty() {
  WorkloadMix mix;
  mix.read_fraction = 0.5;
  // Heavier interactive reads: average read cost ~146 ms.
  mix.browse_weight = 0.30;
  mix.search_weight = 0.45;
  mix.view_weight = 0.25;
  // Average write cost ~98.75 ms.
  mix.create_weight = 0.35;
  mix.join_weight = 0.30;
  mix.tag_weight = 0.15;
  mix.comment_weight = 0.20;
  return mix;
}

WorkloadMix WorkloadMix::EightyTwenty() {
  WorkloadMix mix;
  mix.read_fraction = 0.8;
  // Lighter browsing-dominated reads: average read cost ~112 ms.
  mix.browse_weight = 0.35;
  mix.search_weight = 0.15;
  mix.view_weight = 0.50;
  // Average write cost ~90 ms.
  mix.create_weight = 0.20;
  mix.join_weight = 0.35;
  mix.tag_weight = 0.25;
  mix.comment_weight = 0.20;
  return mix;
}

namespace {
const OperationCosts kDefaultCosts{};
}  // namespace

SimDuration WorkloadMix::ExpectedReadCost() const {
  double total = browse_weight + search_weight + view_weight;
  double c = (browse_weight * static_cast<double>(kDefaultCosts.browse) +
              search_weight * static_cast<double>(kDefaultCosts.search) +
              view_weight * static_cast<double>(kDefaultCosts.view)) /
             total;
  return static_cast<SimDuration>(c);
}

SimDuration WorkloadMix::ExpectedWriteCost() const {
  double total = create_weight + join_weight + tag_weight + comment_weight;
  double c = (create_weight * static_cast<double>(kDefaultCosts.create) +
              join_weight * static_cast<double>(kDefaultCosts.join) +
              tag_weight * static_cast<double>(kDefaultCosts.tag) +
              comment_weight * static_cast<double>(kDefaultCosts.comment)) /
             total;
  return static_cast<SimDuration>(c);
}

SimDuration OperationCosts::CostOf(OpType op) const {
  switch (op) {
    case OpType::kBrowseEvents:
      return browse;
    case OpType::kSearchEvents:
      return search;
    case OpType::kViewEvent:
      return view;
    case OpType::kCreateEvent:
      return create;
    case OpType::kJoinEvent:
      return join;
    case OpType::kTagEvent:
      return tag;
    case OpType::kAddComment:
      return comment;
  }
  return 0;
}

repl::CostModel MakeWorkloadCostModel(const OperationCosts& costs,
                                      double apply_factor) {
  repl::CostModel model;
  model.apply_factor = apply_factor;
  auto apply = [&](SimDuration cost) {
    return static_cast<SimDuration>(apply_factor *
                                    static_cast<double>(cost));
  };
  model.apply_cost_by_table["events"] = apply(costs.create);
  model.apply_cost_by_table["attendees"] = apply(costs.join);
  model.apply_cost_by_table["event_tags"] = apply(costs.tag);
  model.apply_cost_by_table["comments"] = apply(costs.comment);
  model.apply_cost_by_table["heartbeat"] = Millis(4);
  return model;
}

OperationGenerator::OperationGenerator(WorkloadMix mix, OperationCosts costs,
                                       WorkloadState* state,
                                       std::function<int64_t()> now_micros)
    : mix_(mix),
      costs_(costs),
      state_(state),
      now_micros_(now_micros ? std::move(now_micros)
                             : [] { return int64_t{0}; }) {
  read_weights_ = {mix.browse_weight, mix.search_weight, mix.view_weight};
  write_weights_ = {mix.create_weight, mix.join_weight, mix.tag_weight,
                    mix.comment_weight};
}

GeneratedOp OperationGenerator::Next(Rng& rng) {
  bool read = rng.Bernoulli(mix_.read_fraction);
  OpType op;
  if (read) {
    static constexpr OpType kReads[] = {
        OpType::kBrowseEvents, OpType::kSearchEvents, OpType::kViewEvent};
    op = kReads[rng.WeightedIndex(read_weights_)];
  } else {
    static constexpr OpType kWrites[] = {OpType::kCreateEvent,
                                         OpType::kJoinEvent, OpType::kTagEvent,
                                         OpType::kAddComment};
    op = kWrites[rng.WeightedIndex(write_weights_)];
  }
  return Generate(op, rng);
}

GeneratedOp OperationGenerator::Generate(OpType op, Rng& rng) {
  GeneratedOp out;
  out.type = op;
  out.is_read = IsReadOp(op);
  out.cpu_cost = costs_.CostOf(op);
  switch (op) {
    case OpType::kBrowseEvents: {
      int64_t from_date = 18000 + rng.UniformInt(0, 364);
      out.sql = StrFormat(
          "SELECT event_id, title, event_date FROM events "
          "WHERE event_date >= %lld ORDER BY event_date LIMIT 10",
          static_cast<long long>(from_date));
      break;
    }
    case OpType::kSearchEvents: {
      out.sql = StrFormat(
          "SELECT et_id, event_id FROM event_tags WHERE tag_id = %lld "
          "LIMIT 20",
          static_cast<long long>(state_->RandomTagId(rng)));
      break;
    }
    case OpType::kViewEvent: {
      out.sql = StrFormat("SELECT * FROM events WHERE event_id = %lld",
                          static_cast<long long>(state_->RandomEventId(rng)));
      break;
    }
    case OpType::kCreateEvent: {
      int64_t id = state_->next_event_id++;
      int64_t creator = state_->RandomUserId(rng);
      int64_t date = 18000 + rng.UniformInt(0, 364);
      out.sql = StrFormat(
          "INSERT INTO events (event_id, title, description, created_by, "
          "event_date, created_at) VALUES (%lld, 'Event %lld', "
          "'A freshly created event', %lld, %lld, %lld)",
          static_cast<long long>(id), static_cast<long long>(id),
          static_cast<long long>(creator), static_cast<long long>(date),
          static_cast<long long>(now_micros_()));
      break;
    }
    case OpType::kJoinEvent: {
      int64_t id = state_->next_attendee_id++;
      out.sql = StrFormat(
          "INSERT INTO attendees (att_id, event_id, user_id, joined_at) "
          "VALUES (%lld, %lld, %lld, %lld)",
          static_cast<long long>(id),
          static_cast<long long>(state_->RandomEventId(rng)),
          static_cast<long long>(state_->RandomUserId(rng)),
          static_cast<long long>(now_micros_()));
      break;
    }
    case OpType::kTagEvent: {
      int64_t id = state_->next_event_tag_id++;
      out.sql = StrFormat(
          "INSERT INTO event_tags (et_id, event_id, tag_id) "
          "VALUES (%lld, %lld, %lld)",
          static_cast<long long>(id),
          static_cast<long long>(state_->RandomEventId(rng)),
          static_cast<long long>(state_->RandomTagId(rng)));
      break;
    }
    case OpType::kAddComment: {
      int64_t id = state_->next_comment_id++;
      out.sql = StrFormat(
          "INSERT INTO comments (comment_id, event_id, user_id, body, "
          "created_at) VALUES (%lld, %lld, %lld, 'nice event, see you "
          "there', %lld)",
          static_cast<long long>(id),
          static_cast<long long>(state_->RandomEventId(rng)),
          static_cast<long long>(state_->RandomUserId(rng)),
          static_cast<long long>(now_micros_()));
      break;
    }
  }
  return out;
}

}  // namespace clouddb::cloudstone
