#ifndef CLOUDDB_CLOUDSTONE_BENCHMARK_DRIVER_H_
#define CLOUDDB_CLOUDSTONE_BENCHMARK_DRIVER_H_

#include <memory>
#include <vector>

#include "client/rw_split_proxy.h"
#include "cloudstone/operations.h"
#include "common/stats.h"
#include "common/time_types.h"
#include "repl/replication_cluster.h"
#include "sim/simulation.h"
#include "common/rng.h"

namespace clouddb::cloudstone {

/// One completed operation, as recorded by the metrics collector.
struct OpRecord {
  SimTime completed_at;
  OpType type;
  bool is_read;
  bool ok;
  SimDuration response_time;
};

/// Collects per-operation completions for later windowed analysis.
class MetricsCollector {
 public:
  void Record(OpRecord record) { records_.push_back(record); }
  const std::vector<OpRecord>& records() const { return records_; }

  /// Completions inside [from, to), optionally filtered to reads or writes.
  int64_t CountInWindow(SimTime from, SimTime to) const;
  int64_t CountInWindow(SimTime from, SimTime to, bool reads) const;
  /// Response-time sample (ms) of successful ops inside [from, to).
  Sample ResponseTimesMs(SimTime from, SimTime to) const;
  int64_t failures() const;

 private:
  std::vector<OpRecord> records_;
};

/// A closed-loop emulated user: think (exponential), issue one operation
/// through the proxy, wait for the response, repeat. One outstanding request
/// at a time — the classic interactive-user model that Cloudstone's load
/// generator (Faban) implements.
class UserEmulator {
 public:
  UserEmulator(sim::Simulation* sim, client::ReadWriteSplitProxy* proxy,
               OperationGenerator* generator, MetricsCollector* metrics,
               Rng rng, SimDuration think_time_mean);

  /// Schedules the user's first think at `start`; the user stops issuing
  /// new operations at `stop`.
  void Activate(SimTime start, SimTime stop);

  /// Per-read routing options every operation carries from now on; the
  /// default is unbounded (legacy routing). Setting a staleness bound makes
  /// this user's reads freshness-SLA reads (writes ignore it).
  void set_read_options(client::ReadOptions read_options) {
    read_options_ = read_options;
  }

  int64_t ops_issued() const { return ops_issued_; }

 private:
  void ThinkThenIssue();
  void IssueOp();

  sim::Simulation* sim_;
  client::ReadWriteSplitProxy* proxy_;
  OperationGenerator* generator_;
  MetricsCollector* metrics_;
  Rng rng_;
  SimDuration think_time_mean_;
  client::ReadOptions read_options_;
  SimTime stop_time_ = 0;
  int64_t ops_issued_ = 0;
  /// One kernel slot per user for the whole run: the activation fire and
  /// every think-time wait re-arm it instead of allocating a fresh closure
  /// per operation (users × ops events — the biggest scheduling consumer).
  bool activated_ = false;
  sim::Timer timer_;
};

/// Run-phase configuration: the paper's "every run lasts 35 minutes,
/// including 10-minute ramp-up, 20-minute steady stage and 5-minute ramp
/// down".
struct BenchmarkOptions {
  int num_users = 50;
  SimDuration ramp_up = Minutes(10);
  SimDuration steady = Minutes(20);
  SimDuration ramp_down = Minutes(5);
  SimDuration think_time_mean = Seconds(9);
  uint64_t seed = 1;
};

/// Steady-window measurements of one run.
struct BenchmarkReport {
  double throughput_ops = 0.0;        // end-to-end ops/s, steady window
  double read_throughput_ops = 0.0;
  double write_throughput_ops = 0.0;
  double mean_response_ms = 0.0;
  double p95_response_ms = 0.0;
  int64_t completed_ops = 0;
  int64_t failed_ops = 0;
  double master_cpu_utilization = 0.0;
  std::vector<double> slave_cpu_utilization;
  /// Statement-cache counters at report time, summed over the master and all
  /// slaves (execution caches) and taken from the proxy (routing cache).
  /// All zeros when the caches are disabled.
  int64_t statement_cache_hits = 0;
  int64_t statement_cache_misses = 0;
  int64_t route_cache_hits = 0;
  int64_t route_cache_misses = 0;
  /// Row-based replication counters at report time: group messages the
  /// master shipped (0 without batching), and statements the slaves applied
  /// via the parser-free writeset path vs. the statement-apply fallback
  /// (both 0 when row-based replication is off), summed over all slaves.
  int64_t binlog_batches = 0;
  int64_t writeset_applies = 0;
  int64_t fallback_applies = 0;
};

/// Orchestrates one benchmark run: staggers user start over the ramp-up,
/// samples CPU counters at the steady-window boundaries, and produces the
/// report. The caller owns the simulation loop:
///
///   BenchmarkDriver driver(...);
///   driver.Start();
///   sim.RunUntil(driver.end_time());
///   BenchmarkReport report = driver.Report();
class BenchmarkDriver {
 public:
  BenchmarkDriver(sim::Simulation* sim, client::ReadWriteSplitProxy* proxy,
                  repl::ReplicationCluster* cluster,
                  OperationGenerator* generator,
                  const BenchmarkOptions& options);

  /// Cancels the pending CPU-snapshot events: their lambdas capture `this`,
  /// so a driver destroyed before the run completes must unschedule them.
  ~BenchmarkDriver();

  /// Schedules the whole run starting at the current simulated time.
  void Start();

  SimTime steady_start() const { return steady_start_; }
  SimTime steady_end() const { return steady_end_; }
  /// Time at which the ramp-down completes.
  SimTime end_time() const { return end_time_; }

  MetricsCollector& metrics() { return metrics_; }

  /// Valid after the simulation has run past end_time().
  BenchmarkReport Report() const;

 private:
  void SnapshotCpus(std::vector<int64_t>* busy) const;

  sim::Simulation* sim_;
  client::ReadWriteSplitProxy* proxy_;
  repl::ReplicationCluster* cluster_;
  OperationGenerator* generator_;
  BenchmarkOptions options_;
  MetricsCollector metrics_;
  std::vector<std::unique_ptr<UserEmulator>> users_;
  SimTime steady_start_ = 0;
  SimTime steady_end_ = 0;
  SimTime end_time_ = 0;
  std::vector<int64_t> busy_at_start_;
  std::vector<int64_t> busy_at_end_;
  sim::Simulation::EventHandle snapshot_start_;
  sim::Simulation::EventHandle snapshot_end_;
};

}  // namespace clouddb::cloudstone

#endif  // CLOUDDB_CLOUDSTONE_BENCHMARK_DRIVER_H_
