#ifndef CLOUDDB_CLOUDSTONE_SCHEMA_H_
#define CLOUDDB_CLOUDSTONE_SCHEMA_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace clouddb::cloudstone {

/// Shared mutable workload state: id allocators and table cardinalities.
/// Operation generators allocate primary keys here so that concurrent
/// emulated users never collide (the role the web tier's sequences played in
/// the original Cloudstone).
struct WorkloadState {
  int64_t num_users = 0;
  int64_t num_tags = 0;
  int64_t next_event_id = 1;   // events with ids [1, next_event_id) exist
  int64_t next_attendee_id = 1;
  int64_t next_event_tag_id = 1;
  int64_t next_comment_id = 1;

  int64_t RandomUserId(Rng& rng) const {
    return rng.UniformInt(1, num_users);
  }
  int64_t RandomEventId(Rng& rng) const {
    return rng.UniformInt(1, next_event_id - 1);
  }
  int64_t RandomTagId(Rng& rng) const { return rng.UniformInt(1, num_tags); }
};

/// DDL for the social-events-calendar database (the Cloudstone/Olio model):
/// users, events, tags, event_tags, attendees, comments, plus the secondary
/// indexes the read operations need.
std::vector<std::string> SchemaStatements();

/// Sizing derived from the paper's "initial data size" parameter
/// (300 for the 50/50 runs, 600 for the 80/20 runs).
struct DataProfile {
  int64_t users;
  int64_t events;
  int64_t tags;
  int64_t attendees_per_event;
  int64_t tags_per_event;
  int64_t comments_per_event;

  static DataProfile FromScale(int64_t scale);
};

/// Generates the initial data set (deterministic under `seed`) and feeds
/// every statement to `execute` — callers pass a function that runs the SQL
/// identically on every replica ("a pre-loaded, fully-synchronized
/// database"). Fills `state` with the resulting id ranges.
Status LoadInitialData(
    const std::function<Status(const std::string&)>& execute, int64_t scale,
    uint64_t seed, WorkloadState* state);

}  // namespace clouddb::cloudstone

#endif  // CLOUDDB_CLOUDSTONE_SCHEMA_H_
