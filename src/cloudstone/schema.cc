#include "cloudstone/schema.h"

#include "common/str_util.h"
#include "common/rng.h"
#include "common/status.h"

namespace clouddb::cloudstone {

std::vector<std::string> SchemaStatements() {
  return {
      "CREATE TABLE users ("
      "  user_id BIGINT PRIMARY KEY,"
      "  username TEXT NOT NULL,"
      "  created_at BIGINT)",
      "CREATE TABLE events ("
      "  event_id BIGINT PRIMARY KEY,"
      "  title TEXT NOT NULL,"
      "  description TEXT,"
      "  created_by BIGINT NOT NULL,"
      "  event_date BIGINT NOT NULL,"
      "  created_at BIGINT)",
      "CREATE TABLE tags ("
      "  tag_id BIGINT PRIMARY KEY,"
      "  name TEXT NOT NULL)",
      "CREATE TABLE event_tags ("
      "  et_id BIGINT PRIMARY KEY,"
      "  event_id BIGINT NOT NULL,"
      "  tag_id BIGINT NOT NULL)",
      "CREATE TABLE attendees ("
      "  att_id BIGINT PRIMARY KEY,"
      "  event_id BIGINT NOT NULL,"
      "  user_id BIGINT NOT NULL,"
      "  joined_at BIGINT)",
      "CREATE TABLE comments ("
      "  comment_id BIGINT PRIMARY KEY,"
      "  event_id BIGINT NOT NULL,"
      "  user_id BIGINT NOT NULL,"
      "  body TEXT,"
      "  created_at BIGINT)",
      // Secondary indexes backing the workload's reads.
      "CREATE INDEX idx_events_date ON events (event_date)",
      "CREATE INDEX idx_events_creator ON events (created_by)",
      "CREATE INDEX idx_event_tags_tag ON event_tags (tag_id)",
      "CREATE INDEX idx_event_tags_event ON event_tags (event_id)",
      "CREATE INDEX idx_attendees_event ON attendees (event_id)",
      "CREATE INDEX idx_comments_event ON comments (event_id)",
  };
}

DataProfile DataProfile::FromScale(int64_t scale) {
  DataProfile p;
  p.users = scale;
  p.events = 2 * scale;
  p.tags = 50;
  p.attendees_per_event = 3;
  p.tags_per_event = 2;
  p.comments_per_event = 2;
  return p;
}

namespace {

/// Arbitrary but fixed epoch-day base for event dates.
constexpr int64_t kDateBase = 18000;
constexpr int64_t kDateRange = 365;

}  // namespace

Status LoadInitialData(
    const std::function<Status(const std::string&)>& execute, int64_t scale,
    uint64_t seed, WorkloadState* state) {
  DataProfile profile = DataProfile::FromScale(scale);
  Rng rng(seed);

  for (const std::string& ddl : SchemaStatements()) {
    CLOUDDB_RETURN_IF_ERROR(execute(ddl));
  }

  for (int64_t u = 1; u <= profile.users; ++u) {
    CLOUDDB_RETURN_IF_ERROR(execute(StrFormat(
        "INSERT INTO users (user_id, username, created_at) "
        "VALUES (%lld, 'user_%lld', 0)",
        static_cast<long long>(u), static_cast<long long>(u))));
  }
  for (int64_t t = 1; t <= profile.tags; ++t) {
    CLOUDDB_RETURN_IF_ERROR(execute(
        StrFormat("INSERT INTO tags (tag_id, name) VALUES (%lld, 'tag_%lld')",
                  static_cast<long long>(t), static_cast<long long>(t))));
  }

  int64_t next_att = 1;
  int64_t next_et = 1;
  int64_t next_comment = 1;
  for (int64_t e = 1; e <= profile.events; ++e) {
    int64_t creator = rng.UniformInt(1, profile.users);
    int64_t date = kDateBase + rng.UniformInt(0, kDateRange - 1);
    CLOUDDB_RETURN_IF_ERROR(execute(StrFormat(
        "INSERT INTO events (event_id, title, description, created_by, "
        "event_date, created_at) VALUES (%lld, 'Event %lld', "
        "'Description of event %lld', %lld, %lld, 0)",
        static_cast<long long>(e), static_cast<long long>(e),
        static_cast<long long>(e), static_cast<long long>(creator),
        static_cast<long long>(date))));
    for (int64_t a = 0; a < profile.attendees_per_event; ++a) {
      CLOUDDB_RETURN_IF_ERROR(execute(StrFormat(
          "INSERT INTO attendees (att_id, event_id, user_id, joined_at) "
          "VALUES (%lld, %lld, %lld, 0)",
          static_cast<long long>(next_att++), static_cast<long long>(e),
          static_cast<long long>(rng.UniformInt(1, profile.users)))));
    }
    for (int64_t t = 0; t < profile.tags_per_event; ++t) {
      CLOUDDB_RETURN_IF_ERROR(execute(StrFormat(
          "INSERT INTO event_tags (et_id, event_id, tag_id) "
          "VALUES (%lld, %lld, %lld)",
          static_cast<long long>(next_et++), static_cast<long long>(e),
          static_cast<long long>(rng.UniformInt(1, profile.tags)))));
    }
    for (int64_t c = 0; c < profile.comments_per_event; ++c) {
      int64_t comment_id = next_comment++;
      CLOUDDB_RETURN_IF_ERROR(execute(StrFormat(
          "INSERT INTO comments (comment_id, event_id, user_id, body, "
          "created_at) VALUES (%lld, %lld, %lld, 'comment body %lld', 0)",
          static_cast<long long>(comment_id), static_cast<long long>(e),
          static_cast<long long>(rng.UniformInt(1, profile.users)),
          static_cast<long long>(comment_id))));
    }
  }

  state->num_users = profile.users;
  state->num_tags = profile.tags;
  state->next_event_id = profile.events + 1;
  state->next_attendee_id = next_att;
  state->next_event_tag_id = next_et;
  state->next_comment_id = next_comment;
  return Status::Ok();
}

}  // namespace clouddb::cloudstone
