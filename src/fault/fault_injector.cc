#include "fault/fault_injector.h"

#include <utility>

#include "common/str_util.h"
#include "cloud/cloud_provider.h"
#include "cloud/instance.h"
#include "common/status.h"
#include "fault/fault_schedule.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace clouddb::fault {

FaultInjector::FaultInjector(sim::Simulation* sim,
                             cloud::CloudProvider* provider)
    : sim_(sim), provider_(provider) {}

FaultInjector::~FaultInjector() {
  for (sim::Simulation::EventHandle& handle : scheduled_) handle.Cancel();
}

Status FaultInjector::Validate(const FaultEvent& event) const {
  if (event.at < 0) {
    return Status::InvalidArgument(
        StrFormat("fault '%s': negative start time", event.target.c_str()));
  }
  if (event.duration < 0) {
    return Status::InvalidArgument(
        StrFormat("fault '%s': negative duration", event.target.c_str()));
  }
  if (provider_->FindByName(event.target) == nullptr) {
    return Status::InvalidArgument(
        StrFormat("unknown instance '%s'", event.target.c_str()));
  }
  switch (event.kind) {
    case FaultKind::kPartition:
    case FaultKind::kLatencySpike:
    case FaultKind::kPacketLoss:
      if (provider_->FindByName(event.peer) == nullptr) {
        return Status::InvalidArgument(
            StrFormat("unknown instance '%s'", event.peer.c_str()));
      }
      if (event.peer == event.target) {
        return Status::InvalidArgument(StrFormat(
            "link fault needs two distinct endpoints, got '%s' twice",
            event.target.c_str()));
      }
      break;
    default:
      break;
  }
  if (event.kind == FaultKind::kSlowdown && event.magnitude <= 0.0) {
    return Status::InvalidArgument(
        StrFormat("slowdown factor must be > 0, got %.3f", event.magnitude));
  }
  if (event.kind == FaultKind::kPacketLoss &&
      (event.magnitude < 0.0 || event.magnitude > 1.0)) {
    return Status::InvalidArgument(StrFormat(
        "loss probability must be in [0, 1], got %.3f", event.magnitude));
  }
  return Status::Ok();
}

Status FaultInjector::Arm(const FaultSchedule& schedule) {
  for (const FaultEvent& event : schedule.events()) {
    CLOUDDB_RETURN_IF_ERROR(Validate(event));
  }
  // All valid: schedule everything. Heap copies give the begin/heal lambdas
  // a stable event to point at across vector growth.
  for (const FaultEvent& event : schedule.events()) {
    armed_.push_back(std::make_unique<FaultEvent>(event));
    const FaultEvent* armed = armed_.back().get();
    scheduled_.push_back(
        sim_->ScheduleAt(armed->at, [this, armed] { Begin(*armed); }));
    // Clock steps are instantaneous; duration 0 elsewhere means permanent.
    if (armed->duration > 0 && armed->kind != FaultKind::kClockStep) {
      scheduled_.push_back(sim_->ScheduleAt(armed->at + armed->duration,
                                            [this, armed] { Heal(*armed); }));
    }
  }
  return Status::Ok();
}

void FaultInjector::ForEachDirection(
    const FaultEvent& event,
    const std::function<void(net::NodeId, net::NodeId)>& apply) {
  net::NodeId a = provider_->FindByName(event.target)->node_id();
  net::NodeId b = provider_->FindByName(event.peer)->node_id();
  apply(a, b);
  apply(b, a);
}

void FaultInjector::Begin(const FaultEvent& event) {
  cloud::Instance* target = provider_->FindByName(event.target);
  net::Network& net = provider_->network();
  switch (event.kind) {
    case FaultKind::kCrash:
      target->Crash();
      break;
    case FaultKind::kFreeze:
      target->cpu().Freeze();
      break;
    case FaultKind::kSlowdown:
      // Remember the pre-fault speed once, so overlapping slowdowns on the
      // same instance heal back to the original, not to an already-degraded
      // intermediate.
      saved_speeds_.emplace(event.target, target->cpu().speed_factor());
      target->cpu().SetSpeedFactor(saved_speeds_[event.target] *
                                   event.magnitude);
      break;
    case FaultKind::kPartition:
      ForEachDirection(event, [&net](net::NodeId from, net::NodeId to) {
        net.SetLinkDown(from, to, true);
      });
      break;
    case FaultKind::kIsolate:
      net.SetNodeIsolated(target->node_id(), true);
      break;
    case FaultKind::kLatencySpike:
      ForEachDirection(event, [&net, &event](net::NodeId from, net::NodeId to) {
        net.SetLinkExtraLatency(from, to, event.delta);
      });
      break;
    case FaultKind::kPacketLoss:
      ForEachDirection(event, [&net, &event](net::NodeId from, net::NodeId to) {
        net.SetLinkLossProbability(from, to, event.magnitude);
      });
      break;
    case FaultKind::kClockStep:
      target->clock().StepBy(sim_->Now(), event.delta);
      break;
  }
  Record(event, /*begin=*/true);
}

void FaultInjector::Heal(const FaultEvent& event) {
  cloud::Instance* target = provider_->FindByName(event.target);
  net::Network& net = provider_->network();
  switch (event.kind) {
    case FaultKind::kCrash:
      target->Restart();
      break;
    case FaultKind::kFreeze:
      target->cpu().Thaw();
      break;
    case FaultKind::kSlowdown: {
      auto it = saved_speeds_.find(event.target);
      if (it != saved_speeds_.end()) {
        target->cpu().SetSpeedFactor(it->second);
        saved_speeds_.erase(it);
      }
      break;
    }
    case FaultKind::kPartition:
      ForEachDirection(event, [&net](net::NodeId from, net::NodeId to) {
        net.SetLinkDown(from, to, false);
      });
      break;
    case FaultKind::kIsolate:
      net.SetNodeIsolated(target->node_id(), false);
      break;
    case FaultKind::kLatencySpike:
      ForEachDirection(event, [&net](net::NodeId from, net::NodeId to) {
        net.SetLinkExtraLatency(from, to, 0);
      });
      break;
    case FaultKind::kPacketLoss:
      ForEachDirection(event, [&net](net::NodeId from, net::NodeId to) {
        net.SetLinkLossProbability(from, to, 0.0);
      });
      break;
    case FaultKind::kClockStep:
      break;  // one-shot, never scheduled
  }
  Record(event, /*begin=*/false);
}

void FaultInjector::Record(const FaultEvent& event, bool begin) {
  if (begin) {
    ++faults_begun_;
  } else {
    ++faults_healed_;
  }
  log_.push_back({sim_->Now(),
                  StrFormat("%s %s %s", begin ? "begin" : "heal",
                            FaultKindToString(event.kind),
                            event.target.c_str())});
  if (listener_) listener_(event, begin);
}

}  // namespace clouddb::fault
