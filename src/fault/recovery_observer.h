#ifndef CLOUDDB_FAULT_RECOVERY_OBSERVER_H_
#define CLOUDDB_FAULT_RECOVERY_OBSERVER_H_

#include <functional>
#include <string>

#include "metrics/metric_registry.h"
#include "repl/failover.h"
#include "sim/simulation.h"
#include "common/time_types.h"

namespace clouddb::fault {

/// Recovery metrics for one injected-fault episode. Times are simulated
/// instants (µs); -1 means "never happened" / "not yet". Identical reports
/// across two same-seed runs is the determinism contract of the whole fault
/// subsystem, so the struct is equality-comparable.
struct RecoveryReport {
  SimTime fault_at = -1;        // primary fault began (NoteFault / listener)
  SimTime detected_at = -1;     // monitor tripped (declared master dead)
  SimTime promoted_at = -1;     // failover completed, new master live
  SimTime healed_at = -1;       // fault healed (NoteHeal / listener)
  SimTime reconverged_at = -1;  // first poll after heal with zero lag
  int64_t lost_writes = 0;      // committed-but-unreplicated events dropped
  int64_t peak_lag_events = 0;  // worst slave lag observed (binlog events)
  int64_t peak_relay_backlog = 0;  // worst relay-log backlog observed

  /// Derived durations; -1 when either endpoint is missing.
  SimDuration TimeToDetect() const;      // fault -> detection
  SimDuration TimeToPromote() const;     // detection -> promotion
  SimDuration TimeToReconverge() const;  // heal -> reconvergence

  std::string ToString() const;

  friend bool operator==(const RecoveryReport& a, const RecoveryReport& b) {
    return a.fault_at == b.fault_at && a.detected_at == b.detected_at &&
           a.promoted_at == b.promoted_at && a.healed_at == b.healed_at &&
           a.reconverged_at == b.reconverged_at &&
           a.lost_writes == b.lost_writes &&
           a.peak_lag_events == b.peak_lag_events &&
           a.peak_relay_backlog == b.peak_relay_backlog;
  }
  friend bool operator!=(const RecoveryReport& a, const RecoveryReport& b) {
    return !(a == b);
  }
};

/// Watches a FailoverManager-run replication tier through a fault episode
/// and produces a RecoveryReport:
///
///  - detection/promotion instants come from the manager's listeners;
///  - fault/heal instants come from NoteFault()/NoteHeal() — usually wired
///    to the FaultInjector's fault listener;
///  - lag/backlog peaks and the reconvergence instant come from a polling
///    loop over the *current* master and its active slaves (the set changes
///    across failovers, so the observer always asks the manager).
///
/// Reconvergence means: the heal has been noted and every active slave has
/// zero event lag and an empty relay log (override with `converged` for a
/// stricter predicate, e.g. ReplicationCluster::Converged deep-compare).
/// Polling is a repeating simulation event — Stop() before the final drain,
/// like ClusterMonitor.
class RecoveryObserver {
 public:
  RecoveryObserver(sim::Simulation* sim, repl::FailoverManager* manager,
                   std::function<bool()> converged = nullptr,
                   SimDuration poll_interval = Millis(250));

  RecoveryObserver(const RecoveryObserver&) = delete;
  RecoveryObserver& operator=(const RecoveryObserver&) = delete;

  /// Installs manager listeners and begins polling. Call once, before the
  /// fault fires.
  void Start();
  void Stop();

  /// Marks the primary fault instant. First call wins (a storm of faults is
  /// one episode measured from its first shot).
  void NoteFault();
  /// Marks the heal instant; reconvergence is only stamped after this.
  /// Last call wins (the episode ends when the last fault heals).
  void NoteHeal();

  const RecoveryReport& report() const { return report_; }

  /// The fault-tier slice of the metrics spine: every RecoveryReport field
  /// exposed as a `fault.*` probe plus a poll counter, so the same
  /// aggregation path that collects db/repl/proxy metrics sees recovery
  /// timings too. The report struct remains the equality-comparable
  /// determinism artifact; the registry is a live view over it.
  metrics::MetricRegistry& metrics() { return metrics_; }
  const metrics::MetricRegistry& metrics() const { return metrics_; }

 private:
  void Poll();
  void RegisterMetrics();

  sim::Simulation* sim_;
  repl::FailoverManager* manager_;
  std::function<bool()> converged_;
  SimDuration poll_interval_;
  bool running_ = false;
  RecoveryReport report_;
  metrics::MetricRegistry metrics_;
  metrics::Counter* polls_ = nullptr;
  sim::PeriodicTimer poller_;
};

}  // namespace clouddb::fault

#endif  // CLOUDDB_FAULT_RECOVERY_OBSERVER_H_
