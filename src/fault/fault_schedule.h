#ifndef CLOUDDB_FAULT_FAULT_SCHEDULE_H_
#define CLOUDDB_FAULT_FAULT_SCHEDULE_H_

#include <string>
#include <vector>

#include "common/time_types.h"

namespace clouddb::fault {

/// The fault taxonomy. Each kind maps to hooks on one layer of the stack:
///
///   kCrash        cloud::Instance::Crash/Restart   (instance failure)
///   kFreeze       sim::CpuScheduler::Freeze/Thaw   (stop-the-world straggler)
///   kSlowdown     sim::CpuScheduler::SetSpeedFactor (degraded/stolen CPU)
///   kPartition    net::Network::SetLinkDown         (pairwise, both ways)
///   kIsolate      net::Network::SetNodeIsolated     (cut off from everyone)
///   kLatencySpike net::Network::SetLinkExtraLatency (slow link window)
///   kPacketLoss   net::Network::SetLinkLossProbability (grey failure)
///   kClockStep    sim::LocalClock::StepBy           (bad NTP source, leap)
enum class FaultKind {
  kCrash,
  kFreeze,
  kSlowdown,
  kPartition,
  kIsolate,
  kLatencySpike,
  kPacketLoss,
  kClockStep,
};

const char* FaultKindToString(FaultKind kind);

/// One timed fault. `duration == 0` means the fault is permanent (never
/// auto-heals); otherwise the injector schedules the matching heal action
/// at `at + duration`. Targets are instance *names* (resolved against the
/// CloudProvider when the schedule is armed), which keeps schedules
/// declarative and serialisable.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  SimTime at = 0;
  SimDuration duration = 0;
  std::string target;     // instance the fault lands on
  std::string peer;       // second endpoint for link faults, else empty
  double magnitude = 0.0; // slowdown speed multiplier / loss probability
  SimDuration delta = 0;  // latency-spike extra delay / clock-step amount

  /// "t=60.00s crash master for 60.00s"-style one-liner.
  std::string ToString() const;
};

/// A declarative list of timed fault events. Built once before the run,
/// armed through a FaultInjector, and executed entirely on the simulation's
/// event queue — so a given (schedule, seed) pair always produces the exact
/// same run, which is what makes recovery metrics comparable across
/// configurations.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Instance failure at `at`; the instance reboots `down_for` later
  /// (0 = never restarts).
  FaultSchedule& Crash(SimTime at, std::string instance,
                       SimDuration down_for = 0);
  /// CPU stops dispatching for `for_duration` (jobs queue up, nothing is
  /// lost) — the hypervisor-pause straggler.
  FaultSchedule& Freeze(SimTime at, std::string instance,
                        SimDuration for_duration);
  /// CPU speed multiplied by `factor` (e.g. 0.25 = four times slower) for
  /// `for_duration` (0 = permanent).
  FaultSchedule& Slowdown(SimTime at, std::string instance, double factor,
                          SimDuration for_duration);
  /// Bidirectional link cut between two instances for `for_duration`
  /// (0 = permanent).
  FaultSchedule& Partition(SimTime at, std::string a, std::string b,
                           SimDuration for_duration);
  /// Cuts the instance off from every other endpoint for `for_duration`
  /// (0 = permanent).
  FaultSchedule& Isolate(SimTime at, std::string instance,
                         SimDuration for_duration);
  /// Adds `extra` µs one-way delay on both directions of the a<->b link.
  FaultSchedule& LatencySpike(SimTime at, std::string a, std::string b,
                              SimDuration extra, SimDuration for_duration);
  /// Drops messages on both directions of a<->b with `probability`.
  FaultSchedule& PacketLoss(SimTime at, std::string a, std::string b,
                            double probability, SimDuration for_duration);
  /// Steps the instance's local clock by `delta` µs (one-shot; no heal).
  FaultSchedule& ClockStep(SimTime at, std::string instance, SimDuration delta);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }

  /// The whole timeline, one event per line, in insertion order.
  std::string ToString() const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace clouddb::fault

#endif  // CLOUDDB_FAULT_FAULT_SCHEDULE_H_
