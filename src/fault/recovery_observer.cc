#include "fault/recovery_observer.h"

#include <algorithm>

#include "common/str_util.h"
#include "common/time_types.h"
#include "repl/failover.h"
#include "repl/master_node.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"

namespace clouddb::fault {
namespace {

SimDuration Between(SimTime from, SimTime to) {
  if (from < 0 || to < 0) return -1;
  return to - from;
}

std::string DurationOrDash(SimDuration d) {
  return d < 0 ? "-" : FormatDuration(d);
}

}  // namespace

SimDuration RecoveryReport::TimeToDetect() const {
  return Between(fault_at, detected_at);
}

SimDuration RecoveryReport::TimeToPromote() const {
  return Between(detected_at, promoted_at);
}

SimDuration RecoveryReport::TimeToReconverge() const {
  return Between(healed_at, reconverged_at);
}

std::string RecoveryReport::ToString() const {
  return StrFormat(
      "time-to-detect      %s\n"
      "time-to-promote     %s\n"
      "lost writes         %lld\n"
      "peak lag            %lld events\n"
      "peak relay backlog  %lld events\n"
      "time-to-reconverge  %s\n",
      DurationOrDash(TimeToDetect()).c_str(),
      DurationOrDash(TimeToPromote()).c_str(),
      static_cast<long long>(lost_writes),
      static_cast<long long>(peak_lag_events),
      static_cast<long long>(peak_relay_backlog),
      DurationOrDash(TimeToReconverge()).c_str());
}

RecoveryObserver::RecoveryObserver(sim::Simulation* sim,
                                   repl::FailoverManager* manager,
                                   std::function<bool()> converged,
                                   SimDuration poll_interval)
    : sim_(sim),
      manager_(manager),
      converged_(std::move(converged)),
      poll_interval_(poll_interval),
      metrics_("recovery") {
  RegisterMetrics();
}

void RecoveryObserver::RegisterMetrics() {
  polls_ = metrics_.AddCounter("fault.polls");
  metrics_.AddProbe("fault.fault_at_us", [this] {
    return static_cast<double>(report_.fault_at);
  });
  metrics_.AddProbe("fault.detected_at_us", [this] {
    return static_cast<double>(report_.detected_at);
  });
  metrics_.AddProbe("fault.promoted_at_us", [this] {
    return static_cast<double>(report_.promoted_at);
  });
  metrics_.AddProbe("fault.healed_at_us", [this] {
    return static_cast<double>(report_.healed_at);
  });
  metrics_.AddProbe("fault.reconverged_at_us", [this] {
    return static_cast<double>(report_.reconverged_at);
  });
  metrics_.AddProbe("fault.lost_writes", [this] {
    return static_cast<double>(report_.lost_writes);
  });
  metrics_.AddProbe("fault.peak_lag_events", [this] {
    return static_cast<double>(report_.peak_lag_events);
  });
  metrics_.AddProbe("fault.peak_relay_backlog", [this] {
    return static_cast<double>(report_.peak_relay_backlog);
  });
  metrics_.AddProbe("fault.time_to_detect_us", [this] {
    return static_cast<double>(report_.TimeToDetect());
  });
  metrics_.AddProbe("fault.time_to_promote_us", [this] {
    return static_cast<double>(report_.TimeToPromote());
  });
  metrics_.AddProbe("fault.time_to_reconverge_us", [this] {
    return static_cast<double>(report_.TimeToReconverge());
  });
}

void RecoveryObserver::Start() {
  if (running_) return;
  running_ = true;
  manager_->AddDetectionListener([this] {
    if (report_.detected_at < 0) report_.detected_at = sim_->Now();
  });
  manager_->AddFailoverListener([this](repl::MasterNode*) {
    if (report_.promoted_at < 0) report_.promoted_at = sim_->Now();
  });
  poller_.Start(sim_, poll_interval_, [this] { Poll(); });
}

void RecoveryObserver::Stop() {
  running_ = false;
  poller_.Stop();
}

void RecoveryObserver::NoteFault() {
  if (report_.fault_at < 0) report_.fault_at = sim_->Now();
}

void RecoveryObserver::NoteHeal() { report_.healed_at = sim_->Now(); }

void RecoveryObserver::Poll() {
  if (!running_) return;
  polls_->Increment();
  repl::MasterNode* master = manager_->current_master();
  bool all_caught_up = true;
  for (repl::SlaveNode* slave : manager_->active_slaves()) {
    int64_t lag = master->binlog_size() - 1 - slave->applied_index();
    if (lag < 0) lag = 0;
    report_.peak_lag_events = std::max(report_.peak_lag_events, lag);
    report_.peak_relay_backlog =
        std::max(report_.peak_relay_backlog,
                 static_cast<int64_t>(slave->relay_backlog()));
    if (lag != 0 || slave->relay_backlog() != 0 ||
        slave->replication_broken()) {
      all_caught_up = false;
    }
  }
  report_.lost_writes = manager_->lost_writes_count();
  if (report_.healed_at >= 0 && report_.reconverged_at < 0) {
    bool converged = converged_ ? converged_() : all_caught_up;
    if (converged) report_.reconverged_at = sim_->Now();
  }
}

}  // namespace clouddb::fault
