#ifndef CLOUDDB_FAULT_FAULT_INJECTOR_H_
#define CLOUDDB_FAULT_FAULT_INJECTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cloud_provider.h"
#include "common/status.h"
#include "fault/fault_schedule.h"
#include "sim/simulation.h"
#include "common/time_types.h"
#include "net/network.h"

namespace clouddb::fault {

/// One action the injector actually performed (begin or heal), for the
/// post-run timeline report.
struct AppliedFault {
  SimTime at = 0;
  std::string description;
};

/// Executes a FaultSchedule against a running deployment. Arm() validates
/// every event (targets must be launched instances, magnitudes in range)
/// and schedules begin/heal actions on the simulation's event queue; from
/// then on the injector needs no further driving. Because everything runs
/// on the deterministic event queue, two runs with the same schedule and
/// seed inject the exact same adversity at the exact same instants.
class FaultInjector {
 public:
  FaultInjector(sim::Simulation* sim, cloud::CloudProvider* provider);

  /// Cancels every still-pending begin/heal event: the scheduled lambdas
  /// capture `this`, so they must not fire after the injector is gone.
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Validates and schedules every event of `schedule`. May be called more
  /// than once (schedules accumulate). Returns InvalidArgument on unknown
  /// instance names, out-of-range magnitudes, negative times/durations or
  /// self-partitions — nothing is scheduled on error.
  Status Arm(const FaultSchedule& schedule);

  /// `listener(event, begin)` fires as each fault begins (begin = true) and
  /// heals (begin = false). The RecoveryObserver hangs off this to stamp
  /// fault/heal instants without the scenario wiring them by hand.
  void SetFaultListener(std::function<void(const FaultEvent&, bool)> listener) {
    listener_ = std::move(listener);
  }

  /// Chronological record of every action performed so far.
  const std::vector<AppliedFault>& log() const { return log_; }
  int64_t faults_begun() const { return faults_begun_; }
  int64_t faults_healed() const { return faults_healed_; }

 private:
  Status Validate(const FaultEvent& event) const;
  void Begin(const FaultEvent& event);
  void Heal(const FaultEvent& event);
  void Record(const FaultEvent& event, bool begin);
  /// Both directions of the target<->peer link.
  void ForEachDirection(
      const FaultEvent& event,
      const std::function<void(net::NodeId, net::NodeId)>& apply);

  sim::Simulation* sim_;
  cloud::CloudProvider* provider_;
  std::function<void(const FaultEvent&, bool)> listener_;
  std::vector<AppliedFault> log_;
  int64_t faults_begun_ = 0;
  int64_t faults_healed_ = 0;
  /// Armed events live here so begin/heal lambdas have a stable address.
  std::vector<std::unique_ptr<FaultEvent>> armed_;
  /// Kernel handles for every scheduled begin/heal, cancelled on teardown.
  std::vector<sim::Simulation::EventHandle> scheduled_;
  /// Pre-fault CPU speeds, keyed by instance name, for slowdown heals.
  std::map<std::string, double> saved_speeds_;
};

}  // namespace clouddb::fault

#endif  // CLOUDDB_FAULT_FAULT_INJECTOR_H_
