#include "fault/fault_schedule.h"

#include <utility>

#include "common/str_util.h"
#include "common/time_types.h"

namespace clouddb::fault {

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kFreeze:
      return "freeze";
    case FaultKind::kSlowdown:
      return "slowdown";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kIsolate:
      return "isolate";
    case FaultKind::kLatencySpike:
      return "latency-spike";
    case FaultKind::kPacketLoss:
      return "packet-loss";
    case FaultKind::kClockStep:
      return "clock-step";
  }
  return "?";
}

std::string FaultEvent::ToString() const {
  std::string out = StrFormat("t=%s %s %s", FormatDuration(at).c_str(),
                              FaultKindToString(kind), target.c_str());
  if (!peer.empty()) out += StrFormat(" <-> %s", peer.c_str());
  switch (kind) {
    case FaultKind::kSlowdown:
      out += StrFormat(" x%.2f", magnitude);
      break;
    case FaultKind::kPacketLoss:
      out += StrFormat(" p=%.2f", magnitude);
      break;
    case FaultKind::kLatencySpike:
      out += StrFormat(" +%s", FormatDuration(delta).c_str());
      break;
    case FaultKind::kClockStep:
      out += StrFormat(" by %s%s", delta < 0 ? "-" : "+",
                       FormatDuration(delta < 0 ? -delta : delta).c_str());
      break;
    default:
      break;
  }
  if (duration > 0) {
    out += StrFormat(" for %s", FormatDuration(duration).c_str());
  } else if (kind != FaultKind::kClockStep) {
    out += " permanently";
  }
  return out;
}

FaultSchedule& FaultSchedule::Crash(SimTime at, std::string instance,
                                    SimDuration down_for) {
  FaultEvent e;
  e.kind = FaultKind::kCrash;
  e.at = at;
  e.duration = down_for;
  e.target = std::move(instance);
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::Freeze(SimTime at, std::string instance,
                                     SimDuration for_duration) {
  FaultEvent e;
  e.kind = FaultKind::kFreeze;
  e.at = at;
  e.duration = for_duration;
  e.target = std::move(instance);
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::Slowdown(SimTime at, std::string instance,
                                       double factor,
                                       SimDuration for_duration) {
  FaultEvent e;
  e.kind = FaultKind::kSlowdown;
  e.at = at;
  e.duration = for_duration;
  e.target = std::move(instance);
  e.magnitude = factor;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::Partition(SimTime at, std::string a,
                                        std::string b,
                                        SimDuration for_duration) {
  FaultEvent e;
  e.kind = FaultKind::kPartition;
  e.at = at;
  e.duration = for_duration;
  e.target = std::move(a);
  e.peer = std::move(b);
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::Isolate(SimTime at, std::string instance,
                                      SimDuration for_duration) {
  FaultEvent e;
  e.kind = FaultKind::kIsolate;
  e.at = at;
  e.duration = for_duration;
  e.target = std::move(instance);
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::LatencySpike(SimTime at, std::string a,
                                           std::string b, SimDuration extra,
                                           SimDuration for_duration) {
  FaultEvent e;
  e.kind = FaultKind::kLatencySpike;
  e.at = at;
  e.duration = for_duration;
  e.target = std::move(a);
  e.peer = std::move(b);
  e.delta = extra;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::PacketLoss(SimTime at, std::string a,
                                         std::string b, double probability,
                                         SimDuration for_duration) {
  FaultEvent e;
  e.kind = FaultKind::kPacketLoss;
  e.at = at;
  e.duration = for_duration;
  e.target = std::move(a);
  e.peer = std::move(b);
  e.magnitude = probability;
  events_.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::ClockStep(SimTime at, std::string instance,
                                        SimDuration delta) {
  FaultEvent e;
  e.kind = FaultKind::kClockStep;
  e.at = at;
  e.target = std::move(instance);
  e.delta = delta;
  events_.push_back(std::move(e));
  return *this;
}

std::string FaultSchedule::ToString() const {
  std::string out;
  for (const FaultEvent& e : events_) {
    out += e.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace clouddb::fault
