#include "repl/cluster_monitor.h"

#include <algorithm>
#include <cassert>

#include "common/str_util.h"
#include "common/table_writer.h"
#include "common/time_types.h"
#include "repl/master_node.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"

namespace clouddb::repl {

ClusterMonitor::ClusterMonitor(sim::Simulation* sim, MasterNode* master,
                               std::vector<SlaveNode*> slaves,
                               SimDuration interval)
    : sim_(sim),
      master_(master),
      slaves_(std::move(slaves)),
      interval_(interval) {
  assert(interval > 0);
}

void ClusterMonitor::Start() {
  running_ = true;
  last_master_busy_ = master_->instance().cpu().CumulativeBusyMicros();
  last_slave_busy_.clear();
  for (SlaveNode* slave : slaves_) {
    last_slave_busy_.push_back(slave->instance().cpu().CumulativeBusyMicros());
  }
  // First sample lands one interval from now; the timer re-arms in place.
  ticker_.Start(sim_, interval_, [this] { Tick(); });
}

void ClusterMonitor::Stop() {
  running_ = false;
  ticker_.Stop();
}

void ClusterMonitor::Tick() {
  if (!running_) return;
  MonitorSample sample;
  sample.at = sim_->Now();
  sample.binlog_size = master_->database().binlog().size();
  double window = static_cast<double>(interval_);

  // Busy time is accounted when a job *completes*, so a job spanning a
  // sample boundary lands entirely in the later window; clamp to 100%.
  auto utilization = [](int64_t delta, double window_core_us) {
    double u = static_cast<double>(delta) / window_core_us;
    return u > 1.0 ? 1.0 : u;
  };
  int64_t master_busy = master_->instance().cpu().CumulativeBusyMicros();
  sample.master_cpu =
      utilization(master_busy - last_master_busy_,
                  window * master_->instance().cpu().num_cores());
  last_master_busy_ = master_busy;

  for (size_t i = 0; i < slaves_.size(); ++i) {
    SlaveNode* slave = slaves_[i];
    int64_t busy = slave->instance().cpu().CumulativeBusyMicros();
    sample.slave_cpu.push_back(
        utilization(busy - last_slave_busy_[i],
                    window * slave->instance().cpu().num_cores()));
    last_slave_busy_[i] = busy;
    sample.relay_backlog.push_back(slave->relay_backlog());
    sample.lag_events.push_back(sample.binlog_size - 1 -
                                slave->applied_index());
  }
  samples_.push_back(std::move(sample));
}

int64_t ClusterMonitor::MaxLagEvents() const {
  int64_t max_lag = 0;
  for (const MonitorSample& sample : samples_) {
    for (int64_t lag : sample.lag_events) max_lag = std::max(max_lag, lag);
  }
  return max_lag;
}

double ClusterMonitor::MeanMasterCpu() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (const MonitorSample& sample : samples_) total += sample.master_cpu;
  return total / static_cast<double>(samples_.size());
}

double ClusterMonitor::SlaveSaturatedFraction(int slave_index,
                                              double threshold) const {
  if (samples_.empty()) return 0.0;
  size_t idx = static_cast<size_t>(slave_index);
  int64_t hot = 0;
  for (const MonitorSample& sample : samples_) {
    if (idx < sample.slave_cpu.size() && sample.slave_cpu[idx] > threshold) {
      ++hot;
    }
  }
  return static_cast<double>(hot) / static_cast<double>(samples_.size());
}

TableWriter ClusterMonitor::ToTable() const {
  std::vector<std::string> header = {"t", "master_cpu"};
  for (size_t i = 0; i < slaves_.size(); ++i) {
    header.push_back(StrFormat("slave%zu_cpu", i + 1));
    header.push_back(StrFormat("slave%zu_backlog", i + 1));
  }
  TableWriter table(std::move(header));
  for (const MonitorSample& sample : samples_) {
    std::vector<std::string> row = {FormatDuration(sample.at),
                                    StrFormat("%.2f", sample.master_cpu)};
    for (size_t i = 0; i < slaves_.size(); ++i) {
      row.push_back(i < sample.slave_cpu.size()
                        ? StrFormat("%.2f", sample.slave_cpu[i])
                        : "-");
      row.push_back(i < sample.relay_backlog.size()
                        ? StrFormat("%zu", sample.relay_backlog[i])
                        : "-");
    }
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace clouddb::repl
