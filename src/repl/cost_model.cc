#include "repl/cost_model.h"

#include "common/str_util.h"
#include "common/time_types.h"
#include "db/sql_ast.h"
#include "db/writeset.h"

namespace clouddb::repl {

namespace {

/// Table a statement targets, lower-cased (empty for txn control).
std::string StatementTable(const db::Statement& stmt) {
  struct Visitor {
    std::string operator()(const db::CreateTableStatement& s) { return s.table; }
    std::string operator()(const db::CreateIndexStatement& s) { return s.table; }
    std::string operator()(const db::DropTableStatement& s) { return s.table; }
    std::string operator()(const db::TruncateStatement& s) { return s.table; }
    std::string operator()(const db::InsertStatement& s) { return s.table; }
    std::string operator()(const db::SelectStatement& s) { return s.table; }
    std::string operator()(const db::UpdateStatement& s) { return s.table; }
    std::string operator()(const db::DeleteStatement& s) { return s.table; }
    std::string operator()(const db::BeginStatement&) { return ""; }
    std::string operator()(const db::CommitStatement&) { return ""; }
    std::string operator()(const db::RollbackStatement&) { return ""; }
  };
  return ToLower(std::visit(Visitor{}, stmt));
}

}  // namespace

SimDuration CostModel::EstimateStatement(const db::Statement& stmt) const {
  if (std::holds_alternative<db::SelectStatement>(stmt)) return select_cost;
  if (std::holds_alternative<db::InsertStatement>(stmt)) return insert_cost;
  if (std::holds_alternative<db::UpdateStatement>(stmt)) return update_cost;
  if (std::holds_alternative<db::DeleteStatement>(stmt)) return delete_cost;
  if (db::IsTransactionControl(stmt)) return txn_control_cost;
  return ddl_cost;
}

SimDuration CostModel::EstimateWritesetApply(
    const db::StatementWriteset& ws) const {
  return writeset_apply_cost +
         writeset_row_cost * static_cast<SimDuration>(ws.ops.size());
}

SimDuration CostModel::EstimateApply(const db::Statement& stmt) const {
  auto it = apply_cost_by_table.find(StatementTable(stmt));
  if (it != apply_cost_by_table.end()) return it->second;
  return static_cast<SimDuration>(
      apply_factor * static_cast<double>(EstimateStatement(stmt)));
}

}  // namespace clouddb::repl
