#ifndef CLOUDDB_REPL_FAILOVER_H_
#define CLOUDDB_REPL_FAILOVER_H_

#include <functional>
#include <memory>
#include <vector>

#include "net/network.h"
#include "repl/master_node.h"
#include "repl/slave_node.h"
#include "sim/simulation.h"
#include "common/status.h"
#include "common/time_types.h"
#include "db/database.h"

namespace clouddb::repl {

/// Replaces `target`'s entire contents with a copy of `source`: schemas,
/// rows and secondary indexes. The re-clone step of failover and of replica
/// provisioning.
Status ResyncDatabase(const db::Database& source, db::Database* target);

/// Failover behaviour knobs.
struct FailoverOptions {
  /// Health-probe cadence and per-probe timeout.
  SimDuration check_interval = Seconds(1);
  SimDuration probe_timeout = Seconds(2);
  /// Consecutive probe failures before the master is declared dead.
  int failures_to_trip = 3;
};

/// Automatic failover management — the capability the paper names as the
/// reason the replication architecture "is running behind-the-scenes ...
/// to enable automatic failover management and ensure high availability"
/// (§I).
///
/// The manager runs on a monitor instance, pings the master over the
/// network, and on `failures_to_trip` consecutive probe timeouts performs a
/// failover:
///
///  1. elect the most-up-to-date surviving slave (max applied binlog index);
///  2. promote it: its database is adopted by a new MasterNode on the same
///     instance, with binary logging enabled (a fresh binlog timeline);
///  3. resynchronize every other surviving slave from the promoted copy
///     (asynchronous replication can leave them behind the winner; in
///     production this is the re-clone step) and re-attach them;
///  4. report the new master so the application can repoint its proxy.
///
/// Writes that the old master committed but had not shipped are *lost* —
/// the inherent asynchronous-replication risk the paper's §II describes
/// ("once the updated replica goes offline before duplicating data, data
/// loss may occur"). `lost_writes_possible()` reports whether that happened.
class FailoverManager {
 public:
  FailoverManager(sim::Simulation* sim, net::Network* network,
                  net::NodeId monitor_node, MasterNode* master,
                  std::vector<SlaveNode*> slaves,
                  const FailoverOptions& options);

  /// Starts periodic health checks.
  void Start();
  void Stop();

  /// The currently active master: the original one, or the promoted node
  /// after a failover.
  MasterNode* current_master();

  bool failover_performed() const { return !owned_masters_.empty(); }
  /// The slave that won the election (null before failover).
  SlaveNode* promoted_slave() const { return promoted_slave_; }
  /// Surviving slaves attached to the current master.
  const std::vector<SlaveNode*>& active_slaves() const { return slaves_; }
  int64_t probes_sent() const { return probes_sent_; }
  int64_t probes_failed() const { return probes_failed_; }
  /// True if the old master's binlog had events the promoted slave never
  /// applied (committed-but-unreplicated writes vanished).
  bool lost_writes_possible() const { return lost_writes_possible_; }
  /// Number of committed binlog events the election winner had not applied
  /// at promotion time, summed over failovers — the writes that vanished.
  int64_t lost_writes_count() const { return lost_writes_count_; }

  /// Invoked (if set) right after a failover completes, with the new
  /// master. Replaces all previously registered failover listeners.
  void SetFailoverListener(std::function<void(MasterNode*)> listener) {
    failover_listeners_.clear();
    AddFailoverListener(std::move(listener));
  }
  /// Adds a failover-completion listener without disturbing the ones
  /// already registered (the RecoveryObserver rides along with the
  /// application's proxy-repoint listener).
  void AddFailoverListener(std::function<void(MasterNode*)> listener) {
    failover_listeners_.push_back(std::move(listener));
  }
  /// Adds a listener fired at the moment the manager declares the master
  /// dead (`failures_to_trip` consecutive probe failures), before any
  /// promotion work — the "time to detect" instant.
  void AddDetectionListener(std::function<void()> listener) {
    detection_listeners_.push_back(std::move(listener));
  }

 private:
  void Probe();
  void OnProbeResult(bool alive);
  void PerformFailover();

  sim::Simulation* sim_;
  net::Network* network_;
  net::NodeId monitor_node_;
  MasterNode* master_;
  std::vector<SlaveNode*> slaves_;
  FailoverOptions options_;
  bool running_ = false;
  int consecutive_failures_ = 0;
  int64_t probes_sent_ = 0;
  int64_t probes_failed_ = 0;
  bool lost_writes_possible_ = false;
  int64_t lost_writes_count_ = 0;
  /// Masters created by promotions (kept alive for the manager's lifetime;
  /// repeated failovers are supported).
  std::vector<std::unique_ptr<MasterNode>> owned_masters_;
  SlaveNode* promoted_slave_ = nullptr;
  std::vector<std::function<void(MasterNode*)>> failover_listeners_;
  std::vector<std::function<void()>> detection_listeners_;
  /// Distinguishes replies to the current probe from stragglers of earlier
  /// probes (the reply callbacks capture the epoch they were sent under).
  int64_t probe_epoch_ = 0;
  bool probe_answered_ = false;
  /// Persistent kernel slots: one for the per-probe timeout guard, one for
  /// the inter-probe pause — re-armed every round, never reallocated.
  sim::Timer probe_timeout_;
  sim::Timer next_probe_;
};

}  // namespace clouddb::repl

#endif  // CLOUDDB_REPL_FAILOVER_H_
