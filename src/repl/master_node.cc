#include "repl/master_node.h"

#include <algorithm>
#include <cassert>

#include "repl/slave_node.h"
#include "cloud/instance.h"
#include "common/result.h"
#include "db/binlog.h"
#include "db/database.h"
#include "net/network.h"
#include "repl/cost_model.h"
#include "sim/simulation.h"

namespace clouddb::repl {

namespace {

int64_t EventWireSize(const db::BinlogEvent& event) {
  int64_t size = 32;  // header
  for (const auto& s : event.statements) {
    size += static_cast<int64_t>(s.size());
  }
  return size;
}

}  // namespace

MasterNode::MasterNode(sim::Simulation* sim, net::Network* network,
                       cloud::Instance* instance, CostModel cost_model)
    : DbNode(sim, network, instance, std::move(cost_model),
             /*enable_binlog=*/true) {
  database_->binlog().SetAppendListener(
      [this](const db::BinlogEvent& event) { OnBinlogAppend(event); });
  RegisterMasterMetrics();
}

MasterNode::MasterNode(sim::Simulation* sim, net::Network* network,
                       cloud::Instance* instance, CostModel cost_model,
                       std::unique_ptr<db::Database> adopted)
    : DbNode(sim, network, instance, std::move(cost_model),
             std::move(adopted), /*enable_binlog=*/true) {
  database_->binlog().SetAppendListener(
      [this](const db::BinlogEvent& event) { OnBinlogAppend(event); });
  RegisterMasterMetrics();
}

void MasterNode::RegisterMasterMetrics() {
  metrics_.AddProbe("repl.master.binlog_size", [this] {
    return database_ == nullptr ? 0.0 : static_cast<double>(binlog_size());
  });
  metrics_.AddProbe("repl.master.events_pushed", [this] {
    return static_cast<double>(events_pushed_);
  });
  metrics_.AddProbe("repl.master.attached_slaves", [this] {
    return static_cast<double>(slaves_.size());
  });
  // Apply backlog on the master side: writes committed but still holding
  // their client response for slave acks (synchronous mode only).
  metrics_.AddProbe("repl.master.sync_waiters", [this] {
    return static_cast<double>(sync_waiters_.size());
  });
}

void MasterNode::AttachSlave(SlaveNode* slave) {
  slaves_.push_back(slave);
  slave->SetMaster(this);
}

void MasterNode::DetachSlave(SlaveNode* slave) {
  auto it = std::find(slaves_.begin(), slaves_.end(), slave);
  if (it == slaves_.end()) return;
  slaves_.erase(it);
  // Release any synchronous waiter that was still counting on this slave;
  // otherwise a scale-in during a sync write would strand the client.
  for (auto w = sync_waiters_.begin(); w != sync_waiters_.end();) {
    if (--w->remaining == 0) {
      QueryCallback done = std::move(w->done);
      Result<db::ExecResult> result = std::move(w->result);
      w = sync_waiters_.erase(w);
      done(std::move(result));
    } else {
      ++w;
    }
  }
}

void MasterNode::ExecuteAndRespond(const std::string& sql,
                                   QueryCallback done) {
  int64_t before = database_->binlog().size();
  Result<db::ExecResult> result = ExecuteNow(sql);
  int64_t after = database_->binlog().size();
  // Asynchronous replication (the default): respond as soon as the master
  // commits. Synchronous: hold the response until all slaves ack the event.
  if (!synchronous_ || slaves_.empty() || after == before || !result.ok()) {
    done(std::move(result));
    return;
  }
  sync_waiters_.push_back(SyncWaiter{after - 1,
                                     static_cast<int>(slaves_.size()),
                                     std::move(done), std::move(result)});
}

void MasterNode::OnSlaveAck(net::NodeId /*slave_node*/, int64_t index) {
  for (auto it = sync_waiters_.begin(); it != sync_waiters_.end(); ++it) {
    if (it->index == index) {
      if (--it->remaining == 0) {
        QueryCallback done = std::move(it->done);
        Result<db::ExecResult> result = std::move(it->result);
        sync_waiters_.erase(it);
        done(std::move(result));
      }
      return;
    }
  }
}

void MasterNode::OnDumpRequest(SlaveNode* slave, int64_t from_index) {
  if (!online() || database_ == nullptr) return;  // dead masters stay silent
  ++dump_requests_served_;
  if (from_index < 0) from_index = 0;
  int64_t size = binlog_size();
  network_->Send(node_id(), slave->node_id(), /*size_bytes=*/32,
                 [slave, size] { slave->OnResyncAck(size); });
  for (int64_t i = from_index; i < size; ++i) {
    PushEventTo(slave, database_->binlog().At(i));
  }
}

void MasterNode::OnBinlogAppend(const db::BinlogEvent& event) {
  for (SlaveNode* slave : slaves_) {
    PushEventTo(slave, event);
  }
}

void MasterNode::PushEventTo(SlaveNode* slave, const db::BinlogEvent& event) {
  ++events_pushed_;
  // Copy the event into the message; delivery invokes the slave's IO thread.
  network_->Send(node_id(), slave->node_id(), EventWireSize(event),
                 [slave, event] { slave->OnBinlogEvent(event); });
}

}  // namespace clouddb::repl
